// Command uarchsim runs the built-in microarchitectural attack demos on
// the uarch substrate: it mounts each attack end to end and prints the
// cache residue the ⊥ observer sees, demonstrating dynamically the leaks
// the LCM analysis predicts statically.
//
// Usage:
//
//	uarchsim [-attack spectre-v1|spectre-v1-fenced|spectre-v4|silent-stores|imp|all] [-secret 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/uarch"
)

func main() {
	attack := flag.String("attack", "all", "demo to run")
	secret := flag.Int("secret", 42, "planted secret byte")
	flag.Parse()

	demos := map[string]func(uint8) error{
		"spectre-v1":        func(s uint8) error { return spectreV1("victim", s) },
		"spectre-v1-fenced": func(s uint8) error { return spectreV1("victim_fenced", s) },
		"spectre-v4":        spectreV4,
		"silent-stores":     silentStores,
		"imp":               imp,
	}
	names := []string{"spectre-v1", "spectre-v1-fenced", "spectre-v4", "silent-stores", "imp"}
	if *attack != "all" {
		if _, ok := demos[*attack]; !ok {
			fmt.Fprintf(os.Stderr, "uarchsim: unknown attack %q\n", *attack)
			os.Exit(2)
		}
		names = []string{*attack}
	}
	for _, n := range names {
		if err := demos[n](uint8(*secret)); err != nil {
			fmt.Fprintf(os.Stderr, "uarchsim: %s: %v\n", n, err)
			os.Exit(1)
		}
	}
}

func compile(src string) (*ir.Module, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	return lower.Module(f)
}

const victimSrc = `
uint8_t array1[16];
uint8_t secret_pad[64];
uint8_t array2[131072];
uint32_t array1_size = 16;
uint8_t tmp;
void victim(uint32_t x) {
	if (x < array1_size) {
		uint8_t v = array1[x];
		tmp &= array2[v * 512];
	}
}
void victim_fenced(uint32_t x) {
	if (x < array1_size) {
		lfence();
		uint8_t v = array1[x];
		tmp &= array2[v * 512];
	}
}
`

func spectreV1(fn string, secret uint8) error {
	m, err := compile(victimSrc)
	if err != nil {
		return err
	}
	ma := uarch.New(m, uarch.Config{})
	a1, _ := ma.GlobalAddr("array1")
	a2, _ := ma.GlobalAddr("array2")
	pad, _ := ma.GlobalAddr("secret_pad")
	ma.Mem.Store(pad+3, 1, uint64(secret))
	oob := pad + 3 - a1

	for i := 0; i < 8; i++ {
		ma.Call(fn, uint64(i&7)) // train the predictor in bounds
	}
	ma.Flush()
	ma.Call(fn, oob)

	fmt.Printf("== %s: planted secret %d out of bounds\n", fn, secret)
	recovered := -1
	for s := 0; s < 256; s++ {
		if ma.Probe(a2 + uint64(s)*512) {
			recovered = s
		}
	}
	if recovered < 0 {
		fmt.Printf("   observer sees no residue — leak blocked (%d transient instrs)\n", ma.Squashed)
	} else {
		fmt.Printf("   observer recovers %d from cache residue (%d transient instrs)\n", recovered, ma.Squashed)
	}
	return nil
}

func spectreV4(secret uint8) error {
	m, err := compile(`
		uint8_t sec_ary[128];
		uint8_t pub_ary[131072];
		uint8_t tmp;
		uint32_t idx_slot;
		void victim4(uint32_t idx) {
			idx_slot = idx & 15;
			uint8_t x = sec_ary[idx_slot];
			tmp &= pub_ary[x * 512];
		}
	`)
	if err != nil {
		return err
	}
	ma := uarch.New(m, uarch.Config{StoreBypass: true, StoreBufferDepth: 16})
	secA, _ := ma.GlobalAddr("sec_ary")
	pubA, _ := ma.GlobalAddr("pub_ary")
	slot, _ := ma.GlobalAddr("idx_slot")
	ma.Mem.Store(secA+42, 1, uint64(secret))
	ma.Mem.Store(slot, 4, 42) // stale attacker-seeded index
	ma.Flush()
	ma.Call("victim4", 3)
	fmt.Printf("== spectre-v4: secret %d at sec_ary[42], stale slot bypassed\n", secret)
	if ma.Probe(pubA + uint64(secret)*512) {
		fmt.Printf("   observer recovers %d via store-bypass residue\n", secret)
	} else {
		fmt.Println("   no residue")
	}
	return nil
}

func silentStores(uint8) error {
	m, err := compile(`
		uint32_t x_slot;
		void write_val(uint32_t v) { x_slot = v; }
	`)
	if err != nil {
		return err
	}
	run := func(initial, stored uint64) bool {
		ma := uarch.New(m, uarch.Config{SilentStores: true})
		xa, _ := ma.GlobalAddr("x_slot")
		ma.Mem.Store(xa, 4, initial)
		ma.Flush()
		ma.Call("write_val", stored)
		return ma.Probe(xa)
	}
	fmt.Println("== silent-stores: store of equal vs differing value")
	fmt.Printf("   equal value   → line cached: %v (silent, elided)\n", run(5, 5))
	fmt.Printf("   differing     → line cached: %v (written through)\n", run(5, 6))
	fmt.Println("   the observer distinguishes the two: the data comparison leaks (Fig. 5a)")
	return nil
}

func imp(uint8) error {
	m, err := compile(`
		uint8_t Z[64];
		uint8_t Y[131072];
		uint8_t t0;
		void walk(uint32_t n) {
			for (uint32_t i = 0; i < n; i++) {
				t0 += Y[Z[i] * 512];
			}
		}
	`)
	if err != nil {
		return err
	}
	ma := uarch.New(m, uarch.Config{IMP: true, ROB: -1})
	za, _ := ma.GlobalAddr("Z")
	ya, _ := ma.GlobalAddr("Y")
	for i, v := range []uint64{3, 9, 14, 21, 77} {
		ma.Mem.Store(za+uint64(i), 1, v)
	}
	ma.Flush()
	ma.Call("walk", 4)
	fmt.Printf("== imp: walked Y[Z[0..3]]; Z[4]=77 never architecturally read\n")
	fmt.Printf("   prefetches issued: %d; Y[Z[4]*512] resident: %v (Fig. 5b universal read)\n",
		ma.Prefetches, ma.Probe(ya+77*512))
	return nil
}
