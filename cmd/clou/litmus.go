package main

import (
	"fmt"
	"io"
	"time"

	"lcm/internal/harness"
	"lcm/internal/smt"
)

// litmusOptions parameterizes the -litmus corpus mode.
type litmusOptions struct {
	suite      string // a litmus suite name, or "all"
	jobs       int
	timeout    time.Duration
	noPresolve bool
	audit      bool
	verbose    bool
	solver     smt.Mode
}

// runLitmus sweeps the built-in litmus corpus through the harness. With
// -audit-presolve every statically refuted query is replayed through the
// solver; any disagreement fails the run — this is the CI audit job's
// entry point.
func runLitmus(o litmusOptions, stdout, stderr io.Writer) int {
	suites := []string{o.suite}
	if o.suite == "all" {
		suites = []string{"pht", "stl", "fwd", "new", "psf", "imp", "ss"}
	}
	opts := harness.Options{
		FuncTimeout:   o.timeout,
		Parallelism:   o.jobs,
		NoPresolve:    o.noPresolve,
		AuditPresolve: o.audit,
		SolverMode:    o.solver,
	}
	var discharged, skipped, audited, disagreements, queries int
	var selfChecks, selfMismatches int64
	for _, suite := range suites {
		rows, err := harness.RunLitmusSuite(suite, opts)
		if err != nil {
			fmt.Fprintf(stderr, "clou: litmus %s: %v\n", suite, err)
			return exitUsage
		}
		for _, r := range rows {
			fmt.Fprintln(stdout, r.Format())
			discharged += r.Discharged
			skipped += r.SkippedQueries
			audited += r.Audited
			disagreements += r.Disagreements
			queries += r.Queries
			selfChecks += r.SolverChecks
			selfMismatches += r.SolverMismatches
			if o.verbose && (r.Discharged > 0 || r.Audited > 0 || r.SkippedQueries > 0) {
				fmt.Fprintf(stdout, "%-14s %-9s   presolve: discharged=%d skipped-queries=%d audited=%d disagreements=%d\n",
					r.App, r.Tool, r.Discharged, r.SkippedQueries, r.Audited, r.Disagreements)
			}
		}
	}
	fmt.Fprintf(stdout, "== presolve: queries=%d discharged=%d skipped-queries=%d audited=%d disagreements=%d\n",
		queries, discharged, skipped, audited, disagreements)
	if o.solver == smt.ModeCheck {
		fmt.Fprintf(stdout, "== solver self-check: checks=%d mismatches=%d\n", selfChecks, selfMismatches)
	}
	if disagreements > 0 {
		fmt.Fprintf(stderr, "clou: presolve audit: %d disagreement(s)\n", disagreements)
		return exitFindings
	}
	if selfMismatches > 0 {
		fmt.Fprintf(stderr, "clou: solver self-check: %d verdict mismatch(es)\n", selfMismatches)
		return exitFindings
	}
	return exitClean
}
