// Conformance smoke mode: `clou -gen N -seed S` generates N seeded
// mini-C programs (internal/progen), runs every applicable oracle family
// on each — repair soundness, metamorphic invariance, architectural
// equivalence, differential enumeration — and prints a per-program
// verdict summary. It exits non-zero if any oracle fails, and shares the
// detection CLI's -j / -report / -timeout plumbing. With -checkpoint the
// campaign is resumable: completed programs are logged as they finish and
// -resume skips them on the next run.
package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"lcm/internal/obsv"
	"lcm/internal/progen"
)

type genOptions struct {
	n          int
	seed       int64
	jobs       int
	budget     time.Duration
	report     string
	checkpoint string
	resume     bool
}

// runGen drives one conformance sweep and returns the exit code.
func runGen(o genOptions, stdout, stderr io.Writer) int {
	metrics := obsv.NewRegistry()
	tracer := obsv.NewTracer()
	root := tracer.Start("gen")
	out, err := progen.RunCtx(context.Background(), progen.Options{
		Seed:       o.seed,
		N:          o.n,
		Jobs:       o.jobs,
		Budget:     o.budget,
		Checkpoint: o.checkpoint,
		Resume:     o.resume,
		Metrics:    metrics,
		Span:       root,
	})
	root.End()
	if err != nil {
		fmt.Fprintln(stderr, "clou:", err)
		return exitUsage
	}

	byVerdict := map[string]int{}
	degraded := 0
	for _, r := range out.Programs {
		byVerdict[r.Verdict]++
		if r.Rung != "" {
			degraded++
		}
		if r.Verdict == "fail" || r.Verdict == "error" {
			fmt.Fprintf(stdout, "== g%04d: %s\n   %s\n", r.Index, r.Verdict, r.Err)
		}
	}
	fmt.Fprintf(stdout, "== conform: seed=%d programs=%d leak=%d clean=%d fail=%d error=%d unknown=%d skipped=%d resumed=%d in %v\n",
		o.seed, len(out.Programs), byVerdict["leak"], byVerdict["clean"],
		byVerdict["fail"], byVerdict["error"], byVerdict["unknown"], byVerdict["skipped"],
		out.Resumed, out.Wall.Round(time.Millisecond))
	for _, f := range out.Failures {
		fmt.Fprintf(stdout, "   oracle %s seed=%d index=%d: %s\n", f.Oracle, f.Seed, f.Index, firstLine(f.Detail))
	}

	if o.report != "" {
		rep := out.Report(o.seed, o.jobs, metrics, tracer)
		if err := rep.WriteFile(o.report); err != nil {
			fmt.Fprintln(stderr, "clou: report:", err)
			return exitUsage
		}
	}
	switch {
	case len(out.Failures) > 0:
		return exitFindings
	case byVerdict["unknown"]+byVerdict["skipped"]+degraded > 0:
		return exitPartial
	}
	return exitClean
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
