// Conformance smoke mode: `clou -gen N -seed S` generates N seeded
// mini-C programs (internal/progen), runs every applicable oracle family
// on each — repair soundness, metamorphic invariance, architectural
// equivalence, differential enumeration — and prints a per-program
// verdict summary. It exits non-zero if any oracle fails, and shares the
// detection CLI's -j / -report / -timeout plumbing. With -checkpoint the
// campaign is resumable: completed programs are logged as they finish and
// -resume skips them on the next run.
//
// With -store DIR the campaign state lives in a crash-safe transactional
// store (internal/campstore) instead: every verdict is WAL-committed as
// it lands, a killed run resumes from the store with no flag beyond
// -store itself, and -workers N shards the campaign across N OS worker
// processes that coordinate purely through the store — no network. The
// final report is assembled from the store in index order, so resumed,
// re-sharded, and single-process runs emit byte-identical normalized
// reports.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"time"

	"lcm/internal/campstore"
	"lcm/internal/faults"
	"lcm/internal/obsv"
	"lcm/internal/progen"
)

type genOptions struct {
	n          int
	seed       int64
	jobs       int
	budget     time.Duration
	report     string
	checkpoint string
	resume     bool
	store      string // campaign store directory ("" = none)
	workers    int    // OS worker processes to shard across (0 = run in-process)
	workerMode bool   // this process is a spawned worker: claim/complete until dry
	importCkpt string // JSONL checkpoint to migrate into the store before running
}

// genExit converts a campaign error into the exit-code contract:
// operational storage failures (io, corrupt) are the partial arm — the
// campaign state survives and a retry can finish it — while anything
// unclassified is a usage/input error.
func genExit(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "clou:", err)
	if faults.IsOperational(err) {
		return exitPartial
	}
	return exitUsage
}

// runGen drives one conformance sweep and returns the exit code.
func runGen(o genOptions, stdout, stderr io.Writer) int {
	if o.store == "" {
		if o.workerMode || o.workers > 0 || o.importCkpt != "" {
			fmt.Fprintln(stderr, "clou: -worker, -workers, and -import-checkpoint require -store")
			return exitUsage
		}
		return runGenDirect(o, stdout, stderr)
	}
	if o.checkpoint != "" {
		fmt.Fprintln(stderr, "clou: -checkpoint and -store are mutually exclusive; use -import-checkpoint to migrate")
		return exitUsage
	}
	if o.workerMode {
		return runGenWorker(o, stdout, stderr)
	}
	return runGenStore(o, stdout, stderr)
}

// runGenDirect is the original in-memory/JSONL-checkpoint path.
func runGenDirect(o genOptions, stdout, stderr io.Writer) int {
	metrics := obsv.NewRegistry()
	tracer := obsv.NewTracer()
	root := tracer.Start("gen")
	out, err := progen.RunCtx(context.Background(), progen.Options{
		Seed:       o.seed,
		N:          o.n,
		Jobs:       o.jobs,
		Budget:     o.budget,
		Checkpoint: o.checkpoint,
		Resume:     o.resume,
		Metrics:    metrics,
		Span:       root,
	})
	root.End()
	if err != nil {
		return genExit(stderr, err)
	}
	return genSummarize(o, out, metrics, tracer, stdout, stderr)
}

// runGenWorker is the body of a spawned `-worker` process: attach to the
// store, claim and analyze items until none are claimable, exit. The
// verdicts live in the store; the coordinator owns reporting, so a
// worker's own exit code only distinguishes "drained cleanly" from
// operational or environmental death.
func runGenWorker(o genOptions, stdout, stderr io.Writer) int {
	st, err := campstore.Open(o.store, campstore.Options{
		Seed: o.seed, N: o.n, Worker: fmt.Sprintf("w%d", os.Getpid()), Attach: true,
	})
	if err != nil {
		return genExit(stderr, err)
	}
	defer st.Close()
	done, err := progen.RunStore(context.Background(), st, progen.Options{Seed: o.seed, N: o.n}, 0)
	if err != nil {
		return genExit(stderr, err)
	}
	fmt.Fprintf(stdout, "== worker: completed %d item(s)\n", done)
	return exitClean
}

// runGenStore is the campaign coordinator: open (or resume) the store,
// optionally migrate a JSONL checkpoint into it, run the campaign —
// in-process via the pool when -workers is 0, otherwise sharded across
// OS worker processes in waves with a lease reclaim between waves — and
// assemble the final report from the store in index order.
func runGenStore(o genOptions, stdout, stderr io.Writer) int {
	start := time.Now()
	// The report registry sees only the store counters and the
	// index-ordered verdict replay, never live analysis interleaving:
	// that is what makes resumed and re-sharded reports byte-identical.
	metrics := obsv.NewRegistry()
	st, err := campstore.Open(o.store, campstore.Options{
		Seed: o.seed, N: o.n, Worker: "coordinator", Metrics: metrics,
	})
	if err != nil {
		return genExit(stderr, err)
	}
	defer st.Close()

	if o.importCkpt != "" {
		n, err := progen.ImportCheckpoint(st, o.importCkpt)
		if err != nil {
			return genExit(stderr, err)
		}
		fmt.Fprintf(stdout, "== store: imported %d checkpoint record(s)\n", n)
	}

	// Verdicts already in the store — from a previous (possibly killed)
	// run or a checkpoint import — are resumed, not re-analyzed.
	resumed := st.CompletedCount()

	if o.workers > 0 {
		if code := runWorkerWaves(o, st, stdout, stderr); code != exitClean {
			return code
		}
	} else {
		live := obsv.NewRegistry()
		if _, err := progen.RunCtx(context.Background(), progen.Options{
			Seed: o.seed, N: o.n, Jobs: o.jobs, Budget: o.budget,
			Store: st, Metrics: live,
		}); err != nil {
			return genExit(stderr, err)
		}
	}

	tracer := obsv.NewTracer()
	root := tracer.Start("gen")
	out, err := progen.OutcomeFromStore(st, metrics)
	root.End()
	if err != nil {
		return genExit(stderr, err)
	}
	out.Wall = time.Since(start)
	out.Resumed = resumed
	return genSummarize(o, out, metrics, tracer, stdout, stderr)
}

// workerCommand builds the command for one spawned campaign worker: the
// same binary, re-invoked in -worker mode against the same store. It is
// a variable so the test harness (and the chaos kill campaign) can
// re-exec the test binary into a worker entry point instead.
var workerCommand = func(o genOptions) (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, faults.IOf("locate worker executable: %v", err)
	}
	return exec.Command(exe,
		"-gen", strconv.Itoa(o.n),
		"-seed", strconv.FormatInt(o.seed, 10),
		"-store", o.store,
		"-worker"), nil
}

// runWorkerWaves shards the campaign across o.workers OS processes.
// Workers speak to the coordinator only through the store; a worker that
// dies (crash, SIGKILL, OOM) simply leaves leases behind, which the
// between-waves Reclaim expires so the next wave re-runs exactly the
// unfinished items. The loop stalls out — rather than spinning forever —
// if successive waves stop making progress.
func runWorkerWaves(o genOptions, st *campstore.Store, stdout, stderr io.Writer) int {
	stalled := 0
	for wave := 1; ; wave++ {
		if err := st.Sync(); err != nil {
			return genExit(stderr, err)
		}
		before := st.CompletedCount()
		if before >= o.n {
			return exitClean
		}
		procs := make([]*exec.Cmd, 0, o.workers)
		for w := 0; w < o.workers; w++ {
			cmd, err := workerCommand(o)
			if err != nil {
				return genExit(stderr, err)
			}
			cmd.Stdout = io.Discard
			cmd.Stderr = stderr
			if err := cmd.Start(); err != nil {
				return genExit(stderr, faults.IOf("spawn worker: %v", err))
			}
			procs = append(procs, cmd)
		}
		crashed := 0
		for _, cmd := range procs {
			if err := cmd.Wait(); err != nil {
				crashed++
			}
		}
		if err := st.Sync(); err != nil {
			return genExit(stderr, err)
		}
		reclaimed, err := st.Reclaim()
		if err != nil {
			return genExit(stderr, err)
		}
		after := st.CompletedCount()
		fmt.Fprintf(stdout, "== wave %d: %d/%d verdicts (+%d), %d worker(s) died, %d lease(s) reclaimed\n",
			wave, after, o.n, after-before, crashed, reclaimed)
		if after <= before {
			stalled++
			if stalled >= 3 {
				return genExit(stderr, faults.IOf("campaign stalled: %d/%d verdicts after %d waves", after, o.n, wave))
			}
		} else {
			stalled = 0
		}
	}
}

// genSummarize prints the per-verdict summary, writes the report, and
// maps the outcome to the exit-code contract.
func genSummarize(o genOptions, out *progen.Outcome, metrics *obsv.Registry, tracer *obsv.Tracer, stdout, stderr io.Writer) int {
	byVerdict := map[string]int{}
	degraded := 0
	for _, r := range out.Programs {
		byVerdict[r.Verdict]++
		if r.Rung != "" {
			degraded++
		}
		if r.Verdict == "fail" || r.Verdict == "error" {
			fmt.Fprintf(stdout, "== g%04d: %s\n   %s\n", r.Index, r.Verdict, r.Err)
		}
	}
	fmt.Fprintf(stdout, "== conform: seed=%d programs=%d leak=%d clean=%d fail=%d error=%d unknown=%d skipped=%d resumed=%d in %v\n",
		o.seed, len(out.Programs), byVerdict["leak"], byVerdict["clean"],
		byVerdict["fail"], byVerdict["error"], byVerdict["unknown"], byVerdict["skipped"],
		out.Resumed, out.Wall.Round(time.Millisecond))
	for _, f := range out.Failures {
		fmt.Fprintf(stdout, "   oracle %s seed=%d index=%d: %s\n", f.Oracle, f.Seed, f.Index, firstLine(f.Detail))
	}

	if o.report != "" {
		rep := out.Report(o.seed, o.jobs, metrics, tracer)
		if err := rep.WriteFile(o.report); err != nil {
			fmt.Fprintln(stderr, "clou: report:", err)
			return exitUsage
		}
	}
	switch {
	case len(out.Failures) > 0:
		return exitFindings
	case byVerdict["unknown"]+byVerdict["skipped"]+degraded > 0:
		return exitPartial
	}
	return exitClean
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
