// Conformance smoke mode: `clou -gen N -seed S` generates N seeded
// mini-C programs (internal/progen), runs every applicable oracle family
// on each — repair soundness, metamorphic invariance, architectural
// equivalence, differential enumeration — and prints a per-program
// verdict summary. It exits non-zero if any oracle fails, and shares the
// detection CLI's -j / -report / -timeout plumbing.
package main

import (
	"fmt"
	"os"
	"time"

	"lcm/internal/obsv"
	"lcm/internal/progen"
)

// runGen drives one conformance sweep and exits the process.
func runGen(n int, seed int64, jobs int, budget time.Duration, reportPath string) {
	metrics := obsv.NewRegistry()
	tracer := obsv.NewTracer()
	root := tracer.Start("gen")
	out, err := progen.Run(progen.Options{
		Seed:    seed,
		N:       n,
		Jobs:    jobs,
		Budget:  budget,
		Metrics: metrics,
		Span:    root,
	})
	root.End()
	if err != nil {
		fatal(err)
	}

	byVerdict := map[string]int{}
	for _, r := range out.Programs {
		byVerdict[r.Verdict]++
		if r.Verdict == "fail" || r.Verdict == "error" {
			fmt.Printf("== g%04d: %s\n   %s\n", r.Index, r.Verdict, r.Err)
		}
	}
	fmt.Printf("== conform: seed=%d programs=%d leak=%d clean=%d fail=%d error=%d skipped=%d in %v\n",
		seed, len(out.Programs), byVerdict["leak"], byVerdict["clean"],
		byVerdict["fail"], byVerdict["error"], byVerdict["skipped"],
		out.Wall.Round(time.Millisecond))
	for _, f := range out.Failures {
		fmt.Printf("   oracle %s seed=%d index=%d: %s\n", f.Oracle, f.Seed, f.Index, firstLine(f.Detail))
	}

	if reportPath != "" {
		rep := out.Report(seed, jobs, metrics, tracer)
		if err := rep.WriteFile(reportPath); err != nil {
			fatal(fmt.Errorf("report: %w", err))
		}
	}
	if len(out.Failures) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
