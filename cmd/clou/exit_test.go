package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSrc drops a mini-C source into a temp dir and returns its path.
func writeSrc(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cleanSrc = `
uint8_t A[16];
uint8_t get(uint32_t y) {
	uint8_t x = A[0];
	return x;
}
`

// TestExitCodeContract pins the documented CLI exit codes, one scenario
// per code: 0 clean, 1 leaks, 2 usage/IO error, 3 partial/degraded.
func TestExitCodeContract(t *testing.T) {
	leaky := writeSrc(t, "leaky.c", spectreSrc)
	clean := writeSrc(t, "clean.c", cleanSrc)

	t.Run("0_clean", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := run([]string{clean}, &out, &errb); code != 0 {
			t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
		}
	})
	t.Run("1_leaks", func(t *testing.T) {
		var out, errb bytes.Buffer
		if code := run([]string{leaky}, &out, &errb); code != 1 {
			t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "transmitter") {
			t.Error("exit 1 without a reported transmitter")
		}
	})
	t.Run("2_usage", func(t *testing.T) {
		for _, args := range [][]string{
			{},                      // missing file argument
			{"/no/such/file.c"},     // unreadable input
			{"-engine", "x", clean}, // unknown engine
			{"-nonsense-flag"},      // flag parse error
		} {
			var out, errb bytes.Buffer
			if code := run(args, &out, &errb); code != 2 {
				t.Errorf("run(%q) exit = %d, want 2", args, code)
			}
		}
	})
	t.Run("3_partial", func(t *testing.T) {
		// A 1ns budget exhausts every ladder rung deterministically: the
		// verdict is a sound unknown — no findings, but not clean either.
		var out, errb bytes.Buffer
		if code := run([]string{"-timeout", "1ns", leaky}, &out, &errb); code != 3 {
			t.Fatalf("exit = %d, want 3\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
		}
		if !strings.Contains(out.String(), "rung=unknown") {
			t.Errorf("degraded run does not report its rung:\n%s", out.String())
		}
	})
}

// spectreSrc is the canonical Spectre v1 victim (same shape as the
// detect package's fixture).
const spectreSrc = `
uint8_t A[16];
uint8_t B[131072];
uint32_t size_A = 16;
uint8_t tmp;
void victim(uint32_t y) {
	if (y < size_A) {
		uint8_t x = A[y];
		tmp &= B[x * 512];
	}
}
`
