/* Golden-report fixture: a small zoo of Spectre shapes so the report
 * exercises leak, clean, and fence-repaired verdicts in one sweep. */

uint8_t array1[16];
uint8_t array2[131072];
uint32_t array1_size = 16;
uint8_t temp;
uint32_t idx_slot;

void lfence(void);

/* Classic v1 bounds-check bypass: both accesses transient. */
void victim_v1(uint32_t x) {
    if (x < array1_size) {
        temp &= array2[array1[x] * 512];
    }
}

/* Index masking keeps the access in bounds on every path. */
void victim_masked(uint32_t x) {
    if (x < array1_size) {
        temp &= array2[array1[x & 15] * 512];
    }
}

/* The fence retires the bounds check before the accesses issue. */
void victim_fenced(uint32_t x) {
    if (x < array1_size) {
        lfence();
        temp &= array2[array1[x] * 512];
    }
}

/* v4 shape: the masking store can be bypassed by the reload. */
void victim_v4(uint32_t x) {
    idx_slot = x & (array1_size - 1);
    temp &= array2[array1[idx_slot] * 512];
}

uint32_t sec_slot;
uint32_t pub_idx;
uint8_t idx_ary[16];

/* psf shape: the in-flight secret store is wrongly forwarded to the
 * pub_idx load, steering the dependent transmitter. */
void victim_psf(uint32_t x) {
    sec_slot = array1[x & 15];
    uint32_t j = pub_idx;
    temp &= array2[(j & 255) * 512];
}

/* imp shape: the dependent load-pair walk trains the prefetcher, which
 * then dereferences the next index element on its own. */
void victim_imp(uint32_t n) {
    for (uint32_t i = 0; i < n; i++) {
        temp &= array2[idx_ary[i & 7]];
    }
}

/* ss shape: the store of secret data commits silently exactly when the
 * value matches the slot's old content. */
void victim_ss(uint32_t x) {
    sec_slot = array1[x & 15];
}
