// Command clou is the static analyzer of §5: it takes mini-C source,
// lowers it Clang-O0-style, builds the A-CFG and symbolic AEG, and runs
// the Clou-pht or Clou-stl leakage detection engine. It prints detected
// transmitters by class, optionally emits witness executions as DOT
// graphs, and can repair the program by minimal lfence insertion (§6.1).
//
// Usage:
//
//	clou -engine pht|stl [-func name] [-rob 250] [-lsq 50] [-w 100]
//	     [-transmitter udt,uct,dt,ct] [-fix] [-dot] [-timeout 30s]
//	     [-report out.json] [-debug-addr :6060] file.c
//	clou -gen N [-seed S] [-j 8] [-gen-budget 2m] [-report out.json]
//
// -gen N switches to conformance smoke mode: generate N seeded mini-C
// programs and run the progen oracle families on each (see
// internal/progen) instead of analyzing a file.
//
// -report writes the machine-readable run manifest (per-function
// verdicts, metric snapshot, span tree; see internal/obsv); -debug-addr
// serves expvar and net/http/pprof for live inspection of long runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lcm/internal/core"
	"lcm/internal/detect"
	"lcm/internal/dot"
	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/obsv"
	"lcm/internal/repair"
)

func main() {
	engine := flag.String("engine", "pht", "detection engine: pht (Spectre v1/v1.1) or stl (Spectre v4)")
	fn := flag.String("func", "", "analyze only this function (default: all defined functions)")
	rob := flag.Int("rob", 250, "reorder buffer capacity")
	lsq := flag.Int("lsq", 50, "load/store queue capacity")
	wsize := flag.Int("w", 100, "sliding window size (Wsize)")
	classes := flag.String("transmitter", "", "comma-separated classes to search (dt,ct,udt,uct); empty = all")
	fix := flag.Bool("fix", false, "insert a minimal set of lfences and verify the repair")
	emitDot := flag.Bool("dot", false, "print a witness execution as DOT for each finding class")
	timeout := flag.Duration("timeout", 30*time.Second, "per-function time budget")
	printIR := flag.Bool("ir", false, "dump the lowered IR and exit")
	verbose := flag.Bool("v", false, "report candidate and range-pruned pattern counts per function")
	noPrune := flag.Bool("noprune", false, "disable range-analysis candidate pruning")
	par := flag.Int("j", runtime.GOMAXPROCS(0), "analyze up to N functions in parallel")
	reportPath := flag.String("report", "", "write a machine-readable JSON run report to this path (- for stdout)")
	debugAddr := flag.String("debug-addr", "", "serve expvar and net/http/pprof on this address (e.g. :6060)")
	genN := flag.Int("gen", 0, "conformance smoke mode: generate N seeded programs and run the oracle families instead of analyzing a file")
	seed := flag.Int64("seed", 1, "generator seed for -gen")
	genBudget := flag.Duration("gen-budget", 0, "optional wall-clock budget for -gen (0 = none; budgeted runs may skip programs)")
	flag.Parse()

	if *genN > 0 {
		runGen(*genN, *seed, *par, *genBudget, *reportPath)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clou [flags] file.c")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	file, err := minic.Parse(string(src))
	if err != nil {
		fatal(fmt.Errorf("parse: %w", err))
	}
	m, err := lower.Module(file)
	if err != nil {
		fatal(fmt.Errorf("lower: %w", err))
	}
	if *printIR {
		fmt.Print(m.String())
		return
	}

	var cfg detect.Config
	switch *engine {
	case "pht":
		cfg = detect.DefaultPHT()
	case "stl":
		cfg = detect.DefaultSTL()
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	cfg.AEG.ROB = *rob
	cfg.AEG.LSQ = *lsq
	cfg.AEG.Wsize = *wsize
	cfg.Timeout = *timeout
	cfg.NoPrune = *noPrune
	if *classes != "" {
		for _, c := range strings.Split(*classes, ",") {
			switch strings.TrimSpace(strings.ToLower(c)) {
			case "dt":
				cfg.Transmitters = append(cfg.Transmitters, core.DT)
			case "ct":
				cfg.Transmitters = append(cfg.Transmitters, core.CT)
			case "udt":
				cfg.Transmitters = append(cfg.Transmitters, core.UDT)
			case "uct":
				cfg.Transmitters = append(cfg.Transmitters, core.UCT)
			default:
				fatal(fmt.Errorf("unknown transmitter class %q", c))
			}
		}
	}

	// Observability: the tracer and registry are allocated only when a
	// consumer asked for them (-report or -debug-addr); nil handles make
	// every span/metric call a no-op.
	var tracer *obsv.Tracer
	var metrics *obsv.Registry
	if *reportPath != "" || *debugAddr != "" {
		tracer = obsv.NewTracer()
		metrics = obsv.NewRegistry()
	}
	if *debugAddr != "" {
		addr, err := obsv.ServeDebug(*debugAddr, metrics)
		if err != nil {
			fatal(fmt.Errorf("debug server: %w", err))
		}
		fmt.Fprintf(os.Stderr, "clou: debug server on http://%s/debug/\n", addr)
	}

	// Detection fans out over the worker pool; repair (which mutates the
	// module) and printing stay serial, in input order. The analysis cache
	// shares frontends between workers, but is withheld under -fix: a
	// cache must never outlive a module mutation.
	var cache *detect.Cache
	if !*fix {
		cache = detect.NewCache()
		cfg.Cache = cache
	}
	cfg.Metrics = metrics
	sweepStart := time.Now()
	fns := targets(m, *fn)
	results, errs := analyzeAll(m, fns, cfg, *par, tracer)

	totalFindings := 0
	for i, name := range fns {
		res, err := results[i], errs[i]
		if err != nil {
			fmt.Fprintf(os.Stderr, "clou: %s: %v\n", name, err)
			continue
		}
		counts := res.Counts()
		fmt.Printf("== %s: %d nodes, %d queries, %v%s\n", name, res.NodeCount, res.Queries,
			res.Duration.Round(time.Millisecond), timedOut(res.TimedOut))
		fmt.Printf("   DT=%d CT=%d UDT=%d UCT=%d\n",
			counts[core.DT], counts[core.CT], counts[core.UDT], counts[core.UCT])
		if *verbose {
			fmt.Printf("   candidates=%d pruned=%d (range analysis)\n", res.Candidates, res.Pruned)
			fmt.Printf("   frontend=%v encode=%v solve=%v cached=%v memo-hits=%d\n",
				res.FrontendTime.Round(time.Microsecond), res.EncodeTime.Round(time.Microsecond),
				res.SolveTime.Round(time.Microsecond), res.CacheHit, res.MemoHits)
		}
		for _, f := range res.Findings {
			fmt.Printf("   %s\n", f)
			totalFindings++
		}
		if *emitDot && len(res.Findings) > 0 {
			g, err := detect.Witness(res, res.Findings[0])
			if err == nil {
				fmt.Println(dot.Graph(g, name+"-witness"))
			}
		}
		if *fix && len(res.Findings) > 0 {
			rr, err := repair.Repair(m, name, cfg, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "clou: repair %s: %v\n", name, err)
				continue
			}
			fmt.Printf("   repaired with %d lfence(s) in %d round(s); remaining findings: %d\n",
				rr.Fences, rr.Rounds, rr.Remaining)
		}
	}
	if *fix {
		fmt.Println("== repaired IR ==")
		fmt.Print(m.String())
	}
	if *verbose && cache != nil {
		hits, misses := cache.Stats()
		fmt.Printf("== workers=%d frontend-cache: hits=%d misses=%d\n", *par, hits, misses)
	}
	if *reportPath != "" {
		rep := buildReport(*engine, *par, fns, results, errs, tracer, metrics, time.Since(sweepStart))
		if err := rep.WriteFile(*reportPath); err != nil {
			fatal(fmt.Errorf("report: %w", err))
		}
	}
	if totalFindings > 0 && !*fix {
		os.Exit(1)
	}
}

func targets(m *ir.Module, only string) []string {
	if only != "" {
		return []string{only}
	}
	var out []string
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			out = append(out, f.Nm)
		}
	}
	return out
}

func timedOut(b bool) string {
	if b {
		return " (timed out)"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clou:", err)
	os.Exit(1)
}
