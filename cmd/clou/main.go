// Command clou is the static analyzer of §5: it takes mini-C source,
// lowers it Clang-O0-style, builds the A-CFG and symbolic AEG, and runs
// the Clou-pht or Clou-stl leakage detection engine. It prints detected
// transmitters by class, optionally emits witness executions as DOT
// graphs, and can repair the program by minimal lfence insertion (§6.1).
//
// Usage:
//
//	clou -engine pht|stl [-func name] [-rob 250] [-lsq 50] [-w 100]
//	     [-transmitter udt,uct,dt,ct] [-fix] [-dot] [-timeout 30s]
//	     [-report out.json] [-debug-addr :6060] file.c
//	clou -gen N [-seed S] [-j 8] [-gen-budget 2m] [-report out.json]
//	     [-checkpoint run.ckpt [-resume]]
//	clou -gen N -store DIR [-workers 4] [-import-checkpoint run.ckpt]
//	     [-report out.json]
//
// -gen N switches to conformance smoke mode: generate N seeded mini-C
// programs and run the progen oracle families on each (see
// internal/progen) instead of analyzing a file. -checkpoint logs each
// completed program to disk; -resume skips the indices already logged,
// so a killed campaign continues instead of restarting.
//
// -store DIR keeps campaign state in a crash-safe transactional store
// (internal/campstore) instead: verdicts are WAL-committed as they land
// and a rerun with the same -store resumes automatically. -workers N
// shards the campaign across N OS worker processes coordinating purely
// through the store (a killed worker's claims are reclaimed between
// waves); -worker is the spawned workers' own mode. -import-checkpoint
// migrates an old JSONL checkpoint into the store first.
//
// -report writes the machine-readable run manifest (per-function
// verdicts, metric snapshot, span tree; see internal/obsv); -debug-addr
// serves expvar and net/http/pprof for live inspection of long runs.
//
// Exit codes: 0 = analysis completed clean at full precision; 1 = leaks
// detected (or conformance oracle failures); 2 = usage or input error;
// 3 = partial or operational: no findings, but at least one verdict was
// degraded, unknown, or skipped — or campaign storage failed with a
// classified io/corrupt fault (the state on disk survives; retry to
// finish).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"lcm/internal/core"
	"lcm/internal/detect"
	"lcm/internal/dot"
	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/obsv"
	"lcm/internal/repair"
	"lcm/internal/smt"
)

// Exit codes of the CLI contract (shared with lcmlint).
const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
	exitPartial  = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main under test: it parses args, drives one analysis or
// conformance sweep, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clou", flag.ContinueOnError)
	fs.SetOutput(stderr)
	engine := fs.String("engine", "pht", "detection engine: pht (Spectre v1/v1.1), stl (Spectre v4), psf (alias-predicted store forwarding), imp (indirect memory prefetcher), or ss (silent stores)")
	fn := fs.String("func", "", "analyze only this function (default: all defined functions)")
	rob := fs.Int("rob", 250, "reorder buffer capacity")
	lsq := fs.Int("lsq", 50, "load/store queue capacity")
	wsize := fs.Int("w", 100, "sliding window size (Wsize)")
	classes := fs.String("transmitter", "", "comma-separated classes to search (dt,ct,udt,uct); empty = all")
	fix := fs.Bool("fix", false, "insert a minimal set of lfences and verify the repair")
	emitDot := fs.Bool("dot", false, "print a witness execution as DOT for each finding class")
	timeout := fs.Duration("timeout", 30*time.Second, "per-function time budget")
	printIR := fs.Bool("ir", false, "dump the lowered IR and exit")
	verbose := fs.Bool("v", false, "report candidate and range-pruned pattern counts per function")
	noPrune := fs.Bool("noprune", false, "disable range-analysis candidate pruning")
	noPresolve := fs.Bool("nopresolve", false, "disable the proof-carrying static pre-solver (ablation baseline)")
	auditPresolve := fs.Bool("audit-presolve", false, "replay every statically refuted query through the solver and fail on disagreement")
	solverMode := fs.String("solver", "incremental", "residual-query solver mode: incremental (warm CDCL), fresh (replayed reference instance per query), or check (both; fail on verdict mismatch)")
	litmusSuite := fs.String("litmus", "", "run the built-in litmus corpus (pht, stl, fwd, new, psf, imp, ss, or all) instead of analyzing a file")
	par := fs.Int("j", runtime.GOMAXPROCS(0), "analyze up to N functions in parallel")
	reportPath := fs.String("report", "", "write a machine-readable JSON run report to this path (- for stdout)")
	debugAddr := fs.String("debug-addr", "", "serve expvar and net/http/pprof on this address (e.g. :6060)")
	genN := fs.Int("gen", 0, "conformance smoke mode: generate N seeded programs and run the oracle families instead of analyzing a file")
	seed := fs.Int64("seed", 1, "generator seed for -gen")
	genBudget := fs.Duration("gen-budget", 0, "optional wall-clock budget for -gen (0 = none; budgeted runs may skip programs)")
	checkpoint := fs.String("checkpoint", "", "for -gen: log each completed program to this file (JSON lines)")
	resume := fs.Bool("resume", false, "for -gen: skip indices already recorded in -checkpoint")
	storeDir := fs.String("store", "", "for -gen: crash-safe campaign store directory (resumes automatically; excludes -checkpoint)")
	workers := fs.Int("workers", 0, "for -gen -store: shard the campaign across N OS worker processes")
	workerMode := fs.Bool("worker", false, "for -gen -store: run as a campaign worker (claim items until none remain)")
	importCkpt := fs.String("import-checkpoint", "", "for -gen -store: migrate this JSONL checkpoint into the store before running")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if *genN > 0 {
		return runGen(genOptions{
			n: *genN, seed: *seed, jobs: *par, budget: *genBudget,
			report: *reportPath, checkpoint: *checkpoint, resume: *resume,
			store: *storeDir, workers: *workers, workerMode: *workerMode,
			importCkpt: *importCkpt,
		}, stdout, stderr)
	}
	mode, err := smt.ParseMode(*solverMode)
	if err != nil {
		fmt.Fprintln(stderr, "clou:", err)
		return exitUsage
	}
	if *litmusSuite != "" {
		return runLitmus(litmusOptions{
			suite: *litmusSuite, jobs: *par, timeout: *timeout,
			noPresolve: *noPresolve, audit: *auditPresolve, verbose: *verbose,
			solver: mode,
		}, stdout, stderr)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: clou [flags] file.c")
		fs.Usage()
		return exitUsage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "clou:", err)
		return exitUsage
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	file, err := minic.Parse(string(src))
	if err != nil {
		return fail(fmt.Errorf("parse: %w", err))
	}
	m, err := lower.Module(file)
	if err != nil {
		return fail(fmt.Errorf("lower: %w", err))
	}
	if *printIR {
		fmt.Fprint(stdout, m.String())
		return exitClean
	}

	eng, err := detect.ParseEngine(*engine)
	if err != nil {
		return fail(err)
	}
	cfg := detect.DefaultConfig(eng)
	cfg.AEG.ROB = *rob
	cfg.AEG.LSQ = *lsq
	cfg.AEG.Wsize = *wsize
	cfg.Timeout = *timeout
	cfg.ShardWorkers = *par
	cfg.NoPrune = *noPrune
	cfg.NoPresolve = *noPresolve
	cfg.AuditPresolve = *auditPresolve
	cfg.AEG.SolverMode = mode
	if *classes != "" {
		for _, c := range strings.Split(*classes, ",") {
			switch strings.TrimSpace(strings.ToLower(c)) {
			case "dt":
				cfg.Transmitters = append(cfg.Transmitters, core.DT)
			case "ct":
				cfg.Transmitters = append(cfg.Transmitters, core.CT)
			case "udt":
				cfg.Transmitters = append(cfg.Transmitters, core.UDT)
			case "uct":
				cfg.Transmitters = append(cfg.Transmitters, core.UCT)
			default:
				return fail(fmt.Errorf("unknown transmitter class %q", c))
			}
		}
	}

	// Observability: the tracer and registry are allocated only when a
	// consumer asked for them (-report or -debug-addr); nil handles make
	// every span/metric call a no-op.
	var tracer *obsv.Tracer
	var metrics *obsv.Registry
	if *reportPath != "" || *debugAddr != "" {
		tracer = obsv.NewTracer()
		metrics = obsv.NewRegistry()
	}
	if *debugAddr != "" {
		addr, err := obsv.ServeDebug(*debugAddr, metrics)
		if err != nil {
			return fail(fmt.Errorf("debug server: %w", err))
		}
		fmt.Fprintf(stderr, "clou: debug server on http://%s/debug/\n", addr)
	}

	// Detection fans out over the worker pool; repair (which mutates the
	// module) and printing stay serial, in input order. The analysis cache
	// shares frontends between workers, but is withheld under -fix: a
	// cache must never outlive a module mutation.
	var cache *detect.Cache
	if !*fix {
		cache = detect.NewCache()
		cfg.Cache = cache
	}
	cfg.Metrics = metrics
	sweepStart := time.Now()
	fns := targets(m, *fn)
	results, errs := analyzeAll(context.Background(), m, fns, cfg, *par, tracer)

	totalFindings := 0
	sweepErrors := 0
	degraded := 0
	disagreements := 0
	for i, name := range fns {
		res, err := results[i], errs[i]
		if err != nil {
			fmt.Fprintf(stderr, "clou: %s: %v\n", name, err)
			sweepErrors++
			continue
		}
		counts := res.Counts()
		fmt.Fprintf(stdout, "== %s: %d nodes, %d queries, %v%s\n", name, res.NodeCount, res.Queries,
			res.Duration.Round(time.Millisecond), rungSuffix(res))
		fmt.Fprintf(stdout, "   DT=%d CT=%d UDT=%d UCT=%d\n",
			counts[core.DT], counts[core.CT], counts[core.UDT], counts[core.UCT])
		if res.Rung != detect.RungFull {
			degraded++
		}
		disagreements += res.PresolveDisagreements
		if *verbose {
			fmt.Fprintf(stdout, "   candidates=%d pruned=%d (range analysis)\n", res.Candidates, res.Pruned)
			if !*noPresolve {
				fmt.Fprintf(stdout, "   presolve: discharged=%d skipped-queries=%d certs=%d audited=%d disagreements=%d\n",
					res.Discharged, res.SkippedQueries, len(res.Certificates), res.PresolveAudited, res.PresolveDisagreements)
			}
			fmt.Fprintf(stdout, "   frontend=%v encode=%v solve=%v cached=%v memo-hits=%d\n",
				res.FrontendTime.Round(time.Microsecond), res.EncodeTime.Round(time.Microsecond),
				res.SolveTime.Round(time.Microsecond), res.CacheHit, res.MemoHits)
			fmt.Fprintf(stdout, "   frontend: alias=%v flowgraph=%v aeg-build=%v presolve-facts=%v\n",
				res.AliasTime.Round(time.Microsecond), res.FlowTime.Round(time.Microsecond),
				res.EncodeTime.Round(time.Microsecond), res.PresolveFactsTime.Round(time.Microsecond))
		}
		for _, f := range res.Findings {
			fmt.Fprintf(stdout, "   %s\n", f)
			totalFindings++
		}
		if *emitDot && len(res.Findings) > 0 {
			g, err := detect.Witness(res, res.Findings[0])
			if err == nil {
				fmt.Fprintln(stdout, dot.Graph(g, name+"-witness"))
			}
		}
		if *fix && len(res.Findings) > 0 {
			rr, err := repair.Repair(m, name, cfg, 0)
			if err != nil {
				fmt.Fprintf(stderr, "clou: repair %s: %v\n", name, err)
				sweepErrors++
				continue
			}
			fmt.Fprintf(stdout, "   repaired with %d lfence(s) in %d round(s); remaining findings: %d\n",
				rr.Fences, rr.Rounds, rr.Remaining)
		}
	}
	if *fix {
		fmt.Fprintln(stdout, "== repaired IR ==")
		fmt.Fprint(stdout, m.String())
	}
	if *verbose && cache != nil {
		hits, misses := cache.Stats()
		fmt.Fprintf(stdout, "== workers=%d frontend-cache: hits=%d misses=%d\n", *par, hits, misses)
	}
	if *reportPath != "" {
		rep := buildReport(*engine, *par, fns, results, errs, tracer, metrics, time.Since(sweepStart))
		if err := rep.WriteFile(*reportPath); err != nil {
			return fail(fmt.Errorf("report: %w", err))
		}
	}
	if disagreements > 0 {
		fmt.Fprintf(stderr, "clou: presolve audit: %d disagreement(s)\n", disagreements)
	}
	switch {
	case sweepErrors > 0:
		return exitUsage
	case disagreements > 0:
		return exitFindings
	case totalFindings > 0 && !*fix:
		return exitFindings
	case degraded > 0:
		return exitPartial
	}
	return exitClean
}

func targets(m *ir.Module, only string) []string {
	if only != "" {
		return []string{only}
	}
	var out []string
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			out = append(out, f.Nm)
		}
	}
	return out
}

// rungSuffix annotates the per-function summary line with the
// degradation-ladder rung the verdict was decided at, when not full.
func rungSuffix(res *detect.Result) string {
	if res.Rung == detect.RungFull {
		return ""
	}
	if res.Failure != "" {
		return fmt.Sprintf(" (rung=%s after %s)", res.Rung, res.Failure)
	}
	return fmt.Sprintf(" (rung=%s)", res.Rung)
}
