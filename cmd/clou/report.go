package main

import (
	"context"
	"time"

	"lcm/internal/detect"
	"lcm/internal/harness"
	"lcm/internal/ir"
	"lcm/internal/obsv"
)

// analyzeAll runs the parallel detection sweep over fns under one root
// span, returning per-function results and errors in input order. Each
// function goes through the fault-tolerant supervisor, so a deadline,
// budget exhaustion, or worker panic degrades that function's verdict
// down the ladder instead of losing it. The tracer and registry may be
// nil (observability disabled).
func analyzeAll(ctx context.Context, m *ir.Module, fns []string, cfg detect.Config, par int, tr *obsv.Tracer) ([]*detect.Result, []error) {
	results := make([]*detect.Result, len(fns))
	errs := make([]error, len(fns))
	root := tr.Start("clou")
	itemErrs := harness.ForEachSpanCtx(ctx, root, "detect", par, len(fns), func(i int, sp *obsv.Span) error {
		c := cfg
		c.Span = sp
		results[i], errs[i] = detect.AnalyzeFuncLadder(ctx, m, fns[i], c)
		return nil
	})
	for i, err := range itemErrs {
		if err != nil && errs[i] == nil && results[i] == nil {
			errs[i] = err
		}
	}
	root.End()
	return results, errs
}

// buildReport assembles the stable JSON run manifest from a finished
// sweep: per-function verdicts in input order, the metrics snapshot, and
// the span tree.
func buildReport(engine string, workers int, fns []string, results []*detect.Result,
	errs []error, tr *obsv.Tracer, reg *obsv.Registry, wall time.Duration) *obsv.Report {
	rep := &obsv.Report{
		Tool:    "clou",
		Version: obsv.Version,
		Engine:  engine,
		Workers: workers,
		WallNs:  wall.Nanoseconds(),
		Metrics: reg.Snapshot(),
		Spans:   obsv.SpanTree(tr),
	}
	for i, name := range fns {
		if errs[i] != nil {
			rep.Functions = append(rep.Functions, obsv.FuncReport{
				Name: name, Verdict: "error", Error: errs[i].Error(),
			})
			continue
		}
		rep.Functions = append(rep.Functions, results[i].Report())
	}
	return rep
}
