package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"lcm/internal/obsv"
)

// TestMain doubles as the re-exec entry point for spawned campaign
// workers: the -workers tests override workerCommand to launch this
// same test binary with CLOU_WORKER_HELPER set, which turns the process
// into a plain `clou` invocation before any test flags are parsed.
func TestMain(m *testing.M) {
	if os.Getenv("CLOU_WORKER_HELPER") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// withTestWorkers reroutes worker spawning through the test binary for
// the duration of one test.
func withTestWorkers(t *testing.T) {
	t.Helper()
	orig := workerCommand
	workerCommand = func(o genOptions) (*exec.Cmd, error) {
		cmd := exec.Command(os.Args[0],
			"-gen", strconv.Itoa(o.n),
			"-seed", strconv.FormatInt(o.seed, 10),
			"-store", o.store,
			"-worker")
		cmd.Env = append(os.Environ(), "CLOU_WORKER_HELPER=1")
		return cmd, nil
	}
	t.Cleanup(func() { workerCommand = orig })
}

// TestGenStoreExitCodes extends the exit-code contract to the campaign
// store: classified operational faults (io, corrupt) take the partial
// arm — the state on disk survives and a retry can finish — while flag
// misuse stays a usage error.
func TestGenStoreExitCodes(t *testing.T) {
	t.Run("2_store_with_checkpoint", func(t *testing.T) {
		var out, errb bytes.Buffer
		args := []string{"-gen", "2", "-store", t.TempDir(), "-checkpoint", filepath.Join(t.TempDir(), "ck")}
		if code := run(args, &out, &errb); code != exitUsage {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitUsage, errb.String())
		}
		if !strings.Contains(errb.String(), "mutually exclusive") {
			t.Errorf("usage error does not explain the conflict:\n%s", errb.String())
		}
	})
	t.Run("2_worker_without_store", func(t *testing.T) {
		for _, args := range [][]string{
			{"-gen", "2", "-worker"},
			{"-gen", "2", "-workers", "2"},
			{"-gen", "2", "-import-checkpoint", "x"},
		} {
			var out, errb bytes.Buffer
			if code := run(args, &out, &errb); code != exitUsage {
				t.Errorf("run(%q) exit = %d, want %d", args, code, exitUsage)
			}
		}
	})
	t.Run("3_io_store_path_is_file", func(t *testing.T) {
		// The store directory path is an existing regular file: MkdirAll
		// fails with a classified io fault, not a panic or usage error.
		path := filepath.Join(t.TempDir(), "not-a-dir")
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		var out, errb bytes.Buffer
		if code := run([]string{"-gen", "2", "-store", path}, &out, &errb); code != exitPartial {
			t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitPartial, errb.String())
		}
	})
	t.Run("3_corrupt_snapshot", func(t *testing.T) {
		if testing.Short() {
			t.Skip("campaign run in -short mode")
		}
		dir := t.TempDir()
		var out, errb bytes.Buffer
		if code := run([]string{"-gen", "2", "-seed", "5", "-store", dir}, &out, &errb); code != exitClean {
			t.Fatalf("seed campaign exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
				code, exitClean, out.String(), errb.String())
		}
		snap := filepath.Join(dir, "snapshot.json")
		data, err := os.ReadFile(snap)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(snap, data, 0o644); err != nil {
			t.Fatal(err)
		}
		out.Reset()
		errb.Reset()
		if code := run([]string{"-gen", "2", "-seed", "5", "-store", dir}, &out, &errb); code != exitPartial {
			t.Fatalf("corrupted-store exit = %d, want %d\nstderr:\n%s", code, exitPartial, errb.String())
		}
		if !strings.Contains(errb.String(), "snapshot") {
			t.Errorf("corruption error does not name the snapshot:\n%s", errb.String())
		}
	})
}

// normalizedReport reads a -report file back and renders its normalized
// form — the representation the identity guarantees are stated over.
func normalizedReport(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep obsv.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parse report %s: %v", path, err)
	}
	rep.Normalize()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestGenStoreWorkersIdentity is the CLI-level identity guarantee: the
// same campaign run sharded across worker processes, in one process,
// and replayed from an already-finished store emits byte-identical
// normalized reports and the same exit code.
func TestGenStoreWorkersIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process campaign in -short mode")
	}
	withTestWorkers(t)
	campaign := []string{"-gen", "4", "-seed", "5"}

	shardDir, repDir := t.TempDir(), t.TempDir()
	shardRep := filepath.Join(repDir, "sharded.json")
	var out, errb bytes.Buffer
	args := append(append([]string{}, campaign...),
		"-store", shardDir, "-workers", "2", "-report", shardRep)
	if code := run(args, &out, &errb); code != exitClean {
		t.Fatalf("sharded exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, exitClean, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "== wave 1:") {
		t.Errorf("sharded run printed no wave summary:\n%s", out.String())
	}

	soloDir := t.TempDir()
	soloRep := filepath.Join(repDir, "solo.json")
	out.Reset()
	errb.Reset()
	args = append(append([]string{}, campaign...), "-store", soloDir, "-report", soloRep)
	if code := run(args, &out, &errb); code != exitClean {
		t.Fatalf("single-process exit = %d, want %d\nstderr:\n%s", code, exitClean, errb.String())
	}

	// Re-running over the finished sharded store replays every verdict.
	replayRep := filepath.Join(repDir, "replay.json")
	out.Reset()
	errb.Reset()
	args = append(append([]string{}, campaign...), "-store", shardDir, "-report", replayRep)
	if code := run(args, &out, &errb); code != exitClean {
		t.Fatalf("replay exit = %d, want %d\nstderr:\n%s", code, exitClean, errb.String())
	}
	if !strings.Contains(out.String(), "resumed=4") {
		t.Errorf("replay run re-analyzed instead of resuming:\n%s", out.String())
	}

	sharded := normalizedReport(t, shardRep)
	solo := normalizedReport(t, soloRep)
	replay := normalizedReport(t, replayRep)
	if sharded != solo {
		t.Errorf("sharded report differs from single-process report:\n--- sharded ---\n%s--- solo ---\n%s", sharded, solo)
	}
	if replay != sharded {
		t.Errorf("replayed report differs from original sharded report")
	}
}
