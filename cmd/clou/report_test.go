package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lcm/internal/detect"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/obsv"
)

var update = flag.Bool("update", false, "rewrite golden report files")

// TestReportGolden pins the normalized -report JSON for both engines over
// the fixture zoo, and proves the document is independent of the worker
// count: the same bytes must come out at -j 1 and -j 8. Regenerate with
// `go test ./cmd/clou -run TestReportGolden -update` after an intentional
// schema or verdict change.
func TestReportGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "zoo.c"))
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"pht", "stl", "psf", "imp", "ss"} {
		golden := filepath.Join("testdata", "report_"+engine+".golden.json")
		for _, workers := range []int{1, 8} {
			t.Run(engine+"/j"+string(rune('0'+workers)), func(t *testing.T) {
				got := runReport(t, string(src), engine, workers)
				if *update && workers == 1 {
					if err := os.WriteFile(golden, got, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("%v (run with -update to create)", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("report differs from %s at -j %d:\n--- got ---\n%s--- want ---\n%s",
						golden, workers, got, want)
				}
			})
		}
	}
}

// runReport replays the -report path of main: sweep, build, normalize,
// serialize.
func runReport(t *testing.T, src, engine string, workers int) []byte {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	eng, err := detect.ParseEngine(engine)
	if err != nil {
		t.Fatal(err)
	}
	cfg := detect.DefaultConfig(eng)
	cfg.Timeout = 60 * time.Second
	cfg.Cache = detect.NewCache()
	tracer := obsv.NewTracer()
	cfg.Metrics = obsv.NewRegistry()

	start := time.Now()
	fns := targets(m, "")
	results, errs := analyzeAll(context.Background(), m, fns, cfg, workers, tracer)
	rep := buildReport(engine, workers, fns, results, errs, tracer, cfg.Metrics, time.Since(start))
	rep.Normalize()

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes()
}
