// Command litmus regenerates Table 2 and Fig. 8 of the paper: runtimes
// and classified transmitter counts for Clou-pht/Clou-stl versus the
// BH-style baseline, over the 36-program litmus corpus and the
// crypto-library corpus, plus the per-function runtime-versus-size series.
//
// Usage:
//
//	litmus               # litmus suites (Table 2, top half)
//	litmus -crypto       # crypto libraries (Table 2, bottom half)
//	litmus -fig8         # runtime vs S-AEG size (Fig. 8 series)
//	litmus -repair       # fence-insertion study (§6.1)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lcm/internal/cryptolib"
	"lcm/internal/detect"
	"lcm/internal/harness"
	"lcm/internal/litmus"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/repair"
)

func main() {
	crypto := flag.Bool("crypto", false, "analyze the crypto-library corpus")
	fig8 := flag.Bool("fig8", false, "produce the Fig. 8 runtime-vs-size series")
	doRepair := flag.Bool("repair", false, "run the §6.1 fence-insertion study")
	timeout := flag.Duration("timeout", 20*time.Second, "per-function budget")
	flag.Parse()

	opts := harness.Options{FuncTimeout: *timeout, CryptoUniversalOnly: true}

	switch {
	case *fig8:
		pts, err := harness.RunFig8(opts)
		if err != nil {
			fatal(err)
		}
		harness.WriteFig8(os.Stdout, pts)
	case *crypto:
		fmt.Println("Table 2 (crypto-libraries; Clou searches UDT/UCT only, §6.2):")
		for _, lib := range cryptolib.All() {
			rows, err := harness.RunLibrary(lib, opts)
			if err != nil {
				fatal(err)
			}
			for _, r := range rows {
				fmt.Println(r.Format())
			}
		}
	case *doRepair:
		repairStudy(*timeout)
	default:
		fmt.Println("Table 2 (litmus suites):")
		for _, suite := range []string{"pht", "stl", "fwd", "new", "psf", "imp", "ss"} {
			rows, err := harness.RunLitmusSuite(suite, opts)
			if err != nil {
				fatal(err)
			}
			for _, r := range rows {
				fmt.Println(r.Format())
			}
		}
	}
}

// repairStudy reproduces §6.1: direct Clou to insert fences in every
// benchmark and confirm all initially-detected leakage is mitigated.
func repairStudy(timeout time.Duration) {
	fmt.Println("Fence-insertion study (§6.1):")
	for _, c := range litmus.All() {
		file, err := minic.Parse(c.Source)
		if err != nil {
			fatal(err)
		}
		m, err := lower.Module(file)
		if err != nil {
			fatal(err)
		}
		cfg := detect.DefaultPHT()
		switch c.Suite {
		case "stl":
			cfg = detect.DefaultSTL()
		case "psf":
			cfg = detect.DefaultPSF()
		case "imp":
			cfg = detect.DefaultIMP()
		case "ss":
			cfg = detect.DefaultSS()
		}
		cfg.Timeout = timeout
		res, err := repair.Repair(m, c.Fn, cfg, 0)
		if err != nil {
			fmt.Printf("  %-8s repair error: %v\n", c.Name, err)
			continue
		}
		status := "mitigated"
		if res.Remaining > 0 {
			status = fmt.Sprintf("REMAINING=%d", res.Remaining)
		}
		fmt.Printf("  %-8s fences=%d rounds=%d %s\n", c.Name, res.Fences, res.Rounds, status)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "litmus:", err)
	os.Exit(1)
}
