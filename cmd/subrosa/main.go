// Command subrosa is the LCM exploration toolkit of §3.4: it reconstructs
// the candidate executions of the paper's attack sampling (Figs. 2–5),
// checks the non-interference predicates of §4.1 against them, classifies
// transmitters per Table 1, and renders the executions as DOT graphs. It
// can also enumerate the architectural and speculative semantics of the
// built-in litmus programs under a chosen memory model.
//
// Usage:
//
//	subrosa -list
//	subrosa -attack spectre-v1 [-dot]
//	subrosa -prog spectre-v1 [-model tso] [-depth 2] [-dot]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lcm/internal/attacks"
	"lcm/internal/core"
	"lcm/internal/dot"
	"lcm/internal/mcm"
	"lcm/internal/prog"
	"lcm/internal/relation"
)

func main() {
	list := flag.Bool("list", false, "list built-in attacks and programs")
	attack := flag.String("attack", "", "analyze a reconstructed attack execution (Figs. 2–5)")
	program := flag.String("prog", "", "enumerate executions of a built-in litmus program")
	compare := flag.String("compare", "", "compare two machines on an attack's event structure, e.g. baseline,intel-x86")
	model := flag.String("model", "tso", "memory model: sc, tso, relaxed")
	depth := flag.Int("depth", 2, "control-flow speculation depth for -prog")
	emitDot := flag.Bool("dot", false, "emit DOT graphs")
	flag.Parse()

	switch {
	case *list:
		fmt.Println("attacks (figure-accurate candidate executions):")
		for _, a := range attacks.All() {
			fmt.Printf("  %-18s %s\n", a.Name, a.Figure)
		}
		fmt.Println("programs (litmus expansion):")
		for _, p := range programs() {
			fmt.Printf("  %s\n", p.Name)
		}
	case *attack != "" && *compare == "":
		runAttack(*attack, *emitDot)
	case *program != "":
		runProgram(*program, *model, *depth, *emitDot)
	case *compare != "":
		runCompare(*compare, *attack)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func machineByName(name string) (core.Machine, bool) {
	switch name {
	case "baseline":
		return core.Baseline(), true
	case "intel-x86":
		return core.IntelX86(), true
	case "permissive":
		return core.Permissive(), true
	case "baseline+silent-stores":
		m := core.Baseline()
		m.AllowSilentStores = true
		m.MachineName = name
		return m, true
	}
	return core.Machine{}, false
}

// runCompare implements the §3.4 roadmap: automatically comparing LCMs
// across microarchitectures by finding executions one machine permits and
// the other forbids.
func runCompare(spec, attackName string) {
	parts := strings.SplitN(spec, ",", 2)
	if len(parts) != 2 {
		fmt.Fprintln(os.Stderr, "subrosa: -compare wants two machine names, e.g. baseline,intel-x86")
		os.Exit(2)
	}
	m1, ok1 := machineByName(parts[0])
	m2, ok2 := machineByName(parts[1])
	if !ok1 || !ok2 {
		fmt.Fprintln(os.Stderr, "subrosa: machines: baseline, intel-x86, permissive, baseline+silent-stores")
		os.Exit(2)
	}
	if attackName == "" {
		attackName = "spectre-v4"
	}
	for _, a := range attacks.All() {
		if a.Name != attackName {
			continue
		}
		// Compare on the attack's event structure with witnesses cleared
		// down to the architectural ones.
		g := a.Graph.Clone()
		g.RFX = relation.New()
		g.COX = relation.New()
		ds := core.CompareMachines(g, m1, m2, core.CompareOptions{})
		fmt.Printf("== %s vs %s on %s: %d distinguishing executions\n",
			m1.Name(), m2.Name(), a.Name, len(ds))
		for i, d := range ds {
			leak := ""
			if d.Leaky {
				leak = " [leaky]"
			}
			fmt.Printf("   %d: permitted by %s, rejected by %s%s\n", i+1, d.Permits, d.Rejects, leak)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "subrosa: unknown attack %q\n", attackName)
	os.Exit(1)
}

func programs() []*prog.Program {
	return []*prog.Program{
		prog.SpectreV1(), prog.SpectreV1Variant(), prog.SpectreV4(),
		prog.MP(), prog.SB(), prog.SBFenced(), prog.CoRR(),
	}
}

func runAttack(name string, emitDot bool) {
	for _, a := range attacks.All() {
		if a.Name != name {
			continue
		}
		fmt.Printf("== %s (%s) on machine %s\n", a.Name, a.Figure, a.Machine.Name())
		if !a.Machine.Confidential(a.Graph) {
			fmt.Println("   execution rejected by the machine's confidentiality predicate")
			os.Exit(1)
		}
		vs := core.CheckNonInterference(a.Graph)
		fmt.Printf("   %d non-interference violations\n", len(vs))
		for _, v := range vs {
			fmt.Printf("   - %s\n", v)
		}
		ts := core.Classify(a.Graph, vs, core.ClassifyOptions{})
		fmt.Printf("   %d transmitters:\n", len(ts))
		for _, t := range ts {
			fmt.Printf("   - %s (%s)\n", t, a.Graph.Events[t.Event].Label)
		}
		if emitDot {
			fmt.Println(dot.Graph(a.Graph, a.Name))
		}
		return
	}
	fmt.Fprintf(os.Stderr, "subrosa: unknown attack %q (try -list)\n", name)
	os.Exit(1)
}

func runProgram(name, model string, depth int, emitDot bool) {
	var p *prog.Program
	for _, q := range programs() {
		if q.Name == name {
			p = q
		}
	}
	if p == nil {
		fmt.Fprintf(os.Stderr, "subrosa: unknown program %q (try -list)\n", name)
		os.Exit(1)
	}
	var m mcm.Model
	switch model {
	case "sc":
		m = mcm.SC{}
	case "tso":
		m = mcm.TSO{}
	case "relaxed":
		m = mcm.Relaxed{}
	default:
		fmt.Fprintf(os.Stderr, "subrosa: unknown model %q\n", model)
		os.Exit(1)
	}

	structures := prog.Expand(p, prog.ExpandOptions{
		Depth: depth, XStateForLocation: true, Observer: true,
		// Store-bypass windows matter for the v4 program; harmless
		// elsewhere (no eligible load ⇒ no extra structures).
		AddressSpeculation: true,
	})
	fmt.Printf("== %s: %d event structures (depth %d), model %s\n",
		p.Name, len(structures), depth, m.Name())
	findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{
		Model: m,
	})
	fmt.Printf("   %d leaky consistent candidate executions\n", len(findings))
	sum := core.Summarize(findings)
	fmt.Printf("   transmitters by class: AT=%d CT=%d DT=%d UCT=%d UDT=%d\n",
		sum[core.AT], sum[core.CT], sum[core.DT], sum[core.UCT], sum[core.UDT])
	for _, l := range core.TransmitterEvents(findings) {
		fmt.Printf("   - %s\n", l)
	}
	if emitDot && len(findings) > 0 {
		fmt.Println(dot.Graph(findings[0].Exec, p.Name))
	}
}
