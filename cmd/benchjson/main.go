// Command benchjson runs the evaluation sweeps — the Table 2 litmus
// suites, the crypto-library corpus, and the Fig. 8 series — under the
// parallel harness and emits machine-readable timings as JSON, one entry
// per workload:
//
//	{"litmus-pht": {"ns_per_op": ..., "workers": 4, "queries": ..., "cache_hits": ...}, ...}
//
// It exists so `make bench` leaves a diffable artifact (BENCH_parallel.json)
// rather than scrolling text. The numbers come from the observability
// layer rather than ad-hoc stopwatches: each workload runs under its own
// obsv.Tracer/Registry, ns_per_op is the workload root span's wall time,
// and queries/cache_hits are the detect.* counter deltas its registry
// accumulated (warm second engines and repeated sweeps drive hits up).
//
// Usage:
//
//	benchjson [-j N] [-timeout 5s] [-donna-timeout 30s] [-o BENCH_parallel.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lcm/internal/cryptolib"
	"lcm/internal/harness"
	"lcm/internal/obsv"
)

// entry is one workload's record in the output JSON.
type entry struct {
	NsPerOp   int64 `json:"ns_per_op"`
	Workers   int   `json:"workers"`
	Queries   int64 `json:"queries"`
	CacheHits int64 `json:"cache_hits"`
	// Pre-solver counters: candidates discharged statically and solver
	// queries avoided. With -nopresolve both are zero and Queries is the
	// ablation baseline.
	Discharged     int64 `json:"discharged"`
	SkippedQueries int64 `json:"skipped_queries"`
}

func main() {
	par := flag.Int("j", runtime.GOMAXPROCS(0), "worker-pool size for every sweep")
	timeout := flag.Duration("timeout", 5*time.Second, "per-function budget for litmus suites and libraries")
	donnaTimeout := flag.Duration("donna-timeout", 30*time.Second, "per-function budget for donna (its scalar mult dwarfs the rest)")
	out := flag.String("o", "BENCH_parallel.json", "output path")
	noPresolve := flag.Bool("nopresolve", false, "disable the static pre-solver (records the ablation baseline)")
	flag.Parse()

	results := map[string]entry{}
	// record runs one workload under a fresh tracer/registry pair and
	// reads its timing and counters back from the observability layer.
	record := func(name string, f func(tr *obsv.Tracer, reg *obsv.Registry) error) {
		tr := obsv.NewTracer()
		reg := obsv.NewRegistry()
		if err := f(tr, reg); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
			os.Exit(1)
		}
		var elapsed time.Duration
		for _, root := range tr.Roots() {
			elapsed += root.Wall()
		}
		snap := reg.Snapshot()
		e := entry{
			NsPerOp:        elapsed.Nanoseconds(),
			Workers:        *par,
			Queries:        snap.Counters["detect.queries"],
			CacheHits:      snap.Counters["detect.cache_hits"],
			Discharged:     snap.Counters["presolve.discharged"],
			SkippedQueries: snap.Counters["presolve.skipped_queries"],
		}
		results[name] = e
		fmt.Printf("%-22s %12v  queries=%-6d cache-hits=%d discharged=%d skipped=%d\n",
			name, elapsed.Round(time.Millisecond), e.Queries, e.CacheHits, e.Discharged, e.SkippedQueries)
	}

	for _, suite := range []string{"pht", "stl", "fwd", "new"} {
		suite := suite
		record("litmus-"+suite, func(tr *obsv.Tracer, reg *obsv.Registry) error {
			_, err := harness.RunLitmusSuite(suite, harness.Options{
				FuncTimeout: *timeout, Parallelism: *par, Tracer: tr, Metrics: reg,
				NoPresolve: *noPresolve,
			})
			return err
		})
	}

	for _, lib := range cryptolib.All() {
		lib := lib
		ft := *timeout
		if lib.Name == "donna" {
			ft = *donnaTimeout
		}
		record(lib.Name, func(tr *obsv.Tracer, reg *obsv.Registry) error {
			_, err := harness.RunLibrary(lib, harness.Options{
				FuncTimeout: ft, Parallelism: *par, CryptoUniversalOnly: true,
				Tracer: tr, Metrics: reg, NoPresolve: *noPresolve,
			})
			return err
		})
	}

	record("fig8", func(tr *obsv.Tracer, reg *obsv.Registry) error {
		_, err := harness.RunFig8(harness.Options{
			FuncTimeout: *timeout, Parallelism: *par, Tracer: tr, Metrics: reg,
			NoPresolve: *noPresolve,
		})
		return err
	})

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d workloads)\n", *out, len(results))
}
