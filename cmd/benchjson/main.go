// Command benchjson runs the evaluation sweeps — the Table 2 litmus
// suites, the crypto-library corpus, and the Fig. 8 series — under the
// parallel harness and emits machine-readable timings as JSON, one entry
// per workload:
//
//	{"litmus-pht": {"ns_per_op": ..., "workers": 4, "queries": ..., "cache_hits": ...}, ...}
//
// It exists so `make bench` leaves a diffable artifact (BENCH_parallel.json)
// rather than scrolling text: ns_per_op is the workload's wall time,
// queries the solver calls it issued, cache_hits the frontend-cache hits
// it scored (warm second engines and repeated sweeps drive this up).
//
// Usage:
//
//	benchjson [-j N] [-timeout 5s] [-donna-timeout 30s] [-o BENCH_parallel.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lcm/internal/cryptolib"
	"lcm/internal/harness"
)

// entry is one workload's record in the output JSON.
type entry struct {
	NsPerOp   int64 `json:"ns_per_op"`
	Workers   int   `json:"workers"`
	Queries   int   `json:"queries"`
	CacheHits int64 `json:"cache_hits"`
}

func main() {
	par := flag.Int("j", runtime.GOMAXPROCS(0), "worker-pool size for every sweep")
	timeout := flag.Duration("timeout", 5*time.Second, "per-function budget for litmus suites and libraries")
	donnaTimeout := flag.Duration("donna-timeout", 30*time.Second, "per-function budget for donna (its scalar mult dwarfs the rest)")
	out := flag.String("o", "BENCH_parallel.json", "output path")
	flag.Parse()

	results := map[string]entry{}
	record := func(name string, f func() (int, error)) {
		hits0, _ := harness.CacheStats()
		start := time.Now()
		queries, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		hits1, _ := harness.CacheStats()
		results[name] = entry{
			NsPerOp:   elapsed.Nanoseconds(),
			Workers:   *par,
			Queries:   queries,
			CacheHits: hits1 - hits0,
		}
		fmt.Printf("%-22s %12v  queries=%-6d cache-hits=%d\n", name, elapsed.Round(time.Millisecond), queries, hits1-hits0)
	}

	for _, suite := range []string{"pht", "stl", "fwd", "new"} {
		suite := suite
		record("litmus-"+suite, func() (int, error) {
			rows, err := harness.RunLitmusSuite(suite, harness.Options{
				FuncTimeout: *timeout, Parallelism: *par,
			})
			q := 0
			for _, r := range rows {
				q += r.Queries
			}
			return q, err
		})
	}

	for _, lib := range cryptolib.All() {
		lib := lib
		ft := *timeout
		if lib.Name == "donna" {
			ft = *donnaTimeout
		}
		record(lib.Name, func() (int, error) {
			rows, err := harness.RunLibrary(lib, harness.Options{
				FuncTimeout: ft, Parallelism: *par, CryptoUniversalOnly: true,
			})
			q := 0
			for _, r := range rows {
				q += r.Queries
			}
			return q, err
		})
	}

	record("fig8", func() (int, error) {
		_, err := harness.RunFig8(harness.Options{FuncTimeout: *timeout, Parallelism: *par})
		return 0, err
	})

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d workloads)\n", *out, len(results))
}
