// Command benchjson runs the evaluation sweeps — the Table 2 litmus
// suites, the crypto-library corpus, and the Fig. 8 series — under the
// parallel harness and emits machine-readable timings as JSON, one entry
// per workload:
//
//	{"litmus-pht": {"ns_per_op": ..., "workers": 4, "queries": ...,
//	                "nopresolve_ns_per_op": ..., "ablation_ratio": ...,
//	                "sweep": [{"workers": 1, "ns_per_op": ...}, ...]}, ...}
//
// It exists so `make bench` leaves a diffable artifact (BENCH_parallel.json)
// rather than scrolling text. The numbers come from the observability
// layer rather than ad-hoc stopwatches: each workload runs under its own
// obsv.Tracer/Registry, ns_per_op is the workload root span's wall time,
// and queries/cache_hits are the detect.* counter deltas its registry
// accumulated (warm second engines and repeated sweeps drive hits up).
//
// Every workload is measured once per worker count in the sweep set
// ({1, 8}, plus -j when distinct), with the process-wide frontend cache
// reset before each run so every point is a cold, comparable start. The
// flat top-level fields keep the historical shape and report the -j run;
// the "sweep" array carries the scaling curve. Unless -nopresolve flips
// the whole run, each workload is additionally measured once at -j width
// with the static pre-solver disabled — the ablation column — and
// -assert-ablation R fails the run if any workload's ablation is more
// than R times slower than its presolve run (the incremental solver must
// keep the residual path competitive even when *every* query reaches it).
//
// Usage:
//
//	benchjson [-j N] [-timeout 5s] [-donna-timeout 30s] [-o BENCH_parallel.json]
//	benchjson -litmus-only -assert-ablation 3 -o BENCH_smoke.json   # CI smoke scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lcm/internal/campstore"
	"lcm/internal/cryptolib"
	"lcm/internal/harness"
	"lcm/internal/obsv"
)

// point is one worker-count measurement of a workload.
type point struct {
	Workers int   `json:"workers"`
	NsPerOp int64 `json:"ns_per_op"`
}

// entry is one workload's record in the output JSON. The flat fields
// describe the -j run; Sweep holds every measured worker count.
type entry struct {
	NsPerOp   int64 `json:"ns_per_op"`
	Workers   int   `json:"workers"`
	Queries   int64 `json:"queries"`
	CacheHits int64 `json:"cache_hits"`
	// Pre-solver counters: candidates discharged statically and solver
	// queries avoided. With -nopresolve both are zero and Queries is the
	// ablation baseline.
	Discharged     int64 `json:"discharged"`
	SkippedQueries int64 `json:"skipped_queries"`
	// Incremental-solver counters of the -j run: assumption-trail literals
	// reused across the per-function sweep, root facts promoted into
	// clause-DB simplification, Tseitin gates emitted, and gate requests
	// answered by the hash-cons table instead of fresh definitions.
	PrefixLits    int64 `json:"prefix_lits"`
	RootUnits     int64 `json:"root_units"`
	TseitinGates  int64 `json:"tseitin_gates"`
	TseitinShared int64 `json:"tseitin_shared"`
	ModelHits     int64 `json:"model_hits"`
	// Ablation column: the same workload at -j width with the static
	// pre-solver disabled, so every candidate reaches the incremental
	// solver. AblationRatio = NoPresolveNs / NsPerOp. Zero when the whole
	// run is already an ablation (-nopresolve).
	NoPresolveNs  int64   `json:"nopresolve_ns_per_op,omitempty"`
	AblationRatio float64 `json:"ablation_ratio,omitempty"`

	Sweep []point `json:"sweep"`
}

func main() {
	par := flag.Int("j", runtime.GOMAXPROCS(0), "worker-pool size reported in the flat fields")
	timeout := flag.Duration("timeout", 5*time.Second, "per-function budget for litmus suites and libraries")
	donnaTimeout := flag.Duration("donna-timeout", 30*time.Second, "per-function budget for donna (its scalar mult dwarfs the rest)")
	out := flag.String("o", "BENCH_parallel.json", "output path")
	noPresolve := flag.Bool("nopresolve", false, "disable the static pre-solver everywhere (the whole run becomes the ablation baseline; skips the per-workload ablation column)")
	litmusOnly := flag.Bool("litmus-only", false, "measure only the litmus suites (CI smoke scale; skips the crypto corpus and Fig. 8)")
	assertAblation := flag.Float64("assert-ablation", 0, "fail if any workload's -nopresolve run is more than this factor slower than its presolve run (0 disables)")
	flag.Parse()

	// The sweep set: single-threaded and wide, plus the -j width when it
	// is neither (so the flat fields always describe a measured run).
	sweep := []int{1, 8}
	if *par != 1 && *par != 8 {
		sweep = append(sweep, *par)
	}

	results := map[string]entry{}
	exit := 0
	// record measures one workload at every sweep width, then (unless the
	// whole run is an ablation) once more at -j width with the pre-solver
	// off for the ablation column. Each run gets a fresh tracer/registry
	// pair and a cold frontend cache, and reads its timing and counters
	// back from the observability layer.
	record := func(name string, f func(workers int, noPresolve bool, tr *obsv.Tracer, reg *obsv.Registry) error) {
		e := entry{Workers: *par}
		measure := func(w int, ablate bool) (time.Duration, obsv.SnapshotData) {
			harness.ResetFrontendCache()
			tr := obsv.NewTracer()
			reg := obsv.NewRegistry()
			if err := f(w, ablate, tr, reg); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s (j=%d nopresolve=%v): %v\n", name, w, ablate, err)
				os.Exit(1)
			}
			var elapsed time.Duration
			for _, root := range tr.Roots() {
				elapsed += root.Wall()
			}
			return elapsed, reg.Snapshot()
		}
		for _, w := range sweep {
			elapsed, snap := measure(w, *noPresolve)
			e.Sweep = append(e.Sweep, point{Workers: w, NsPerOp: elapsed.Nanoseconds()})
			if w == *par || e.NsPerOp == 0 {
				e.NsPerOp = elapsed.Nanoseconds()
				e.Queries = snap.Counters["detect.queries"]
				e.CacheHits = snap.Counters["detect.cache_hits"]
				e.Discharged = snap.Counters["presolve.discharged"]
				e.SkippedQueries = snap.Counters["presolve.skipped_queries"]
				e.PrefixLits = snap.Counters["sat.prefix_lits"]
				e.RootUnits = snap.Counters["sat.root_units"]
				e.TseitinGates = snap.Counters["smt.tseitin_gates"]
				e.TseitinShared = snap.Counters["smt.tseitin_shared"]
				e.ModelHits = snap.Counters["smt.model_hits"]
			}
			fmt.Printf("%-22s j=%-2d %12v  queries=%-6d cache-hits=%d discharged=%d skipped=%d prefix-lits=%d tseitin-shared=%d\n",
				name, w, elapsed.Round(time.Millisecond), snap.Counters["detect.queries"],
				snap.Counters["detect.cache_hits"], snap.Counters["presolve.discharged"],
				snap.Counters["presolve.skipped_queries"], snap.Counters["sat.prefix_lits"],
				snap.Counters["smt.tseitin_shared"])
		}
		// The storage workload never consults the pre-solver: an ablation
		// column would compare two identical fsync-bound runs and gate CI
		// on scheduler noise.
		if !*noPresolve && name != "campstore" {
			elapsed, snap := measure(*par, true)
			e.NoPresolveNs = elapsed.Nanoseconds()
			if e.NsPerOp > 0 {
				e.AblationRatio = float64(e.NoPresolveNs) / float64(e.NsPerOp)
			}
			fmt.Printf("%-22s j=%-2d %12v  queries=%-6d [nopresolve ablation, ratio=%.2f]\n",
				name, *par, elapsed.Round(time.Millisecond), snap.Counters["detect.queries"], e.AblationRatio)
			// Sub-5ms workloads are scheduler noise: a ratio computed from
			// two ~1ms wall times says nothing about solver throughput, so
			// the gate only applies once either side is measurable.
			measurable := e.NsPerOp >= (5*time.Millisecond).Nanoseconds() ||
				e.NoPresolveNs >= (5*time.Millisecond).Nanoseconds()
			if *assertAblation > 0 && measurable && e.AblationRatio > *assertAblation {
				fmt.Fprintf(os.Stderr, "benchjson: %s: ablation ratio %.2f exceeds -assert-ablation %.2f\n",
					name, e.AblationRatio, *assertAblation)
				exit = 1
			}
		}
		results[name] = e
	}

	// Campaign-store throughput: claim+complete WAL round trips (one
	// fsync each) racing across the worker count — the per-verdict
	// storage cost a `clou -gen -store` campaign pays. The pre-solver
	// ablation is meaningless here; the ratio just reads ~1.
	record("campstore", func(workers int, _ bool, tr *obsv.Tracer, reg *obsv.Registry) error {
		root := tr.Start("campstore")
		defer root.End()
		const ops = 256
		dir, err := os.MkdirTemp("", "campstore-bench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		st, err := campstore.Open(dir, campstore.Options{
			Seed: 1, N: ops, Worker: "bench", Metrics: reg, CompactBytes: -1,
		})
		if err != nil {
			return err
		}
		defer st.Close()
		payload := []byte(`{"bench":true}`)
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func() {
				for {
					l, ok, err := st.ClaimNext()
					if err != nil || !ok {
						errs <- err
						return
					}
					if err := st.Complete(l, payload); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		for w := 0; w < workers; w++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		if !st.Done() {
			return fmt.Errorf("campstore bench finished %d/%d ops", st.CompletedCount(), ops)
		}
		return nil
	})

	for _, suite := range []string{"pht", "stl", "fwd", "new", "psf", "imp", "ss"} {
		suite := suite
		record("litmus-"+suite, func(workers int, ablate bool, tr *obsv.Tracer, reg *obsv.Registry) error {
			_, err := harness.RunLitmusSuite(suite, harness.Options{
				FuncTimeout: *timeout, Parallelism: workers, Tracer: tr, Metrics: reg,
				NoPresolve: ablate,
			})
			return err
		})
	}

	if *litmusOnly {
		writeResults(*out, results)
		os.Exit(exit)
	}

	for _, lib := range cryptolib.All() {
		lib := lib
		ft := *timeout
		if lib.Name == "donna" {
			ft = *donnaTimeout
		}
		record(lib.Name, func(workers int, ablate bool, tr *obsv.Tracer, reg *obsv.Registry) error {
			_, err := harness.RunLibrary(lib, harness.Options{
				FuncTimeout: ft, Parallelism: workers, CryptoUniversalOnly: true,
				Tracer: tr, Metrics: reg, NoPresolve: ablate,
			})
			return err
		})
	}

	record("fig8", func(workers int, ablate bool, tr *obsv.Tracer, reg *obsv.Registry) error {
		_, err := harness.RunFig8(harness.Options{
			FuncTimeout: *timeout, Parallelism: workers, Tracer: tr, Metrics: reg,
			NoPresolve: ablate,
		})
		return err
	})

	writeResults(*out, results)
	os.Exit(exit)
}

// writeResults marshals the workload map and writes the JSON artifact.
func writeResults(path string, results map[string]entry) {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d workloads)\n", path, len(results))
}
