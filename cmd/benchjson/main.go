// Command benchjson runs the evaluation sweeps — the Table 2 litmus
// suites, the crypto-library corpus, and the Fig. 8 series — under the
// parallel harness and emits machine-readable timings as JSON, one entry
// per workload:
//
//	{"litmus-pht": {"ns_per_op": ..., "workers": 4, "queries": ...,
//	                "sweep": [{"workers": 1, "ns_per_op": ...}, ...]}, ...}
//
// It exists so `make bench` leaves a diffable artifact (BENCH_parallel.json)
// rather than scrolling text. The numbers come from the observability
// layer rather than ad-hoc stopwatches: each workload runs under its own
// obsv.Tracer/Registry, ns_per_op is the workload root span's wall time,
// and queries/cache_hits are the detect.* counter deltas its registry
// accumulated (warm second engines and repeated sweeps drive hits up).
//
// Every workload is measured once per worker count in the sweep set
// ({1, 8}, plus -j when distinct), with the process-wide frontend cache
// reset before each run so every point is a cold, comparable start. The
// flat top-level fields keep the historical shape and report the -j run;
// the "sweep" array carries the scaling curve.
//
// Usage:
//
//	benchjson [-j N] [-timeout 5s] [-donna-timeout 30s] [-o BENCH_parallel.json]
//	benchjson -litmus-only -o BENCH_smoke.json   # CI smoke scale
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lcm/internal/cryptolib"
	"lcm/internal/harness"
	"lcm/internal/obsv"
)

// point is one worker-count measurement of a workload.
type point struct {
	Workers int   `json:"workers"`
	NsPerOp int64 `json:"ns_per_op"`
}

// entry is one workload's record in the output JSON. The flat fields
// describe the -j run; Sweep holds every measured worker count.
type entry struct {
	NsPerOp   int64 `json:"ns_per_op"`
	Workers   int   `json:"workers"`
	Queries   int64 `json:"queries"`
	CacheHits int64 `json:"cache_hits"`
	// Pre-solver counters: candidates discharged statically and solver
	// queries avoided. With -nopresolve both are zero and Queries is the
	// ablation baseline.
	Discharged     int64 `json:"discharged"`
	SkippedQueries int64 `json:"skipped_queries"`

	Sweep []point `json:"sweep"`
}

func main() {
	par := flag.Int("j", runtime.GOMAXPROCS(0), "worker-pool size reported in the flat fields")
	timeout := flag.Duration("timeout", 5*time.Second, "per-function budget for litmus suites and libraries")
	donnaTimeout := flag.Duration("donna-timeout", 30*time.Second, "per-function budget for donna (its scalar mult dwarfs the rest)")
	out := flag.String("o", "BENCH_parallel.json", "output path")
	noPresolve := flag.Bool("nopresolve", false, "disable the static pre-solver (records the ablation baseline)")
	litmusOnly := flag.Bool("litmus-only", false, "measure only the litmus suites (CI smoke scale; skips the crypto corpus and Fig. 8)")
	flag.Parse()

	// The sweep set: single-threaded and wide, plus the -j width when it
	// is neither (so the flat fields always describe a measured run).
	sweep := []int{1, 8}
	if *par != 1 && *par != 8 {
		sweep = append(sweep, *par)
	}

	results := map[string]entry{}
	// record measures one workload at every sweep width. Each run gets a
	// fresh tracer/registry pair and a cold frontend cache, and reads its
	// timing and counters back from the observability layer.
	record := func(name string, f func(workers int, tr *obsv.Tracer, reg *obsv.Registry) error) {
		e := entry{Workers: *par}
		for _, w := range sweep {
			harness.ResetFrontendCache()
			tr := obsv.NewTracer()
			reg := obsv.NewRegistry()
			if err := f(w, tr, reg); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s (j=%d): %v\n", name, w, err)
				os.Exit(1)
			}
			var elapsed time.Duration
			for _, root := range tr.Roots() {
				elapsed += root.Wall()
			}
			snap := reg.Snapshot()
			e.Sweep = append(e.Sweep, point{Workers: w, NsPerOp: elapsed.Nanoseconds()})
			if w == *par || e.NsPerOp == 0 {
				e.NsPerOp = elapsed.Nanoseconds()
				e.Queries = snap.Counters["detect.queries"]
				e.CacheHits = snap.Counters["detect.cache_hits"]
				e.Discharged = snap.Counters["presolve.discharged"]
				e.SkippedQueries = snap.Counters["presolve.skipped_queries"]
			}
			fmt.Printf("%-22s j=%-2d %12v  queries=%-6d cache-hits=%d discharged=%d skipped=%d\n",
				name, w, elapsed.Round(time.Millisecond), snap.Counters["detect.queries"],
				snap.Counters["detect.cache_hits"], snap.Counters["presolve.discharged"],
				snap.Counters["presolve.skipped_queries"])
		}
		results[name] = e
	}

	for _, suite := range []string{"pht", "stl", "fwd", "new", "psf", "imp", "ss"} {
		suite := suite
		record("litmus-"+suite, func(workers int, tr *obsv.Tracer, reg *obsv.Registry) error {
			_, err := harness.RunLitmusSuite(suite, harness.Options{
				FuncTimeout: *timeout, Parallelism: workers, Tracer: tr, Metrics: reg,
				NoPresolve: *noPresolve,
			})
			return err
		})
	}

	if *litmusOnly {
		writeResults(*out, results)
		return
	}

	for _, lib := range cryptolib.All() {
		lib := lib
		ft := *timeout
		if lib.Name == "donna" {
			ft = *donnaTimeout
		}
		record(lib.Name, func(workers int, tr *obsv.Tracer, reg *obsv.Registry) error {
			_, err := harness.RunLibrary(lib, harness.Options{
				FuncTimeout: ft, Parallelism: workers, CryptoUniversalOnly: true,
				Tracer: tr, Metrics: reg, NoPresolve: *noPresolve,
			})
			return err
		})
	}

	record("fig8", func(workers int, tr *obsv.Tracer, reg *obsv.Registry) error {
		_, err := harness.RunFig8(harness.Options{
			FuncTimeout: *timeout, Parallelism: workers, Tracer: tr, Metrics: reg,
			NoPresolve: *noPresolve,
		})
		return err
	})

	writeResults(*out, results)
}

// writeResults marshals the workload map and writes the JSON artifact.
func writeResults(path string, results map[string]entry) {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d workloads)\n", path, len(results))
}
