// Command lcmlint is a constant-time lint driver over the dataflow
// layer's taint pass. It flags secret-dependent branches and
// secret-indexed memory accesses — the two software patterns that break
// the constant-time discipline regardless of which hardware contract is
// in force — and prints each finding with its source position.
//
// With file arguments it lints those mini-C sources; without any it
// sweeps the built-in cryptolib corpus.
//
// Usage:
//
//	lcmlint [-lib name|all] [-secrets a,b,c] [-j N] [-why] [-report out.json] [file.c ...]
//
// -why annotates every finding with the static pre-solver's view of the
// flagged site: its must-alias class, the interval analysis's resolution
// of the touched address, and its speculative-window reachability (which
// branches can transiently fetch it, and from how close). These are the
// same facts internal/presolve uses to discharge SAT queries, so the
// annotation explains both why the site is interesting and what a
// detector run would already know about it statically.
//
// Secrets come from, in order of preference: the -secrets flag (an
// explicit parameter-name list), the corpus library's own SecretParams
// annotation, or a name heuristic (parameters whose names contain
// "secret", "key", "priv", or equal "sk").
//
// Exit codes follow the shared CLI contract: 0 = all units clean;
// 1 = findings; 2 = usage or I/O error; 3 = partial — some unit failed
// to compile (the rest were still linted) and nothing was flagged.
// Findings dominate partial: a flagged sweep exits 1 even if another
// unit errored.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"lcm/internal/acfg"
	"lcm/internal/aeg"
	"lcm/internal/alias"
	"lcm/internal/cryptolib"
	"lcm/internal/dataflow"
	"lcm/internal/harness"
	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/obsv"
	"lcm/internal/presolve"
)

// Exit codes of the CLI contract (shared with clou).
const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
	exitPartial  = 3
)

// unit is one lint job: a named source with its secret spec.
type unit struct {
	name string
	src  string
	spec dataflow.SecretSpec
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main under test: parse args, lint, return the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lcmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	lib := fs.String("lib", "all", "cryptolib corpus entry to lint when no files are given")
	secrets := fs.String("secrets", "", "comma-separated secret parameter names; empty = name heuristic")
	par := fs.Int("j", runtime.GOMAXPROCS(0), "lint up to N units in parallel")
	why := fs.Bool("why", false, "annotate each finding with the pre-solver facts for the flagged site")
	reportPath := fs.String("report", "", "write a machine-readable JSON run report to this path (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "lcmlint:", err)
		return exitUsage
	}

	var explicit *dataflow.SecretSpec
	if *secrets != "" {
		var names []string
		for _, n := range strings.Split(*secrets, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		s := dataflow.NamedSpec(names...)
		explicit = &s
	}

	var units []unit
	if fs.NArg() > 0 {
		spec := dataflow.HeuristicSpec()
		if explicit != nil {
			spec = *explicit
		}
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				return fail(err)
			}
			units = append(units, unit{name: path, src: string(src), spec: spec})
		}
	} else {
		for _, l := range cryptolib.All() {
			if *lib != "all" && l.Name != *lib {
				continue
			}
			spec := dataflow.HeuristicSpec()
			if explicit != nil {
				spec = *explicit
			} else if len(l.SecretParams) > 0 {
				spec = dataflow.NamedSpec(l.SecretParams...)
			}
			units = append(units, unit{name: l.Name, src: l.Source, spec: spec})
		}
		if len(units) == 0 {
			return fail(fmt.Errorf("unknown corpus library %q", *lib))
		}
	}

	// Lint units in parallel, print reports serially in input order. A
	// unit that fails to compile (or panics) costs that unit, not the
	// sweep: its error is reported per item and the run exits partial.
	var tracer *obsv.Tracer
	var metrics *obsv.Registry
	if *reportPath != "" {
		tracer = obsv.NewTracer()
		metrics = obsv.NewRegistry()
	}
	start := time.Now()
	reports := make([]string, len(units))
	counts := make([]int, len(units))
	findings := make([][]string, len(units))
	root := tracer.Start("lcmlint")
	errs := harness.ForEachSpanCtx(context.Background(), root, "lint", *par, len(units), func(i int, sp *obsv.Span) error {
		us := sp.Start("unit:" + units[i].name)
		defer us.End()
		var err error
		reports[i], counts[i], findings[i], err = lint(units[i], *why)
		metrics.Counter("lint.findings").Add(int64(counts[i]))
		metrics.Counter("lint.units").Add(1)
		return err
	})
	root.End()
	total, failed := 0, 0
	for i := range units {
		if errs[i] != nil {
			fmt.Fprintf(stderr, "lcmlint: %v\n", errs[i])
			failed++
			continue
		}
		fmt.Fprint(stdout, reports[i])
		total += counts[i]
	}
	if *reportPath != "" {
		rep := &obsv.Report{
			Tool:    "lcmlint",
			Version: obsv.Version,
			Workers: *par,
			WallNs:  time.Since(start).Nanoseconds(),
			Metrics: metrics.Snapshot(),
			Spans:   obsv.SpanTree(tracer),
		}
		for i, u := range units {
			fr := obsv.FuncReport{Name: u.name, Verdict: "clean", Lint: findings[i]}
			switch {
			case errs[i] != nil:
				fr.Verdict = "error"
				fr.Error = errs[i].Error()
			case counts[i] > 0:
				fr.Verdict = "flagged"
			}
			rep.Functions = append(rep.Functions, fr)
		}
		if err := rep.WriteFile(*reportPath); err != nil {
			return fail(fmt.Errorf("report: %w", err))
		}
	}
	switch {
	case total > 0:
		fmt.Fprintf(stdout, "%d finding(s)\n", total)
		return exitFindings
	case failed > 0:
		return exitPartial
	}
	return exitClean
}

// lint compiles one source unit and renders its findings, prefixed with
// the unit name so corpus-wide sweeps stay attributable. It returns the
// report rather than printing so parallel workers never interleave,
// plus the raw finding strings for the JSON run report. With why set,
// each finding carries the pre-solver's facts for the flagged site.
func lint(u unit, why bool) (string, int, []string, error) {
	m, err := compile(u.src)
	if err != nil {
		return "", 0, nil, fmt.Errorf("%s: %w", u.name, err)
	}
	fs := dataflow.LintModule(m, u.spec)
	var ex *explainer
	if why && len(fs) > 0 {
		ex = newExplainer(m)
	}
	var b strings.Builder
	var raw []string
	for _, f := range fs {
		fmt.Fprintf(&b, "%s: %s\n", u.name, f)
		raw = append(raw, f.String())
		if ex == nil {
			continue
		}
		for _, line := range ex.explain(f) {
			fmt.Fprintf(&b, "    why: %s\n", line)
		}
	}
	return b.String(), len(fs), raw, nil
}

// explainer lazily builds, per function, the same static fact base the
// detector's pre-solver uses (A-CFG, alias partition, interval ranges,
// speculation-window geometry) and renders it for a finding's site.
type explainer struct {
	m     *ir.Module
	mr    *dataflow.ModuleRanges
	funcs map[string]*fnFacts
}

type fnFacts struct {
	facts *presolve.Facts
	win   presolve.WindowSource
	err   error
}

func newExplainer(m *ir.Module) *explainer {
	return &explainer{m: m, mr: dataflow.NewModuleRanges(m), funcs: map[string]*fnFacts{}}
}

func (e *explainer) forFunc(fn string) *fnFacts {
	if ff, ok := e.funcs[fn]; ok {
		return ff
	}
	ff := &fnFacts{}
	g, err := acfg.Build(e.m, fn, acfg.Options{})
	if err != nil {
		ff.err = err
	} else {
		al := alias.Analyze(g)
		ff.facts = presolve.NewFacts(g, al, e.mr)
		// Default engine geometry (ROB 250): -why reports reachability
		// under the same bound the PHT detector assumes.
		ff.win = aeg.Build(g, al, aeg.Options{})
	}
	e.funcs[fn] = ff
	return ff
}

func (e *explainer) explain(f dataflow.LintFinding) []string {
	if f.Instr == nil {
		return nil
	}
	ff := e.forFunc(f.Fn)
	if ff.err != nil {
		return []string{fmt.Sprintf("facts unavailable: %v", ff.err)}
	}
	return presolve.Explain(ff.facts, ff.win, f.Instr)
}

func compile(src string) (*ir.Module, error) {
	file, err := minic.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	m, err := lower.Module(file)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return m, nil
}
