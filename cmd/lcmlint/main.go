// Command lcmlint is a constant-time lint driver over the dataflow
// layer's taint pass. It flags secret-dependent branches and
// secret-indexed memory accesses — the two software patterns that break
// the constant-time discipline regardless of which hardware contract is
// in force — and prints each finding with its source position.
//
// With file arguments it lints those mini-C sources; without any it
// sweeps the built-in cryptolib corpus.
//
// Usage:
//
//	lcmlint [-lib name|all] [-secrets a,b,c] [file.c ...]
//
// Secrets come from, in order of preference: the -secrets flag (an
// explicit parameter-name list), the corpus library's own SecretParams
// annotation, or a name heuristic (parameters whose names contain
// "secret", "key", "priv", or equal "sk").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lcm/internal/cryptolib"
	"lcm/internal/dataflow"
	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func main() {
	lib := flag.String("lib", "all", "cryptolib corpus entry to lint when no files are given")
	secrets := flag.String("secrets", "", "comma-separated secret parameter names; empty = name heuristic")
	flag.Parse()

	var explicit *dataflow.SecretSpec
	if *secrets != "" {
		var names []string
		for _, n := range strings.Split(*secrets, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		s := dataflow.NamedSpec(names...)
		explicit = &s
	}

	total := 0
	if flag.NArg() > 0 {
		spec := dataflow.HeuristicSpec()
		if explicit != nil {
			spec = *explicit
		}
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			total += lint(path, string(src), spec)
		}
	} else {
		found := false
		for _, l := range cryptolib.All() {
			if *lib != "all" && l.Name != *lib {
				continue
			}
			found = true
			spec := dataflow.HeuristicSpec()
			if explicit != nil {
				spec = *explicit
			} else if len(l.SecretParams) > 0 {
				spec = dataflow.NamedSpec(l.SecretParams...)
			}
			total += lint(l.Name, l.Source, spec)
		}
		if !found {
			fatal(fmt.Errorf("unknown corpus library %q", *lib))
		}
	}
	if total > 0 {
		fmt.Printf("%d finding(s)\n", total)
		os.Exit(1)
	}
}

// lint compiles one source unit and prints its findings, prefixed with
// the unit name so corpus-wide sweeps stay attributable.
func lint(unit, src string, spec dataflow.SecretSpec) int {
	m, err := compile(src)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", unit, err))
	}
	fs := dataflow.LintModule(m, spec)
	for _, f := range fs {
		fmt.Printf("%s: %s\n", unit, f)
	}
	return len(fs)
}

func compile(src string) (*ir.Module, error) {
	file, err := minic.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	m, err := lower.Module(file)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lcmlint:", err)
	os.Exit(1)
}
