// Command lcmlint is a constant-time lint driver over the dataflow
// layer's taint pass. It flags secret-dependent branches and
// secret-indexed memory accesses — the two software patterns that break
// the constant-time discipline regardless of which hardware contract is
// in force — and prints each finding with its source position.
//
// With file arguments it lints those mini-C sources; without any it
// sweeps the built-in cryptolib corpus.
//
// Usage:
//
//	lcmlint [-lib name|all] [-secrets a,b,c] [-j N] [-report out.json] [file.c ...]
//
// Secrets come from, in order of preference: the -secrets flag (an
// explicit parameter-name list), the corpus library's own SecretParams
// annotation, or a name heuristic (parameters whose names contain
// "secret", "key", "priv", or equal "sk").
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lcm/internal/cryptolib"
	"lcm/internal/dataflow"
	"lcm/internal/harness"
	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/obsv"
)

// unit is one lint job: a named source with its secret spec.
type unit struct {
	name string
	src  string
	spec dataflow.SecretSpec
}

func main() {
	lib := flag.String("lib", "all", "cryptolib corpus entry to lint when no files are given")
	secrets := flag.String("secrets", "", "comma-separated secret parameter names; empty = name heuristic")
	par := flag.Int("j", runtime.GOMAXPROCS(0), "lint up to N units in parallel")
	reportPath := flag.String("report", "", "write a machine-readable JSON run report to this path (- for stdout)")
	flag.Parse()

	var explicit *dataflow.SecretSpec
	if *secrets != "" {
		var names []string
		for _, n := range strings.Split(*secrets, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		s := dataflow.NamedSpec(names...)
		explicit = &s
	}

	var units []unit
	if flag.NArg() > 0 {
		spec := dataflow.HeuristicSpec()
		if explicit != nil {
			spec = *explicit
		}
		for _, path := range flag.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			units = append(units, unit{name: path, src: string(src), spec: spec})
		}
	} else {
		for _, l := range cryptolib.All() {
			if *lib != "all" && l.Name != *lib {
				continue
			}
			spec := dataflow.HeuristicSpec()
			if explicit != nil {
				spec = *explicit
			} else if len(l.SecretParams) > 0 {
				spec = dataflow.NamedSpec(l.SecretParams...)
			}
			units = append(units, unit{name: l.Name, src: l.Source, spec: spec})
		}
		if len(units) == 0 {
			fatal(fmt.Errorf("unknown corpus library %q", *lib))
		}
	}

	// Lint units in parallel, print reports serially in input order.
	var tracer *obsv.Tracer
	var metrics *obsv.Registry
	if *reportPath != "" {
		tracer = obsv.NewTracer()
		metrics = obsv.NewRegistry()
	}
	start := time.Now()
	reports := make([]string, len(units))
	counts := make([]int, len(units))
	findings := make([][]string, len(units))
	root := tracer.Start("lcmlint")
	err := harness.ForEachSpan(root, "lint", *par, len(units), func(i int, sp *obsv.Span) error {
		us := sp.Start("unit:" + units[i].name)
		defer us.End()
		var err error
		reports[i], counts[i], findings[i], err = lint(units[i])
		metrics.Counter("lint.findings").Add(int64(counts[i]))
		metrics.Counter("lint.units").Add(1)
		return err
	})
	root.End()
	if err != nil {
		fatal(err)
	}
	total := 0
	for i := range units {
		fmt.Print(reports[i])
		total += counts[i]
	}
	if *reportPath != "" {
		rep := &obsv.Report{
			Tool:    "lcmlint",
			Version: obsv.Version,
			Workers: *par,
			WallNs:  time.Since(start).Nanoseconds(),
			Metrics: metrics.Snapshot(),
			Spans:   obsv.SpanTree(tracer),
		}
		for i, u := range units {
			fr := obsv.FuncReport{Name: u.name, Verdict: "clean", Lint: findings[i]}
			if counts[i] > 0 {
				fr.Verdict = "flagged"
			}
			rep.Functions = append(rep.Functions, fr)
		}
		if err := rep.WriteFile(*reportPath); err != nil {
			fatal(fmt.Errorf("report: %w", err))
		}
	}
	if total > 0 {
		fmt.Printf("%d finding(s)\n", total)
		os.Exit(1)
	}
}

// lint compiles one source unit and renders its findings, prefixed with
// the unit name so corpus-wide sweeps stay attributable. It returns the
// report rather than printing so parallel workers never interleave,
// plus the raw finding strings for the JSON run report.
func lint(u unit) (string, int, []string, error) {
	m, err := compile(u.src)
	if err != nil {
		return "", 0, nil, fmt.Errorf("%s: %w", u.name, err)
	}
	fs := dataflow.LintModule(m, u.spec)
	var b strings.Builder
	var raw []string
	for _, f := range fs {
		fmt.Fprintf(&b, "%s: %s\n", u.name, f)
		raw = append(raw, f.String())
	}
	return b.String(), len(fs), raw, nil
}

func compile(src string) (*ir.Module, error) {
	file, err := minic.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	m, err := lower.Module(file)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lcmlint:", err)
	os.Exit(1)
}
