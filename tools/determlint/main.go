// Command determlint is a stdlib-only static lint for report determinism:
// it flags `for ... range` over a map whose body feeds an ordered sink —
// printing, writer output, channel sends, or accumulation into an outer
// slice or string — without an intervening deterministic sort. Go's map
// iteration order is randomized per run, so any such loop silently
// threads nondeterminism into reports, SMT encodings, or candidate
// enumeration, which this repo pins byte-for-byte across -j levels.
//
// The loader shells out to `go list -json -export -deps` so imports are
// resolved from the toolchain's export data rather than re-typechecking
// the world; only the module's own packages are parsed and typechecked
// from source. No dependencies outside the standard library.
//
// Usage:
//
//	determlint [packages]
//
// Exit status is 1 when any diagnostic is reported, 2 on loader errors.
// A finding is suppressed with a `//determlint:ignore` comment on the
// range statement's line or the line above it.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// pkgMeta is the subset of `go list -json` output the loader consumes.
type pkgMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := run(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "determlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// Diagnostic is one lint finding at a resolved source position.
type Diagnostic struct {
	Pos     token.Position
	Message string
}

// run loads the packages matching patterns rooted at dir and lints every
// non-test source file of the module's own packages.
func run(dir string, patterns []string) ([]Diagnostic, error) {
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*pkgMeta
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p pkgMeta
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var diags []Diagnostic
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
			Defs:  map[*ast.Ident]types.Object{},
		}
		conf := types.Config{Importer: imp}
		if _, err := conf.Check(p.ImportPath, fset, files, info); err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		pass := &Pass{Fset: fset, Files: files, Info: info}
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		lint(pass)
	}
	return diags, nil
}
