package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintFixture builds a throwaway module exercising each sink class and
// each suppression path, then runs the real loader over it. The fixture
// imports only the standard library so the test works offline.
func TestLintFixture(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module fixture\n\ngo 1.22\n")
	write("fixture.go", `package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func printSink(m map[string]int) { // want: fmt sink
	for k := range m {
		fmt.Println(k)
	}
}

func writerSink(m map[string]int, b *strings.Builder) { // want: Write sink
	for k := range m {
		b.WriteString(k)
	}
}

func chanSink(m map[string]int, ch chan string) { // want: channel sink
	for k := range m {
		ch <- k
	}
}

func appendSink(m map[string]int) []string { // want: unsorted append
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func concatSink(m map[string]int) string { // want: string concat
	s := ""
	for k := range m {
		s += k
	}
	return s
}

func sortedAppendOK(m map[string]int) []string { // clean: sorted after
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func innerOnlyOK(m map[string]int) int { // clean: order stays internal
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func suppressedOK(m map[string]int) { // clean: annotated
	//determlint:ignore fixture exercises the suppression path
	for k := range m {
		fmt.Println(k)
	}
}
`)

	diags, err := run(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	wants := []string{
		"fmt.Println",
		".WriteString",
		"channel send",
		"append to an outer slice",
		"string concatenation",
	}
	if len(diags) != len(wants) {
		t.Fatalf("want %d diagnostics, got %d:\n%s", len(wants), len(diags), strings.Join(got, "\n"))
	}
	for i, w := range wants {
		if !strings.Contains(got[i], w) {
			t.Errorf("diagnostic %d: want substring %q, got %q", i, w, got[i])
		}
	}
}

// TestLintRepoClean pins the property `make lint` enforces in CI: the
// repository's own packages carry no unsuppressed findings.
func TestLintRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := run(root, []string{"./..."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s", d.Pos, d.Message)
	}
}
