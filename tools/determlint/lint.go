package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Pass carries one typechecked package through the analyzer, mirroring
// the go/analysis shape without the dependency.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Info   *types.Info
	Report func(Diagnostic)
}

// lint walks every function and flags map-range loops whose bodies feed
// ordered sinks. The sinks mirror how nondeterminism actually escaped in
// this repo before PR 2/PR 3 pinned reports: formatted output, writer
// calls, channel sends, and accumulation into outer slices or strings
// that are never sorted afterwards.
func lint(pass *Pass) {
	for _, file := range pass.Files {
		ignored := ignoreLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			lintFunc(pass, fn, ignored)
			return true
		})
	}
}

// ignoreLines collects the lines suppressed by //determlint:ignore — the
// directive acts on its own line and the one below it.
func ignoreLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "determlint:ignore") {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}

func lintFunc(pass *Pass, fn *ast.FuncDecl, ignored map[int]bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		pos := pass.Fset.Position(rs.Pos())
		if ignored[pos.Line] {
			return true
		}
		if sink := findSink(pass, fn, rs); sink != "" {
			pass.Report(Diagnostic{
				Pos: pos,
				Message: "map iteration order feeds " + sink +
					"; sort the keys first (or annotate //determlint:ignore if the order provably cannot escape)",
			})
		}
		return true
	})
}

// findSink returns a description of the first ordered sink the loop body
// feeds, or "" when the iteration order provably stays internal.
func findSink(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) string {
	var sink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			sink = "a channel send"
			return false
		case *ast.CallExpr:
			if name := orderedCall(pass, s); name != "" {
				sink = name
				return false
			}
		case *ast.AssignStmt:
			if name := orderedAssign(pass, fn, rs, s); name != "" {
				sink = name
				return false
			}
		}
		return true
	})
	return sink
}

// orderedCall classifies calls whose argument order is observable: fmt
// formatting and Write-family methods (io.Writer, strings.Builder,
// bytes.Buffer, bufio.Writer all share the names).
func orderedCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && strings.HasPrefix(name, "Print") ||
				pn.Imported().Path() == "fmt" && strings.HasPrefix(name, "Fprint") ||
				pn.Imported().Path() == "fmt" && strings.HasPrefix(name, "Sprint") {
				return "fmt." + name
			}
			return ""
		}
	}
	if name == "Write" || name == "WriteString" || name == "WriteByte" ||
		name == "WriteRune" || strings.HasPrefix(name, "Print") {
		return "a ." + name + " call"
	}
	return ""
}

// orderedAssign flags growth of state declared outside the loop — slice
// appends with no later sort, and string concatenation.
func orderedAssign(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) string {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || insideLoop(rs, v.Pos()) {
			continue
		}
		if as.Tok == token.ADD_ASSIGN {
			if _, isString := v.Type().Underlying().(*types.Basic); isString &&
				v.Type().Underlying().(*types.Basic).Info()&types.IsString != 0 {
				return "string concatenation into an outer variable"
			}
		}
		if as.Tok == token.ASSIGN && i < len(as.Rhs) {
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isAppendOf(pass, call) {
				if !sortedLater(pass, fn, rs, v) {
					return "an append to an outer slice with no later sort"
				}
			}
		}
	}
	return ""
}

func isAppendOf(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func insideLoop(rs *ast.RangeStmt, pos token.Pos) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}

// sortedLater reports whether, after the loop, the function passes v to a
// call whose name mentions sorting (sort.Ints, sort.Slice, sortInts, …) —
// the idiom this repo uses to pin enumeration order before it escapes.
func sortedLater(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		var name string
		switch f := call.Fun.(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
			if id, ok := f.X.(*ast.Ident); ok {
				name = id.Name + "." + name
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if mentions(pass, arg, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentions reports whether expr references variable v.
func mentions(pass *Pass, expr ast.Expr, v *types.Var) bool {
	hit := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == v {
			hit = true
			return false
		}
		return !hit
	})
	return hit
}
