// Fencerepair: detect the leakage in the paper's NEW01 benchmark (§6.1),
// repair it by minimal lfence insertion, and show the before/after
// finding counts and the repaired IR.
package main

import (
	"fmt"

	"lcm/internal/detect"
	"lcm/internal/litmus"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/repair"
)

func main() {
	var c litmus.Case
	for _, cc := range litmus.NEW() {
		if cc.Name == "new01" {
			c = cc
		}
	}
	fmt.Println("NEW01 source (§6.1):")
	fmt.Println(c.Source)

	file, err := minic.Parse(c.Source)
	if err != nil {
		panic(err)
	}
	m, err := lower.Module(file)
	if err != nil {
		panic(err)
	}

	cfg := detect.DefaultPHT()
	before, err := detect.AnalyzeFunc(m, c.Fn, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("before repair: %d findings\n", len(before.Findings))
	for _, f := range before.Findings {
		fmt.Println("  -", f)
	}

	res, err := repair.Repair(m, c.Fn, cfg, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nrepair: %d lfence(s) inserted in %d round(s)\n", res.Fences, res.Rounds)

	after, err := detect.AnalyzeFunc(m, c.Fn, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("after repair: %d findings\n", len(after.Findings))

	fmt.Println("\nrepaired IR:")
	fmt.Print(m.Func(c.Fn).String())
}
