// Quickstart: build the Spectre v1 candidate execution of Fig. 2b by hand
// with the event vocabulary, check it against the TSO consistency
// predicate and the LCM non-interference predicates, and classify the
// transmitters per Table 1.
package main

import (
	"fmt"

	"lcm/internal/core"
	"lcm/internal/event"
	"lcm/internal/mcm"
)

func main() {
	// 1. Build the event structure: the committed not-taken path of
	//    Fig. 1a with the if-body mis-speculatively executed (5S, 6S).
	b := event.NewBuilder()
	top := b.Top()
	s0, s1, s2 := b.FreshX(), b.FreshX(), b.FreshX()

	e2 := b.Read(0, "y", s0, event.XRW, "R y (RW s0) → r2")
	e5s := b.TransientRead(0, "A+r2", s1, event.XRW, "Rs A+r2 (RW s1) → r4")
	e6s := b.TransientRead(0, "B+r4", s2, event.XRW, "Rs B+r4 (RW s2) → r5")
	bot := b.Bottom(0)

	// 2. Dependencies (the dep relation of §2.1.3): the loaded index
	//    feeds the array access; its value feeds the second access.
	b.AddrDep(e2, e5s, true)
	b.AddrDep(e5s, e6s, true)

	// 3. Architectural witness: every read observes initial memory.
	b.RF(top, e2)
	b.RF(top, e5s)
	b.RF(top, e6s)

	// 4. Microarchitectural witness: each access misses and populates its
	//    cache line; the observer ⊥ probes what the program left behind.
	b.RFX(top, e2)
	b.RFX(top, e5s)
	b.RFX(top, e6s)
	b.RFX(e2, bot)
	b.RFX(e5s, bot)
	b.RFX(e6s, bot)

	g := b.Finish()
	fmt.Println("candidate execution:")
	fmt.Println(g)

	// 5. The architectural semantics is TSO-consistent...
	fmt.Printf("\nTSO-consistent: %v\n", mcm.TSO{}.Consistent(g))
	// ...and the microarchitectural witness is possible on a permissive
	// machine (Clou's conservative hardware assumption, §5.2).
	fmt.Printf("machine-confidential: %v\n", core.Permissive().Confidential(g))

	// 6. The non-interference predicates of §4.1 flag the deviation: the
	//    observer reads xstate the program populated.
	vs := core.CheckNonInterference(g)
	fmt.Printf("\nnon-interference violations: %d\n", len(vs))
	for _, v := range vs {
		fmt.Println(" -", v)
	}

	// 7. Classification per Table 1.
	fmt.Println("\ntransmitters:")
	for _, t := range core.Classify(g, vs, core.ClassifyOptions{}) {
		fmt.Printf(" - %-40s %s\n", g.Events[t.Event].Label, t)
	}
}
