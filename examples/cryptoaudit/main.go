// Cryptoaudit: analyze the crypto-library corpus with Clou the way §6.2
// does — every public function, both engines, universal transmitters
// only — and print a vulnerability report, highlighting the
// SSL_get_shared_sigalgs gadget of Listing 1.
package main

import (
	"fmt"
	"time"

	"lcm/internal/core"
	"lcm/internal/cryptolib"
	"lcm/internal/detect"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func main() {
	libs := []cryptolib.Library{
		cryptolib.TEA(),
		cryptolib.Libsodium(),
		cryptolib.OpenSSL(),
	}
	for _, lib := range libs {
		file, err := minic.Parse(lib.Source)
		if err != nil {
			panic(err)
		}
		m, err := lower.Module(file)
		if err != nil {
			panic(err)
		}
		fmt.Printf("=== %s (%d public functions, %d LoC) ===\n",
			lib.Name, len(lib.PublicFuncs), lib.LoC())
		for _, fn := range lib.PublicFuncs {
			cfg := detect.DefaultPHT()
			cfg.Transmitters = []core.Class{core.UDT, core.UCT}
			cfg.Timeout = 10 * time.Second
			r, err := detect.AnalyzeFunc(m, fn, cfg)
			if err != nil {
				fmt.Printf("  %-32s error: %v\n", fn, err)
				continue
			}
			c := r.Counts()
			if c[core.UDT]+c[core.UCT] == 0 {
				continue
			}
			fmt.Printf("  %-32s UDT=%d UCT=%d (%d nodes, %v)\n",
				fn, c[core.UDT], c[core.UCT], r.NodeCount, r.Duration.Round(time.Millisecond))
			for _, f := range r.Findings {
				fmt.Printf("      %s\n", f)
			}
		}
	}
	fmt.Println("\nListing 1 note: the SSL_get_shared_sigalgs finding is the gadget")
	fmt.Println("§6.2.3 calls the most severe vulnerability Clou uncovered — a")
	fmt.Println("bounds-checked attacker index whose mis-speculated out-of-bounds")
	fmt.Println("pointer load is dereferenced, leaking the secret into the cache.")
}
