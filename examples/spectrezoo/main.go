// Spectrezoo: run the paper's §4.2 attack sampling through the static LCM
// analysis and, where the attack has a dynamic counterpart, mount it on
// the uarch substrate — showing that every LCM-flagged leak has a
// distinguishable cache residue in simulation.
package main

import (
	"fmt"

	"lcm/internal/attacks"
	"lcm/internal/core"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/uarch"
)

func main() {
	fmt.Println("=== static: LCM analysis of the §4.2 attack executions ===")
	for _, a := range attacks.All() {
		vs := core.CheckNonInterference(a.Graph)
		ts := core.Classify(a.Graph, vs, core.ClassifyOptions{})
		best := core.AT
		for _, t := range ts {
			if t.Class.Rank() > best.Rank() {
				best = t.Class
			}
		}
		fmt.Printf("%-20s %-9s violations=%d transmitters=%d worst=%v machine=%s\n",
			a.Name, a.Figure, len(vs), len(ts), best, a.Machine.Name())
	}

	fmt.Println("\n=== dynamic: the same attacks on the uarch substrate ===")
	dynSpectreV1()
	dynSpectreV4()
	dynSilentStores()
	dynIMP()
}

func compile(src string) *uarch.Machine {
	return compileCfg(src, uarch.Config{})
}

func compileCfg(src string, cfg uarch.Config) *uarch.Machine {
	f, err := minic.Parse(src)
	if err != nil {
		panic(err)
	}
	m, err := lower.Module(f)
	if err != nil {
		panic(err)
	}
	return uarch.New(m, cfg)
}

func dynSpectreV1() {
	ma := compile(`
		uint8_t array1[16];
		uint8_t pad[64];
		uint8_t array2[131072];
		uint32_t array1_size = 16;
		uint8_t tmp;
		void victim(uint32_t x) {
			if (x < array1_size) {
				tmp &= array2[array1[x] * 512];
			}
		}
	`)
	a1, _ := ma.GlobalAddr("array1")
	a2, _ := ma.GlobalAddr("array2")
	padA, _ := ma.GlobalAddr("pad")
	const secret = 173
	ma.Mem.Store(padA+5, 1, secret)
	for i := 0; i < 8; i++ {
		ma.Call("victim", uint64(i&7))
	}
	ma.Flush()
	ma.Call("victim", padA+5-a1)
	rec := -1
	for s := 0; s < 256; s++ {
		if ma.Probe(a2 + uint64(s)*512) {
			rec = s
		}
	}
	fmt.Printf("spectre-v1:     planted %d, observer recovers %d\n", secret, rec)
}

func dynSpectreV4() {
	ma := compileCfg(`
		uint8_t sec[128];
		uint8_t pub[131072];
		uint8_t tmp;
		uint32_t slot;
		void victim(uint32_t idx) {
			slot = idx & 15;
			tmp &= pub[sec[slot] * 512];
		}
	`, uarch.Config{StoreBypass: true, StoreBufferDepth: 16})
	secA, _ := ma.GlobalAddr("sec")
	pubA, _ := ma.GlobalAddr("pub")
	slotA, _ := ma.GlobalAddr("slot")
	const secret = 88
	ma.Mem.Store(secA+42, 1, secret)
	ma.Mem.Store(slotA, 4, 42)
	ma.Flush()
	ma.Call("victim", 3)
	fmt.Printf("spectre-v4:     planted %d at sec[42], residue present: %v\n",
		secret, ma.Probe(pubA+secret*512))
}

func dynSilentStores() {
	src := `
		uint32_t x_slot;
		void write_val(uint32_t v) { x_slot = v; }
	`
	run := func(initial, stored uint64) bool {
		ma := compileCfg(src, uarch.Config{SilentStores: true})
		xa, _ := ma.GlobalAddr("x_slot")
		ma.Mem.Store(xa, 4, initial)
		ma.Flush()
		ma.Call("write_val", stored)
		return ma.Probe(xa)
	}
	fmt.Printf("silent-stores:  equal-value store cached: %v, differing: %v\n",
		run(7, 7), run(7, 8))
}

func dynIMP() {
	ma := compileCfg(`
		uint8_t Z[64];
		uint8_t Y[131072];
		uint8_t t0;
		void walk(uint32_t n) {
			for (uint32_t i = 0; i < n; i++) {
				t0 += Y[Z[i] * 512];
			}
		}
	`, uarch.Config{IMP: true, ROB: -1})
	za, _ := ma.GlobalAddr("Z")
	ya, _ := ma.GlobalAddr("Y")
	for i, v := range []uint64{3, 9, 14, 21, 200} {
		ma.Mem.Store(za+uint64(i), 1, v)
	}
	ma.Flush()
	ma.Call("walk", 4)
	fmt.Printf("imp:            Z[4]=200 never read; Y[200*512] resident: %v (%d prefetches)\n",
		ma.Probe(ya+200*512), ma.Prefetches)
}
