GO ?= go

.PHONY: all build test race race-core check vet fmt lint audit-presolve bench bench-all bench-smoke profile fuzz conform chaos crash-chaos cover

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-core exercises the packages with real shared state under the
# parallel pipeline: the worker pool + process-wide caches (harness) and
# the frontend cache + detector (detect).
race-core:
	$(GO) test -race ./internal/harness ./internal/detect

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI-style gofmt gate).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; \
	fi

# lint runs the in-tree determinism analyzer (tools/determlint): it flags
# map-range loops whose iteration order can reach reports, encodings, or
# candidate enumeration without being sorted first.
lint:
	$(GO) run ./tools/determlint ./...

check: vet fmt lint race-core
	$(GO) test ./internal/attacks ./internal/obsv ./internal/sat ./cmd/clou

# audit-presolve replays every statically discharged candidate through the
# full SAT encoding and fails on any disagreement — the soundness gate for
# the pre-solver's refutation and witness rules (see DESIGN.md).
audit-presolve: build
	$(GO) run ./cmd/clou -litmus all -audit-presolve

# fuzz gives each native fuzz target a short budget — enough to shake out
# shallow regressions in CI. Crashing inputs are written to testdata/fuzz/
# and become permanent regression seeds. For a real campaign, run a single
# target with -fuzz and no -fuzztime.
fuzz:
	$(GO) test -fuzz=FuzzMinicParse -fuzztime=10s ./internal/minic
	$(GO) test -fuzz=FuzzLower -fuzztime=10s ./internal/lower
	$(GO) test -fuzz=FuzzIncrementalSolve -fuzztime=10s ./internal/sat

# conform runs the seeded conformance campaign (internal/progen): generate
# CONFORM_N programs under CONFORM_SEED, run the repair-soundness,
# metamorphic, architectural, and differential oracles on each. Oracle
# failures are ddmin-shrunk into internal/progen/testdata/regressions/
# where TestRegressionReplay replays them on every plain `go test`.
CONFORM_N ?= 200
CONFORM_SEED ?= 1
CONFORM_CHECKPOINT ?=
CONFORM_STORE ?=
conform:
	$(GO) test ./internal/progen -run 'TestConformRun|TestRegressionReplay|TestDegradationReplay' -v \
		-conform.n $(CONFORM_N) -conform.seed $(CONFORM_SEED) \
		$(if $(CONFORM_CHECKPOINT),-conform.checkpoint $(CONFORM_CHECKPOINT) -conform.resume) \
		$(if $(CONFORM_STORE),-conform.store $(CONFORM_STORE)) \
		-timeout 30m

# chaos runs the fault-injection campaign (internal/chaos) under the race
# detector: CHAOS_N generated programs through both engines with the
# deterministic fault plan (CHAOS_FAULT_SEED, CHAOS_RATE) armed. The test
# asserts the robustness contract — no crashes, no lost inputs, identical
# -j1/-j8 reports, and every injected fault reconciled in the metrics.
CHAOS_N ?= 100
CHAOS_RATE ?= 0.3
CHAOS_SEED ?= 1
CHAOS_FAULT_SEED ?= 7
chaos:
	$(GO) test -race ./internal/chaos -run TestChaosCampaign -count=1 -v \
		-chaos.n $(CHAOS_N) -chaos.rate $(CHAOS_RATE) \
		-chaos.seed $(CHAOS_SEED) -chaos.fault-seed $(CHAOS_FAULT_SEED) \
		-timeout 30m

# crash-chaos runs the campaign-store kill campaign under the race
# detector: worker processes are SIGKILLed at seeded instruction
# boundaries inside every WAL and compaction critical section (≥50
# kills), and the store must lose no committed verdict, re-run every
# abandoned claim, and report byte-identically to an uninterrupted run.
# TestStoreChaosIO additionally drives the store under an armed
# injection plan so every io fault is classified and recoverable.
crash-chaos:
	$(GO) test -race ./internal/chaos -run 'TestStoreKillCampaign|TestStoreChaosIO' -count=1 -v \
		-timeout 30m

# cover writes per-package coverage profiles and prints the summary for
# the packages with documented baselines (see README).
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1
	@for p in internal/detect internal/lower internal/repair internal/progen; do \
		$(GO) test -coverprofile=cover.$$(basename $$p).out ./$$p >/dev/null && \
		echo "$$p: $$($(GO) tool cover -func=cover.$$(basename $$p).out | tail -1 | awk '{print $$3}')"; \
	done

# bench regenerates the evaluation sweeps in parallel and leaves a
# machine-readable artifact (workload → ns/op, workers, queries, cache
# hits). bench-all runs the full Go benchmark suite instead.
bench:
	$(GO) run ./cmd/benchjson -o BENCH_parallel.json

bench-all:
	$(GO) test -bench . -benchtime 1x ./...

# bench-smoke is the CI-scale sweep: litmus suites only, so it finishes in
# seconds while still exercising the frontend, both engines, the pre-solver,
# and the {1,8}-worker sweep. The artifact has the same shape as
# BENCH_parallel.json and is uploaded from CI for trend inspection.
# -assert-ablation gates the incremental residual path: a -nopresolve run
# more than 3x slower than its presolve counterpart on any measurable
# workload fails the job.
bench-smoke:
	$(GO) run ./cmd/benchjson -litmus-only -assert-ablation 3 -o BENCH_smoke.json

# profile captures CPU and allocation profiles for one benchmark
# (default: the heaviest end-to-end workload). Inspect with
#   go tool pprof -top cpu.out
# The benchmark's package is located from its name prefix; detect holds
# all current Benchmark* end-to-end targets.
BENCH ?= BenchmarkDetectDonna
PROFILE_COUNT ?= 3x
profile:
	$(GO) test ./internal/detect -run '^$$' -bench '^$(BENCH)$$' \
		-benchtime $(PROFILE_COUNT) -cpuprofile cpu.out -memprofile mem.out
	@echo "profiles written: cpu.out mem.out (go tool pprof -top cpu.out)"
