GO ?= go

.PHONY: all build test race race-core check vet fmt bench bench-all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-core exercises the packages with real shared state under the
# parallel pipeline: the worker pool + process-wide caches (harness) and
# the frontend cache + detector (detect).
race-core:
	$(GO) test -race ./internal/harness ./internal/detect

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI-style gofmt gate).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; \
	fi

check: vet fmt race-core

# bench regenerates the evaluation sweeps in parallel and leaves a
# machine-readable artifact (workload → ns/op, workers, queries, cache
# hits). bench-all runs the full Go benchmark suite instead.
bench:
	$(GO) run ./cmd/benchjson -o BENCH_parallel.json

bench-all:
	$(GO) test -bench . -benchtime 1x ./...
