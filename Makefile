GO ?= go

.PHONY: all build test race check vet fmt bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI-style gofmt gate).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; \
	fi

check: vet fmt race

bench:
	$(GO) test -bench . -benchtime 1x ./...
