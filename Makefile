GO ?= go

.PHONY: all build test race race-core check vet fmt bench bench-all fuzz

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-core exercises the packages with real shared state under the
# parallel pipeline: the worker pool + process-wide caches (harness) and
# the frontend cache + detector (detect).
race-core:
	$(GO) test -race ./internal/harness ./internal/detect

vet:
	$(GO) vet ./...

# fmt fails if any file needs reformatting (CI-style gofmt gate).
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; \
	fi

check: vet fmt race-core
	$(GO) test ./internal/attacks ./internal/obsv ./internal/sat ./cmd/clou

# fuzz gives each native fuzz target a short budget — enough to shake out
# shallow regressions in CI. Crashing inputs are written to testdata/fuzz/
# and become permanent regression seeds. For a real campaign, run a single
# target with -fuzz and no -fuzztime.
fuzz:
	$(GO) test -fuzz=FuzzMinicParse -fuzztime=10s ./internal/minic
	$(GO) test -fuzz=FuzzLower -fuzztime=10s ./internal/lower

# bench regenerates the evaluation sweeps in parallel and leaves a
# machine-readable artifact (workload → ns/op, workers, queries, cache
# hits). bench-all runs the full Go benchmark suite instead.
bench:
	$(GO) run ./cmd/benchjson -o BENCH_parallel.json

bench-all:
	$(GO) test -bench . -benchtime 1x ./...
