// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark prints (once) the rows or series the paper
// reports; timings come from the benchmark framework itself. The mapping
// from experiment to benchmark is indexed in DESIGN.md; the
// paper-versus-measured record lives in EXPERIMENTS.md.
package lcm

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"lcm/internal/acfg"
	"lcm/internal/aeg"
	"lcm/internal/alias"
	"lcm/internal/attacks"
	"lcm/internal/baseline"
	"lcm/internal/core"
	"lcm/internal/cryptolib"
	"lcm/internal/detect"
	"lcm/internal/harness"
	"lcm/internal/ir"
	"lcm/internal/litmus"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/prog"
	"lcm/internal/repair"
)

var printOnce sync.Map

// once prints s a single time per key across benchmark iterations.
func once(key, s string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Fprintln(os.Stdout, s)
	}
}

func compileSrc(b *testing.B, src string) *ir.Module {
	b.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	m, err := lower.Module(f)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// --- Fig. 1: Spectre v1 event structures / candidate executions ---

func BenchmarkFig1_SpectreV1EventStructures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gs := prog.Expand(prog.SpectreV1(), prog.ExpandOptions{})
		if len(gs) != 2 {
			b.Fatalf("event structures = %d, want 2 (Fig. 1c/1d)", len(gs))
		}
	}
	once("fig1", "Fig.1: Spectre v1 yields 2 event structures, each extending to exactly 1 candidate execution")
}

// --- Fig. 2a: microarchitectural semantics (xstate, rfx) ---

func BenchmarkFig2a_MicroarchSemantics(b *testing.B) {
	structures := prog.Expand(prog.SpectreV1(), prog.ExpandOptions{XStateForLocation: true, Observer: true})
	for i := 0; i < b.N; i++ {
		n := 0
		for _, es := range structures {
			findings := core.FindLeakage(es, core.FindOptions{})
			n += len(findings)
		}
		if n == 0 {
			b.Fatal("no rf/rfx deviations found")
		}
	}
	once("fig2a", "Fig.2a: interference-free microarchitectural witness deviates from com at the observer (rf-NI violations)")
}

// --- Fig. 2b: speculative semantics ---

func BenchmarkFig2b_SpeculativeSemantics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		structures := prog.Expand(prog.SpectreV1(), prog.ExpandOptions{
			Depth: 2, XStateForLocation: true, Observer: true,
		})
		findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{})
		sum := core.Summarize(findings)
		if sum[core.UDT] == 0 {
			b.Fatal("transient UDT (6S) not found")
		}
	}
	once("fig2b", "Fig.2b: speculation depth 2 exposes the transient universal data transmitter 6S")
}

// --- Table 1: transmitter taxonomy ---

func BenchmarkTable1_TransmitterTaxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, a := range attacks.All() {
			vs := core.CheckNonInterference(a.Graph)
			ts := core.Classify(a.Graph, vs, core.ClassifyOptions{})
			if len(ts) == 0 {
				b.Fatalf("%s: no transmitters", a.Name)
			}
		}
	}
	once("table1", "Table 1: AT < CT < {DT, UCT} < UDT classification over the §4.2 attack sampling")
}

// --- Figs. 3, 4a, 4b, 5a, 5b: the attack sampling ---

func benchAttack(b *testing.B, name string, wantWorst core.Class) {
	var a attacks.Attack
	for _, aa := range attacks.All() {
		if aa.Name == name {
			a = aa
		}
	}
	for i := 0; i < b.N; i++ {
		if !a.Machine.Confidential(a.Graph) {
			b.Fatal("machine rejects the figure execution")
		}
		vs := core.CheckNonInterference(a.Graph)
		ts := core.Classify(a.Graph, vs, core.ClassifyOptions{})
		worst := core.AT
		for _, t := range ts {
			if t.Class.Rank() > worst.Rank() {
				worst = t.Class
			}
		}
		if worst != wantWorst {
			b.Fatalf("worst class = %v, want %v", worst, wantWorst)
		}
	}
	once("attack-"+name, fmt.Sprintf("%s (%s): worst transmitter class %v — matches the paper", a.Name, a.Figure, wantWorst))
}

func BenchmarkFig3_SpectreV1Variant(b *testing.B)  { benchAttack(b, "spectre-v1-variant", core.UDT) }
func BenchmarkFig4a_SpectreV4(b *testing.B)        { benchAttack(b, "spectre-v4", core.UDT) }
func BenchmarkFig4b_SpectrePSF(b *testing.B)       { benchAttack(b, "spectre-psf", core.UDT) }
func BenchmarkFig5a_SilentStores(b *testing.B)     { benchAttack(b, "silent-stores", core.AT) }
func BenchmarkFig5b_IndirectPrefetch(b *testing.B) { benchAttack(b, "indirect-prefetch", core.UDT) }

// --- Fig. 6: the Clou pipeline, stage by stage ---

const spectreV1C = `
uint8_t A[16];
uint8_t B[131072];
uint32_t size_A = 16;
uint8_t tmp;
void victim(uint32_t y) {
	if (y < size_A) {
		uint8_t x = A[y];
		tmp &= B[x * 512];
	}
}
`

func BenchmarkFig6_ClouPipeline(b *testing.B) {
	b.Run("parse+lower", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compileSrc(b, spectreV1C)
		}
	})
	m := compileSrc(b, spectreV1C)
	b.Run("acfg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := acfg.Build(m, "victim", acfg.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	g, _ := acfg.Build(m, "victim", acfg.Options{})
	b.Run("alias+aeg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			al := alias.Analyze(g)
			aeg.Build(g, al, aeg.Options{})
		}
	})
	b.Run("detect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := detect.AnalyzeFunc(m, "victim", detect.DefaultPHT())
			if err != nil {
				b.Fatal(err)
			}
			if r.Counts()[core.UDT] == 0 {
				b.Fatal("UDT lost")
			}
		}
	})
	b.Run("repair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m2 := compileSrc(b, spectreV1C)
			if _, err := repair.Repair(m2, "victim", detect.DefaultPHT(), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	once("fig6", "Fig.6: C source → IR → A-CFG → S-AEG → detection → fence insertion, end to end")
}

// --- Fig. 7: the S-AEG with symbolic edge constraints ---

func BenchmarkFig7_SAEG(b *testing.B) {
	m := compileSrc(b, spectreV1C)
	g, err := acfg.Build(m, "victim", acfg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	al := alias.Analyze(g)
	for i := 0; i < b.N; i++ {
		a := aeg.Build(g, al, aeg.Options{})
		if len(a.Branches()) == 0 {
			b.Fatal("no symbolic branches")
		}
	}
	once("fig7", fmt.Sprintf("Fig.7: S-AEG for Spectre v1 — %d nodes with arch/take/misspec/trans edge variables", g.Len()))
}

// --- Table 2, litmus rows ---

func benchLitmusSuite(b *testing.B, suite string) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunLitmusSuite(suite, harness.Options{FuncTimeout: 10 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			out := "Table 2, litmus-" + suite + ":"
			for _, r := range rows {
				out += "\n  " + r.Format()
			}
			once("t2-"+suite, out)
		}
	}
}

func BenchmarkTable2_LitmusPHT(b *testing.B) { benchLitmusSuite(b, "pht") }
func BenchmarkTable2_LitmusSTL(b *testing.B) { benchLitmusSuite(b, "stl") }
func BenchmarkTable2_LitmusFWD(b *testing.B) { benchLitmusSuite(b, "fwd") }
func BenchmarkTable2_LitmusNEW(b *testing.B) { benchLitmusSuite(b, "new") }

// --- Table 2, crypto-library rows ---

func benchLibrary(b *testing.B, name string) {
	lib, ok := cryptolib.Lookup(name)
	if !ok {
		b.Fatalf("unknown library %s", name)
	}
	opts := harness.Options{FuncTimeout: 5 * time.Second, CryptoUniversalOnly: true}
	if name == "donna" {
		// donna's single huge public function needs a bigger budget to
		// surface its STL findings (the paper gives it Wsize=350 and
		// hours of serial time).
		opts.FuncTimeout = 30 * time.Second
	}
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunLibrary(lib, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			out := "Table 2, " + name + ":"
			for _, r := range rows {
				out += "\n  " + r.Format()
			}
			once("t2-"+name, out)
		}
	}
}

func BenchmarkTable2_CryptoTEA(b *testing.B)        { benchLibrary(b, "tea") }
func BenchmarkTable2_CryptoDonna(b *testing.B)      { benchLibrary(b, "donna") }
func BenchmarkTable2_CryptoSecretbox(b *testing.B)  { benchLibrary(b, "secretbox") }
func BenchmarkTable2_CryptoSSL3Digest(b *testing.B) { benchLibrary(b, "ssl3-digest") }
func BenchmarkTable2_CryptoMEECBC(b *testing.B)     { benchLibrary(b, "mee-cbc") }
func BenchmarkTable2_CryptoLibsodium(b *testing.B)  { benchLibrary(b, "libsodium") }
func BenchmarkTable2_CryptoOpenSSL(b *testing.B)    { benchLibrary(b, "openssl") }

// --- §6.1: fence-insertion repair study ---

func BenchmarkRepair_FenceInsertion(b *testing.B) {
	cases := litmus.All()
	for i := 0; i < b.N; i++ {
		totalFences, mitigated := 0, 0
		for _, c := range cases {
			m := compileSrc(b, c.Source)
			cfg := detect.DefaultPHT()
			if c.Suite == "stl" {
				cfg = detect.DefaultSTL()
			}
			cfg.Timeout = 10 * time.Second
			res, err := repair.Repair(m, c.Fn, cfg, 0)
			if err != nil {
				continue
			}
			totalFences += res.Fences
			if res.Remaining == 0 {
				mitigated++
			}
		}
		if i == 0 {
			once("repair", fmt.Sprintf(
				"§6.1 repair: %d/%d benchmarks fully mitigated with %d fences total (~%.1f per vulnerable program)",
				mitigated, len(cases), totalFences, float64(totalFences)/float64(len(cases))))
		}
		if mitigated < len(cases)-2 {
			b.Fatalf("only %d/%d mitigated", mitigated, len(cases))
		}
	}
}

// --- Fig. 8: runtime vs S-AEG size over the libsodium corpus ---

func BenchmarkFig8_RuntimeVsSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := harness.RunFig8(harness.Options{FuncTimeout: 5 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if !harness.MonotoneTrend(pts) {
			b.Fatal("runtime does not grow with S-AEG size")
		}
		if i == 0 {
			out := "Fig.8 series (libsodium, runtime vs S-AEG node count):\n"
			out += fmt.Sprintf("  %-34s %-9s %8s %12s", "function", "engine", "nodes", "runtime")
			for _, p := range pts {
				out += fmt.Sprintf("\n  %-34s %-9s %8d %12v", p.Fn, p.Engine, p.Nodes, p.Runtime.Round(time.Microsecond))
			}
			once("fig8", out)
		}
	}
}

// --- Ablations (design choices DESIGN.md calls out) ---

// BenchmarkAblation_GEPFilter measures the addr_gep filter's effect on the
// PHT suite: universal counts with and without the filter.
func BenchmarkAblation_GEPFilter(b *testing.B) {
	run := func(gep bool) (udt int) {
		for _, c := range litmus.PHT() {
			m := compileSrc(b, c.Source)
			cfg := detect.DefaultPHT()
			cfg.RequireGEP = gep
			r, err := detect.AnalyzeFunc(m, c.Fn, cfg)
			if err != nil {
				b.Fatal(err)
			}
			udt += r.Counts()[core.UDT]
		}
		return udt
	}
	lib, _ := cryptolib.Lookup("openssl")
	om := compileSrc(b, lib.Source)
	runSSL := func(gep bool) (udt int) {
		for _, fn := range lib.PublicFuncs {
			cfg := detect.DefaultPHT()
			cfg.RequireGEP = gep
			cfg.Transmitters = []core.Class{core.UDT}
			cfg.Timeout = 5 * time.Second
			r, err := detect.AnalyzeFunc(om, fn, cfg)
			if err != nil {
				b.Fatal(err)
			}
			udt += r.Counts()[core.UDT]
		}
		return udt
	}
	var with, without, sslWith, sslWithout int
	for i := 0; i < b.N; i++ {
		with, without = run(true), run(false)
		sslWith, sslWithout = runSSL(true), runSSL(false)
	}
	once("abl-gep", fmt.Sprintf(
		"ablation addr_gep: litmus-pht UDTs %d→%d without filter; openssl UDTs %d→%d (no true positives cost; §5.2's base-pointer flows are pruned by taint here)",
		with, without, sslWith, sslWithout))
	if without < with || sslWithout < sslWith {
		b.Fatal("removing the filter must not reduce findings")
	}
}

// BenchmarkAblation_WindowSweep sweeps Wsize on the mee-cbc entry point:
// the §6.2.1 trade-off between coverage and cost.
func BenchmarkAblation_WindowSweep(b *testing.B) {
	lib, _ := cryptolib.Lookup("mee-cbc")
	m := compileSrc(b, lib.Source)
	var report string
	for i := 0; i < b.N; i++ {
		report = "ablation Wsize sweep (mee-cbc, clou-stl):"
		for _, w := range []int{20, 50, 100, 250} {
			cfg := detect.DefaultSTL()
			cfg.AEG.Wsize = w
			cfg.Transmitters = []core.Class{core.UDT, core.UCT}
			cfg.Timeout = 5 * time.Second
			r, err := detect.AnalyzeFunc(m, "mee_cbc_decrypt", cfg)
			if err != nil {
				b.Fatal(err)
			}
			report += fmt.Sprintf("\n  Wsize=%-4d findings=%-4d queries=%-5d time=%v",
				w, len(r.Findings), r.Queries, r.Duration.Round(time.Millisecond))
		}
	}
	once("abl-wsize", report)
}

// BenchmarkAblation_TaintFilter measures the attacker-control filter:
// without it, universal patterns whose access is not steerable survive.
func BenchmarkAblation_TaintFilter(b *testing.B) {
	lib, _ := cryptolib.Lookup("libsodium")
	m := compileSrc(b, lib.Source)
	run := func(taint bool) (udt int) {
		for _, fn := range []string{"crypto_box_seal_probe", "sodium_lookup_gadget", "sodium_bin2hex"} {
			cfg := detect.DefaultPHT()
			cfg.RequireTaint = taint
			cfg.Transmitters = []core.Class{core.UDT}
			cfg.Timeout = 5 * time.Second
			r, err := detect.AnalyzeFunc(m, fn, cfg)
			if err != nil {
				b.Fatal(err)
			}
			udt += r.Counts()[core.UDT]
		}
		return udt
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		with, without = run(true), run(false)
	}
	once("abl-taint", fmt.Sprintf("ablation taint filter: UDTs with filter = %d, without = %d", with, without))
	if without < with {
		b.Fatal("removing the taint filter must not reduce findings")
	}
}

// BenchmarkDetectPruned measures the static range-analysis pruner: the
// same libsodium functions analyzed with pruning (default) and with
// -noprune, reporting how many universal candidate patterns the interval
// facts discharge before the SMT stage sees them.
func BenchmarkDetectPruned(b *testing.B) {
	lib, _ := cryptolib.Lookup("libsodium")
	m := compileSrc(b, lib.Source)
	fns := []string{"crypto_pwhash_mix", "sodium_bin2hex", "crypto_kdf_derive"}
	run := func(noPrune bool) (cand, pruned, queries int) {
		for _, fn := range fns {
			cfg := detect.DefaultPHT()
			cfg.NoPrune = noPrune
			cfg.Timeout = 5 * time.Second
			r, err := detect.AnalyzeFunc(m, fn, cfg)
			if err != nil {
				b.Fatal(err)
			}
			cand += r.Candidates
			pruned += r.Pruned
			queries += r.Queries
		}
		return
	}
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(false)
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(true)
		}
	})
	cand, pruned, qOn := run(false)
	_, zero, qOff := run(true)
	if pruned == 0 {
		b.Fatalf("range analysis pruned nothing out of %d candidates", cand)
	}
	if zero != 0 {
		b.Fatalf("NoPrune run still pruned %d candidates", zero)
	}
	if qOn > qOff {
		b.Fatalf("pruning issued more SMT queries (%d) than the unpruned run (%d)", qOn, qOff)
	}
	once("detect-pruned", fmt.Sprintf(
		"range pruning (libsodium %v): %d/%d universal candidates discharged statically; SMT queries %d→%d",
		fns, pruned, cand, qOff, qOn))
}

// BenchmarkBaselineScaling exercises the Table 2 scaling contrast: the
// baseline's eager path exploration vs Clou's symbolic encoding on a
// branch-heavy function.
func BenchmarkBaselineScaling(b *testing.B) {
	mk := func(branches int) *ir.Module {
		code := "uint8_t A[64];\nuint8_t t;\nvoid f(uint32_t x) {\n"
		for i := 0; i < branches; i++ {
			code += fmt.Sprintf("\tif ((x >> %d) & 1) { t += A[%d]; }\n", i, i+1)
		}
		code += "}\n"
		return compileSrc(b, code)
	}
	var report string
	for i := 0; i < b.N; i++ {
		report = "Table 2 scaling contrast (sequential branches; baseline explores 2^n paths):"
		for _, n := range []int{6, 10, 14, 17} {
			m := mk(n)
			t0 := time.Now()
			if _, err := detect.AnalyzeFunc(m, "f", detect.DefaultPHT()); err != nil {
				b.Fatal(err)
			}
			clouT := time.Since(t0)
			t0 = time.Now()
			r, err := baseline.AnalyzeFunc(m, "f", baseline.Config{PHT: true})
			if err != nil {
				b.Fatal(err)
			}
			bhT := time.Since(t0)
			report += fmt.Sprintf("\n  branches=%-3d clou=%-12v bh=%-12v bh-paths=%d",
				n, clouT.Round(time.Millisecond), bhT.Round(time.Millisecond), r.Paths)
		}
	}
	once("baseline-scaling", report)
}

// --- Parallel pipeline: worker-pool speedup and determinism ---

// BenchmarkParallelSweep runs the two broadest corpus libraries through
// the harness at Parallelism 1 and 4 and reports the speedup. A warmup
// sweep fills the process-wide frontend cache first, so both measured
// runs are equally cache-hot and the ratio isolates the worker pool
// itself. Findings must be identical across worker counts; the ≥2×
// speedup expectation is asserted only on machines that actually have
// four CPUs to schedule onto.
func BenchmarkParallelSweep(b *testing.B) {
	libNames := []string{"libsodium", "openssl"}
	sweep := func(workers int) ([]harness.Row, time.Duration, error) {
		opts := harness.Options{
			FuncTimeout:         5 * time.Second,
			CryptoUniversalOnly: true,
			Parallelism:         workers,
		}
		start := time.Now()
		var all []harness.Row
		for _, name := range libNames {
			lib, ok := cryptolib.Lookup(name)
			if !ok {
				return nil, 0, fmt.Errorf("unknown library %s", name)
			}
			rows, err := harness.RunLibrary(lib, opts)
			if err != nil {
				return nil, 0, err
			}
			all = append(all, rows...)
		}
		return all, time.Since(start), nil
	}

	if _, _, err := sweep(1); err != nil { // warmup: fill the frontend cache
		b.Fatal(err)
	}

	results := map[int][]harness.Row{}
	timings := map[int]time.Duration{}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, elapsed, err := sweep(workers)
				if err != nil {
					b.Fatal(err)
				}
				if _, ok := results[workers]; !ok {
					results[workers] = rows
					timings[workers] = elapsed
				}
			}
		})
	}

	serial, par := results[1], results[4]
	if len(serial) != len(par) {
		b.Fatalf("row count differs across worker counts: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Findings, par[i].Findings) {
			b.Fatalf("row %d (%s/%s): findings differ across worker counts",
				i, serial[i].App, serial[i].Tool)
		}
	}
	speedup := float64(timings[1]) / float64(timings[4])
	once("parallel-sweep", fmt.Sprintf(
		"Parallel sweep (libsodium+openssl, cache-hot): workers=1 %v, workers=4 %v, speedup %.2fx (GOMAXPROCS=%d)",
		timings[1].Round(time.Millisecond), timings[4].Round(time.Millisecond),
		speedup, runtime.GOMAXPROCS(0)))
	if runtime.GOMAXPROCS(0) >= 4 && speedup < 2 {
		b.Fatalf("speedup %.2fx < 2x with %d CPUs available", speedup, runtime.GOMAXPROCS(0))
	}
}
