// Package lcm is a from-scratch Go reproduction of "Axiomatic
// Hardware-Software Contracts for Security" (Mosier, Lachnitt, Nemati,
// Trippel — ISCA 2022): leakage containment models (LCMs), the subrosa-style
// exploration toolkit, and the Clou static analyzer, together with every
// substrate they depend on (relational algebra, event structures, memory
// consistency models, a mini-C frontend and Clang-O0-style IR, a CDCL SAT
// solver with an SMT formula layer, alias and taint analyses, a fence
// repair pass, a Binsec/Haunted-style baseline, and an out-of-order
// microarchitecture simulator). See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record.
package lcm
