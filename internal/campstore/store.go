// Package campstore is the crash-safe transactional work log behind
// sharded conformance campaigns: an append-only write-ahead log with
// per-record CRC32 framing and batched fsyncs, compacted into a
// snapshot+log layout (snapshot written to a temp file, fsynced,
// atomically renamed into place; the live log replayed over it on
// open), and a lease-based claim protocol that lets N OS processes
// share one campaign directory with no network and no double-reported
// verdicts.
//
// # Protocol
//
// A campaign is a directory holding three things: "lock" (an empty
// flock(2) rendezvous file), "snapshot.json" (one CRC-framed JSON
// record: campaign identity, current generation and epoch, and every
// compacted verdict), and "wal.<gen>.log" (the current generation's
// record log). Every mutating operation happens under the exclusive
// flock: the holder first catches up — re-reading any records other
// processes appended, truncating a torn tail, reloading wholesale if a
// compaction bumped the generation under it — then appends its own
// records and fsyncs. State is only ever applied by reading it back
// from disk, so memory is a pure function of the committed prefix and
// an append that dies anywhere leaves the next holder a log it already
// knows how to repair.
//
// Leases carry (worker, epoch). Claims, completions, and abandons are
// WAL records; Reclaim appends an epoch bump that voids every lease of
// an older epoch, so a SIGKILLed worker's claims expire without any
// wall-clock heuristics and a stale worker's late Complete is rejected
// (ErrStale) instead of double-reporting. Completed verdicts are never
// voided: recovery may re-run work that was claimed but not completed,
// never work that was completed.
//
// Torn tails (a crash mid-append) are healed silently — that is the
// WAL's job. A snapshot that fails its checksum, or a store bound to a
// different campaign seed, is faults.ErrCorrupt: the store refuses to
// guess.
package campstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"lcm/internal/faultinject"
	"lcm/internal/faults"
	"lcm/internal/obsv"
)

// ErrStale rejects a Complete or Abandon whose lease was voided by an
// epoch bump (the worker was presumed crashed and its claim re-issued)
// or whose index was already completed. The caller's verdict is
// discarded by design: exactly one completion per index is ever
// recorded, so resumed campaigns cannot double-report.
var ErrStale = errors.New("stale lease")

// WAL record operations.
const (
	opClaim    = "claim"
	opComplete = "complete"
	opAbandon  = "abandon"
	opReclaim  = "reclaim"
)

// walRecord is one framed WAL entry.
type walRecord struct {
	Op      string          `json:"op"`
	Index   int             `json:"index,omitempty"`
	Worker  string          `json:"worker,omitempty"`
	Epoch   uint64          `json:"epoch,omitempty"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// key is the record's deterministic fault-injection identity: stable
// across runs (no wall clock, no PIDs) and epoch-qualified so a
// re-claimed item's retry draws a fresh injection decision instead of
// hitting the same planted fault forever.
func (r walRecord) key() string {
	if r.Op == opReclaim {
		return fmt.Sprintf("reclaim@e%d", r.Epoch)
	}
	return fmt.Sprintf("%s/%04d@e%d", r.Op, r.Index, r.Epoch)
}

// snapshot is the compacted store state, one CRC-framed JSON record in
// snapshot.json.
type snapshot struct {
	Seed      int64       `json:"seed"`
	N         int         `json:"n"`
	Gen       uint64      `json:"gen"`
	Epoch     uint64      `json:"epoch"`
	Completed []Completed `json:"completed,omitempty"`
}

// Completed is one persisted verdict: the campaign index and the
// caller-defined payload (progen stores a checkpoint-format result
// record).
type Completed struct {
	Index   int             `json:"index"`
	Payload json.RawMessage `json:"payload"`
}

// Lease is a claim ticket. Complete and Abandon verify all three
// fields against the live lease table; a voided lease gets ErrStale.
type Lease struct {
	Index  int
	Worker string
	Epoch  uint64
}

// Options configures Open.
type Options struct {
	// Seed and N bind the store to one campaign. A fresh directory
	// adopts them; an existing store with different values refuses to
	// open (faults.ErrCorrupt) — resuming a campaign with the wrong
	// generator parameters would silently produce a franken-report.
	Seed int64
	N    int
	// Worker identifies this handle in leases. Defaults to "w<pid>".
	Worker string
	// Attach opens the store as a subordinate worker: no reclaim of
	// stale leases, no compaction — those are coordinator decisions.
	Attach bool
	// Metrics receives the store counters (store.wal_appends,
	// store.fsyncs, store.compactions, store.reclaims). Nil is fine.
	Metrics *obsv.Registry
	// CompactBytes is the WAL size that triggers compaction at open
	// (coordinator handles only). 0 means the 4 MiB default; negative
	// disables size-triggered compaction.
	CompactBytes int64
}

const defaultCompactBytes = 4 << 20

// Store is one process's handle on a campaign directory. A Store is
// safe for concurrent use by multiple goroutines, and any number of
// Stores (in one process or many) may share a directory: cross-handle
// exclusion is the flock, and every handle re-syncs from disk under it.
type Store struct {
	dir     string
	worker  string
	seed    int64
	n       int
	attach  bool
	compact int64
	metrics *obsv.Registry

	mu       sync.Mutex
	lockF    *os.File
	wal      *os.File
	walInfo  os.FileInfo // identity of the open WAL, for generation-change detection
	walOff   int64       // committed prefix we have applied
	gen      uint64
	epoch    uint64
	complete map[int]json.RawMessage
	leases   map[int]Lease
	nextFree int // all indices below are completed; claim scans start here
}

// Open opens (creating if absent) the campaign store in dir.
func Open(dir string, o Options) (*Store, error) {
	armKillFromEnv()
	if o.N <= 0 {
		return nil, fmt.Errorf("campstore: campaign size %d must be positive", o.N)
	}
	if o.Worker == "" {
		o.Worker = fmt.Sprintf("w%d", os.Getpid())
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = defaultCompactBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, faults.IOf("campstore: create %s: %v", dir, err)
	}
	lockF, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, faults.IOf("campstore: open lock: %v", err)
	}
	s := &Store{
		dir:     dir,
		worker:  o.Worker,
		seed:    o.Seed,
		n:       o.N,
		attach:  o.Attach,
		compact: o.CompactBytes,
		metrics: o.Metrics,
		lockF:   lockF,
	}
	err = s.locked(func() error {
		if err := s.reload(true); err != nil {
			return err
		}
		if s.attach {
			return nil
		}
		// Coordinator open: expire leases a crashed run left behind and
		// fold an oversized log into the snapshot.
		if len(s.leases) > 0 {
			if _, err := s.reclaimLocked(); err != nil {
				return err
			}
		}
		if s.compact > 0 && s.walOff > s.compact {
			return s.compactLocked()
		}
		return nil
	})
	if err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Close releases the handle's file descriptors. It never blocks on the
// flock and persists nothing: all state was durable at the end of the
// last operation.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	if s.lockF != nil {
		s.lockF.Close()
		s.lockF = nil
	}
	return nil
}

// locked runs f holding both the in-process mutex and the cross-process
// flock, after catching up with any state other handles committed.
func (s *Store) locked(f func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lockF == nil {
		return fmt.Errorf("campstore: store is closed")
	}
	if err := syscall.Flock(int(s.lockF.Fd()), syscall.LOCK_EX); err != nil {
		return faults.IOf("campstore: flock: %v", err)
	}
	defer syscall.Flock(int(s.lockF.Fd()), syscall.LOCK_UN)
	if err := s.syncLocked(); err != nil {
		return err
	}
	return f()
}

// syncLocked brings in-memory state up to the committed on-disk state:
// a full reload if another handle compacted (the generation changed
// under us), otherwise an incremental replay of records appended since
// our last look.
func (s *Store) syncLocked() error {
	if s.wal != nil {
		fi, err := os.Stat(s.walPath(s.gen))
		if err == nil && os.SameFile(fi, s.walInfo) {
			return s.replayLocked()
		}
		// Our generation's log is gone or replaced: a compaction won the
		// race. Drop everything and reload from the new snapshot.
	}
	return s.reload(s.wal == nil)
}

func (s *Store) walPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal.%d.log", gen))
}

func (s *Store) snapPath() string { return filepath.Join(s.dir, "snapshot.json") }

// reload (re)builds the full state: snapshot, then WAL replay. With
// create set, a missing snapshot initializes a fresh campaign bound to
// the handle's (seed, n).
func (s *Store) reload(create bool) error {
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	s.complete = make(map[int]json.RawMessage)
	s.leases = make(map[int]Lease)
	s.nextFree = 0
	s.walOff = 0

	snap, err := s.loadSnapshot(create)
	if err != nil {
		return err
	}
	s.gen = snap.Gen
	s.epoch = snap.Epoch
	for _, c := range snap.Completed {
		s.complete[c.Index] = c.Payload
	}
	wal, err := os.OpenFile(s.walPath(s.gen), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return faults.IOf("campstore: open wal gen %d: %v", s.gen, err)
	}
	fi, err := wal.Stat()
	if err != nil {
		wal.Close()
		return faults.IOf("campstore: stat wal: %v", err)
	}
	s.wal, s.walInfo = wal, fi
	s.removeStaleWALs()
	return s.replayLocked()
}

// loadSnapshot reads and validates snapshot.json. A missing snapshot
// with create set initializes generation 1 durably before returning, so
// the campaign binding exists on disk from the first moment.
func (s *Store) loadSnapshot(create bool) (snapshot, error) {
	f, err := os.Open(s.snapPath())
	if errors.Is(err, fs.ErrNotExist) {
		if !create {
			return snapshot{}, faults.Corruptf("campstore: %s vanished", s.snapPath())
		}
		snap := snapshot{Seed: s.seed, N: s.n, Gen: 1, Epoch: 0}
		if err := s.writeSnapshot(snap); err != nil {
			return snapshot{}, err
		}
		return snap, nil
	}
	if err != nil {
		return snapshot{}, faults.IOf("campstore: open snapshot: %v", err)
	}
	defer f.Close()
	payload, _, err := readFrameAt(f, 0)
	if err != nil {
		return snapshot{}, faults.Corruptf("campstore: snapshot frame: %v", err)
	}
	var snap snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return snapshot{}, faults.Corruptf("campstore: snapshot decode: %v", err)
	}
	if snap.Seed != s.seed || snap.N != s.n {
		return snapshot{}, faults.Corruptf(
			"campstore: store is bound to campaign seed=%d n=%d, not seed=%d n=%d",
			snap.Seed, snap.N, s.seed, s.n)
	}
	if snap.Gen == 0 {
		return snapshot{}, faults.Corruptf("campstore: snapshot generation 0")
	}
	return snap, nil
}

// writeSnapshot durably installs snap: temp file, fsync, atomic rename,
// directory fsync. Used both for fresh-store initialization and
// compaction; crash-safe at every boundary (the kill points mark them).
func (s *Store) writeSnapshot(snap snapshot) error {
	key := fmt.Sprintf("snapshot@g%d", snap.Gen)
	if err := faultinject.IOError(faultinject.ProbeStoreWrite, key); err != nil {
		return err
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("campstore: marshal snapshot: %v", err)
	}
	tmp := filepath.Join(s.dir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return faults.IOf("campstore: create %s: %v", tmp, err)
	}
	if _, err := f.Write(appendFrame(nil, payload)); err != nil {
		f.Close()
		return faults.IOf("campstore: write snapshot: %v", err)
	}
	if err := faultinject.IOError(faultinject.ProbeStoreFsync, key); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return faults.IOf("campstore: fsync snapshot: %v", err)
	}
	if err := f.Close(); err != nil {
		return faults.IOf("campstore: close snapshot: %v", err)
	}
	killpoint(KillSnapRenamePre)
	if err := faultinject.IOError(faultinject.ProbeStoreRename, key); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		return faults.IOf("campstore: rename snapshot: %v", err)
	}
	killpoint(KillSnapRenamePost)
	return s.syncDir()
}

// syncDir fsyncs the store directory so renames and file creations are
// durable, not just the file contents.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return faults.IOf("campstore: open dir: %v", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return faults.IOf("campstore: fsync dir: %v", err)
	}
	return nil
}

// removeStaleWALs deletes logs from other generations: the leftover of
// a compaction that died before cleanup (old gen) or after creating the
// next log but before installing its snapshot (orphaned new gen).
// Best-effort — a failure just leaves garbage for the next open.
func (s *Store) removeStaleWALs() {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	cur := fmt.Sprintf("wal.%d.log", s.gen)
	for _, e := range ents {
		var g uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal.%d.log", &g); n == 1 && e.Name() != cur {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// replayLocked applies every committed record from walOff to EOF,
// truncating a torn tail back to the last committed prefix.
func (s *Store) replayLocked() error {
	for {
		payload, size, err := readFrameAt(s.wal, s.walOff)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// Torn tail (crash mid-append) or bit rot past the committed
			// prefix: truncate back to what parses. This is the one repair
			// the store performs silently — frames are sized so a single
			// append is a single write(2), so nothing committed follows an
			// unreadable frame.
			if terr := s.wal.Truncate(s.walOff); terr != nil {
				return faults.IOf("campstore: truncate torn wal tail: %v", terr)
			}
			return nil
		}
		var rec walRecord
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			return faults.Corruptf("campstore: wal record at %d: %v", s.walOff, jerr)
		}
		s.apply(rec)
		s.walOff += size
	}
}

// apply folds one committed record into memory. Only replayLocked calls
// it: state transitions are always read back from disk, never assumed.
func (s *Store) apply(rec walRecord) {
	switch rec.Op {
	case opClaim:
		s.leases[rec.Index] = Lease{Index: rec.Index, Worker: rec.Worker, Epoch: rec.Epoch}
	case opComplete:
		delete(s.leases, rec.Index)
		s.complete[rec.Index] = rec.Payload
	case opAbandon:
		if l, ok := s.leases[rec.Index]; ok && l.Worker == rec.Worker && l.Epoch == rec.Epoch {
			delete(s.leases, rec.Index)
		}
	case opReclaim:
		if rec.Epoch > s.epoch {
			s.epoch = rec.Epoch
		}
		for idx, l := range s.leases {
			if l.Epoch < s.epoch {
				delete(s.leases, idx)
			}
		}
		s.nextFree = 0 // voided leases reopen earlier indices
	}
}

// appendLocked durably appends recs as one group commit: every frame is
// written, then a single fsync covers the batch. It does NOT apply the
// records — the caller's critical section ends with a replayLocked that
// reads them back, so memory only ever reflects bytes that were read
// from the file, and a failure anywhere leaves a log the next sync
// repairs (torn frame) or absorbs (written-but-unsynced frame).
func (s *Store) appendLocked(recs ...walRecord) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, rec := range recs {
		if err := faultinject.IOError(faultinject.ProbeStoreWrite, rec.key()); err != nil {
			return err
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("campstore: marshal record: %v", err)
		}
		buf = appendFrame(buf, payload)
	}
	killpoint(KillWALWritePre)
	if _, err := s.wal.WriteAt(buf, s.walOff); err != nil {
		return faults.IOf("campstore: wal append: %v", err)
	}
	killpoint(KillWALWritePost)
	s.metrics.Counter("store.wal_appends").Add(int64(len(recs)))
	if err := faultinject.IOError(faultinject.ProbeStoreFsync, recs[0].key()); err != nil {
		return err
	}
	killpoint(KillWALSyncPre)
	if err := s.wal.Sync(); err != nil {
		return faults.IOf("campstore: wal fsync: %v", err)
	}
	killpoint(KillWALSyncPost)
	s.metrics.Counter("store.fsyncs").Add(1)
	return s.replayLocked()
}

// Claim leases index idx to this handle's worker at the current epoch.
// ok is false if idx is already completed or currently leased.
func (s *Store) Claim(idx int) (l Lease, ok bool, err error) {
	if idx < 0 || idx >= s.n {
		return Lease{}, false, fmt.Errorf("campstore: index %d out of range [0,%d)", idx, s.n)
	}
	err = s.locked(func() error {
		return s.claimLocked(idx, &l, &ok)
	})
	return l, ok, err
}

func (s *Store) claimLocked(idx int, l *Lease, ok *bool) error {
	if _, done := s.complete[idx]; done {
		return nil
	}
	if _, held := s.leases[idx]; held {
		return nil
	}
	rec := walRecord{Op: opClaim, Index: idx, Worker: s.worker, Epoch: s.epoch}
	if err := s.appendLocked(rec); err != nil {
		return err
	}
	*l = Lease{Index: idx, Worker: s.worker, Epoch: rec.Epoch}
	*ok = true
	return nil
}

// ClaimNext leases the lowest unclaimed, uncompleted index. ok is false
// when nothing is claimable (everything is completed or leased out).
func (s *Store) ClaimNext() (l Lease, ok bool, err error) {
	err = s.locked(func() error {
		idx, found := s.nextClaimable()
		if !found {
			return nil
		}
		return s.claimLocked(idx, &l, &ok)
	})
	return l, ok, err
}

// ClaimBatch leases up to k claimable indices in one critical section —
// one flock round-trip and one fsync for the whole batch.
func (s *Store) ClaimBatch(k int) (ls []Lease, err error) {
	err = s.locked(func() error {
		var recs []walRecord
		taken := map[int]bool{}
		for len(recs) < k {
			idx, found := s.nextClaimableSkip(taken)
			if !found {
				break
			}
			taken[idx] = true
			recs = append(recs, walRecord{Op: opClaim, Index: idx, Worker: s.worker, Epoch: s.epoch})
		}
		if len(recs) == 0 {
			return nil
		}
		if err := s.appendLocked(recs...); err != nil {
			return err
		}
		for _, r := range recs {
			ls = append(ls, Lease{Index: r.Index, Worker: r.Worker, Epoch: r.Epoch})
		}
		return nil
	})
	return ls, err
}

func (s *Store) nextClaimable() (int, bool) {
	return s.nextClaimableSkip(nil)
}

func (s *Store) nextClaimableSkip(skip map[int]bool) (int, bool) {
	for s.nextFree < s.n {
		if _, done := s.complete[s.nextFree]; !done {
			break
		}
		s.nextFree++
	}
	for i := s.nextFree; i < s.n; i++ {
		if _, done := s.complete[i]; done {
			continue
		}
		if _, held := s.leases[i]; held {
			continue
		}
		if skip[i] {
			continue
		}
		return i, true
	}
	return 0, false
}

// Complete durably records the verdict for the leased index. A lease
// voided by an epoch bump — or an index another worker already
// completed — gets ErrStale and records nothing: the protocol's
// no-double-report guarantee lives here.
func (s *Store) Complete(l Lease, payload []byte) error {
	return s.locked(func() error {
		if _, done := s.complete[l.Index]; done {
			return fmt.Errorf("%w: index %d already completed", ErrStale, l.Index)
		}
		cur, held := s.leases[l.Index]
		if !held || cur.Worker != l.Worker || cur.Epoch != l.Epoch {
			return fmt.Errorf("%w: lease %d/%s@e%d was reclaimed", ErrStale, l.Index, l.Worker, l.Epoch)
		}
		return s.appendLocked(walRecord{
			Op: opComplete, Index: l.Index, Worker: l.Worker, Epoch: l.Epoch,
			Payload: json.RawMessage(payload),
		})
	})
}

// Abandon releases a lease without a verdict (a worker shutting down
// cleanly mid-campaign). A stale lease is a silent no-op: the epoch
// bump already released it.
func (s *Store) Abandon(l Lease) error {
	return s.locked(func() error {
		cur, held := s.leases[l.Index]
		if !held || cur.Worker != l.Worker || cur.Epoch != l.Epoch {
			return nil
		}
		return s.appendLocked(walRecord{Op: opAbandon, Index: l.Index, Worker: l.Worker, Epoch: l.Epoch})
	})
}

// Reclaim bumps the epoch, voiding every outstanding lease so the
// indices they covered become claimable again. The coordinator calls it
// after a worker wave exits: any lease still live belonged to a crashed
// worker. Completed verdicts are untouched. Returns how many leases
// were voided.
//
// The epoch bumps even with zero live leases: injected I/O faults
// (faultinject) are sticky per deterministic record key, and the epoch
// is the only component of that key a retry can change — an explicit
// Reclaim is therefore also the coordinator's "roll fresh injection
// decisions" lever after a failed wave.
func (s *Store) Reclaim() (int, error) {
	var n int
	err := s.locked(func() error {
		var rerr error
		n, rerr = s.reclaimLocked()
		return rerr
	})
	return n, err
}

func (s *Store) reclaimLocked() (int, error) {
	stale := len(s.leases)
	if err := s.appendLocked(walRecord{Op: opReclaim, Epoch: s.epoch + 1}); err != nil {
		return 0, err
	}
	if stale > 0 {
		s.metrics.Counter("store.reclaims").Add(int64(stale))
	}
	return stale, nil
}

// Compact folds the WAL into a new snapshot: create the next
// generation's (empty) log, durably install a snapshot pointing at it,
// then delete the old log. Open replays whichever pair the crash left
// consistent. Outstanding leases are dropped (the snapshot holds only
// completed verdicts), so only the coordinator — between waves, when no
// lease should be live — compacts.
func (s *Store) Compact() error {
	return s.locked(func() error { return s.compactLocked() })
}

func (s *Store) compactLocked() error {
	killpoint(KillSnapWritePre)
	next := s.gen + 1
	nw, err := os.OpenFile(s.walPath(next), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return faults.IOf("campstore: create wal gen %d: %v", next, err)
	}
	if err := nw.Sync(); err != nil {
		nw.Close()
		return faults.IOf("campstore: fsync new wal: %v", err)
	}
	if err := s.syncDir(); err != nil {
		nw.Close()
		return err
	}
	snap := snapshot{Seed: s.seed, N: s.n, Gen: next, Epoch: s.epoch, Completed: s.completedSorted()}
	if err := s.writeSnapshot(snap); err != nil {
		nw.Close()
		// The orphaned wal.<next>.log is stale-WAL garbage; the next
		// successful open removes it.
		return err
	}
	// The snapshot is installed: the new generation is live. Swap our
	// handle and clear the old log.
	old := s.walPath(s.gen)
	s.wal.Close()
	fi, err := nw.Stat()
	if err != nil {
		nw.Close()
		return faults.IOf("campstore: stat new wal: %v", err)
	}
	s.wal, s.walInfo, s.gen, s.walOff = nw, fi, next, 0
	s.leases = make(map[int]Lease)
	s.nextFree = 0
	os.Remove(old)
	s.metrics.Counter("store.compactions").Add(1)
	return nil
}

// completedSorted returns the completed verdicts in index order — the
// snapshot's canonical (deterministic) layout.
func (s *Store) completedSorted() []Completed {
	out := make([]Completed, 0, len(s.complete))
	for idx, payload := range s.complete {
		out = append(out, Completed{Index: idx, Payload: payload})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Import records verdicts wholesale (the JSONL-checkpoint migration
// path) as one group commit: N appends, one fsync. Indices already
// completed are skipped; a leased index is an error (imports belong to
// fresh or quiescent stores). Returns how many records were imported.
func (s *Store) Import(recs []Completed) (int, error) {
	var n int
	err := s.locked(func() error {
		var batch []walRecord
		for _, c := range recs {
			if c.Index < 0 || c.Index >= s.n {
				return fmt.Errorf("campstore: import index %d out of range [0,%d)", c.Index, s.n)
			}
			if _, done := s.complete[c.Index]; done {
				continue
			}
			if l, held := s.leases[c.Index]; held {
				return fmt.Errorf("campstore: import index %d is leased to %s", c.Index, l.Worker)
			}
			batch = append(batch, walRecord{
				Op: opComplete, Index: c.Index, Worker: s.worker, Epoch: s.epoch,
				Payload: c.Payload,
			})
		}
		if err := s.appendLocked(batch...); err != nil {
			return err
		}
		n = len(batch)
		return nil
	})
	return n, err
}

// Sync catches up with records other handles committed since the last
// operation. Accessors below read the handle's snapshot of state; call
// Sync first when cross-process freshness matters.
func (s *Store) Sync() error {
	return s.locked(func() error { return nil })
}

// Completed returns the payload recorded for idx, if any.
func (s *Store) Completed(idx int) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.complete[idx]
	return p, ok
}

// CompletedAll returns every completed verdict in index order.
func (s *Store) CompletedAll() []Completed {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completedSorted()
}

// CompletedCount returns how many indices have verdicts.
func (s *Store) CompletedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.complete)
}

// Done reports whether every index has a verdict.
func (s *Store) Done() bool { return s.CompletedCount() == s.n }

// Leases returns how many leases are outstanding.
func (s *Store) Leases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.leases)
}

// Epoch returns the current lease epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Gen returns the current snapshot generation.
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Seed returns the campaign seed the store is bound to.
func (s *Store) Seed() int64 { return s.seed }

// N returns the campaign size the store is bound to.
func (s *Store) N() int { return s.n }

// Worker returns this handle's worker identity.
func (s *Store) Worker() string { return s.worker }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }
