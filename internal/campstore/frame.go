package campstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL and snapshot records share one on-disk frame:
//
//	[4B little-endian payload length][4B little-endian CRC32(payload)][payload]
//
// The CRC covers the payload only; the length field is validated by a
// sanity bound plus the CRC of the bytes it delimits. A frame is written
// with a single write(2) call, so a killed process leaves at most one
// torn frame at the tail — and replay recovers to the last committed
// prefix by stopping (and truncating) at the first frame that fails to
// parse.

const (
	frameHeader = 8
	// maxFrame bounds a frame's payload; a length field above it is
	// corruption (a flipped bit), not a huge record.
	maxFrame = 1 << 26
)

// appendFrame appends one framed payload to buf and returns it.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// errFrame marks an unreadable frame: a torn tail, a flipped byte, or a
// truncated header. It is recovery's stop signal, never surfaced to
// callers.
var errFrame = fmt.Errorf("unreadable frame")

// readFrameAt parses one frame at off. It returns the payload and the
// total frame size, errFrame for anything unparsable (short header,
// insane length, short payload, CRC mismatch), and io.EOF exactly at a
// clean end of file.
func readFrameAt(f *os.File, off int64) ([]byte, int64, error) {
	var hdr [frameHeader]byte
	n, err := f.ReadAt(hdr[:], off)
	if n == 0 && err == io.EOF {
		return nil, 0, io.EOF
	}
	if n < frameHeader {
		return nil, 0, errFrame
	}
	size := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if size > maxFrame {
		return nil, 0, errFrame
	}
	payload := make([]byte, size)
	if m, err := f.ReadAt(payload, off+frameHeader); m < int(size) {
		_ = err
		return nil, 0, errFrame
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0, errFrame
	}
	return payload, frameHeader + int64(size), nil
}
