package campstore

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// Kill points: named instruction boundaries inside the store's
// durability-critical sections. The crash chaos campaign
// (internal/chaos TestStoreKillCampaign) sets CAMPSTORE_KILL to
// "<point>@<occurrence>" in a worker process's environment and the
// process SIGKILLs itself — no deferred cleanup, no flushes, exactly
// what a power cut or OOM kill looks like to the files — the n-th time
// execution reaches that point. Every point sits on one side of a
// durability boundary, so the sweep over all (point, occurrence) pairs
// exercises every crash window the protocol claims to survive.
const (
	// KillWALWritePre fires before a WAL frame's write(2): the record is
	// lost entirely; the lease or verdict it carried was never durable.
	KillWALWritePre = "wal.write.pre"
	// KillWALWritePost fires after the write but before the fsync: the
	// record may or may not survive; recovery must accept both.
	KillWALWritePost = "wal.write.post"
	// KillWALSyncPre fires just before fsync(2) on the WAL.
	KillWALSyncPre = "wal.sync.pre"
	// KillWALSyncPost fires after the fsync: the record is committed;
	// recovery must not lose it.
	KillWALSyncPost = "wal.sync.post"
	// KillSnapWritePre fires at the start of compaction, before the
	// new-generation WAL or the temp snapshot exist.
	KillSnapWritePre = "snap.write.pre"
	// KillSnapRenamePre fires after the temp snapshot is written and
	// fsynced but before the atomic rename: the old snapshot+log must
	// still open.
	KillSnapRenamePre = "snap.rename.pre"
	// KillSnapRenamePost fires after the rename but before the old
	// generation's log is removed: the new snapshot must open and the
	// stale log must be ignored.
	KillSnapRenamePost = "snap.rename.post"
)

// KillPoints lists every kill point, for the chaos campaign's sweep.
func KillPoints() []string {
	return []string{
		KillWALWritePre, KillWALWritePost,
		KillWALSyncPre, KillWALSyncPost,
		KillSnapWritePre, KillSnapRenamePre, KillSnapRenamePost,
	}
}

// KillEnv is the environment variable arming a kill point:
// "<point>@<n>" SIGKILLs the process the n-th (1-based) time execution
// reaches <point>.
const KillEnv = "CAMPSTORE_KILL"

var killArm struct {
	once  sync.Once
	point string
	n     int64
	hits  atomic.Int64
}

// armKillFromEnv parses KillEnv once per process. Called from Open so
// re-exec'd worker processes arm themselves with no test plumbing.
func armKillFromEnv() {
	killArm.once.Do(func() {
		spec := os.Getenv(KillEnv)
		if spec == "" {
			return
		}
		point, occ, ok := strings.Cut(spec, "@")
		if !ok {
			panic(fmt.Sprintf("campstore: malformed %s=%q (want point@n)", KillEnv, spec))
		}
		n, err := strconv.ParseInt(occ, 10, 64)
		if err != nil || n < 1 {
			panic(fmt.Sprintf("campstore: malformed %s=%q: bad occurrence", KillEnv, spec))
		}
		killArm.point = point
		killArm.n = n
	})
}

// killpoint SIGKILLs the process if the armed kill point matches and
// this is its n-th hit. SIGKILL cannot be caught: the process dies
// mid-critical-section with whatever half-written state the files hold.
func killpoint(p string) {
	if killArm.point != p {
		return
	}
	if killArm.hits.Add(1) != killArm.n {
		return
	}
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable: SIGKILL is not deliverable to a handler
}
