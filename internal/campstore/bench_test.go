package campstore

import (
	"fmt"
	"testing"
)

// BenchmarkStoreClaimComplete measures the transactional round-trip a
// worker pays per campaign item: claim (flock + WAL append + fsync) and
// complete (same again). The fsync dominates — which is exactly why
// ClaimBatch and Import group-commit.
func BenchmarkStoreClaimComplete(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Seed: 1, N: b.N + 1, Worker: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	payload := []byte(`{"index":0,"verdict":"clean","rung":"full"}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, ok, err := s.Claim(i)
		if err != nil || !ok {
			b.Fatalf("claim %d: %v %v", i, ok, err)
		}
		if err := s.Complete(l, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreClaimBatch measures the group-commit path: one flock
// round-trip and one fsync amortized over a whole batch of claims.
func BenchmarkStoreClaimBatch(b *testing.B) {
	for _, batch := range []int{16, 256} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{Seed: 1, N: b.N*batch + 1, Worker: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ls, err := s.ClaimBatch(batch)
				if err != nil || len(ls) != batch {
					b.Fatalf("ClaimBatch: %d, %v", len(ls), err)
				}
			}
		})
	}
}
