package campstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lcm/internal/faultinject"
	"lcm/internal/faults"
	"lcm/internal/obsv"
)

func openT(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	s, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func payloadFor(i int) []byte { return []byte(fmt.Sprintf(`{"v":%d}`, i)) }

// finish drives the campaign to completion: claim-next until dry,
// completing each index with its canonical payload.
func finish(t *testing.T, s *Store) {
	t.Helper()
	for {
		l, ok, err := s.ClaimNext()
		if err != nil {
			t.Fatalf("ClaimNext: %v", err)
		}
		if !ok {
			break
		}
		if err := s.Complete(l, payloadFor(l.Index)); err != nil {
			t.Fatalf("Complete(%d): %v", l.Index, err)
		}
	}
	if !s.Done() {
		t.Fatalf("campaign not done: %d/%d (leases=%d)", s.CompletedCount(), s.N(), s.Leases())
	}
}

func TestStoreClaimCompleteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obsv.NewRegistry()
	s := openT(t, dir, Options{Seed: 7, N: 5, Worker: "a", Metrics: reg})
	finish(t, s)

	all := s.CompletedAll()
	if len(all) != 5 {
		t.Fatalf("completed %d, want 5", len(all))
	}
	for i, c := range all {
		if c.Index != i {
			t.Fatalf("CompletedAll not index-ordered: pos %d holds index %d", i, c.Index)
		}
		if string(c.Payload) != string(payloadFor(i)) {
			t.Fatalf("index %d payload %s", i, c.Payload)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["store.wal_appends"] != 10 { // 5 claims + 5 completes
		t.Fatalf("wal_appends = %d, want 10", snap.Counters["store.wal_appends"])
	}
	if got := snap.Counters["store.fsyncs"]; got != 10 {
		t.Fatalf("fsyncs = %d, want 10", got)
	}

	// A fresh handle on the same dir replays to the same state.
	s2 := openT(t, dir, Options{Seed: 7, N: 5, Worker: "b"})
	if !s2.Done() || s2.CompletedCount() != 5 {
		t.Fatalf("reopened store: %d/5 done", s2.CompletedCount())
	}
}

func TestStoreClaimSemantics(t *testing.T) {
	s := openT(t, t.TempDir(), Options{Seed: 1, N: 4, Worker: "a"})

	l0, ok, err := s.Claim(0)
	if err != nil || !ok {
		t.Fatalf("Claim(0) = %v, %v", ok, err)
	}
	if _, ok, _ := s.Claim(0); ok {
		t.Fatal("double Claim(0) succeeded")
	}
	if err := s.Complete(l0, payloadFor(0)); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if _, ok, _ := s.Claim(0); ok {
		t.Fatal("Claim of completed index succeeded")
	}
	if err := s.Complete(l0, payloadFor(0)); !errors.Is(err, ErrStale) {
		t.Fatalf("re-Complete = %v, want ErrStale", err)
	}
	if _, _, err := s.Claim(99); err == nil {
		t.Fatal("Claim(99) out of range succeeded")
	}

	ls, err := s.ClaimBatch(10)
	if err != nil {
		t.Fatalf("ClaimBatch: %v", err)
	}
	if len(ls) != 3 || ls[0].Index != 1 || ls[1].Index != 2 || ls[2].Index != 3 {
		t.Fatalf("ClaimBatch = %+v, want indices 1,2,3", ls)
	}
	if err := s.Abandon(ls[2]); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	l3, ok, err := s.ClaimNext()
	if err != nil || !ok || l3.Index != 3 {
		t.Fatalf("ClaimNext after abandon = %+v, %v, %v, want index 3", l3, ok, err)
	}
}

func TestStoreLeaseEpochProtocol(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{Seed: 1, N: 2, Worker: "a"})
	b := openT(t, dir, Options{Seed: 1, N: 2, Worker: "b", Attach: true})

	la, ok, err := a.Claim(0)
	if err != nil || !ok {
		t.Fatalf("a.Claim(0): %v %v", ok, err)
	}
	// b cannot steal the live lease.
	if _, ok, _ := b.Claim(0); ok {
		t.Fatal("b claimed a leased index")
	}
	// Coordinator declares worker a dead.
	if n, err := a.Reclaim(); err != nil || n != 1 {
		t.Fatalf("Reclaim = %d, %v, want 1 voided", n, err)
	}
	lb, ok, err := b.Claim(0)
	if err != nil || !ok {
		t.Fatalf("b.Claim(0) after reclaim: %v %v", ok, err)
	}
	if lb.Epoch <= la.Epoch {
		t.Fatalf("reclaimed lease epoch %d not above voided epoch %d", lb.Epoch, la.Epoch)
	}
	// The presumed-dead worker's late completion must not double-report.
	if err := a.Complete(la, payloadFor(0)); !errors.Is(err, ErrStale) {
		t.Fatalf("stale Complete = %v, want ErrStale", err)
	}
	if err := a.Abandon(la); err != nil {
		t.Fatalf("stale Abandon should no-op, got %v", err)
	}
	if err := b.Complete(lb, payloadFor(0)); err != nil {
		t.Fatalf("b.Complete: %v", err)
	}
	if got, ok := b.Completed(0); !ok || string(got) != string(payloadFor(0)) {
		t.Fatalf("Completed(0) = %s, %v", got, ok)
	}
}

// buildReferenceLog drives a realistic mixed workload (claims,
// completes, an abandon, a reclaim, a re-claim) and returns the store
// dir plus the completed-set expected after each committed record
// prefix: expected[k] is the completed indices after the first k
// records.
func buildReferenceLog(t *testing.T) (dir string, expected []map[int]bool) {
	t.Helper()
	dir = t.TempDir()
	s := openT(t, dir, Options{Seed: 42, N: 10, Worker: "ref"})
	var leases []Lease
	claim := func(i int) {
		t.Helper()
		l, ok, err := s.Claim(i)
		if err != nil || !ok {
			t.Fatalf("claim %d: %v %v", i, ok, err)
		}
		for len(leases) <= i {
			leases = append(leases, Lease{})
		}
		leases[i] = l
	}
	for i := 0; i < 6; i++ {
		claim(i)
	}
	for i := 0; i < 4; i++ {
		if err := s.Complete(leases[i], payloadFor(i)); err != nil {
			t.Fatalf("complete %d: %v", i, err)
		}
	}
	if err := s.Abandon(leases[4]); err != nil {
		t.Fatalf("abandon: %v", err)
	}
	if _, err := s.Reclaim(); err != nil { // voids lease 5
		t.Fatalf("reclaim: %v", err)
	}
	claim(5)
	if err := s.Complete(leases[5], payloadFor(5)); err != nil {
		t.Fatalf("complete 5: %v", err)
	}
	s.Close()

	// Recompute the expected completed set per record prefix by decoding
	// the log the store actually wrote.
	wal, err := os.Open(filepath.Join(dir, "wal.1.log"))
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	defer wal.Close()
	done := map[int]bool{}
	expected = []map[int]bool{copySet(done)}
	var off int64
	for {
		payload, size, err := readFrameAt(wal, off)
		if err != nil {
			break
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			t.Fatalf("decode record at %d: %v", off, err)
		}
		if rec.Op == opComplete {
			done[rec.Index] = true
		}
		off += size
		expected = append(expected, copySet(done))
	}
	return dir, expected
}

func copySet(m map[int]bool) map[int]bool {
	c := make(map[int]bool, len(m))
	for k := range m {
		c[k] = true
	}
	return c
}

// frameBoundaries returns the byte offset of every frame start plus the
// final EOF offset.
func frameBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	bounds := []int64{0}
	var off int64
	for {
		_, size, err := readFrameAt(f, off)
		if err != nil {
			break
		}
		off += size
		bounds = append(bounds, off)
	}
	return bounds
}

func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatalf("write %s: %v", e.Name(), err)
		}
	}
	return dst
}

// checkRecovered opens a damaged copy and asserts (a) open succeeds,
// (b) the recovered completed set is exactly the expected committed
// prefix — nothing lost, nothing invented — and (c) the store is fully
// usable: the campaign drives to completion with the canonical final
// verdict set.
func checkRecovered(t *testing.T, dir string, want map[int]bool) {
	t.Helper()
	s, err := Open(dir, Options{Seed: 42, N: 10, Worker: "recover"})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer s.Close()
	got := s.CompletedAll()
	if len(got) != len(want) {
		t.Fatalf("recovered %d verdicts, want %d (prefix)", len(got), len(want))
	}
	for _, c := range got {
		if !want[c.Index] {
			t.Fatalf("recovered verdict for index %d not in committed prefix", c.Index)
		}
		if string(c.Payload) != string(payloadFor(c.Index)) {
			t.Fatalf("recovered payload for %d: %s", c.Index, c.Payload)
		}
	}
	finish(t, s)
	for i := 0; i < 10; i++ {
		p, ok := s.Completed(i)
		if !ok || string(p) != string(payloadFor(i)) {
			t.Fatalf("final verdict %d = %s, %v", i, p, ok)
		}
	}
}

// TestStoreTornWriteSweep is the exhaustive boundary sweep the issue
// demands: for every record boundary of a real log, both truncation
// (torn tail at several cut points inside the record) and single-byte
// corruption (in the length field, the CRC field, and the payload) must
// recover to the last committed prefix on open — no panic, no error,
// no silent verdict loss.
func TestStoreTornWriteSweep(t *testing.T) {
	ref, expected := buildReferenceLog(t)
	walName := "wal.1.log"
	bounds := frameBoundaries(t, filepath.Join(ref, walName))
	if len(bounds) != len(expected) {
		t.Fatalf("%d boundaries vs %d prefixes", len(bounds), len(expected))
	}
	nrec := len(bounds) - 1
	if nrec < 12 {
		t.Fatalf("reference log has only %d records; sweep needs a real workload", nrec)
	}

	refWal, err := os.ReadFile(filepath.Join(ref, walName))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < len(bounds); i++ {
		off := bounds[i]
		// Truncation cuts: clean boundary, then several tears inside
		// record i (header split, payload split, one byte short).
		cuts := []int64{off}
		if i < nrec {
			next := bounds[i+1]
			for _, c := range []int64{off + 1, off + frameHeader, next - 1} {
				if c > off && c < next {
					cuts = append(cuts, c)
				}
			}
		}
		for _, cut := range cuts {
			t.Run(fmt.Sprintf("truncate/rec%02d/cut%d", i, cut-off), func(t *testing.T) {
				dir := copyStoreDir(t, ref)
				if err := os.Truncate(filepath.Join(dir, walName), cut); err != nil {
					t.Fatal(err)
				}
				checkRecovered(t, dir, expected[i])
			})
		}
		// Single-byte corruption inside record i: length field, CRC
		// field, first payload byte. Recovery must stop at record i.
		if i < nrec {
			size := bounds[i+1] - off
			flips := []int64{off, off + 4}
			if size > frameHeader {
				flips = append(flips, off+frameHeader)
			}
			for _, pos := range flips {
				t.Run(fmt.Sprintf("flip/rec%02d/byte%d", i, pos-off), func(t *testing.T) {
					dir := copyStoreDir(t, ref)
					damaged := append([]byte(nil), refWal...)
					damaged[pos] ^= 0x40
					if err := os.WriteFile(filepath.Join(dir, walName), damaged, 0o644); err != nil {
						t.Fatal(err)
					}
					checkRecovered(t, dir, expected[i])
				})
			}
		}
	}
}

// TestStoreTornFlipKeepsLength covers the nastier corruption class: a
// flipped bit in the length field that still yields a plausible length.
// The CRC is over the payload the (wrong) length delimits, so it fails
// and recovery stops at the same prefix.
func TestStoreTornFlipKeepsLength(t *testing.T) {
	ref, expected := buildReferenceLog(t)
	walName := "wal.1.log"
	bounds := frameBoundaries(t, filepath.Join(ref, walName))
	refWal, err := os.ReadFile(filepath.Join(ref, walName))
	if err != nil {
		t.Fatal(err)
	}
	// Flip the low bit of the length at a mid-log boundary: length
	// changes by 1, still sane.
	i := len(bounds) / 2
	off := bounds[i]
	damaged := append([]byte(nil), refWal...)
	damaged[off] ^= 0x01
	if got := binary.LittleEndian.Uint32(damaged[off : off+4]); got > maxFrame {
		t.Fatalf("flip produced insane length %d; test premise broken", got)
	}
	dir := copyStoreDir(t, ref)
	if err := os.WriteFile(filepath.Join(dir, walName), damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	checkRecovered(t, dir, expected[i])
}

func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := obsv.NewRegistry()
	s := openT(t, dir, Options{Seed: 3, N: 6, Worker: "a", Metrics: reg})
	for i := 0; i < 3; i++ {
		l, ok, err := s.Claim(i)
		if err != nil || !ok {
			t.Fatalf("claim %d: %v %v", i, ok, err)
		}
		if err := s.Complete(l, payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s.Gen() != 2 {
		t.Fatalf("gen = %d, want 2", s.Gen())
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.1.log")); !os.IsNotExist(err) {
		t.Fatalf("old wal survived compaction: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.2.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("new wal: %v, size %d", err, fi.Size())
	}
	if got := reg.Snapshot().Counters["store.compactions"]; got != 1 {
		t.Fatalf("compactions = %d", got)
	}
	// The compacted store continues and reopens correctly.
	finish(t, s)
	s2 := openT(t, dir, Options{Seed: 3, N: 6, Worker: "b"})
	if s2.CompletedCount() != 6 {
		t.Fatalf("reopen after compaction: %d/6", s2.CompletedCount())
	}

	// Orphaned logs from other generations are swept at open.
	if err := os.WriteFile(filepath.Join(dir, "wal.99.log"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := openT(t, dir, Options{Seed: 3, N: 6, Worker: "c"})
	s3.Sync()
	if _, err := os.Stat(filepath.Join(dir, "wal.99.log")); !os.IsNotExist(err) {
		t.Fatalf("orphan wal not swept: %v", err)
	}
}

func TestStoreCampaignBinding(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Seed: 5, N: 4, Worker: "a"})
	s.Close()
	if _, err := Open(dir, Options{Seed: 6, N: 4}); !errors.Is(err, faults.ErrCorrupt) {
		t.Fatalf("seed mismatch open = %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, Options{Seed: 5, N: 8}); !errors.Is(err, faults.ErrCorrupt) {
		t.Fatalf("size mismatch open = %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, Options{Seed: 5, N: 4}); err != nil {
		t.Fatalf("matching reopen: %v", err)
	}
}

func TestStoreSnapshotCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Seed: 5, N: 4, Worker: "a"})
	finish(t, s)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	snap := filepath.Join(dir, "snapshot.json")
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{Seed: 5, N: 4})
	if !errors.Is(err, faults.ErrCorrupt) {
		t.Fatalf("corrupt snapshot open = %v, want ErrCorrupt", err)
	}
	if faults.Kind(err) != "corrupt" {
		t.Fatalf("Kind = %q", faults.Kind(err))
	}
}

// TestStoreMultiHandle exercises cross-handle coordination in one
// process: the flock plus sync-under-lock protocol is identical for
// threads and processes, so two Store handles on one dir behave like
// two workers.
func TestStoreMultiHandle(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{Seed: 9, N: 4, Worker: "a"})
	b := openT(t, dir, Options{Seed: 9, N: 4, Worker: "b", Attach: true})

	la, ok, err := a.ClaimNext()
	if err != nil || !ok || la.Index != 0 {
		t.Fatalf("a.ClaimNext = %+v %v %v", la, ok, err)
	}
	lb, ok, err := b.ClaimNext()
	if err != nil || !ok || lb.Index != 1 {
		t.Fatalf("b.ClaimNext = %+v %v %v (must skip a's lease)", lb, ok, err)
	}
	if err := a.Complete(la, payloadFor(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Complete(lb, payloadFor(1)); err != nil {
		t.Fatal(err)
	}
	// a compacts; b's next operation detects the generation change,
	// reloads, and keeps working.
	if err := a.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	lb2, ok, err := b.ClaimNext()
	if err != nil || !ok || lb2.Index != 2 {
		t.Fatalf("b.ClaimNext after compaction = %+v %v %v", lb2, ok, err)
	}
	if err := b.Complete(lb2, payloadFor(2)); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if a.CompletedCount() != 3 {
		t.Fatalf("a sees %d verdicts, want 3", a.CompletedCount())
	}
}

func TestStoreImportGroupCommit(t *testing.T) {
	dir := t.TempDir()
	reg := obsv.NewRegistry()
	s := openT(t, dir, Options{Seed: 11, N: 8, Worker: "import", Metrics: reg})
	recs := make([]Completed, 5)
	for i := range recs {
		recs[i] = Completed{Index: i, Payload: payloadFor(i)}
	}
	n, err := s.Import(recs)
	if err != nil || n != 5 {
		t.Fatalf("Import = %d, %v", n, err)
	}
	snap := reg.Snapshot()
	// Group commit: five appends, ONE fsync — the batching evidence.
	if snap.Counters["store.wal_appends"] != 5 || snap.Counters["store.fsyncs"] != 1 {
		t.Fatalf("appends=%d fsyncs=%d, want 5/1",
			snap.Counters["store.wal_appends"], snap.Counters["store.fsyncs"])
	}
	// Idempotent: re-import skips existing verdicts.
	if n, err := s.Import(recs); err != nil || n != 0 {
		t.Fatalf("re-Import = %d, %v, want 0", n, err)
	}
	finish(t, s)
}

func TestStoreInjectedIOFaults(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Seed: 13, N: 4, Worker: "a"})

	// rate=1: every store probe decision fires as a classified ErrIO.
	faultinject.Arm(faultinject.NewPlan(99, 1))
	defer faultinject.Disarm()
	_, _, err := s.Claim(0)
	if !errors.Is(err, faults.ErrIO) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("claim under full injection = %v, want injected ErrIO", err)
	}
	if faults.Kind(err) != "io" || !faults.IsOperational(err) {
		t.Fatalf("Kind=%q IsOperational=%v", faults.Kind(err), faults.IsOperational(err))
	}
	// Nothing was applied or persisted.
	if s.Leases() != 0 {
		t.Fatalf("failed claim left a lease")
	}
	faultinject.Disarm()
	if _, ok, err := s.Claim(0); err != nil || !ok {
		t.Fatalf("claim after disarm: %v %v", ok, err)
	}
	// Re-arm: the plan is out of the way for other tests via the defer,
	// but Disarm twice must stay legal.
	faultinject.Arm(faultinject.NewPlan(99, 1))
}

func TestStoreKillEnvParse(t *testing.T) {
	pts := KillPoints()
	if len(pts) != 7 {
		t.Fatalf("KillPoints = %d, want 7", len(pts))
	}
	seen := map[string]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate kill point %q", p)
		}
		seen[p] = true
	}
}
