package detect

import (
	"sync"
	"sync/atomic"
	"time"

	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/dataflow"
	"lcm/internal/ir"
	"lcm/internal/presolve"
	"lcm/internal/taint"
)

// frontend bundles the engine-independent per-function artifacts: the
// A-CFG, alias and taint analyses, the CFG-reachability bitsets, and the
// value-flow graph. All of them are immutable after construction, so one
// frontend may back the PHT and STL detectors of the same function — and
// many concurrent detectors — at once. The mutable S-AEG (its solver
// accumulates learnt clauses and lazily encoded windows) is deliberately
// excluded: each detector builds its own.
type frontend struct {
	g        *acfg.Graph
	al       *alias.Analysis
	ta       *taint.Analysis
	cfgReach func(from, to int) bool
	flow     *flowGraph

	// Construction sub-stage wall times, attributed to the building run's
	// report (cache hits see zeros — they paid nothing).
	aliasTime time.Duration
	flowTime  time.Duration

	// psOnce/ps hold the pre-solver's engine-independent fact base (arch
	// arms, must-alias partition). Like the rest of the frontend it is
	// immutable once built and shared between the PHT and STL runs.
	psOnce sync.Once
	ps     *presolve.Facts
}

// presolveFacts returns (building on first use) the function's shared
// pre-solver facts. mr is the module's range analyses — in any one run
// configuration the pruner, and therefore mr, is stable per module, so
// memoizing with the first caller's value is safe.
func (fe *frontend) presolveFacts(mr *dataflow.ModuleRanges) *presolve.Facts {
	fe.psOnce.Do(func() {
		fe.ps = presolve.NewFacts(fe.g, fe.al, mr)
		// Share the frontend's transitive closure; the arch-arm analysis
		// would otherwise rebuild the same rows.
		fe.ps.SetReachOracle(fe.cfgReach)
	})
	return fe.ps
}

// buildFrontend computes the artifacts from scratch.
func buildFrontend(m *ir.Module, fn string, opts acfg.Options) (*frontend, error) {
	g, err := acfg.Build(m, fn, opts)
	if err != nil {
		return nil, err
	}
	aliasStart := time.Now()
	al := alias.Analyze(g)
	aliasTime := time.Since(aliasStart)
	fe := &frontend{
		g:         g,
		al:        al,
		ta:        taint.Analyze(g, al),
		cfgReach:  cfgReachability(g),
		aliasTime: aliasTime,
	}
	flowStart := time.Now()
	fe.flow = buildFlowGraph(g, al, fe.cfgReach)
	fe.flowTime = time.Since(flowStart)
	return fe, nil
}

// Cache memoizes per-function frontends and per-module range pruners so
// repeated analyses — the second engine over the same function, a
// benchmark iteration, a parallel sweep — skip re-parsing the world.
//
// Safe for concurrent use. Keys include the module pointer, so a Cache
// must only be consulted while the module is not being mutated: callers
// that insert fences (repair) run uncached.
type Cache struct {
	mu      sync.Mutex
	funcs   map[funcKey]*funcEntry
	pruners map[*ir.Module]*prunerEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type funcKey struct {
	m    *ir.Module
	fn   string
	opts acfg.Options
}

type funcEntry struct {
	once sync.Once
	fe   *frontend
	err  error
}

type prunerEntry struct {
	once sync.Once
	p    Pruner
}

// NewCache returns an empty analysis cache.
func NewCache() *Cache {
	return &Cache{
		funcs:   map[funcKey]*funcEntry{},
		pruners: map[*ir.Module]*prunerEntry{},
	}
}

// Stats returns the frontend hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// frontend returns the cached artifacts for (m, fn, opts), computing them
// exactly once per key even under concurrent callers. The hit flag
// reports whether this call found the entry already present.
func (c *Cache) frontend(m *ir.Module, fn string, opts acfg.Options) (*frontend, bool, error) {
	key := funcKey{m: m, fn: fn, opts: opts}
	c.mu.Lock()
	e, ok := c.funcs[key]
	if !ok {
		e = &funcEntry{}
		c.funcs[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.fe, e.err = buildFrontend(m, fn, opts) })
	return e.fe, ok, e.err
}

// pruner returns the module's shared range-analysis pruner. dataflow's
// ModuleRanges fills its per-function memo lazily under its own lock, so
// one Pruner serves every worker analyzing functions of m.
func (c *Cache) pruner(m *ir.Module) Pruner {
	c.mu.Lock()
	e, ok := c.pruners[m]
	if !ok {
		e = &prunerEntry{}
		c.pruners[m] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.p = dataflow.NewPruner(m) })
	return e.p
}
