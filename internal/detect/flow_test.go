package detect

// Differential oracle for the CSR value-flow graph: a naive map-adjacency
// DFS, written independently here, must agree with flowGraph.from on the
// (reached, viaGep) verdict of every (source, destination) pair. The edge
// enumeration is intentionally duplicated — if buildFlowGraph's CSR
// packing or counting sort drops or misroutes an edge, the reference
// disagrees.

import (
	"reflect"
	"testing"

	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/cryptolib"
	"lcm/internal/ir"
	"lcm/internal/litmus"
)

type refEdge struct {
	to  int
	gep bool
}

// refFlowEdges enumerates the value-flow edges with plain maps.
func refFlowEdges(g *acfg.Graph, al *alias.Analysis, cfgReach func(from, to int) bool) map[int][]refEdge {
	adj := map[int][]refEdge{}
	add := func(src, to int, gep bool) {
		adj[src] = append(adj[src], refEdge{to: to, gep: gep})
	}
	for _, n := range g.Nodes {
		if n.Instr == nil {
			continue
		}
		switch {
		case n.Kind == acfg.NHavoc:
			for _, defs := range n.ArgDefs {
				for _, d := range defs {
					add(d, n.ID, false)
				}
			}
		case n.IsLoad():
		case n.IsStore():
			for _, d := range n.ArgDefs[0] {
				add(d, n.ID, false)
			}
		case n.Kind == acfg.NInstr:
			switch n.Instr.Op {
			case ir.OpBin, ir.OpCmp, ir.OpCast, ir.OpGEP, ir.OpFieldGEP:
				for i, defs := range n.ArgDefs {
					gep := n.Instr.Op == ir.OpGEP && i == 1
					for _, d := range defs {
						add(d, n.ID, gep)
					}
				}
			}
		}
	}
	for _, s := range g.Nodes {
		if !s.IsStore() {
			continue
		}
		for _, l := range g.Nodes {
			if l.IsLoad() && al.MayAlias(s, l) && cfgReach(s.ID, l.ID) {
				add(s.ID, l.ID, false)
			}
		}
	}
	return adj
}

// refReach runs the reference DFS over (node, crossed-gep) states.
func refReach(adj map[int][]refEdge, src int) (reached, viaGep map[int]bool) {
	reached, viaGep = map[int]bool{}, map[int]bool{}
	type state struct {
		node int
		gep  bool
	}
	visited := map[state]bool{}
	stack := []state{{node: src}}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[st] {
			continue
		}
		visited[st] = true
		reached[st.node] = true
		if st.gep {
			viaGep[st.node] = true
		}
		for _, e := range adj[st.node] {
			next := state{node: e.to, gep: st.gep || e.gep}
			if !visited[next] {
				stack = append(stack, next)
			}
		}
	}
	return reached, viaGep
}

// diffFlowFunc pins the CSR graph against the reference for one function,
// using every load and store as a source.
func diffFlowFunc(t *testing.T, label string, m *ir.Module, fn string) {
	t.Helper()
	g, err := acfg.Build(m, fn, acfg.Options{})
	if err != nil {
		t.Fatalf("%s/%s: acfg: %v", label, fn, err)
	}
	al := alias.Analyze(g)
	cfgReach := cfgReachability(g)
	fg := buildFlowGraph(g, al, cfgReach)
	adj := refFlowEdges(g, al, cfgReach)
	for _, src := range g.Nodes {
		if !src.IsLoad() && !src.IsStore() {
			continue
		}
		r := fg.from(src.ID)
		wantReach, wantGep := refReach(adj, src.ID)
		for dst := 0; dst < g.Len(); dst++ {
			gotOK, gotGep := r.reaches(dst)
			if gotOK != wantReach[dst] || gotGep != wantGep[dst] {
				t.Fatalf("%s/%s: from(%d).reaches(%d) = (%v,%v), reference (%v,%v)",
					label, fn, src.ID, dst, gotOK, gotGep, wantReach[dst], wantGep[dst])
			}
		}
		if r.popcount() != len(wantReach) {
			t.Fatalf("%s/%s: from(%d) reaches %d nodes, reference %d",
				label, fn, src.ID, r.popcount(), len(wantReach))
		}
	}
}

func TestFlowGraphMatchesReferenceLitmus(t *testing.T) {
	for _, c := range litmus.All() {
		m := compile(t, c.Source)
		for _, f := range m.Funcs {
			if !f.IsDecl() {
				diffFlowFunc(t, "litmus/"+c.Name, m, f.Nm)
			}
		}
	}
}

func TestFlowGraphMatchesReferenceCryptolib(t *testing.T) {
	// Bound the sweep to small and mid-size functions: the reference DFS is
	// map-backed and one donna limb function alone would dominate the
	// package's test time without adding edge-shape coverage.
	const maxNodes = 400
	for _, lib := range cryptolib.All() {
		m := compile(t, lib.Source)
		for _, f := range m.Funcs {
			if f.IsDecl() {
				continue
			}
			g, err := acfg.Build(m, f.Nm, acfg.Options{})
			if err != nil {
				t.Fatalf("%s/%s: acfg: %v", lib.Name, f.Nm, err)
			}
			if g.Len() > maxNodes {
				continue
			}
			diffFlowFunc(t, "cryptolib/"+lib.Name, m, f.Nm)
		}
	}
}

// TestShardDeterminism pins the sharded candidate search to the serial
// one: on donna's Montgomery ladder — the heaviest real subject — both
// engines must produce identical findings, counters, and certificates at
// ShardWorkers 1 and 8, including where the MaxQueries budget cut lands.
func TestShardDeterminism(t *testing.T) {
	lib, ok := cryptolib.Lookup("donna")
	if !ok {
		t.Fatal("donna corpus entry missing")
	}
	m := compile(t, lib.Source)
	const fn = "crypto_scalarmult"
	// Both budgets cut the search mid-candidate-loop: where the cut lands
	// is the most order-sensitive output, so equality here subsumes the
	// easy unbudgeted case (which the harness-level golden tests cover).
	for _, mk := range []func() Config{DefaultPHT, DefaultSTL, DefaultPSF, DefaultIMP, DefaultSS} {
		for _, budget := range []int{200, 1000} {
			cfg1 := mk()
			cfg1.ShardWorkers = 1
			cfg1.MaxQueries = budget
			r1, err := AnalyzeFunc(m, fn, cfg1)
			if err != nil {
				t.Fatalf("%s j=1: %v", cfg1.Engine, err)
			}
			cfg8 := mk()
			cfg8.ShardWorkers = 8
			cfg8.MaxQueries = budget
			r8, err := AnalyzeFunc(m, fn, cfg8)
			if err != nil {
				t.Fatalf("%s j=8: %v", cfg8.Engine, err)
			}
			if !reflect.DeepEqual(r1.Findings, r8.Findings) {
				t.Errorf("%s budget=%d: findings differ between j=1 (%d) and j=8 (%d)",
					cfg1.Engine, budget, len(r1.Findings), len(r8.Findings))
			}
			if !reflect.DeepEqual(r1.Counts(), r8.Counts()) {
				t.Errorf("%s budget=%d: counts differ: %v vs %v", cfg1.Engine, budget, r1.Counts(), r8.Counts())
			}
			type counters struct {
				queries, candidates, pruned, discharged, skipped, memoHits int
				budgetHit                                                  bool
			}
			c1 := counters{r1.Queries, r1.Candidates, r1.Pruned, r1.Discharged, r1.SkippedQueries, r1.MemoHits, r1.BudgetHit}
			c8 := counters{r8.Queries, r8.Candidates, r8.Pruned, r8.Discharged, r8.SkippedQueries, r8.MemoHits, r8.BudgetHit}
			if c1 != c8 {
				t.Errorf("%s budget=%d: counters differ: %+v vs %+v", cfg1.Engine, budget, c1, c8)
			}
			if len(r1.Certificates) != len(r8.Certificates) {
				t.Errorf("%s budget=%d: certificate count differs: %d vs %d",
					cfg1.Engine, budget, len(r1.Certificates), len(r8.Certificates))
			} else {
				for i := range r1.Certificates {
					if r1.Certificates[i].Key != r8.Certificates[i].Key {
						t.Errorf("%s budget=%d: certificate %d key differs: %s vs %s",
							cfg1.Engine, budget, i, r1.Certificates[i].Key, r8.Certificates[i].Key)
					}
				}
			}
		}
	}
}
