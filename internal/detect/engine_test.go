package detect

import (
	"testing"

	"lcm/internal/core"
	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func compile(t testing.TB, src string) *ir.Module {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m
}

func analyze(t *testing.T, src, fn string, cfg Config) *Result {
	t.Helper()
	m := compile(t, src)
	r, err := AnalyzeFunc(m, fn, cfg)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return r
}

func hasClass(r *Result, c core.Class) bool {
	for _, f := range r.Findings {
		if f.Class == c {
			return true
		}
	}
	return false
}

const spectreV1Src = `
uint8_t A[16];
uint8_t B[131072];
uint32_t size_A = 16;
uint8_t tmp;
void victim(uint32_t y) {
	if (y < size_A) {
		uint8_t x = A[y];
		tmp &= B[x * 512];
	}
}
`

func TestPHTDetectsSpectreV1(t *testing.T) {
	r := analyze(t, spectreV1Src, "victim", DefaultPHT())
	if !hasClass(r, core.UDT) {
		t.Fatalf("Spectre v1 UDT not found; findings: %v", r.Findings)
	}
	// The UDT's transmit is the B access, transient, with transient
	// access (A load inside the window).
	for _, f := range r.Findings {
		if f.Class == core.UDT {
			if !f.TransientTransmit || !f.TransientAccess {
				t.Errorf("UDT not transient: %+v", f)
			}
			if f.Branch < 0 {
				t.Error("UDT has no speculation primitive")
			}
		}
	}
	// The pre-solver may discharge every query statically; either way the
	// candidate traffic must be accounted somewhere.
	if r.Queries+r.SkippedQueries == 0 || r.NodeCount == 0 {
		t.Error("stats not recorded")
	}
}

func TestPHTSafeWithoutSecretIndexing(t *testing.T) {
	// A bounds check guarding a direct array write: no double indexing, so
	// no universal data transmitter.
	r := analyze(t, `
		uint8_t A[16];
		uint32_t size_A = 16;
		void safe(uint32_t y) {
			if (y < size_A) {
				A[y] = 1;
			}
		}
	`, "safe", DefaultPHT())
	if hasClass(r, core.UDT) {
		t.Errorf("false UDT in single-indexing program: %v", r.Findings)
	}
}

func TestPHTFenceSuppressesDetection(t *testing.T) {
	m := compile(t, spectreV1Src)
	// Insert an lfence right after the branch (entry of the if body).
	f := m.Func("victim")
	var thenBlk *ir.Block
	for _, b := range f.Blocks {
		if len(b.Nm) >= 7 && b.Nm[:7] == "if.then" {
			thenBlk = b
		}
	}
	if thenBlk == nil {
		t.Fatal("if.then block not found")
	}
	fence := &ir.Instr{Op: ir.OpFence, Sub: "lfence"}
	thenBlk.Instrs = append([]*ir.Instr{fence}, thenBlk.Instrs...)

	r, err := AnalyzeFunc(m, "victim", DefaultPHT())
	if err != nil {
		t.Fatal(err)
	}
	if hasClass(r, core.UDT) {
		t.Errorf("UDT survives lfence: %v", r.Findings)
	}
}

func TestPHTVariantNonTransientAccessIsDT(t *testing.T) {
	// Fig. 3: the access executes before the branch, so no UDT under the
	// transient-access restriction; the transient transmit is a DT.
	r := analyze(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint32_t size_A = 16;
		uint8_t tmp;
		void victim(uint32_t y) {
			uint8_t x = A[y];
			if (y < size_A) {
				tmp &= B[x * 512];
			}
		}
	`, "victim", DefaultPHT())
	if hasClass(r, core.UDT) {
		t.Errorf("variant produced UDT despite committed access: %v", r.Findings)
	}
	if !hasClass(r, core.DT) {
		t.Errorf("variant DT not found: %v", r.Findings)
	}
}

func TestPHTControlTransmitter(t *testing.T) {
	// Branching on loaded data, with memory accesses in the window: the
	// branch outcome (a function of the loaded value) leaks.
	r := analyze(t, `
		uint8_t A[16];
		uint8_t flag;
		uint8_t out;
		void victim(uint32_t y) {
			if (flag) {
				out = 1;
			}
		}
	`, "victim", Config{Engine: PHT, Transmitters: []core.Class{core.CT}})
	if !hasClass(r, core.CT) {
		t.Errorf("control transmitter not found: %v", r.Findings)
	}
}

func TestSTLDetectsSpectreV4(t *testing.T) {
	// STL01-style: a store masks an index; a bypassing load returns the
	// stale unmasked value and steers a double dereference.
	r := analyze(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint8_t tmp;
		uint32_t idx_slot;
		void victim(uint32_t idx) {
			idx_slot = idx & 15;
			uint8_t x = A[idx_slot];
			tmp &= B[x * 512];
		}
	`, "victim", DefaultSTL())
	if len(r.Findings) == 0 {
		t.Fatal("Spectre v4 pattern not found")
	}
	found := false
	for _, f := range r.Findings {
		if f.Store >= 0 && f.Load >= 0 && f.TransientTransmit {
			found = true
		}
	}
	if !found {
		t.Errorf("no bypass pair recorded: %v", r.Findings)
	}
}

func TestSTLStackSlotBypass(t *testing.T) {
	// §6.1 STL01: the spilled idx parameter can be read stale from the
	// stack. At -O0 the parameter spill store and its reload share a slot;
	// the reload may bypass the spill, returning stale attacker data.
	r := analyze(t, `
		uint8_t pub_ary[131072];
		uint8_t sec_ary[16];
		uint32_t ary_size = 16;
		uint8_t tmp;
		void case_1(uint32_t idx) {
			uint32_t ridx = idx & (ary_size - 1);
			sec_ary[ridx] = 0;
			tmp &= pub_ary[sec_ary[ridx]];
		}
	`, "case_1", DefaultSTL())
	if len(r.Findings) == 0 {
		t.Fatal("STL01-style leakage not found")
	}
}

func TestSTLRespectsLSQBound(t *testing.T) {
	// With an LSQ of 1, a distant store cannot be bypassed.
	src := `
		uint8_t A[16];
		uint8_t B[131072];
		uint8_t tmp;
		uint32_t slot;
		void victim(uint32_t idx) {
			slot = idx & 15;
			uint32_t a = idx + 1;
			uint32_t b = a + 2;
			uint32_t c = b + 3;
			uint32_t d = c + 4;
			uint8_t x = A[slot];
			tmp &= B[x * 512];
		}
	`
	wide := analyze(t, src, "victim", DefaultSTL())
	cfgNarrow := DefaultSTL()
	cfgNarrow.AEG.LSQ = 1
	narrow := analyze(t, src, "victim", cfgNarrow)
	if len(narrow.Findings) >= len(wide.Findings) && len(wide.Findings) > 0 {
		t.Errorf("LSQ bound ineffective: wide=%d narrow=%d", len(wide.Findings), len(narrow.Findings))
	}
}

func TestEngineStrings(t *testing.T) {
	if PHT.String() != "clou-pht" || STL.String() != "clou-stl" {
		t.Error("engine names")
	}
}

func TestSafeConstantTimeCode(t *testing.T) {
	// Straight-line constant-time select: no branches on secrets, no
	// secret-indexed loads → no findings from either engine.
	src := `
		uint32_t ct_select(uint32_t mask, uint32_t a, uint32_t b) {
			return (a & mask) | (b & ~mask);
		}
	`
	if r := analyze(t, src, "ct_select", DefaultPHT()); len(r.Findings) != 0 {
		t.Errorf("pht false positives: %v", r.Findings)
	}
	if r := analyze(t, src, "ct_select", DefaultSTL()); len(r.Findings) != 0 {
		t.Errorf("stl false positives: %v", r.Findings)
	}
}

func TestNestedCallDetection(t *testing.T) {
	// The gadget hides behind a call: inlining must expose it.
	r := analyze(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint32_t size_A = 16;
		uint8_t tmp;
		void gadget(uint32_t y) {
			uint8_t x = A[y];
			tmp &= B[x * 512];
		}
		void victim(uint32_t y) {
			if (y < size_A) {
				gadget(y);
			}
		}
	`, "victim", DefaultPHT())
	if !hasClass(r, core.UDT) {
		t.Errorf("inlined gadget not found: %v", r.Findings)
	}
}
