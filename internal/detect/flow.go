// Package detect implements Clou's leakage detection engines (§5.3):
// Clou-pht searches for transmitters reachable through control-flow
// mis-speculation (Spectre v1/v1.1), Clou-stl for transmitters steered by
// store-to-load bypass (Spectre v4). Both look for violations of the
// rf-non-interference predicate of §4.1 — a transient or stale-valued
// access whose value steers the address of a later memory access — and
// classify the result per the Table 1 taxonomy, with Clou's addr_gep and
// taint filters.
package detect

import (
	"math/bits"
	"sync"

	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/dataflow"
	"lcm/internal/ir"
)

// flowGraph materializes the (data.rf)* value-flow relation of §5.3 over
// the A-CFG: direct def-use edges through value-producing instructions,
// plus store→load edges through may-aliasing memory (the data.rf hops —
// at -O0 every spill/reload is one). A load's address operand is *not* a
// value edge: value used as an address is an addr dependency, the pattern
// boundary of Table 1, not a link inside a chain.
//
// The adjacency is a CSR array: edges[start[n]:start[n+1]] are node n's
// out-edges, each packed to<<1|gep, where gep marks a hop entering a GEP
// through its index operand (the addr_gep signal of §5.2). Per-source
// reach info is memoized on the graph itself, so it is shared across the
// candidates of one engine run, across the PHT and STL engines of a
// cached frontend, and across concurrent detector runs.
type flowGraph struct {
	g     *acfg.Graph
	start []int32
	edges []int32

	mu   sync.Mutex
	memo map[int]reachInfo
}

func buildFlowGraph(g *acfg.Graph, al *alias.Analysis, cfgReach func(from, to int) bool) *flowGraph {
	f := &flowGraph{g: g, memo: map[int]reachInfo{}}
	type rawEdge struct{ src, packed int32 }
	var raw []rawEdge
	add := func(src, to int, gep bool) {
		p := int32(to) << 1
		if gep {
			p |= 1
		}
		raw = append(raw, rawEdge{src: int32(src), packed: p})
	}
	for _, n := range g.Nodes {
		if n.Instr == nil {
			continue
		}
		switch {
		case n.Kind == acfg.NHavoc:
			// Arguments flow into the havoc result.
			for _, defs := range n.ArgDefs {
				for _, d := range defs {
					add(d, n.ID, false)
				}
			}
		case n.IsLoad():
			// no value edges in: the loaded value comes from memory
		case n.IsStore():
			for _, d := range n.ArgDefs[0] { // stored value only
				add(d, n.ID, false)
			}
		case n.Kind == acfg.NInstr:
			switch n.Instr.Op {
			case ir.OpBin, ir.OpCmp, ir.OpCast, ir.OpGEP, ir.OpFieldGEP:
				for i, defs := range n.ArgDefs {
					gep := n.Instr.Op == ir.OpGEP && i == 1
					for _, d := range defs {
						add(d, n.ID, gep)
					}
				}
			}
		}
	}
	// data.rf hops: store s → load l when they may address the same
	// location and s can reach l.
	var stores, loads []*acfg.Node
	for _, n := range g.Nodes {
		if n.IsStore() {
			stores = append(stores, n)
		}
		if n.IsLoad() {
			loads = append(loads, n)
		}
	}
	for _, s := range stores {
		for _, l := range loads {
			if al.MayAlias(s, l) && cfgReach(s.ID, l.ID) {
				add(s.ID, l.ID, false)
			}
		}
	}
	// Counting sort into CSR, stable per source.
	n := g.Len()
	f.start = make([]int32, n+1)
	for _, e := range raw {
		f.start[e.src+1]++
	}
	for i := 0; i < n; i++ {
		f.start[i+1] += f.start[i]
	}
	f.edges = make([]int32, len(raw))
	cursor := make([]int32, n)
	copy(cursor, f.start[:n])
	for _, e := range raw {
		f.edges[cursor[e.src]] = e.packed
		cursor[e.src]++
	}
	return f
}

// reachInfo records value-flow reachability from one source as two
// bitsets over node IDs: reached nodes, and nodes some reaching path
// crosses a gep index hop to arrive at.
type reachInfo struct {
	reached dataflow.BitSet
	viaGep  dataflow.BitSet
}

// from returns (computing and memoizing on first use) the reach info of
// one source node. Safe for concurrent use; the traversal is pure, so two
// racing computations produce identical results and either may be kept.
func (f *flowGraph) from(src int) reachInfo {
	f.mu.Lock()
	if r, ok := f.memo[src]; ok {
		f.mu.Unlock()
		return r
	}
	f.mu.Unlock()
	r := f.compute(src)
	f.mu.Lock()
	if prev, ok := f.memo[src]; ok {
		r = prev
	} else {
		f.memo[src] = r
	}
	f.mu.Unlock()
	return r
}

// memoSize reports how many sources have been computed so far.
func (f *flowGraph) memoSize() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.memo)
}

// compute runs the DFS over (node, crossed-gep) states. A state is
// packed node<<1|gep — the same packing as a CSR edge, so following an
// edge is a single OR of the gep flags.
func (f *flowGraph) compute(src int) reachInfo {
	n := f.g.Len()
	info := reachInfo{reached: dataflow.NewBitSet(n), viaGep: dataflow.NewBitSet(n)}
	visited := dataflow.NewBitSet(2 * n)
	stack := make([]int32, 1, 64)
	stack[0] = int32(src) << 1
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited.Has(int(st)) {
			continue
		}
		visited.Set(int(st))
		node, gep := int(st>>1), st&1
		info.reached.Set(node)
		if gep != 0 {
			info.viaGep.Set(node)
		}
		for _, e := range f.edges[f.start[node]:f.start[node+1]] {
			next := e | gep
			if !visited.Has(int(next)) {
				stack = append(stack, next)
			}
		}
	}
	return info
}

// reaches reports whether the source's value reaches node dst, and whether
// some reaching path crosses a gep index.
func (r reachInfo) reaches(dst int) (ok, viaGEPIndex bool) {
	if r.reached == nil {
		return false, false
	}
	return r.reached.Has(dst), r.viaGep.Has(dst)
}

// popcount returns the number of reached nodes (test support).
func (r reachInfo) popcount() int {
	total := 0
	for _, w := range r.reached {
		total += bits.OnesCount64(w)
	}
	return total
}

// addrDefs returns the defining nodes of a memory node's address operand
// (all pointer operands for havoc calls).
func addrDefs(n *acfg.Node) []int {
	switch {
	case n.IsLoad():
		if len(n.ArgDefs) > 0 {
			return n.ArgDefs[0]
		}
	case n.IsStore():
		if len(n.ArgDefs) > 1 {
			return n.ArgDefs[1]
		}
	case n.Kind == acfg.NHavoc:
		var out []int
		for i, a := range n.Instr.Args {
			if ir.IsPtr(a.Type()) && i < len(n.ArgDefs) {
				out = append(out, n.ArgDefs[i]...)
			}
		}
		return out
	}
	return nil
}

// flowsToAddr reports whether the source value (summarized by r) steers
// dst's address, and whether the chain crosses a gep index hop.
func flowsToAddr(r reachInfo, dst *acfg.Node) (ok, viaGEP bool) {
	for _, d := range addrDefs(dst) {
		if hit, gep := r.reaches(d); hit {
			if gep {
				return true, true
			}
			ok = true
		}
	}
	return ok, false
}
