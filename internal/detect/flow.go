// Package detect implements Clou's leakage detection engines (§5.3):
// Clou-pht searches for transmitters reachable through control-flow
// mis-speculation (Spectre v1/v1.1), Clou-stl for transmitters steered by
// store-to-load bypass (Spectre v4). Both look for violations of the
// rf-non-interference predicate of §4.1 — a transient or stale-valued
// access whose value steers the address of a later memory access — and
// classify the result per the Table 1 taxonomy, with Clou's addr_gep and
// taint filters.
package detect

import (
	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/ir"
)

// flowGraph materializes the (data.rf)* value-flow relation of §5.3 over
// the A-CFG: direct def-use edges through value-producing instructions,
// plus store→load edges through may-aliasing memory (the data.rf hops —
// at -O0 every spill/reload is one). A load's address operand is *not* a
// value edge: value used as an address is an addr dependency, the pattern
// boundary of Table 1, not a link inside a chain.
type flowGraph struct {
	g *acfg.Graph
	// succ[n] lists value-flow successors; gepIndex marks hops entering a
	// GEP through its index operand (the addr_gep signal of §5.2).
	succ map[int][]flowEdge
}

type flowEdge struct {
	to       int
	gepIndex bool
}

func buildFlowGraph(g *acfg.Graph, al *alias.Analysis, cfgReach func(from, to int) bool) *flowGraph {
	f := &flowGraph{g: g, succ: map[int][]flowEdge{}}
	for _, n := range g.Nodes {
		if n.Instr == nil {
			continue
		}
		switch {
		case n.Kind == acfg.NHavoc:
			// Arguments flow into the havoc result.
			for _, defs := range n.ArgDefs {
				for _, d := range defs {
					f.succ[d] = append(f.succ[d], flowEdge{to: n.ID})
				}
			}
		case n.IsLoad():
			// no value edges in: the loaded value comes from memory
		case n.IsStore():
			for _, d := range n.ArgDefs[0] { // stored value only
				f.succ[d] = append(f.succ[d], flowEdge{to: n.ID})
			}
		case n.Kind == acfg.NInstr:
			switch n.Instr.Op {
			case ir.OpBin, ir.OpCmp, ir.OpCast, ir.OpGEP, ir.OpFieldGEP:
				for i, defs := range n.ArgDefs {
					gep := n.Instr.Op == ir.OpGEP && i == 1
					for _, d := range defs {
						f.succ[d] = append(f.succ[d], flowEdge{to: n.ID, gepIndex: gep})
					}
				}
			}
		}
	}
	// data.rf hops: store s → load l when they may address the same
	// location and s can reach l.
	var stores, loads []*acfg.Node
	for _, n := range g.Nodes {
		if n.IsStore() {
			stores = append(stores, n)
		}
		if n.IsLoad() {
			loads = append(loads, n)
		}
	}
	for _, s := range stores {
		for _, l := range loads {
			if al.MayAlias(s, l) && cfgReach(s.ID, l.ID) {
				f.succ[s.ID] = append(f.succ[s.ID], flowEdge{to: l.ID})
			}
		}
	}
	return f
}

// reachInfo records value-flow reachability from one source.
type reachInfo struct {
	reached map[int]bool // node is reachable
	viaGep  map[int]bool // some reaching path crosses a gep index hop
}

func (f *flowGraph) from(src int) reachInfo {
	info := reachInfo{reached: map[int]bool{}, viaGep: map[int]bool{}}
	type st struct {
		n   int
		gep bool
	}
	stack := []st{{src, false}}
	seen := map[st]bool{}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		info.reached[cur.n] = true
		if cur.gep {
			info.viaGep[cur.n] = true
		}
		for _, e := range f.succ[cur.n] {
			stack = append(stack, st{e.to, cur.gep || e.gepIndex})
		}
	}
	return info
}

// reaches reports whether the source's value reaches node dst, and whether
// some reaching path crosses a gep index.
func (r reachInfo) reaches(dst int) (ok, viaGEPIndex bool) {
	return r.reached[dst], r.viaGep[dst]
}

// addrDefs returns the defining nodes of a memory node's address operand
// (all pointer operands for havoc calls).
func addrDefs(n *acfg.Node) []int {
	switch {
	case n.IsLoad():
		if len(n.ArgDefs) > 0 {
			return n.ArgDefs[0]
		}
	case n.IsStore():
		if len(n.ArgDefs) > 1 {
			return n.ArgDefs[1]
		}
	case n.Kind == acfg.NHavoc:
		var out []int
		for i, a := range n.Instr.Args {
			if ir.IsPtr(a.Type()) && i < len(n.ArgDefs) {
				out = append(out, n.ArgDefs[i]...)
			}
		}
		return out
	}
	return nil
}

// flowsToAddr reports whether the source value (summarized by r) steers
// dst's address, and whether the chain crosses a gep index hop.
func flowsToAddr(r reachInfo, dst *acfg.Node) (ok, viaGEP bool) {
	for _, d := range addrDefs(dst) {
		if hit, gep := r.reaches(d); hit {
			if gep {
				return true, true
			}
			ok = true
		}
	}
	return ok, false
}
