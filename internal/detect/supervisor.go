package detect

import (
	"context"
	"errors"
	"fmt"

	"lcm/internal/faultinject"
	"lcm/internal/faults"
	"lcm/internal/ir"
	"lcm/internal/obsv"
)

// Rung identifies a degradation-ladder precision level. Lower rungs are
// sound over-approximations of higher ones — the shape hardware-software
// contracts give weaker contracts (Guarnieri et al.): a verdict decided
// lower on the ladder may admit more behaviors, never fewer, so a "clean"
// from a degraded rung is weaker evidence but a reported leak set always
// covers the full-precision one.
type Rung int

// The ladder, strongest first.
const (
	// RungFull is the configured full-symbolic analysis.
	RungFull Rung = iota
	// RungReduced retries with a single loop unrolling, a reduced
	// speculation window, and tight query/conflict budgets.
	RungReduced
	// RungTriage answers solver queries optimistically: range-prune-only
	// triage, over-approximate but cheap and deterministic.
	RungTriage
	// RungUnknown is the final fallback: no analysis completed; the
	// verdict is a sound "unknown", never a silent drop.
	RungUnknown
)

func (r Rung) String() string {
	switch r {
	case RungFull:
		return "full"
	case RungReduced:
		return "reduced"
	case RungTriage:
		return "triage"
	case RungUnknown:
		return "unknown"
	}
	return fmt.Sprintf("rung(%d)", int(r))
}

// ParseRung inverts Rung.String (used by degradation-regression replay).
func ParseRung(s string) (Rung, error) {
	for _, r := range []Rung{RungFull, RungReduced, RungTriage, RungUnknown} {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("unknown rung %q", s)
}

// reducedCfg derives the RungReduced configuration: the same engine and
// filters over a smaller, cheaper abstraction. The bounds are fixed
// constants — not fractions of the caller's — so a rung names one
// reproducible precision level everywhere.
func reducedCfg(cfg Config) Config {
	c := cfg
	c.ACFG.Unroll = 1
	c.AEG.ROB = 32
	c.AEG.LSQ = 16
	c.AEG.Wsize = 32
	if c.MaxQueries == 0 || c.MaxQueries > 512 {
		c.MaxQueries = 512
	}
	if c.MaxConflicts == 0 || c.MaxConflicts > 20000 {
		c.MaxConflicts = 20000
	}
	return c
}

// triageCfg derives the RungTriage configuration: no solver search at
// all, so the only budgets left are the wall clock and the frontend.
func triageCfg(cfg Config) Config {
	c := reducedCfg(cfg)
	c.TriageOnly = true
	c.MaxQueries = 0
	c.MaxConflicts = 0
	return c
}

// AnalyzeFuncLadder is the fault-tolerant analysis supervisor: it runs
// AnalyzeFuncCtx down the degradation ladder — full symbolic, then
// reduced window and single unrolling, then range-prune-only triage —
// retrying whenever an attempt dies of a classified fault (deadline,
// budget, panic, or an injected cancellation), and finally returns a
// sound RungUnknown verdict instead of failing. Every input therefore
// gets exactly one Result; the rung it was decided at and the fault that
// forced any downgrade ride along in Result.Rung / Result.Failure.
//
// Non-fault errors (unknown function, malformed IR) are returned as
// errors: no amount of precision loss can decide those. A parent context
// that is itself done aborts the ladder with a classified error — campaign
// cancellation must not burn the remaining rungs.
func AnalyzeFuncLadder(ctx context.Context, m *ir.Module, fn string, cfg Config) (*Result, error) {
	baseKey := cfg.InjectKey
	if baseKey == "" {
		baseKey = fn
	}
	var lastFault error
	attempts := 0
	for _, rung := range []Rung{RungFull, RungReduced, RungTriage} {
		if err := ctx.Err(); err != nil {
			return nil, faults.FromContext(err)
		}
		c := cfg
		switch rung {
		case RungReduced:
			c = reducedCfg(cfg)
		case RungTriage:
			c = triageCfg(cfg)
		}
		// Each rung makes fresh injection decisions: a fault that killed
		// the full attempt does not automatically kill the retry.
		c.InjectKey = fmt.Sprintf("%s@r%d", baseKey, int(rung))
		attempts++
		res, err := attemptRung(ctx, m, fn, c)
		fault := classifyAttempt(res, err)
		if fault == nil {
			res.Rung = rung
			res.Attempts = attempts
			if rung > RungFull {
				recordDegraded(cfg.Metrics, rung)
			}
			return res, nil
		}
		if !faults.IsFault(fault) {
			return nil, fault
		}
		recordFault(cfg.Metrics, fault)
		lastFault = fault
		if faults.IsOperational(fault) {
			// Storage-layer kinds (io, corrupt): descending the ladder
			// cannot fix a disk, and the campaign store's lease protocol
			// already re-runs the item safely after recovery. Fall through
			// to the sound Unknown verdict carrying the kind.
			break
		}
		if ctx.Err() != nil {
			// The campaign itself is shutting down, not just this attempt.
			return nil, faults.FromContext(ctx.Err())
		}
		cfg.Metrics.Counter("supervisor.retries").Add(1)
	}
	// Every rung failed: emit the sound Unknown verdict carrying the last
	// classified fault. This is a result, not an error — the item is
	// accounted for, just undecided.
	res := &Result{
		Fn:       fn,
		Rung:     RungUnknown,
		Failure:  faults.Kind(lastFault),
		Fault:    lastFault,
		Attempts: attempts,
	}
	cfg.Metrics.Counter("supervisor.unknown").Add(1)
	res.record(cfg.Metrics)
	return res, nil
}

// attemptRung runs one analysis attempt with panic recovery: a panicking
// worker (organic or injected) yields a classified faults.ErrPanic error
// instead of unwinding the process.
func attemptRung(ctx context.Context, m *ir.Module, fn string, cfg Config) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pv, ok := r.(faultinject.PanicValue); ok {
				err = fmt.Errorf("%w: %w: %v", faults.ErrPanic, faultinject.ErrInjected, pv)
				return
			}
			err = faults.Panicf("detect %s: %v", fn, r)
		}
	}()
	return AnalyzeFuncCtx(ctx, m, fn, cfg)
}

// classifyAttempt folds an attempt's outcome into a single error: nil for
// success, a faults-taxonomy error for a recoverable fault, anything else
// for a genuine error.
func classifyAttempt(res *Result, err error) error {
	switch {
	case err != nil:
		return err
	case res.Fault != nil:
		return res.Fault
	case res.TimedOut:
		return faults.Deadlinef("%s: analysis deadline", res.Fn)
	case res.BudgetHit:
		return faults.Budgetf("%s: analysis budget", res.Fn)
	}
	return nil
}

// recordFault tallies one failed attempt in the failure-taxonomy
// counters; injected faults get a parallel counter so chaos campaigns can
// reconcile them exactly against the armed plan.
func recordFault(reg *obsv.Registry, fault error) {
	kind := faults.Kind(fault)
	reg.Counter("faults." + kind).Add(1)
	if errors.Is(fault, faultinject.ErrInjected) {
		reg.Counter("faults.injected." + kind).Add(1)
	}
}

// recordDegraded tallies one verdict decided below full precision.
func recordDegraded(reg *obsv.Registry, rung Rung) {
	reg.Counter("supervisor.degraded").Add(1)
	reg.Counter("supervisor.rung." + rung.String()).Add(1)
}
