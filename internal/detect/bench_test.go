package detect

// Frontend and end-to-end benchmarks over the two heaviest cryptolib
// subjects. The frontend pair isolates the dense rewrite's stages —
// points-to solving and value-flow construction plus a full reach sweep —
// while BenchmarkDetectDonna runs both engines over donna's Montgomery
// ladder, the workload the BENCH_parallel.json acceptance numbers track.
// `make profile BENCH=BenchmarkDetectDonna` captures a CPU profile.

import (
	"testing"

	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/cryptolib"
)

// benchSubjects are the corpus entries the frontend benchmarks sweep.
var benchSubjects = []struct {
	lib string
	fn  string
}{
	{"donna", "crypto_scalarmult"},
	{"secretbox", "crypto_secretbox_open"},
}

// benchGraph builds the subject's A-CFG once, outside the timed loop.
func benchGraph(b *testing.B, libName, fn string) *acfg.Graph {
	b.Helper()
	lib, ok := cryptolib.Lookup(libName)
	if !ok {
		b.Fatalf("corpus entry %q missing", libName)
	}
	m := compile(b, lib.Source)
	g, err := acfg.Build(m, fn, acfg.Options{})
	if err != nil {
		b.Fatalf("acfg: %v", err)
	}
	return g
}

func BenchmarkFrontendAlias(b *testing.B) {
	for _, s := range benchSubjects {
		s := s
		b.Run(s.lib, func(b *testing.B) {
			g := benchGraph(b, s.lib, s.fn)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alias.Analyze(g)
			}
		})
	}
}

func BenchmarkFrontendFlow(b *testing.B) {
	for _, s := range benchSubjects {
		s := s
		b.Run(s.lib, func(b *testing.B) {
			g := benchGraph(b, s.lib, s.fn)
			al := alias.Analyze(g)
			reach := cfgReachability(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Construction plus the full per-source reach sweep the
				// engines amortize through the memo.
				fg := buildFlowGraph(g, al, reach)
				for _, n := range g.Nodes {
					if n.IsLoad() || n.IsStore() {
						fg.from(n.ID)
					}
				}
			}
		})
	}
}

func BenchmarkDetectDonna(b *testing.B) {
	lib, ok := cryptolib.Lookup("donna")
	if !ok {
		b.Fatal("donna corpus entry missing")
	}
	m := compile(b, lib.Source)
	for _, eng := range []struct {
		name string
		mk   func() Config
	}{{"pht", DefaultPHT}, {"stl", DefaultSTL}} {
		eng := eng
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := eng.mk()
				cfg.ShardWorkers = 8
				if _, err := AnalyzeFunc(m, "crypto_scalarmult", cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
