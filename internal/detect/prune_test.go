package detect

import (
	"fmt"
	"sort"
	"testing"

	"lcm/internal/core"
	"lcm/internal/cryptolib"
)

// normClass folds each universal class onto its non-universal counterpart.
// Pruning discharges only the universality claim of a pattern: a pruned
// (transmit, access) pair must still surface through the DT/CT stages, so
// under this normalization the finding sets are required to be identical.
func normClass(c core.Class) core.Class {
	switch c {
	case core.UDT:
		return core.DT
	case core.UCT:
		return core.CT
	}
	return c
}

// pairKeys canonicalizes findings to (fn, normalized class, transmit,
// access) for set comparison; the index operand is dropped because a
// downgraded finding loses it by construction.
func pairKeys(r *Result) []string {
	set := map[string]bool{}
	for _, f := range r.Findings {
		set[fmt.Sprintf("%s/%s/t%d/a%d", f.Fn, normClass(f.Class), f.Transmit, f.Access)] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// universalKeys returns the (transmit, access) pairs reported at universal
// severity.
func universalKeys(r *Result) map[string]bool {
	set := map[string]bool{}
	for _, f := range r.Findings {
		if f.Class == core.UDT || f.Class == core.UCT {
			set[fmt.Sprintf("%s/%s/t%d/a%d", f.Fn, f.Class, f.Transmit, f.Access)] = true
		}
	}
	return set
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkPruneInvariant analyzes fn with and without pruning and enforces
// the soundness contract: identical findings modulo universality, and the
// pruned run's universal findings a subset of the unpruned run's.
func checkPruneInvariant(t *testing.T, src, fn string, cfg Config) (with, without *Result) {
	t.Helper()
	with = analyze(t, src, fn, cfg)
	off := cfg
	off.NoPrune = true
	without = analyze(t, src, fn, off)
	if without.Pruned != 0 {
		t.Errorf("%v/%s: NoPrune run still pruned %d candidates", cfg.Engine, fn, without.Pruned)
	}
	if !equalKeys(pairKeys(with), pairKeys(without)) {
		t.Errorf("%v/%s: pruning changed findings beyond universality downgrades:\nwith:    %v\nwithout: %v",
			cfg.Engine, fn, pairKeys(with), pairKeys(without))
	}
	ref := universalKeys(without)
	for k := range universalKeys(with) {
		if !ref[k] {
			t.Errorf("%v/%s: pruning introduced universal finding %s", cfg.Engine, fn, k)
		}
	}
	return with, without
}

func libsodiumSource(t *testing.T) string {
	t.Helper()
	lib, ok := cryptolib.Lookup("libsodium")
	if !ok {
		t.Fatal("libsodium corpus entry not found")
	}
	return lib.Source
}

// TestPrunedCandidatesReduced pins the tentpole property: on a real
// corpus function whose indices are masked to the table size, the range
// pruner removes universal candidates before the SMT stage.
func TestPrunedCandidatesReduced(t *testing.T) {
	src := libsodiumSource(t)
	with, _ := checkPruneInvariant(t, src, "crypto_pwhash_mix", DefaultPHT())
	if with.Candidates == 0 {
		t.Fatal("no access candidates counted; instrumentation broken")
	}
	if with.Pruned == 0 {
		t.Fatalf("crypto_pwhash_mix masks every index to its table; want pruned candidates, got 0 of %d",
			with.Candidates)
	}
	if with.Pruned > with.Candidates {
		t.Fatalf("pruned %d of %d candidates", with.Pruned, with.Candidates)
	}
}

// TestPruneInvariantOnGadgets re-analyzes the libsodium functions with
// confirmed leakage witnesses under both engines: pruning must never drop
// a (transmit, access) pair or upgrade one to universal — only discharge
// universality claims the range facts refute.
func TestPruneInvariantOnGadgets(t *testing.T) {
	src := libsodiumSource(t)
	lib, _ := cryptolib.Lookup("libsodium")
	fns := append([]string{"crypto_pwhash_mix", "sodium_memcmp"}, lib.KnownGadgets...)
	for _, cfg := range []Config{DefaultPHT(), DefaultSTL()} {
		for _, fn := range fns {
			checkPruneInvariant(t, src, fn, cfg)
		}
	}
}

// TestPruneKeepsTrueUniversals pins that the genuinely universal gadget in
// sodium_bin2hex (the attacker-addressed bin[i] access feeding the hexmap
// lookups) keeps its UDT classification with pruning enabled — only the
// in-bounds hexmap accesses lose theirs.
func TestPruneKeepsTrueUniversals(t *testing.T) {
	src := libsodiumSource(t)
	r := analyze(t, src, "sodium_bin2hex", DefaultPHT())
	if r.Pruned == 0 {
		t.Fatalf("bin2hex's hexmap loads are provably in [0,16); want pruned candidates, got 0 of %d",
			r.Candidates)
	}
	found := false
	for _, f := range r.Findings {
		if f.Class == core.UDT {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("pruning must keep bin2hex's true UDT (unbounded bin[i] access)")
	}
}

// TestSTLDisjointPairPruned checks the store-bypass side: a store and a
// load at distinct constant offsets of the same array cannot forward
// stale data, so the pair is dropped from the candidate pairs — and since
// no bypass witness exists either way, findings are untouched.
func TestSTLDisjointPairPruned(t *testing.T) {
	src := `
uint64_t sd_arr[8];
uint64_t sd_dst;
void stl_disjoint(uint64_t v) {
	sd_arr[0] = v;
	sd_dst = sd_arr[1];
}
`
	with, _ := checkPruneInvariant(t, src, "stl_disjoint", DefaultSTL())
	if with.Candidates == 0 {
		t.Fatal("no store-load pairs counted")
	}
	if with.Pruned == 0 {
		t.Fatalf("constant disjoint offsets must prune the pair; candidates=%d", with.Candidates)
	}
}
