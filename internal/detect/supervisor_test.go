package detect

import (
	"context"
	"testing"

	"lcm/internal/faultinject"
	"lcm/internal/obsv"
)

func TestLadderHealthyRunStaysFull(t *testing.T) {
	m := compile(t, spectreV1Src)
	res, err := AnalyzeFuncLadder(context.Background(), m, "victim", DefaultPHT())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != RungFull {
		t.Fatalf("rung = %v, want full", res.Rung)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", res.Attempts)
	}
	if len(res.Findings) == 0 {
		t.Fatal("healthy run lost its findings")
	}
	if got := res.Report().Verdict; got != "leak" {
		t.Fatalf("verdict = %q, want leak", got)
	}
}

// TestLadderDescendsOnBudget: a query budget of 1 faults the full and
// reduced rungs deterministically; triage (no solver search) then
// decides the function. The verdict carries the rung and the metrics
// carry the retries.
func TestLadderDescendsOnBudget(t *testing.T) {
	m := compile(t, spectreV1Src)
	cfg := DefaultPHT()
	cfg.MaxQueries = 1
	// Pin the raw solver query stream: with the pre-solver discharging
	// queries a 1-query budget never trips and the ladder has nothing to
	// descend from.
	cfg.NoPresolve = true
	cfg.Metrics = obsv.NewRegistry()
	res, err := AnalyzeFuncLadder(context.Background(), m, "victim", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rung != RungTriage {
		t.Fatalf("rung = %v, want triage", res.Rung)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (full, reduced, triage)", res.Attempts)
	}
	if len(res.Findings) == 0 {
		t.Fatal("triage rung reported no findings for Spectre v1")
	}
	snap := cfg.Metrics.Snapshot()
	if got := snap.Counters["faults.budget"]; got != 2 {
		t.Errorf("faults.budget = %d, want 2", got)
	}
	if got := snap.Counters["supervisor.retries"]; got != 2 {
		t.Errorf("supervisor.retries = %d, want 2", got)
	}
	if got := snap.Counters["supervisor.degraded"]; got != 1 {
		t.Errorf("supervisor.degraded = %d, want 1", got)
	}
	if got := snap.Counters["supervisor.rung.triage"]; got != 1 {
		t.Errorf("supervisor.rung.triage = %d, want 1", got)
	}
}

// TestTriageOverApproximatesFull: the triage rung admits every candidate
// the filters pass, so its finding set must cover the full analysis's —
// the weaker-contract soundness direction of the ladder.
func TestTriageOverApproximatesFull(t *testing.T) {
	m := compile(t, spectreV1Src)
	full, err := AnalyzeFunc(m, "victim", DefaultPHT())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPHT()
	cfg.TriageOnly = true
	triage, err := AnalyzeFunc(m, "victim", cfg)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		class    string
		transmit int
	}
	seen := map[key]bool{}
	for _, f := range triage.Findings {
		seen[key{f.Class.String(), f.Transmit}] = true
	}
	for _, f := range full.Findings {
		if !seen[key{f.Class.String(), f.Transmit}] {
			t.Errorf("full-precision finding %v/%d missing from triage over-approximation", f.Class, f.Transmit)
		}
	}
}

// TestLadderExhaustedYieldsSoundUnknown arms a rate-1.0 injection plan:
// every probe fires on every rung, so no attempt can complete and the
// supervisor must return the RungUnknown verdict — classified, counted,
// and never an error or a crash.
func TestLadderExhaustedYieldsSoundUnknown(t *testing.T) {
	m := compile(t, spectreV1Src)
	plan := faultinject.NewPlan(3, 1.0)
	faultinject.Arm(plan)
	defer faultinject.Disarm()

	cfg := DefaultPHT()
	cfg.Metrics = obsv.NewRegistry()
	res, err := AnalyzeFuncLadder(context.Background(), m, "victim", cfg)
	if err != nil {
		t.Fatalf("ladder returned an error under total injection: %v", err)
	}
	if res.Rung != RungUnknown {
		t.Fatalf("rung = %v, want unknown", res.Rung)
	}
	if res.Failure == "" {
		t.Fatal("unknown verdict carries no failure kind")
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", res.Attempts)
	}
	rep := res.Report()
	if rep.Verdict != "unknown" || rep.Rung != "unknown" {
		t.Fatalf("report verdict=%q rung=%q, want unknown/unknown", rep.Verdict, rep.Rung)
	}
	snap := cfg.Metrics.Snapshot()
	var faultsTotal, injected int64
	for name, v := range snap.Counters {
		switch {
		case len(name) > len("faults.injected.") && name[:len("faults.injected.")] == "faults.injected.":
			injected += v
		case len(name) > len("faults.") && name[:len("faults.")] == "faults.":
			faultsTotal += v
		}
	}
	if faultsTotal != 3 || injected != 3 {
		t.Errorf("faults=%d injected=%d, want 3 injected faults recorded (one per rung)", faultsTotal, injected)
	}
	if got := snap.Counters["supervisor.unknown"]; got != 1 {
		t.Errorf("supervisor.unknown = %d, want 1", got)
	}
}

// TestLadderPropagatesGenuineErrors: precision loss cannot fix a request
// for a function that does not exist — that is an error, not a fault.
func TestLadderPropagatesGenuineErrors(t *testing.T) {
	m := compile(t, spectreV1Src)
	if _, err := AnalyzeFuncLadder(context.Background(), m, "no_such_fn", DefaultPHT()); err == nil {
		t.Fatal("ladder swallowed an unknown-function error")
	}
}

// TestLadderHonorsParentCancellation: a dead parent context aborts the
// ladder immediately instead of burning the remaining rungs.
func TestLadderHonorsParentCancellation(t *testing.T) {
	m := compile(t, spectreV1Src)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeFuncLadder(ctx, m, "victim", DefaultPHT()); err == nil {
		t.Fatal("ladder ran under a cancelled parent context")
	}
}
