package detect

import (
	"reflect"
	"testing"
	"time"

	"lcm/internal/cryptolib"
)

// TestCachedAnalysisMatchesUncached runs both engines over a corpus
// library with and without a shared Cache and requires identical findings:
// the cache must be a pure memoization, never an approximation.
func TestCachedAnalysisMatchesUncached(t *testing.T) {
	lib, ok := cryptolib.Lookup("tea")
	if !ok {
		t.Fatal("tea library missing from corpus")
	}
	m := compile(t, lib.Source)
	cache := NewCache()
	for _, mk := range []func() Config{DefaultPHT, DefaultSTL} {
		for _, fn := range lib.PublicFuncs {
			plain := mk()
			r1, err := AnalyzeFunc(m, fn, plain)
			if err != nil {
				t.Fatal(err)
			}
			cached := mk()
			cached.Cache = cache
			r2, err := AnalyzeFunc(m, fn, cached)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1.Findings, r2.Findings) {
				t.Errorf("%s/%v: cached findings differ from uncached", fn, plain.Engine)
			}
		}
	}
}

// TestCacheSharesFrontendAcrossEngines asserts the second engine over the
// same function is a frontend hit, and the counters advance.
func TestCacheSharesFrontendAcrossEngines(t *testing.T) {
	m := compile(t, spectreV1Src)
	cache := NewCache()

	pht := DefaultPHT()
	pht.Cache = cache
	r1, err := AnalyzeFunc(m, "victim", pht)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Error("first analysis reported a cache hit")
	}

	stl := DefaultSTL()
	stl.Cache = cache
	r2, err := AnalyzeFunc(m, "victim", stl)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Error("second engine did not hit the shared frontend")
	}

	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("Stats() = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

// TestTimeoutBindsMidQuery is the FuncTimeout regression test: before the
// context plumbing, the budget was only polled between solver queries, so
// one slow SAT query could overshoot the timeout arbitrarily. A tiny
// timeout on the corpus's biggest function must now abort promptly and be
// reported as TimedOut.
func TestTimeoutBindsMidQuery(t *testing.T) {
	lib, ok := cryptolib.Lookup("donna")
	if !ok {
		t.Fatal("donna library missing from corpus")
	}
	m := compile(t, lib.Source)
	fn := lib.PublicFuncs[0]

	// Pre-warm the frontend so the timed run measures only the search and
	// solver phases — the phases the context must interrupt mid-query.
	cache := NewCache()
	warm := DefaultPHT()
	warm.Cache = cache
	if _, _, err := cache.frontend(m, fn, warm.ACFG); err != nil {
		t.Fatal(err)
	}

	cfg := DefaultPHT()
	cfg.Cache = cache
	cfg.Timeout = 50 * time.Millisecond

	start := time.Now()
	r, err := AnalyzeFunc(m, fn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !r.TimedOut {
		// The whole analysis finishing under the budget would also be
		// fine, but then it must have been fast.
		if elapsed > time.Second {
			t.Fatalf("took %v with a 50ms budget and did not report TimedOut", elapsed)
		}
		t.Skip("analysis completed inside the 50ms budget on this machine")
	}
	// Generous bound: the abort must happen within the solver's poll
	// granularity, not after a full unbounded query.
	if elapsed > 2*time.Second {
		t.Fatalf("timed out but only after %v; budget was 50ms", elapsed)
	}
}
