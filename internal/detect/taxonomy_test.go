package detect

import (
	"testing"

	"lcm/internal/core"
)

const psfGadgetSrc = `
uint8_t sec_ary[16];
uint8_t pub_ary[131072];
uint32_t sec_slot;
uint32_t pub_idx;
uint8_t tmp;
void psfv(uint32_t idx) {
	sec_slot = sec_ary[idx & 15];
	uint32_t j = pub_idx;
	tmp &= pub_ary[(j & 255) * 512];
}
void psfv_fenced(uint32_t idx) {
	sec_slot = sec_ary[idx & 15];
	lfence();
	uint32_t j = pub_idx;
	tmp &= pub_ary[(j & 255) * 512];
}
`

func TestPSFDetectsAliasForward(t *testing.T) {
	r := analyze(t, psfGadgetSrc, "psfv", DefaultPSF())
	if !hasClass(r, core.UDT) {
		t.Fatalf("PSF UDT not found; findings: %v", r.Findings)
	}
	for _, f := range r.Findings {
		if f.Class != core.UDT {
			continue
		}
		if f.Store < 0 || f.Load < 0 {
			t.Errorf("PSF finding lacks the forwarding pair: %+v", f)
		}
		if !f.TransientTransmit {
			t.Errorf("PSF transmit not transient: %+v", f)
		}
	}
	if r.Candidates == 0 {
		t.Error("no candidates counted")
	}
}

func TestPSFFenceSuppressesDetection(t *testing.T) {
	r := analyze(t, psfGadgetSrc, "psfv_fenced", DefaultPSF())
	if len(r.Findings) != 0 {
		t.Errorf("findings despite the draining fence: %v", r.Findings)
	}
}

func TestPSFExactForwardNotFlagged(t *testing.T) {
	// The reload reads exactly the slot just stored: the forward is
	// architecturally correct, and the value it carries is the attacker's
	// own index — nothing mispredicted, nothing secret.
	r := analyze(t, `
		uint32_t slot;
		uint8_t pub_ary[131072];
		uint8_t tmp;
		void correct(uint32_t idx) {
			slot = idx & 15;
			uint32_t j = slot;
			tmp &= pub_ary[j * 512];
		}
	`, "correct", DefaultPSF())
	for _, f := range r.Findings {
		sn := r.Graph.Nodes[f.Store]
		ln := r.Graph.Nodes[f.Load]
		if mustAliasExact(sn, ln) {
			t.Errorf("exact same-address forward flagged: %+v", f)
		}
	}
}

const impGadgetSrc = `
uint8_t idx_ary[16];
uint8_t data_ary[131072];
uint8_t tmp;
void walk(uint32_t n) {
	for (uint32_t i = 0; i < n; i++) {
		tmp &= data_ary[idx_ary[i & 7]];
	}
}
void walk_fenced(uint32_t n) {
	for (uint32_t i = 0; i < n; i++) {
		lfence();
		tmp &= data_ary[idx_ary[i & 7]];
	}
}
void walk_direct(uint32_t n) {
	for (uint32_t i = 0; i < n; i++) {
		tmp &= data_ary[i & 7];
	}
}
`

func TestIMPDetectsTrainedWalk(t *testing.T) {
	r := analyze(t, impGadgetSrc, "walk", DefaultIMP())
	if !hasClass(r, core.UDT) {
		t.Fatalf("IMP UDT not found; findings: %v", r.Findings)
	}
	for _, f := range r.Findings {
		if f.Class != core.UDT {
			continue
		}
		if f.Load < 0 || f.Index < 0 {
			t.Errorf("IMP finding lacks the dependent pair instances: %+v", f)
		}
		if f.TransientTransmit {
			t.Errorf("IMP training accesses are architectural: %+v", f)
		}
	}
}

func TestIMPFenceSuppressesDetection(t *testing.T) {
	r := analyze(t, impGadgetSrc, "walk_fenced", DefaultIMP())
	if len(r.Findings) != 0 {
		t.Errorf("findings despite per-iteration fences: %v", r.Findings)
	}
}

func TestIMPNoDependentPairClean(t *testing.T) {
	// Direct induction-variable indexing: the only address feeder is a
	// scalar reload with stride zero, which cannot train the prefetcher.
	r := analyze(t, impGadgetSrc, "walk_direct", DefaultIMP())
	if len(r.Findings) != 0 {
		t.Errorf("findings without a dependent load pair: %v", r.Findings)
	}
}

const ssGadgetSrc = `
uint8_t sec_ary[16];
uint8_t buf[256];
uint8_t guess;
uint32_t slot;
void ss_fixed(uint32_t idx) {
	slot = sec_ary[idx & 15];
}
void ss_addr(uint32_t idx) {
	buf[idx] = guess;
}
void ss_fenced(uint32_t idx) {
	slot = sec_ary[idx & 15];
	lfence();
}
void ss_const(uint32_t idx) {
	slot = 5;
}
`

func TestSSDetectsSilentStore(t *testing.T) {
	r := analyze(t, ssGadgetSrc, "ss_fixed", DefaultSS())
	if !hasClass(r, core.CT) {
		t.Fatalf("silent-store CT not found; findings: %v", r.Findings)
	}
	for _, f := range r.Findings {
		if f.Store < 0 || f.Store != f.Transmit {
			t.Errorf("SS finding's transmitter is not the store: %+v", f)
		}
		if f.Access < 0 {
			t.Errorf("SS finding lacks the secret source: %+v", f)
		}
	}
}

func TestSSAttackerAddressedIsUCT(t *testing.T) {
	r := analyze(t, ssGadgetSrc, "ss_addr", DefaultSS())
	if !hasClass(r, core.UCT) {
		t.Fatalf("attacker-addressed silent store not UCT; findings: %v", r.Findings)
	}
}

func TestSSFenceSuppressesDetection(t *testing.T) {
	r := analyze(t, ssGadgetSrc, "ss_fenced", DefaultSS())
	if len(r.Findings) != 0 {
		t.Errorf("findings despite the verbatim-drain fence: %v", r.Findings)
	}
}

func TestSSConstantStoreClean(t *testing.T) {
	r := analyze(t, ssGadgetSrc, "ss_const", DefaultSS())
	if len(r.Findings) != 0 {
		t.Errorf("findings for a constant store: %v", r.Findings)
	}
}

func TestParseEngine(t *testing.T) {
	for _, e := range Engines() {
		short := e.String()[len("clou-"):]
		for _, name := range []string{short, e.String()} {
			got, err := ParseEngine(name)
			if err != nil || got != e {
				t.Errorf("ParseEngine(%q) = %v, %v; want %v", name, got, err, e)
			}
		}
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Error("ParseEngine accepted an unknown engine")
	}
}
