package detect

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"time"

	"lcm/internal/acfg"
	"lcm/internal/aeg"
	"lcm/internal/alias"
	"lcm/internal/core"
	"lcm/internal/dataflow"
	"lcm/internal/faultinject"
	"lcm/internal/faults"
	"lcm/internal/ir"
	"lcm/internal/obsv"
	"lcm/internal/presolve"
	"lcm/internal/sat"
	"lcm/internal/smt"
	"lcm/internal/taint"
	"lcm/internal/workpool"
)

// Engine selects the speculation primitive searched for (§5.3).
type Engine int

// The engines, one per modeled speculation/optimization primitive
// (Table 1's taxonomy beyond branch prediction).
const (
	PHT Engine = iota // control-flow speculation (Spectre v1, v1.1)
	STL               // store-to-load bypass (Spectre v4)
	PSF               // speculative store forwarding via alias prediction
	IMP               // indirect memory prefetcher (Fig. 5b)
	SS                // silent stores (Fig. 5a)
)

func (e Engine) String() string {
	switch e {
	case STL:
		return "clou-stl"
	case PSF:
		return "clou-psf"
	case IMP:
		return "clou-imp"
	case SS:
		return "clou-ss"
	}
	return "clou-pht"
}

// ParseEngine maps a CLI engine name ("pht", "stl", "psf", "imp", "ss",
// or the full "clou-…" form) to its Engine.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "pht", "clou-pht":
		return PHT, nil
	case "stl", "clou-stl":
		return STL, nil
	case "psf", "clou-psf":
		return PSF, nil
	case "imp", "clou-imp":
		return IMP, nil
	case "ss", "clou-ss":
		return SS, nil
	}
	return PHT, fmt.Errorf("unknown engine %q (want pht, stl, psf, imp, or ss)", name)
}

// Engines lists every engine in presentation order.
func Engines() []Engine { return []Engine{PHT, STL, PSF, IMP, SS} }

// Config parameterizes an analysis run.
type Config struct {
	Engine Engine
	// Transmitters restricts the classes searched for; empty means all of
	// DT, CT, UDT, UCT.
	Transmitters []core.Class
	// ACFG and AEG bounds.
	ACFG acfg.Options
	AEG  aeg.Options
	// RequireGEP applies the addr_gep filter to universal patterns
	// (Clou-pht's default; unusable for STL, §5.3).
	RequireGEP bool
	// RequireTaint filters universal candidates whose access address is
	// not attacker-steerable (§5.3 taint tracking).
	RequireTaint bool
	// MaxQueries bounds solver calls per function (0 = unlimited).
	MaxQueries int
	// MaxConflicts bounds per-query CDCL effort (0 = unlimited). Unlike
	// Timeout it is deterministic, so budget-degraded results are
	// byte-reproducible; exhaustion is classified faults.ErrBudget, never
	// misread as UNSAT.
	MaxConflicts int64
	// Timeout bounds wall time per function (0 = unlimited); the paper
	// imposes per-function timeouts in Table 2.
	Timeout time.Duration
	// TriageOnly switches the detector to the range-prune-only triage
	// rung: structural candidate enumeration, pruning, and taint filtering
	// still run, but every solver query is answered optimistically true
	// without search. Findings are then a sound over-approximation — no
	// leak the full analysis would report is missed — at the price of
	// possible false positives; consumers see the precision loss through
	// Result.Rung.
	TriageOnly bool
	// InjectKey identifies this analysis to the fault-injection probes
	// (internal/faultinject); empty means the function name. The
	// degradation ladder appends its rung so retried attempts make fresh
	// injection decisions.
	InjectKey string
	// Pruner is the range-analysis prune hook: universal candidates it
	// discharges are skipped before taint filtering and solver queries.
	// Pruning only removes the universality claim — a discharged pattern
	// may still be reported by the DT/CT stages, which is where an
	// in-bounds table access (it leaks the table's contents, not
	// attacker-chosen memory) belongs in the taxonomy.
	// Leave nil to install the default dataflow pruner; set NoPrune to
	// disable pruning entirely (the ablation baseline).
	Pruner  Pruner
	NoPrune bool
	// NoPresolve disables the proof-carrying static pre-solver
	// (internal/presolve), the ablation baseline: every candidate query
	// goes to the solver. Presolve is also off on the triage rung, whose
	// contract is "no search at all".
	NoPresolve bool
	// AuditPresolve keeps the pre-solver's verdicts advisory: every
	// statically refuted query is still sent to the solver, the two
	// answers are compared, and any disagreement is counted on the result
	// and flagged on the certificate. Findings under audit are exactly the
	// no-presolve findings.
	AuditPresolve bool
	// ShardWorkers bounds the intra-function workers that precompute the
	// per-candidate value-flow and distance summaries (the pure, dominant
	// cost of the candidate loop) before the serial decision replay; 0 or
	// 1 keeps the whole search single-threaded. Findings, counters, and
	// certificates are byte-identical at any width: the parallel stage
	// only warms memo caches with pure results, and every decision —
	// solver queries, budgets, fault probes, certificate dedup — replays
	// in input order on one goroutine.
	ShardWorkers int
	// Cache, when non-nil, memoizes the engine-independent front end
	// (A-CFG, alias, taint, reachability, value flow) per (module,
	// function), sharing it between the PHT and STL engines and across
	// concurrent workers. The module must not be mutated while the cache
	// is live; repair therefore always runs uncached.
	Cache *Cache
	// Span, when non-nil, is the parent observability span: each analyzed
	// function records a "fn:<name>" child with frontend/encode/search
	// stage children underneath. Nil (the default) disables tracing at
	// zero cost.
	Span *obsv.Span
	// Metrics, when non-nil, receives the run's counters and per-stage
	// latency histograms (detect.* and sat.* names).
	Metrics *obsv.Registry
}

// Pruner discharges universal candidates with static value-range facts.
// Implementations must be sound under the engines' speculation models:
// InBoundsAccess may use any CFG-valid fact (PHT wrong paths are still
// CFG paths), while DisjointPair must not rely on values read from
// memory, since STL bypass makes loads return stale data.
type Pruner interface {
	// InBoundsAccess reports that the load/store provably stays inside
	// its base object, so it cannot read attacker-chosen memory and
	// cannot serve as a universal-transmitter access.
	InBoundsAccess(in *ir.Instr) bool
	// DisjointPair reports that the store and load provably touch
	// disjoint bytes of one object, so the load cannot observe the
	// store being bypassed.
	DisjointPair(store, load *ir.Instr) bool
}

// DefaultPHT returns the paper's Clou-pht configuration (ROB/LSQ 250/50).
func DefaultPHT() Config {
	return Config{Engine: PHT, RequireGEP: true, RequireTaint: true}
}

// DefaultSTL returns the paper's Clou-stl configuration; addr_gep cannot
// filter STL leaks (a stale pointer load may be attacker-controlled).
func DefaultSTL() Config {
	return Config{Engine: STL, RequireGEP: false, RequireTaint: true}
}

// DefaultPSF returns the Clou-psf configuration. Like STL, addr_gep
// cannot filter PSF leaks — the wrongly forwarded value may be any
// in-flight store's data, pointer or not.
func DefaultPSF() Config {
	return Config{Engine: PSF, RequireGEP: false, RequireTaint: true}
}

// DefaultIMP returns the Clou-imp configuration. The prefetcher trains
// only on dependent load pairs whose index feeds a GEP index, so the
// addr_gep filter is structural here, not an approximation.
func DefaultIMP() Config {
	return Config{Engine: IMP, RequireGEP: true, RequireTaint: true}
}

// DefaultSS returns the Clou-ss configuration.
func DefaultSS() Config {
	return Config{Engine: SS, RequireGEP: false, RequireTaint: true}
}

// DefaultConfig returns the engine's default configuration.
func DefaultConfig(e Engine) Config {
	switch e {
	case STL:
		return DefaultSTL()
	case PSF:
		return DefaultPSF()
	case IMP:
		return DefaultIMP()
	case SS:
		return DefaultSS()
	}
	return DefaultPHT()
}

// Finding is one detected transmitter with its witness context.
type Finding struct {
	Fn       string
	Class    core.Class
	Transmit int // A-CFG node of the transmitting access
	Access   int // access instruction (-1 for AT)
	Index    int // index instruction (-1 unless universal)
	// Branch is the mis-speculating branch (PHT); Store/Load the bypass
	// pair (STL); unused fields are -1.
	Branch int
	Store  int
	Load   int
	// TransientTransmit / TransientAccess report whether the witness
	// executes those instructions transiently.
	TransientTransmit bool
	TransientAccess   bool
	// Line is the source line of the transmitter.
	Line int
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s transmitter at node %d (line %d)", f.Fn, f.Class, f.Transmit, f.Line)
	if f.Branch >= 0 {
		s += fmt.Sprintf(", speculation primitive: branch %d", f.Branch)
	}
	switch {
	case f.Store >= 0 && f.Transmit == f.Store:
		s += fmt.Sprintf(", silent store %d, secret feeder load %d", f.Store, f.Access)
	case f.Store >= 0:
		s += fmt.Sprintf(", bypassed store %d → stale load %d", f.Store, f.Load)
	case f.Branch < 0 && f.Load >= 0 && f.Index >= 0:
		s += fmt.Sprintf(", trained load pair: index %d → data %d, prefetch past index %d", f.Load, f.Access, f.Index)
	}
	return s
}

// Result aggregates one function's analysis.
type Result struct {
	Fn        string
	Findings  []Finding
	NodeCount int // S-AEG size (Fig. 8's x-axis)
	Duration  time.Duration
	Queries   int
	TimedOut  bool
	// BudgetHit reports that a step budget (MaxQueries or MaxConflicts)
	// bound the search before it finished; the findings present are valid
	// but the absence of further findings is not proven.
	BudgetHit bool
	// Fault carries the classified fault (faults taxonomy) that aborted
	// the search mid-analysis, nil for a clean run. Injected probe faults
	// land here; the supervisor reads it to pick the next ladder rung.
	Fault error
	// Rung is the degradation-ladder rung this result was decided at
	// (RungFull for a direct AnalyzeFunc call); Failure names the fault
	// kind that forced the final downgrade ("" unless Rung is
	// RungUnknown). Both are set by AnalyzeFuncLadder.
	Rung    Rung
	Failure string
	// Attempts counts ladder attempts consumed (1 for an undegraded run).
	Attempts int
	// Candidates counts universal candidates examined (distinct access
	// loads for PHT, bypassable store/load pairs for STL); Pruned counts
	// those discharged statically by the Prune hook.
	Candidates int
	Pruned     int
	// Pre-solver accounting. Discharged counts candidates retired without
	// any solver work: range-rule discharges (one per pruned candidate when
	// the pre-solver could certify the prune) plus window-rule candidates
	// all of whose queries were statically refuted. SkippedQueries counts
	// the solver calls avoided (always 0 under audit, where refuted queries
	// still run). PresolveAudited/PresolveDisagreements count audit replays
	// and the replays that contradicted a certificate.
	Discharged            int
	SkippedQueries        int
	PresolveAudited       int
	PresolveDisagreements int
	// Certificates holds the machine-checkable refutation proofs emitted
	// by the pre-solver, in candidate-enumeration order, deduplicated by
	// certificate key.
	Certificates []*presolve.Certificate
	// Per-stage wall times: FrontendTime covers A-CFG + alias + taint +
	// reachability + value flow (near zero on a cache hit), EncodeTime
	// the S-AEG construction, SolveTime the accumulated solver queries.
	FrontendTime time.Duration
	EncodeTime   time.Duration
	SolveTime    time.Duration
	// Frontend sub-stage wall times, for attributing a frontend
	// regression without re-profiling: AliasTime and FlowTime cover the
	// points-to fixpoint and value-flow CSR construction (zero on a cache
	// hit — the builder paid them), PresolveFactsTime the pre-solver's
	// shared fact base (zero when a sibling engine already built it).
	AliasTime         time.Duration
	FlowTime          time.Duration
	PresolveFactsTime time.Duration
	// CacheHit reports whether the front end came from Config.Cache;
	// MemoHits counts queries answered by the solver's verdict memo.
	CacheHit bool
	MemoHits int
	// CDCL search-effort counters harvested from the function's solver.
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	// Incremental-solving counters: PrefixLits is the summed
	// prefix-reuse depth across the query sweep, RootUnits the facts
	// promoted to the root level, TseitinGates/TseitinShared the And/Or
	// gates requested and the ones answered from the hash-cons table
	// without fresh auxiliary variables. All are deterministic for a
	// fixed query sequence and safe to pin in normalized reports.
	PrefixLits    int64
	RootUnits     int64
	TseitinGates  int64
	TseitinShared int64
	// ModelCacheHits counts queries answered Sat by extending the last
	// model over newly encoded gates instead of searching.
	ModelCacheHits int64
	// Solver self-check accounting (Config.AEG.SolverMode == smt.ModeCheck):
	// verdicts replayed on a fresh reference solver, and disagreements
	// (any nonzero SolverMismatches is an incremental-soundness bug).
	SolverChecks     int64
	SolverMismatches int64
	// Graph and AEG are retained for witness rendering and repair.
	Graph *acfg.Graph
	AEG   *aeg.AEG
}

// Counts tallies findings by class, one count per static transmitter.
func (r *Result) Counts() map[core.Class]int {
	m := map[core.Class]int{}
	seen := map[[2]int]bool{}
	for _, f := range r.Findings {
		k := [2]int{f.Transmit, int(f.Class)}
		if seen[k] {
			continue
		}
		seen[k] = true
		m[f.Class]++
	}
	return m
}

// AnalyzeFunc runs one engine over one function.
func AnalyzeFunc(m *ir.Module, fn string, cfg Config) (*Result, error) {
	return AnalyzeFuncCtx(context.Background(), m, fn, cfg)
}

// AnalyzeFuncCtx is AnalyzeFunc under a context: cancellation (or the
// cfg.Timeout deadline layered on top of ctx) aborts promptly, even in
// the middle of a long solver query, and marks the result TimedOut.
func AnalyzeFuncCtx(ctx context.Context, m *ir.Module, fn string, cfg Config) (*Result, error) {
	start := time.Now()
	fnSpan := cfg.Span.Start("fn:" + fn)
	defer fnSpan.End()
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	key := cfg.InjectKey
	if key == "" {
		key = fn
	}

	var (
		fe  *frontend
		hit bool
		err error
	)
	feSpan := fnSpan.Start("frontend")
	if err = faultinject.Error(faultinject.ProbeCacheLookup, key); err == nil {
		if cfg.Cache != nil {
			fe, hit, err = cfg.Cache.frontend(m, fn, cfg.ACFG)
		} else {
			fe, err = buildFrontend(m, fn, cfg.ACFG)
		}
	}
	feSpan.End()
	if err != nil {
		return nil, err
	}
	frontendTime := time.Since(start)

	// Frontend construction is not interruptible; if it alone consumed the
	// budget, report the timeout without encoding or searching.
	if ctx.Err() != nil {
		res := &Result{
			Fn: fn, NodeCount: fe.g.Len(), Graph: fe.g,
			FrontendTime: frontendTime, CacheHit: hit,
			TimedOut: true, Duration: time.Since(start),
		}
		res.record(cfg.Metrics)
		return res, nil
	}

	encSpan := fnSpan.Start("encode")
	encodeStart := time.Now()
	if err := faultinject.Error(faultinject.ProbeAEGBuild, key); err != nil {
		encSpan.End()
		return nil, err
	}
	a := aeg.Build(fe.g, fe.al, cfg.AEG)
	if cfg.MaxConflicts > 0 {
		a.S.SetBudget(sat.Budget{Conflicts: cfg.MaxConflicts})
	}
	encodeTime := time.Since(encodeStart)
	encSpan.End()
	if ctx.Err() != nil {
		res := &Result{
			Fn: fn, NodeCount: fe.g.Len(), Graph: fe.g, AEG: a,
			FrontendTime: frontendTime, EncodeTime: encodeTime, CacheHit: hit,
			TimedOut: true, Duration: time.Since(start),
		}
		res.record(cfg.Metrics)
		return res, nil
	}

	pruner := cfg.Pruner
	if pruner == nil && !cfg.NoPrune {
		if cfg.Cache != nil {
			pruner = cfg.Cache.pruner(m)
		} else {
			pruner = dataflow.NewPruner(m)
		}
	}
	var ps *presolve.Analysis
	var psFactsTime time.Duration
	if !cfg.NoPresolve && !cfg.TriageOnly {
		var mr *dataflow.ModuleRanges
		if dp, ok := pruner.(*dataflow.Pruner); ok {
			mr = dp.Ranges()
		}
		psStart := time.Now()
		facts := fe.presolveFacts(mr)
		psFactsTime = time.Since(psStart)
		ps = presolve.NewAnalysis(facts, a)
	}
	var aliasTime, flowTime time.Duration
	if !hit {
		aliasTime, flowTime = fe.aliasTime, fe.flowTime
	}
	d := &detector{
		ctx: ctx, cfg: cfg, key: key, g: fe.g, al: fe.al, ta: fe.ta, a: a,
		res: &Result{
			Fn: fn, NodeCount: fe.g.Len(), Graph: fe.g, AEG: a,
			FrontendTime: frontendTime, EncodeTime: encodeTime, CacheHit: hit,
			AliasTime: aliasTime, FlowTime: flowTime, PresolveFactsTime: psFactsTime,
		},
		cfgReach: fe.cfgReach,
		flow:     fe.flow,
		pruner:   pruner,
		ps:       ps,
	}
	searchSpan := fnSpan.Start("search")
	d.run()
	searchSpan.End()
	d.res.Decisions, d.res.Propagations, d.res.Conflicts, d.res.Restarts = a.SolverStats()
	inc := a.IncrementalStats()
	d.res.PrefixLits, d.res.RootUnits = inc.PrefixLits, inc.RootUnits
	d.res.TseitinGates, d.res.TseitinShared = a.EncodeStats()
	d.res.SolverChecks, d.res.SolverMismatches = a.SelfCheckStats()
	d.res.ModelCacheHits = a.ModelCacheHits()
	d.res.Duration = time.Since(start)
	d.res.record(cfg.Metrics)
	return d.res, nil
}

type detector struct {
	ctx        context.Context
	cfg        Config
	key        string // fault-injection identity
	g          *acfg.Graph
	al         *alias.Analysis
	ta         *taint.Analysis
	a          *aeg.AEG
	flow       *flowGraph
	res        *Result
	cfgReach   func(from, to int) bool
	flows      map[int]reachInfo // detector-local view of flow.memo (no mutex)
	condCache  map[int][]int     // condFeeders memo, per branch
	dists      map[int]*nearSets // bounded-distance bitsets, per source
	fenceOK    map[int][]bool    // dense fence-free reachability, per source
	feedsCache map[int][]indexEdge
	allLoads   []*acfg.Node
	pruner     Pruner
	prunedAcc  map[int]bool                   // pruneAccess memo, also dedups the counters
	ps         *presolve.Analysis             // nil when the pre-solver is disabled
	certSeen   map[*presolve.Certificate]bool // certificates already emitted
	cands      map[candKey]*candStat
	candArena  []candStat // chunked backing store for cands values
}

// candKey identifies one window/arch-rule candidate without string
// formatting (the Sprintf keys dominated the candidate loops' allocation
// profile): the pattern kind plus up to three node IDs, unused slots zero.
type candKey struct {
	kind    uint8
	a, b, c int
}

// Candidate-pattern kinds for candKey.
const (
	candUDT = uint8(iota)
	candDT
	candUCT
	candCT
	candSTL
	candPSF
	candIMP
	candSS
)

// candStat tracks one window-rule candidate's query outcomes so fully
// refuted candidates can be counted as discharged at the end of the run.
type candStat struct {
	queries int
	refuted int
}

// pruneAccess counts a universal access candidate once and asks the Prune
// hook whether its address is provably confined to its base object — in
// which case it cannot leak attacker-chosen memory and every universal
// pattern built on it is skipped before taint filtering or solver work.
func (d *detector) pruneAccess(accID int) bool {
	if d.prunedAcc == nil {
		d.prunedAcc = map[int]bool{}
	}
	if v, ok := d.prunedAcc[accID]; ok {
		return v
	}
	d.res.Candidates++
	n := d.g.Nodes[accID]
	v := d.pruner != nil && n.Instr != nil && d.pruner.InBoundsAccess(n.Instr)
	if v {
		d.res.Pruned++
		d.dischargeCert(func() (*presolve.Certificate, bool) { return d.ps.CertInBounds(n) })
	}
	d.prunedAcc[accID] = v
	return v
}

// dischargeCert records a range-rule discharge: the trusted pruner already
// retired the candidate; the pre-solver re-derives the interval facts into
// a certificate. Under audit, a certificate that cannot be reconstructed
// or whose arithmetic fails Check is a disagreement.
func (d *detector) dischargeCert(derive func() (*presolve.Certificate, bool)) {
	if d.ps == nil {
		return
	}
	d.res.Discharged++
	cert, ok := derive()
	if !ok {
		if d.cfg.AuditPresolve {
			d.res.PresolveAudited++
			d.res.PresolveDisagreements++
		}
		return
	}
	d.addCert(cert)
	if d.cfg.AuditPresolve {
		d.res.PresolveAudited++
		if err := cert.Check(); err != nil {
			d.res.PresolveDisagreements++
			cert.Disagreement = true
		}
	}
}

// addCert retains a certificate on the result, deduplicated by key, in
// candidate-enumeration order.
// addCert appends c unless already emitted. Dedup is by pointer: the
// pre-solver memoizes certificates per key, so two candidates reaching
// the same query share one *Certificate — hashing the pointer avoids
// re-hashing the key string per probe.
func (d *detector) addCert(c *presolve.Certificate) {
	if d.certSeen == nil {
		d.certSeen = map[*presolve.Certificate]bool{}
	}
	if d.certSeen[c] {
		return
	}
	d.certSeen[c] = true
	d.res.Certificates = append(d.res.Certificates, c)
}

// candStatFor returns (allocating on first use) a window candidate's
// stat. Stats come out of a chunked arena: one tiny heap object per
// candidate is visible in the allocation profile at donna's scale.
func (d *detector) candStatFor(key candKey) *candStat {
	if d.cands == nil {
		d.cands = map[candKey]*candStat{}
	}
	cs, ok := d.cands[key]
	if !ok {
		if len(d.candArena) == cap(d.candArena) {
			d.candArena = make([]candStat, 0, 1024)
		}
		d.candArena = d.candArena[:len(d.candArena)+1]
		cs = &d.candArena[len(d.candArena)-1]
		d.cands[key] = cs
	}
	return cs
}

// cfgReachability precomputes DAG reachability as bitsets.
func cfgReachability(g *acfg.Graph) func(from, to int) bool {
	n := g.Len()
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	topo := g.Topo()
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		row := make([]uint64, words)
		row[id/64] |= 1 << (uint(id) % 64)
		for _, s := range g.Succs(id) {
			for w, bits := range reach[s] {
				row[w] |= bits
			}
		}
		reach[id] = row
	}
	return func(from, to int) bool {
		if from == to {
			return false
		}
		return reach[from][to/64]&(1<<(uint(to)%64)) != 0
	}
}

// flowFrom returns the value-flow reach info of one source node. The
// authoritative memo lives on the shared flowGraph — warm across both
// engines of a cached frontend and across the prewarm shards — and the
// detector keeps a mutex-free local view for the hot serial loops.
func (d *detector) flowFrom(n int) reachInfo {
	if r, ok := d.flows[n]; ok {
		return r
	}
	if d.flows == nil {
		d.flows = map[int]reachInfo{}
	}
	r := d.flow.from(n)
	d.flows[n] = r
	return r
}

func (d *detector) wantClass(c core.Class) bool {
	if len(d.cfg.Transmitters) == 0 {
		return c == core.DT || c == core.CT || c == core.UDT || c == core.UCT
	}
	for _, w := range d.cfg.Transmitters {
		if w == c {
			return true
		}
	}
	return false
}

func (d *detector) outOfBudget() bool {
	if d.res.Fault != nil {
		return true
	}
	select {
	case <-d.ctx.Done():
		d.res.TimedOut = true
		d.res.Fault = faults.FromContext(d.ctx.Err())
		return true
	default:
	}
	if d.cfg.MaxQueries > 0 && d.res.Queries >= d.cfg.MaxQueries {
		d.res.BudgetHit = true
		d.res.Fault = faults.Budgetf("%s: %d queries", d.res.Fn, d.res.Queries)
		return true
	}
	return false
}

func (d *detector) memoryNodes() []*acfg.Node {
	var out []*acfg.Node
	for _, n := range d.g.Nodes {
		if n.IsLoad() || n.IsStore() || n.Kind == acfg.NHavoc {
			out = append(out, n)
		}
	}
	return out
}

func (d *detector) loads() []*acfg.Node {
	var out []*acfg.Node
	for _, n := range d.g.Nodes {
		if n.IsLoad() {
			out = append(out, n)
		}
	}
	return out
}

// query runs one solver call. In triage mode (TriageOnly) it answers
// true without search: the candidate already passed every structural,
// range, and taint filter, so admitting it is the sound over-approximate
// answer of the weakest ladder rung.
func (d *detector) query(assumptions ...*smt.Expr) bool {
	if d.outOfBudget() {
		return false
	}
	if err := d.fireProbe(faultinject.ProbeSolverStep); err != nil {
		d.res.Fault = err
		if errors.Is(err, faults.ErrDeadline) {
			d.res.TimedOut = true
		}
		return false
	}
	d.res.Queries++
	if d.cfg.TriageOnly {
		return true
	}
	t0 := time.Now()
	st, hit := d.a.CheckMemo(d.ctx, assumptions...)
	d.res.SolveTime += time.Since(t0)
	if hit {
		d.res.MemoHits++
	}
	if st == sat.Unknown {
		// The query aborted mid-search: classify why before giving up.
		// An Unknown is never a verdict — in particular not UNSAT.
		cause := d.a.S.AbortCause()
		switch {
		case cause != nil && errors.Is(cause, faults.ErrBudget):
			d.res.BudgetHit = true
			d.res.Fault = cause
		case cause != nil:
			d.res.TimedOut = true
			d.res.Fault = cause
		default:
			d.res.TimedOut = true
			d.res.Fault = faults.Deadlinef("%s: query aborted", d.res.Fn)
		}
		return false
	}
	return st == sat.Sat
}

// winExprs builds the solver assumptions a window query's static shadow
// describes: Misspec plus TransUnder/ExecUnder in query order. Built
// lazily — Misspec/TransUnder/ExecUnder encode branch windows into the
// solver on first use, and a refuted query must not pay (or perturb) that
// encoding. Deriving the assumptions from q instead of taking a closure
// keeps the candidate loops from allocating a capture per probe.
func (d *detector) winExprs(q presolve.Query) []*smt.Expr {
	out := make([]*smt.Expr, 0, 1+len(q.Trans)+len(q.Exec))
	out = append(out, d.a.Misspec(q.Branch))
	for _, t := range q.Trans {
		out = append(out, d.a.TransUnder(q.Branch, t))
	}
	for _, e := range q.Exec {
		out = append(out, d.a.ExecUnder(q.Branch, e))
	}
	return out
}

// queryWin is query for the window engines: the static pre-solver gets a
// shot at refuting the query before any solver work. candKey identifies
// the candidate for discharge accounting; q is the query's static shadow
// and, via winExprs, the recipe for the solver assumptions.
func (d *detector) queryWin(key candKey, q presolve.Query) bool {
	if d.ps == nil {
		return d.query(d.winExprs(q)...)
	}
	cs := d.candStatFor(key)
	cs.queries++
	cert, refuted, witnessed := d.ps.Decide(q)
	if refuted {
		cs.refuted++
		d.addCert(cert)
		if !d.cfg.AuditPresolve {
			// Skipped queries consume no solver budget: the refutation is
			// a proof, not a search.
			d.res.SkippedQueries++
			return false
		}
		// Audit replay: run the solver anyway and return its verdict, so
		// the audited run's findings match the no-presolve run exactly. A
		// Sat verdict contradicts the refutation. Aborted queries (budget,
		// fault, timeout) are not evidence either way and not counted.
		got := d.query(d.winExprs(q)...)
		if d.res.Fault == nil {
			d.res.PresolveAudited++
			if got {
				d.res.PresolveDisagreements++
				cert.Disagreement = true
			}
		}
		return got
	}
	// The dual rule: an explicit model makes the query SAT without search.
	if wcert := cert; witnessed {
		cs.refuted++
		d.addCert(wcert)
		if !d.cfg.AuditPresolve {
			d.res.SkippedQueries++
			return true
		}
		got := d.query(d.winExprs(q)...)
		if d.res.Fault == nil {
			d.res.PresolveAudited++
			if !got {
				d.res.PresolveDisagreements++
				wcert.Disagreement = true
			}
		}
		return got
	}
	return d.query(d.winExprs(q)...)
}

// queryArch is query for branch-free architectural queries (the STL
// engine's shape): the pre-solver tries to witness the whole query SAT by
// explicit path construction before the solver is consulted.
func (d *detector) queryArch(key candKey, nodes []int, mk func() []*smt.Expr) bool {
	if d.ps == nil {
		return d.query(mk()...)
	}
	cs := d.candStatFor(key)
	cs.queries++
	cert, ok := d.ps.WitnessArch(nodes)
	if !ok {
		return d.query(mk()...)
	}
	cs.refuted++
	d.addCert(cert)
	if !d.cfg.AuditPresolve {
		d.res.SkippedQueries++
		return true
	}
	got := d.query(mk()...)
	if d.res.Fault == nil {
		d.res.PresolveAudited++
		if !got {
			d.res.PresolveDisagreements++
			cert.Disagreement = true
		}
	}
	return got
}

// fireProbe consults the solver-step injection probe (panics from it are
// the supervisor's responsibility to recover).
func (d *detector) fireProbe(probe string) error {
	return faultinject.Error(probe, d.key)
}

func (d *detector) run() {
	d.prewarm()
	switch d.cfg.Engine {
	case PHT:
		d.runPHT()
	case STL:
		d.runSTL()
	case PSF:
		d.runPSF()
	case IMP:
		d.runIMP()
	case SS:
		d.runSS()
	}
	// A window candidate whose every issued query was statically refuted
	// needed no solver work at all: count it discharged. (Map iteration
	// order is irrelevant to a sum.)
	for _, cs := range d.cands {
		if cs.queries > 0 && cs.queries == cs.refuted {
			d.res.Discharged++
		}
	}
	sort.Slice(d.res.Findings, func(i, j int) bool {
		a, b := d.res.Findings[i], d.res.Findings[j]
		if a.Class.Rank() != b.Class.Rank() {
			return a.Class.Rank() > b.Class.Rank()
		}
		return a.Transmit < b.Transmit
	})
}

// prewarm is the intra-function sharding stage: with ShardWorkers > 1 it
// computes, in parallel, exactly the pure per-candidate summaries the
// serial candidate loops would compute lazily — value-flow reach per load,
// and for STL the per-source BFS distance and fence-free-reach maps — and
// installs them in the detector's memo caches. The loops then replay
// serially and find every cache warm, so findings, counters, budget cuts,
// and certificates are identical to the single-threaded run byte for byte:
// no solver query, probe, or decision happens off the replay goroutine.
// Prewarm fires no fault-injection probes (workpool.Prewarm's contract) —
// an injected fault must hit the replay's deterministic probe sequence,
// not a racy warm-up.
func (d *detector) prewarm() {
	w := d.cfg.ShardWorkers
	if w <= 1 || d.ctx.Err() != nil {
		return
	}
	loads := d.loads()
	workpool.Prewarm(w, len(loads), func(i int) {
		if d.ctx.Err() != nil {
			return
		}
		d.flow.from(loads[i].ID)
	})
	// Per-engine distance/fence summaries. STL and PSF pair enumeration
	// asks withinLSQ/withinWsize from every store and load and
	// fenceBetween from every store; IMP asks fenceBetween from every
	// index load; SS asks fenceBetween from every store. Warm those into
	// index-addressed slots and merge serially (the memo maps themselves
	// are not concurrency-safe).
	var distSrcs, fenceSrcs []int
	switch d.cfg.Engine {
	case STL, PSF:
		for _, n := range d.g.Nodes {
			if n.IsStore() || n.IsLoad() {
				distSrcs = append(distSrcs, n.ID)
			}
			if n.IsStore() {
				fenceSrcs = append(fenceSrcs, n.ID)
			}
		}
	case IMP:
		for _, n := range d.g.Nodes {
			if n.IsLoad() {
				fenceSrcs = append(fenceSrcs, n.ID)
			}
		}
	case SS:
		for _, n := range d.g.Nodes {
			if n.IsStore() {
				fenceSrcs = append(fenceSrcs, n.ID)
			}
		}
	default:
		return
	}
	dists := make([]*nearSets, len(distSrcs))
	workpool.Prewarm(w, len(distSrcs), func(i int) {
		if d.ctx.Err() != nil {
			return
		}
		dists[i] = d.bfsDist(distSrcs[i])
	})
	if d.dists == nil {
		d.dists = map[int]*nearSets{}
	}
	for i, src := range distSrcs {
		if dists[i] != nil {
			d.dists[src] = dists[i]
		}
	}
	fences := make([][]bool, len(fenceSrcs))
	workpool.Prewarm(w, len(fenceSrcs), func(i int) {
		if d.ctx.Err() != nil {
			return
		}
		fences[i] = d.fenceReach(fenceSrcs[i])
	})
	if d.fenceOK == nil {
		d.fenceOK = map[int][]bool{}
	}
	for i, s := range fenceSrcs {
		if fences[i] != nil {
			d.fenceOK[s] = fences[i]
		}
	}
}

// steering precomputes, per access load, the memory nodes whose address it
// steers (the addr edges of Table 1). The reverse direction — the index
// loads steering an access's address — is computed lazily by feedsOf.
type steering struct {
	// steers[acc] = transmitters whose address acc's value reaches
	steers map[int][]int
}

// accs returns the steered access IDs in ascending order: candidate
// enumeration (and therefore finding order, and which candidate a budget
// cut lands on) must not depend on map iteration order.
func (s steering) accs() []int {
	out := make([]int, 0, len(s.steers))
	for a := range s.steers {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

type indexEdge struct {
	idx int
	gep bool
}

// feedsOf returns the index loads steering node acc's address (with the
// addr_gep flag), cached per access.
func (d *detector) feedsOf(accID int) []indexEdge {
	if d.feedsCache == nil {
		d.feedsCache = map[int][]indexEdge{}
	}
	if es, ok := d.feedsCache[accID]; ok {
		return es
	}
	acc := d.g.Nodes[accID]
	var out []indexEdge
	for _, idx := range d.allLoads {
		if idx.ID == accID {
			continue
		}
		r := d.flowFrom(idx.ID)
		if ok, gep := flowsToAddr(r, acc); ok {
			out = append(out, indexEdge{idx: idx.ID, gep: gep})
		}
	}
	d.feedsCache[accID] = out
	return out
}

func (d *detector) computeSteering(loads []*acfg.Node, mems []*acfg.Node) steering {
	s := steering{steers: map[int][]int{}}
	// Inverted sweep: instead of probing every memory node's address defs
	// against each source's reach set (|loads| × |mems| probes), index
	// defs → mems once and walk each source's reached ∩ defs words. The
	// per-source hit list is re-sorted into mems order so downstream
	// iteration (and therefore findings and budget boundaries) is
	// unchanged.
	mask := dataflow.NewBitSet(d.g.Len())
	byDef := make([][]int32, d.g.Len())
	for pos, t := range mems {
		for _, def := range addrDefs(t) {
			mask.Set(def)
			byDef[def] = append(byDef[def], int32(pos))
		}
	}
	hit := make([]bool, len(mems))
	var hits []int32
	for _, acc := range loads {
		// flowFrom is the expensive step of this precomputation; honor the
		// budget between accesses so a timeout binds before the first query.
		if d.outOfBudget() {
			return s
		}
		r := d.flowFrom(acc.ID)
		hits = hits[:0]
		for w, word := range r.reached {
			word &= mask[w]
			for word != 0 {
				def := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				for _, pos := range byDef[def] {
					if !hit[pos] {
						hit[pos] = true
						hits = append(hits, pos)
					}
				}
			}
		}
		slices.Sort(hits)
		for _, pos := range hits {
			hit[pos] = false
			if t := mems[pos]; t.ID != acc.ID {
				s.steers[acc.ID] = append(s.steers[acc.ID], t.ID)
			}
		}
	}
	return s
}

// runPHT searches for transmitters steered through control-flow
// mis-speculation: the rf-NI violation shape where a branch window makes
// the transmitter execute transiently, leaking its data-dependent address
// into xstate an observer probes.
func (d *detector) runPHT() {
	mems := d.memoryNodes()
	loads := d.loads()
	d.allLoads = loads
	st := d.computeSteering(loads, mems)
	seen := map[candKey]bool{}
	branches := d.a.Branches()
	sort.Ints(branches)
	// Query slices share these scratch arrays across the candidate loops:
	// the pre-solver copies anything it retains, so a fresh slice literal
	// per probe is pure allocation churn.
	var qt, qe [2]int

	// Universal data transmitters.
	if d.wantClass(core.UDT) {
		for _, accID := range st.accs() {
			ts := st.steers[accID]
			if d.outOfBudget() {
				return
			}
			if d.pruneAccess(accID) {
				continue
			}
			if d.cfg.RequireTaint && !d.ta.AddressControlled(d.g.Nodes[accID]) {
				continue
			}
			for _, e := range d.feedsOf(accID) {
				if d.cfg.RequireGEP && !e.gep {
					continue
				}
				for _, tID := range ts {
					key := candKey{kind: candUDT, a: tID, b: accID}
					if seen[key] {
						continue
					}
					for _, b := range branches {
						if !d.a.InWindow(b, tID) || !d.a.InWindow(b, accID) {
							continue
						}
						qt[0], qt[1], qe[0] = tID, accID, e.idx
						q := presolve.Query{Branch: b, Trans: qt[:2], Exec: qe[:1]}
						if d.queryWin(key, q) {
							seen[key] = true
							d.res.Findings = append(d.res.Findings, Finding{
								Fn: d.res.Fn, Class: core.UDT,
								Transmit: tID, Access: accID, Index: e.idx,
								Branch: b, Store: -1, Load: -1,
								TransientTransmit: true, TransientAccess: true,
								Line: line(d.g.Nodes[tID]),
							})
							break
						}
					}
				}
			}
		}
	}

	// Data transmitters (non-universal or committed-access patterns).
	if d.wantClass(core.DT) {
		for _, accID := range st.accs() {
			ts := st.steers[accID]
			if d.outOfBudget() {
				return
			}
			for _, tID := range ts {
				if seen[candKey{kind: candUDT, a: tID, b: accID}] {
					continue // already reported at higher severity
				}
				key := candKey{kind: candDT, a: tID, b: accID}
				if seen[key] {
					continue
				}
				for _, b := range branches {
					if !d.a.InWindow(b, tID) {
						continue
					}
					qt[0], qe[0] = tID, accID
					q := presolve.Query{Branch: b, Trans: qt[:1], Exec: qe[:1]}
					if d.queryWin(key, q) {
						seen[key] = true
						d.res.Findings = append(d.res.Findings, Finding{
							Fn: d.res.Fn, Class: core.DT,
							Transmit: tID, Access: accID, Index: -1,
							Branch: b, Store: -1, Load: -1,
							TransientTransmit: true,
							TransientAccess:   d.a.InWindow(b, accID),
							Line:              line(d.g.Nodes[tID]),
						})
						break
					}
				}
			}
		}
	}

	// Control patterns: the branch condition reads an access load; any
	// memory node transient under the branch transmits its outcome.
	if d.wantClass(core.CT) || d.wantClass(core.UCT) {
		d.controlPatterns(st, mems, loads, branches, seen)
	}
}

// condFeeders returns the loads whose values feed branch c's condition,
// memoized per branch: the UCT pattern asks for the same inner branch
// under every outer branch, and the scan is O(loads) each time.
func (d *detector) condFeeders(c int, loads []*acfg.Node) []int {
	if accs, ok := d.condCache[c]; ok {
		return accs
	}
	if d.condCache == nil {
		d.condCache = map[int][]int{}
	}
	cn := d.g.Nodes[c]
	var accs []int
	if len(cn.ArgDefs) > 0 {
		for _, acc := range loads {
			r := d.flowFrom(acc.ID)
			for _, condDef := range cn.ArgDefs[0] {
				if ok, _ := r.reaches(condDef); ok {
					accs = append(accs, acc.ID)
					break
				}
			}
		}
	}
	d.condCache[c] = accs
	return accs
}

func (d *detector) controlPatterns(st steering, mems, loads []*acfg.Node, branches []int, seen map[candKey]bool) {
	// Query slices share these scratch arrays (see runPHT): the
	// pre-solver copies anything it retains.
	var qt [3]int
	var qe [1]int
	// Universal control transmitters require the nested shape: an outer
	// branch b opens the window; inside it, a transient access (whose
	// address the index steers via addr_gep) feeds an inner branch c; any
	// memory node transient under b whose execution c controls transmits
	// the secret-dependent outcome (Table 1, §6.2.1).
	if d.wantClass(core.UCT) {
		for _, b := range branches {
			if d.outOfBudget() {
				return
			}
			for _, c := range branches {
				if c == b || !d.a.InWindow(b, c) {
					continue
				}
				for _, accID := range d.condFeeders(c, loads) {
					if !d.a.InWindow(b, accID) {
						continue
					}
					if d.pruneAccess(accID) {
						continue
					}
					if d.cfg.RequireTaint && !d.ta.AddressControlled(d.g.Nodes[accID]) {
						continue
					}
					for _, e := range d.feedsOf(accID) {
						if d.cfg.RequireGEP && !e.gep {
							continue
						}
						for _, t := range mems {
							if !d.a.InWindow(b, t.ID) || !d.cfgReach(c, t.ID) {
								continue
							}
							key := candKey{kind: candUCT, a: t.ID, b: accID}
							if seen[key] {
								continue
							}
							qt[0], qt[1], qt[2], qe[0] = t.ID, accID, c, e.idx
							q := presolve.Query{Branch: b, Trans: qt[:3], Exec: qe[:1]}
							if d.queryWin(key, q) {
								seen[key] = true
								d.res.Findings = append(d.res.Findings, Finding{
									Fn: d.res.Fn, Class: core.UCT,
									Transmit: t.ID, Access: accID, Index: e.idx,
									Branch: b, Store: -1, Load: -1,
									TransientTransmit: true, TransientAccess: true,
									Line: line(t),
								})
							}
						}
					}
				}
			}
		}
	}
	if !d.wantClass(core.CT) {
		return
	}
	for _, b := range branches {
		if d.outOfBudget() {
			return
		}
		accs := d.condFeeders(b, loads)
		if len(accs) == 0 {
			continue
		}
		for _, t := range mems {
			if !d.a.InWindow(b, t.ID) {
				continue
			}
			for _, accID := range accs {
				if seen[candKey{kind: candUCT, a: t.ID, b: accID}] {
					continue
				}
				key := candKey{kind: candCT, a: t.ID, b: accID}
				if seen[key] {
					continue
				}
				qt[0], qe[0] = t.ID, accID
				q := presolve.Query{Branch: b, Trans: qt[:1], Exec: qe[:1]}
				if d.queryWin(key, q) {
					seen[key] = true
					d.res.Findings = append(d.res.Findings, Finding{
						Fn: d.res.Fn, Class: core.CT,
						Transmit: t.ID, Access: accID, Index: -1,
						Branch: b, Store: -1, Load: -1,
						TransientTransmit: true,
						Line:              line(t),
					})
				}
			}
		}
	}
}

// runSTL searches for transmitters steered by store-to-load forwarding
// past an unresolved store (§5.3): a load l bypasses a may-aliasing
// po-earlier store s within the LSQ bound, returning stale
// attacker-controlled data that steers a later transmitter.
func (d *detector) runSTL() {
	mems := d.memoryNodes()
	loads := d.loads()
	seen := map[candKey]bool{}

	var stores []*acfg.Node
	for _, n := range d.g.Nodes {
		if n.IsStore() {
			stores = append(stores, n)
		}
	}

	// Bypassable (store, load) pairs.
	type pair struct{ s, l int }
	var pairs []pair
	for _, s := range stores {
		if d.outOfBudget() {
			return
		}
		for _, l := range loads {
			if !d.cfgReach(s.ID, l.ID) {
				continue
			}
			if !d.al.MayAliasTransient(s, l) {
				continue
			}
			if !d.withinLSQ(s.ID, l.ID) {
				continue
			}
			d.res.Candidates++
			if d.pruner != nil && s.Instr != nil && l.Instr != nil &&
				d.pruner.DisjointPair(s.Instr, l.Instr) {
				d.res.Pruned++
				d.dischargeCert(func() (*presolve.Certificate, bool) { return d.ps.CertDisjoint(s, l) })
				continue
			}
			pairs = append(pairs, pair{s.ID, l.ID})
		}
	}

	// One inverted value-flow sweep per distinct stale load replaces the
	// per-pair probe over every memory node: the steered lists come back
	// in mems order, so per-pair iteration (and every downstream decision)
	// is unchanged. flowsToAddr was the most selective filter in this
	// loop; the surviving checks run only on its few hits.
	var stale []*acfg.Node
	staleSeen := map[int]bool{}
	for _, p := range pairs {
		if !staleSeen[p.l] {
			staleSeen[p.l] = true
			stale = append(stale, d.g.Nodes[p.l])
		}
	}
	st := d.computeSteering(stale, mems)

	// Scratch for queryArch's node sets: the pre-solver copies anything it
	// retains, so a fresh slice literal per probe is pure churn.
	var qn [3]int
	for _, p := range pairs {
		if d.outOfBudget() {
			return
		}
		l := d.g.Nodes[p.l]
		near := d.nearFrom(p.l)
		for _, tID := range st.steers[p.l] {
			if !d.cfgReach(p.l, tID) {
				continue
			}
			if !near.win.Has(tID) {
				continue
			}
			t := d.g.Nodes[tID]
			if d.fenceBetween(p.s, tID) {
				continue
			}
			class := core.UDT
			if d.cfg.RequireTaint && !staleControlled(l) {
				class = core.DT
			}
			if !d.wantClass(class) {
				continue
			}
			key := candKey{kind: candSTL, a: p.s, b: p.l, c: t.ID}
			if seen[key] {
				continue
			}
			qn[0], qn[1], qn[2] = p.s, p.l, t.ID
			if d.queryArch(key, qn[:3], func() []*smt.Expr {
				return []*smt.Expr{d.a.Arch(p.s), d.a.Arch(p.l), d.a.Exec(t.ID)}
			}) {
				seen[key] = true
				d.res.Findings = append(d.res.Findings, Finding{
					Fn: d.res.Fn, Class: class,
					Transmit: t.ID, Access: p.l, Index: -1,
					Branch: -1, Store: p.s, Load: p.l,
					TransientTransmit: true, TransientAccess: true,
					Line: line(t),
				})
			}
		}
	}
}

// staleControlled reports whether the stale value a bypassing load returns
// may be attacker-controlled: non-pointer memory is attacker-controlled
// initially, and stale pointers may also carry attacker values (§5.3).
func staleControlled(l *acfg.Node) bool {
	return ir.IsInt(l.Instr.Ty) || ir.IsPtr(l.Instr.Ty)
}

// nearSets are one source's bounded-distance verdicts: the engines never
// ask for an exact BFS distance, only whether a node lies within the LSQ
// bound (store→load bypass range) or the Wsize bound (load→transmitter
// window), so two bitsets replace the full distance map — slice-speed
// lookups in the pair loops at a fraction of the memory.
type nearSets struct {
	lsq dataflow.BitSet // nodes within Opts.LSQ hops of the source
	win dataflow.BitSet // nodes within Opts.Wsize hops of the source
}

// bfsDist computes one source's nearSets by BFS out to the larger bound;
// farther nodes stay unset, which callers treat like unreachable ones.
// Pure: reads only the immutable graph and options, so prewarm shards may
// run it concurrently.
func (d *detector) bfsDist(from int) *nearSets {
	lsqB, winB := int32(d.a.Opts.LSQ), int32(d.a.Opts.Wsize)
	bound := lsqB
	if winB > bound {
		bound = winB
	}
	ns := &nearSets{lsq: dataflow.NewBitSet(d.g.Len()), win: dataflow.NewBitSet(d.g.Len())}
	mark := func(n int, dn int32) {
		if dn <= lsqB {
			ns.lsq.Set(n)
		}
		if dn <= winB {
			ns.win.Set(n)
		}
	}
	mark(from, 0)
	dist := map[int]int32{from: 0}
	queue := []int{from}
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		dn := dist[n]
		if dn == bound {
			continue
		}
		for _, s := range d.g.Succs(n) {
			if _, seen := dist[s]; !seen {
				dist[s] = dn + 1
				mark(s, dn+1)
				queue = append(queue, s)
			}
		}
	}
	return ns
}

// nearFrom returns (building on first use) the source's bounded-distance
// sets.
func (d *detector) nearFrom(from int) *nearSets {
	if d.dists == nil {
		d.dists = map[int]*nearSets{}
	}
	ns, ok := d.dists[from]
	if !ok {
		ns = d.bfsDist(from)
		d.dists[from] = ns
	}
	return ns
}

// withinLSQ reports a path from→to of length ≤ Opts.LSQ.
func (d *detector) withinLSQ(from, to int) bool {
	return from == to || d.nearFrom(from).lsq.Has(to)
}

// withinWsize reports a path from→to of length ≤ Opts.Wsize.
func (d *detector) withinWsize(from, to int) bool {
	return from == to || d.nearFrom(from).win.Has(to)
}

// fenceReach computes the dense fence-free reachability vector from one
// source. Pure: reads only the immutable graph.
func (d *detector) fenceReach(a int) []bool {
	reach := make([]bool, d.g.Len())
	reach[a] = true
	queue := []int{a}
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		for _, s := range d.g.Succs(n) {
			if reach[s] {
				continue
			}
			sn := d.g.Nodes[s]
			if sn.IsFence() && sn.Instr.Sub == "lfence" {
				continue
			}
			reach[s] = true
			queue = append(queue, s)
		}
	}
	return reach
}

// fenceBetween reports whether every path from a to b crosses an lfence.
// Fence-free reachability vectors are cached per source.
func (d *detector) fenceBetween(a, b int) bool {
	if d.fenceOK == nil {
		d.fenceOK = map[int][]bool{}
	}
	reach, ok := d.fenceOK[a]
	if !ok {
		reach = d.fenceReach(a)
		d.fenceOK[a] = reach
	}
	return !reach[b]
}

func line(n *acfg.Node) int {
	if n.Instr != nil {
		return n.Instr.Line
	}
	return 0
}
