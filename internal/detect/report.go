package detect

import (
	"lcm/internal/obsv"
)

// record folds one function's result into the metrics registry. All
// handles are nil-safe, so a nil registry costs only the guard below.
func (r *Result) record(reg *obsv.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("detect.functions").Add(1)
	reg.Counter("detect.queries").Add(int64(r.Queries))
	reg.Counter("detect.memo_hits").Add(int64(r.MemoHits))
	reg.Counter("detect.candidates").Add(int64(r.Candidates))
	reg.Counter("detect.pruned").Add(int64(r.Pruned))
	reg.Counter("detect.findings").Add(int64(len(r.Findings)))
	reg.Counter("presolve.discharged").Add(int64(r.Discharged))
	reg.Counter("presolve.skipped_queries").Add(int64(r.SkippedQueries))
	reg.Counter("presolve.certificates").Add(int64(len(r.Certificates)))
	reg.Counter("presolve.audited").Add(int64(r.PresolveAudited))
	reg.Counter("presolve.disagreements").Add(int64(r.PresolveDisagreements))
	reg.Counter("detect.cache_hits").Add(b2i(r.CacheHit))
	reg.Counter("detect.timeouts").Add(b2i(r.TimedOut))
	reg.Counter("detect.budget_hits").Add(b2i(r.BudgetHit))
	reg.Counter("sat.decisions").Add(r.Decisions)
	reg.Counter("sat.propagations").Add(r.Propagations)
	reg.Counter("sat.conflicts").Add(r.Conflicts)
	reg.Counter("sat.restarts").Add(r.Restarts)
	reg.Counter("sat.prefix_lits").Add(r.PrefixLits)
	reg.Counter("sat.root_units").Add(r.RootUnits)
	reg.Counter("smt.tseitin_gates").Add(r.TseitinGates)
	reg.Counter("smt.tseitin_shared").Add(r.TseitinShared)
	reg.Counter("smt.model_hits").Add(r.ModelCacheHits)
	reg.Counter("smt.self_checks").Add(r.SolverChecks)
	reg.Counter("smt.self_mismatches").Add(r.SolverMismatches)
	reg.Histogram("detect.func_ns").Observe(r.Duration)
	reg.Histogram("detect.frontend_ns").Observe(r.FrontendTime)
	reg.Histogram("detect.encode_ns").Observe(r.EncodeTime)
	reg.Histogram("detect.solve_ns").Observe(r.SolveTime)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Report converts the result to its run-report form: the per-function
// record of the stable JSON schema clou -report emits.
func (r *Result) Report() obsv.FuncReport {
	fr := obsv.FuncReport{
		Name:            r.Fn,
		Nodes:           r.NodeCount,
		Queries:         r.Queries,
		Candidates:      r.Candidates,
		Pruned:          r.Pruned,
		Discharged:      r.Discharged,
		Skipped:         r.SkippedQueries,
		Audited:         r.PresolveAudited,
		Disagreements:   r.PresolveDisagreements,
		MemoHits:        r.MemoHits,
		PrefixLits:      r.PrefixLits,
		RootUnits:       r.RootUnits,
		TseitinGates:    r.TseitinGates,
		TseitinShared:   r.TseitinShared,
		ModelHits:       r.ModelCacheHits,
		SolverChecks:    r.SolverChecks,
		Mismatches:      r.SolverMismatches,
		CacheHit:        r.CacheHit,
		TimedOut:        r.TimedOut,
		DurationNs:      r.Duration.Nanoseconds(),
		FrontendNs:      r.FrontendTime.Nanoseconds(),
		EncodeNs:        r.EncodeTime.Nanoseconds(),
		SolveNs:         r.SolveTime.Nanoseconds(),
		AliasNs:         r.AliasTime.Nanoseconds(),
		FlowNs:          r.FlowTime.Nanoseconds(),
		PresolveFactsNs: r.PresolveFactsTime.Nanoseconds(),
	}
	switch {
	case r.Rung == RungUnknown:
		fr.Verdict = "unknown"
	case len(r.Findings) > 0:
		fr.Verdict = "leak"
	case r.TimedOut:
		fr.Verdict = "timeout"
	default:
		fr.Verdict = "clean"
	}
	if r.Rung != RungFull {
		fr.Rung = r.Rung.String()
	}
	fr.Failure = r.Failure
	if counts := r.Counts(); len(counts) > 0 {
		fr.Counts = make(map[string]int, len(counts))
		for cl, n := range counts {
			fr.Counts[cl.String()] = n
		}
	}
	for _, f := range r.Findings {
		fr.Findings = append(fr.Findings, obsv.FindingReport{
			Class:             f.Class.String(),
			Transmit:          f.Transmit,
			Access:            f.Access,
			Index:             f.Index,
			Branch:            f.Branch,
			Store:             f.Store,
			Load:              f.Load,
			Line:              f.Line,
			TransientTransmit: f.TransientTransmit,
			TransientAccess:   f.TransientAccess,
		})
	}
	return fr
}
