package detect

import (
	"fmt"

	"lcm/internal/acfg"
	"lcm/internal/event"
	"lcm/internal/ir"
	"lcm/internal/sat"
)

// Witness reconstructs a candidate execution (§5: the graph form Clou
// outputs as evidence) for a finding: the architectural path and transient
// window from a satisfying model, with po/tfo, dependency edges recovered
// from def-use chains, rf from initial state, and the transmitter's rfx
// edge into the observer ⊥.
func Witness(res *Result, f Finding) (*event.Graph, error) {
	a := res.AEG
	var status sat.Status
	if f.Branch >= 0 {
		status = a.Check(a.Misspec(f.Branch), a.TransUnder(f.Branch, f.Transmit))
	} else {
		status = a.Check(a.Arch(f.Store), a.Arch(f.Load), a.Exec(f.Transmit))
	}
	if status != sat.Sat {
		return nil, fmt.Errorf("witness: query no longer satisfiable")
	}
	archNodes, transNodes, _ := a.Model()

	arch := map[int]bool{}
	for _, n := range archNodes {
		arch[n] = true
	}
	trans := map[int]bool{}
	for _, n := range transNodes {
		if !arch[n] {
			trans[n] = true
		}
	}

	b := event.NewBuilder()
	top := b.Top()
	evOf := map[int]*event.Event{}
	xOf := map[string]event.XSID{}

	xstate := func(loc string) event.XSID {
		if x, ok := xOf[loc]; ok {
			return x
		}
		x := b.FreshX()
		xOf[loc] = x
		return x
	}

	emit := func(id int, transient bool) {
		n := res.Graph.Nodes[id]
		loc := locOf(res.Graph, n)
		label := fmt.Sprintf("n%d: %s", id, n.Instr)
		switch {
		case n.IsLoad():
			if transient {
				evOf[id] = b.TransientRead(0, event.Location(loc), xstate(loc), event.XRW, label)
			} else {
				evOf[id] = b.Read(0, event.Location(loc), xstate(loc), event.XRW, label)
			}
			b.RF(top, evOf[id])
		case n.IsStore():
			if transient {
				evOf[id] = b.TransientWrite(0, event.Location(loc), xstate(loc), event.XRW, label)
			} else {
				evOf[id] = b.Write(0, event.Location(loc), xstate(loc), event.XRW, label)
				b.CO(top, evOf[id])
			}
		case n.IsBranch():
			if !transient {
				evOf[id] = b.Branch(0, label)
			}
		case n.IsFence():
			if !transient && n.Instr.Sub == "lfence" {
				evOf[id] = b.Fence(0, label)
			}
		}
	}

	// Architectural prefix in topological order, then the transient window
	// (tfo extends past the branch), matching §3.3's per-thread fetch order.
	for _, id := range res.Graph.Topo() {
		if arch[id] && !trans[id] {
			// Transient nodes that are also on the architectural path
			// appear once, architecturally.
			emit(id, false)
		}
	}
	for _, id := range res.Graph.Topo() {
		if trans[id] {
			emit(id, true)
		}
	}
	bot := b.Bottom(0)

	// Dependencies: address deps from def chains into address operands,
	// data deps into stored values, ctrl deps from branch conditions.
	// Walked in topological order, not evOf map order, so edge insertion —
	// and with it the rendered DOT — is deterministic across runs.
	for _, id := range res.Graph.Topo() {
		ev, ok := evOf[id]
		if !ok || ev == nil {
			continue
		}
		n := res.Graph.Nodes[id]
		if n.Instr == nil {
			continue
		}
		if n.IsLoad() || n.IsStore() {
			for _, src := range loadsFeeding(res.Graph, addrDefs(n)) {
				if sev, ok := evOf[src]; ok && sev != nil && sev != ev {
					b.AddrDep(sev, ev, true)
				}
			}
		}
		if n.IsStore() && len(n.ArgDefs) > 0 {
			for _, src := range loadsFeeding(res.Graph, n.ArgDefs[0]) {
				if sev, ok := evOf[src]; ok && sev != nil && sev != ev {
					b.DataDep(sev, ev)
				}
			}
		}
	}
	// rfx: the transmitter populates xstate the observer probes.
	if tev, ok := evOf[f.Transmit]; ok && tev != nil {
		b.RFX(top, tev)
		b.RFX(tev, bot)
	}
	g := b.Finish()
	return g, nil
}

// locOf renders a human-readable symbolic location for a memory node.
func locOf(g *acfg.Graph, n *acfg.Node) string {
	var ptr ir.Value
	switch {
	case n.IsLoad():
		ptr = n.Instr.Args[0]
	case n.IsStore():
		ptr = n.Instr.Args[1]
	default:
		return fmt.Sprintf("mem%d", n.ID)
	}
	switch p := ptr.(type) {
	case *ir.Global:
		return p.Nm
	case *ir.Instr:
		if p.Op == ir.OpAlloca {
			return p.Nm
		}
		if p.Op == ir.OpGEP {
			if g, ok := p.Args[0].(*ir.Global); ok {
				return g.Nm + "[i]"
			}
			return fmt.Sprintf("%s[i]", p.Args[0].ValueName())
		}
		return fmt.Sprintf("*%s", p.ValueName())
	}
	return fmt.Sprintf("mem%d", n.ID)
}

// loadsFeeding walks def chains back to the nearest load nodes: the reads
// whose values feed the given definitions (through pure value ops).
func loadsFeeding(g *acfg.Graph, defs []int) []int {
	var out []int
	seen := map[int]bool{}
	stack := append([]int(nil), defs...)
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[d] {
			continue
		}
		seen[d] = true
		n := g.Nodes[d]
		if n.IsLoad() {
			out = append(out, d)
			continue
		}
		if n.Instr == nil {
			continue
		}
		for _, ds := range n.ArgDefs {
			stack = append(stack, ds...)
		}
	}
	return out
}
