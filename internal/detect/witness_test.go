package detect

import (
	"strings"
	"testing"

	"lcm/internal/core"
	"lcm/internal/dot"
	"lcm/internal/event"
)

func TestWitnessSpectreV1(t *testing.T) {
	r := analyze(t, spectreV1Src, "victim", DefaultPHT())
	var udt *Finding
	for i := range r.Findings {
		if r.Findings[i].Class == core.UDT {
			udt = &r.Findings[i]
		}
	}
	if udt == nil {
		t.Fatal("no UDT")
	}
	g, err := Witness(r, *udt)
	if err != nil {
		t.Fatalf("witness: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("witness invalid: %v", err)
	}
	// The witness must contain transient events (the mis-speculated body)
	// and an observer.
	if g.TransientEvents().Len() == 0 {
		t.Error("witness has no transient events")
	}
	if len(g.Bottoms()) != 1 {
		t.Error("witness has no observer")
	}
	// The culprit rfx into ⊥ is present, and the LCM core flags it.
	vs := core.CheckNonInterference(g)
	if len(vs) == 0 {
		t.Error("witness execution not flagged by the NI predicates")
	}
	// DOT rendering mentions the key edge kinds.
	d := dot.Graph(g, "spectre-v1-witness")
	for _, want := range []string{"digraph", "rfx", "addr", "⊥", "style=dashed"} {
		if !strings.Contains(d, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestWitnessSTL(t *testing.T) {
	r := analyze(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint8_t tmp;
		uint32_t idx_slot;
		void victim(uint32_t idx) {
			idx_slot = idx & 15;
			uint8_t x = A[idx_slot];
			tmp &= B[x * 512];
		}
	`, "victim", DefaultSTL())
	if len(r.Findings) == 0 {
		t.Fatal("no findings")
	}
	g, err := Witness(r, r.Findings[0])
	if err != nil {
		t.Fatalf("witness: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid witness: %v", err)
	}
	// Store bypass witness is an architectural path (with the bypass
	// modeled at the xstate level); all memory events present.
	reads := 0
	for _, e := range g.Events {
		if e.Kind == event.KRead {
			reads++
		}
	}
	if reads == 0 {
		t.Error("no reads in witness")
	}
}
