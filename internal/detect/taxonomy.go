package detect

import (
	"lcm/internal/acfg"
	"lcm/internal/core"
	"lcm/internal/ir"
	"lcm/internal/presolve"
	"lcm/internal/smt"
)

// This file holds the taxonomy engines beyond branch prediction and
// store-to-load bypass: speculative store forwarding via alias
// prediction (Clou-psf), the indirect memory prefetcher (Clou-imp,
// Fig. 5b), and silent stores (Clou-ss, Fig. 5a). They reuse the same
// S-AEG, dense value-flow, bounded-distance bitsets, and pre-solver
// query paths as Clou-pht/stl; only the candidate shapes differ.

// runPSF searches for transmitters steered by a mispredicted alias
// forward: a load l with an in-flight po-earlier store s that does NOT
// have to alias it may be predicted to, transiently returning s's data —
// which then steers a later transmitter. The shape mirrors STL with two
// inversions: must-alias pairs are excluded (the forward would be
// architecturally correct), and provably disjoint pairs are NOT pruned
// (misprediction is exactly what makes disjoint pairs dangerous).
func (d *detector) runPSF() {
	mems := d.memoryNodes()
	loads := d.loads()
	seen := map[candKey]bool{}

	var stores []*acfg.Node
	for _, n := range d.g.Nodes {
		if n.IsStore() {
			stores = append(stores, n)
		}
	}

	// Forwardable (store, load) pairs: the load issues while the store is
	// still in the buffer (LSQ bound) and the pair is not an exact
	// same-address forward.
	type pair struct{ s, l int }
	var pairs []pair
	for _, s := range stores {
		if d.outOfBudget() {
			return
		}
		for _, l := range loads {
			if !d.cfgReach(s.ID, l.ID) {
				continue
			}
			if !d.withinLSQ(s.ID, l.ID) {
				continue
			}
			if mustAliasExact(s, l) {
				continue
			}
			d.res.Candidates++
			pairs = append(pairs, pair{s.ID, l.ID})
		}
	}

	// One inverted value-flow sweep per distinct mispredicted load (see
	// runSTL): steered lists come back in mems order.
	var fwd []*acfg.Node
	fwdSeen := map[int]bool{}
	for _, p := range pairs {
		if !fwdSeen[p.l] {
			fwdSeen[p.l] = true
			fwd = append(fwd, d.g.Nodes[p.l])
		}
	}
	st := d.computeSteering(fwd, mems)

	var qn [3]int
	for _, p := range pairs {
		if d.outOfBudget() {
			return
		}
		near := d.nearFrom(p.l)
		for _, tID := range st.steers[p.l] {
			if !d.cfgReach(p.l, tID) {
				continue
			}
			if !near.win.Has(tID) {
				continue
			}
			t := d.g.Nodes[tID]
			// An lfence drains the store buffer: nothing is left to
			// forward when every s→t path crosses one.
			if d.fenceBetween(p.s, tID) {
				continue
			}
			class := core.UDT
			if d.cfg.RequireTaint && !forwardControlled(d.g.Nodes[p.s]) {
				class = core.DT
			}
			if !d.wantClass(class) {
				continue
			}
			key := candKey{kind: candPSF, a: p.s, b: p.l, c: tID}
			if seen[key] {
				continue
			}
			qn[0], qn[1], qn[2] = p.s, p.l, tID
			if d.queryArch(key, qn[:3], func() []*smt.Expr {
				return []*smt.Expr{d.a.Arch(p.s), d.a.Arch(p.l), d.a.Exec(tID)}
			}) {
				seen[key] = true
				d.res.Findings = append(d.res.Findings, Finding{
					Fn: d.res.Fn, Class: class,
					Transmit: tID, Access: p.l, Index: -1,
					Branch: -1, Store: p.s, Load: p.l,
					TransientTransmit: true, TransientAccess: true,
					Line: line(t),
				})
			}
		}
	}
}

// mustAliasExact reports that the store and load provably touch the same
// address with the same width, so forwarding is architecturally correct
// and the alias predictor has nothing to mispredict: the address
// operands are literally the same value (the alloca-reload pattern) or
// name the same global.
func mustAliasExact(s, l *acfg.Node) bool {
	if s.Instr == nil || l.Instr == nil {
		return false
	}
	if s.Instr.Args[0].Type().Size() != l.Instr.Ty.Size() {
		return false
	}
	sa, la := s.Instr.Args[1], l.Instr.Args[0]
	if sa == la {
		return true
	}
	sg, ok1 := sa.(*ir.Global)
	lg, ok2 := la.(*ir.Global)
	return ok1 && ok2 && sg.Nm == lg.Nm
}

// forwardControlled reports whether the wrongly forwarded value — the
// store's data operand — may carry attacker-interesting bits: integer
// and pointer data both qualify (the PSF analogue of staleControlled).
func forwardControlled(s *acfg.Node) bool {
	ty := s.Instr.Args[0].Type()
	return ir.IsInt(ty) || ir.IsPtr(ty)
}

// runIMP searches for the indirect memory prefetcher's universal read: a
// dependent load pair (index load i feeding data load t's address) that
// executes at least twice trains the prefetcher, which then dereferences
// the NEXT index element on its own — memory the program never
// architecturally reads (Fig. 5b). Statically, "trained" means the same
// static instruction pair has ≥2 instances in the unrolled A-CFG; each
// adjacent instance pair is one training window, and the second data
// instance is the transmitter whose prefetch leaks.
func (d *detector) runIMP() {
	loads := d.loads()
	d.allLoads = loads
	seen := map[candKey]bool{}

	// Collect dependent pair instances in load-ID order (deterministic),
	// grouped by static (index instr, data instr) pair. Reaching defs
	// cross unrolled iterations (iteration 1's index load also feeds
	// iteration 2's data load through the merge), so per data instance
	// only the nearest instance of each static index load — the same
	// iteration's — is the pair's index access.
	type inst struct{ i, dnode int }
	groups := map[[2]*ir.Instr][]inst{}
	var order [][2]*ir.Instr
	nearest := map[*ir.Instr]int{}
	for _, dn := range loads {
		if d.outOfBudget() {
			return
		}
		if dn.Instr == nil {
			continue
		}
		clear(nearest)
		for _, e := range d.feedsOf(dn.ID) {
			if d.cfg.RequireGEP && !e.gep {
				continue
			}
			in := d.g.Nodes[e.idx]
			if in.Instr == nil || !walkAddressed(in.Instr) {
				continue
			}
			if prev, ok := nearest[in.Instr]; !ok || e.idx > prev {
				nearest[in.Instr] = e.idx
			}
		}
		// feedsOf returns edges in load-ID order, so the first sighting
		// of each static index instr fixes a deterministic group order.
		for _, e := range d.feedsOf(dn.ID) {
			in := d.g.Nodes[e.idx]
			if in.Instr == nil || nearest[in.Instr] != e.idx {
				continue
			}
			gk := [2]*ir.Instr{in.Instr, dn.Instr}
			if _, ok := groups[gk]; !ok {
				order = append(order, gk)
			}
			groups[gk] = append(groups[gk], inst{i: e.idx, dnode: dn.ID})
		}
	}

	var qn [4]int
	for _, gk := range order {
		insts := groups[gk]
		// Adjacent instance pairs in program order: (i1,t1) trains,
		// (i2,t2) fires the prefetch of the next element's line.
		for k := 0; k+1 < len(insts); k++ {
			a, b := insts[k], insts[k+1]
			if a.dnode == b.dnode || !d.cfgReach(a.dnode, b.i) {
				continue
			}
			if d.outOfBudget() {
				return
			}
			d.res.Candidates++
			// lfence flushes the prefetcher's training state: a fence on
			// every path between the first index access and the second
			// data access leaves it untrained when the prefetch would fire.
			if d.fenceBetween(a.i, b.dnode) {
				continue
			}
			// The prefetcher reads the next index element and its data
			// line regardless of program bounds: a universal read.
			if !d.wantClass(core.UDT) {
				continue
			}
			key := candKey{kind: candIMP, a: a.i, b: b.dnode}
			if seen[key] {
				continue
			}
			qn[0], qn[1], qn[2], qn[3] = a.i, a.dnode, b.i, b.dnode
			if d.queryArch(key, qn[:4], func() []*smt.Expr {
				return []*smt.Expr{
					d.a.Arch(a.i), d.a.Arch(a.dnode),
					d.a.Arch(b.i), d.a.Arch(b.dnode),
				}
			}) {
				seen[key] = true
				d.res.Findings = append(d.res.Findings, Finding{
					Fn: d.res.Fn, Class: core.UDT,
					Transmit: b.dnode, Access: a.dnode, Index: b.i,
					Branch: -1, Store: -1, Load: a.i,
					// The training accesses are architectural; the leak is
					// the prefetch the hardware issues alongside them.
					TransientTransmit: false, TransientAccess: false,
					Line: line(d.g.Nodes[b.dnode]),
				})
			}
		}
	}
}

// walkAddressed reports whether the index load's own address is computed
// (a GEP) rather than a fixed slot: the prefetcher needs a striding
// index stream, and a scalar reload (alloca or global) has stride zero.
func walkAddressed(in *ir.Instr) bool {
	a, ok := in.Args[0].(*ir.Instr)
	return ok && (a.Op == ir.OpGEP || a.Op == ir.OpFieldGEP)
}

// runSS searches for silent-store transmitters: a store whose data
// depends on a secret-holding load commits silently exactly when the
// value already matches memory, so the presence/absence of the line
// allocation transmits the comparison outcome (Fig. 5a). The channel is
// control-shaped — one bit per store — so findings are CT, or UCT when
// the attacker also steers which address is compared.
func (d *detector) runSS() {
	loads := d.loads()
	exit := d.exitNode()
	seen := map[candKey]bool{}

	var qn [2]int
	for _, s := range d.g.Nodes {
		if !s.IsStore() || s.Instr == nil {
			continue
		}
		if d.outOfBudget() {
			return
		}
		feeders := d.valueFeeders(s, loads)
		if len(feeders) == 0 {
			continue
		}
		d.res.Candidates++
		// A fence on every path from the store to the exit forces a
		// verbatim drain: the write commits (and allocates) regardless of
		// the compare, so no residue depends on the data.
		if exit >= 0 && d.fenceBetween(s.ID, exit) {
			continue
		}
		class := core.CT
		if d.ta.AddressControlled(s) {
			if d.pruner != nil && d.pruner.InBoundsAccess(s.Instr) {
				// In-bounds store: the attacker steers within one object,
				// not to arbitrary memory — only the universality claim
				// dies, the one-bit channel remains.
				d.res.Pruned++
				d.dischargeCert(func() (*presolve.Certificate, bool) { return d.ps.CertInBounds(s) })
			} else {
				class = core.UCT
			}
		}
		if !d.wantClass(class) {
			continue
		}
		for _, aID := range feeders {
			key := candKey{kind: candSS, a: s.ID, b: aID}
			if seen[key] {
				continue
			}
			qn[0], qn[1] = aID, s.ID
			if d.queryArch(key, qn[:2], func() []*smt.Expr {
				return []*smt.Expr{d.a.Arch(aID), d.a.Arch(s.ID)}
			}) {
				seen[key] = true
				d.res.Findings = append(d.res.Findings, Finding{
					Fn: d.res.Fn, Class: class,
					Transmit: s.ID, Access: aID, Index: -1,
					Branch: -1, Store: s.ID, Load: -1,
					TransientTransmit: false, TransientAccess: false,
					Line: line(s),
				})
				break // one witness per store; Counts dedups by transmitter
			}
		}
	}
}

// valueFeeders returns the loads whose values flow into the store's data
// operand — the secret sources a silent commit would compare against
// memory — in load-ID order. Scalar alloca reloads are not feeders: a
// -O0 spill slot only ever holds values the function computed itself
// (arguments, locals), so a store sourced exclusively from them compares
// attacker-known data against memory and leaks nothing.
func (d *detector) valueFeeders(s *acfg.Node, loads []*acfg.Node) []int {
	if len(s.ArgDefs) == 0 || len(s.ArgDefs[0]) == 0 {
		return nil
	}
	var out []int
	for _, acc := range loads {
		if acc.ID == s.ID || allocaReload(acc) {
			continue
		}
		r := d.flowFrom(acc.ID)
		for _, def := range s.ArgDefs[0] {
			if ok, _ := r.reaches(def); ok {
				out = append(out, acc.ID)
				break
			}
		}
	}
	return out
}

// allocaReload reports whether the load reads a scalar stack slot
// directly (its address operand is an alloca instruction).
func allocaReload(n *acfg.Node) bool {
	if n.Instr == nil || len(n.Instr.Args) == 0 {
		return false
	}
	a, ok := n.Instr.Args[0].(*ir.Instr)
	return ok && a.Op == ir.OpAlloca
}

// exitNode returns the function's synthetic exit node, -1 if absent.
func (d *detector) exitNode() int {
	for _, n := range d.g.Nodes {
		if n.Kind == acfg.NExit {
			return n.ID
		}
	}
	return -1
}
