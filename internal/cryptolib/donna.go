package cryptolib

// Donna returns a curve25519-donna-style corpus entry: 10×25.5-bit limb
// field arithmetic with 64-bit accumulators (the donna-c32 layout), a
// conditional-swap Montgomery ladder, and the crypto_scalarmult entry
// point — one public function over ~20 internal ones, like the paper's
// donna row (1/21 functions).
func Donna() Library {
	return Library{
		Name:        "donna",
		PublicFuncs: []string{"crypto_scalarmult"},
		// iswap is the secret scalar bit driving the conditional swap;
		// donna handles it with arithmetic masking, so lint must stay
		// quiet on the whole library.
		SecretParams: []string{"iswap"},
		Source:       donnaSrc,
	}
}

const donnaSrc = `
/* curve25519-donna style field arithmetic: limbs in int64, 10 limbs. */

int64_t fe_x1[10];
int64_t fe_z1[10];
int64_t fe_x2[10];
int64_t fe_z2[10];
int64_t fe_origx[10];
int64_t fe_tmp0[19];
int64_t fe_tmp1[10];
int64_t fe_tmp2[10];
int64_t fe_tmp3[10];
uint8_t dn_scalar[32];
uint8_t dn_base[32];
uint8_t dn_out[32];

void fsum(int64_t *out, const int64_t *in) {
	for (int i = 0; i < 10; i++) {
		out[i] = out[i] + in[i];
	}
}

void fdifference(int64_t *out, const int64_t *in) {
	for (int i = 0; i < 10; i++) {
		out[i] = in[i] - out[i];
	}
}

void fscalar_product(int64_t *out, const int64_t *in, int64_t scalar) {
	for (int i = 0; i < 10; i++) {
		out[i] = in[i] * scalar;
	}
}

void freduce_degree(int64_t *out) {
	/* Fold limbs 10..18 back with the curve's 19 multiplier. */
	for (int i = 9; i >= 1; i--) {
		out[i - 1] += 19 * out[i + 9];
		out[i + 9] = 0;
	}
}

void freduce_coefficients(int64_t *out) {
	for (int i = 0; i < 9; i++) {
		int64_t carry = out[i] >> 26;
		out[i] -= carry << 26;
		out[i + 1] += carry;
	}
	int64_t top = out[9] >> 25;
	out[9] -= top << 25;
	out[0] += 19 * top;
}

void fproduct(int64_t *out, const int64_t *a, const int64_t *b) {
	for (int i = 0; i < 19; i++) {
		out[i] = 0;
	}
	for (int i = 0; i < 10; i++) {
		for (int j = 0; j < 10; j++) {
			out[i + j] += a[i] * b[j];
		}
	}
}

void fmul(int64_t *out, const int64_t *a, const int64_t *b) {
	int64_t t[19];
	for (int i = 0; i < 19; i++) {
		t[i] = 0;
	}
	for (int i = 0; i < 10; i++) {
		for (int j = 0; j < 10; j++) {
			t[i + j] += a[i] * b[j];
		}
	}
	for (int i = 9; i >= 1; i--) {
		t[i - 1] += 19 * t[i + 9];
	}
	for (int i = 0; i < 9; i++) {
		int64_t carry = t[i] >> 26;
		t[i] -= carry << 26;
		t[i + 1] += carry;
	}
	for (int i = 0; i < 10; i++) {
		out[i] = t[i];
	}
}

void fsquare(int64_t *out, const int64_t *a) {
	fmul(out, a, a);
}

void fexpand(int64_t *out, const uint8_t *in) {
	for (int i = 0; i < 10; i++) {
		int off = (i * 51) / 16;
		int64_t v = 0;
		for (int k = 0; k < 4; k++) {
			v |= ((int64_t)in[(off + k) & 31]) << (8 * k);
		}
		out[i] = v & 0x3FFFFFF;
	}
}

void fcontract(uint8_t *out, int64_t *in) {
	freduce_coefficients(in);
	for (int i = 0; i < 32; i++) {
		int limb = (i * 10) / 32;
		out[i] = (uint8_t)(in[limb] >> ((i & 3) * 8));
	}
}

void swap_conditional(int64_t *a, int64_t *b, int64_t iswap) {
	int64_t swap = -iswap;
	for (int i = 0; i < 10; i++) {
		int64_t x = swap & (a[i] ^ b[i]);
		a[i] = a[i] ^ x;
		b[i] = b[i] ^ x;
	}
}

void fmonty_step(void) {
	/* One combined double-and-add ladder step over the shared state. */
	int64_t origx[10];
	int64_t origxprime[10];
	int64_t xx[10];
	int64_t zz[10];
	int64_t xxprime[10];
	int64_t zzprime[10];
	int64_t zzzprime[10];

	for (int i = 0; i < 10; i++) {
		origx[i] = fe_x1[i];
	}
	fsum(fe_x1, fe_z1);
	fdifference(fe_z1, origx);

	for (int i = 0; i < 10; i++) {
		origxprime[i] = fe_x2[i];
	}
	fsum(fe_x2, fe_z2);
	fdifference(fe_z2, origxprime);

	fmul(xxprime, fe_x2, fe_z1);
	fmul(zzprime, fe_x1, fe_z2);
	for (int i = 0; i < 10; i++) {
		origxprime[i] = xxprime[i];
	}
	fsum(xxprime, zzprime);
	fdifference(zzprime, origxprime);
	fsquare(fe_x2, xxprime);
	fsquare(zzzprime, zzprime);
	fmul(fe_z2, zzzprime, fe_origx);

	fsquare(xx, fe_x1);
	fsquare(zz, fe_z1);
	fmul(fe_x1, xx, zz);
	fdifference(zz, xx);
	fscalar_product(zzzprime, zz, 121665);
	fsum(zzzprime, xx);
	fmul(fe_z1, zz, zzzprime);
}

void cmult(void) {
	for (int i = 0; i < 10; i++) {
		fe_x2[i] = 0;
		fe_z2[i] = 0;
		fe_z1[i] = 0;
	}
	fe_x2[0] = 1;
	fe_z1[0] = 1;
	fexpand(fe_x1, dn_base);
	for (int i = 0; i < 10; i++) {
		fe_origx[i] = fe_x1[i];
	}
	for (int i = 0; i < 255; i++) {
		uint32_t byte_i = (254 - i) >> 3;
		uint32_t bit_i = (254 - i) & 7;
		int64_t bit = (dn_scalar[byte_i & 31] >> bit_i) & 1;
		swap_conditional(fe_x1, fe_x2, bit);
		swap_conditional(fe_z1, fe_z2, bit);
		fmonty_step();
		swap_conditional(fe_x1, fe_x2, bit);
		swap_conditional(fe_z1, fe_z2, bit);
	}
}

void crecip(int64_t *out, const int64_t *z) {
	int64_t z2[10];
	int64_t t[10];
	fsquare(z2, z);
	fsquare(t, z2);
	fsquare(t, t);
	fmul(t, t, z);
	fmul(out, t, z2);
	for (int i = 0; i < 248; i++) {
		fsquare(out, out);
		fmul(out, out, z);
	}
}

int crypto_scalarmult(void) {
	cmult();
	int64_t zinv[10];
	crecip(zinv, fe_z1);
	int64_t prod[10];
	fmul(prod, fe_x1, zinv);
	fcontract(dn_out, prod);
	return 0;
}
`
