package cryptolib

// MEECBC returns a MAC-then-Encode-then-CBC-Encrypt (mee-cbc) corpus
// entry: a table-based block cipher (the classic cache-timing surface),
// CBC decryption, padding validation with data-dependent branches, and a
// MAC comparison — the record-decode shape of the paper's mee-cbc row.
func MEECBC() Library {
	return Library{
		Name:        "mee-cbc",
		PublicFuncs: []string{"mee_cbc_decrypt"},
		Source:      meecbcSrc,
	}
}

const meecbcSrc = `
uint8_t sbox[256];
uint8_t inv_sbox[256];
uint8_t cbc_key[16];
uint8_t cbc_iv[16];
uint8_t cbc_in[256];
uint8_t cbc_out[256];
uint8_t cbc_mac[20];
uint8_t mac_key2[20];
uint32_t cbc_len = 64;

void block_decrypt(uint8_t *blk) {
	for (int round = 0; round < 4; round++) {
		for (int i = 0; i < 16; i++) {
			blk[i] = inv_sbox[blk[i]] ^ cbc_key[i];
		}
		uint8_t t = blk[0];
		for (int i = 0; i < 15; i++) {
			blk[i] = blk[i + 1];
		}
		blk[15] = t;
	}
}

void cbc_decrypt_blocks(uint32_t nblocks) {
	uint8_t prev[16];
	for (int i = 0; i < 16; i++) {
		prev[i] = cbc_iv[i];
	}
	for (uint32_t b = 0; b < nblocks; b++) {
		uint8_t cur[16];
		for (int i = 0; i < 16; i++) {
			cur[i] = cbc_in[b * 16 + i];
		}
		uint8_t tmp[16];
		for (int i = 0; i < 16; i++) {
			tmp[i] = cur[i];
		}
		block_decrypt(tmp);
		for (int i = 0; i < 16; i++) {
			cbc_out[b * 16 + i] = tmp[i] ^ prev[i];
		}
		for (int i = 0; i < 16; i++) {
			prev[i] = cur[i];
		}
	}
}

/* check_padding: TLS-CBC style — the last byte names the pad length; each
   pad byte must match. Attacker-controlled, bounds-checked, and used to
   index the plaintext: the classic gadget shape. */
int check_padding(uint32_t len) {
	uint8_t pad = cbc_out[len - 1];
	if (pad >= len) {
		return -1;
	}
	for (uint32_t i = 0; i < pad; i++) {
		if (cbc_out[len - 2 - i] != pad) {
			return -1;
		}
	}
	return (int)pad;
}

void mac_compute(uint8_t *out, uint32_t len) {
	uint32_t acc0 = 0x6a09e667;
	uint32_t acc1 = 0xbb67ae85;
	for (uint32_t i = 0; i < len; i++) {
		acc0 = (acc0 ^ cbc_out[i]) * 16777619;
		acc1 = (acc1 + cbc_out[i]) * 2166136261;
	}
	for (int i = 0; i < 20; i++) {
		uint32_t v;
		if (i & 1) {
			v = acc1;
		} else {
			v = acc0;
		}
		out[i] = (uint8_t)(v >> ((i % 4) * 8)) ^ mac_key2[i];
	}
}

int mac_verify(uint32_t len) {
	uint8_t expect[20];
	mac_compute(expect, len);
	uint32_t diff = 0;
	for (int i = 0; i < 20; i++) {
		diff |= expect[i] ^ cbc_mac[i];
	}
	if (diff != 0) {
		return -1;
	}
	return 0;
}

int mee_cbc_decrypt(uint32_t inlen) {
	if (inlen > 256) {
		return -1;
	}
	if (inlen % 16 != 0) {
		return -1;
	}
	cbc_decrypt_blocks(inlen / 16);
	int pad = check_padding(inlen);
	if (pad < 0) {
		return -1;
	}
	uint32_t plen = inlen - (uint32_t)pad - 1;
	if (plen < 20) {
		return -1;
	}
	for (int i = 0; i < 20; i++) {
		cbc_mac[i] = cbc_out[plen - 20 + i];
	}
	if (mac_verify(plen - 20) != 0) {
		return -1;
	}
	return (int)plen;
}
`
