package cryptolib

// Libsodium returns a libsodium-like utility library: constant-time
// comparators, encoders, counters, padding helpers, and a handful of
// bounds-checked table functions where Spectre gadgets hide — a spread of
// public-function sizes for the Fig. 8 runtime-vs-size scatter.
func Libsodium() Library {
	return Library{
		Name: "libsodium",
		PublicFuncs: []string{
			"sodium_memcmp", "crypto_verify_16", "crypto_verify_32",
			"sodium_increment", "sodium_add", "sodium_sub", "sodium_compare",
			"sodium_is_zero", "sodium_stackzero", "sodium_memzero",
			"sodium_bin2hex", "sodium_hex2bin", "sodium_bin2base64_lookup",
			"sodium_pad", "sodium_unpad",
			"crypto_stream_xor_ic", "crypto_onetimeauth_update",
			"crypto_shorthash_sip_round", "crypto_core_hchacha_round",
			"crypto_kdf_derive", "crypto_pwhash_mix",
			"crypto_sign_reduce_limb", "crypto_box_seal_probe",
			"crypto_aead_tag_check", "randombytes_uniform_mask",
			"sodium_lookup_gadget", "sodium_runtime_has_feature",
			"sodium_version_digit",
		},
		KnownGadgets: []string{"sodium_bin2hex", "sodium_lookup_gadget", "crypto_box_seal_probe", "sodium_unpad"},
		// bin is the secret binary input of sodium_bin2hex (its hex-table
		// lookups are the classic secret-indexed access); buf is the
		// decrypted plaintext sodium_unpad scans, branching on padding
		// bytes; tag flows through the branch-free crypto_verify_16 and
		// must stay quiet under lint.
		SecretParams: []string{"bin", "buf", "tag"},
		Source:       libsodiumSrc,
	}
}

const libsodiumSrc = `
uint8_t ls_buf_a[64];
uint8_t ls_buf_b[64];
uint8_t ls_out[256];
uint8_t ls_table[64];
uint32_t ls_table_size = 64;
uint8_t ls_probe[131072];
uint8_t ls_hexmap[16];
uint8_t ls_b64map[64];
uint8_t ls_feature_flags[8];
uint8_t ls_state[32];
uint64_t ls_counter[4];

int sodium_memcmp(const uint8_t *b1, const uint8_t *b2, size_t len) {
	uint8_t d = 0;
	for (size_t i = 0; i < len; i++) {
		d |= b1[i] ^ b2[i];
	}
	return (1 & ((d - 1) >> 8)) - 1;
}

int crypto_verify_16(const uint8_t *x, const uint8_t *y) {
	uint16_t d = 0;
	for (int i = 0; i < 16; i++) {
		d |= x[i] ^ y[i];
	}
	return (1 & ((d - 1) >> 8)) - 1;
}

int crypto_verify_32(const uint8_t *x, const uint8_t *y) {
	uint16_t d = 0;
	for (int i = 0; i < 32; i++) {
		d |= x[i] ^ y[i];
	}
	return (1 & ((d - 1) >> 8)) - 1;
}

void sodium_increment(uint8_t *n, size_t nlen) {
	uint16_t c = 1;
	for (size_t i = 0; i < nlen; i++) {
		c += (uint16_t)n[i];
		n[i] = (uint8_t)c;
		c >>= 8;
	}
}

void sodium_add(uint8_t *a, const uint8_t *b, size_t len) {
	uint16_t c = 0;
	for (size_t i = 0; i < len; i++) {
		c += (uint16_t)a[i] + (uint16_t)b[i];
		a[i] = (uint8_t)c;
		c >>= 8;
	}
}

void sodium_sub(uint8_t *a, const uint8_t *b, size_t len) {
	uint16_t borrow = 0;
	for (size_t i = 0; i < len; i++) {
		uint16_t t = (uint16_t)a[i] - (uint16_t)b[i] - borrow;
		a[i] = (uint8_t)t;
		borrow = (t >> 8) & 1;
	}
}

int sodium_compare(const uint8_t *b1, const uint8_t *b2, size_t len) {
	uint8_t gt = 0;
	uint8_t eq = 1;
	size_t i = len;
	while (i != 0) {
		i--;
		uint32_t x1 = b1[i];
		uint32_t x2 = b2[i];
		gt |= (uint8_t)(((x2 - x1) >> 8) & eq);
		eq &= (uint8_t)((((x2 ^ x1) - 1) >> 8) & 1);
	}
	return (int)(gt + gt + eq) - 1;
}

int sodium_is_zero(const uint8_t *n, size_t nlen) {
	uint8_t d = 0;
	for (size_t i = 0; i < nlen; i++) {
		d |= n[i];
	}
	return 1 & ((d - 1) >> 8);
}

void sodium_memzero(uint8_t *p, size_t len) {
	for (size_t i = 0; i < len; i++) {
		p[i] = 0;
	}
}

void sodium_stackzero(size_t len) {
	uint8_t pad[64];
	for (size_t i = 0; i < len && i < 64; i++) {
		pad[i] = 0;
	}
	ls_state[0] = pad[0];
}

/* bin2hex: the hex digit table lookup is indexed by secret data — the
   classic data transmitter, and a Spectre gadget under mis-speculation of
   the length check. */
void sodium_bin2hex(uint8_t *hex, size_t hex_maxlen, const uint8_t *bin, size_t bin_len) {
	size_t i = 0;
	while (i < bin_len) {
		if (i * 2 + 1 >= hex_maxlen) {
			return;
		}
		uint8_t b = bin[i];
		hex[i * 2] = ls_hexmap[b >> 4];
		hex[i * 2 + 1] = ls_hexmap[b & 15];
		i++;
	}
}

int sodium_hex2bin(uint8_t *bin, size_t bin_maxlen, const uint8_t *hex, size_t hex_len) {
	size_t written = 0;
	for (size_t i = 0; i + 1 < hex_len; i += 2) {
		if (written >= bin_maxlen) {
			return -1;
		}
		uint8_t hi = hex[i];
		uint8_t lo = hex[i + 1];
		uint8_t v = 0;
		if (hi >= '0' && hi <= '9') {
			v = (hi - '0') << 4;
		} else if (hi >= 'a' && hi <= 'f') {
			v = (hi - 'a' + 10) << 4;
		}
		if (lo >= '0' && lo <= '9') {
			v |= lo - '0';
		} else if (lo >= 'a' && lo <= 'f') {
			v |= lo - 'a' + 10;
		}
		bin[written] = v;
		written++;
	}
	return (int)written;
}

void sodium_bin2base64_lookup(uint8_t *out, const uint8_t *in, size_t len) {
	for (size_t i = 0; i + 2 < len; i += 3) {
		uint32_t v = ((uint32_t)in[i] << 16) | ((uint32_t)in[i + 1] << 8) | in[i + 2];
		out[(i / 3) * 4] = ls_b64map[(v >> 18) & 63];
		out[(i / 3) * 4 + 1] = ls_b64map[(v >> 12) & 63];
		out[(i / 3) * 4 + 2] = ls_b64map[(v >> 6) & 63];
		out[(i / 3) * 4 + 3] = ls_b64map[v & 63];
	}
}

int sodium_pad(size_t *padded_len, uint8_t *buf, size_t unpadded_len, size_t blocksize, size_t maxlen) {
	if (blocksize == 0) {
		return -1;
	}
	size_t xpadlen = blocksize - 1 - (unpadded_len % blocksize);
	if (unpadded_len + xpadlen + 1 > maxlen) {
		return -1;
	}
	buf[unpadded_len] = 0x80;
	for (size_t i = 1; i <= xpadlen; i++) {
		buf[unpadded_len + i] = 0;
	}
	*padded_len = unpadded_len + xpadlen + 1;
	return 0;
}

int sodium_unpad(size_t *unpadded_len, const uint8_t *buf, size_t padded_len, size_t blocksize) {
	if (blocksize == 0 || padded_len < blocksize) {
		return -1;
	}
	size_t i = padded_len;
	while (i != 0) {
		i--;
		uint8_t c = buf[i];
		if (c == 0x80) {
			*unpadded_len = i;
			return 0;
		}
		if (c != 0) {
			return -1;
		}
	}
	return -1;
}

void crypto_stream_xor_ic(uint8_t *c, const uint8_t *m, size_t len, uint32_t ic) {
	uint32_t ks = ic * 2654435761;
	for (size_t i = 0; i < len; i++) {
		ks = ks * 1103515245 + 12345;
		c[i] = m[i] ^ (uint8_t)(ks >> 24);
	}
}

void crypto_onetimeauth_update(const uint8_t *m, size_t len) {
	uint64_t h0 = ls_counter[0];
	uint64_t h1 = ls_counter[1];
	for (size_t i = 0; i + 4 <= len; i += 4) {
		uint64_t w = m[i] | ((uint64_t)m[i + 1] << 8) | ((uint64_t)m[i + 2] << 16) | ((uint64_t)m[i + 3] << 24);
		h0 = (h0 + w) * 0x985DF5;
		h1 = (h1 ^ w) * 0x9E3779B1;
		h0 = (h0 & 0xFFFFFFFFFFFF) + (h0 >> 48) * 5;
	}
	ls_counter[0] = h0;
	ls_counter[1] = h1;
}

void crypto_shorthash_sip_round(void) {
	uint64_t v0 = ls_counter[0];
	uint64_t v1 = ls_counter[1];
	uint64_t v2 = ls_counter[2];
	uint64_t v3 = ls_counter[3];
	for (int i = 0; i < 2; i++) {
		v0 += v1;
		v1 = (v1 << 13) | (v1 >> 51);
		v1 ^= v0;
		v0 = (v0 << 32) | (v0 >> 32);
		v2 += v3;
		v3 = (v3 << 16) | (v3 >> 48);
		v3 ^= v2;
		v0 += v3;
		v3 = (v3 << 21) | (v3 >> 43);
		v3 ^= v0;
		v2 += v1;
		v1 = (v1 << 17) | (v1 >> 47);
		v1 ^= v2;
		v2 = (v2 << 32) | (v2 >> 32);
	}
	ls_counter[0] = v0;
	ls_counter[1] = v1;
	ls_counter[2] = v2;
	ls_counter[3] = v3;
}

void crypto_core_hchacha_round(uint32_t *x) {
	x[0] += x[4];
	x[12] ^= x[0];
	x[12] = (x[12] << 16) | (x[12] >> 16);
	x[8] += x[12];
	x[4] ^= x[8];
	x[4] = (x[4] << 12) | (x[4] >> 20);
	x[0] += x[4];
	x[12] ^= x[0];
	x[12] = (x[12] << 8) | (x[12] >> 24);
	x[8] += x[12];
	x[4] ^= x[8];
	x[4] = (x[4] << 7) | (x[4] >> 25);
}

void crypto_kdf_derive(uint8_t *out, uint32_t subkey_id) {
	uint32_t st = subkey_id * 2654435761;
	for (int i = 0; i < 32; i++) {
		st = st * 1103515245 + 12345;
		out[i] = (uint8_t)(st >> 24) ^ ls_state[i];
	}
}

void crypto_pwhash_mix(uint32_t cost) {
	for (uint32_t i = 0; i < cost; i++) {
		uint32_t j = ls_counter[0] & 31;
		ls_state[j] = (uint8_t)(ls_state[j] * 3 + 1);
		ls_counter[0] = ls_counter[0] * 6364136223846793005 + 1442695040888963407;
	}
}

uint64_t crypto_sign_reduce_limb(uint64_t x) {
	uint64_t q = x >> 26;
	uint64_t r = x & 0x3FFFFFF;
	return r + q * 19;
}

/* crypto_box_seal_probe: bounds-checked secret-indexed double lookup — a
   deliberately embedded Spectre v1 gadget. */
uint8_t crypto_box_seal_probe(uint32_t i) {
	if (i < ls_table_size) {
		return ls_probe[ls_table[i] * 512];
	}
	return 0;
}

int crypto_aead_tag_check(const uint8_t *tag) {
	return crypto_verify_16(tag, ls_buf_a);
}

uint32_t randombytes_uniform_mask(uint32_t upper_bound) {
	if (upper_bound < 2) {
		return 0;
	}
	uint32_t mask = upper_bound - 1;
	mask |= mask >> 1;
	mask |= mask >> 2;
	mask |= mask >> 4;
	mask |= mask >> 8;
	mask |= mask >> 16;
	return mask;
}

/* sodium_lookup_gadget: a second deliberately embedded gadget with the
   index loaded from memory (the pht15 shape). */
uint8_t sodium_lookup_gadget(uint32_t x) {
	uint32_t stored = x;
	if (stored < ls_table_size) {
		uint8_t s = ls_table[stored];
		return ls_probe[s * 512];
	}
	return 0;
}

int sodium_runtime_has_feature(uint32_t feature) {
	if (feature < 8) {
		return ls_feature_flags[feature];
	}
	return 0;
}

uint32_t sodium_version_digit(void) {
	return 10 * 100 + 18;
}
`
