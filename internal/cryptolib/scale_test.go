package cryptolib

import (
	"testing"
	"time"

	"lcm/internal/core"
	"lcm/internal/detect"
)

// cryptoCfg mirrors the paper's crypto-library configuration: search for
// universal transmitters only (§6.2: "For crypto-libraries, Clou looks for
// UDTs and UCTs only").
func cryptoCfg(e detect.Engine) detect.Config {
	var cfg detect.Config
	if e == detect.PHT {
		cfg = detect.DefaultPHT()
	} else {
		cfg = detect.DefaultSTL()
	}
	cfg.Transmitters = []core.Class{core.UDT, core.UCT}
	cfg.Timeout = 30 * time.Second
	return cfg
}

func TestScaleCryptoFunctions(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	for _, nm := range []struct {
		lib, fn string
		e       detect.Engine
	}{
		{"donna", "crypto_scalarmult", detect.PHT},
		{"donna", "crypto_scalarmult", detect.STL},
		{"secretbox", "crypto_secretbox_open", detect.PHT},
		{"secretbox", "crypto_secretbox_open", detect.STL},
		{"ssl3-digest", "ssl3_digest_record", detect.STL},
		{"mee-cbc", "mee_cbc_decrypt", detect.STL},
		{"openssl", "SSL_get_shared_sigalgs", detect.PHT},
	} {
		l, _ := Lookup(nm.lib)
		m := compileLib(t, l)
		start := time.Now()
		r, err := detect.AnalyzeFunc(m, nm.fn, cryptoCfg(nm.e))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s/%s [%v]: nodes=%d queries=%d findings=%d dur=%v timeout=%v",
			nm.lib, nm.fn, nm.e, r.NodeCount, r.Queries, len(r.Findings), time.Since(start), r.TimedOut)
	}
}
