package cryptolib

// SSL3Digest returns an ssl3-digest-style corpus entry: a SHA-1-style
// compression function, the SSLv3 MAC construction (inner/outer pads), and
// the record digest entry point with its length-dependent padding logic —
// the shape that makes ssl3-digest a rich Spectre target in Table 2.
func SSL3Digest() Library {
	return Library{
		Name:        "ssl3-digest",
		PublicFuncs: []string{"ssl3_digest_record"},
		Source:      ssl3Src,
	}
}

const ssl3Src = `
uint32_t sha_h[5];
uint32_t sha_w[80];
uint8_t md_block[64];
uint8_t md_out[20];
uint8_t mac_secret[20];
uint8_t rec_data[512];
uint32_t rec_len = 128;
uint8_t rec_pad_ok;

uint32_t sha_rotl(uint32_t x, uint32_t n) {
	return (x << n) | (x >> (32 - n));
}

void sha1_init(void) {
	sha_h[0] = 0x67452301;
	sha_h[1] = 0xEFCDAB89;
	sha_h[2] = 0x98BADCFE;
	sha_h[3] = 0x10325476;
	sha_h[4] = 0xC3D2E1F0;
}

void sha1_block(const uint8_t *p) {
	for (int i = 0; i < 16; i++) {
		uint32_t v = ((uint32_t)p[i * 4]) << 24;
		v |= ((uint32_t)p[i * 4 + 1]) << 16;
		v |= ((uint32_t)p[i * 4 + 2]) << 8;
		v |= (uint32_t)p[i * 4 + 3];
		sha_w[i] = v;
	}
	for (int i = 16; i < 80; i++) {
		sha_w[i] = sha_rotl(sha_w[i - 3] ^ sha_w[i - 8] ^ sha_w[i - 14] ^ sha_w[i - 16], 1);
	}
	uint32_t a = sha_h[0];
	uint32_t b = sha_h[1];
	uint32_t c = sha_h[2];
	uint32_t d = sha_h[3];
	uint32_t e = sha_h[4];
	for (int i = 0; i < 80; i++) {
		uint32_t f;
		uint32_t k;
		if (i < 20) {
			f = (b & c) | ((~b) & d);
			k = 0x5A827999;
		} else if (i < 40) {
			f = b ^ c ^ d;
			k = 0x6ED9EBA1;
		} else if (i < 60) {
			f = (b & c) | (b & d) | (c & d);
			k = 0x8F1BBCDC;
		} else {
			f = b ^ c ^ d;
			k = 0xCA62C1D6;
		}
		uint32_t tmp = sha_rotl(a, 5) + f + e + k + sha_w[i];
		e = d;
		d = c;
		c = b;
		b = sha_rotl(b, 30);
		a = tmp;
	}
	sha_h[0] += a;
	sha_h[1] += b;
	sha_h[2] += c;
	sha_h[3] += d;
	sha_h[4] += e;
}

void sha1_final(uint32_t total_len) {
	for (int i = 0; i < 64; i++) {
		md_block[i] = 0;
	}
	md_block[0] = 0x80;
	uint32_t bits = total_len * 8;
	md_block[60] = (uint8_t)(bits >> 24);
	md_block[61] = (uint8_t)(bits >> 16);
	md_block[62] = (uint8_t)(bits >> 8);
	md_block[63] = (uint8_t)bits;
	sha1_block(md_block);
	for (int i = 0; i < 5; i++) {
		md_out[i * 4] = (uint8_t)(sha_h[i] >> 24);
		md_out[i * 4 + 1] = (uint8_t)(sha_h[i] >> 16);
		md_out[i * 4 + 2] = (uint8_t)(sha_h[i] >> 8);
		md_out[i * 4 + 3] = (uint8_t)sha_h[i];
	}
}

void mac_pad(uint8_t pad_byte) {
	for (int i = 0; i < 64; i++) {
		md_block[i] = pad_byte;
	}
	for (int i = 0; i < 20; i++) {
		md_block[i] = mac_secret[i] ^ pad_byte;
	}
	sha1_block(md_block);
}

/* ssl3_digest_record: hash the record with the SSLv3 MAC construction.
   The padding length byte is attacker-controlled; the bounds check on it
   guards a table-indexed read — the PHT gadget Table 2 reports here. */
int ssl3_digest_record(uint32_t len, uint32_t pad) {
	if (len > 512) {
		return -1;
	}
	sha1_init();
	mac_pad(0x36);
	uint32_t blocks = len / 64;
	for (uint32_t b = 0; b < blocks; b++) {
		sha1_block(rec_data + b * 64);
	}
	if (pad < len) {
		/* Length-dependent final block selection (the Lucky13 shape). */
		uint8_t last = rec_data[len - pad - 1];
		rec_pad_ok = md_out[last % 20];
	}
	sha1_final(len);
	sha1_init();
	mac_pad(0x5c);
	for (int i = 0; i < 20; i++) {
		md_block[i] = md_out[i];
	}
	for (int i = 20; i < 64; i++) {
		md_block[i] = 0;
	}
	sha1_block(md_block);
	sha1_final(20);
	return 0;
}
`
