package cryptolib

import (
	"testing"

	"lcm/internal/core"
	"lcm/internal/detect"
	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func compileLib(t *testing.T, l Library) *ir.Module {
	t.Helper()
	f, err := minic.Parse(l.Source)
	if err != nil {
		t.Fatalf("%s: parse: %v", l.Name, err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatalf("%s: lower: %v", l.Name, err)
	}
	return m
}

func TestAllLibrariesCompile(t *testing.T) {
	for _, l := range All() {
		m := compileLib(t, l)
		for _, fn := range l.PublicFuncs {
			if f := m.Func(fn); f == nil || f.IsDecl() {
				t.Errorf("%s: public function %q missing", l.Name, fn)
			}
		}
		if l.LoC() < 20 {
			t.Errorf("%s: suspiciously small (%d LoC)", l.Name, l.LoC())
		}
	}
}

// TestTEARoundTrip interprets the mini-C TEA: decrypt(encrypt(v)) == v.
func TestTEARoundTrip(t *testing.T) {
	m := compileLib(t, TEA())
	ip := ir.NewInterp(m)
	vAddr, _ := ip.GlobalAddr("tea_v")
	kAddr, _ := ip.GlobalAddr("tea_k")
	orig := []uint32{0x01234567, 0x89ABCDEF}
	key := []uint32{1, 2, 3, 4}
	for i, x := range orig {
		ip.Mem.Store(vAddr+uint64(4*i), 4, uint64(x))
	}
	for i, x := range key {
		ip.Mem.Store(kAddr+uint64(4*i), 4, uint64(x))
	}
	if _, err := ip.Call("tea_encrypt"); err != nil {
		t.Fatal(err)
	}
	enc0 := uint32(ip.Mem.Load(vAddr, 4))
	if enc0 == orig[0] {
		t.Error("encryption did nothing")
	}
	if _, err := ip.Call("tea_decrypt"); err != nil {
		t.Fatal(err)
	}
	for i, want := range orig {
		if got := uint32(ip.Mem.Load(vAddr+uint64(4*i), 4)); got != want {
			t.Errorf("v[%d] = %#x, want %#x", i, got, want)
		}
	}
}

// salsaQuarterGo is the reference Salsa20 quarter-round.
func salsaQuarterGo(x *[16]uint32, a, b, c, d int) {
	rotl := func(v uint32, n uint) uint32 { return v<<n | v>>(32-n) }
	x[b] ^= rotl(x[a]+x[d], 7)
	x[c] ^= rotl(x[b]+x[a], 9)
	x[d] ^= rotl(x[c]+x[b], 13)
	x[a] ^= rotl(x[d]+x[c], 18)
}

func TestSalsaQuarterRoundDifferential(t *testing.T) {
	m := compileLib(t, Secretbox())
	ip := ir.NewInterp(m)
	blockAddr, _ := ip.GlobalAddr("sb_block")

	var ref [16]uint32
	seed := uint32(0xC0FFEE)
	for i := range ref {
		seed = seed*1664525 + 1013904223
		ref[i] = seed
		ip.Mem.Store(blockAddr+uint64(4*i), 4, uint64(seed))
	}
	// Apply one quarterround in both implementations.
	if _, err := ip.Call("salsa_quarterround", blockAddr, 0, 4, 8, 12); err != nil {
		t.Fatal(err)
	}
	salsaQuarterGo(&ref, 0, 4, 8, 12)
	for i := range ref {
		if got := uint32(ip.Mem.Load(blockAddr+uint64(4*i), 4)); got != ref[i] {
			t.Errorf("block[%d] = %#x, want %#x", i, got, ref[i])
		}
	}
}

func TestSecretboxOpenRejectsBadTag(t *testing.T) {
	m := compileLib(t, Secretbox())
	ip := ir.NewInterp(m)
	tagAddr, _ := ip.GlobalAddr("sb_tag")
	ip.Mem.Store(tagAddr, 4, 0xFFFFFFFF) // corrupt tag
	v, err := ip.Call("crypto_secretbox_open", 64)
	if err != nil {
		t.Fatal(err)
	}
	if int32(v) != -1 {
		t.Errorf("open = %d, want -1 (bad tag)", int32(v))
	}
}

func TestMEECBCRejectsBadPadding(t *testing.T) {
	m := compileLib(t, MEECBC())
	ip := ir.NewInterp(m)
	// Empty/garbage input decrypts to something with invalid padding with
	// overwhelming likelihood; odd lengths are rejected outright.
	if v, err := ip.Call("mee_cbc_decrypt", 33); err != nil || int32(v) != -1 {
		t.Errorf("odd length accepted: %d %v", int32(v), err)
	}
	if v, err := ip.Call("mee_cbc_decrypt", 1024); err != nil || int32(v) != -1 {
		t.Errorf("oversized length accepted: %d %v", int32(v), err)
	}
}

func TestListing1SharedSigalgs(t *testing.T) {
	// The paper's most severe uncovered vulnerability: Clou-pht must flag
	// SSL_get_shared_sigalgs with a universal transmitter.
	m := compileLib(t, OpenSSL())
	cfg := detect.DefaultPHT()
	r, err := detect.AnalyzeFunc(m, "SSL_get_shared_sigalgs", cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := r.Counts()
	if counts[core.UDT]+counts[core.UCT]+counts[core.DT] == 0 {
		t.Fatalf("Listing 1 gadget not detected; findings: %v", r.Findings)
	}
}

func TestLibsodiumKnownGadgetsDetected(t *testing.T) {
	lib := Libsodium()
	m := compileLib(t, lib)
	cfg := detect.DefaultPHT()
	for _, fn := range []string{"crypto_box_seal_probe", "sodium_lookup_gadget"} {
		r, err := detect.AnalyzeFunc(m, fn, cfg)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if r.Counts()[core.UDT] == 0 {
			t.Errorf("%s: embedded UDT gadget not found: %v", fn, r.Findings)
		}
	}
}

func TestConstantTimeHelpersClean(t *testing.T) {
	lib := Libsodium()
	m := compileLib(t, lib)
	cfg := detect.DefaultPHT()
	// The pure constant-time comparators take pointers and loop over them;
	// they have no secret-indexed accesses, so no universal transmitters.
	for _, fn := range []string{"crypto_verify_16", "crypto_verify_32", "sodium_memcmp"} {
		r, err := detect.AnalyzeFunc(m, fn, cfg)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if n := r.Counts()[core.UDT]; n != 0 {
			t.Errorf("%s: unexpected UDTs: %v", fn, r.Findings)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("tea"); !ok {
		t.Error("tea missing")
	}
	if _, ok := Lookup("nonesuch"); ok {
		t.Error("phantom library")
	}
	if len(All()) != 7 {
		t.Errorf("libraries = %d, want 7 (Table 2 rows)", len(All()))
	}
}

// TestDonnaLadderRuns interprets the full 255-iteration Montgomery ladder:
// a crash-freedom and determinism smoke test for the largest corpus entry.
func TestDonnaLadderRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("donna ladder in -short mode")
	}
	m := compileLib(t, Donna())
	run := func() []byte {
		ip := ir.NewInterp(m)
		ip.Budget = 500_000_000
		sAddr, _ := ip.GlobalAddr("dn_scalar")
		bAddr, _ := ip.GlobalAddr("dn_base")
		for i := 0; i < 32; i++ {
			ip.Mem.Store(sAddr+uint64(i), 1, uint64(i*7+1))
			ip.Mem.Store(bAddr+uint64(i), 1, uint64(9))
		}
		if _, err := ip.Call("crypto_scalarmult"); err != nil {
			t.Fatal(err)
		}
		oAddr, _ := ip.GlobalAddr("dn_out")
		out := make([]byte, 32)
		for i := range out {
			out[i] = byte(ip.Mem.Load(oAddr+uint64(i), 1))
		}
		return out
	}
	a, b := run(), run()
	nonzero := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ladder nondeterministic")
		}
		if a[i] != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("ladder produced all-zero output")
	}
}
