package cryptolib

// OpenSSL returns an openssl-like corpus entry containing the paper's
// flagship finding: the SSL_get_shared_sigalgs gadget of Listing 1, whose
// bounds-checked attacker index idx guards a speculative out-of-bounds
// pointer load that is then dereferenced, leaking the secret directly into
// the cache. The library adds sigalg lookup, record-length handling, and
// constant-time helpers typical of the codebase.
func OpenSSL() Library {
	return Library{
		Name: "openssl",
		PublicFuncs: []string{
			"SSL_get_shared_sigalgs", "tls1_lookup_sigalg", "ssl3_read_n",
			"CRYPTO_memcmp", "EVP_DigestUpdate_blocks", "tls_cbc_remove_padding",
			"OPENSSL_cleanse", "constant_time_select_probe",
		},
		KnownGadgets: []string{"SSL_get_shared_sigalgs", "tls_cbc_remove_padding"},
		// a and b are the secret operands of CRYPTO_memcmp (and of the
		// constant-time select probe); both are handled branch-free, so
		// the annotation is a quiet-under-lint fixture.
		SecretParams: []string{"a", "b"},
		Source:       opensslSrc,
	}
}

const opensslSrc = `
struct SIGALG_LOOKUP {
	int hash;
	int sig;
	int sigandhash;
	int sigalg;
};

struct SSL {
	struct SIGALG_LOOKUP *shared_sigalgs[32];
	uint32_t shared_sigalgslen;
	uint8_t rbuf[512];
	uint32_t rbuf_len;
};

struct SSL ssl_obj;
struct SIGALG_LOOKUP sigalg_table[16];
uint32_t sigalg_table_len = 16;
uint8_t oss_probe[131072];
uint8_t oss_temp;

/* Listing 1 (§6.2.3): the bounds check on idx can be bypassed
   speculatively; shared_sigalgs[idx] then loads an arbitrary secret which
   line "shsigalgs->hash" dereferences as a pointer — a universal data
   transmitter. */
int SSL_get_shared_sigalgs(struct SSL *s, int idx,
                           int *psign, int *phash, int *psignhash,
                           uint8_t *rsig, uint8_t *rhash) {
	struct SIGALG_LOOKUP *shsigalgs;
	if (idx < 0) {
		return 0;
	}
	if ((uint32_t)idx >= s->shared_sigalgslen) {
		return 0;
	}
	shsigalgs = s->shared_sigalgs[idx];
	if (phash != 0) {
		*phash = shsigalgs->hash;
	}
	if (psign != 0) {
		*psign = shsigalgs->sig;
	}
	if (psignhash != 0) {
		*psignhash = shsigalgs->sigandhash;
	}
	if (rsig != 0) {
		*rsig = (uint8_t)(shsigalgs->sigalg & 0xff);
	}
	if (rhash != 0) {
		*rhash = (uint8_t)((shsigalgs->sigalg >> 8) & 0xff);
	}
	return (int)s->shared_sigalgslen;
}

int tls1_lookup_sigalg(uint32_t sigalg) {
	for (uint32_t i = 0; i < sigalg_table_len; i++) {
		if ((uint32_t)sigalg_table[i].sigalg == sigalg) {
			return (int)i;
		}
	}
	return -1;
}

int ssl3_read_n(struct SSL *s, uint32_t n) {
	if (n > 512) {
		return -1;
	}
	if (s->rbuf_len < n) {
		return 0;
	}
	uint32_t sum = 0;
	for (uint32_t i = 0; i < n; i++) {
		sum += s->rbuf[i];
	}
	return (int)(sum & 0x7FFFFFFF);
}

int CRYPTO_memcmp(const uint8_t *a, const uint8_t *b, size_t len) {
	uint8_t x = 0;
	for (size_t i = 0; i < len; i++) {
		x |= a[i] ^ b[i];
	}
	return (int)x;
}

uint32_t evp_md_state[8];
void EVP_DigestUpdate_blocks(const uint8_t *data, uint32_t nblocks) {
	for (uint32_t b = 0; b < nblocks; b++) {
		uint32_t acc = evp_md_state[b & 7];
		for (int i = 0; i < 16; i++) {
			acc = (acc ^ data[b * 16 + i]) * 16777619;
		}
		evp_md_state[b & 7] = acc;
	}
}

/* tls_cbc_remove_padding: the pad byte is attacker-controlled and used
   (after a bounds check) to index the record — a Spectre gadget on top of
   the classical padding-oracle shape. */
int tls_cbc_remove_padding(struct SSL *s, uint32_t len) {
	if (len == 0 || len > 512) {
		return -1;
	}
	uint8_t pad = s->rbuf[len - 1];
	if ((uint32_t)pad + 1 > len) {
		return -1;
	}
	oss_temp &= oss_probe[s->rbuf[len - 1 - pad] * 512];
	return (int)(len - pad - 1);
}

void OPENSSL_cleanse(uint8_t *p, size_t len) {
	for (size_t i = 0; i < len; i++) {
		p[i] = 0;
	}
}

uint32_t constant_time_select_probe(uint32_t mask, uint32_t a, uint32_t b) {
	return (mask & a) | (~mask & b);
}
`
