package cryptolib

// TEA returns the Tiny Encryption Algorithm corpus entry (Wheeler &
// Needham), with both encrypt and decrypt directions — the paper's
// smallest library (2 public functions).
func TEA() Library {
	return Library{
		Name: "tea",
		PublicFuncs: []string{
			"tea_encrypt",
			"tea_decrypt",
		},
		Source: teaSrc,
	}
}

const teaSrc = `
uint32_t tea_v[2];
uint32_t tea_k[4];

void tea_encrypt(void) {
	uint32_t v0 = tea_v[0];
	uint32_t v1 = tea_v[1];
	uint32_t sum = 0;
	uint32_t delta = 0x9E3779B9;
	for (int i = 0; i < 32; i++) {
		sum += delta;
		v0 += ((v1 << 4) + tea_k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + tea_k[1]);
		v1 += ((v0 << 4) + tea_k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + tea_k[3]);
	}
	tea_v[0] = v0;
	tea_v[1] = v1;
}

void tea_decrypt(void) {
	uint32_t v0 = tea_v[0];
	uint32_t v1 = tea_v[1];
	uint32_t delta = 0x9E3779B9;
	uint32_t sum = delta << 5;
	for (int i = 0; i < 32; i++) {
		v1 -= ((v0 << 4) + tea_k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + tea_k[3]);
		v0 -= ((v1 << 4) + tea_k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + tea_k[1]);
		sum -= delta;
	}
	tea_v[0] = v0;
	tea_v[1] = v1;
}
`
