// Package cryptolib contains the crypto-library corpus of §6.2 rewritten
// in mini-C: tea, a curve25519-donna-style field/ladder implementation,
// a secretbox-style stream+MAC construction, ssl3-digest- and mee-cbc-style
// record processing (including the table-based cipher and padding checks
// that make them interesting targets), a libsodium-like utility library,
// and an openssl-like library containing the SSL_get_shared_sigalgs gadget
// of Listing 1. The findings hinge on code shape — bounds-checked table
// indexing, pointer loads behind branches, stack spills — which these
// sources reproduce at realistic function sizes.
package cryptolib

import (
	"strings"
)

// Library is one analyzable corpus entry.
type Library struct {
	Name   string
	Source string
	// PublicFuncs are the entry points Clou analyzes one by one (§5).
	PublicFuncs []string
	// KnownGadgets lists functions where the corpus intentionally embeds
	// a Spectre gadget (for harness validation).
	KnownGadgets []string
	// SecretParams names the parameters (across all of the library's
	// functions) that hold secret material — the corpus's own annotation
	// of what a constant-time lint should treat as tainted. Empty means
	// the library carries no annotation and lint drivers fall back to the
	// name heuristic.
	SecretParams []string
}

// LoC returns the static line count of the library source.
func (l Library) LoC() int {
	return len(strings.Split(strings.TrimSpace(l.Source), "\n"))
}

// All returns every corpus library in Table 2 order.
func All() []Library {
	return []Library{TEA(), Donna(), Secretbox(), SSL3Digest(), MEECBC(), Libsodium(), OpenSSL()}
}

// Lookup returns the library with the given name.
func Lookup(name string) (Library, bool) {
	for _, l := range All() {
		if l.Name == name {
			return l, true
		}
	}
	return Library{}, false
}
