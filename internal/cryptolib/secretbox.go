package cryptolib

// Secretbox returns a crypto_secretbox-style corpus entry: a Salsa20-style
// stream cipher core, a one-time MAC in the Poly1305 shape (accumulate,
// multiply, reduce), and the seal/open composition — mirroring the paper's
// secretbox row (1 public function over ~12 internal ones).
func Secretbox() Library {
	return Library{
		Name:        "secretbox",
		PublicFuncs: []string{"crypto_secretbox_open"},
		Source:      secretboxSrc,
	}
}

const secretboxSrc = `
uint8_t sb_key[32];
uint8_t sb_nonce[24];
uint8_t sb_cipher[192];
uint8_t sb_message[192];
uint8_t sb_tag[16];
uint32_t sb_len = 64;
uint32_t sb_block[16];
uint32_t sb_state[16];
uint8_t sb_stream[256];

uint32_t rotl32(uint32_t x, uint32_t n) {
	return (x << n) | (x >> (32 - n));
}

void salsa_quarterround(uint32_t *x, int a, int b, int c, int d) {
	x[b] ^= rotl32(x[a] + x[d], 7);
	x[c] ^= rotl32(x[b] + x[a], 9);
	x[d] ^= rotl32(x[c] + x[b], 13);
	x[a] ^= rotl32(x[d] + x[c], 18);
}

uint32_t load32(const uint8_t *p, uint32_t off) {
	uint32_t v = p[off];
	v |= ((uint32_t)p[off + 1]) << 8;
	v |= ((uint32_t)p[off + 2]) << 16;
	v |= ((uint32_t)p[off + 3]) << 24;
	return v;
}

void store32(uint8_t *p, uint32_t off, uint32_t v) {
	p[off] = (uint8_t)v;
	p[off + 1] = (uint8_t)(v >> 8);
	p[off + 2] = (uint8_t)(v >> 16);
	p[off + 3] = (uint8_t)(v >> 24);
}

void salsa_core(uint32_t counter) {
	sb_state[0] = 0x61707865;
	sb_state[5] = 0x3320646e;
	sb_state[10] = 0x79622d32;
	sb_state[15] = 0x6b206574;
	for (int i = 0; i < 4; i++) {
		sb_state[1 + i] = load32(sb_key, i * 4);
		sb_state[11 + i] = load32(sb_key, 16 + i * 4);
	}
	sb_state[6] = load32(sb_nonce, 0);
	sb_state[7] = load32(sb_nonce, 4);
	sb_state[8] = counter;
	sb_state[9] = 0;
	for (int i = 0; i < 16; i++) {
		sb_block[i] = sb_state[i];
	}
	for (int round = 0; round < 20; round += 2) {
		salsa_quarterround(sb_block, 0, 4, 8, 12);
		salsa_quarterround(sb_block, 5, 9, 13, 1);
		salsa_quarterround(sb_block, 10, 14, 2, 6);
		salsa_quarterround(sb_block, 15, 3, 7, 11);
		salsa_quarterround(sb_block, 0, 1, 2, 3);
		salsa_quarterround(sb_block, 5, 6, 7, 4);
		salsa_quarterround(sb_block, 10, 11, 8, 9);
		salsa_quarterround(sb_block, 15, 12, 13, 14);
	}
	for (int i = 0; i < 16; i++) {
		sb_block[i] += sb_state[i];
	}
}

void stream_expand(uint32_t nblocks) {
	for (uint32_t b = 0; b < nblocks; b++) {
		salsa_core(b);
		for (int i = 0; i < 16; i++) {
			store32(sb_stream, b * 64 + i * 4, sb_block[i]);
		}
	}
}

uint64_t poly_r0;
uint64_t poly_r1;
uint64_t poly_h0;
uint64_t poly_h1;

void poly_init(void) {
	poly_r0 = load32(sb_stream, 0) & 0x0FFFFFFF;
	poly_r1 = load32(sb_stream, 4) & 0x0FFFFFFC;
	poly_h0 = 0;
	poly_h1 = 0;
}

void poly_block(const uint8_t *m, uint32_t off) {
	uint64_t c0 = load32(m, off);
	uint64_t c1 = load32(m, off + 4);
	poly_h0 += c0;
	poly_h1 += c1;
	uint64_t t0 = poly_h0 * poly_r0 + poly_h1 * (poly_r1 * 5);
	uint64_t t1 = poly_h0 * poly_r1 + poly_h1 * poly_r0;
	poly_h0 = t0 & 0x3FFFFFF;
	poly_h1 = (t1 + (t0 >> 26)) & 0x3FFFFFF;
}

void poly_mac(uint8_t *out, const uint8_t *m, uint32_t len) {
	poly_init();
	for (uint32_t off = 0; off + 8 <= len; off += 8) {
		poly_block(m, off);
	}
	store32(out, 0, (uint32_t)poly_h0);
	store32(out, 4, (uint32_t)poly_h1);
	store32(out, 8, (uint32_t)(poly_h0 >> 32));
	store32(out, 12, (uint32_t)(poly_h1 >> 32));
}

int verify_16(const uint8_t *x, const uint8_t *y) {
	uint32_t d = 0;
	for (int i = 0; i < 16; i++) {
		d |= x[i] ^ y[i];
	}
	return (1 & ((d - 1) >> 8)) - 1;
}

void stream_xor(uint8_t *dst, const uint8_t *src, uint32_t len) {
	for (uint32_t i = 0; i < len; i++) {
		dst[i] = src[i] ^ sb_stream[32 + i];
	}
}

int crypto_secretbox_open(uint32_t clen) {
	if (clen > 192) {
		return -1;
	}
	stream_expand((clen + 95) / 64);
	uint8_t mac[16];
	poly_mac(mac, sb_cipher, clen);
	if (verify_16(mac, sb_tag) != 0) {
		return -1;
	}
	stream_xor(sb_message, sb_cipher, clen);
	return 0;
}
`
