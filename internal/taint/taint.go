// Package taint computes attacker control over A-CFG values, Clou's filter
// for universal transmitter candidates (§5.3): all top-level function
// inputs and all non-pointer data in memory are initially assumed
// attacker-controlled; pointers stored in memory are not (the addr_gep
// assumption of §5.2 — base pointers are trusted architecturally).
package taint

import (
	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/ir"
)

// Analysis holds per-node attacker-control facts.
type Analysis struct {
	g *acfg.Graph
	a *alias.Analysis
	// controlled[n] reports the node's result value may be steered by the
	// attacker.
	controlled map[int]bool
}

// Analyze runs the taint fixpoint.
func Analyze(g *acfg.Graph, a *alias.Analysis) *Analysis {
	t := &Analysis{g: g, a: a, controlled: make(map[int]bool)}
	// allocaTaint: stack slots whose contents may be attacker-controlled.
	allocaTaint := map[int]bool{}

	// Map each load/store to its single alloca if any (spill slots).
	slotOf := func(n *acfg.Node) (int, bool) {
		return t.a.SameAlloca(n, n)
	}

	for changed := true; changed; {
		changed = false
		for _, id := range g.Topo() {
			n := g.Nodes[id]
			if n.Kind == acfg.NHavoc {
				if !t.controlled[id] {
					t.controlled[id] = true
					changed = true
				}
				continue
			}
			if n.Kind != acfg.NInstr || n.Instr == nil {
				continue
			}
			var v bool
			switch n.Instr.Op {
			case ir.OpLoad:
				if slot, ok := slotOf(n); ok {
					v = allocaTaint[slot]
				} else {
					// Non-stack memory: non-pointer data is attacker-
					// controlled; pointers are not.
					v = !ir.IsPtr(n.Instr.Ty)
				}
			case ir.OpStore:
				if slot, ok := slotOf(n); ok {
					if t.operand(n, 0) && !allocaTaint[slot] {
						allocaTaint[slot] = true
						changed = true
					}
				}
				continue
			case ir.OpBin, ir.OpCmp, ir.OpCast, ir.OpGEP, ir.OpFieldGEP:
				for i := range n.Instr.Args {
					if t.operand(n, i) {
						v = true
					}
				}
			case ir.OpCall:
				v = true // undefined call results are attacker-influenced
			default:
				continue
			}
			if v && !t.controlled[id] {
				t.controlled[id] = true
				changed = true
			}
		}
	}
	return t
}

// operand reports whether operand i of node n carries attacker control.
func (t *Analysis) operand(n *acfg.Node, i int) bool {
	switch n.Instr.Args[i].(type) {
	case *ir.Param:
		return true // top-level function inputs are attacker-controlled
	case *ir.Const, *ir.Global:
		return false
	}
	if i < len(n.ArgDefs) {
		for _, d := range n.ArgDefs[i] {
			if t.controlled[d] {
				return true
			}
		}
	}
	return false
}

// Controlled reports whether node n's result may be attacker-controlled.
func (t *Analysis) Controlled(n int) bool { return t.controlled[n] }

// AddressControlled reports whether the address operand of a memory access
// node is attacker-steerable.
func (t *Analysis) AddressControlled(n *acfg.Node) bool {
	idx := -1
	switch {
	case n.IsLoad():
		idx = 0
	case n.IsStore():
		idx = 1
	default:
		return false
	}
	return t.operand(n, idx)
}
