package taint

import (
	"testing"

	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func analyze(t *testing.T, src, fn string) (*acfg.Graph, *Analysis) {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acfg.Build(m, fn, acfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g, Analyze(g, alias.Analyze(g))
}

func TestParamsAreControlled(t *testing.T) {
	g, ta := analyze(t, `
		int A[16];
		int f(int y) { return A[y]; }
	`, "f")
	// The load of A[y] has an attacker-controlled address (y is a
	// top-level input flowing through its spill slot).
	found := false
	for _, n := range g.Nodes {
		if n.IsLoad() {
			if gep, ok := n.Instr.Args[0].(interface{ ValueName() string }); ok {
				_ = gep
			}
			if ta.AddressControlled(n) {
				found = true
			}
		}
	}
	if !found {
		t.Error("no load with attacker-controlled address")
	}
}

func TestNonPointerMemoryControlled(t *testing.T) {
	g, ta := analyze(t, `
		int idx_global;
		int A[16];
		int f(void) { return A[idx_global]; }
	`, "f")
	found := false
	for _, n := range g.Nodes {
		if n.IsLoad() && ta.AddressControlled(n) {
			found = true
		}
	}
	if !found {
		t.Error("non-pointer memory should be attacker-controlled")
	}
}

func TestPointerMemoryNotControlled(t *testing.T) {
	g, ta := analyze(t, `
		int *ptr_global;
		int f(void) { return *ptr_global; }
	`, "f")
	// Dereferencing an architecturally-stored base pointer: the pointer
	// value itself is not attacker-controlled (§5.2's base-pointer
	// assumption).
	for _, n := range g.Nodes {
		if n.IsLoad() && n.Instr.Ty.String() == "i32" {
			if ta.AddressControlled(n) {
				t.Error("pointer-typed memory treated as attacker-controlled")
			}
		}
	}
}

func TestConstantsNotControlled(t *testing.T) {
	g, ta := analyze(t, `
		int A[16];
		int f(void) { return A[3]; }
	`, "f")
	for _, n := range g.Nodes {
		if n.IsLoad() && ta.AddressControlled(n) {
			t.Errorf("constant-indexed load flagged controlled: %v", n)
		}
	}
}

func TestTaintThroughArithmeticAndSpills(t *testing.T) {
	g, ta := analyze(t, `
		int A[4096];
		int f(int y) {
			int masked = (y * 3 + 1) & 4095;
			int copy = masked;
			return A[copy];
		}
	`, "f")
	found := false
	for _, n := range g.Nodes {
		if n.IsLoad() && ta.AddressControlled(n) {
			found = true
		}
	}
	if !found {
		t.Error("taint lost through arithmetic and spill chain")
	}
}

func TestHavocResultControlled(t *testing.T) {
	g, ta := analyze(t, `
		int external(int x);
		int A[16];
		int f(void) { return A[external(0)]; }
	`, "f")
	found := false
	for _, n := range g.Nodes {
		if n.IsLoad() && ta.AddressControlled(n) {
			found = true
		}
	}
	if !found {
		t.Error("havoc call result should be attacker-influenced")
	}
}
