package alias_test

// Differential oracle for the dense points-to rewrite: the fast indexed
// Analysis is pinned query-for-query against the retained map-based
// reference (AnalyzeRef) over the whole litmus corpus, every cryptolib
// function, and 200 seeded progen programs. Any divergence in MayAlias,
// MayAliasTransient, SameAlloca, or a PointsTo set is a bug in the dense
// implementation by definition — ref.go's semantics are frozen.

import (
	"sort"
	"testing"

	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/cryptolib"
	"lcm/internal/ir"
	"lcm/internal/litmus"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/progen"
)

// lowerSrc parses and lowers one mini-C source, or fails the test.
func lowerSrc(t *testing.T, label, src string) *ir.Module {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	m, err := lower.Module(file)
	if err != nil {
		t.Fatalf("%s: lower: %v", label, err)
	}
	return m
}

// locLess orders Locs for set comparison.
func locLess(a, b alias.Loc) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Global < b.Global
}

// addrOperand mirrors the analysis's address-operand convention.
func addrOperand(n *acfg.Node) int {
	switch {
	case n.IsLoad():
		return 0
	case n.IsStore():
		return 1
	}
	return -1
}

// diffFunc checks every alias query of one function against the reference.
func diffFunc(t *testing.T, label string, m *ir.Module, fn string) {
	t.Helper()
	g, err := acfg.Build(m, fn, acfg.Options{})
	if err != nil {
		t.Fatalf("%s/%s: acfg: %v", label, fn, err)
	}
	dense := alias.Analyze(g)
	ref := alias.AnalyzeRef(g)

	var mems []*acfg.Node
	for _, n := range g.Nodes {
		if n.IsLoad() || n.IsStore() || n.Kind == acfg.NHavoc {
			mems = append(mems, n)
		}
	}

	// Points-to sets of every resolvable address operand.
	for _, n := range mems {
		i := addrOperand(n)
		if i < 0 {
			continue
		}
		got := dense.PointsTo(n, i)
		want := ref.PointsTo(n, i)
		if len(got) != len(want) {
			t.Fatalf("%s/%s: node %d: PointsTo size %d, reference %d (%v)",
				label, fn, n.ID, len(got), len(want), got)
		}
		sort.Slice(got, func(a, b int) bool { return locLess(got[a], got[b]) })
		for _, l := range got {
			if !want[l] {
				t.Fatalf("%s/%s: node %d: PointsTo has %+v, reference does not", label, fn, n.ID, l)
			}
		}
	}

	// Pairwise alias verdicts, including self-pairs and havoc nodes. The
	// reference resolves two map-based points-to sets per query, so full
	// n² on the biggest cryptolib functions costs minutes; past 256 nodes
	// both dimensions are stride-sampled (deterministically) instead —
	// PointsTo above already compared every node's set exhaustively, and
	// the pair predicates are pure functions of those sets plus the masks
	// the sample still exercises.
	step := 1
	if len(mems) > 256 {
		step = (len(mems) + 255) / 256
	}
	sample := func() []*acfg.Node {
		if step == 1 {
			return mems
		}
		var out []*acfg.Node
		for i := 0; i < len(mems); i += step {
			out = append(out, mems[i])
		}
		return out
	}()
	for _, a := range sample {
		for _, b := range sample {
			if got, want := dense.MayAlias(a, b), ref.MayAlias(a, b); got != want {
				t.Fatalf("%s/%s: MayAlias(%d,%d) = %v, reference %v", label, fn, a.ID, b.ID, got, want)
			}
			if got, want := dense.MayAliasTransient(a, b), ref.MayAliasTransient(a, b); got != want {
				t.Fatalf("%s/%s: MayAliasTransient(%d,%d) = %v, reference %v", label, fn, a.ID, b.ID, got, want)
			}
			gotN, gotOK := dense.SameAlloca(a, b)
			wantN, wantOK := ref.SameAlloca(a, b)
			if gotOK != wantOK || (gotOK && gotN != wantN) {
				t.Fatalf("%s/%s: SameAlloca(%d,%d) = (%d,%v), reference (%d,%v)",
					label, fn, a.ID, b.ID, gotN, gotOK, wantN, wantOK)
			}
		}
	}
}

// diffModule runs diffFunc over every defined function.
func diffModule(t *testing.T, label string, m *ir.Module) {
	t.Helper()
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		diffFunc(t, label, m, f.Nm)
	}
}

func TestDenseMatchesReferenceLitmus(t *testing.T) {
	for _, c := range litmus.All() {
		m := lowerSrc(t, c.Name, c.Source)
		diffModule(t, "litmus/"+c.Name, m)
	}
}

func TestDenseMatchesReferenceCryptolib(t *testing.T) {
	if testing.Short() {
		t.Skip("cryptolib differential sweep in -short mode")
	}
	for _, lib := range cryptolib.All() {
		m := lowerSrc(t, lib.Name, lib.Source)
		diffModule(t, "cryptolib/"+lib.Name, m)
	}
}

func TestDenseMatchesReferenceProgen(t *testing.T) {
	const n = 200
	progs, err := progen.GenerateN(1, n)
	if err != nil {
		t.Fatalf("progen: %v", err)
	}
	if len(progs) != n {
		t.Fatalf("progen: got %d programs, want %d", len(progs), n)
	}
	for _, p := range progs {
		m := lowerSrc(t, p.Fn, p.Src)
		diffModule(t, "progen", m)
	}
}
