// Package alias implements the flow-insensitive may-alias analysis Clou
// applies to the S-AEG (§5.2): a points-to computation over abstract
// locations (stack allocations, globals, external/unknown), with the two
// S-AEG refinements the paper states — distinct stack allocations have
// distinct addresses, and alias facts are not trusted during transient
// execution.
//
// The analysis runs on dense indexed representations: abstract locations
// are interned into small ints at construction (external is id 0,
// followed by allocas and globals in first-appearance order), points-to
// and memory-contents sets are dataflow.BitSet words, and the fixpoint is
// a dirty-node worklist that provably evaluates the same node/state
// sequence as the naive round-robin reference (ref.go) with the no-op
// evaluations elided. Alias queries are answered from per-memory-node
// summaries precomputed once after the fixpoint, so MayAlias and friends
// are a few word operations instead of a fresh map resolution per call.
// All state is immutable after Analyze returns, so one Analysis may serve
// concurrent detector runs.
package alias

import (
	"math/bits"

	"lcm/internal/acfg"
	"lcm/internal/dataflow"
	"lcm/internal/ir"
)

// Loc is an abstract memory object.
type Loc struct {
	Kind LocKind
	// Node is the alloca's A-CFG node (LAlloca); Global the global's name.
	Node   int
	Global string
}

// LocKind classifies abstract locations.
type LocKind int

// Location kinds.
const (
	LAlloca LocKind = iota
	LGlobal
	LExternal // attacker-visible or unknown provenance
)

// extLoc is the interned id of the external location.
const extLoc = 0

// Analysis holds points-to results for one A-CFG.
type Analysis struct {
	g *acfg.Graph

	// locs is the interned location universe; locs[extLoc] is external.
	locs      []Loc
	words     int            // BitSet words per location set
	allocaLoc []int32        // alloca node ID → loc id (-1 otherwise)
	globalLoc map[string]int // global name → loc id

	// pts[n] is node n's points-to set (nil: not pointer-valued).
	pts []dataflow.BitSet
	// contents[l] is the set of pointer values stored into location l
	// (nil: nothing stored; never empty once allocated).
	contents []dataflow.BitSet

	globalMask dataflow.BitSet // bits of all global locs

	// sums[n] summarizes memory node n's resolved address (loads/stores).
	sums []memSummary

	// Fixpoint scratch, unused after Analyze returns.
	scratch     dataflow.BitSet
	addrScratch dataflow.BitSet
	loadersOf   [][]int32         // loc id → registered load nodes
	loaderSeen  []dataflow.BitSet // loc id → registration dedup
}

// memSummary answers the alias queries for one load/store without
// re-resolving its address: addr is the address points-to set, aliasMask
// the set of locations the address may collide with architecturally
// (addr itself, plus every global if external is present, plus external
// if any global is present), soleAlloca the unique alloca target when the
// address resolves to exactly one stack slot.
type memSummary struct {
	addr         dataflow.BitSet
	aliasMask    dataflow.BitSet
	soleAlloca   int32
	hasNonAlloca bool
	valid        bool
}

// Analyze computes points-to sets for every pointer-valued node.
func Analyze(g *acfg.Graph) *Analysis {
	a := &Analysis{g: g, globalLoc: map[string]int{}}
	a.intern()
	a.solve()
	a.summarize()
	a.scratch, a.addrScratch = nil, nil
	a.loadersOf, a.loaderSeen = nil, nil
	return a
}

// intern fixes the location universe upfront: the fixpoint only ever
// produces external, allocas present in the graph, and globals named by
// some operand, so every location can be assigned a dense id before any
// set is built.
func (a *Analysis) intern() {
	a.locs = append(a.locs, Loc{Kind: LExternal})
	a.allocaLoc = make([]int32, a.g.Len())
	for i := range a.allocaLoc {
		a.allocaLoc[i] = -1
	}
	for _, n := range a.g.Nodes {
		if n.Instr == nil {
			continue
		}
		if n.Kind == acfg.NInstr && n.Instr.Op == ir.OpAlloca {
			a.allocaLoc[n.ID] = int32(len(a.locs))
			a.locs = append(a.locs, Loc{Kind: LAlloca, Node: n.ID})
		}
		for _, arg := range n.Instr.Args {
			if gv, ok := arg.(*ir.Global); ok {
				if _, ok := a.globalLoc[gv.Nm]; !ok {
					a.globalLoc[gv.Nm] = len(a.locs)
					a.locs = append(a.locs, Loc{Kind: LGlobal, Global: gv.Nm})
				}
			}
		}
	}
	a.words = (len(a.locs) + 63) / 64
	a.globalMask = make(dataflow.BitSet, a.words)
	for nm := range a.globalLoc {
		a.globalMask.Set(a.globalLoc[nm])
	}
}

// solve runs the fixpoint. It simulates the reference round-robin
// iteration exactly — every sweep visits dirty nodes in ascending ID
// order, and a change at node i re-dirties a dependent d into the same
// sweep when d > i (the reference would see the new value later in the
// same pass) and into the next sweep otherwise — so eliding the evals
// whose inputs are unchanged (pure no-ops) yields the reference fixpoint
// even though the load rule is not monotone (a load's set gains external
// while a slot is empty and is replaced once contents arrive).
func (a *Analysis) solve() {
	n := a.g.Len()
	a.pts = make([]dataflow.BitSet, n)
	a.contents = make([]dataflow.BitSet, len(a.locs))
	a.scratch = make(dataflow.BitSet, a.words)
	a.addrScratch = make(dataflow.BitSet, a.words)
	a.loadersOf = make([][]int32, len(a.locs))
	a.loaderSeen = make([]dataflow.BitSet, len(a.locs))

	// deps[d] lists the nodes consuming d's value through some operand.
	deps := make([][]int32, n)
	for _, nd := range a.g.Nodes {
		if nd.Instr == nil {
			continue
		}
		for _, defs := range nd.ArgDefs {
			for _, d := range defs {
				deps[d] = append(deps[d], int32(nd.ID))
			}
		}
	}

	dirtyNow := dataflow.NewBitSet(n)
	dirtyNext := dataflow.NewBitSet(n)
	for id := 0; id < n; id++ {
		dirtyNow.Set(id)
	}
	cur := 0
	mark := func(d int) {
		if d > cur {
			dirtyNow.Set(d)
		} else {
			dirtyNext.Set(d)
		}
	}

	for {
		any := false
		for cur = 0; cur < n; cur++ {
			if !dirtyNow.Has(cur) {
				continue
			}
			dirtyNow.Clear(cur)
			nd := a.g.Nodes[cur]
			if nd.Kind != acfg.NInstr || nd.Instr == nil {
				continue
			}
			if a.eval(nd, a.scratch) {
				if p := a.pts[cur]; p == nil || !p.Equal(a.scratch) {
					if p == nil {
						a.pts[cur] = a.scratch.Clone()
					} else {
						copy(p, a.scratch)
					}
					for _, d := range deps[cur] {
						mark(int(d))
					}
				}
			}
			if nd.IsStore() && ir.IsPtr(nd.Instr.Args[0].Type()) {
				a.valuePts(nd, 0, a.scratch)
				a.valuePts(nd, 1, a.addrScratch)
				a.forEachLoc(a.addrScratch, func(l int) {
					if a.mergeContents(l, a.scratch) {
						for _, ld := range a.loadersOf[l] {
							mark(int(ld))
						}
					}
				})
			}
		}
		for w := range dirtyNext {
			if dirtyNext[w] != 0 {
				any = true
			}
		}
		if !any {
			return
		}
		dirtyNow, dirtyNext = dirtyNext, dirtyNow
	}
}

// eval computes the points-to set of a pointer-producing node into out,
// reporting false for nodes that produce no pointer value.
func (a *Analysis) eval(n *acfg.Node, out dataflow.BitSet) bool {
	in := n.Instr
	switch in.Op {
	case ir.OpAlloca:
		out.Reset()
		out.Set(int(a.allocaLoc[n.ID]))
		return true
	case ir.OpGEP, ir.OpFieldGEP:
		a.valuePts(n, 0, out)
		return true
	case ir.OpCast:
		if ir.IsPtr(in.Ty) {
			if in.Sub == "inttoptr" {
				out.Reset()
				out.Set(extLoc)
				return true
			}
			a.valuePts(n, 0, out)
			return true
		}
		return false
	case ir.OpLoad:
		if !ir.IsPtr(in.Ty) {
			return false
		}
		a.valuePts(n, 0, a.addrScratch)
		out.Reset()
		a.forEachLoc(a.addrScratch, func(l int) {
			if l == extLoc || a.locs[l].Kind == LGlobal {
				// Pointers loaded from globals or external memory have
				// unknown targets (the attacker does not control base
				// pointers architecturally, but their targets are
				// unconstrained).
				out.Set(extLoc)
				return
			}
			if c := a.contents[l]; c != nil {
				out.UnionInto(c)
			} else {
				out.Set(extLoc) // uninitialized slot
			}
			a.registerLoader(l, n.ID)
		})
		return true
	case ir.OpCall:
		if in.Ty != nil && ir.IsPtr(in.Ty) {
			out.Reset()
			out.Set(extLoc)
			return true
		}
		return false
	}
	return false
}

// registerLoader records that load node id observes location l's
// contents, so a later contents merge re-dirties it.
func (a *Analysis) registerLoader(l, id int) {
	seen := a.loaderSeen[l]
	if seen == nil {
		seen = dataflow.NewBitSet(a.g.Len())
		a.loaderSeen[l] = seen
	}
	if seen.Has(id) {
		return
	}
	seen.Set(id)
	a.loadersOf[l] = append(a.loadersOf[l], int32(id))
}

// valuePts resolves the points-to set of operand i of node n into out.
func (a *Analysis) valuePts(n *acfg.Node, i int, out dataflow.BitSet) {
	out.Reset()
	switch v := n.Instr.Args[i].(type) {
	case *ir.Global:
		out.Set(a.globalLoc[v.Nm])
		return
	case *ir.Const, *ir.Param:
		out.Set(extLoc)
		return
	}
	if i < len(n.ArgDefs) {
		for _, d := range n.ArgDefs[i] {
			if p := a.pts[d]; p != nil {
				out.UnionInto(p)
			}
		}
	}
	if out.Empty() {
		out.Set(extLoc)
	}
}

func (a *Analysis) mergeContents(l int, vals dataflow.BitSet) bool {
	c := a.contents[l]
	if c == nil {
		a.contents[l] = vals.Clone()
		return true
	}
	return c.UnionInto(vals)
}

// forEachLoc calls f with every location id set in s.
func (a *Analysis) forEachLoc(s dataflow.BitSet, f func(l int)) {
	for w, word := range s {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			f(w*64 + b)
			word &^= 1 << uint(b)
		}
	}
}

// summarize resolves every memory node's address points-to set once and
// precomputes the masks the alias queries need.
func (a *Analysis) summarize() {
	a.sums = make([]memSummary, a.g.Len())
	for _, n := range a.g.Nodes {
		i := pointerOperandIndex(n)
		if i < 0 {
			continue
		}
		addr := make(dataflow.BitSet, a.words)
		a.valuePts(n, i, addr)
		s := memSummary{addr: addr, soleAlloca: -1, valid: true}
		hasExt := addr.Has(extLoc)
		hasGlobal := addr.Intersects(a.globalMask)
		s.hasNonAlloca = hasExt || hasGlobal
		mask := addr.Clone()
		if hasExt {
			mask.UnionInto(a.globalMask) // external aliases every global
		}
		if hasGlobal {
			mask.Set(extLoc) // globals alias external
		}
		s.aliasMask = mask
		if sole, ok := soleBit(addr); ok && a.locs[sole].Kind == LAlloca {
			s.soleAlloca = int32(a.locs[sole].Node)
		}
		a.sums[n.ID] = s
	}
}

// soleBit returns the unique set bit's index when exactly one bit is set.
func soleBit(s dataflow.BitSet) (int, bool) {
	idx, count := -1, 0
	for w, word := range s {
		c := bits.OnesCount64(word)
		if c == 0 {
			continue
		}
		count += c
		if count > 1 {
			return -1, false
		}
		idx = w*64 + bits.TrailingZeros64(word)
	}
	return idx, count == 1
}

// PointsTo returns the points-to set of the pointer operand i of node n,
// in interning order (external first, then first appearance). The slice
// is freshly allocated; callers may reorder it.
func (a *Analysis) PointsTo(n *acfg.Node, i int) []Loc {
	out := make(dataflow.BitSet, a.words)
	a.valuePts(n, i, out)
	var ls []Loc
	a.forEachLoc(out, func(l int) { ls = append(ls, a.locs[l]) })
	return ls
}

// pointerOperandIndex returns the address operand index of a memory node.
func pointerOperandIndex(n *acfg.Node) int {
	switch {
	case n.IsLoad():
		return 0
	case n.IsStore():
		return 1
	}
	return -1
}

// MayAlias reports whether two memory access nodes may address the same
// location architecturally: their points-to sets intersect, where External
// aliases globals and other externals but never stack allocations, and
// distinct stack allocations never alias (§5.2).
func (a *Analysis) MayAlias(m, n *acfg.Node) bool {
	p, q := &a.sums[m.ID], &a.sums[n.ID]
	if !p.valid || !q.valid {
		return false
	}
	return p.aliasMask.Intersects(q.addr)
}

// MayAliasTransient is MayAlias without trusting resolution across
// globals: during transient execution alias facts do not hold (§5.2), so
// any two non-stack accesses may collide; distinct stack slots still have
// distinct addresses.
func (a *Analysis) MayAliasTransient(m, n *acfg.Node) bool {
	p, q := &a.sums[m.ID], &a.sums[n.ID]
	if !p.valid || !q.valid {
		return false
	}
	if p.hasNonAlloca && q.hasNonAlloca {
		return true
	}
	// Only a shared stack slot remains: external and globals never collide
	// with allocas, so intersect the addresses minus the non-alloca bits.
	for w := range p.addr {
		inter := p.addr[w] & q.addr[w]
		if w == 0 {
			inter &^= 1 // drop the external bit
		}
		inter &^= a.globalMask[w]
		if inter != 0 {
			return true
		}
	}
	return false
}

// SameAlloca reports whether both accesses certainly target the same
// single stack slot (used for store-to-load chains through spills).
func (a *Analysis) SameAlloca(m, n *acfg.Node) (int, bool) {
	p, q := &a.sums[m.ID], &a.sums[n.ID]
	if !p.valid || !q.valid || p.soleAlloca < 0 || p.soleAlloca != q.soleAlloca {
		return 0, false
	}
	return int(p.soleAlloca), true
}
