package alias

import (
	"testing"

	"lcm/internal/acfg"
	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func analyze(t *testing.T, src, fn string) (*acfg.Graph, *Analysis) {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	g, err := acfg.Build(m, fn, acfg.Options{})
	if err != nil {
		t.Fatalf("acfg: %v", err)
	}
	return g, Analyze(g)
}

// memNodes returns loads/stores in topo order.
func memNodes(g *acfg.Graph) []*acfg.Node {
	var out []*acfg.Node
	for _, id := range g.Topo() {
		n := g.Nodes[id]
		if n.IsLoad() || n.IsStore() {
			out = append(out, n)
		}
	}
	return out
}

func TestDistinctAllocasDontAlias(t *testing.T) {
	g, a := analyze(t, `
		int f(int x) {
			int u = x;
			int v = x;
			return u + v;
		}
	`, "f")
	// Find stores to u.addr and v.addr: they must not alias.
	var stores []*acfg.Node
	for _, n := range memNodes(g) {
		if n.IsStore() {
			stores = append(stores, n)
		}
	}
	if len(stores) < 3 { // x spill, u, v
		t.Fatalf("stores = %d", len(stores))
	}
	u, v := stores[1], stores[2]
	if a.MayAlias(u, v) {
		t.Error("distinct allocas alias")
	}
	if !a.MayAlias(u, u) {
		t.Error("alloca does not alias itself")
	}
}

func TestGlobalArrayIndexingMayAlias(t *testing.T) {
	g, a := analyze(t, `
		int A[8];
		int B[8];
		int f(int i, int j) { A[i] = 1; A[j] = 2; B[i] = 3; return 0; }
	`, "f")
	var arrStores []*acfg.Node
	for _, n := range memNodes(g) {
		if n.IsStore() {
			if _, isConst := n.Instr.Args[0].(*ir.Const); isConst {
				arrStores = append(arrStores, n)
			}
		}
	}
	if len(arrStores) != 3 {
		t.Fatalf("array stores = %d", len(arrStores))
	}
	if !a.MayAlias(arrStores[0], arrStores[1]) {
		t.Error("A[i] and A[j] should may-alias")
	}
	if a.MayAlias(arrStores[0], arrStores[2]) {
		t.Error("A[i] and B[i] should not alias architecturally")
	}
	// Transiently, alias facts are not trusted: A and B may collide.
	if !a.MayAliasTransient(arrStores[0], arrStores[2]) {
		t.Error("transient alias must not trust resolution")
	}
}

func TestPointerParamAliasesGlobals(t *testing.T) {
	g, a := analyze(t, `
		int G[4];
		void f(int *p, int i) { p[0] = 1; G[i] = 2; }
	`, "f")
	var stores []*acfg.Node
	for _, n := range memNodes(g) {
		if n.IsStore() {
			if _, isConst := n.Instr.Args[0].(*ir.Const); isConst {
				stores = append(stores, n)
			}
		}
	}
	if len(stores) != 2 {
		t.Fatalf("stores = %d", len(stores))
	}
	if !a.MayAlias(stores[0], stores[1]) {
		t.Error("external pointer must may-alias globals")
	}
}

func TestPointerParamDoesNotAliasStack(t *testing.T) {
	g, a := analyze(t, `
		void f(int *p) { int local = 0; *p = local; local = 1; }
	`, "f")
	var derefStore, localStore *acfg.Node
	for _, n := range memNodes(g) {
		if !n.IsStore() {
			continue
		}
		switch n.Instr.Args[1].(type) {
		case *ir.Instr:
			in := n.Instr.Args[1].(*ir.Instr)
			if in.Op == ir.OpAlloca {
				localStore = n
			} else {
				derefStore = n
			}
		}
	}
	if derefStore == nil || localStore == nil {
		t.Fatal("stores not found")
	}
	if a.MayAlias(derefStore, localStore) {
		t.Error("external pointer aliases a stack slot")
	}
	if a.MayAliasTransient(derefStore, localStore) {
		t.Error("even transiently, distinct stack slots keep distinct addresses")
	}
}

func TestSameAllocaSpillChain(t *testing.T) {
	g, a := analyze(t, `
		int f(int x) { int idx = x; return idx; }
	`, "f")
	// The store to idx.addr and the subsequent load must be recognized as
	// the same alloca (the spill/reload chain of §5.3's data.rf).
	var store, load *acfg.Node
	for _, n := range memNodes(g) {
		if n.IsStore() {
			if al, ok := n.Instr.Args[1].(*ir.Instr); ok && al.Op == ir.OpAlloca && al.Nm == "idx.addr" {
				store = n
			}
		}
		if n.IsLoad() {
			if al, ok := n.Instr.Args[0].(*ir.Instr); ok && al.Op == ir.OpAlloca && al.Nm == "idx.addr" {
				load = n
			}
		}
	}
	if store == nil || load == nil {
		t.Fatal("spill chain nodes not found")
	}
	if _, ok := a.SameAlloca(store, load); !ok {
		t.Error("spill store and reload not matched to the same alloca")
	}
}

func TestLoadedPointerIsExternal(t *testing.T) {
	g, a := analyze(t, `
		int *table[4];
		int G[4];
		void f(int i) { int *p = table[i]; p[0] = 1; G[0] = 2; }
	`, "f")
	var derefStore, gStore *acfg.Node
	for _, n := range memNodes(g) {
		if n.IsStore() {
			if c, ok := n.Instr.Args[0].(*ir.Const); ok {
				if c.Val == 1 {
					derefStore = n
				}
				if c.Val == 2 {
					gStore = n
				}
			}
		}
	}
	if derefStore == nil || gStore == nil {
		t.Fatal("stores not found")
	}
	// A pointer loaded from memory has unknown target: may alias G.
	if !a.MayAlias(derefStore, gStore) {
		t.Error("loaded pointer should may-alias globals")
	}
}
