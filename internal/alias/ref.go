package alias

import (
	"lcm/internal/acfg"
	"lcm/internal/ir"
)

// RefAnalysis is the retained map-based reference implementation of the
// points-to analysis: the exact round-robin fixpoint over map[Loc]bool
// sets that shipped before the dense indexed rewrite. It exists as the
// differential oracle the dense Analysis is pinned against (see
// diff_test.go) and is not used by any production path — keep its
// semantics frozen; a behavior change here redefines what "correct" means
// for the fast path.
type RefAnalysis struct {
	g *acfg.Graph
	// pts maps a pointer-producing node to its points-to set.
	pts map[int]map[Loc]bool
	// contents maps an abstract location to the pointer values (as
	// points-to sets) stored into it.
	contents map[Loc]map[Loc]bool
}

var external = Loc{Kind: LExternal}

// AnalyzeRef computes points-to sets with the reference fixpoint.
func AnalyzeRef(g *acfg.Graph) *RefAnalysis {
	a := &RefAnalysis{
		g:        g,
		pts:      make(map[int]map[Loc]bool),
		contents: make(map[Loc]map[Loc]bool),
	}
	// Iterate to fixpoint: node points-to sets depend on memory contents
	// which depend on stores of pointer values.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Kind != acfg.NInstr || n.Instr == nil {
				continue
			}
			set := a.eval(n)
			if set != nil && !eqSet(a.pts[n.ID], set) {
				a.pts[n.ID] = set
				changed = true
			}
			// Stores of pointer values update contents.
			if n.IsStore() && ir.IsPtr(n.Instr.Args[0].Type()) {
				vals := a.valuePts(n, 0)
				addrs := a.valuePts(n, 1)
				for l := range addrs {
					if a.mergeContents(l, vals) {
						changed = true
					}
				}
			}
		}
	}
	return a
}

// eval computes the points-to set of a pointer-producing node.
func (a *RefAnalysis) eval(n *acfg.Node) map[Loc]bool {
	in := n.Instr
	switch in.Op {
	case ir.OpAlloca:
		return set(Loc{Kind: LAlloca, Node: n.ID})
	case ir.OpGEP, ir.OpFieldGEP:
		return a.valuePts(n, 0)
	case ir.OpCast:
		if ir.IsPtr(in.Ty) {
			if in.Sub == "inttoptr" {
				return set(external)
			}
			return a.valuePts(n, 0)
		}
		return nil
	case ir.OpLoad:
		if !ir.IsPtr(in.Ty) {
			return nil
		}
		addrs := a.valuePts(n, 0)
		out := map[Loc]bool{}
		for l := range addrs {
			if l.Kind == LExternal || l.Kind == LGlobal {
				// Pointers loaded from globals or external memory have
				// unknown targets (the attacker does not control base
				// pointers architecturally, but their targets are
				// unconstrained).
				out[external] = true
				continue
			}
			for v := range a.contents[l] {
				out[v] = true
			}
			if len(a.contents[l]) == 0 {
				out[external] = true // uninitialized slot
			}
		}
		return out
	case ir.OpCall:
		if in.Ty != nil && ir.IsPtr(in.Ty) {
			return set(external)
		}
		return nil
	}
	return nil
}

// valuePts resolves the points-to set of operand i of node n.
func (a *RefAnalysis) valuePts(n *acfg.Node, i int) map[Loc]bool {
	v := n.Instr.Args[i]
	switch v := v.(type) {
	case *ir.Global:
		return set(Loc{Kind: LGlobal, Global: v.Nm})
	case *ir.Const:
		return set(external)
	case *ir.Param:
		return set(external)
	}
	out := map[Loc]bool{}
	if i < len(n.ArgDefs) {
		for _, d := range n.ArgDefs[i] {
			for l := range a.pts[d] {
				out[l] = true
			}
		}
	}
	if len(out) == 0 {
		out[external] = true
	}
	return out
}

// PointsTo returns the points-to set of the pointer operand i of node n.
func (a *RefAnalysis) PointsTo(n *acfg.Node, i int) map[Loc]bool {
	return a.valuePts(n, i)
}

// MayAlias reports whether two memory access nodes may address the same
// location architecturally: their points-to sets intersect, where External
// aliases globals and other externals but never stack allocations, and
// distinct stack allocations never alias (§5.2).
func (a *RefAnalysis) MayAlias(m, n *acfg.Node) bool {
	pi, qi := pointerOperandIndex(m), pointerOperandIndex(n)
	if pi < 0 || qi < 0 {
		return false
	}
	return locsMayAlias(a.valuePts(m, pi), a.valuePts(n, qi))
}

func locsMayAlias(p, q map[Loc]bool) bool {
	for lp := range p {
		for lq := range q {
			if locPairAlias(lp, lq) {
				return true
			}
		}
	}
	return false
}

func locPairAlias(a, b Loc) bool {
	if a.Kind == LAlloca || b.Kind == LAlloca {
		return a == b // distinct stack slots never alias, external never reaches the stack
	}
	if a.Kind == LExternal || b.Kind == LExternal {
		return true
	}
	return a == b // same global
}

// MayAliasTransient is MayAlias without trusting resolution across
// globals: during transient execution alias facts do not hold (§5.2), so
// any two non-stack accesses may collide; distinct stack slots still have
// distinct addresses.
func (a *RefAnalysis) MayAliasTransient(m, n *acfg.Node) bool {
	pi, qi := pointerOperandIndex(m), pointerOperandIndex(n)
	if pi < 0 || qi < 0 {
		return false
	}
	p, q := a.valuePts(m, pi), a.valuePts(n, qi)
	for lp := range p {
		for lq := range q {
			if lp.Kind == LAlloca || lq.Kind == LAlloca {
				if lp == lq {
					return true
				}
				continue
			}
			return true // globals/external: assume collision possible
		}
	}
	return false
}

// SameAlloca reports whether both accesses certainly target the same
// single stack slot (used for store-to-load chains through spills).
func (a *RefAnalysis) SameAlloca(m, n *acfg.Node) (int, bool) {
	pi, qi := pointerOperandIndex(m), pointerOperandIndex(n)
	if pi < 0 || qi < 0 {
		return 0, false
	}
	p, q := a.valuePts(m, pi), a.valuePts(n, qi)
	if len(p) != 1 || len(q) != 1 {
		return 0, false
	}
	var lp, lq Loc
	for l := range p {
		lp = l
	}
	for l := range q {
		lq = l
	}
	if lp.Kind == LAlloca && lp == lq {
		return lp.Node, true
	}
	return 0, false
}

func set(ls ...Loc) map[Loc]bool {
	m := make(map[Loc]bool, len(ls))
	for _, l := range ls {
		m[l] = true
	}
	return m
}

func eqSet(a, b map[Loc]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for l := range a {
		if !b[l] {
			return false
		}
	}
	return true
}

func (a *RefAnalysis) mergeContents(l Loc, vals map[Loc]bool) bool {
	c, ok := a.contents[l]
	if !ok {
		c = map[Loc]bool{}
		a.contents[l] = c
	}
	changed := false
	for v := range vals {
		if !c[v] {
			c[v] = true
			changed = true
		}
	}
	return changed
}
