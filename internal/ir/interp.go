package ir

import (
	"fmt"
)

// Memory is a sparse byte-addressable little-endian memory.
type Memory struct {
	bytes map[uint64]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{bytes: make(map[uint64]byte)} }

// Load reads size bytes at addr (little-endian).
func (m *Memory) Load(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.bytes[addr+uint64(i)]) << (8 * uint(i))
	}
	return v
}

// Store writes the low size bytes of v at addr.
func (m *Memory) Store(addr uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		m.bytes[addr+uint64(i)] = byte(v >> (8 * uint(i)))
	}
}

// Clone returns a deep copy (used for speculative checkpointing).
func (m *Memory) Clone() *Memory {
	c := NewMemory()
	for k, v := range m.bytes {
		c.bytes[k] = v
	}
	return c
}

// Tracer observes the dynamic execution of an interpreted function; the
// uarch package feeds these events to its cache and pipeline models.
type Tracer interface {
	OnLoad(in *Instr, addr uint64, size int, val uint64)
	OnStore(in *Instr, addr uint64, size int, val uint64)
	OnBranch(in *Instr, taken bool)
}

// Interp interprets IR modules. It allocates globals at stable addresses,
// runs functions with a bounded step budget, and models the handful of
// libc externals the corpus uses.
type Interp struct {
	M          *Module
	Mem        *Memory
	globalAddr map[string]uint64
	stackTop   uint64
	Budget     int64
	Trace      Tracer
}

// Addresses: globals from 1 MiB, stack from 256 MiB (growing down).
const (
	globalBase = 0x0010_0000
	stackBase  = 0x1000_0000
)

// NewInterp builds an interpreter, laying out and initializing globals.
func NewInterp(m *Module) *Interp {
	ip := &Interp{
		M:          m,
		Mem:        NewMemory(),
		globalAddr: make(map[string]uint64),
		stackTop:   stackBase,
		Budget:     5_000_000,
	}
	addr := uint64(globalBase)
	for _, g := range m.Globals {
		a := uint64(align(g.Elem))
		addr = (addr + a - 1) / a * a
		ip.globalAddr[g.Nm] = addr
		for i, b := range g.Init {
			ip.Mem.bytes[addr+uint64(i)] = b
		}
		addr += uint64(g.Elem.Size())
	}
	return ip
}

// GlobalAddr returns the runtime address of a global.
func (ip *Interp) GlobalAddr(name string) (uint64, bool) {
	a, ok := ip.globalAddr[name]
	return a, ok
}

// frame is one activation record.
type frame struct {
	fn   *Func
	vals map[*Instr]uint64
	args []uint64
	sp   uint64
}

// RunError reports interpretation failures.
type RunError struct{ Msg string }

func (e *RunError) Error() string { return "interp: " + e.Msg }

// Call runs the named function with the given arguments and returns its
// result.
func (ip *Interp) Call(name string, args ...uint64) (uint64, error) {
	f := ip.M.Func(name)
	if f == nil || f.IsDecl() {
		return ip.callBuiltin(name, args)
	}
	return ip.call(f, args)
}

func (ip *Interp) call(f *Func, args []uint64) (uint64, error) {
	if len(args) != len(f.Params) {
		return 0, &RunError{fmt.Sprintf("@%s: %d args, want %d", f.Nm, len(args), len(f.Params))}
	}
	fr := &frame{fn: f, vals: make(map[*Instr]uint64), args: args, sp: ip.stackTop}
	savedTop := ip.stackTop
	defer func() { ip.stackTop = savedTop }()

	blk := f.Entry()
	for {
		var next *Block
		for _, in := range blk.Instrs {
			ip.Budget--
			if ip.Budget < 0 {
				return 0, &RunError{"step budget exhausted (infinite loop?)"}
			}
			switch in.Op {
			case OpAlloca:
				size := uint64(in.AllocaElem.Size())
				a := uint64(align(in.AllocaElem))
				ip.stackTop -= size
				ip.stackTop &^= a - 1
				fr.vals[in] = ip.stackTop
			case OpLoad:
				addr := ip.eval(fr, in.Args[0])
				size := in.Ty.Size()
				v := ip.Mem.Load(addr, size)
				fr.vals[in] = v
				if ip.Trace != nil {
					ip.Trace.OnLoad(in, addr, size, v)
				}
			case OpStore:
				v := ip.eval(fr, in.Args[0])
				addr := ip.eval(fr, in.Args[1])
				size := in.Args[0].Type().Size()
				ip.Mem.Store(addr, size, v)
				if ip.Trace != nil {
					ip.Trace.OnStore(in, addr, size, v)
				}
			case OpGEP:
				base := ip.eval(fr, in.Args[0])
				idx := int64(signExtend(in.Args[1].Type(), ip.eval(fr, in.Args[1])))
				elem := Elem(in.Args[0].Type())
				fr.vals[in] = base + uint64(idx*int64(elem.Size()))
			case OpFieldGEP:
				base := ip.eval(fr, in.Args[0])
				st := Elem(in.Args[0].Type()).(*StructType)
				fld, _ := st.Field(in.Field)
				fr.vals[in] = base + uint64(fld.Offset)
			case OpBin:
				fr.vals[in] = truncTo(in.Ty, evalBin(in.Sub, in.Ty,
					ip.eval(fr, in.Args[0]), ip.eval(fr, in.Args[1])))
			case OpCmp:
				if evalCmp(in.Sub, in.Args[0].Type(), ip.eval(fr, in.Args[0]), ip.eval(fr, in.Args[1])) {
					fr.vals[in] = 1
				} else {
					fr.vals[in] = 0
				}
			case OpCast:
				fr.vals[in] = evalCast(in.Sub, in.Args[0].Type(), in.Ty, ip.eval(fr, in.Args[0]))
			case OpCall:
				args := make([]uint64, len(in.Args))
				for i, a := range in.Args {
					args[i] = ip.eval(fr, a)
				}
				v, err := ip.Call(in.Callee, args...)
				if err != nil {
					return 0, err
				}
				if in.Nm != "" {
					fr.vals[in] = truncTo(in.Ty, v)
				}
			case OpBr:
				next = in.Then
			case OpCondBr:
				cond := ip.eval(fr, in.Args[0])
				if cond != 0 {
					next = in.Then
				} else {
					next = in.Else
				}
				if ip.Trace != nil {
					ip.Trace.OnBranch(in, cond != 0)
				}
			case OpRet:
				if len(in.Args) == 1 {
					return ip.eval(fr, in.Args[0]), nil
				}
				return 0, nil
			case OpFence:
				// No semantic effect in the reference interpreter.
			case OpPhi:
				// The lowerer's memory-SSA discipline never emits phis, and
				// this block-at-a-time interpreter does not track the
				// predecessor edge a phi would need.
				return 0, &RunError{fmt.Sprintf("@%s: phi %s not supported by the reference interpreter", f.Nm, in)}
			}
		}
		if next == nil {
			return 0, &RunError{fmt.Sprintf("@%s: block %%%s fell through", f.Nm, blk.Nm)}
		}
		blk = next
	}
}

func (ip *Interp) eval(fr *frame, v Value) uint64 {
	switch v := v.(type) {
	case *Const:
		return v.Val
	case *Global:
		return ip.globalAddr[v.Nm]
	case *Param:
		return fr.args[v.Idx]
	case *Instr:
		return fr.vals[v]
	}
	panic(fmt.Sprintf("interp: unknown value %T", v))
}

func signExtend(ty Type, v uint64) uint64 {
	it, ok := ty.(IntType)
	if !ok || it.Unsigned || it.Bits == 64 {
		return v
	}
	shift := uint(64 - it.Bits)
	return uint64(int64(v<<shift) >> shift)
}

func evalBin(op string, ty Type, l, r uint64) uint64 {
	switch op {
	case "add":
		return l + r
	case "sub":
		return l - r
	case "mul":
		return l * r
	case "udiv":
		if r == 0 {
			return 0
		}
		return l / r
	case "sdiv":
		if r == 0 {
			return 0
		}
		return uint64(int64(signExtend(ty, l)) / int64(signExtend(ty, r)))
	case "urem":
		if r == 0 {
			return 0
		}
		return l % r
	case "srem":
		if r == 0 {
			return 0
		}
		return uint64(int64(signExtend(ty, l)) % int64(signExtend(ty, r)))
	case "and":
		return l & r
	case "or":
		return l | r
	case "xor":
		return l ^ r
	case "shl":
		return l << (r & 63)
	case "lshr":
		return l >> (r & 63)
	case "ashr":
		return uint64(int64(signExtend(ty, l)) >> (r & 63))
	}
	panic("interp: unknown binop " + op)
}

func evalCmp(pred string, ty Type, l, r uint64) bool {
	sl, sr := int64(signExtend(ty, l)), int64(signExtend(ty, r))
	switch pred {
	case "eq":
		return l == r
	case "ne":
		return l != r
	case "ult":
		return l < r
	case "ule":
		return l <= r
	case "ugt":
		return l > r
	case "uge":
		return l >= r
	case "slt":
		return sl < sr
	case "sle":
		return sl <= sr
	case "sgt":
		return sl > sr
	case "sge":
		return sl >= sr
	}
	panic("interp: unknown predicate " + pred)
}

func evalCast(kind string, from, to Type, v uint64) uint64 {
	switch kind {
	case "zext", "bitcast", "ptrtoint", "inttoptr":
		return truncTo(to, v)
	case "sext":
		return truncTo(to, signExtend(from, v))
	case "trunc":
		return truncTo(to, v)
	}
	panic("interp: unknown cast " + kind)
}

// callBuiltin models the libc externals the corpus uses. Unknown externals
// return 0 — matching Clou's havoc treatment of undefined calls (§5.1),
// which the A-CFG pass makes explicit before analysis.
func (ip *Interp) callBuiltin(name string, args []uint64) (uint64, error) {
	switch name {
	case "memcmp":
		a, b, n := args[0], args[1], args[2]
		for i := uint64(0); i < n; i++ {
			x, y := ip.Mem.Load(a+i, 1), ip.Mem.Load(b+i, 1)
			if x != y {
				if x < y {
					return uint64(^uint64(0)), nil // -1
				}
				return 1, nil
			}
		}
		return 0, nil
	case "memset":
		dst, c, n := args[0], args[1], args[2]
		for i := uint64(0); i < n; i++ {
			ip.Mem.Store(dst+i, 1, c)
		}
		return dst, nil
	case "memcpy", "memmove":
		dst, src, n := args[0], args[1], args[2]
		buf := make([]byte, n)
		for i := uint64(0); i < n; i++ {
			buf[i] = byte(ip.Mem.Load(src+i, 1))
		}
		for i := uint64(0); i < n; i++ {
			ip.Mem.Store(dst+uint64(i), 1, uint64(buf[i]))
		}
		return dst, nil
	case "strlen":
		p := args[0]
		n := uint64(0)
		for ip.Mem.Load(p+n, 1) != 0 {
			n++
			if n > 1<<20 {
				return 0, &RunError{"strlen runaway"}
			}
		}
		return n, nil
	}
	return 0, nil
}
