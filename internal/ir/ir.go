package ir

import (
	"fmt"
	"strings"
)

// Value is an SSA value: a constant, global, parameter, or instruction
// result.
type Value interface {
	Type() Type
	ValueName() string // rendering, e.g. "%t3", "@A", "42"
}

// Const is an integer constant.
type Const struct {
	Ty  Type
	Val uint64
}

// Type implements Value.
func (c *Const) Type() Type { return c.Ty }

// ValueName implements Value.
func (c *Const) ValueName() string { return fmt.Sprintf("%d", int64(c.Val)) }

// ConstInt builds an integer constant of the given type.
func ConstInt(ty Type, v uint64) *Const { return &Const{Ty: ty, Val: truncTo(ty, v)} }

func truncTo(ty Type, v uint64) uint64 {
	if it, ok := ty.(IntType); ok && it.Bits < 64 {
		return v & ((1 << uint(it.Bits)) - 1)
	}
	return v
}

// Global is a module-level variable; as a Value it denotes the address of
// its storage (type pointer-to-Elem).
type Global struct {
	Nm   string
	Elem Type
	// Init is the flattened byte image of the initializer (zero-filled to
	// Elem.Size() when shorter).
	Init []byte
	// Const marks read-only globals.
	Const bool
}

// Type implements Value.
func (g *Global) Type() Type { return Ptr(g.Elem) }

// ValueName implements Value.
func (g *Global) ValueName() string { return "@" + g.Nm }

// Param is a function parameter.
type Param struct {
	Nm  string
	Ty  Type
	Idx int
}

// Type implements Value.
func (p *Param) Type() Type { return p.Ty }

// ValueName implements Value.
func (p *Param) ValueName() string { return "%" + p.Nm }

// Op enumerates instruction opcodes.
type Op int

// Instruction opcodes.
const (
	OpAlloca Op = iota
	OpLoad
	OpStore
	OpGEP      // Args: [ptr, index]; addr = ptr + index * sizeof(elem)
	OpFieldGEP // Args: [ptr]; Field names a struct member
	OpBin      // Args: [l, r]; Sub is the operator
	OpCmp      // Args: [l, r]; Sub is the predicate (eq, ne, lt, le, gt, ge)
	OpCast     // Args: [x]; Sub ∈ {zext, sext, trunc, bitcast, ptrtoint, inttoptr}
	OpCall     // Args are call arguments; Callee names the function
	OpBr       // Then is the target
	OpCondBr   // Args: [cond]; Then/Else targets
	OpRet      // Args: [] or [value]
	OpFence    // Sub = "lfence": the speculation barrier Clou inserts (§6.1)
	// OpPhi selects Args[i] when control arrived from Incoming[i]. The
	// lowerer never emits phis (-O0 keeps locals in stack slots, so values
	// cross blocks only through memory); the op exists for passes that
	// build pruned or transformed IR, and the dataflow verifier checks its
	// arity against block predecessors.
	OpPhi
)

var opNames = map[Op]string{
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "gep",
	OpFieldGEP: "fieldgep", OpBin: "bin", OpCmp: "cmp", OpCast: "cast",
	OpCall: "call", OpBr: "br", OpCondBr: "condbr", OpRet: "ret",
	OpFence: "fence", OpPhi: "phi",
}

func (o Op) String() string { return opNames[o] }

// Instr is one instruction. Instructions with a non-void type are Values.
type Instr struct {
	Op     Op
	Nm     string // result name, e.g. "t3" (empty for void instructions)
	Ty     Type   // result type (alloca: pointer to the slot; load: elem)
	Args   []Value
	Sub    string // operator / predicate / cast kind / fence kind
	Field  string // OpFieldGEP member name
	Callee string // OpCall target
	Then   *Block // OpBr/OpCondBr
	Else   *Block // OpCondBr
	// AllocaElem is the slot type for OpAlloca (Ty is Ptr(AllocaElem)).
	AllocaElem Type
	// Incoming lists OpPhi's source block per argument (parallel to Args).
	Incoming []*Block
	// Line is the source line this instruction lowers from.
	Line int
	// Parent block, set when appended.
	Blk *Block
}

// Type implements Value.
func (in *Instr) Type() Type { return in.Ty }

// ValueName implements Value.
func (in *Instr) ValueName() string { return "%" + in.Nm }

// IsTerminator reports whether the instruction ends a block.
func (in *Instr) IsTerminator() bool {
	return in.Op == OpBr || in.Op == OpCondBr || in.Op == OpRet
}

// Block is a basic block.
type Block struct {
	Nm     string
	Instrs []*Instr
	Fn     *Func
}

// ValueName returns the block label.
func (b *Block) ValueName() string { return "%" + b.Nm }

// Terminator returns the block's final instruction, or nil if the block is
// not yet terminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.IsTerminator() {
		return last
	}
	return nil
}

// Succs returns the block's successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpBr:
		return []*Block{t.Then}
	case OpCondBr:
		return []*Block{t.Then, t.Else}
	}
	return nil
}

// Func is a function definition (Blocks empty for declarations).
type Func struct {
	Nm      string
	Params  []*Param
	Ret     Type
	Blocks  []*Block
	nextTmp int
}

// Entry returns the entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// IsDecl reports whether f is a declaration without a body.
func (f *Func) IsDecl() bool { return len(f.Blocks) == 0 }

// NewBlock appends a fresh block with the given name hint.
func (f *Func) NewBlock(hint string) *Block {
	b := &Block{Nm: fmt.Sprintf("%s%d", hint, len(f.Blocks)), Fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// tmp allocates a fresh temporary name.
func (f *Func) tmp() string {
	f.nextTmp++
	return fmt.Sprintf("t%d", f.nextTmp)
}

// Append adds an instruction to block b, naming its result if it has one.
func (f *Func) Append(b *Block, in *Instr) *Instr {
	if in.Ty != nil && in.Ty.Size() > 0 && in.Nm == "" {
		in.Nm = f.tmp()
	}
	in.Blk = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// Module is a translation unit.
type Module struct {
	Globals []*Global
	Funcs   []*Func
	Structs map[string]*StructType
}

// NewModule returns an empty module.
func NewModule() *Module {
	return &Module{Structs: make(map[string]*StructType)}
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Nm == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Nm == name {
			return g
		}
	}
	return nil
}

// String renders the module in an LLVM-like textual form.
func (m *Module) String() string {
	var sb strings.Builder
	for _, st := range sortedStructs(m.Structs) {
		fmt.Fprintf(&sb, "%%%s = type {", st.Name)
		for i, f := range st.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %s@%d", f.Ty, f.Name, f.Offset)
		}
		sb.WriteString("}\n")
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "@%s = global %s (%d bytes)\n", g.Nm, g.Elem, g.Elem.Size())
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

func sortedStructs(m map[string]*StructType) []*StructType {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sortStrings(names)
	out := make([]*StructType, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// String renders the function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "\nfunc @%s(", f.Nm)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %%%s", p.Ty, p.Nm)
	}
	fmt.Fprintf(&sb, ") %s {\n", f.Ret)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Nm)
		for _, in := range b.Instrs {
			sb.WriteString("  " + in.String() + "\n")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders the instruction.
func (in *Instr) String() string {
	args := make([]string, len(in.Args))
	for i, a := range in.Args {
		args[i] = a.ValueName()
	}
	lhs := ""
	if in.Nm != "" {
		lhs = "%" + in.Nm + " = "
	}
	switch in.Op {
	case OpAlloca:
		return fmt.Sprintf("%salloca %s", lhs, in.AllocaElem)
	case OpLoad:
		return fmt.Sprintf("%sload %s, %s", lhs, in.Ty, args[0])
	case OpStore:
		return fmt.Sprintf("store %s %s, %s", in.Args[0].Type(), args[0], args[1])
	case OpGEP:
		return fmt.Sprintf("%sgep %s, %s[%s]", lhs, in.Ty, args[0], args[1])
	case OpFieldGEP:
		return fmt.Sprintf("%sfieldgep %s, %s.%s", lhs, in.Ty, args[0], in.Field)
	case OpBin:
		return fmt.Sprintf("%s%s %s %s, %s", lhs, in.Sub, in.Ty, args[0], args[1])
	case OpCmp:
		return fmt.Sprintf("%scmp %s %s, %s", lhs, in.Sub, args[0], args[1])
	case OpCast:
		return fmt.Sprintf("%s%s %s to %s", lhs, in.Sub, args[0], in.Ty)
	case OpCall:
		return fmt.Sprintf("%scall @%s(%s)", lhs, in.Callee, strings.Join(args, ", "))
	case OpBr:
		return fmt.Sprintf("br %%%s", in.Then.Nm)
	case OpCondBr:
		return fmt.Sprintf("condbr %s, %%%s, %%%s", args[0], in.Then.Nm, in.Else.Nm)
	case OpRet:
		if len(args) == 0 {
			return "ret void"
		}
		return fmt.Sprintf("ret %s", args[0])
	case OpFence:
		return fmt.Sprintf("fence %s", in.Sub)
	case OpPhi:
		parts := make([]string, len(in.Args))
		for i, a := range args {
			blk := "?"
			if i < len(in.Incoming) && in.Incoming[i] != nil {
				blk = in.Incoming[i].Nm
			}
			parts[i] = fmt.Sprintf("[%s, %%%s]", a, blk)
		}
		return fmt.Sprintf("%sphi %s %s", lhs, in.Ty, strings.Join(parts, ", "))
	}
	return "???"
}
