// Package ir defines a typed, LLVM-flavored intermediate representation:
// functions of basic blocks, loads/stores/GEPs with explicit pointer
// provenance, and a reference interpreter. The lower package emits it in
// Clang-O0 style (every local in a stack slot), which is the program form
// Clou analyzes (§5): memory events, getelementptr address dependencies,
// and an explicit CFG.
package ir

import (
	"fmt"
	"strings"
)

// Type is an IR type.
type Type interface {
	Size() int // size in bytes
	String() string
}

// IntType is a fixed-width integer.
type IntType struct {
	Bits     int // 8, 16, 32, 64
	Unsigned bool
}

// Size implements Type.
func (t IntType) Size() int { return t.Bits / 8 }

func (t IntType) String() string {
	if t.Unsigned {
		return fmt.Sprintf("u%d", t.Bits)
	}
	return fmt.Sprintf("i%d", t.Bits)
}

// PtrType is a pointer to Elem.
type PtrType struct{ Elem Type }

// Size implements Type: pointers are 8 bytes.
func (t PtrType) Size() int      { return 8 }
func (t PtrType) String() string { return t.Elem.String() + "*" }

// ArrayType is a fixed-size array.
type ArrayType struct {
	Elem Type
	N    int
}

// Size implements Type.
func (t ArrayType) Size() int      { return t.Elem.Size() * t.N }
func (t ArrayType) String() string { return fmt.Sprintf("[%d x %s]", t.N, t.Elem) }

// StructField is one member of a StructType with its byte offset.
type StructField struct {
	Name   string
	Ty     Type
	Offset int
}

// StructType is a record type with naturally-aligned fields.
type StructType struct {
	Name   string
	Fields []StructField
	size   int
}

// NewStruct lays out fields with natural alignment and returns the type.
func NewStruct(name string, fields []StructField) *StructType {
	off := 0
	maxAlign := 1
	for i := range fields {
		a := align(fields[i].Ty)
		if a > maxAlign {
			maxAlign = a
		}
		off = roundUp(off, a)
		fields[i].Offset = off
		off += fields[i].Ty.Size()
	}
	return &StructType{Name: name, Fields: fields, size: roundUp(off, maxAlign)}
}

func align(t Type) int {
	switch t := t.(type) {
	case IntType:
		return t.Size()
	case PtrType:
		return 8
	case ArrayType:
		return align(t.Elem)
	case *StructType:
		a := 1
		for _, f := range t.Fields {
			if fa := align(f.Ty); fa > a {
				a = fa
			}
		}
		return a
	}
	return 1
}

func roundUp(x, a int) int {
	if a == 0 {
		return x
	}
	return (x + a - 1) / a * a
}

// Size implements Type.
func (t *StructType) Size() int      { return t.size }
func (t *StructType) String() string { return "%" + t.Name }

// Field returns the field with the given name.
func (t *StructType) Field(name string) (StructField, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return StructField{}, false
}

// VoidType is the absence of a value.
type VoidType struct{}

// Size implements Type.
func (VoidType) Size() int      { return 0 }
func (VoidType) String() string { return "void" }

// Common types.
var (
	I8   = IntType{Bits: 8}
	I16  = IntType{Bits: 16}
	I32  = IntType{Bits: 32}
	I64  = IntType{Bits: 64}
	U8   = IntType{Bits: 8, Unsigned: true}
	U16  = IntType{Bits: 16, Unsigned: true}
	U32  = IntType{Bits: 32, Unsigned: true}
	U64  = IntType{Bits: 64, Unsigned: true}
	Void = VoidType{}
)

// Ptr returns a pointer type to elem.
func Ptr(elem Type) PtrType { return PtrType{Elem: elem} }

// Elem returns the pointee of a pointer type, or nil.
func Elem(t Type) Type {
	if p, ok := t.(PtrType); ok {
		return p.Elem
	}
	return nil
}

// IsInt reports whether t is an integer type.
func IsInt(t Type) bool { _, ok := t.(IntType); return ok }

// IsPtr reports whether t is a pointer type.
func IsPtr(t Type) bool { _, ok := t.(PtrType); return ok }

// TypesEqual reports structural type equality.
func TypesEqual(a, b Type) bool {
	return a != nil && b != nil && a.String() == b.String() && !strings.Contains("", a.String())
}
