package ir

import (
	"strings"
	"testing"
)

// buildSumFunc constructs, without the frontend, a function computing
// a+b through stack slots — the -O0 shape — exercising alloca, store,
// load, binop, and ret.
func buildSumFunc() *Module {
	m := NewModule()
	f := &Func{Nm: "sum", Ret: I32}
	pa := &Param{Nm: "a", Ty: I32, Idx: 0}
	pb := &Param{Nm: "b", Ty: I32, Idx: 1}
	f.Params = []*Param{pa, pb}
	b := f.NewBlock("entry")
	sa := f.Append(b, &Instr{Op: OpAlloca, Ty: Ptr(I32), AllocaElem: I32})
	sb := f.Append(b, &Instr{Op: OpAlloca, Ty: Ptr(I32), AllocaElem: I32})
	f.Append(b, &Instr{Op: OpStore, Args: []Value{pa, sa}})
	f.Append(b, &Instr{Op: OpStore, Args: []Value{pb, sb}})
	la := f.Append(b, &Instr{Op: OpLoad, Ty: I32, Args: []Value{sa}})
	lb := f.Append(b, &Instr{Op: OpLoad, Ty: I32, Args: []Value{sb}})
	add := f.Append(b, &Instr{Op: OpBin, Sub: "add", Ty: I32, Args: []Value{la, lb}})
	f.Append(b, &Instr{Op: OpRet, Args: []Value{add}})
	m.Funcs = append(m.Funcs, f)
	return m
}

func TestInterpDirectIR(t *testing.T) {
	m := buildSumFunc()
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	ip := NewInterp(m)
	v, err := ip.Call("sum", 19, 23)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("sum = %d", v)
	}
}

func TestInterpControlFlowAndGEP(t *testing.T) {
	// max3: walk a 3-element global array with gep + condbr and return the
	// maximum.
	m := NewModule()
	g := &Global{Nm: "arr", Elem: ArrayType{Elem: I32, N: 3},
		Init: []byte{5, 0, 0, 0, 9, 0, 0, 0, 2, 0, 0, 0}}
	m.Globals = append(m.Globals, g)
	f := &Func{Nm: "max3", Ret: I32}
	m.Funcs = append(m.Funcs, f)
	// Values never cross blocks at -O0 (the verifier enforces it), so each
	// block re-loads what it needs through fresh geps.
	loadAt := func(b *Block, i int) *Instr {
		base := f.Append(b, &Instr{Op: OpCast, Sub: "bitcast", Ty: Ptr(I32), Args: []Value{g}})
		gp := f.Append(b, &Instr{Op: OpGEP, Ty: Ptr(I32),
			Args: []Value{base, ConstInt(I64, uint64(i))}})
		return f.Append(b, &Instr{Op: OpLoad, Ty: I32, Args: []Value{gp}})
	}
	entry := f.NewBlock("entry")
	t01 := f.NewBlock("t01")
	e01 := f.NewBlock("e01")
	t12 := f.NewBlock("t12")
	e12 := f.NewBlock("e12")
	c01 := f.Append(entry, &Instr{Op: OpCmp, Sub: "sgt", Ty: U8,
		Args: []Value{loadAt(entry, 0), loadAt(entry, 1)}})
	f.Append(entry, &Instr{Op: OpCondBr, Args: []Value{c01}, Then: t01, Else: e01})
	f.Append(t01, &Instr{Op: OpRet, Args: []Value{loadAt(t01, 0)}})
	c12 := f.Append(e01, &Instr{Op: OpCmp, Sub: "sgt", Ty: U8,
		Args: []Value{loadAt(e01, 1), loadAt(e01, 2)}})
	f.Append(e01, &Instr{Op: OpCondBr, Args: []Value{c12}, Then: t12, Else: e12})
	f.Append(t12, &Instr{Op: OpRet, Args: []Value{loadAt(t12, 1)}})
	f.Append(e12, &Instr{Op: OpRet, Args: []Value{loadAt(e12, 2)}})

	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	ip := NewInterp(m)
	v, err := ip.Call("max3")
	if err != nil {
		t.Fatal(err)
	}
	if v != 9 {
		t.Errorf("max3 = %d", v)
	}
}

func TestInterpFieldGEP(t *testing.T) {
	m := NewModule()
	st := NewStruct("P", []StructField{{Name: "x", Ty: I32}, {Name: "y", Ty: I64}})
	m.Structs["P"] = st
	g := &Global{Nm: "p", Elem: st}
	m.Globals = append(m.Globals, g)
	f := &Func{Nm: "gety", Ret: I64}
	m.Funcs = append(m.Funcs, f)
	b := f.NewBlock("entry")
	fp := f.Append(b, &Instr{Op: OpFieldGEP, Ty: Ptr(I64), Field: "y", Args: []Value{g}})
	ld := f.Append(b, &Instr{Op: OpLoad, Ty: I64, Args: []Value{fp}})
	f.Append(b, &Instr{Op: OpRet, Args: []Value{ld}})
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	ip := NewInterp(m)
	addr, _ := ip.GlobalAddr("p")
	fy, _ := st.Field("y")
	ip.Mem.Store(addr+uint64(fy.Offset), 8, 0xDEADBEEF)
	v, err := ip.Call("gety")
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Errorf("gety = %#x", v)
	}
}

func TestInterpBuiltinsDirect(t *testing.T) {
	m := NewModule()
	ip := NewInterp(m)
	// memset + memcmp + memcpy + strlen against raw memory.
	if _, err := ip.Call("memset", 0x5000, 7, 8); err != nil {
		t.Fatal(err)
	}
	if ip.Mem.Load(0x5003, 1) != 7 {
		t.Error("memset failed")
	}
	if _, err := ip.Call("memcpy", 0x6000, 0x5000, 8); err != nil {
		t.Fatal(err)
	}
	if v, _ := ip.Call("memcmp", 0x5000, 0x6000, 8); v != 0 {
		t.Errorf("memcmp equal = %d", v)
	}
	ip.Mem.Store(0x6004, 1, 9)
	if v, _ := ip.Call("memcmp", 0x5000, 0x6000, 8); v == 0 {
		t.Error("memcmp unequal = 0")
	}
	ip.Mem.Store(0x7000, 4, 0x00414243) // "CBA\0"
	if v, _ := ip.Call("strlen", 0x7000); v != 3 {
		t.Errorf("strlen = %d", v)
	}
	// Unknown extern returns 0.
	if v, _ := ip.Call("nonexistent", 1, 2, 3); v != 0 {
		t.Errorf("unknown extern = %d", v)
	}
}

func TestInterpTracer(t *testing.T) {
	m := buildSumFunc()
	ip := NewInterp(m)
	tr := &countingTracer{}
	ip.Trace = tr
	if _, err := ip.Call("sum", 1, 2); err != nil {
		t.Fatal(err)
	}
	if tr.loads != 2 || tr.stores != 2 {
		t.Errorf("tracer saw %d loads, %d stores", tr.loads, tr.stores)
	}
}

type countingTracer struct{ loads, stores, branches int }

func (c *countingTracer) OnLoad(*Instr, uint64, int, uint64)  { c.loads++ }
func (c *countingTracer) OnStore(*Instr, uint64, int, uint64) { c.stores++ }
func (c *countingTracer) OnBranch(*Instr, bool)               { c.branches++ }

func TestInterpArgumentMismatch(t *testing.T) {
	m := buildSumFunc()
	ip := NewInterp(m)
	if _, err := ip.Call("sum", 1); err == nil {
		t.Error("argument count mismatch accepted")
	}
	var re *RunError
	if _, err := ip.Call("sum", 1); err != nil {
		if !strings.Contains(err.Error(), "interp:") {
			t.Errorf("error format: %v", err)
		}
		_ = re
	}
}
