package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty   Type
		size int
		str  string
	}{
		{I8, 1, "i8"},
		{U16, 2, "u16"},
		{I32, 4, "i32"},
		{U64, 8, "u64"},
		{Ptr(I32), 8, "i32*"},
		{ArrayType{Elem: I32, N: 5}, 20, "[5 x i32]"},
		{Ptr(ArrayType{Elem: U8, N: 3}), 8, "[3 x u8]*"},
		{Void, 0, "void"},
	}
	for _, c := range cases {
		if c.ty.Size() != c.size {
			t.Errorf("%v size = %d, want %d", c.ty, c.ty.Size(), c.size)
		}
		if c.ty.String() != c.str {
			t.Errorf("String = %q, want %q", c.ty.String(), c.str)
		}
	}
}

func TestStructFieldLookup(t *testing.T) {
	st := NewStruct("S", []StructField{{Name: "a", Ty: I32}, {Name: "b", Ty: I64}})
	if f, ok := st.Field("b"); !ok || f.Offset != 8 {
		t.Errorf("field b = %+v, %v", f, ok)
	}
	if _, ok := st.Field("zzz"); ok {
		t.Error("phantom field")
	}
	if st.String() != "%S" {
		t.Errorf("String = %q", st.String())
	}
}

func TestMemoryLittleEndian(t *testing.T) {
	m := NewMemory()
	m.Store(100, 4, 0x11223344)
	if m.Load(100, 1) != 0x44 || m.Load(103, 1) != 0x11 {
		t.Error("not little-endian")
	}
	if m.Load(100, 4) != 0x11223344 {
		t.Error("roundtrip failed")
	}
	// Overlapping store.
	m.Store(102, 2, 0xAABB)
	if m.Load(100, 4) != 0xAABB3344 {
		t.Errorf("overlap = %#x", m.Load(100, 4))
	}
	c := m.Clone()
	c.Store(100, 1, 0xFF)
	if m.Load(100, 1) == 0xFF {
		t.Error("Clone aliases")
	}
}

// Property: memory store/load roundtrips for every width and value.
func TestQuickMemoryRoundtrip(t *testing.T) {
	m := NewMemory()
	check := func(addr uint32, size8 uint8, val uint64) bool {
		size := 1 + int(size8%8)
		a := uint64(addr)
		m.Store(a, size, val)
		want := val
		if size < 8 {
			want &= (1 << (8 * uint(size))) - 1
		}
		return m.Load(a, size) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: SignExtend followed by TruncTo is the identity on in-range
// values; EvalCast("sext") agrees with SignExtend.
func TestQuickSignExtendTrunc(t *testing.T) {
	check := func(v uint64, bits8 uint8) bool {
		bits := []int{8, 16, 32, 64}[bits8%4]
		ty := IntType{Bits: bits}
		tv := TruncTo(ty, v)
		se := SignExtend(ty, tv)
		if TruncTo(ty, se) != tv {
			return false
		}
		return EvalCast("sext", ty, I64, tv) == se
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEvalBinAgainstGo(t *testing.T) {
	ty := IntType{Bits: 32}
	cases := []struct {
		op   string
		l, r uint64
		want uint64
	}{
		{"add", 7, 9, 16},
		{"sub", 3, 5, 0xFFFFFFFFFFFFFFFE}, // truncation happens at op sites
		{"mul", 6, 7, 42},
		{"udiv", 42, 5, 8},
		{"sdiv", 0xFFFFFFF8, 2, uint64(0xFFFFFFFFFFFFFFFC)}, // -8/2 = -4
		{"urem", 42, 5, 2},
		{"and", 0b1100, 0b1010, 0b1000},
		{"or", 0b1100, 0b1010, 0b1110},
		{"xor", 0b1100, 0b1010, 0b0110},
		{"shl", 1, 4, 16},
		{"lshr", 256, 4, 16},
		{"ashr", 0xFFFFFFF0, 2, uint64(0xFFFFFFFFFFFFFFFC)},
		{"udiv", 1, 0, 0}, // division by zero is defined as 0 here
		{"srem", 1, 0, 0},
	}
	for _, c := range cases {
		if got := EvalBin(c.op, ty, c.l, c.r); got != c.want {
			t.Errorf("%s(%#x, %#x) = %#x, want %#x", c.op, c.l, c.r, got, c.want)
		}
	}
}

func TestEvalCmp(t *testing.T) {
	ty := IntType{Bits: 8}
	if !EvalCmp("slt", ty, 0xFF, 1) { // -1 < 1 signed
		t.Error("slt wrong")
	}
	if EvalCmp("ult", ty, 0xFF, 1) { // 255 < 1 unsigned is false
		t.Error("ult wrong")
	}
	if !EvalCmp("eq", ty, 5, 5) || EvalCmp("ne", ty, 5, 5) {
		t.Error("eq/ne wrong")
	}
	if !EvalCmp("uge", ty, 5, 5) || !EvalCmp("sle", ty, 5, 5) {
		t.Error("boundary comparisons wrong")
	}
}

func TestInstrStringForms(t *testing.T) {
	f := &Func{Nm: "f", Ret: Void}
	b := f.NewBlock("entry")
	al := f.Append(b, &Instr{Op: OpAlloca, Ty: Ptr(I32), AllocaElem: I32})
	ld := f.Append(b, &Instr{Op: OpLoad, Ty: I32, Args: []Value{al}})
	f.Append(b, &Instr{Op: OpStore, Args: []Value{ld, al}})
	f.Append(b, &Instr{Op: OpFence, Sub: "lfence"})
	f.Append(b, &Instr{Op: OpRet})
	s := f.String()
	for _, want := range []string{"alloca i32", "load i32", "store i32", "fence lfence", "ret void"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	if b.Terminator() == nil {
		t.Error("terminator missing")
	}
	if len(b.Succs()) != 0 {
		t.Error("ret should have no successors")
	}
}

func TestBlockSuccs(t *testing.T) {
	f := &Func{Nm: "f", Ret: Void}
	b0 := f.NewBlock("a")
	b1 := f.NewBlock("b")
	b2 := f.NewBlock("c")
	cond := f.Append(b0, &Instr{Op: OpCmp, Sub: "eq", Ty: U8,
		Args: []Value{ConstInt(I32, 1), ConstInt(I32, 1)}})
	f.Append(b0, &Instr{Op: OpCondBr, Args: []Value{cond}, Then: b1, Else: b2})
	f.Append(b1, &Instr{Op: OpBr, Then: b2})
	f.Append(b2, &Instr{Op: OpRet})
	if got := b0.Succs(); len(got) != 2 || got[0] != b1 || got[1] != b2 {
		t.Errorf("condbr succs wrong")
	}
	if got := b1.Succs(); len(got) != 1 || got[0] != b2 {
		t.Errorf("br succs wrong")
	}
}

func TestVerifyRejectsUseBeforeDef(t *testing.T) {
	m := NewModule()
	f := &Func{Nm: "f", Ret: I32}
	m.Funcs = append(m.Funcs, f)
	b := f.NewBlock("entry")
	// Use a value before defining it in the same block.
	var load Instr
	load = Instr{Op: OpLoad, Ty: I32}
	al := &Instr{Op: OpAlloca, Ty: Ptr(I32), AllocaElem: I32, Nm: "slot"}
	cast := &Instr{Op: OpCast, Sub: "zext", Ty: I64, Nm: "c", Args: []Value{&load}}
	load.Args = []Value{al}
	load.Nm = "l"
	f.Append(b, al)
	f.Append(b, cast) // uses load before it appears
	f.Append(b, &load)
	f.Append(b, &Instr{Op: OpRet, Args: []Value{&load}})
	if err := Verify(m); err == nil {
		t.Error("use-before-def accepted")
	}
}

func TestConstTruncation(t *testing.T) {
	c := ConstInt(U8, 0x1FF)
	if c.Val != 0xFF {
		t.Errorf("const not truncated: %#x", c.Val)
	}
	if c.ValueName() != "255" {
		t.Errorf("ValueName = %q", c.ValueName())
	}
}

func TestModuleLookups(t *testing.T) {
	m := NewModule()
	m.Globals = append(m.Globals, &Global{Nm: "g", Elem: I32})
	m.Funcs = append(m.Funcs, &Func{Nm: "f", Ret: Void})
	if m.Global("g") == nil || m.Global("x") != nil {
		t.Error("Global lookup wrong")
	}
	if m.Func("f") == nil || m.Func("x") != nil {
		t.Error("Func lookup wrong")
	}
	if g := m.Global("g"); g.Type().String() != "i32*" {
		t.Errorf("global value type = %v", g.Type())
	}
}
