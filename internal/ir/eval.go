package ir

// Exported arithmetic helpers shared with the uarch executor, so both
// interpreters agree bit-for-bit on operator semantics.

// EvalBin applies a binary operator (the Sub field of an OpBin).
func EvalBin(op string, ty Type, l, r uint64) uint64 { return evalBin(op, ty, l, r) }

// EvalCmp applies a comparison predicate (the Sub field of an OpCmp).
func EvalCmp(pred string, ty Type, l, r uint64) bool { return evalCmp(pred, ty, l, r) }

// EvalCast applies a cast (the Sub field of an OpCast).
func EvalCast(kind string, from, to Type, v uint64) uint64 { return evalCast(kind, from, to, v) }

// SignExtend sign-extends v from ty's width to 64 bits (identity for
// unsigned and 64-bit types).
func SignExtend(ty Type, v uint64) uint64 { return signExtend(ty, v) }

// TruncTo truncates v to ty's width.
func TruncTo(ty Type, v uint64) uint64 { return truncTo(ty, v) }
