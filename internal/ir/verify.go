package ir

import "fmt"

// Verify checks module well-formedness: every block terminated, operands
// defined before use (the -O0 discipline: non-alloca instruction results
// are consumed within their defining block; values cross blocks only
// through memory), and basic type agreement on memory operations.
func Verify(m *Module) error {
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		if err := verifyFunc(f); err != nil {
			return fmt.Errorf("func @%s: %w", f.Nm, err)
		}
	}
	return nil
}

func verifyFunc(f *Func) error {
	allocas := make(map[*Instr]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpAlloca {
				allocas[in] = true
			}
		}
	}
	for _, b := range f.Blocks {
		term := b.Terminator()
		if term == nil {
			return fmt.Errorf("block %%%s not terminated", b.Nm)
		}
		seen := make(map[*Instr]bool)
		for idx, in := range b.Instrs {
			if in.IsTerminator() && idx != len(b.Instrs)-1 {
				return fmt.Errorf("block %%%s: terminator %s not last", b.Nm, in)
			}
			for _, a := range in.Args {
				switch a := a.(type) {
				case *Const, *Global, *Param:
				case *Instr:
					if allocas[a] {
						continue
					}
					if !seen[a] {
						return fmt.Errorf("block %%%s: %s uses %%%s before definition in block", b.Nm, in, a.Nm)
					}
				default:
					return fmt.Errorf("block %%%s: %s has unknown operand kind %T", b.Nm, in, a)
				}
			}
			switch in.Op {
			case OpLoad:
				pt, ok := in.Args[0].Type().(PtrType)
				if !ok {
					return fmt.Errorf("load from non-pointer: %s", in)
				}
				if pt.Elem.Size() != in.Ty.Size() {
					return fmt.Errorf("load size mismatch: %s", in)
				}
			case OpStore:
				pt, ok := in.Args[1].Type().(PtrType)
				if !ok {
					return fmt.Errorf("store to non-pointer: %s", in)
				}
				if pt.Elem.Size() != in.Args[0].Type().Size() {
					return fmt.Errorf("store size mismatch: %s", in)
				}
			case OpGEP:
				if !IsPtr(in.Args[0].Type()) {
					return fmt.Errorf("gep of non-pointer: %s", in)
				}
				if !IsInt(in.Args[1].Type()) {
					return fmt.Errorf("gep index not integer: %s", in)
				}
			case OpFieldGEP:
				pt, ok := in.Args[0].Type().(PtrType)
				if !ok {
					return fmt.Errorf("fieldgep of non-pointer: %s", in)
				}
				st, ok := pt.Elem.(*StructType)
				if !ok {
					return fmt.Errorf("fieldgep of non-struct pointer: %s", in)
				}
				if _, ok := st.Field(in.Field); !ok {
					return fmt.Errorf("fieldgep of unknown field %q: %s", in.Field, in)
				}
			case OpCondBr:
				if in.Then == nil || in.Else == nil {
					return fmt.Errorf("condbr missing target: %s", in)
				}
			case OpBr:
				if in.Then == nil {
					return fmt.Errorf("br missing target: %s", in)
				}
			}
			if i, ok := interface{}(in).(*Instr); ok && !i.IsTerminator() {
				seen[in] = true
			}
		}
	}
	return nil
}
