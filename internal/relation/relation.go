package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Pair is an ordered pair (From, To) — one edge of a binary relation.
type Pair struct {
	From, To ID
}

// Relation is a finite binary relation represented as an adjacency map.
// The zero value is not usable; construct relations with New.
type Relation struct {
	succ map[ID]Set
	size int
}

// New returns an empty relation, optionally seeded with pairs.
func New(pairs ...Pair) *Relation {
	r := &Relation{succ: make(map[ID]Set)}
	for _, p := range pairs {
		r.Add(p.From, p.To)
	}
	return r
}

// FromEdges builds a relation from (from, to) edge tuples given as a flat
// list: FromEdges(a, b, c, d) relates a→b and c→d. It panics on an odd
// number of arguments; it is intended for tests and static tables.
func FromEdges(ids ...ID) *Relation {
	if len(ids)%2 != 0 {
		panic("relation.FromEdges: odd number of ids")
	}
	r := New()
	for i := 0; i < len(ids); i += 2 {
		r.Add(ids[i], ids[i+1])
	}
	return r
}

// Add inserts the pair (from, to). Adding an existing pair is a no-op.
func (r *Relation) Add(from, to ID) {
	s, ok := r.succ[from]
	if !ok {
		s = make(Set)
		r.succ[from] = s
	}
	if !s.Has(to) {
		s.Add(to)
		r.size++
	}
}

// Remove deletes the pair (from, to) if present.
func (r *Relation) Remove(from, to ID) {
	if s, ok := r.succ[from]; ok && s.Has(to) {
		delete(s, to)
		r.size--
		if len(s) == 0 {
			delete(r.succ, from)
		}
	}
}

// Has reports whether (from, to) is in the relation.
func (r *Relation) Has(from, to ID) bool {
	s, ok := r.succ[from]
	return ok && s.Has(to)
}

// Len returns the number of pairs in the relation.
func (r *Relation) Len() int { return r.size }

// IsEmpty reports whether the relation contains no pairs.
func (r *Relation) IsEmpty() bool { return r.size == 0 }

// Successors returns the image of from: all to with (from, to) ∈ r.
// The returned set is the relation's internal storage; callers must not
// mutate it.
func (r *Relation) Successors(from ID) Set { return r.succ[from] }

// Pairs returns all pairs sorted by (From, To). The slice is fresh.
func (r *Relation) Pairs() []Pair {
	ps := make([]Pair, 0, r.size)
	for from, tos := range r.succ {
		for to := range tos {
			ps = append(ps, Pair{from, to})
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].From != ps[j].From {
			return ps[i].From < ps[j].From
		}
		return ps[i].To < ps[j].To
	})
	return ps
}

// Domain returns the set of elements with at least one outgoing pair.
func (r *Relation) Domain() Set {
	s := make(Set, len(r.succ))
	for from := range r.succ {
		s.Add(from)
	}
	return s
}

// Range returns the set of elements with at least one incoming pair.
func (r *Relation) Range() Set {
	s := make(Set)
	for _, tos := range r.succ {
		for to := range tos {
			s.Add(to)
		}
	}
	return s
}

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	c := New()
	for from, tos := range r.succ {
		for to := range tos {
			c.Add(from, to)
		}
	}
	return c
}

// Union returns r ∪ others as a new relation.
func (r *Relation) Union(others ...*Relation) *Relation {
	u := r.Clone()
	for _, o := range others {
		for from, tos := range o.succ {
			for to := range tos {
				u.Add(from, to)
			}
		}
	}
	return u
}

// Union returns the union of all given relations as a new relation.
// Union() with no arguments returns the empty relation.
func Union(rs ...*Relation) *Relation {
	u := New()
	return u.Union(rs...)
}

// Inter returns r ∩ o as a new relation.
func (r *Relation) Inter(o *Relation) *Relation {
	u := New()
	for from, tos := range r.succ {
		for to := range tos {
			if o.Has(from, to) {
				u.Add(from, to)
			}
		}
	}
	return u
}

// Diff returns r \ o as a new relation.
func (r *Relation) Diff(o *Relation) *Relation {
	u := New()
	for from, tos := range r.succ {
		for to := range tos {
			if !o.Has(from, to) {
				u.Add(from, to)
			}
		}
	}
	return u
}

// Compose returns the relational join r.o = {(a, c) | ∃b. (a,b) ∈ r ∧ (b,c) ∈ o}.
func (r *Relation) Compose(o *Relation) *Relation {
	u := New()
	for a, bs := range r.succ {
		for b := range bs {
			for c := range o.succ[b] {
				u.Add(a, c)
			}
		}
	}
	return u
}

// Transpose returns ~r = {(b, a) | (a, b) ∈ r}.
func (r *Relation) Transpose() *Relation {
	u := New()
	for a, bs := range r.succ {
		for b := range bs {
			u.Add(b, a)
		}
	}
	return u
}

// TransitiveClosure returns r⁺ as a new relation.
func (r *Relation) TransitiveClosure() *Relation {
	u := r.Clone()
	// Per-source DFS over the original edges; for the small graphs LCM
	// analyses build this is cheaper than Floyd–Warshall on a sparse map.
	for src := range r.succ {
		seen := make(Set)
		stack := make([]ID, 0, len(r.succ[src]))
		//determlint:ignore DFS worklist; visit order cannot affect the closure (set semantics)
		for to := range r.succ[src] {
			stack = append(stack, to)
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen.Has(n) {
				continue
			}
			seen.Add(n)
			u.Add(src, n)
			//determlint:ignore DFS worklist; visit order cannot affect the closure (set semantics)
			for to := range r.succ[n] {
				if !seen.Has(to) {
					stack = append(stack, to)
				}
			}
		}
	}
	return u
}

// ReflexiveClosure returns r ∪ id(universe) as a new relation.
func (r *Relation) ReflexiveClosure(universe Set) *Relation {
	u := r.Clone()
	for id := range universe {
		u.Add(id, id)
	}
	return u
}

// Identity returns the identity relation over the given set.
func Identity(universe Set) *Relation {
	r := New()
	for id := range universe {
		r.Add(id, id)
	}
	return r
}

// Restrict returns the sub-relation with From ∈ dom and To ∈ rng.
// A nil dom or rng means "no constraint" on that side.
func (r *Relation) Restrict(dom, rng Set) *Relation {
	u := New()
	for from, tos := range r.succ {
		if dom != nil && !dom.Has(from) {
			continue
		}
		for to := range tos {
			if rng != nil && !rng.Has(to) {
				continue
			}
			u.Add(from, to)
		}
	}
	return u
}

// Filter returns the sub-relation of pairs satisfying keep.
func (r *Relation) Filter(keep func(from, to ID) bool) *Relation {
	u := New()
	for from, tos := range r.succ {
		for to := range tos {
			if keep(from, to) {
				u.Add(from, to)
			}
		}
	}
	return u
}

// IsIrreflexive reports whether no element relates to itself.
func (r *Relation) IsIrreflexive() bool {
	for from, tos := range r.succ {
		if tos.Has(from) {
			return false
		}
	}
	return true
}

// IsAcyclic reports whether the relation, viewed as a directed graph,
// contains no cycle (including self-loops).
func (r *Relation) IsAcyclic() bool {
	_, acyclic := r.topoSort()
	return acyclic
}

// FindCycle returns one cycle as a sequence of IDs (first element repeated
// at the end), or nil if the relation is acyclic. The cycle returned is
// deterministic for a given relation.
func (r *Relation) FindCycle() []ID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ID]int)
	parent := make(map[ID]ID)

	starts := make([]ID, 0, len(r.succ))
	for from := range r.succ {
		starts = append(starts, from)
	}
	sort.Ints(starts)

	var cycleStart, cycleEnd ID
	found := false

	var dfs func(n ID) bool
	dfs = func(n ID) bool {
		color[n] = gray
		for _, m := range r.succ[n].Sorted() {
			switch color[m] {
			case white:
				parent[m] = n
				if dfs(m) {
					return true
				}
			case gray:
				cycleStart, cycleEnd = m, n
				return true
			}
		}
		color[n] = black
		return false
	}

	for _, s := range starts {
		if color[s] == white && dfs(s) {
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	// Reconstruct the cycle from cycleEnd back to cycleStart.
	var rev []ID
	for n := cycleEnd; n != cycleStart; n = parent[n] {
		rev = append(rev, n)
	}
	rev = append(rev, cycleStart)
	cycle := make([]ID, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		cycle = append(cycle, rev[i])
	}
	cycle = append(cycle, cycleStart)
	return cycle
}

// TopoOrder returns a topological order of every element appearing in the
// relation. ok is false if the relation is cyclic, in which case order is
// nil. Ties are broken by ascending ID, so the order is deterministic.
func (r *Relation) TopoOrder() (order []ID, ok bool) {
	return r.topoSort()
}

func (r *Relation) topoSort() ([]ID, bool) {
	indeg := make(map[ID]int)
	for from, tos := range r.succ {
		if _, ok := indeg[from]; !ok {
			indeg[from] = 0
		}
		for to := range tos {
			indeg[to]++
		}
	}
	// Min-heap behaviour via sorted ready list (graphs are small).
	ready := make([]ID, 0, len(indeg))
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sort.Ints(ready)
	order := make([]ID, 0, len(indeg))
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		newReady := false
		for to := range r.succ[n] {
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
				newReady = true
			}
		}
		if newReady {
			sort.Ints(ready)
		}
	}
	if len(order) != len(indeg) {
		return nil, false
	}
	return order, true
}

// IsTotalOrderOn reports whether r is a strict total order on the given set:
// irreflexive, transitive, and any two distinct elements comparable.
func (r *Relation) IsTotalOrderOn(s Set) bool {
	if !r.IsIrreflexive() || !r.IsAcyclic() {
		return false
	}
	t := r.TransitiveClosure()
	ids := s.Sorted()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			if !t.Has(a, b) && !t.Has(b, a) {
				return false
			}
		}
	}
	return true
}

// Equal reports whether r and o contain exactly the same pairs.
func (r *Relation) Equal(o *Relation) bool {
	if r.size != o.size {
		return false
	}
	for from, tos := range r.succ {
		for to := range tos {
			if !o.Has(from, to) {
				return false
			}
		}
	}
	return true
}

// String renders the relation as a sorted list of a→b pairs.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range r.Pairs() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d→%d", p.From, p.To)
	}
	b.WriteByte('}')
	return b.String()
}
