package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(3, 1, 2)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Has(1) || !s.Has(2) || !s.Has(3) || s.Has(4) {
		t.Fatalf("membership wrong: %v", s)
	}
	if got := s.String(); got != "{1, 2, 3}" {
		t.Errorf("String = %q", got)
	}
	u := s.Union(NewSet(4))
	if u.Len() != 4 || !u.Has(4) {
		t.Errorf("Union wrong: %v", u)
	}
	i := s.Inter(NewSet(2, 3, 9))
	if i.Len() != 2 || !i.Has(2) || !i.Has(3) {
		t.Errorf("Inter wrong: %v", i)
	}
	d := s.Diff(NewSet(1))
	if d.Len() != 2 || d.Has(1) {
		t.Errorf("Diff wrong: %v", d)
	}
	c := s.Clone()
	c.Add(99)
	if s.Has(99) {
		t.Error("Clone aliases original")
	}
}

func TestAddRemoveHas(t *testing.T) {
	r := New()
	r.Add(1, 2)
	r.Add(1, 2) // duplicate
	r.Add(2, 3)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if !r.Has(1, 2) || !r.Has(2, 3) || r.Has(2, 1) {
		t.Fatal("membership wrong")
	}
	r.Remove(1, 2)
	if r.Has(1, 2) || r.Len() != 1 {
		t.Fatal("Remove failed")
	}
	r.Remove(1, 2) // removing absent pair is a no-op
	if r.Len() != 1 {
		t.Fatal("double Remove changed size")
	}
}

func TestFromEdgesPanicsOnOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromEdges(1, 2, 3)
}

func TestUnionInterDiff(t *testing.T) {
	a := FromEdges(1, 2, 2, 3)
	b := FromEdges(2, 3, 3, 4)
	u := a.Union(b)
	if u.Len() != 3 || !u.Has(1, 2) || !u.Has(2, 3) || !u.Has(3, 4) {
		t.Errorf("Union = %v", u)
	}
	i := a.Inter(b)
	if i.Len() != 1 || !i.Has(2, 3) {
		t.Errorf("Inter = %v", i)
	}
	d := a.Diff(b)
	if d.Len() != 1 || !d.Has(1, 2) {
		t.Errorf("Diff = %v", d)
	}
	// Variadic Union function.
	v := Union(a, b, FromEdges(9, 9))
	if v.Len() != 4 || !v.Has(9, 9) {
		t.Errorf("Union(...) = %v", v)
	}
}

func TestCompose(t *testing.T) {
	// fr = ~rf.co: classic derivation shape.
	rf := FromEdges(10, 20) // write 10 read by read 20
	co := FromEdges(10, 11) // write 10 before write 11
	fr := rf.Transpose().Compose(co)
	if fr.Len() != 1 || !fr.Has(20, 11) {
		t.Errorf("fr = %v, want {20→11}", fr)
	}
}

func TestTranspose(t *testing.T) {
	r := FromEdges(1, 2, 2, 3)
	tr := r.Transpose()
	if !tr.Has(2, 1) || !tr.Has(3, 2) || tr.Len() != 2 {
		t.Errorf("Transpose = %v", tr)
	}
	if !tr.Transpose().Equal(r) {
		t.Error("double transpose != original")
	}
}

func TestTransitiveClosure(t *testing.T) {
	r := FromEdges(1, 2, 2, 3, 3, 4)
	tc := r.TransitiveClosure()
	want := FromEdges(1, 2, 1, 3, 1, 4, 2, 3, 2, 4, 3, 4)
	if !tc.Equal(want) {
		t.Errorf("closure = %v, want %v", tc, want)
	}
	// Cyclic graph: closure contains self-loops around the cycle.
	c := FromEdges(1, 2, 2, 1)
	cc := c.TransitiveClosure()
	if !cc.Has(1, 1) || !cc.Has(2, 2) {
		t.Errorf("cyclic closure = %v", cc)
	}
}

func TestAcyclicity(t *testing.T) {
	if !FromEdges(1, 2, 2, 3).IsAcyclic() {
		t.Error("chain flagged cyclic")
	}
	if FromEdges(1, 2, 2, 3, 3, 1).IsAcyclic() {
		t.Error("3-cycle flagged acyclic")
	}
	if FromEdges(5, 5).IsAcyclic() {
		t.Error("self-loop flagged acyclic")
	}
	if !New().IsAcyclic() {
		t.Error("empty relation flagged cyclic")
	}
}

func TestFindCycle(t *testing.T) {
	if c := FromEdges(1, 2, 2, 3).FindCycle(); c != nil {
		t.Errorf("cycle in acyclic graph: %v", c)
	}
	c := FromEdges(1, 2, 2, 3, 3, 1).FindCycle()
	if len(c) != 4 || c[0] != c[len(c)-1] {
		t.Fatalf("cycle = %v", c)
	}
	r := FromEdges(1, 2, 2, 3, 3, 1)
	for i := 0; i+1 < len(c); i++ {
		if !r.Has(c[i], c[i+1]) {
			t.Errorf("cycle edge %d→%d not in relation", c[i], c[i+1])
		}
	}
	// Self-loop.
	sl := FromEdges(7, 7).FindCycle()
	if len(sl) != 2 || sl[0] != 7 || sl[1] != 7 {
		t.Errorf("self-loop cycle = %v", sl)
	}
}

func TestTopoOrder(t *testing.T) {
	r := FromEdges(1, 3, 2, 3, 3, 4)
	order, ok := r.TopoOrder()
	if !ok {
		t.Fatal("acyclic graph reported cyclic")
	}
	pos := make(map[ID]int)
	for i, n := range order {
		pos[n] = i
	}
	for _, p := range r.Pairs() {
		if pos[p.From] >= pos[p.To] {
			t.Errorf("order violates edge %v", p)
		}
	}
	if _, ok := FromEdges(1, 2, 2, 1).TopoOrder(); ok {
		t.Error("cyclic graph reported acyclic")
	}
}

func TestRestrictAndFilter(t *testing.T) {
	r := FromEdges(1, 2, 2, 3, 3, 4)
	sub := r.Restrict(NewSet(1, 2), NewSet(2, 4))
	if sub.Len() != 1 || !sub.Has(1, 2) {
		t.Errorf("Restrict = %v", sub)
	}
	if got := r.Restrict(nil, NewSet(3)); got.Len() != 1 || !got.Has(2, 3) {
		t.Errorf("Restrict(nil, ...) = %v", got)
	}
	f := r.Filter(func(a, b ID) bool { return b-a > 1 })
	if f.Len() != 0 {
		t.Errorf("Filter = %v", f)
	}
}

func TestIdentityAndReflexiveClosure(t *testing.T) {
	u := NewSet(1, 2)
	id := Identity(u)
	if id.Len() != 2 || !id.Has(1, 1) || !id.Has(2, 2) {
		t.Errorf("Identity = %v", id)
	}
	r := FromEdges(1, 2).ReflexiveClosure(u)
	if r.Len() != 3 || !r.Has(1, 1) || !r.Has(2, 2) || !r.Has(1, 2) {
		t.Errorf("ReflexiveClosure = %v", r)
	}
}

func TestIsTotalOrderOn(t *testing.T) {
	s := NewSet(1, 2, 3)
	if !FromEdges(1, 2, 2, 3).IsTotalOrderOn(s) {
		t.Error("chain not a total order")
	}
	if FromEdges(1, 2).IsTotalOrderOn(s) {
		t.Error("incomparable 3 accepted")
	}
	if FromEdges(1, 2, 2, 3, 3, 1).IsTotalOrderOn(s) {
		t.Error("cycle accepted as total order")
	}
}

func TestDomainRange(t *testing.T) {
	r := FromEdges(1, 2, 1, 3, 4, 2)
	if d := r.Domain(); d.Len() != 2 || !d.Has(1) || !d.Has(4) {
		t.Errorf("Domain = %v", d)
	}
	if g := r.Range(); g.Len() != 2 || !g.Has(2) || !g.Has(3) {
		t.Errorf("Range = %v", g)
	}
}

func TestString(t *testing.T) {
	r := FromEdges(2, 1, 1, 2)
	if got := r.String(); got != "{1→2, 2→1}" {
		t.Errorf("String = %q", got)
	}
}

// randomRelation builds a pseudo-random relation over n elements with m edges.
func randomRelation(rng *rand.Rand, n, m int) *Relation {
	r := New()
	for i := 0; i < m; i++ {
		r.Add(rng.Intn(n), rng.Intn(n))
	}
	return r
}

// Property: transitive closure is idempotent and contains the original.
func TestQuickClosureIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, 8, 12)
		tc := r.TransitiveClosure()
		if !tc.TransitiveClosure().Equal(tc) {
			return false
		}
		return r.Diff(tc).IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: (r ∪ s)ᵀ = rᵀ ∪ sᵀ.
func TestQuickTransposeDistributesOverUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, 8, 10)
		s := randomRelation(rng, 8, 10)
		return r.Union(s).Transpose().Equal(r.Transpose().Union(s.Transpose()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: acyclicity of r equals acyclicity of rᵀ, and a found cycle is
// genuinely a path of edges ending where it began.
func TestQuickCycleWitness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, 6, 8)
		if r.IsAcyclic() != r.Transpose().IsAcyclic() {
			return false
		}
		c := r.FindCycle()
		if r.IsAcyclic() {
			return c == nil
		}
		if len(c) < 2 || c[0] != c[len(c)-1] {
			return false
		}
		for i := 0; i+1 < len(c); i++ {
			if !r.Has(c[i], c[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: composition is associative: (r.s).t = r.(s.t).
func TestQuickComposeAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, 6, 8)
		s := randomRelation(rng, 6, 8)
		u := randomRelation(rng, 6, 8)
		return r.Compose(s).Compose(u).Equal(r.Compose(s.Compose(u)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: TopoOrder, when it exists, is consistent with every edge.
func TestQuickTopoRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, 10, 9)
		order, ok := r.TopoOrder()
		if !ok {
			return !r.IsAcyclic()
		}
		pos := make(map[ID]int)
		for i, n := range order {
			pos[n] = i
		}
		for _, p := range r.Pairs() {
			if pos[p.From] >= pos[p.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := FromEdges(1, 2)
	c := r.Clone()
	c.Add(3, 4)
	if r.Has(3, 4) {
		t.Error("Clone shares storage with original")
	}
	if !reflect.DeepEqual(r.Pairs(), []Pair{{1, 2}}) {
		t.Errorf("original mutated: %v", r)
	}
}
