// Package relation implements a small algebra of finite binary relations
// over integer-identified elements. It is the calculus in which both memory
// consistency models (MCMs) and leakage containment models (LCMs) are
// expressed: axiomatic predicates such as sc_per_loc or the LCM
// non-interference conditions are unions, compositions, and acyclicity
// checks over relations like po, rf, co, fr, rfx, cox, and frx.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies an element of the carrier set (an event in a candidate
// execution). IDs are small non-negative integers assigned by the caller.
type ID = int

// Set is a finite set of element IDs.
type Set map[ID]struct{}

// NewSet returns a Set containing the given elements.
func NewSet(ids ...ID) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts id into s.
func (s Set) Add(id ID) { s[id] = struct{}{} }

// Has reports whether id is a member of s.
func (s Set) Has(id ID) bool {
	_, ok := s[id]
	return ok
}

// Len returns the cardinality of s.
func (s Set) Len() int { return len(s) }

// Union returns a new set containing every element of s and t.
func (s Set) Union(t Set) Set {
	u := make(Set, len(s)+len(t))
	for id := range s {
		u[id] = struct{}{}
	}
	for id := range t {
		u[id] = struct{}{}
	}
	return u
}

// Inter returns a new set containing the elements common to s and t.
func (s Set) Inter(t Set) Set {
	small, large := s, t
	if len(t) < len(s) {
		small, large = t, s
	}
	u := make(Set)
	for id := range small {
		if large.Has(id) {
			u[id] = struct{}{}
		}
	}
	return u
}

// Diff returns a new set containing the elements of s not in t.
func (s Set) Diff(t Set) Set {
	u := make(Set)
	for id := range s {
		if !t.Has(id) {
			u[id] = struct{}{}
		}
	}
	return u
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	u := make(Set, len(s))
	for id := range s {
		u[id] = struct{}{}
	}
	return u
}

// Sorted returns the elements of s in ascending order.
func (s Set) Sorted() []ID {
	ids := make([]ID, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// String renders the set as {a, b, c} in ascending order.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte('}')
	return b.String()
}
