// Package faultinject provides deterministic, seeded fault injection for
// the analysis pipeline's chaos campaigns. Named probe points are wired
// into the layers a real failure can originate from — solver stepping,
// S-AEG construction, frontend-cache lookup, and worker dispatch — and a
// seeded Plan decides, purely from (probe, key), whether a probe fires
// and which fault it raises: a panic, artificial deadline exhaustion, or
// a cancellation. The campaign store (internal/campstore) adds a second
// probe family — store.write/store.fsync/store.rename — whose every
// decision is a classified I/O failure (see IOError).
//
// Determinism contract: a decision depends only on the plan seed, the
// probe name, and the caller-supplied key (a stable item identity such as
// "g0017/pht@r0" or a worker index), never on call order, wall clock, or
// scheduling. Two runs of the same workload under the same plan therefore
// inject the same faults at the same places even at different -j widths —
// the property `make chaos` asserts byte-for-byte.
//
// With no plan armed every probe is a single atomic load and a nil check,
// so production runs pay essentially nothing.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lcm/internal/faults"
)

// Kind is the fault a fired probe raises.
type Kind uint8

// The fault kinds a plan can arm.
const (
	None     Kind = iota
	Panic         // probe panics with a PanicValue
	Deadline      // probe reports artificial deadline exhaustion
	Cancel        // probe reports an artificial cancellation
	IO            // probe reports a storage-layer failure (store probes only)
)

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Deadline:
		return "deadline"
	case Cancel:
		return "canceled"
	case IO:
		return "io"
	}
	return "none"
}

// Probe point names. Keys are chosen by each site: detection probes use
// the supervisor's inject key (function identity plus ladder rung), the
// pool uses the item index.
const (
	ProbeSolverStep     = "solver.step"     // detect.query, before a solver call
	ProbeAEGBuild       = "aeg.build"       // detect.AnalyzeFuncCtx, before aeg.Build
	ProbeCacheLookup    = "cache.lookup"    // detect.AnalyzeFuncCtx, frontend lookup
	ProbeWorkerDispatch = "worker.dispatch" // harness pool, before running a job

	// Campaign-store probes (internal/campstore). These fire through
	// IOError, not Error: a failing disk has one error mode, so every
	// decision is classified faults.ErrIO regardless of the hashed kind.
	ProbeStoreWrite  = "store.write"  // before a WAL record append
	ProbeStoreFsync  = "store.fsync"  // before a WAL or snapshot fsync
	ProbeStoreRename = "store.rename" // before the snapshot's atomic rename
)

// Probes lists the analysis-pipeline probe points, for the chaos
// campaign's coverage assertion. Store probes are listed separately: the
// analysis campaign never touches the campaign store.
func Probes() []string {
	return []string{ProbeSolverStep, ProbeAEGBuild, ProbeCacheLookup, ProbeWorkerDispatch}
}

// StoreProbes lists the campaign-store probe points, for the store chaos
// campaign's coverage assertion.
func StoreProbes() []string {
	return []string{ProbeStoreWrite, ProbeStoreFsync, ProbeStoreRename}
}

// ErrInjected marks an error (or panic) as planted by a plan rather than
// organic, so chaos accounting can match fired probes against classified
// failures exactly even if a real deadline fires during the campaign.
var ErrInjected = fmt.Errorf("injected fault")

// PanicValue is the value a Panic-kind probe panics with; recovery
// handlers use it to tell injected panics from real ones.
type PanicValue struct {
	Probe string
	Key   string
}

func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s[%s]", p.Probe, p.Key)
}

// Plan is a seeded injection plan. Decisions are pure functions of
// (seed, probe, key); the plan additionally records which (probe, key)
// pairs actually fired so campaigns can reconcile every injected fault
// against the failure-taxonomy metrics.
type Plan struct {
	seed int64
	// rate is the per-key fire probability in 1/65536ths.
	rate uint32

	mu     sync.Mutex
	fired  map[string]Kind // "probe\x00key" → kind, first-fire only
	counts [5]int64        // per-Kind fired tally
}

// NewPlan returns a plan that fires each (probe, key) decision with the
// given probability (clamped to [0, 1]). The fault kind is also derived
// from the hash, split evenly across Panic, Deadline, and Cancel.
func NewPlan(seed int64, rate float64) *Plan {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Plan{seed: seed, rate: uint32(rate * 65536), fired: map[string]Kind{}}
}

// Decide returns the fault, if any, the plan assigns to (probe, key).
// It is a pure function: it does not record the decision as fired.
func (p *Plan) Decide(probe, key string) Kind {
	h := hash64(uint64(p.seed), probe, key)
	if uint32(h&0xffff) >= p.rate {
		return None
	}
	// Use high bits for the kind so they are independent of the fire bits.
	return Kind(1 + (h>>32)%3)
}

// fire records and returns the decision for (probe, key). A key fires at
// most once per plan: repeated probe visits (solver steps retry the same
// key every query) return the kind without recounting.
func (p *Plan) fire(probe, key string) Kind {
	return p.fireAs(probe, key, None)
}

// fireAs is fire with the kind overridden when `as` is non-None: the
// fire/no-fire decision still comes from the hash (so rates and fired
// tallies stay comparable across probe families), but the recorded and
// returned kind is forced — store probes use this to collapse every
// decision into IO.
func (p *Plan) fireAs(probe, key string, as Kind) Kind {
	k := p.Decide(probe, key)
	if k == None {
		return None
	}
	if as != None {
		k = as
	}
	id := probe + "\x00" + key
	p.mu.Lock()
	if _, seen := p.fired[id]; !seen {
		p.fired[id] = k
		p.counts[k]++
	}
	p.mu.Unlock()
	return k
}

// Total returns how many distinct (probe, key) pairs have fired.
func (p *Plan) Total() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[Panic] + p.counts[Deadline] + p.counts[Cancel] + p.counts[IO]
}

// Counts returns the fired tally per kind name.
func (p *Plan) Counts() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return map[string]int64{
		Panic.String():    p.counts[Panic],
		Deadline.String(): p.counts[Deadline],
		Cancel.String():   p.counts[Cancel],
		IO.String():       p.counts[IO],
	}
}

// FiredProbes returns, per probe name, how many keys fired there — the
// campaign's probe-coverage evidence.
func (p *Plan) FiredProbes() map[string]int64 {
	out := map[string]int64{}
	p.mu.Lock()
	defer p.mu.Unlock()
	for id := range p.fired {
		for i := 0; i < len(id); i++ {
			if id[i] == 0 {
				out[id[:i]]++
				break
			}
		}
	}
	return out
}

// armed holds the process-wide active plan. Probes are meant for
// single-campaign processes (`make chaos`, a chaos test binary); Arm and
// Disarm are atomic so mis-nested tests fail loudly rather than race.
var armed atomic.Pointer[Plan]

// Arm installs the plan process-wide. It panics if a different plan is
// already armed — campaigns must not overlap.
func Arm(p *Plan) {
	if !armed.CompareAndSwap(nil, p) {
		panic("faultinject: a plan is already armed")
	}
}

// Disarm removes the active plan.
func Disarm() { armed.Store(nil) }

// Fire consults the armed plan for (probe, key). With no plan armed it
// returns None at the cost of one atomic load.
func Fire(probe, key string) Kind {
	p := armed.Load()
	if p == nil {
		return None
	}
	return p.fire(probe, key)
}

// Error fires the probe and converts the decision into its classified
// error form: Deadline and Cancel become faults-taxonomy errors marked
// ErrInjected; Panic panics with a PanicValue (callers' recovery handlers
// convert it); None is nil.
func Error(probe, key string) error {
	switch Fire(probe, key) {
	case Panic:
		panic(PanicValue{Probe: probe, Key: key})
	case Deadline:
		return fmt.Errorf("%w: %w at %s[%s]", faults.ErrDeadline, ErrInjected, probe, key)
	case Cancel:
		return fmt.Errorf("%w: %w at %s[%s]", faults.ErrCanceled, ErrInjected, probe, key)
	}
	return nil
}

// IOError fires a campaign-store probe and converts any decision into a
// classified faults.ErrIO marked ErrInjected: storage has a single
// failure mode (the syscall errored), so the hashed kind only decides
// whether the probe fires, never what it raises. With no plan armed it
// is one atomic load.
func IOError(probe, key string) error {
	p := armed.Load()
	if p == nil {
		return nil
	}
	if p.fireAs(probe, key, IO) == None {
		return nil
	}
	return fmt.Errorf("%w: %w at %s[%s]", faults.ErrIO, ErrInjected, probe, key)
}

// hash64 is a splitmix64-style mix over the seed and the probe/key bytes
// (FNV-1a absorb, splitmix finalize). It must stay stable: chaos goldens
// and pinned fire counts depend on it.
func hash64(seed uint64, probe, key string) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	absorb := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 0x100000001b3
		}
		h ^= 0xff
		h *= 0x100000001b3
	}
	absorb(probe)
	absorb(key)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
