package litmus

import "lcm/internal/core"

// The taxonomy suites cover the transmitters of Table 1 beyond branch
// prediction and store-to-load bypass: speculative store forwarding via
// alias prediction (litmus-psf), the indirect memory prefetcher
// (litmus-imp, Fig. 5b), and silent stores (litmus-ss, Fig. 5a). Each
// suite pairs leaking gadgets with patched (lfence) and structurally
// clean variants, and each case is shaped so the uarch simulator can
// witness — or refute — the leak by two-secret distinguishability.

const psfPrelude = `
void lfence(void);
uint8_t sec_ary[16];
uint8_t pub_ary[131072];
uint32_t sec_slot;
uint32_t pub_idx;
uint8_t temp;
`

// PSF returns the litmus-psf suite: a store of secret data is in flight
// when a younger, non-aliasing load issues; the alias predictor wrongly
// forwards the secret, which steers a transient transmitter.
func PSF() []Case {
	return []Case{
		{
			Name: "psf01", Suite: "psf", Fn: "psf_1",
			Intended: []core.Class{core.UDT},
			Note:     "secret store in flight; mispredicted forward to an unrelated load steers the transmitter",
			Source: psfPrelude + `
void psf_1(uint32_t idx) {
	sec_slot = sec_ary[idx & 15];
	uint32_t j = pub_idx;
	temp &= pub_ary[(j & 255) * 512];
}`,
		},
		{
			Name: "psf02", Suite: "psf", Fn: "psf_2",
			Intended: []core.Class{core.UDT},
			Note:     "variant with arithmetic between the forward and the transmit",
			Source: psfPrelude + `
void psf_2(uint32_t idx) {
	sec_slot = sec_ary[idx & 15];
	uint32_t j = pub_idx + 1;
	temp &= pub_ary[(j & 255) * 512];
}`,
		},
		{
			Name: "psf03", Suite: "psf", Fn: "psf_3",
			Secure: true,
			Note:   "fence drains the store buffer: nothing left to forward",
			Source: psfPrelude + `
void psf_3(uint32_t idx) {
	sec_slot = sec_ary[idx & 15];
	lfence();
	uint32_t j = pub_idx;
	temp &= pub_ary[(j & 255) * 512];
}`,
		},
		{
			Name: "psf04", Suite: "psf", Fn: "psf_4",
			Secure: true,
			Note:   "secret store in flight but no dependent access after it: nothing transmits",
			Source: psfPrelude + `
void psf_4(uint32_t idx) {
	sec_slot = sec_ary[idx & 15];
	temp = 0;
}`,
		},
	}
}

const impPrelude = `
void lfence(void);
uint8_t idx_ary[16];
uint8_t data_ary[131072];
uint8_t temp;
`

// IMP returns the litmus-imp suite: a dependent load-pair walk trains
// the indirect memory prefetcher, which then dereferences the NEXT index
// element on its own — a universal read of memory the program never
// architecturally touches (Fig. 5b).
func IMP() []Case {
	return []Case{
		{
			Name: "imp01", Suite: "imp", Fn: "imp_1",
			Intended: []core.Class{core.UDT},
			Note:     "index-walk gadget: the prefetcher reads idx_ary one element past the loop",
			Source: impPrelude + `
void imp_1(uint32_t n) {
	for (uint32_t i = 0; i < n; i++) {
		temp &= data_ary[idx_ary[i & 7]];
	}
}`,
		},
		{
			Name: "imp02", Suite: "imp", Fn: "imp_2",
			Intended: []core.Class{core.UDT},
			Note:     "scaled mapping: the prefetcher fits addr = base + 2*value",
			Source: impPrelude + `
void imp_2(uint32_t n) {
	for (uint32_t i = 0; i < n; i++) {
		temp &= data_ary[idx_ary[i & 7] * 2];
	}
}`,
		},
		{
			Name: "imp03", Suite: "imp", Fn: "imp_3",
			Secure: true,
			Note:   "per-iteration fence flushes the prefetcher's training state",
			Source: impPrelude + `
void imp_3(uint32_t n) {
	for (uint32_t i = 0; i < n; i++) {
		lfence();
		temp &= data_ary[idx_ary[i & 7]];
	}
}`,
		},
		{
			Name: "imp04", Suite: "imp", Fn: "imp_4",
			Secure: true,
			Note:   "induction-variable indexing: no dependent load pair, stride-zero index stream",
			Source: impPrelude + `
void imp_4(uint32_t n) {
	for (uint32_t i = 0; i < n; i++) {
		temp &= data_ary[i & 7];
	}
}`,
		},
	}
}

const ssPrelude = `
void lfence(void);
uint8_t sec_ary[16];
uint8_t buf[256];
uint8_t guess;
uint32_t slot;
`

// SS returns the litmus-ss suite: a store of secret-derived data commits
// silently exactly when the value already matches memory, so the line
// allocation's presence transmits the comparison outcome (Fig. 5a).
func SS() []Case {
	return []Case{
		{
			Name: "ss01", Suite: "ss", Fn: "ss_1",
			Intended: []core.Class{core.CT},
			Note:     "secret written to a fixed slot: elision leaks secret == old content",
			Source: ssPrelude + `
void ss_1(uint32_t idx) {
	slot = sec_ary[idx & 15];
}`,
		},
		{
			Name: "ss02", Suite: "ss", Fn: "ss_2",
			Intended: []core.Class{core.UCT},
			Note:     "attacker-addressed target: elision leaks whether buf[idx] equals the guess",
			Source: ssPrelude + `
void ss_2(uint32_t idx) {
	buf[idx] = guess;
}`,
		},
		{
			Name: "ss03", Suite: "ss", Fn: "ss_3",
			Secure: true,
			Note:   "fence before return forces a verbatim commit: the line is always allocated",
			Source: ssPrelude + `
void ss_3(uint32_t idx) {
	slot = sec_ary[idx & 15];
	lfence();
}`,
		},
		{
			Name: "ss04", Suite: "ss", Fn: "ss_4",
			Secure: true,
			Note:   "stored value derives only from the attacker's own argument: no secret to compare",
			Source: ssPrelude + `
void ss_4(uint32_t idx) {
	slot = idx & 15;
}`,
		},
	}
}
