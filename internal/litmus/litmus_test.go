package litmus

import (
	"testing"

	"lcm/internal/core"
	"lcm/internal/detect"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func TestAllCasesCompile(t *testing.T) {
	for _, c := range All() {
		f, err := minic.Parse(c.Source)
		if err != nil {
			t.Errorf("%s: parse: %v", c.Name, err)
			continue
		}
		m, err := lower.Module(f)
		if err != nil {
			t.Errorf("%s: lower: %v", c.Name, err)
			continue
		}
		if m.Func(c.Fn) == nil {
			t.Errorf("%s: function %q missing", c.Name, c.Fn)
		}
	}
}

func TestSuiteSizesMatchPaper(t *testing.T) {
	// Table 2: litmus-pht has 15 programs, litmus-stl 14, litmus-fwd 5,
	// litmus-new 2.
	if n := len(PHT()); n != 15 {
		t.Errorf("pht = %d, want 15", n)
	}
	if n := len(STL()); n != 14 {
		t.Errorf("stl = %d, want 14", n)
	}
	if n := len(FWD()); n != 5 {
		t.Errorf("fwd = %d, want 5", n)
	}
	if n := len(NEW()); n != 2 {
		t.Errorf("new = %d, want 2", n)
	}
	paper := len(PHT()) + len(STL()) + len(FWD()) + len(NEW())
	if paper != 36 {
		t.Errorf("paper suites total = %d, want 36 (§6: 36 Spectre benchmarks)", paper)
	}
	// The taxonomy suites (psf/imp/ss) extend the corpus beyond the
	// paper's Spectre benchmarks to the remaining Table 1 transmitters.
	for _, s := range []struct {
		name  string
		cases []Case
	}{{"psf", PSF()}, {"imp", IMP()}, {"ss", SS()}} {
		if n := len(s.cases); n != 4 {
			t.Errorf("%s = %d, want 4", s.name, n)
		}
	}
	if n, want := len(All()), paper+12; n != want {
		t.Errorf("total = %d, want %d", n, want)
	}
}

// analyzeCase runs the engine matching the case's suite.
func analyzeCase(t *testing.T, c Case) *detect.Result {
	t.Helper()
	f, err := minic.Parse(c.Source)
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	cfg := detect.DefaultPHT()
	switch c.Suite {
	case "stl":
		cfg = detect.DefaultSTL()
	case "psf":
		cfg = detect.DefaultPSF()
	case "imp":
		cfg = detect.DefaultIMP()
	case "ss":
		cfg = detect.DefaultSS()
	}
	r, err := detect.AnalyzeFunc(m, c.Fn, cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.Name, err)
	}
	return r
}

func TestPHTIntendedTransmittersFound(t *testing.T) {
	// §6.1: Clou identifies all intended transmitters in the PHT programs.
	for _, c := range PHT() {
		if c.Secure {
			continue
		}
		r := analyzeCase(t, c)
		got := r.Counts()
		for _, want := range c.Intended {
			if got[want] == 0 {
				// A UCT-intended case may be reported at equal severity as
				// CT when the universal chain is through the same load.
				if want == core.UCT && got[core.CT] > 0 {
					continue
				}
				t.Errorf("%s: intended %v not found; counts=%v", c.Name, want, got)
			}
		}
	}
}

func TestSTLIntendedTransmittersFound(t *testing.T) {
	for _, c := range STL() {
		if c.Secure {
			continue
		}
		r := analyzeCase(t, c)
		if len(r.Findings) == 0 {
			t.Errorf("%s: no findings; intended %v", c.Name, c.Intended)
		}
	}
}

func TestSTLSecureCasesClean(t *testing.T) {
	for _, c := range STL() {
		if !c.Secure {
			continue
		}
		r := analyzeCase(t, c)
		if len(r.Findings) != 0 {
			t.Errorf("%s (intended secure): findings %v", c.Name, r.Findings)
		}
	}
}

func TestFWDAndNEWDetectedByPHTEngine(t *testing.T) {
	// The FWD and NEW gadgets exploit control-flow speculation (their
	// stores are transient), so Clou-pht finds them.
	for _, cs := range [][]Case{FWD(), NEW()} {
		for _, c := range cs {
			r := analyzeCase(t, c)
			if len(r.Findings) == 0 {
				t.Errorf("%s: no findings", c.Name)
			}
		}
	}
}

func TestTaxonomyIntendedTransmittersFound(t *testing.T) {
	// Each taxonomy engine must flag every leaking case in its family at
	// the intended class and stay clean on the patched/clean variants.
	for _, suite := range []string{"psf", "imp", "ss"} {
		for _, c := range Suites()[suite] {
			r := analyzeCase(t, c)
			if c.Secure {
				if len(r.Findings) != 0 {
					t.Errorf("%s (intended secure): findings %v", c.Name, r.Findings)
				}
				continue
			}
			got := r.Counts()
			for _, want := range c.Intended {
				if got[want] == 0 {
					t.Errorf("%s: intended %v not found; counts=%v", c.Name, want, got)
				}
			}
		}
	}
}

func TestPHTSuiteDetectsNoLeakWithoutBranches(t *testing.T) {
	// Sanity for the masked case: with the addr_gep+taint pipeline, pht06
	// is a documented Clou false positive (index masking is not reasoned
	// about semantically, §6.1) — assert the tool's actual behaviour so a
	// regression is visible either way.
	for _, c := range PHT() {
		if c.Name != "pht06" {
			continue
		}
		r := analyzeCase(t, c)
		// No branch → no PHT speculation primitive → no findings. The
		// false positive the paper describes arises in the STL engine.
		if len(r.Findings) != 0 {
			t.Logf("pht06 findings (documented FP behaviour): %v", r.Findings)
		}
	}
}
