package litmus

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lcm/internal/presolve"
)

var updateCerts = flag.Bool("update", false, "rewrite the certificate golden file")

// TestCertificatesGolden pins the pre-solver's discharge behaviour on the
// litmus corpus: for every case, the set of certificates (refutations,
// witnesses, range discharges) is serialized and compared byte-for-byte
// against testdata/certs.golden.json. A diff means the pre-solver's
// verdicts moved — either a deliberate rule change (regenerate with
// `go test ./internal/litmus -run TestCertificatesGolden -update`) or an
// unintended regression in discharge coverage.
//
// Every certificate must also pass its own structural Check: the golden
// file is a corpus of machine-checkable proofs, not just a snapshot.
func TestCertificatesGolden(t *testing.T) {
	got := map[string][]*presolve.Certificate{}
	for _, c := range All() {
		r := analyzeCase(t, c)
		for _, cert := range r.Certificates {
			if err := cert.Check(); err != nil {
				t.Errorf("%s: certificate fails self-check: %v\n%s", c.Name, err, cert)
			}
		}
		if len(r.Certificates) > 0 {
			got[c.Name] = r.Certificates
		}
	}

	buf, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')

	path := filepath.Join("testdata", "certs.golden.json")
	if *updateCerts {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf, want) {
		t.Errorf("certificates diverge from %s (run with -update after an intentional rule change)", path)
	}
}

// TestCertificatesDischargeFloor guards the headline discharge result:
// the corpus-wide certificate count must not silently collapse. The floor
// is deliberately below the current value (650) so rule tuning has slack,
// but an accidental disconnection of the pre-solver (zero certs) or a
// major coverage loss fails loudly.
func TestCertificatesDischargeFloor(t *testing.T) {
	total := 0
	for _, c := range All() {
		total += len(analyzeCase(t, c).Certificates)
	}
	if total < 400 {
		t.Errorf("litmus corpus discharged %d certificates, want >= 400", total)
	}
}
