// Package litmus contains the Spectre benchmark corpus of §6.1 in mini-C:
// 15 litmus-pht cases in the style of Kocher's Spectre v1 variants, 14
// litmus-stl cases in the style of the Binsec/Haunted STL suite, 5
// litmus-fwd (Spectre v1.1) cases, and the 2 litmus-new cases the paper
// introduces (NEW01 is reproduced verbatim from §6.1). Each case carries
// the transmitter classes its authors intend it to exhibit, which the
// Table 2 harness compares against Clou's findings.
package litmus

import "lcm/internal/core"

// Case is one benchmark program.
type Case struct {
	Name   string
	Suite  string // "pht", "stl", "fwd", or "new"
	Source string
	Fn     string
	// Intended lists the transmitter classes the benchmark is annotated
	// with; empty plus Secure=true marks an intended-safe program.
	Intended []core.Class
	Secure   bool
	// Note records provenance quirks (e.g. the register-keyword cases).
	Note string
}

const phtPrelude = `
uint8_t array1[16];
uint8_t array2[131072];
uint32_t array1_size = 16;
uint8_t temp;
uint8_t k;
`

// PHT returns the litmus-pht suite: bounds-check-bypass gadgets in the
// style of Kocher's 15 MSVC examples.
func PHT() []Case {
	return []Case{
		{
			Name: "pht01", Suite: "pht", Fn: "victim_1",
			Intended: []core.Class{core.UDT},
			Source: phtPrelude + `
void victim_1(uint32_t x) {
	if (x < array1_size) {
		temp &= array2[array1[x] * 512];
	}
}`,
		},
		{
			Name: "pht02", Suite: "pht", Fn: "victim_2",
			Intended: []core.Class{core.UCT},
			Note:     "leak via a second branch on the secret",
			Source: phtPrelude + `
void victim_2(uint32_t x) {
	if (x < array1_size) {
		if (array1[x] == k) {
			temp &= array2[0];
		}
	}
}`,
		},
		{
			Name: "pht03", Suite: "pht", Fn: "victim_3",
			Intended: []core.Class{core.UDT},
			Note:     "gadget behind a call",
			Source: phtPrelude + `
void leak(uint32_t x) {
	temp &= array2[array1[x] * 512];
}
void victim_3(uint32_t x) {
	if (x < array1_size) {
		leak(x);
	}
}`,
		},
		{
			Name: "pht04", Suite: "pht", Fn: "victim_4",
			Intended: []core.Class{core.UDT},
			Note:     "index arithmetic between check and use",
			Source: phtPrelude + `
void victim_4(uint32_t x) {
	if (x < array1_size) {
		uint32_t i = x << 1;
		temp &= array2[array1[i >> 1] * 512];
	}
}`,
		},
		{
			Name: "pht05", Suite: "pht", Fn: "victim_5",
			Intended: []core.Class{core.UDT},
			Note:     "check and use in a loop",
			Source: phtPrelude + `
void victim_5(uint32_t x, uint32_t n) {
	for (uint32_t i = 0; i < n; i++) {
		if (x < array1_size) {
			temp &= array2[array1[x] * 512];
		}
	}
}`,
		},
		{
			Name: "pht06", Suite: "pht", Fn: "victim_6",
			Secure: true,
			Note:   "index masking: semantically safe, a known Clou false positive (§6.1 — no semantic analysis of masks)",
			Source: phtPrelude + `
void victim_6(uint32_t x) {
	temp &= array2[array1[x & (16 - 1)] * 512];
}`,
		},
		{
			Name: "pht07", Suite: "pht", Fn: "victim_7",
			Intended: []core.Class{core.UDT},
			Note:     "access via pointer parameter",
			Source: phtPrelude + `
void victim_7(uint8_t *p, uint32_t x) {
	if (x < array1_size) {
		temp &= array2[p[x] * 512];
	}
}`,
		},
		{
			Name: "pht08", Suite: "pht", Fn: "victim_8",
			Intended: []core.Class{core.UDT},
			Note:     "ternary bounds check",
			Source: phtPrelude + `
void victim_8(uint32_t x) {
	uint32_t i = x < array1_size ? x : 0;
	if (x < array1_size) {
		temp &= array2[array1[i] * 512];
	}
}`,
		},
		{
			Name: "pht09", Suite: "pht", Fn: "victim_9",
			Intended: []core.Class{core.UDT},
			Note:     "double bounds check does not help",
			Source: phtPrelude + `
void victim_9(uint32_t x) {
	if (x < array1_size) {
		if (x < 16) {
			temp &= array2[array1[x] * 512];
		}
	}
}`,
		},
		{
			Name: "pht10", Suite: "pht", Fn: "victim_10",
			Intended: []core.Class{core.UDT},
			Note:     "secret-dependent write address (v1.1-flavored transmit)",
			Source: phtPrelude + `
void victim_10(uint32_t x) {
	if (x < array1_size) {
		array2[array1[x] * 512] = 1;
	}
}`,
		},
		{
			Name: "pht11", Suite: "pht", Fn: "victim_11",
			Intended: []core.Class{core.UDT},
			Note:     "index reloaded from a global between check and use",
			Source: phtPrelude + `
uint32_t saved;
void victim_11(uint32_t x) {
	saved = x;
	if (saved < array1_size) {
		temp &= array2[array1[saved] * 512];
	}
}`,
		},
		{
			Name: "pht12", Suite: "pht", Fn: "victim_12",
			Intended: []core.Class{core.UDT},
			Note:     "two-level index through a second table",
			Source: phtPrelude + `
uint8_t table[256];
void victim_12(uint32_t x) {
	if (x < array1_size) {
		temp &= array2[table[array1[x]] * 512];
	}
}`,
		},
		{
			Name: "pht13", Suite: "pht", Fn: "victim_13",
			Intended: []core.Class{core.UCT},
			Note:     "comparison leak without data use",
			Source: phtPrelude + `
void victim_13(uint32_t x) {
	if (x < array1_size) {
		if (array1[x] < 8) {
			temp += 1;
		}
	}
}`,
		},
		{
			Name: "pht14", Suite: "pht", Fn: "victim_14",
			Intended: []core.Class{core.UDT},
			Note:     "offset into struct field",
			Source: phtPrelude + `
struct Entry { uint8_t pad; uint8_t val; };
struct Entry entries[16];
void victim_14(uint32_t x) {
	if (x < array1_size) {
		temp &= array2[entries[x].val * 512];
	}
}`,
		},
		{
			Name: "pht15", Suite: "pht", Fn: "victim_15",
			Intended: []core.Class{core.UDT},
			Note:     "attacker index loaded from memory",
			Source: phtPrelude + `
uint32_t x_global;
void victim_15(void) {
	uint32_t x = x_global;
	if (x < array1_size) {
		temp &= array2[array1[x] * 512];
	}
}`,
		},
	}
}

const stlPrelude = `
uint8_t sec_ary[16];
uint8_t pub_ary[131072];
uint32_t ary_size = 16;
uint8_t temp;
`

// STL returns the litmus-stl suite: store-to-load bypass gadgets in the
// style of the Binsec/Haunted STL benchmarks.
func STL() []Case {
	return []Case{
		{
			Name: "stl01", Suite: "stl", Fn: "case_1",
			Intended: []core.Class{core.DT, core.UDT},
			Note:     "§6.1 STL01: masked index overwritten; the stale stack read of idx adds a UDT",
			Source: stlPrelude + `
uint32_t idx_slot;
void case_1(uint32_t idx) {
	idx_slot = idx & (ary_size - 1);
	temp &= pub_ary[sec_ary[idx_slot] * 512];
}`,
		},
		{
			Name: "stl02", Suite: "stl", Fn: "case_2",
			Intended: []core.Class{core.UDT},
			Note:     "stale stack slot read before the masking store resolves",
			Source: stlPrelude + `
void case_2(uint32_t idx) {
	uint32_t ridx = idx & (ary_size - 1);
	temp &= pub_ary[sec_ary[ridx] * 512];
}`,
		},
		{
			Name: "stl03", Suite: "stl", Fn: "case_3",
			Intended: []core.Class{core.UDT},
			Note:     "pointer overwritten before use; stale pointer dereferenced",
			Source: stlPrelude + `
uint8_t *ptr_slot;
uint8_t safe_buf[16];
void case_3(uint32_t idx) {
	ptr_slot = safe_buf;
	temp &= pub_ary[ptr_slot[idx & 15] * 512];
}`,
		},
		{
			Name: "stl04", Suite: "stl", Fn: "case_4",
			Intended: []core.Class{core.UDT},
			Note:     "secret cleared, then read: the clear can be bypassed",
			Source: stlPrelude + `
uint8_t key_byte;
void case_4(uint32_t idx) {
	key_byte = 0;
	temp &= pub_ary[key_byte * 512 + (idx & 15)];
}`,
		},
		{
			Name: "stl05", Suite: "stl", Fn: "case_5",
			Intended: []core.Class{core.UDT},
			Note:     "double pointer (STL01's **ppp shape)",
			Source: stlPrelude + `
uint8_t buf_a[16];
uint8_t *pp;
void case_5(uint32_t idx) {
	pp = buf_a;
	temp &= pub_ary[pp[idx & 15] * 512];
}`,
		},
		{
			Name: "stl06", Suite: "stl", Fn: "case_6",
			Secure: true,
			Note:   "fence between store and load: safe",
			Source: stlPrelude + `
void lfence(void);
uint32_t slot6;
void case_6(uint32_t idx) {
	slot6 = idx & (ary_size - 1);
	lfence();
	temp &= pub_ary[sec_ary[slot6] * 512];
}`,
		},
		{
			Name: "stl07", Suite: "stl", Fn: "case_7",
			Intended: []core.Class{core.UDT},
			Note:     "register keyword ignored at -O0 (§6.1): the spill is bypassable anyway",
			Source: stlPrelude + `
void case_7(uint32_t idx) {
	register uint32_t ridx = idx & (ary_size - 1);
	temp &= pub_ary[sec_ary[ridx] * 512];
}`,
		},
		{
			Name: "stl08", Suite: "stl", Fn: "case_8",
			Intended: []core.Class{core.UDT},
			Note:     "store and load separated by arithmetic, still inside the LSQ window",
			Source: stlPrelude + `
uint32_t slot8;
void case_8(uint32_t idx) {
	slot8 = idx & (ary_size - 1);
	uint32_t a = idx * 3;
	uint32_t b = a + 7;
	temp &= pub_ary[sec_ary[slot8] * 512 + (b & 0)];
}`,
		},
		{
			Name: "stl09", Suite: "stl", Fn: "case_9",
			Intended: []core.Class{core.UDT},
			Note:     "struct field overwrite bypassed",
			Source: stlPrelude + `
struct Ctx { uint32_t idx; uint32_t pad; };
struct Ctx ctx;
void case_9(uint32_t idx) {
	ctx.idx = idx & (ary_size - 1);
	temp &= pub_ary[sec_ary[ctx.idx] * 512];
}`,
		},
		{
			Name: "stl10", Suite: "stl", Fn: "case_10",
			Intended: []core.Class{core.UDT},
			Note:     "argument spill bypass: callee reads the caller's stale slot",
			Source: stlPrelude + `
uint8_t probe(uint32_t i) {
	return pub_ary[sec_ary[i & 15] * 512];
}
void case_10(uint32_t idx) {
	temp &= probe(idx);
}`,
		},
		{
			Name: "stl11", Suite: "stl", Fn: "case_11",
			Intended: []core.Class{core.UDT},
			Note:     "two stores to the slot; either can be bypassed",
			Source: stlPrelude + `
uint32_t slot11;
void case_11(uint32_t idx) {
	slot11 = idx;
	slot11 = idx & (ary_size - 1);
	temp &= pub_ary[sec_ary[slot11] * 512];
}`,
		},
		{
			Name: "stl12", Suite: "stl", Fn: "case_12",
			Intended: []core.Class{core.UDT},
			Note:     "bypass inside a loop body",
			Source: stlPrelude + `
uint32_t slot12;
void case_12(uint32_t idx, uint32_t n) {
	for (uint32_t i = 0; i < n; i++) {
		slot12 = idx & (ary_size - 1);
		temp &= pub_ary[sec_ary[slot12] * 512];
	}
}`,
		},
		{
			Name: "stl13", Suite: "stl", Fn: "case_13",
			Intended: []core.Class{core.UDT},
			Note:     "labeled secure by the benchmark authors, but §6.1: a return bypassing a stack store leaks — modeled here as a helper whose cleanup store is bypassable",
			Source: stlPrelude + `
uint32_t slot13;
uint8_t helper13(uint32_t i) {
	slot13 = i & 15;
	return sec_ary[slot13];
}
void case_13(uint32_t idx) {
	temp &= pub_ary[helper13(idx) * 512];
}`,
		},
		{
			Name: "stl14", Suite: "stl", Fn: "case_14",
			Secure: true,
			Note:   "no store precedes the load: nothing to bypass",
			Source: stlPrelude + `
uint8_t case_14(void) {
	return pub_ary[0];
}`,
		},
	}
}

const fwdPrelude = `
uint8_t sec_ary1[16];
uint8_t sec_ary2[16];
uint8_t pub_ary[131072];
uint32_t sec_ary1_size = 16;
uint32_t sec_ary2_size = 16;
uint8_t temp;
uint8_t *ptr;
`

// FWD returns the litmus-fwd suite: Spectre v1.1 gadgets where a
// speculative (bounds-check-bypassing) store forwards attacker data.
func FWD() []Case {
	return []Case{
		{
			Name: "fwd01", Suite: "fwd", Fn: "fwd_1",
			Intended: []core.Class{core.UDT},
			Note:     "speculative store to attacker index, then forwarded to a load",
			Source: fwdPrelude + `
uint32_t slot_f1;
void fwd_1(uint32_t idx, uint8_t v) {
	if (idx < sec_ary1_size) {
		sec_ary1[idx] = v;
		temp &= pub_ary[sec_ary1[idx] * 512];
	}
}`,
		},
		{
			Name: "fwd02", Suite: "fwd", Fn: "fwd_2",
			Intended: []core.Class{core.UDT},
			Note:     "speculatively overwritten index steers a later access",
			Source: fwdPrelude + `
uint32_t idx_f2;
void fwd_2(uint32_t idx) {
	if (idx < sec_ary1_size) {
		idx_f2 = idx;
	}
	temp &= pub_ary[sec_ary1[idx_f2 & 15] * 512];
}`,
		},
		{
			Name: "fwd03", Suite: "fwd", Fn: "fwd_3",
			Intended: []core.Class{core.UDT},
			Note:     "speculative write through a pointer",
			Source: fwdPrelude + `
void fwd_3(uint32_t idx, uint8_t v) {
	if (idx < sec_ary2_size) {
		ptr[idx] = v;
		temp &= pub_ary[sec_ary2[idx] * 512];
	}
}`,
		},
		{
			Name: "fwd04", Suite: "fwd", Fn: "fwd_4",
			Intended: []core.Class{core.UDT},
			Note:     "two-array v1.1 composition",
			Source: fwdPrelude + `
void fwd_4(uint32_t i1, uint32_t i2) {
	if (i1 < sec_ary1_size) {
		if (i2 < sec_ary2_size) {
			sec_ary2[i2] = sec_ary1[i1];
			temp &= pub_ary[sec_ary2[i2] * 512];
		}
	}
}`,
		},
		{
			Name: "fwd05", Suite: "fwd", Fn: "fwd_5",
			Intended: []core.Class{core.UDT},
			Note:     "forwarded secret reused as a pointer offset",
			Source: fwdPrelude + `
uint32_t off_f5;
void fwd_5(uint32_t idx) {
	if (idx < sec_ary1_size) {
		off_f5 = sec_ary1[idx];
		temp &= pub_ary[off_f5 * 512];
	}
}`,
		},
	}
}

// NEW returns the paper's own litmus-new suite. NEW01 is the §6.1 listing
// verbatim.
func NEW() []Case {
	return []Case{
		{
			Name: "new01", Suite: "new", Fn: "new_1",
			Intended: []core.Class{core.UDT},
			Note:     "§6.1 NEW01: attacker-controlled speculative write of a secret to a pointer/index in memory, then dereferenced",
			Source: fwdPrelude + `
void new_1(size_t idx1, size_t idx2) {
	if (idx1 < sec_ary1_size && idx2 < sec_ary2_size) {
		sec_ary2[idx2] += sec_ary1[idx1] * 512;
	}
	*ptr = 0;
}`,
		},
		{
			Name: "new02", Suite: "new", Fn: "new_2",
			Intended: []core.Class{core.UDT},
			Note:     "variant: secret written into an index slot then used after the join",
			Source: fwdPrelude + `
uint32_t slot_n2;
void new_2(size_t idx1) {
	if (idx1 < sec_ary1_size) {
		slot_n2 = sec_ary1[idx1];
	}
	temp &= pub_ary[slot_n2 * 512];
}`,
		},
	}
}

// All returns every case across the four suites.
func All() []Case {
	var out []Case
	out = append(out, PHT()...)
	out = append(out, STL()...)
	out = append(out, FWD()...)
	out = append(out, NEW()...)
	out = append(out, PSF()...)
	out = append(out, IMP()...)
	out = append(out, SS()...)
	return out
}

// Suites returns the cases grouped by suite name in paper order.
func Suites() map[string][]Case {
	return map[string][]Case{
		"pht": PHT(),
		"stl": STL(),
		"fwd": FWD(),
		"new": NEW(),
		"psf": PSF(),
		"imp": IMP(),
		"ss":  SS(),
	}
}
