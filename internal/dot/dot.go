// Package dot renders event graphs and A-CFGs in Graphviz DOT form,
// reproducing the visual conventions of the paper's figures: po/tfo edges
// solid, dependency edges gray, com edges labeled, comx edges dashed when
// they deviate from architectural expectation.
package dot

import (
	"fmt"
	"strings"

	"lcm/internal/acfg"
	"lcm/internal/event"
	"lcm/internal/relation"
)

// Graph renders a candidate execution as DOT.
func Graph(g *event.Graph, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n", title)
	for _, e := range g.Events {
		attrs := ""
		switch {
		case e.Kind == event.KTop:
			attrs = `, shape=circle, label="⊤"`
		case e.Kind == event.KBottom:
			attrs = `, shape=circle, label="⊥"`
		case e.Transient:
			attrs = ", style=dashed"
		case e.Prefetch:
			attrs = ", style=dotted"
		}
		if attrs == "" || e.Kind == event.KTop || e.Kind == event.KBottom {
			fmt.Fprintf(&b, "  n%d [label=%q%s];\n", e.ID, nodeLabel(e), attrs)
		} else {
			fmt.Fprintf(&b, "  n%d [label=%q%s];\n", e.ID, nodeLabel(e), attrs)
		}
	}
	edges := func(r *relation.Relation, label, attrs string) {
		for _, p := range reduce(r).Pairs() {
			fmt.Fprintf(&b, "  n%d -> n%d [label=%q%s];\n", p.From, p.To, label, attrs)
		}
	}
	edges(g.PO, "po", "")
	edges(g.TFO.Diff(g.PO), "tfo", ", color=gray40")
	edges(g.Addr, "addr", ", color=gray60, fontcolor=gray40")
	edges(g.Data, "data", ", color=gray60, fontcolor=gray40")
	edges(g.Ctrl, "ctrl", ", color=gray80, fontcolor=gray60")
	// com edges lacking consistent comx edges are the paper's dashed
	// "culprit" edges (§3.2.3).
	for _, p := range g.RF.Pairs() {
		style := ""
		if !g.RFX.Has(p.From, p.To) {
			style = ", style=dashed, color=red"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"rf\"%s];\n", p.From, p.To, style)
	}
	// The observer's implicit ⊤ rf→ ⊥ edge (Fig. 2a draws it): dashed when
	// ⊥ microarchitecturally reads from a program event instead of ⊤.
	if tops := g.Tops(); len(tops) == 1 {
		top := tops[0].ID
		for _, bot := range g.Bottoms() {
			deviates := false
			for _, p := range g.RFX.Pairs() {
				if p.To == bot.ID && p.From != top {
					deviates = true
				}
			}
			if deviates && !g.RFX.Has(top, bot.ID) {
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"rf\", style=dashed, color=red];\n", top, bot.ID)
			}
		}
	}
	edges(g.CO, "co", ", color=blue")
	edges(g.RFX, "rfx", ", color=darkgreen")
	edges(g.COX, "cox", ", color=purple")
	b.WriteString("}\n")
	return b.String()
}

func nodeLabel(e *event.Event) string {
	if e.Label != "" {
		return fmt.Sprintf("%d: %s", e.ID, e.Label)
	}
	return e.String()
}

// reduce performs a transitive reduction for readability: drop pairs
// implied by two-step paths (the stored po/tfo are transitive closures).
func reduce(r *relation.Relation) *relation.Relation {
	out := r.Clone()
	for _, p := range r.Pairs() {
		for _, q := range r.Pairs() {
			if p.To == q.From && r.Has(p.From, q.To) && p.From != q.To {
				out.Remove(p.From, q.To)
			}
		}
	}
	return out
}

// ACFG renders an abstract CFG as DOT.
func ACFG(g *acfg.Graph, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  node [shape=box, fontname=\"monospace\"];\n", title)
	for _, n := range g.Nodes {
		shape := ""
		switch {
		case n.Kind == acfg.NEntry || n.Kind == acfg.NExit:
			shape = ", shape=circle"
		case n.IsBranch():
			shape = ", shape=diamond"
		case n.Kind == acfg.NHavoc:
			shape = ", style=dotted"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", n.ID, n.String(), shape)
	}
	for _, n := range g.Nodes {
		for _, s := range g.Succs(n.ID) {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", n.ID, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
