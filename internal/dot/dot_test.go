package dot

import (
	"strings"
	"testing"

	"lcm/internal/acfg"
	"lcm/internal/attacks"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func TestGraphRendersAttackFigures(t *testing.T) {
	for _, a := range attacks.All() {
		d := Graph(a.Graph, a.Name)
		for _, want := range []string{"digraph", "⊤", "rfx"} {
			if !strings.Contains(d, want) {
				t.Errorf("%s: missing %q", a.Name, want)
			}
		}
		// The culprit com edges (rf without consistent rfx) render dashed
		// red, per the paper's figure convention — every attack has one.
		if a.Name != "silent-stores" && a.Name != "indirect-prefetch" {
			if !strings.Contains(d, "style=dashed, color=red") {
				t.Errorf("%s: no culprit rf edge highlighted", a.Name)
			}
		}
	}
}

func TestTransitiveReductionKeepsCover(t *testing.T) {
	a := attacks.SpectreV1()
	d := Graph(a.Graph, "x")
	// po is stored transitively closed; the rendering must not contain the
	// long-range top-to-bottom po edge label more times than the covering
	// chain requires.
	poEdges := strings.Count(d, `[label="po"]`)
	events := len(a.Graph.Events)
	if poEdges >= events*events/2 {
		t.Errorf("po not reduced: %d edges for %d events", poEdges, events)
	}
	if poEdges == 0 {
		t.Error("po chain missing entirely")
	}
}

func TestACFGRendering(t *testing.T) {
	f, err := minic.Parse(`
		int A[4];
		int f(int x) { if (x) { return A[1]; } return A[2]; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acfg.Build(m, "f", acfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := ACFG(g, "f")
	for _, want := range []string{"digraph", "shape=diamond", "entry", "exit"} {
		if !strings.Contains(d, want) {
			t.Errorf("missing %q", want)
		}
	}
}
