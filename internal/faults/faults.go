// Package faults defines the structured failure taxonomy of the
// fault-tolerant analysis supervisor: every way a per-item analysis can
// fail without the process dying is classified into exactly one of four
// sentinel kinds. The taxonomy is the contract between the layers — the
// worker pool (internal/harness) converts panics into ErrPanic items, the
// detector marks deadline and budget exhaustion, the degradation ladder
// (detect.AnalyzeFuncLadder) decides per kind whether to retry at a lower
// precision rung, and the run report and metrics surface the kind so no
// failure is ever silent.
//
// The package is a dependency leaf: sat, detect, harness, and the CLIs
// all import it, so it must import nothing from this repo.
package faults

import (
	"context"
	"errors"
	"fmt"
)

// The four sentinel failure kinds. Classified errors wrap exactly one of
// them, so errors.Is works through any amount of context wrapping.
var (
	// ErrDeadline marks an analysis cut off by its wall-clock deadline
	// (context.DeadlineExceeded at the item level).
	ErrDeadline = errors.New("deadline exceeded")
	// ErrBudget marks an analysis cut off by a step budget: solver query
	// caps, conflict budgets, or node limits.
	ErrBudget = errors.New("budget exhausted")
	// ErrPanic marks a worker panic converted into a per-item error by the
	// pool's recovery handler.
	ErrPanic = errors.New("worker panic")
	// ErrCanceled marks an item abandoned because its context was
	// canceled (campaign shutdown or an injected cancellation).
	ErrCanceled = errors.New("canceled")
)

// Kind names a classified error's sentinel: "deadline", "budget",
// "panic", "canceled", or "" for nil / unclassified errors. The names are
// stable identifiers used in metric counter names ("faults.<kind>"),
// report failure fields, and degradation-regression headers.
func Kind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrBudget):
		return "budget"
	case errors.Is(err, ErrPanic):
		return "panic"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	}
	return ""
}

// IsFault reports whether err is classified under the taxonomy. Faults
// are recoverable by degradation; anything else (parse errors, missing
// functions, IO) is a genuine error the supervisor must propagate.
func IsFault(err error) bool { return Kind(err) != "" }

// Kinds lists every kind name in fixed order, for exhaustive metrics
// accounting.
func Kinds() []string { return []string{"deadline", "budget", "panic", "canceled"} }

// Deadlinef, Budgetf, Panicf, and Canceledf build classified errors with
// context. The sentinel is wrapped, so errors.Is(err, ErrX) holds.

// Deadlinef returns a classified deadline error.
func Deadlinef(format string, args ...interface{}) error {
	return wrap(ErrDeadline, format, args...)
}

// Budgetf returns a classified budget error.
func Budgetf(format string, args ...interface{}) error {
	return wrap(ErrBudget, format, args...)
}

// Panicf returns a classified panic error.
func Panicf(format string, args ...interface{}) error {
	return wrap(ErrPanic, format, args...)
}

// Canceledf returns a classified cancellation error.
func Canceledf(format string, args ...interface{}) error {
	return wrap(ErrCanceled, format, args...)
}

func wrap(sentinel error, format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", sentinel, fmt.Sprintf(format, args...))
}

// FromContext classifies a context error: DeadlineExceeded → ErrDeadline,
// Canceled → ErrCanceled, nil → nil.
func FromContext(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrDeadline, err)
	default:
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
}
