// Package faults defines the structured failure taxonomy of the
// fault-tolerant analysis supervisor: every way a per-item analysis can
// fail without the process dying is classified into exactly one sentinel
// kind — four analysis kinds (deadline, budget, panic, canceled) plus two
// operational storage kinds (io, corrupt). The taxonomy is the contract
// between the layers — the worker pool (internal/harness) converts panics
// into ErrPanic items, the detector marks deadline and budget exhaustion,
// the campaign store (internal/campstore) classifies WAL and snapshot
// failures, the degradation ladder (detect.AnalyzeFuncLadder) decides per
// kind whether to retry at a lower precision rung (never for operational
// kinds — see IsOperational), and the run report and metrics surface the
// kind so no failure is ever silent.
//
// The package is a dependency leaf: sat, detect, harness, and the CLIs
// all import it, so it must import nothing from this repo.
package faults

import (
	"context"
	"errors"
	"fmt"
)

// The sentinel failure kinds. Classified errors wrap exactly one of
// them, so errors.Is works through any amount of context wrapping.
var (
	// ErrDeadline marks an analysis cut off by its wall-clock deadline
	// (context.DeadlineExceeded at the item level).
	ErrDeadline = errors.New("deadline exceeded")
	// ErrBudget marks an analysis cut off by a step budget: solver query
	// caps, conflict budgets, or node limits.
	ErrBudget = errors.New("budget exhausted")
	// ErrPanic marks a worker panic converted into a per-item error by the
	// pool's recovery handler.
	ErrPanic = errors.New("worker panic")
	// ErrCanceled marks an item abandoned because its context was
	// canceled (campaign shutdown or an injected cancellation).
	ErrCanceled = errors.New("canceled")
	// ErrIO marks a storage-layer operation (campaign-store WAL append,
	// fsync, snapshot rename) that failed at the operating system. Unlike
	// the four analysis kinds, degradation cannot help: the verdict was
	// computable, it just could not be persisted. Operational kinds are
	// retryable after the environment recovers — the campaign store's
	// lease protocol makes the retry safe.
	ErrIO = errors.New("storage i/o failure")
	// ErrCorrupt marks on-disk state that failed its integrity check
	// beyond what crash recovery is allowed to repair: a campaign-store
	// snapshot with a bad checksum, or a log bound to a different
	// campaign. Recoverable torn tails are healed silently and never
	// raise this; ErrCorrupt means the store refuses to guess.
	ErrCorrupt = errors.New("corrupt state")
)

// Kind names a classified error's sentinel: "deadline", "budget",
// "panic", "canceled", or "" for nil / unclassified errors. The names are
// stable identifiers used in metric counter names ("faults.<kind>"),
// report failure fields, and degradation-regression headers.
func Kind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrBudget):
		return "budget"
	case errors.Is(err, ErrPanic):
		return "panic"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrIO):
		return "io"
	case errors.Is(err, ErrCorrupt):
		return "corrupt"
	}
	return ""
}

// IsFault reports whether err is classified under the taxonomy: the
// item's failure is accounted for, never silent. Analysis kinds are
// recoverable by degradation; operational kinds (io, corrupt) are
// recoverable by retrying the item once storage works again. Anything
// unclassified (parse errors, missing functions) is a genuine error the
// supervisor must propagate.
func IsFault(err error) bool { return Kind(err) != "" }

// IsOperational reports whether err is one of the storage-layer kinds
// (io, corrupt). The degradation ladder must NOT descend on these:
// re-running the analysis at lower precision cannot fix a disk, and the
// campaign store's lease protocol already guarantees the item is re-run
// safely after recovery.
func IsOperational(err error) bool {
	k := Kind(err)
	return k == "io" || k == "corrupt"
}

// Kinds lists every kind name in fixed order, for exhaustive metrics
// accounting.
func Kinds() []string {
	return []string{"deadline", "budget", "panic", "canceled", "io", "corrupt"}
}

// Deadlinef, Budgetf, Panicf, and Canceledf build classified errors with
// context. The sentinel is wrapped, so errors.Is(err, ErrX) holds.

// Deadlinef returns a classified deadline error.
func Deadlinef(format string, args ...interface{}) error {
	return wrap(ErrDeadline, format, args...)
}

// Budgetf returns a classified budget error.
func Budgetf(format string, args ...interface{}) error {
	return wrap(ErrBudget, format, args...)
}

// Panicf returns a classified panic error.
func Panicf(format string, args ...interface{}) error {
	return wrap(ErrPanic, format, args...)
}

// Canceledf returns a classified cancellation error.
func Canceledf(format string, args ...interface{}) error {
	return wrap(ErrCanceled, format, args...)
}

// IOf returns a classified storage-I/O error.
func IOf(format string, args ...interface{}) error {
	return wrap(ErrIO, format, args...)
}

// Corruptf returns a classified corruption error.
func Corruptf(format string, args ...interface{}) error {
	return wrap(ErrCorrupt, format, args...)
}

func wrap(sentinel error, format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", sentinel, fmt.Sprintf(format, args...))
}

// FromContext classifies a context error: DeadlineExceeded → ErrDeadline,
// Canceled → ErrCanceled, nil → nil.
func FromContext(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrDeadline, err)
	default:
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
}
