// Package aeg builds the Symbolic Abstract Event Graph of §5.2: the A-CFG's
// nodes annotated with boolean variables that encode, per candidate
// execution, whether each node executes architecturally (po) or transiently
// (tfo), which way each branch resolves, and which branches mis-speculate.
// Edge-presence formulas (Fig. 7) become constraints over these variables:
// po implies tfo, a mis-speculation window extends down the wrong arm of an
// architecturally-executed branch for at most the speculation bound, and a
// transient node's operands must themselves be fetched. Window constraints
// are encoded lazily, per branch, on first use — the directed-search
// structure that keeps Clou's solver queries small (§5.3).
package aeg

import (
	"context"
	"fmt"

	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/dataflow"
	"lcm/internal/sat"
	"lcm/internal/smt"
)

// Options bound the microarchitectural resources (§6: ROB/LSQ 250/50,
// window size Wsize for the sliding-window search §6.2.1).
type Options struct {
	ROB   int // reorder-buffer capacity: max speculation window length
	LSQ   int // load-store-queue capacity: max store-bypass distance
	Wsize int // sliding window for the transmitter search
	// SolverMode selects how detection queries are discharged: warm
	// incremental CDCL (default), fresh-replica-per-query reference, or
	// both with verdict self-checking (see smt.Mode).
	SolverMode smt.Mode
}

func (o *Options) defaults() {
	if o.ROB == 0 {
		o.ROB = 250
	}
	if o.LSQ == 0 {
		o.LSQ = 50
	}
	if o.Wsize == 0 {
		o.Wsize = 100
	}
}

// AEG is the symbolic abstract event graph for one function.
type AEG struct {
	G     *acfg.Graph
	Alias *alias.Analysis
	S     *smt.Solver
	Opts  Options

	arch    []*smt.Expr          // per node: executes architecturally
	take    map[int]*smt.Expr    // branch → first successor taken
	misspec map[int]*smt.Expr    // branch → window opened (lazily encoded)
	transIn map[[2]int]*smt.Expr // (branch, node) → node in that window
	encoded map[int]bool         // branches whose window is asserted
	// windows[b]: nodes reachable from either arm of b within the
	// speculation bound without crossing a fence, flagged per arm.
	windows map[int]map[int][2]bool
	// winBits[b]: dense mirror of windows[b]'s key set — the detectors
	// probe window membership once per (candidate, branch), where the
	// nested map hash is measurable.
	winBits map[int]dataflow.BitSet
	// windist[b]: minimum fetch distance of each window node from b (the
	// first node of an arm is at distance 1).
	windist map[int]map[int]int
}

// Build constructs the AEG, asserts the architectural path semantics, and
// precomputes (but does not yet assert) the speculation windows.
func Build(g *acfg.Graph, al *alias.Analysis, opts Options) *AEG {
	opts.defaults()
	a := &AEG{
		G:       g,
		Alias:   al,
		S:       smt.NewSolverMode(opts.SolverMode),
		Opts:    opts,
		take:    map[int]*smt.Expr{},
		misspec: map[int]*smt.Expr{},
		transIn: map[[2]int]*smt.Expr{},
		encoded: map[int]bool{},
		windows: map[int]map[int][2]bool{},
		winBits: map[int]dataflow.BitSet{},
		windist: map[int]map[int]int{},
	}
	a.encodeArch()
	a.computeWindows()
	return a
}

// Arch returns the architectural-execution variable of node n.
func (a *AEG) Arch(n int) *smt.Expr { return a.arch[n] }

// Take returns the branch-direction variable of branch node b (true =
// first successor).
func (a *AEG) Take(b int) *smt.Expr { return a.take[b] }

// Misspec returns branch b's mis-speculation variable, encoding its window
// constraints on first use.
func (a *AEG) Misspec(b int) *smt.Expr {
	a.encodeBranch(b)
	return a.misspec[b]
}

// Exec returns the formula "node n is fetched when branch b
// mis-speculates": architecturally, or transiently inside b's window.
func (a *AEG) ExecUnder(b, n int) *smt.Expr {
	return smt.Or(a.arch[n], a.TransUnder(b, n))
}

// Exec returns the formula "node n executes architecturally" — for
// queries that do not involve a speculation window (STL paths).
func (a *AEG) Exec(n int) *smt.Expr { return a.arch[n] }

// encodeArch asserts the architectural path semantics: the entry executes;
// a node executes iff control reaches it along resolved branch outcomes.
func (a *AEG) encodeArch() {
	g := a.G
	a.arch = make([]*smt.Expr, len(g.Nodes))
	for _, id := range g.Topo() {
		a.arch[id] = a.S.Var(fmt.Sprintf("arch!%d", id))
	}
	for _, n := range g.Nodes {
		if n.IsBranch() {
			a.take[n.ID] = a.S.Var(fmt.Sprintf("take!%d", n.ID))
		}
	}
	a.S.Assert(a.arch[g.Entry])
	for _, id := range g.Topo() {
		if id == g.Entry {
			continue
		}
		var ins []*smt.Expr
		for _, p := range g.Preds(id) {
			pn := g.Nodes[p]
			cond := a.arch[p]
			if pn.IsBranch() {
				succ := g.Succs(p)
				switch {
				case len(succ) < 2 || (succ[0] == id && succ[1] == id):
					// degenerate branch (cut back edge): unconditional
				case succ[1] == id && succ[0] != id:
					cond = smt.And(cond, smt.Not(a.take[p]))
				default:
					cond = smt.And(cond, a.take[p])
				}
			}
			ins = append(ins, cond)
		}
		if len(ins) == 0 {
			a.S.Assert(smt.Not(a.arch[id]))
			continue
		}
		a.S.Assert(smt.Iff(a.arch[id], smt.Or(ins...)))
	}
}

// computeWindows statically derives each branch's speculation window: the
// nodes fetchable down each arm within the min(ROB, Wsize) bound without
// crossing an lfence (§6.1).
func (a *AEG) computeWindows() {
	for _, b := range a.G.Nodes {
		if !b.IsBranch() {
			continue
		}
		succ := a.G.Succs(b.ID)
		if len(succ) < 2 {
			continue
		}
		win := map[int][2]bool{}
		dist := map[int]int{}
		for arm := 0; arm < 2; arm++ {
			for n, d := range a.windowFrom(succ[arm]) {
				w := win[n]
				w[arm] = true
				win[n] = w
				if old, ok := dist[n]; !ok || d+1 < old {
					dist[n] = d + 1
				}
			}
		}
		a.windows[b.ID] = win
		a.windist[b.ID] = dist
		bits := dataflow.NewBitSet(a.G.Len())
		for n := range win {
			bits.Set(n)
		}
		a.winBits[b.ID] = bits
	}
}

// encodeBranch lazily asserts branch b's window semantics: misspec implies
// the branch executes architecturally; a node is transient in the window
// only down the arm the branch did not take; and a transient node's
// operand definitions must be fetched (architecturally before the branch,
// or transiently inside the same window).
func (a *AEG) encodeBranch(b int) {
	if a.encoded[b] {
		return
	}
	win, ok := a.windows[b]
	if !ok {
		return
	}
	a.encoded[b] = true
	m := a.S.Var(fmt.Sprintf("misspec!%d", b))
	a.misspec[b] = m
	a.S.Assert(smt.Implies(m, a.arch[b]))
	// Window nodes are visited in sorted order so SMT variable numbering
	// and clause order are run-to-run deterministic; otherwise the CDCL
	// search (and its effort counters in run reports) would depend on Go
	// map iteration order.
	nodes := make([]int, 0, len(win))
	for n := range win {
		nodes = append(nodes, n)
	}
	sortInts(nodes)
	for _, n := range nodes {
		arms := win[n]
		v := a.S.Var(fmt.Sprintf("transin!%d!%d", b, n))
		a.transIn[[2]int{b, n}] = v
		var armOK []*smt.Expr
		if arms[0] {
			armOK = append(armOK, smt.Not(a.take[b]))
		}
		if arms[1] {
			armOK = append(armOK, a.take[b])
		}
		a.S.Assert(smt.Implies(v, smt.And(m, smt.Or(armOK...))))
	}
	// Data feasibility, within this window.
	for _, n := range nodes {
		node := a.G.Nodes[n]
		v := a.transIn[[2]int{b, n}]
		for _, defs := range node.ArgDefs {
			if len(defs) == 0 {
				continue
			}
			var any []*smt.Expr
			for _, d := range defs {
				e := a.arch[d]
				if dv, ok := a.transIn[[2]int{b, d}]; ok {
					e = smt.Or(e, dv)
				}
				any = append(any, e)
			}
			a.S.Assert(smt.Implies(v, smt.Or(any...)))
		}
	}
}

// windowFrom returns nodes reachable from start within the speculation
// bound, stopping at lfence nodes, each mapped to its BFS depth from
// start (start itself is at depth 0).
func (a *AEG) windowFrom(start int) map[int]int {
	bound := a.Opts.ROB
	if a.Opts.Wsize < bound {
		bound = a.Opts.Wsize
	}
	out := map[int]int{}
	if a.G.Nodes[start].IsFence() && a.G.Nodes[start].Instr.Sub == "lfence" {
		return out
	}
	out[start] = 0
	frontier := []int{start}
	for depth := 0; depth < bound && len(frontier) > 0; depth++ {
		var next []int
		for _, n := range frontier {
			for _, s := range a.G.Succs(n) {
				if _, seen := out[s]; seen {
					continue
				}
				sn := a.G.Nodes[s]
				if sn.IsFence() && sn.Instr.Sub == "lfence" {
					continue // speculation barrier
				}
				out[s] = depth + 1
				next = append(next, s)
			}
		}
		frontier = next
	}
	return out
}

// TransUnder returns the variable "node n is transient in branch b's
// window", or False if n is outside every window of b.
func (a *AEG) TransUnder(b, n int) *smt.Expr {
	a.encodeBranch(b)
	if v, ok := a.transIn[[2]int{b, n}]; ok {
		return v
	}
	return a.S.False()
}

// Branches lists the branch nodes that can open windows, sorted.
func (a *AEG) Branches() []int {
	var out []int
	for b := range a.windows {
		out = append(out, b)
	}
	sortInts(out)
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// WindowInfo reports whether node n lies inside some speculation window
// of branch b and, if so, down which arms it is fetchable and its minimum
// fetch distance from the branch. It is the static window interface the
// pre-solver (internal/presolve) consumes, engine-agnostically, through
// its WindowSource contract.
func (a *AEG) WindowInfo(b, n int) (arms [2]bool, dist int, ok bool) {
	win, okb := a.windows[b]
	if !okb {
		return arms, 0, false
	}
	arms, ok = win[n]
	if !ok {
		return arms, 0, false
	}
	return arms, a.windist[b][n], true
}

// ForEachWindowNode visits every node of branch b's speculation window
// with its arm fetchability — presolve.WindowEnumerator's fast path over
// probing WindowInfo per graph node. Iteration order is the windows map's,
// i.e. unspecified; callers must not depend on it.
func (a *AEG) ForEachWindowNode(b int, f func(n int, arms [2]bool)) {
	for n, arms := range a.windows[b] {
		f(n, arms)
	}
}

// InWindow reports whether node n is statically inside some window of b.
func (a *AEG) InWindow(b, n int) bool {
	bits, ok := a.winBits[b]
	return ok && bits.Has(n)
}

// Check decides a query under the structural constraints.
func (a *AEG) Check(assumptions ...*smt.Expr) sat.Status {
	return a.S.Check(assumptions...)
}

// CheckCtx is Check under a context: a cancelled ctx aborts the solver
// search promptly with sat.Unknown (the FuncTimeout path of §6.2).
func (a *AEG) CheckCtx(ctx context.Context, assumptions ...*smt.Expr) sat.Status {
	return a.S.CheckCtx(ctx, assumptions...)
}

// CheckMemo decides a query through the solver's verdict memo: repeated
// queries over semantically equal assumption sets are answered without a
// solver call. Memo hits carry no model — witness reconstruction must use
// Check, which re-solves.
func (a *AEG) CheckMemo(ctx context.Context, assumptions ...*smt.Expr) (sat.Status, bool) {
	return a.S.CheckMemo(ctx, assumptions...)
}

// MemoStats reports the solver's query-memo hit/lookup counters.
func (a *AEG) MemoStats() (hits, lookups int64) { return a.S.MemoStats() }

// SolverStats reports the CDCL search-effort counters accumulated by this
// AEG's solver (decisions, propagations, conflicts, restarts).
func (a *AEG) SolverStats() (decisions, propagations, conflicts, restarts int64) {
	return a.S.SatStats()
}

// IncrementalStats reports the warm CDCL instance's incremental-solving
// counters (prefix-reuse depth, root-unit promotions, clause-DB diet).
func (a *AEG) IncrementalStats() sat.IncStats { return a.S.IncrementalStats() }

// EncodeStats reports the Tseitin gate counters: gates requested and gates
// shared through the hash-cons table.
func (a *AEG) EncodeStats() (gates, shared int64) { return a.S.EncodeStats() }

// ModelCacheHits reports how many queries were answered Sat by extending
// the last model over newly encoded gates, skipping the solver search.
func (a *AEG) ModelCacheHits() int64 { return a.S.ModelCacheHits() }

// SelfCheckStats reports, under Options.SolverMode == smt.ModeCheck, how
// many query verdicts were replayed on a fresh reference solver and how
// many disagreed.
func (a *AEG) SelfCheckStats() (checks, mismatches int64) { return a.S.SelfCheckStats() }

// Model reads back, after a Sat query, the architectural path (node IDs)
// and the transient nodes (from encoded windows), for witness
// construction.
func (a *AEG) Model() (archNodes, transNodes []int, takeDir map[int]bool) {
	takeDir = map[int]bool{}
	transSeen := map[int]bool{}
	for _, n := range a.G.Topo() {
		if a.S.Value(a.arch[n]) {
			archNodes = append(archNodes, n)
		}
	}
	for b := range a.encoded {
		if !a.S.Value(a.misspec[b]) {
			continue
		}
		for n := range a.windows[b] {
			if v, ok := a.transIn[[2]int{b, n}]; ok && a.S.Value(v) && !transSeen[n] {
				transSeen[n] = true
				transNodes = append(transNodes, n)
			}
		}
	}
	sortInts(transNodes)
	for b, v := range a.take {
		takeDir[b] = a.S.Value(v)
	}
	return archNodes, transNodes, takeDir
}
