package aeg

import (
	"testing"

	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/sat"
	"lcm/internal/smt"
)

func buildAEG(t *testing.T, src, fn string, opts Options) *AEG {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := acfg.Build(m, fn, acfg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Build(g, alias.Analyze(g), opts)
}

const branchy = `
int A[16];
int f(int y) {
	int r = 0;
	if (y < 16) {
		r = A[y];
	}
	return r;
}
`

func TestArchPathFeasibility(t *testing.T) {
	a := buildAEG(t, branchy, "f", Options{})
	// Some path exists.
	if a.Check() != sat.Sat {
		t.Fatal("no architectural execution")
	}
	// The exit is always reached.
	if a.Check(smt.Not(a.Arch(a.G.Exit))) != sat.Unsat {
		t.Error("execution can miss the exit")
	}
	// Both branch directions are feasible.
	bs := a.Branches()
	if len(bs) != 1 {
		t.Fatalf("branches = %d", len(bs))
	}
	b := bs[0]
	if a.Check(a.Take(b)) != sat.Sat || a.Check(smt.Not(a.Take(b))) != sat.Sat {
		t.Error("branch direction not free")
	}
}

func TestMisspeculationRequiresArchBranch(t *testing.T) {
	a := buildAEG(t, branchy, "f", Options{})
	b := a.Branches()[0]
	// misspec ⇒ arch(branch).
	if a.Check(a.Misspec(b), smt.Not(a.Arch(b))) != sat.Unsat {
		t.Error("window without executing the branch")
	}
}

func TestTransientOnlyOnWrongArm(t *testing.T) {
	a := buildAEG(t, branchy, "f", Options{})
	b := a.Branches()[0]
	// Find the A[y] load (gep-addressed) inside the if-body: it lies on
	// exactly one arm of the branch. Loads past the join can legitimately
	// be both architectural and transient (re-fetched after rollback).
	var bodyNode int = -1
	for _, n := range a.G.Nodes {
		if n.IsLoad() && a.InWindow(b, n.ID) {
			if in, ok := n.Instr.Args[0].(*ir.Instr); ok && in.Op == ir.OpGEP {
				bodyNode = n.ID
			}
		}
	}
	if bodyNode < 0 {
		t.Fatal("no load in window")
	}
	// The node can be transient...
	if a.Check(a.TransUnder(b, bodyNode)) != sat.Sat {
		t.Fatal("window membership infeasible")
	}
	// ...but then it must be on the arm the branch did not take, and it
	// cannot simultaneously be architectural.
	if a.Check(a.TransUnder(b, bodyNode), a.Arch(bodyNode)) == sat.Sat {
		// A node transient under b while also architecturally executed
		// would mean the branch both took and skipped its arm.
		t.Error("node transient and architectural at once")
	}
}

func TestWindowBound(t *testing.T) {
	// With ROB = 1, only the first instruction past the branch is in the
	// window.
	small := buildAEG(t, branchy, "f", Options{ROB: 1, Wsize: 1})
	big := buildAEG(t, branchy, "f", Options{})
	b1, b2 := small.Branches()[0], big.Branches()[0]
	count := func(a *AEG, b int) int {
		n := 0
		for _, nd := range a.G.Nodes {
			if a.InWindow(b, nd.ID) {
				n++
			}
		}
		return n
	}
	if count(small, b1) >= count(big, b2) {
		t.Errorf("window bound ineffective: %d vs %d", count(small, b1), count(big, b2))
	}
}

func TestModelReadback(t *testing.T) {
	a := buildAEG(t, branchy, "f", Options{})
	b := a.Branches()[0]
	if a.Check(a.Misspec(b)) != sat.Sat {
		t.Fatal("unsat")
	}
	archNodes, _, takeDir := a.Model()
	if len(archNodes) == 0 {
		t.Error("empty architectural path")
	}
	if _, ok := takeDir[b]; !ok {
		t.Error("branch direction missing from model")
	}
}
