package acfg

import (
	"strings"
	"testing"

	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func build(t *testing.T, src, fn string, opts Options) *Graph {
	t.Helper()
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(file)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	g, err := Build(m, fn, opts)
	if err != nil {
		t.Fatalf("acfg: %v", err)
	}
	return g
}

func countKind(g *Graph, pred func(*Node) bool) int {
	n := 0
	for _, nd := range g.Nodes {
		if pred(nd) {
			n++
		}
	}
	return n
}

func TestIsDAGAndConnected(t *testing.T) {
	g := build(t, `
		int f(int n) {
			int s = 0;
			for (int i = 0; i < n; i++) s += i;
			return s;
		}
	`, "f", Options{})
	if order := g.Topo(); len(order) != len(g.Nodes) {
		t.Fatalf("not a DAG: topo covers %d of %d", len(order), len(g.Nodes))
	}
	reach := g.Reachable(g.Entry, -1)
	if !reach[g.Exit] {
		t.Fatal("exit unreachable from entry")
	}
}

func TestLoopUnrolledTwice(t *testing.T) {
	src := `
		int A[8];
		int f(int n) {
			int s = 0;
			for (int i = 0; i < n; i++) s += A[i];
			return s;
		}
	`
	g1 := build(t, src, "f", Options{Unroll: 1})
	g2 := build(t, src, "f", Options{Unroll: 2})
	g3 := build(t, src, "f", Options{Unroll: 3})
	// Each extra unrolling adds a copy of the loop body.
	if !(g1.Len() < g2.Len() && g2.Len() < g3.Len()) {
		t.Errorf("unroll growth broken: %d, %d, %d", g1.Len(), g2.Len(), g3.Len())
	}
	// The loop body load of A appears exactly twice at Unroll=2.
	loads := 0
	for _, n := range g2.Nodes {
		if n.IsLoad() && strings.Contains(n.Instr.String(), "gep") == false {
			_ = n
		}
	}
	// Count gep nodes instead (one per body instance).
	geps := countKind(g2, func(n *Node) bool {
		return n.Kind == NInstr && n.Instr.Op == ir.OpGEP
	})
	if geps != 2 {
		t.Errorf("gep instances = %d, want 2 (two unrollings)", geps)
	}
	_ = loads
}

func TestInlining(t *testing.T) {
	src := `
		int g;
		int leaf(int x) { return x + g; }
		int caller(int x) { return leaf(x) + leaf(x + 1); }
	`
	g := build(t, src, "caller", Options{})
	// The load of global g appears once per inlined call.
	loadsOfG := 0
	for _, n := range g.Nodes {
		if n.IsLoad() {
			if gl, ok := n.Instr.Args[0].(*ir.Global); ok && gl.Nm == "g" {
				loadsOfG++
			}
		}
	}
	if loadsOfG != 2 {
		t.Errorf("inlined loads of g = %d, want 2", loadsOfG)
	}
	// Inline markers recorded.
	markers := countKind(g, func(n *Node) bool {
		return n.Kind == NInstr && n.Instr.Op == ir.OpFence && strings.HasPrefix(n.Instr.Sub, "inlined:")
	})
	if markers != 2 {
		t.Errorf("inline markers = %d", markers)
	}
}

func TestRecursionInlinedTwice(t *testing.T) {
	g := build(t, `
		int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
	`, "fact", Options{})
	// Recursive calls inline until depth 2, then become havoc nodes.
	havocs := countKind(g, func(n *Node) bool { return n.Kind == NHavoc })
	if havocs == 0 {
		t.Error("deep recursion should degrade to havoc")
	}
	inlined := countKind(g, func(n *Node) bool {
		return n.Kind == NInstr && n.Instr != nil && strings.HasPrefix(n.Instr.Sub, "inlined:fact")
	})
	if inlined != 1 {
		t.Errorf("fact inlined %d times, want 1 (depth 2 total)", inlined)
	}
	if order := g.Topo(); len(order) != len(g.Nodes) {
		t.Fatal("not a DAG after recursive inlining")
	}
}

func TestUndefinedCallBecomesHavoc(t *testing.T) {
	g := build(t, `
		int memcmp(const void *a, const void *b, size_t n);
		uint8_t buf[16];
		int f(uint8_t *p) { return memcmp(p, buf, 16); }
	`, "f", Options{})
	havocs := 0
	for _, n := range g.Nodes {
		if n.Kind == NHavoc {
			havocs++
			if n.Instr.Callee != "memcmp" {
				t.Errorf("havoc callee = %q", n.Instr.Callee)
			}
		}
	}
	if havocs != 1 {
		t.Errorf("havocs = %d", havocs)
	}
}

func TestArgDefsThroughInlining(t *testing.T) {
	src := `
		uint8_t A[16];
		uint8_t deref(uint8_t *p, int i) { return p[i]; }
		uint8_t f(int i) { return deref(A, i); }
	`
	g := build(t, src, "f", Options{})
	// The inlined load p[i] must trace its index back through the call.
	foundGEP := false
	for _, n := range g.Nodes {
		if n.Kind == NInstr && n.Instr.Op == ir.OpGEP && strings.Contains(n.Ctx, "deref") {
			foundGEP = true
			if len(n.ArgDefs) != 2 {
				t.Fatalf("gep ArgDefs = %d", len(n.ArgDefs))
			}
			if len(n.ArgDefs[1]) == 0 {
				t.Error("inlined gep index has no defs (argument flow broken)")
			}
		}
	}
	if !foundGEP {
		t.Fatal("inlined gep not found")
	}
}

func TestBranchNodeHasTwoSuccessors(t *testing.T) {
	g := build(t, `
		int f(int x) { if (x) return 1; return 2; }
	`, "f", Options{})
	found := false
	for _, n := range g.Nodes {
		if n.IsBranch() {
			found = true
			if len(g.Succs(n.ID)) != 2 {
				t.Errorf("branch succs = %d", len(g.Succs(n.ID)))
			}
		}
	}
	if !found {
		t.Fatal("no branch node")
	}
}

func TestNodeBudget(t *testing.T) {
	src := `
		int f0(int x) { return x; }
		int f1(int x) { return f0(x) + f0(x) + f0(x) + f0(x); }
		int f2(int x) { return f1(x) + f1(x) + f1(x) + f1(x); }
		int f3(int x) { return f2(x) + f2(x) + f2(x) + f2(x); }
		int f4(int x) { return f3(x) + f3(x) + f3(x) + f3(x); }
		int f5(int x) { return f4(x) + f4(x) + f4(x) + f4(x); }
		int f6(int x) { return f5(x) + f5(x) + f5(x) + f5(x); }
	`
	file, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lower.Module(file)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(m, "f6", Options{MaxNodes: 500}); err == nil {
		t.Error("node budget not enforced")
	}
}

func TestReachableDepthBound(t *testing.T) {
	g := build(t, `int f(int a, int b) { return a + b + a * b; }`, "f", Options{})
	r1 := g.Reachable(g.Entry, 2)
	rAll := g.Reachable(g.Entry, -1)
	if len(r1) >= len(rAll) {
		t.Errorf("depth bound ineffective: %d vs %d", len(r1), len(rAll))
	}
}

func TestWhileLoopDAG(t *testing.T) {
	g := build(t, `
		int f(int n) {
			while (n > 0) { n--; }
			return n;
		}
	`, "f", Options{})
	if order := g.Topo(); len(order) != len(g.Nodes) {
		t.Fatal("while loop not acyclic after summarization")
	}
	branches := countKind(g, func(n *Node) bool { return n.IsBranch() })
	if branches != 2 { // two unrolled loop-condition checks
		t.Errorf("branch instances = %d, want 2", branches)
	}
}

func TestNestedLoops(t *testing.T) {
	g := build(t, `
		int f(int n) {
			int s = 0;
			for (int i = 0; i < n; i++)
				for (int j = 0; j < n; j++)
					s += i * j;
			return s;
		}
	`, "f", Options{})
	if order := g.Topo(); len(order) != len(g.Nodes) {
		t.Fatal("nested loops not acyclic")
	}
}
