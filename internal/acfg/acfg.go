// Package acfg builds the Abstract CFG of §5.1: a loop- and call-free DAG
// over a function's instructions. Loops are summarized with two unrollings
// (enough to model all com/comx interactions between loop iterations given
// may-alias summaries, §5.1); calls to defined functions are inlined with
// recursion depth 2; calls to undefined functions remain as havoc nodes,
// which downstream analyses treat as a load or store to any pointer
// operand.
package acfg

import (
	"fmt"

	"lcm/internal/ir"
)

// NodeKind classifies A-CFG nodes.
type NodeKind int

// Node kinds.
const (
	NEntry NodeKind = iota
	NExit
	NInstr
	NHavoc // call to an undefined function: may load/store its pointer args
)

// Node is one abstract instruction instance (an original instruction in a
// particular unroll/inline context).
type Node struct {
	ID    int
	Kind  NodeKind
	Instr *ir.Instr
	// Ctx is the inline/unroll context, e.g. "main/f#1".
	Ctx string
	// ArgDefs lists, for each operand of Instr, the A-CFG nodes that may
	// define it (empty for constants, globals, and attacker-visible
	// top-level parameters).
	ArgDefs [][]int
	// RetDefs, for inlined call result uses, is resolved into ArgDefs of
	// the users; HavocArgs preserves pointer operands of havoc calls.
}

// IsLoad reports whether the node is a memory read.
func (n *Node) IsLoad() bool { return n.Kind == NInstr && n.Instr.Op == ir.OpLoad }

// IsStore reports whether the node is a memory write.
func (n *Node) IsStore() bool { return n.Kind == NInstr && n.Instr.Op == ir.OpStore }

// IsBranch reports whether the node is a conditional branch.
func (n *Node) IsBranch() bool { return n.Kind == NInstr && n.Instr.Op == ir.OpCondBr }

// IsFence reports whether the node is a speculation fence.
func (n *Node) IsFence() bool { return n.Kind == NInstr && n.Instr.Op == ir.OpFence }

func (n *Node) String() string {
	switch n.Kind {
	case NEntry:
		return fmt.Sprintf("%d: entry", n.ID)
	case NExit:
		return fmt.Sprintf("%d: exit", n.ID)
	case NHavoc:
		return fmt.Sprintf("%d: havoc call @%s [%s]", n.ID, n.Instr.Callee, n.Ctx)
	}
	return fmt.Sprintf("%d: %s [%s]", n.ID, n.Instr, n.Ctx)
}

// Graph is the A-CFG: a DAG with one entry and one exit.
type Graph struct {
	Fn    string
	Nodes []*Node
	Entry int
	Exit  int
	succs [][]int
	preds [][]int
}

// Succs returns the successor node IDs of n.
func (g *Graph) Succs(n int) []int { return g.succs[n] }

// Preds returns the predecessor node IDs of n.
func (g *Graph) Preds(n int) []int { return g.preds[n] }

// Len returns the node count — the S-AEG size metric of Fig. 8.
func (g *Graph) Len() int { return len(g.Nodes) }

// Options configures A-CFG construction.
type Options struct {
	// Unroll is the number of loop body instances (the paper uses 2).
	Unroll int
	// InlineDepth bounds how many times one function may appear in an
	// inline chain (the paper inlines recursion twice).
	InlineDepth int
	// MaxNodes aborts construction when the graph explodes.
	MaxNodes int
}

func (o *Options) defaults() {
	if o.Unroll == 0 {
		o.Unroll = 2
	}
	if o.InlineDepth == 0 {
		o.InlineDepth = 2
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 60_000
	}
}

// Build constructs the A-CFG for the named function.
func Build(m *ir.Module, fn string, opts Options) (*Graph, error) {
	opts.defaults()
	f := m.Func(fn)
	if f == nil || f.IsDecl() {
		return nil, fmt.Errorf("acfg: no definition for %q", fn)
	}
	b := &builder{m: m, opts: opts, g: &Graph{Fn: fn}}
	entry := b.newNode(&Node{Kind: NEntry, Ctx: fn})
	b.g.Entry = entry.ID
	chain := map[string]int{}
	first, lasts, _, err := b.inline(f, chain, nil, fn)
	if err != nil {
		return nil, err
	}
	exit := b.newNode(&Node{Kind: NExit, Ctx: fn})
	b.g.Exit = exit.ID
	b.edge(entry.ID, first)
	for _, l := range lasts {
		b.edge(l, exit.ID)
	}
	b.finish()
	return b.g, nil
}

type builder struct {
	m     *ir.Module
	opts  Options
	g     *Graph
	edges [][2]int
}

func (b *builder) newNode(n *Node) *Node {
	n.ID = len(b.g.Nodes)
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) edge(from, to int) { b.edges = append(b.edges, [2]int{from, to}) }

func (b *builder) finish() {
	n := len(b.g.Nodes)
	b.g.succs = make([][]int, n)
	b.g.preds = make([][]int, n)
	seen := map[[2]int]bool{}
	for _, e := range b.edges {
		if seen[e] {
			continue
		}
		seen[e] = true
		b.g.succs[e[0]] = append(b.g.succs[e[0]], e[1])
		b.g.preds[e[1]] = append(b.g.preds[e[1]], e[0])
	}
}

// blockInstance is one unrolled copy of an ir.Block.
type blockInstance struct {
	id    int // instance id
	block *ir.Block
	succs []*blockInstance
}

// unrollBlocks converts a function's CFG into a DAG of block instances by
// peeling each loop Unroll times and cutting the final back edge toward
// the loop exit.
func unrollBlocks(f *ir.Func, unroll int) []*blockInstance {
	// Build per-iteration instance layers lazily: we walk the CFG keeping
	// a visit count per block along the current path; a block may be
	// entered at most `unroll` times per path. This duplicates loop bodies
	// like iterative peeling and guarantees a DAG.
	type key struct {
		b     *ir.Block
		count int
	}
	instances := map[key]*blockInstance{}
	var all []*blockInstance
	counts := map[*ir.Block]int{}

	var walk func(blk *ir.Block) *blockInstance
	walk = func(blk *ir.Block) *blockInstance {
		c := counts[blk]
		if c >= unroll {
			return nil // back edge beyond the unroll budget: cut
		}
		k := key{blk, c}
		if inst, ok := instances[k]; ok {
			return inst
		}
		inst := &blockInstance{id: len(all), block: blk}
		instances[k] = inst
		all = append(all, inst)
		counts[blk]++
		for _, s := range blk.Succs() {
			if si := walk(s); si != nil {
				inst.succs = append(inst.succs, si)
			}
		}
		counts[blk]--
		return inst
	}
	walk(f.Entry())
	return all
}

// inline instantiates fn's body as A-CFG nodes. argDefs provides, per
// parameter, the defining nodes of the actual arguments (nil for the
// top-level function). It returns the first node ID, the set of final node
// IDs (rets), and the def sets of returned values.
func (b *builder) inline(f *ir.Func, chain map[string]int, argDefs [][]int, ctx string) (int, []int, []int, error) {
	if len(b.g.Nodes) > b.opts.MaxNodes {
		return 0, nil, nil, fmt.Errorf("acfg: node budget exceeded (%d)", b.opts.MaxNodes)
	}
	chain[f.Nm]++
	defer func() { chain[f.Nm]-- }()

	insts := unrollBlocks(f, b.opts.Unroll)
	if len(insts) == 0 {
		return 0, nil, nil, fmt.Errorf("acfg: empty function %q", f.Nm)
	}

	// Per block-instance, the nodes created for its instructions and the
	// def map from (instr, instance) to node.
	type instrKey struct {
		in   *ir.Instr
		inst *blockInstance
	}
	defs := map[*ir.Instr][]int{} // instruction → all instances' node IDs
	firstNode := map[*blockInstance]int{}
	lastNode := map[*blockInstance]int{}
	var retNodes []int
	var retDefs []int
	// callSplices records call nodes to splice after wiring.
	type splice struct {
		node   *Node
		callee *ir.Func
	}
	var splices []splice
	_ = instrKey{}

	resolveArg := func(v ir.Value) []int {
		switch v := v.(type) {
		case *ir.Instr:
			return append([]int(nil), defs[v]...)
		case *ir.Param:
			if argDefs != nil && v.Idx < len(argDefs) {
				return append([]int(nil), argDefs[v.Idx]...)
			}
			return nil // top-level parameter: attacker-visible input
		default:
			return nil // constants, globals
		}
	}

	// First pass: create nodes per instance in creation order (instances
	// are discovered in DFS order, which respects dominance for the
	// structured CFGs our lowering emits, so defs precede uses).
	for _, inst := range insts {
		prev := -1
		for _, in := range inst.block.Instrs {
			if in.Op == ir.OpBr {
				continue // unconditional branches are pure wiring
			}
			kind := NInstr
			var callee *ir.Func
			if in.Op == ir.OpCall {
				callee = b.m.Func(in.Callee)
				if callee == nil || callee.IsDecl() || chain[in.Callee] >= b.opts.InlineDepth {
					// Undefined target, or recursion beyond the inline
					// budget: model the call as a havoc node (§5.1).
					callee = nil
					kind = NHavoc
				}
			}
			n := b.newNode(&Node{Kind: kind, Instr: in, Ctx: ctx})
			for _, a := range in.Args {
				n.ArgDefs = append(n.ArgDefs, resolveArg(a))
			}
			defs[in] = append(defs[in], n.ID)
			if prev >= 0 {
				b.edge(prev, n.ID)
			} else {
				firstNode[inst] = n.ID
			}
			prev = n.ID
			if in.Op == ir.OpCall && kind == NInstr {
				splices = append(splices, splice{node: n, callee: callee})
			}
			if in.Op == ir.OpRet {
				retNodes = append(retNodes, n.ID)
				if len(in.Args) == 1 {
					retDefs = append(retDefs, resolveArg(in.Args[0])...)
				}
			}
		}
		if prev == -1 {
			// Block contained only an unconditional br: synthesize a
			// pass-through marker so wiring has an anchor.
			n := b.newNode(&Node{Kind: NInstr, Instr: &ir.Instr{Op: ir.OpFence, Sub: "nop"}, Ctx: ctx})
			firstNode[inst] = n.ID
			prev = n.ID
		}
		lastNode[inst] = prev
	}

	// Second pass: wire block instances.
	for _, inst := range insts {
		for _, s := range inst.succs {
			b.edge(lastNode[inst], firstNode[s])
		}
	}

	// Third pass: splice inlined callees.
	for _, sp := range splices {
		subCtx := ctx + "/" + sp.callee.Nm + fmt.Sprintf("#%d", chain[sp.callee.Nm]+1)
		subFirst, subLasts, subRets, err := b.inline(sp.callee, chain, sp.node.ArgDefs, subCtx)
		if err != nil {
			return 0, nil, nil, err
		}
		// The call node becomes a pass-through anchor holding the return
		// defs: rewrite users lazily — users referenced the call node ID
		// in their ArgDefs; replace with subRets.
		callID := sp.node.ID
		for _, n := range b.g.Nodes {
			for i, ds := range n.ArgDefs {
				var out []int
				changed := false
				for _, d := range ds {
					if d == callID {
						out = append(out, subRets...)
						changed = true
					} else {
						out = append(out, d)
					}
				}
				if changed {
					n.ArgDefs[i] = out
				}
			}
		}
		// Wire: call node → callee entry; callee rets → a continuation
		// marker that inherits the call node's outgoing edges. We re-route
		// edges whose source is the call node to originate at ret nodes.
		var newEdges [][2]int
		for _, e := range b.edges {
			if e[0] == callID {
				for _, l := range subLasts {
					newEdges = append(newEdges, [2]int{l, e[1]})
				}
				continue
			}
			newEdges = append(newEdges, e)
		}
		b.edges = newEdges
		b.edge(callID, subFirst)
		// Mark the call node as spliced: downstream passes see it as a
		// no-op marker.
		sp.node.Kind = NInstr
		sp.node.Instr = &ir.Instr{Op: ir.OpFence, Sub: "inlined:" + sp.callee.Nm}
		sp.node.ArgDefs = nil
	}

	// Entry point and final nodes. Rets within inlined calls terminate the
	// *callee*; for the instance set built here, function-level lasts are
	// ret nodes.
	first := firstNode[insts[0]]
	return first, retNodes, retDefs, nil
}

// Topo returns the nodes in topological order (the graph is a DAG by
// construction).
func (g *Graph) Topo() []int {
	indeg := make([]int, len(g.Nodes))
	for _, ss := range g.succs {
		for _, s := range ss {
			indeg[s]++
		}
	}
	var order []int
	var ready []int
	for i := range g.Nodes {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, s := range g.succs[n] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}

// Reachable returns the set of nodes reachable from start within maxDepth
// instruction steps (maxDepth < 0 means unbounded).
func (g *Graph) Reachable(start int, maxDepth int) map[int]bool {
	out := map[int]bool{start: true}
	frontier := []int{start}
	depth := 0
	for len(frontier) > 0 {
		if maxDepth >= 0 && depth >= maxDepth {
			break
		}
		var next []int
		for _, n := range frontier {
			for _, s := range g.succs[n] {
				if !out[s] {
					out[s] = true
					next = append(next, s)
				}
			}
		}
		frontier = next
		depth++
	}
	return out
}
