// Package smt provides a boolean formula layer over the sat package: named
// variables, And/Or/Not/Implies/Iff connectives, Tseitin transformation to
// CNF, incremental solving under assumptions, and sequential-counter
// cardinality constraints. Together with sat it replaces the Z3 instance
// Clou drives (§5.3): symbolic S-AEG edges become formula variables, the
// consistency/confidentiality predicates become asserted formulas, and
// witness executions are read back from models.
package smt

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"lcm/internal/sat"
)

type op int

const (
	opVar op = iota
	opTrue
	opFalse
	opAnd
	opOr
	opNot
)

// Expr is an immutable boolean formula. Build leaves with Solver.Var,
// Solver.True, and Solver.False; combine with And/Or/Not/Implies/Iff.
type Expr struct {
	op   op
	kids []*Expr
	name string
	v    int // sat variable for opVar
}

// Name returns the variable name ("" for non-variables).
func (e *Expr) Name() string { return e.name }

// String renders the formula.
func (e *Expr) String() string {
	switch e.op {
	case opVar:
		return e.name
	case opTrue:
		return "⊤"
	case opFalse:
		return "⊥"
	case opNot:
		return "¬" + e.kids[0].String()
	case opAnd, opOr:
		sep := " ∧ "
		if e.op == opOr {
			sep = " ∨ "
		}
		parts := make([]string, len(e.kids))
		for i, k := range e.kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, sep) + ")"
	}
	return "?"
}

// Solver wraps a sat.Solver with formula-level assertions.
type Solver struct {
	sat     *sat.Solver
	vars    map[string]*Expr
	lits    map[*Expr]sat.Lit
	trueE   *Expr
	falseE  *Expr
	trueLit sat.Lit
	// assumption literal bookkeeping for FailedAssumptions
	lastAssumed map[sat.Lit]*Expr
	// memo caches Check verdicts keyed by the canonicalized assumption
	// literal set; it is dropped whenever a user-level constraint is
	// asserted (new constraints can flip Sat verdicts). Tseitin
	// definitional clauses added while encoding new expressions are an
	// equisatisfiable extension and do not invalidate it.
	memo        map[string]sat.Status
	memoHits    int64
	memoLookups int64
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	s := &Solver{
		sat:  sat.New(),
		vars: make(map[string]*Expr),
		lits: make(map[*Expr]sat.Lit),
	}
	s.trueE = &Expr{op: opTrue}
	s.falseE = &Expr{op: opFalse}
	tv := s.sat.NewVar()
	s.trueLit = sat.Lit(tv)
	s.sat.AddClause(s.trueLit)
	return s
}

// True and False return the boolean constants.
func (s *Solver) True() *Expr { return s.trueE }

// False returns the constant false formula.
func (s *Solver) False() *Expr { return s.falseE }

// Var returns the variable with the given name, creating it on first use.
func (s *Solver) Var(name string) *Expr {
	if e, ok := s.vars[name]; ok {
		return e
	}
	e := &Expr{op: opVar, name: name, v: s.sat.NewVar()}
	s.vars[name] = e
	return e
}

// FreshVar allocates an anonymous variable with a unique generated name.
func (s *Solver) FreshVar(prefix string) *Expr {
	return s.Var(fmt.Sprintf("%s!%d", prefix, s.sat.NumVars()))
}

// NumVars returns the number of underlying SAT variables.
func (s *Solver) NumVars() int { return s.sat.NumVars() }

// NumClauses returns the number of CNF clauses generated so far.
func (s *Solver) NumClauses() int { return s.sat.NumClauses() }

// And returns the conjunction of es (True if empty).
func And(es ...*Expr) *Expr {
	flat := flatten(opAnd, es)
	switch len(flat) {
	case 0:
		return nil // resolved by solver at Tseitin time: nil means True in And context
	case 1:
		return flat[0]
	}
	return &Expr{op: opAnd, kids: flat}
}

// Or returns the disjunction of es (False if empty).
func Or(es ...*Expr) *Expr {
	flat := flatten(opOr, es)
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	return &Expr{op: opOr, kids: flat}
}

func flatten(o op, es []*Expr) []*Expr {
	var out []*Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if e.op == o {
			out = append(out, e.kids...)
			continue
		}
		out = append(out, e)
	}
	return out
}

// Not returns the negation of e.
func Not(e *Expr) *Expr {
	if e.op == opNot {
		return e.kids[0]
	}
	return &Expr{op: opNot, kids: []*Expr{e}}
}

// Implies returns a → b.
func Implies(a, b *Expr) *Expr { return Or(Not(a), b) }

// Iff returns a ↔ b.
func Iff(a, b *Expr) *Expr {
	return And(Implies(a, b), Implies(b, a))
}

// Xor returns a ⊕ b.
func Xor(a, b *Expr) *Expr {
	return Or(And(a, Not(b)), And(Not(a), b))
}

// lit Tseitin-transforms e and returns its defining literal. Results are
// memoized per node, so shared subformulas encode once.
func (s *Solver) lit(e *Expr) sat.Lit {
	if e == nil {
		return s.trueLit
	}
	if l, ok := s.lits[e]; ok {
		return l
	}
	var l sat.Lit
	switch e.op {
	case opVar:
		l = sat.Lit(e.v)
	case opTrue:
		l = s.trueLit
	case opFalse:
		l = s.trueLit.Neg()
	case opNot:
		l = s.lit(e.kids[0]).Neg()
	case opAnd:
		v := sat.Lit(s.sat.NewVar())
		all := make([]sat.Lit, 0, len(e.kids)+1)
		for _, k := range e.kids {
			kl := s.lit(k)
			s.sat.AddClause(v.Neg(), kl) // v → k
			all = append(all, kl.Neg())
		}
		all = append(all, v) // (∧k) → v
		s.sat.AddClause(all...)
		l = v
	case opOr:
		v := sat.Lit(s.sat.NewVar())
		all := make([]sat.Lit, 0, len(e.kids)+1)
		for _, k := range e.kids {
			kl := s.lit(k)
			s.sat.AddClause(v, kl.Neg()) // k → v
			all = append(all, kl)
		}
		all = append(all, v.Neg()) // v → ∨k
		s.sat.AddClause(all...)
		l = v
	}
	s.lits[e] = l
	return l
}

// Assert adds e as a hard constraint.
func (s *Solver) Assert(e *Expr) {
	s.memo = nil
	s.sat.AddClause(s.lit(e))
}

// AssertClause adds a disjunction of formulas as one CNF clause (cheaper
// than Assert(Or(...)) — no auxiliary variable).
func (s *Solver) AssertClause(es ...*Expr) {
	s.memo = nil
	lits := make([]sat.Lit, len(es))
	for i, e := range es {
		lits[i] = s.lit(e)
	}
	s.sat.AddClause(lits...)
}

// Check determines satisfiability of the asserted formulas under the given
// assumptions.
func (s *Solver) Check(assumptions ...*Expr) sat.Status {
	return s.CheckCtx(context.Background(), assumptions...)
}

// CheckCtx is Check under a context: long-running solver queries return
// sat.Unknown promptly once ctx is cancelled, leaving the solver usable.
func (s *Solver) CheckCtx(ctx context.Context, assumptions ...*Expr) sat.Status {
	return s.sat.SolveCtx(ctx, s.assume(assumptions)...)
}

// assume encodes the assumption formulas and records the literal → formula
// mapping FailedAssumptions reads back.
func (s *Solver) assume(assumptions []*Expr) []sat.Lit {
	lits := make([]sat.Lit, len(assumptions))
	s.lastAssumed = make(map[sat.Lit]*Expr, len(assumptions))
	for i, a := range assumptions {
		lits[i] = s.lit(a)
		s.lastAssumed[lits[i]] = a
	}
	return lits
}

// CheckMemo is CheckCtx with a verdict memo keyed by the canonicalized
// (sorted, deduplicated) assumption literal set: semantically equal
// assumption sets — even ones built from distinct Expr nodes — share one
// solver call. The second result reports whether the verdict came from
// the memo; memo hits do not refresh the model or FailedAssumptions, so
// callers needing either must re-Check.
func (s *Solver) CheckMemo(ctx context.Context, assumptions ...*Expr) (sat.Status, bool) {
	lits := s.assume(assumptions)
	key := canonKey(lits)
	s.memoLookups++
	if st, ok := s.memo[key]; ok {
		s.memoHits++
		return st, true
	}
	st := s.sat.SolveCtx(ctx, lits...)
	if st != sat.Unknown {
		if s.memo == nil {
			s.memo = make(map[string]sat.Status)
		}
		s.memo[key] = st
	}
	return st, false
}

// MemoStats returns the query-memo hit and lookup counters.
func (s *Solver) MemoStats() (hits, lookups int64) {
	return s.memoHits, s.memoLookups
}

// SetBudget bounds every subsequent solve call's search effort (see
// sat.Budget). Budget-aborted calls return sat.Unknown and are never
// cached by CheckMemo, so a later unbudgeted Check recomputes honestly.
func (s *Solver) SetBudget(b sat.Budget) { s.sat.SetBudget(b) }

// AbortCause classifies the last Unknown verdict: faults.ErrBudget for an
// exhausted effort budget, faults.ErrDeadline / faults.ErrCanceled for a
// fired context, nil after a decided call.
func (s *Solver) AbortCause() error { return s.sat.AbortCause() }

// SatStats returns the underlying CDCL solver's search-effort counters
// (decisions, propagations, conflicts, restarts).
func (s *Solver) SatStats() (decisions, propagations, conflicts, restarts int64) {
	return s.sat.Counters()
}

// canonKey renders a canonical byte key for an assumption literal set.
func canonKey(lits []sat.Lit) string {
	sorted := append([]sat.Lit(nil), lits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	b.Grow(len(sorted) * 9)
	var prev sat.Lit
	for i, l := range sorted {
		if i > 0 && l == prev {
			continue
		}
		prev = l
		v := uint64(int64(l))
		for j := 0; j < 8; j++ {
			b.WriteByte(byte(v >> (8 * j)))
		}
	}
	return b.String()
}

// FailedAssumptions returns the assumption formulas involved in the last
// Unsat verdict.
func (s *Solver) FailedAssumptions() []*Expr {
	var out []*Expr
	for _, l := range s.sat.FailedAssumptions() {
		if e, ok := s.lastAssumed[l]; ok {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Value evaluates e under the current model (valid after a Sat result).
func (s *Solver) Value(e *Expr) bool {
	switch e.op {
	case opTrue:
		return true
	case opFalse:
		return false
	case opVar:
		return s.sat.Value(e.v)
	case opNot:
		return !s.Value(e.kids[0])
	case opAnd:
		for _, k := range e.kids {
			if !s.Value(k) {
				return false
			}
		}
		return true
	case opOr:
		for _, k := range e.kids {
			if s.Value(k) {
				return true
			}
		}
		return false
	}
	return false
}

// AtMostK asserts that at most k of es are true, using the sequential
// counter encoding (Sinz 2005).
func (s *Solver) AtMostK(k int, es ...*Expr) {
	n := len(es)
	if k >= n {
		return
	}
	s.memo = nil
	if k < 0 {
		s.Assert(s.False())
		return
	}
	if k == 0 {
		for _, e := range es {
			s.Assert(Not(e))
		}
		return
	}
	lits := make([]sat.Lit, n)
	for i, e := range es {
		lits[i] = s.lit(e)
	}
	// r[i][j]: among es[0..i], at least j+1 are true.
	r := make([][]sat.Lit, n)
	for i := range r {
		r[i] = make([]sat.Lit, k)
		for j := range r[i] {
			r[i][j] = sat.Lit(s.sat.NewVar())
		}
	}
	s.sat.AddClause(lits[0].Neg(), r[0][0])
	for j := 1; j < k; j++ {
		s.sat.AddClause(r[0][j].Neg())
	}
	for i := 1; i < n; i++ {
		s.sat.AddClause(lits[i].Neg(), r[i][0])
		s.sat.AddClause(r[i-1][0].Neg(), r[i][0])
		for j := 1; j < k; j++ {
			s.sat.AddClause(lits[i].Neg(), r[i-1][j-1].Neg(), r[i][j])
			s.sat.AddClause(r[i-1][j].Neg(), r[i][j])
		}
		s.sat.AddClause(lits[i].Neg(), r[i-1][k-1].Neg())
	}
}

// AtLeastOne asserts that at least one of es is true.
func (s *Solver) AtLeastOne(es ...*Expr) {
	s.AssertClause(es...)
}

// ExactlyOne asserts that exactly one of es is true.
func (s *Solver) ExactlyOne(es ...*Expr) {
	s.AtLeastOne(es...)
	s.AtMostK(1, es...)
}
