// Package smt provides a boolean formula layer over the sat package: named
// variables, And/Or/Not/Implies/Iff connectives, Tseitin transformation to
// CNF, incremental solving under assumptions, and sequential-counter
// cardinality constraints. Together with sat it replaces the Z3 instance
// Clou drives (§5.3): symbolic S-AEG edges become formula variables, the
// consistency/confidentiality predicates become asserted formulas, and
// witness executions are read back from models.
package smt

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"lcm/internal/sat"
)

type op int

const (
	opVar op = iota
	opTrue
	opFalse
	opAnd
	opOr
	opNot
)

// Expr is an immutable boolean formula. Build leaves with Solver.Var,
// Solver.True, and Solver.False; combine with And/Or/Not/Implies/Iff.
type Expr struct {
	op   op
	kids []*Expr
	name string
	v    int // sat variable for opVar
}

// Name returns the variable name ("" for non-variables).
func (e *Expr) Name() string { return e.name }

// String renders the formula.
func (e *Expr) String() string {
	switch e.op {
	case opVar:
		return e.name
	case opTrue:
		return "⊤"
	case opFalse:
		return "⊥"
	case opNot:
		return "¬" + e.kids[0].String()
	case opAnd, opOr:
		sep := " ∧ "
		if e.op == opOr {
			sep = " ∨ "
		}
		parts := make([]string, len(e.kids))
		for i, k := range e.kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, sep) + ")"
	}
	return "?"
}

// Mode selects how a Solver discharges Check calls.
type Mode int

const (
	// ModeIncremental keeps one warm CDCL instance across the whole query
	// sequence — learnt clauses, phases, and trail prefixes carry over
	// (the default, and the fast path).
	ModeIncremental Mode = iota
	// ModeFresh replays the recorded CNF into a brand-new CDCL instance
	// for every Check: the non-incremental reference the equivalence
	// battery compares against.
	ModeFresh
	// ModeCheck answers from the warm instance but also runs the fresh
	// reference on every Check and counts verdict mismatches (self-check;
	// see SelfCheckStats). Budget-aborted calls on either side are not
	// compared — warm and cold searches legitimately exhaust a budget at
	// different points.
	ModeCheck
)

func (m Mode) String() string {
	switch m {
	case ModeFresh:
		return "fresh"
	case ModeCheck:
		return "check"
	default:
		return "incremental"
	}
}

// ParseMode parses a -solver flag value.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "incremental", "":
		return ModeIncremental, nil
	case "fresh":
		return ModeFresh, nil
	case "check":
		return ModeCheck, nil
	}
	return ModeIncremental, fmt.Errorf("smt: unknown solver mode %q (want incremental, fresh, or check)", name)
}

// Solver wraps a sat.Solver with formula-level assertions.
type Solver struct {
	sat     *sat.Solver
	mode    Mode
	vars    map[string]*Expr
	lits    map[*Expr]sat.Lit
	trueE   *Expr
	falseE  *Expr
	trueLit sat.Lit
	// defs hash-conses Tseitin gate definitions: structurally identical
	// And/Or nodes (same op, same canonicalized child literal set) map to
	// one auxiliary variable and one set of definitional clauses, however
	// many distinct Expr trees produce them.
	defs         map[string]sat.Lit
	gates        int64 // And/Or gates requested
	tseitinSaved int64 // gates answered from defs without new aux vars
	// assumption literal bookkeeping for FailedAssumptions
	lastAssumed map[sat.Lit]*Expr
	// memo caches Check verdicts keyed by the canonicalized assumption
	// literal set; it is dropped whenever a user-level constraint is
	// asserted (new constraints can flip Sat verdicts). Tseitin
	// definitional clauses added while encoding new expressions are an
	// equisatisfiable extension and do not invalidate it.
	memo        map[string]sat.Status
	memoHits    int64
	memoLookups int64
	// fresh/check mode state: every AddClause is logged so a reference
	// solver can be rebuilt from scratch; eval is the instance whose
	// model/core/abort-cause accessors read (the warm instance except in
	// ModeFresh, where it is the last replica).
	clauseLog      [][]sat.Lit
	eval           *sat.Solver
	budget         sat.Budget
	selfChecks     int64
	selfMismatches int64
	firstMismatch  string
	// Model cache: the last Sat model, extendable over gates defined since
	// by circuit evaluation (Tseitin definitions pin each gate variable to
	// exactly the value of its operator over its children, so the extension
	// satisfies every definitional clause by construction). A query whose
	// assumptions hold under the extended model is Sat with an exhibited
	// model — no search. Invalidated by user-level constraints (Assert,
	// AssertClause, AtMostK), which can make the cached model a non-model.
	gateDefs    []gateDef
	cachedModel []bool
	modelOK     bool
	modelVars   int // NumVars when the cache was committed
	modelGates  int // gateDefs reflected in cachedModel
	fromCache   bool
	modelHits   int64
}

// gateDef records one Tseitin gate (in creation order, which is
// topological: children are encoded before parents) so the model cache can
// evaluate gates defined after the last capture.
type gateDef struct {
	v    sat.Lit // the defining literal (always positive)
	and  bool    // conjunction gate (else disjunction)
	kids []sat.Lit
}

// NewSolver returns an empty solver in ModeIncremental.
func NewSolver() *Solver { return NewSolverMode(ModeIncremental) }

// NewSolverMode returns an empty solver with the given Check mode.
func NewSolverMode(mode Mode) *Solver {
	s := &Solver{
		sat:  sat.New(),
		mode: mode,
		vars: make(map[string]*Expr),
		lits: make(map[*Expr]sat.Lit),
		defs: make(map[string]sat.Lit),
	}
	s.eval = s.sat
	s.trueE = &Expr{op: opTrue}
	s.falseE = &Expr{op: opFalse}
	tv := s.sat.NewVar()
	s.trueLit = sat.Lit(tv)
	s.addClause(s.trueLit)
	return s
}

// Mode returns the solver's Check mode.
func (s *Solver) Mode() Mode { return s.mode }

// addClause funnels every CNF clause into the warm instance and, when a
// reference replica may be needed, into the replay log. sat.AddClause
// sorts its argument slice in place, so the log keeps its own copy.
func (s *Solver) addClause(lits ...sat.Lit) bool {
	if s.mode != ModeIncremental {
		s.clauseLog = append(s.clauseLog, append([]sat.Lit(nil), lits...))
	}
	return s.sat.AddClause(lits...)
}

// True and False return the boolean constants.
func (s *Solver) True() *Expr { return s.trueE }

// False returns the constant false formula.
func (s *Solver) False() *Expr { return s.falseE }

// Var returns the variable with the given name, creating it on first use.
func (s *Solver) Var(name string) *Expr {
	if e, ok := s.vars[name]; ok {
		return e
	}
	e := &Expr{op: opVar, name: name, v: s.sat.NewVar()}
	s.vars[name] = e
	return e
}

// FreshVar allocates an anonymous variable with a unique generated name.
func (s *Solver) FreshVar(prefix string) *Expr {
	return s.Var(fmt.Sprintf("%s!%d", prefix, s.sat.NumVars()))
}

// NumVars returns the number of underlying SAT variables.
func (s *Solver) NumVars() int { return s.sat.NumVars() }

// NumClauses returns the number of CNF clauses generated so far.
func (s *Solver) NumClauses() int { return s.sat.NumClauses() }

// And returns the conjunction of es (True if empty).
func And(es ...*Expr) *Expr {
	flat := flatten(opAnd, es)
	switch len(flat) {
	case 0:
		return nil // resolved by solver at Tseitin time: nil means True in And context
	case 1:
		return flat[0]
	}
	return &Expr{op: opAnd, kids: flat}
}

// Or returns the disjunction of es (False if empty).
func Or(es ...*Expr) *Expr {
	flat := flatten(opOr, es)
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	}
	return &Expr{op: opOr, kids: flat}
}

func flatten(o op, es []*Expr) []*Expr {
	var out []*Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if e.op == o {
			out = append(out, e.kids...)
			continue
		}
		out = append(out, e)
	}
	return out
}

// Not returns the negation of e.
func Not(e *Expr) *Expr {
	if e.op == opNot {
		return e.kids[0]
	}
	return &Expr{op: opNot, kids: []*Expr{e}}
}

// Implies returns a → b.
func Implies(a, b *Expr) *Expr { return Or(Not(a), b) }

// Iff returns a ↔ b.
func Iff(a, b *Expr) *Expr {
	return And(Implies(a, b), Implies(b, a))
}

// Xor returns a ⊕ b.
func Xor(a, b *Expr) *Expr {
	return Or(And(a, Not(b)), And(Not(a), b))
}

// lit Tseitin-transforms e and returns its defining literal. Results are
// memoized per node and gate definitions are hash-consed across nodes, so
// shared subformulas encode once even when rebuilt as fresh Expr trees.
func (s *Solver) lit(e *Expr) sat.Lit {
	if e == nil {
		return s.trueLit
	}
	if l, ok := s.lits[e]; ok {
		return l
	}
	var l sat.Lit
	switch e.op {
	case opVar:
		l = sat.Lit(e.v)
	case opTrue:
		l = s.trueLit
	case opFalse:
		l = s.trueLit.Neg()
	case opNot:
		l = s.lit(e.kids[0]).Neg()
	case opAnd, opOr:
		kids := make([]sat.Lit, len(e.kids))
		for i, k := range e.kids {
			kids[i] = s.lit(k)
		}
		l = s.gate(e.op, kids)
	}
	s.lits[e] = l
	return l
}

// gate returns the defining literal of an And/Or over child literals. The
// child set is canonicalized first (sorted, deduplicated, constants and
// complementary pairs folded — sound because ∧/∨ are commutative and
// idempotent), then looked up in the hash-cons table: a structurally
// identical gate reuses the existing auxiliary variable instead of
// re-emitting its Tseitin definition.
func (s *Solver) gate(o op, kids []sat.Lit) sat.Lit {
	s.gates++
	sort.Slice(kids, func(i, j int) bool {
		vi, vj := kids[i].Var(), kids[j].Var()
		if vi != vj {
			return vi < vj
		}
		return kids[i] < kids[j]
	})
	tru, fls := s.trueLit, s.trueLit.Neg()
	out := kids[:0]
	for _, l := range kids {
		if o == opAnd {
			if l == tru {
				continue // neutral element
			}
			if l == fls {
				return fls // absorbing element
			}
		} else {
			if l == fls {
				continue
			}
			if l == tru {
				return tru
			}
		}
		if len(out) > 0 && out[len(out)-1] == l {
			continue // duplicate (idempotence)
		}
		if len(out) > 0 && out[len(out)-1] == l.Neg() {
			// l and ¬l are adjacent after the var-major sort: x ∧ ¬x = ⊥,
			// x ∨ ¬x = ⊤.
			if o == opAnd {
				return fls
			}
			return tru
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		if o == opAnd {
			return tru
		}
		return fls
	case 1:
		return out[0]
	}
	key := gateKey(o, out)
	if l, ok := s.defs[key]; ok {
		s.tseitinSaved++
		return l
	}
	v := sat.Lit(s.sat.NewVar())
	all := make([]sat.Lit, 0, len(out)+1)
	if o == opAnd {
		for _, kl := range out {
			s.addClause(v.Neg(), kl) // v → k
			all = append(all, kl.Neg())
		}
		all = append(all, v) // (∧k) → v
	} else {
		for _, kl := range out {
			s.addClause(v, kl.Neg()) // k → v
			all = append(all, kl)
		}
		all = append(all, v.Neg()) // v → ∨k
	}
	s.addClause(all...)
	s.defs[key] = v
	s.gateDefs = append(s.gateDefs, gateDef{v: v, and: o == opAnd, kids: out})
	return v
}

// gateKey renders the canonical byte key of a gate: the op tag followed by
// the canonicalized child literals.
func gateKey(o op, lits []sat.Lit) string {
	var b strings.Builder
	b.Grow(1 + len(lits)*8)
	b.WriteByte(byte(o))
	for _, l := range lits {
		v := uint64(int64(l))
		for j := 0; j < 8; j++ {
			b.WriteByte(byte(v >> (8 * j)))
		}
	}
	return b.String()
}

// invalidate drops every cache a user-level constraint can poison: the
// verdict memo (a new hard clause can flip Sat verdicts) and the model
// cache (the cached assignment may violate the new clause).
func (s *Solver) invalidate() {
	s.memo = nil
	s.modelOK = false
}

// Assert adds e as a hard constraint.
func (s *Solver) Assert(e *Expr) {
	s.invalidate()
	s.addClause(s.lit(e))
}

// AssertClause adds a disjunction of formulas as one CNF clause (cheaper
// than Assert(Or(...)) — no auxiliary variable).
func (s *Solver) AssertClause(es ...*Expr) {
	s.invalidate()
	lits := make([]sat.Lit, len(es))
	for i, e := range es {
		lits[i] = s.lit(e)
	}
	s.addClause(lits...)
}

// Check determines satisfiability of the asserted formulas under the given
// assumptions.
func (s *Solver) Check(assumptions ...*Expr) sat.Status {
	return s.CheckCtx(context.Background(), assumptions...)
}

// CheckCtx is Check under a context: long-running solver queries return
// sat.Unknown promptly once ctx is cancelled, leaving the solver usable.
func (s *Solver) CheckCtx(ctx context.Context, assumptions ...*Expr) sat.Status {
	return s.solve(ctx, s.assume(assumptions))
}

// solve discharges one query according to the solver mode.
func (s *Solver) solve(ctx context.Context, lits []sat.Lit) sat.Status {
	s.fromCache = false
	switch s.mode {
	case ModeFresh:
		ref := s.freshReplica()
		st := ref.SolveCtx(ctx, lits...)
		s.eval = ref
		return st
	case ModeCheck:
		if s.tryModel(lits) {
			// The cache's Sat is backed by an exhibited model, but check
			// mode distrusts the whole incremental stack: replay on a fresh
			// reference anyway.
			s.fromCache = true
			s.record(sat.Sat, s.replay(ctx, lits))
			return sat.Sat
		}
		st := s.sat.SolveCtx(ctx, lits...)
		s.eval = s.sat
		if st == sat.Sat {
			s.captureModel()
		}
		s.record(st, s.replay(ctx, lits))
		return st
	default:
		if s.tryModel(lits) {
			s.fromCache = true
			return sat.Sat
		}
		st := s.sat.SolveCtx(ctx, lits...)
		s.eval = s.sat
		if st == sat.Sat {
			s.captureModel()
		}
		return st
	}
}

// replay decides the query on a fresh reference replica (check mode).
func (s *Solver) replay(ctx context.Context, lits []sat.Lit) sat.Status {
	ref := s.freshReplica()
	return ref.SolveCtx(ctx, lits...)
}

// record tallies one check-mode comparison. Budget-aborted sides are not
// compared — warm and cold searches legitimately exhaust budgets at
// different points.
func (s *Solver) record(st, rst sat.Status) {
	if st == sat.Unknown || rst == sat.Unknown {
		return
	}
	s.selfChecks++
	if st != rst {
		s.selfMismatches++
		if s.firstMismatch == "" {
			s.firstMismatch = fmt.Sprintf("incremental=%v fresh=%v", st, rst)
		}
	}
}

// tryModel attempts to answer a query from the model cache: the cached
// model is extended over gates defined since the last capture (circuit
// evaluation in creation order — children precede parents), fresh free
// atoms named by the assumptions are set to satisfy them, and the query is
// Sat if every assumption literal holds under the extension. A miss
// mutates only entries above modelVars, which the next attempt recomputes,
// so failed tries never corrupt the committed model.
func (s *Solver) tryModel(lits []sat.Lit) bool {
	if !s.modelOK {
		return false
	}
	// Variables are 1-based: index NumVars is the newest variable.
	n := s.sat.NumVars()
	for len(s.cachedModel) <= n {
		s.cachedModel = append(s.cachedModel, false)
	}
	ext := s.cachedModel
	pending := s.gateDefs[s.modelGates:]
	var isGate map[int]bool
	if len(pending) > 0 {
		isGate = make(map[int]bool, len(pending))
		for _, g := range pending {
			isGate[g.v.Var()] = true
		}
	}
	// Free atoms created since the capture are unconstrained outside the
	// pending gate definitions: set the ones the assumptions name so they
	// hold. (Contradictory assumptions on one atom leave the earlier
	// literal false and miss below — sound.)
	for _, l := range lits {
		if v := l.Var(); v > s.modelVars && !isGate[v] {
			ext[v] = l.Sign()
		}
	}
	for _, g := range pending {
		val := g.and
		for _, kl := range g.kids {
			kv := ext[kl.Var()] == kl.Sign()
			if g.and {
				val = val && kv
			} else {
				val = val || kv
			}
			if kv != g.and {
				break // absorbing element found
			}
		}
		ext[g.v.Var()] = val
	}
	for _, l := range lits {
		if ext[l.Var()] != l.Sign() {
			return false
		}
	}
	s.modelVars, s.modelGates = n, len(s.gateDefs)
	s.modelHits++
	return true
}

// captureModel snapshots the warm instance's model after a Sat solve so
// the cache can serve later queries.
func (s *Solver) captureModel() {
	n := s.sat.NumVars()
	for len(s.cachedModel) <= n {
		s.cachedModel = append(s.cachedModel, false)
	}
	for v := 1; v <= n; v++ {
		s.cachedModel[v] = s.eval.Value(v)
	}
	s.modelOK, s.modelVars, s.modelGates = true, n, len(s.gateDefs)
}

// freshReplica rebuilds the current CNF in a brand-new CDCL instance: same
// variables, same clauses in insertion order, same budget — but no learnt
// clauses, no saved phases, no warm trail. It is the non-incremental
// reference the equivalence battery and ModeCheck compare against.
func (s *Solver) freshReplica() *sat.Solver {
	ref := sat.New()
	for ref.NumVars() < s.sat.NumVars() {
		ref.NewVar()
	}
	ref.SetBudget(s.budget)
	var buf []sat.Lit
	for _, c := range s.clauseLog {
		// AddClause sorts its argument in place; keep the log pristine.
		buf = append(buf[:0], c...)
		if !ref.AddClause(buf...) {
			break
		}
	}
	return ref
}

// assume encodes the assumption formulas and records the literal → formula
// mapping FailedAssumptions reads back.
func (s *Solver) assume(assumptions []*Expr) []sat.Lit {
	lits := make([]sat.Lit, len(assumptions))
	s.lastAssumed = make(map[sat.Lit]*Expr, len(assumptions))
	for i, a := range assumptions {
		lits[i] = s.lit(a)
		s.lastAssumed[lits[i]] = a
	}
	return lits
}

// CheckMemo is CheckCtx with a verdict memo keyed by the canonicalized
// (sorted, deduplicated) assumption literal set: semantically equal
// assumption sets — even ones built from distinct Expr nodes — share one
// solver call. The second result reports whether the verdict came from
// the memo; memo hits do not refresh the model or FailedAssumptions, so
// callers needing either must re-Check.
func (s *Solver) CheckMemo(ctx context.Context, assumptions ...*Expr) (sat.Status, bool) {
	lits := s.assume(assumptions)
	key := canonKey(lits)
	s.memoLookups++
	if st, ok := s.memo[key]; ok {
		s.memoHits++
		return st, true
	}
	st := s.solve(ctx, lits)
	if st != sat.Unknown {
		if s.memo == nil {
			s.memo = make(map[string]sat.Status)
		}
		s.memo[key] = st
	}
	return st, false
}

// MemoStats returns the query-memo hit and lookup counters.
func (s *Solver) MemoStats() (hits, lookups int64) {
	return s.memoHits, s.memoLookups
}

// SetBudget bounds every subsequent solve call's search effort (see
// sat.Budget). Budget-aborted calls return sat.Unknown and are never
// cached by CheckMemo, so a later unbudgeted Check recomputes honestly.
// Fresh reference replicas inherit the same per-call budget.
func (s *Solver) SetBudget(b sat.Budget) {
	s.budget = b
	s.sat.SetBudget(b)
}

// AbortCause classifies the last Unknown verdict: faults.ErrBudget for an
// exhausted effort budget, faults.ErrDeadline / faults.ErrCanceled for a
// fired context, nil after a decided call.
func (s *Solver) AbortCause() error {
	if s.fromCache {
		return nil // cache answers are decided, never aborted
	}
	return s.eval.AbortCause()
}

// SatStats returns the warm CDCL instance's search-effort counters
// (decisions, propagations, conflicts, restarts). In ModeFresh the warm
// instance answers no queries, so the counters only reflect root-level
// propagation during clause loading.
func (s *Solver) SatStats() (decisions, propagations, conflicts, restarts int64) {
	return s.sat.Counters()
}

// IncrementalStats returns the warm instance's incremental-solving
// counters (prefix-reuse depth, root-unit promotions, clause-DB diet).
func (s *Solver) IncrementalStats() sat.IncStats { return s.sat.IncrementalStats() }

// EncodeStats returns the Tseitin gate counters: gates requested and gates
// answered from the hash-cons table without allocating a fresh auxiliary
// variable or re-emitting definitional clauses.
func (s *Solver) EncodeStats() (gates, shared int64) { return s.gates, s.tseitinSaved }

// SelfCheckStats returns, for ModeCheck, the number of Check calls whose
// verdict was replayed on a fresh reference replica and how many of those
// disagreed (always 0 unless the incremental path is unsound).
func (s *Solver) SelfCheckStats() (checks, mismatches int64) {
	return s.selfChecks, s.selfMismatches
}

// FirstMismatch describes the first incremental-vs-fresh verdict
// disagreement ModeCheck observed ("" when none).
func (s *Solver) FirstMismatch() string { return s.firstMismatch }

// ModelCacheHits returns how many queries were answered Sat by extending
// the cached model over newly defined gates, without any solver search.
func (s *Solver) ModelCacheHits() int64 { return s.modelHits }

// canonKey renders a canonical byte key for an assumption literal set.
func canonKey(lits []sat.Lit) string {
	sorted := append([]sat.Lit(nil), lits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b strings.Builder
	b.Grow(len(sorted) * 9)
	var prev sat.Lit
	for i, l := range sorted {
		if i > 0 && l == prev {
			continue
		}
		prev = l
		v := uint64(int64(l))
		for j := 0; j < 8; j++ {
			b.WriteByte(byte(v >> (8 * j)))
		}
	}
	return b.String()
}

// FailedAssumptions returns the assumption formulas involved in the last
// Unsat verdict.
func (s *Solver) FailedAssumptions() []*Expr {
	var out []*Expr
	for _, l := range s.eval.FailedAssumptions() {
		if e, ok := s.lastAssumed[l]; ok {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Value evaluates e under the current model (valid after a Sat result).
func (s *Solver) Value(e *Expr) bool {
	switch e.op {
	case opTrue:
		return true
	case opFalse:
		return false
	case opVar:
		if s.fromCache {
			return e.v < len(s.cachedModel) && s.cachedModel[e.v]
		}
		return s.eval.Value(e.v)
	case opNot:
		return !s.Value(e.kids[0])
	case opAnd:
		for _, k := range e.kids {
			if !s.Value(k) {
				return false
			}
		}
		return true
	case opOr:
		for _, k := range e.kids {
			if s.Value(k) {
				return true
			}
		}
		return false
	}
	return false
}

// AtMostK asserts that at most k of es are true, using the sequential
// counter encoding (Sinz 2005).
func (s *Solver) AtMostK(k int, es ...*Expr) {
	n := len(es)
	if k >= n {
		return
	}
	s.invalidate()
	if k < 0 {
		s.Assert(s.False())
		return
	}
	if k == 0 {
		for _, e := range es {
			s.Assert(Not(e))
		}
		return
	}
	lits := make([]sat.Lit, n)
	for i, e := range es {
		lits[i] = s.lit(e)
	}
	// r[i][j]: among es[0..i], at least j+1 are true.
	r := make([][]sat.Lit, n)
	for i := range r {
		r[i] = make([]sat.Lit, k)
		for j := range r[i] {
			r[i][j] = sat.Lit(s.sat.NewVar())
		}
	}
	s.addClause(lits[0].Neg(), r[0][0])
	for j := 1; j < k; j++ {
		s.addClause(r[0][j].Neg())
	}
	for i := 1; i < n; i++ {
		s.addClause(lits[i].Neg(), r[i][0])
		s.addClause(r[i-1][0].Neg(), r[i][0])
		for j := 1; j < k; j++ {
			s.addClause(lits[i].Neg(), r[i-1][j-1].Neg(), r[i][j])
			s.addClause(r[i-1][j].Neg(), r[i][j])
		}
		s.addClause(lits[i].Neg(), r[i-1][k-1].Neg())
	}
}

// AtLeastOne asserts that at least one of es is true.
func (s *Solver) AtLeastOne(es ...*Expr) {
	s.AssertClause(es...)
}

// ExactlyOne asserts that exactly one of es is true.
func (s *Solver) ExactlyOne(es ...*Expr) {
	s.AtLeastOne(es...)
	s.AtMostK(1, es...)
}
