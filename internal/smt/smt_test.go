package smt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lcm/internal/sat"
)

func TestVarReuse(t *testing.T) {
	s := NewSolver()
	a1 := s.Var("a")
	a2 := s.Var("a")
	if a1 != a2 {
		t.Error("same name produced different vars")
	}
	if a1.Name() != "a" {
		t.Errorf("Name = %q", a1.Name())
	}
	f1 := s.FreshVar("tmp")
	f2 := s.FreshVar("tmp")
	if f1 == f2 {
		t.Error("FreshVar not fresh")
	}
}

func TestBasicConnectives(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.Assert(And(a, Not(b)))
	if s.Check() != sat.Sat {
		t.Fatal("unsat")
	}
	if !s.Value(a) || s.Value(b) {
		t.Error("model wrong")
	}
	if !s.Value(And(a, Not(b))) || s.Value(Or(b, Not(a))) {
		t.Error("Value evaluation wrong")
	}
}

func TestImpliesIffXor(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.Assert(Implies(a, b))
	s.Assert(a)
	if s.Check() != sat.Sat {
		t.Fatal("unsat")
	}
	if !s.Value(b) {
		t.Error("modus ponens failed")
	}
	s.Assert(Iff(a, Not(b)))
	if s.Check() != sat.Unsat {
		t.Error("a ∧ b ∧ (a↔¬b) should be unsat")
	}

	s2 := NewSolver()
	x, y := s2.Var("x"), s2.Var("y")
	s2.Assert(Xor(x, y))
	s2.Assert(x)
	if s2.Check() != sat.Sat {
		t.Fatal("unsat")
	}
	if s2.Value(y) {
		t.Error("xor model wrong")
	}
}

func TestConstants(t *testing.T) {
	s := NewSolver()
	s.Assert(s.True())
	if s.Check() != sat.Sat {
		t.Error("True unsat")
	}
	s.Assert(s.False())
	if s.Check() != sat.Unsat {
		t.Error("False sat")
	}
}

func TestSharedSubformulaEncodedOnce(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	shared := And(a, b)
	s.Assert(Or(shared, Not(shared)))
	n := s.NumVars()
	s.Assert(Or(shared, s.Var("c")))
	// Only c should be new: shared is memoized.
	if s.NumVars() > n+2 { // c + Or auxiliary
		t.Errorf("subformula re-encoded: vars %d → %d", n, s.NumVars())
	}
}

func TestCheckAssumptions(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.Assert(Implies(a, b))
	if s.Check(a, Not(b)) != sat.Unsat {
		t.Fatal("expected unsat under assumptions")
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Error("no failed assumptions")
	}
	if s.Check(a) != sat.Sat {
		t.Fatal("solver unusable after assumption conflict")
	}
	if !s.Value(b) {
		t.Error("implication not honored")
	}
}

func TestAtMostK(t *testing.T) {
	for k := 0; k <= 4; k++ {
		s := NewSolver()
		var es []*Expr
		for i := 0; i < 4; i++ {
			es = append(es, s.FreshVar("x"))
		}
		s.AtMostK(k, es...)
		// Force k+1 true if possible: should be unsat for k < 4.
		for i := 0; i <= k && i < 4; i++ {
			s.Assert(es[i])
		}
		status := s.Check()
		if k < 4 {
			if status != sat.Unsat {
				t.Errorf("k=%d: forcing %d true should be unsat, got %v", k, k+1, status)
			}
		} else if status != sat.Sat {
			t.Errorf("k=%d: got %v", k, status)
		}
	}
}

func TestAtMostKAllowsK(t *testing.T) {
	s := NewSolver()
	var es []*Expr
	for i := 0; i < 5; i++ {
		es = append(es, s.FreshVar("x"))
	}
	s.AtMostK(2, es...)
	s.Assert(es[1])
	s.Assert(es[3])
	if s.Check() != sat.Sat {
		t.Fatal("exactly k true should be sat")
	}
	count := 0
	for _, e := range es {
		if s.Value(e) {
			count++
		}
	}
	if count > 2 {
		t.Errorf("model has %d true, cap 2", count)
	}
}

func TestExactlyOne(t *testing.T) {
	s := NewSolver()
	var es []*Expr
	for i := 0; i < 4; i++ {
		es = append(es, s.FreshVar("x"))
	}
	s.ExactlyOne(es...)
	if s.Check() != sat.Sat {
		t.Fatal("unsat")
	}
	count := 0
	for _, e := range es {
		if s.Value(e) {
			count++
		}
	}
	if count != 1 {
		t.Errorf("exactly-one model has %d true", count)
	}
}

func TestAtMostKNegative(t *testing.T) {
	s := NewSolver()
	a := s.Var("a")
	s.AtMostK(-1, a)
	if s.Check() != sat.Unsat {
		t.Error("AtMostK(-1) should be unsat")
	}
}

func TestFlattening(t *testing.T) {
	s := NewSolver()
	a, b, c := s.Var("a"), s.Var("b"), s.Var("c")
	e := And(And(a, b), c)
	if len(e.kids) != 3 {
		t.Errorf("nested And not flattened: %v", e)
	}
	o := Or(Or(a, b), c)
	if len(o.kids) != 3 {
		t.Errorf("nested Or not flattened: %v", o)
	}
	if Not(Not(a)) != a {
		t.Error("double negation not eliminated")
	}
	if And(a) != a || Or(a) != a {
		t.Error("singleton connective not collapsed")
	}
}

func TestString(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	e := And(a, Not(b))
	if e.String() != "(a ∧ ¬b)" {
		t.Errorf("String = %q", e.String())
	}
	if s.True().String() != "⊤" || s.False().String() != "⊥" {
		t.Error("constant strings")
	}
}

// evalTree evaluates a formula under an assignment map (reference
// implementation for the property test).
func evalTree(e *Expr, m map[string]bool) bool {
	switch e.op {
	case opVar:
		return m[e.name]
	case opTrue:
		return true
	case opFalse:
		return false
	case opNot:
		return !evalTree(e.kids[0], m)
	case opAnd:
		for _, k := range e.kids {
			if !evalTree(k, m) {
				return false
			}
		}
		return true
	case opOr:
		for _, k := range e.kids {
			if evalTree(k, m) {
				return true
			}
		}
		return false
	}
	return false
}

// randomExpr builds a random formula over nv variables.
func randomExpr(s *Solver, rng *rand.Rand, nv, depth int) *Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		return s.Var(string(rune('a' + rng.Intn(nv))))
	}
	switch rng.Intn(4) {
	case 0:
		return Not(randomExpr(s, rng, nv, depth-1))
	case 1:
		return And(randomExpr(s, rng, nv, depth-1), randomExpr(s, rng, nv, depth-1))
	case 2:
		return Or(randomExpr(s, rng, nv, depth-1), randomExpr(s, rng, nv, depth-1))
	default:
		return Implies(randomExpr(s, rng, nv, depth-1), randomExpr(s, rng, nv, depth-1))
	}
}

// Property: Tseitin is equisatisfiable and the model satisfies the original
// formula per tree evaluation.
func TestQuickTseitinSound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSolver()
		nv := 3
		e := randomExpr(s, rng, nv, 4)
		s.Assert(e)
		status := s.Check()
		// Reference: enumerate assignments.
		names := []string{"a", "b", "c"}
		satisfiable := false
		for m := 0; m < 1<<nv; m++ {
			asg := map[string]bool{}
			for i, n := range names {
				asg[n] = m&(1<<i) != 0
			}
			if evalTree(e, asg) {
				satisfiable = true
				break
			}
		}
		if (status == sat.Sat) != satisfiable {
			return false
		}
		if status == sat.Sat {
			asg := map[string]bool{}
			for _, n := range names {
				asg[n] = s.Value(s.Var(n))
			}
			return evalTree(e, asg)
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
