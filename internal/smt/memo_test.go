package smt

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"lcm/internal/faults"
	"lcm/internal/sat"
)

func TestCheckMemoHitsOnEqualAssumptionSets(t *testing.T) {
	s := NewSolver()
	a, b, c := s.Var("a"), s.Var("b"), s.Var("c")
	s.Assert(Implies(a, b))

	ctx := context.Background()
	st, hit := s.CheckMemo(ctx, a, Not(b))
	if st != sat.Unsat || hit {
		t.Fatalf("first query: status=%v hit=%v, want Unsat miss", st, hit)
	}
	// Same set, different order and duplicated literal: must hit.
	st, hit = s.CheckMemo(ctx, Not(b), a, a)
	if st != sat.Unsat || !hit {
		t.Fatalf("reordered query: status=%v hit=%v, want Unsat hit", st, hit)
	}
	// Semantically equal assumptions built from fresh Expr nodes share the
	// same underlying literals, so they hit too.
	st, hit = s.CheckMemo(ctx, Or(a), Not(b))
	if st != sat.Unsat || !hit {
		t.Fatalf("fresh-node query: status=%v hit=%v, want Unsat hit", st, hit)
	}
	// A different set misses.
	st, hit = s.CheckMemo(ctx, a, c)
	if st != sat.Sat || hit {
		t.Fatalf("distinct query: status=%v hit=%v, want Sat miss", st, hit)
	}
	hits, lookups := s.MemoStats()
	if hits != 2 || lookups != 4 {
		t.Fatalf("stats = %d hits / %d lookups, want 2/4", hits, lookups)
	}
}

func TestCheckMemoInvalidatedByAssert(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.Assert(Or(a, b))

	ctx := context.Background()
	if st, _ := s.CheckMemo(ctx, a); st != sat.Sat {
		t.Fatalf("status = %v, want Sat", st)
	}
	// A new hard constraint can flip prior Sat verdicts: the memo must not
	// serve the stale one.
	s.Assert(Not(a))
	st, hit := s.CheckMemo(ctx, a)
	if hit {
		t.Fatal("memo served a verdict across an Assert")
	}
	if st != sat.Unsat {
		t.Fatalf("status = %v, want Unsat after Assert(¬a)", st)
	}
}

func TestCheckMemoInvalidatedByAtMostK(t *testing.T) {
	s := NewSolver()
	a, b, c := s.Var("a"), s.Var("b"), s.Var("c")
	ctx := context.Background()
	if st, _ := s.CheckMemo(ctx, a, b, c); st != sat.Sat {
		t.Fatal("want Sat before cardinality constraint")
	}
	s.AtMostK(1, a, b, c)
	st, hit := s.CheckMemo(ctx, a, b, c)
	if hit || st != sat.Unsat {
		t.Fatalf("status=%v hit=%v, want fresh Unsat after AtMostK", st, hit)
	}
}

// TestCheckMemoNeverCachesBudgetAborts: a budget-aborted Unknown must
// not enter the verdict memo — a later, properly funded query has to
// recompute and return the honest verdict.
func TestCheckMemoNeverCachesBudgetAborts(t *testing.T) {
	s := NewSolver()
	// PHP(7,6): every pigeon sits somewhere, no hole holds two. Unsat,
	// and hard enough that a 5-conflict budget cannot refute it.
	const pigeons, holes = 7, 6
	vars := make([][]*Expr, pigeons)
	for p := 0; p < pigeons; p++ {
		vars[p] = make([]*Expr, holes)
		for h := 0; h < holes; h++ {
			vars[p][h] = s.Var(fmt.Sprintf("p%dh%d", p, h))
		}
		s.Assert(Or(vars[p]...))
	}
	for h := 0; h < holes; h++ {
		col := make([]*Expr, pigeons)
		for p := 0; p < pigeons; p++ {
			col[p] = vars[p][h]
		}
		s.AtMostK(1, col...)
	}

	ctx := context.Background()
	s.SetBudget(sat.Budget{Conflicts: 5})
	st, hit := s.CheckMemo(ctx)
	if hit {
		t.Fatal("first query reported a memo hit")
	}
	if st != sat.Unknown {
		t.Skipf("PHP(7,6) resolved under a 5-conflict budget (status %v)", st)
	}
	if cause := s.AbortCause(); !errors.Is(cause, faults.ErrBudget) {
		t.Fatalf("AbortCause = %v, want faults.ErrBudget", cause)
	}
	// Lift the budget: the memo must miss (Unknown was not cached) and
	// the recomputed verdict must be the honest Unsat.
	s.SetBudget(sat.Budget{})
	st, hit = s.CheckMemo(ctx)
	if hit {
		t.Fatal("memo served a budget-aborted Unknown as a verdict")
	}
	if st != sat.Unsat {
		t.Fatalf("unbudgeted recheck = %v, want Unsat", st)
	}
}

// TestCheckMemoBudgetAbortsAcrossWarmSweep drives an assumption-set sweep
// (shared prefixes, the shape the candidate loops produce) over one warm
// incremental solver under a starvation budget: no budget-aborted verdict
// may enter the memo at any step, and once the budget is lifted every set
// in the sweep recomputes to the honest Unsat.
func TestCheckMemoBudgetAbortsAcrossWarmSweep(t *testing.T) {
	s := NewSolver()
	const pigeons, holes = 7, 6
	vars := make([][]*Expr, pigeons)
	for p := 0; p < pigeons; p++ {
		vars[p] = make([]*Expr, holes)
		for h := 0; h < holes; h++ {
			vars[p][h] = s.Var(fmt.Sprintf("p%dh%d", p, h))
		}
		s.Assert(Or(vars[p]...))
	}
	for h := 0; h < holes; h++ {
		col := make([]*Expr, pigeons)
		for p := 0; p < pigeons; p++ {
			col[p] = vars[p][h]
		}
		s.AtMostK(1, col...)
	}
	// Free selector atoms: assumption prefixes orthogonal to the core.
	s1, s2, s3 := s.Var("s1"), s.Var("s2"), s.Var("s3")
	sweep := [][]*Expr{{s1}, {s1, s2}, {s1, s2, s3}}

	ctx := context.Background()
	s.SetBudget(sat.Budget{Conflicts: 5})
	for i, assumptions := range sweep {
		st, hit := s.CheckMemo(ctx, assumptions...)
		if hit {
			t.Fatalf("sweep step %d: memo hit on a budgeted query", i)
		}
		if st != sat.Unknown {
			t.Skipf("PHP(7,6) resolved under a 5-conflict budget at step %d (status %v)", i, st)
		}
		if cause := s.AbortCause(); !errors.Is(cause, faults.ErrBudget) {
			t.Fatalf("sweep step %d: AbortCause = %v, want faults.ErrBudget", i, cause)
		}
	}
	s.SetBudget(sat.Budget{})
	for i, assumptions := range sweep {
		st, hit := s.CheckMemo(ctx, assumptions...)
		if hit {
			t.Fatalf("recheck step %d: memo served a budget-aborted verdict", i)
		}
		if st != sat.Unsat {
			t.Fatalf("recheck step %d = %v, want Unsat", i, st)
		}
	}
	// The honest verdicts memoize normally.
	if st, hit := s.CheckMemo(ctx, s1, s2); st != sat.Unsat || !hit {
		t.Fatalf("post-sweep repeat: status=%v hit=%v, want Unsat hit", st, hit)
	}
}

func TestCheckCtxCancelled(t *testing.T) {
	s := NewSolver()
	a := s.Var("a")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := s.CheckCtx(ctx, a); st != sat.Unknown {
		t.Fatalf("status = %v, want Unknown under cancelled ctx", st)
	}
	// Unknown verdicts are not memoized.
	st, hit := s.CheckMemo(context.Background(), a)
	if hit || st != sat.Sat {
		t.Fatalf("status=%v hit=%v, want fresh Sat", st, hit)
	}
}
