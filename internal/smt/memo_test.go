package smt

import (
	"context"
	"testing"

	"lcm/internal/sat"
)

func TestCheckMemoHitsOnEqualAssumptionSets(t *testing.T) {
	s := NewSolver()
	a, b, c := s.Var("a"), s.Var("b"), s.Var("c")
	s.Assert(Implies(a, b))

	ctx := context.Background()
	st, hit := s.CheckMemo(ctx, a, Not(b))
	if st != sat.Unsat || hit {
		t.Fatalf("first query: status=%v hit=%v, want Unsat miss", st, hit)
	}
	// Same set, different order and duplicated literal: must hit.
	st, hit = s.CheckMemo(ctx, Not(b), a, a)
	if st != sat.Unsat || !hit {
		t.Fatalf("reordered query: status=%v hit=%v, want Unsat hit", st, hit)
	}
	// Semantically equal assumptions built from fresh Expr nodes share the
	// same underlying literals, so they hit too.
	st, hit = s.CheckMemo(ctx, Or(a), Not(b))
	if st != sat.Unsat || !hit {
		t.Fatalf("fresh-node query: status=%v hit=%v, want Unsat hit", st, hit)
	}
	// A different set misses.
	st, hit = s.CheckMemo(ctx, a, c)
	if st != sat.Sat || hit {
		t.Fatalf("distinct query: status=%v hit=%v, want Sat miss", st, hit)
	}
	hits, lookups := s.MemoStats()
	if hits != 2 || lookups != 4 {
		t.Fatalf("stats = %d hits / %d lookups, want 2/4", hits, lookups)
	}
}

func TestCheckMemoInvalidatedByAssert(t *testing.T) {
	s := NewSolver()
	a, b := s.Var("a"), s.Var("b")
	s.Assert(Or(a, b))

	ctx := context.Background()
	if st, _ := s.CheckMemo(ctx, a); st != sat.Sat {
		t.Fatalf("status = %v, want Sat", st)
	}
	// A new hard constraint can flip prior Sat verdicts: the memo must not
	// serve the stale one.
	s.Assert(Not(a))
	st, hit := s.CheckMemo(ctx, a)
	if hit {
		t.Fatal("memo served a verdict across an Assert")
	}
	if st != sat.Unsat {
		t.Fatalf("status = %v, want Unsat after Assert(¬a)", st)
	}
}

func TestCheckMemoInvalidatedByAtMostK(t *testing.T) {
	s := NewSolver()
	a, b, c := s.Var("a"), s.Var("b"), s.Var("c")
	ctx := context.Background()
	if st, _ := s.CheckMemo(ctx, a, b, c); st != sat.Sat {
		t.Fatal("want Sat before cardinality constraint")
	}
	s.AtMostK(1, a, b, c)
	st, hit := s.CheckMemo(ctx, a, b, c)
	if hit || st != sat.Unsat {
		t.Fatalf("status=%v hit=%v, want fresh Unsat after AtMostK", st, hit)
	}
}

func TestCheckCtxCancelled(t *testing.T) {
	s := NewSolver()
	a := s.Var("a")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := s.CheckCtx(ctx, a); st != sat.Unknown {
		t.Fatalf("status = %v, want Unknown under cancelled ctx", st)
	}
	// Unknown verdicts are not memoized.
	st, hit := s.CheckMemo(context.Background(), a)
	if hit || st != sat.Sat {
		t.Fatalf("status=%v hit=%v, want fresh Sat", st, hit)
	}
}
