package mcm

import (
	"testing"

	"lcm/internal/event"
	"lcm/internal/prog"
)

// findRead returns the ID of the i-th committed read on thread t.
func findRead(g *event.Graph, t, i int) int {
	n := 0
	for _, e := range g.Events {
		if e.IsRead() && e.Committed() && e.Thread == t {
			if n == i {
				return e.ID
			}
			n++
		}
	}
	return -1
}

// outcome checks whether some consistent execution has each read in rds
// sourced by the corresponding writer in srcs (use -1 for "initial state",
// i.e. ⊤).
func hasOutcome(gs []*event.Graph, rds []int, srcs []int) bool {
	for _, g := range gs {
		top := g.Tops()[0].ID
		ok := true
		for i, r := range rds {
			want := srcs[i]
			if want == -1 {
				want = top
			}
			if !g.RF.Has(want, r) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func expandOne(t *testing.T, p *prog.Program) *event.Graph {
	t.Helper()
	gs := prog.Expand(p, prog.ExpandOptions{})
	if len(gs) != 1 {
		t.Fatalf("%s: expected single event structure, got %d", p.Name, len(gs))
	}
	return gs[0]
}

func findWrite(g *event.Graph, loc event.Location) int {
	for _, e := range g.Events {
		if e.IsWrite() && e.Loc == loc {
			return e.ID
		}
	}
	return -1
}

func TestSBRelaxedOutcome(t *testing.T) {
	es := expandOne(t, prog.SB())
	r1 := findRead(es, 0, 0) // r1 = y on T0
	r2 := findRead(es, 1, 0) // r2 = x on T1

	sc := ConsistentExecutions(es, SC{}, EnumerateOptions{})
	tso := ConsistentExecutions(es, TSO{}, EnumerateOptions{})

	if len(sc) == 0 || len(tso) == 0 {
		t.Fatalf("no consistent executions: sc=%d tso=%d", len(sc), len(tso))
	}
	// r1 = 0 ∧ r2 = 0 (both reads from initial state): forbidden under SC,
	// allowed under TSO — the canonical store-buffering distinction.
	if hasOutcome(sc, []int{r1, r2}, []int{-1, -1}) {
		t.Error("SC allows the SB relaxed outcome")
	}
	if !hasOutcome(tso, []int{r1, r2}, []int{-1, -1}) {
		t.Error("TSO forbids the SB relaxed outcome")
	}
	// TSO allows strictly more executions than SC here.
	if len(tso) <= len(sc) {
		t.Errorf("expected |TSO| > |SC|, got %d vs %d", len(tso), len(sc))
	}
}

func TestSBFencedForbidsRelaxedOutcome(t *testing.T) {
	es := expandOne(t, prog.SBFenced())
	r1 := findRead(es, 0, 0)
	r2 := findRead(es, 1, 0)
	tso := ConsistentExecutions(es, TSO{}, EnumerateOptions{})
	if len(tso) == 0 {
		t.Fatal("no consistent executions")
	}
	if hasOutcome(tso, []int{r1, r2}, []int{-1, -1}) {
		t.Error("TSO allows SB relaxed outcome despite fences")
	}
}

func TestMPForbiddenOutcome(t *testing.T) {
	es := expandOne(t, prog.MP())
	r1 := findRead(es, 1, 0) // r1 = y
	r2 := findRead(es, 1, 1) // r2 = x
	wy := findWrite(es, "y")

	for _, m := range []Model{SC{}, TSO{}} {
		gs := ConsistentExecutions(es, m, EnumerateOptions{})
		if len(gs) == 0 {
			t.Fatalf("%s: no consistent executions", m.Name())
		}
		// r1 = 1 (from the y write) ∧ r2 = 0 (initial): forbidden, because
		// TSO/SC order the T0 writes and the T1 reads.
		if hasOutcome(gs, []int{r1, r2}, []int{wy, -1}) {
			t.Errorf("%s allows the MP forbidden outcome", m.Name())
		}
	}
	// The relaxed model (no read-read ordering) allows it.
	rel := ConsistentExecutions(es, Relaxed{}, EnumerateOptions{})
	if !hasOutcome(rel, []int{r1, r2}, []int{wy, -1}) {
		t.Error("Relaxed forbids the MP outcome; expected allowed")
	}
}

func TestCoRRCoherence(t *testing.T) {
	es := expandOne(t, prog.CoRR())
	r1 := findRead(es, 1, 0)
	r2 := findRead(es, 1, 1)
	wx := findWrite(es, "x")
	for _, m := range []Model{SC{}, TSO{}, Relaxed{}} {
		gs := ConsistentExecutions(es, m, EnumerateOptions{})
		// r1 = 1 ∧ r2 = 0 violates coherence (sc_per_loc) for all models.
		if hasOutcome(gs, []int{r1, r2}, []int{wx, -1}) {
			t.Errorf("%s allows coherence violation", m.Name())
		}
		// Same-value outcomes are allowed.
		if !hasOutcome(gs, []int{r1, r2}, []int{wx, wx}) {
			t.Errorf("%s forbids the coherent 1,1 outcome", m.Name())
		}
	}
}

func TestSpectreV1SingleWitnessPerPath(t *testing.T) {
	// §3.1: each Spectre v1 event structure extends to exactly one candidate
	// execution, and it is TSO-consistent.
	for _, es := range prog.Expand(prog.SpectreV1(), prog.ExpandOptions{}) {
		gs := ConsistentExecutions(es, TSO{}, EnumerateOptions{})
		if len(gs) != 1 {
			t.Fatalf("candidate executions = %d, want 1", len(gs))
		}
		g := gs[0]
		top := g.Tops()[0].ID
		// All reads read from initial state.
		for r := range g.Reads() {
			if !g.RF.Has(top, r) {
				t.Errorf("read %d not sourced by ⊤", r)
			}
		}
	}
}

func TestTransientReadsGetRF(t *testing.T) {
	gs := prog.Expand(prog.SpectreV1(), prog.ExpandOptions{Depth: 2, XStateForLocation: true})
	for _, es := range gs {
		if es.TransientEvents().Len() == 0 {
			continue
		}
		for _, g := range ConsistentExecutions(es, TSO{}, EnumerateOptions{}) {
			for r := range g.Reads() {
				found := false
				for _, p := range g.RF.Pairs() {
					if p.To == r {
						found = true
					}
				}
				if !found {
					t.Errorf("read %d (transient=%v) lacks rf", r, g.Events[r].Transient)
				}
			}
		}
	}
}

func TestStaleForwardingEnumeratesBypass(t *testing.T) {
	// A same-address write-then-transient-read: with StaleForwarding the
	// transient read may read from ⊤ (stale) as well as from the write.
	b := event.NewBuilder()
	x := b.FreshX()
	w := b.Write(0, "y", x, event.XRW, "W y")
	tr := b.TransientRead(0, "y", x, event.XR, "Rs y")
	_ = tr
	b.CO(b.Top(), w)
	es := b.Graph()
	es.PO = es.PO.TransitiveClosure()
	es.TFO = es.TFO.TransitiveClosure()
	es.CO = es.CO.TransitiveClosure()

	var fromTop, fromW int
	EnumerateExecutions(es, EnumerateOptions{StaleForwarding: true}, func(g *event.Graph) {
		if g.RF.Has(g.Tops()[0].ID, tr.ID) {
			fromTop++
		}
		if g.RF.Has(w.ID, tr.ID) {
			fromW++
		}
	})
	if fromTop == 0 {
		t.Error("stale (bypassing) rf not enumerated")
	}
	if fromW == 0 {
		t.Error("forwarded rf not enumerated")
	}
}

func TestFenceRelation(t *testing.T) {
	es := expandOne(t, prog.SBFenced())
	fr := FenceRelation(es)
	// On each thread the store is fence-ordered before the load.
	count := 0
	for _, p := range fr.Pairs() {
		a, b := es.Events[p.From], es.Events[p.To]
		if a.IsWrite() && b.IsRead() && a.Thread == b.Thread {
			count++
		}
	}
	if count != 2 {
		t.Errorf("fence-ordered W→R pairs = %d, want 2", count)
	}
}

func TestModelNames(t *testing.T) {
	for _, tc := range []struct {
		m    Model
		want string
	}{{SC{}, "SC"}, {TSO{}, "TSO"}, {Relaxed{}, "Relaxed"}} {
		if tc.m.Name() != tc.want {
			t.Errorf("Name = %q, want %q", tc.m.Name(), tc.want)
		}
	}
}
