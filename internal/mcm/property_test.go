package mcm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lcm/internal/event"
	"lcm/internal/prog"
)

// randomLitmus builds a small random multi-threaded straight-line program
// over a few shared locations.
func randomLitmus(rng *rand.Rand) *prog.Program {
	locs := []string{"x", "y", "z"}
	nThreads := 1 + rng.Intn(2)
	p := &prog.Program{Name: "rand"}
	reg := 0
	for t := 0; t < nThreads; t++ {
		var body []prog.Node
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			loc := locs[rng.Intn(len(locs))]
			if rng.Intn(2) == 0 {
				body = append(body, prog.Store(loc, ""))
			} else {
				reg++
				body = append(body, prog.Load(prog.Reg(regName(reg)), loc, "", false))
			}
		}
		p.Threads = append(p.Threads, body)
	}
	return p
}

func regName(i int) string {
	return "r" + string(rune('0'+i%10)) + string(rune('a'+i/10))
}

// Property: the memory-model hierarchy SC ⊆ TSO ⊆ Relaxed holds on every
// execution of random litmus programs — each weaker model admits a
// superset of consistent executions.
func TestQuickModelInclusion(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomLitmus(rng)
		for _, es := range prog.Expand(p, prog.ExpandOptions{}) {
			okInclusion := true
			EnumerateExecutions(es, EnumerateOptions{}, func(g *event.Graph) {
				sc := SC{}.Consistent(g)
				tso := TSO{}.Consistent(g)
				rel := Relaxed{}.Consistent(g)
				if sc && !tso {
					okInclusion = false
				}
				if tso && !rel {
					okInclusion = false
				}
			})
			if !okInclusion {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: every model admits at least one consistent execution of every
// program (progress: the sequential interleaving always exists).
func TestQuickModelsAdmitSomething(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomLitmus(rng)
		for _, es := range prog.Expand(p, prog.ExpandOptions{}) {
			for _, m := range []Model{SC{}, TSO{}, Relaxed{}} {
				if len(ConsistentExecutions(es, m, EnumerateOptions{})) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated execution validates structurally, and fr is
// always same-location and acyclic together with co.
func TestQuickWitnessWellFormedness(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomLitmus(rng)
		for _, es := range prog.Expand(p, prog.ExpandOptions{}) {
			ok := true
			EnumerateExecutions(es, EnumerateOptions{}, func(g *event.Graph) {
				if err := g.Validate(); err != nil {
					ok = false
					return
				}
				fr := g.FR()
				for _, pr := range fr.Pairs() {
					if g.Events[pr.From].Loc != g.Events[pr.To].Loc {
						ok = false
					}
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
