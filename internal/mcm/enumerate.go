package mcm

import (
	"sort"

	"lcm/internal/event"
)

// EnumerateOptions controls witness enumeration.
type EnumerateOptions struct {
	// StaleForwarding permits transient reads to read from co-stale writes
	// (the rf relaxation induced by store forwarding, §3.3). When false,
	// transient reads are sourced like committed reads.
	StaleForwarding bool
}

// ConsistentExecutions enumerates every execution witness (rf, co) of the
// event structure es and returns the candidate executions consistent with
// model m. Each returned graph is a clone of es with RF and CO populated;
// transient reads also receive rf edges (they architecturally observe a
// value even though they never commit, Fig. 2b).
func ConsistentExecutions(es *event.Graph, m Model, opts EnumerateOptions) []*event.Graph {
	var out []*event.Graph
	EnumerateExecutions(es, opts, func(g *event.Graph) {
		if m.Consistent(g) {
			out = append(out, g)
		}
	})
	return out
}

// EnumerateExecutions calls yield for every structurally well-formed
// execution witness of es, consistent or not. The caller typically filters
// with a Model (architectural semantics) or a core.LCM (microarchitectural
// semantics).
func EnumerateExecutions(es *event.Graph, opts EnumerateOptions, yield func(*event.Graph)) {
	top := es.Tops()[0].ID

	// Group committed writes by location.
	writesByLoc := make(map[event.Location][]int)
	var committedWrites []int
	for _, e := range es.Events {
		if e.IsWrite() && e.Committed() {
			writesByLoc[e.Loc] = append(writesByLoc[e.Loc], e.ID)
			committedWrites = append(committedWrites, e.ID)
		}
	}
	sort.Ints(committedWrites)
	locs := make([]event.Location, 0, len(writesByLoc))
	for l := range writesByLoc {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })

	// Reads needing rf sources, in ID order for determinism.
	var reads []int
	for _, e := range es.Events {
		if e.IsRead() && !e.Prefetch {
			reads = append(reads, e.ID)
		}
	}
	sort.Ints(reads)

	// Candidate rf sources per read.
	sources := make(map[int][]int, len(reads))
	for _, r := range reads {
		re := es.Events[r]
		cands := []int{top}
		for _, e := range es.Events {
			if !e.IsWrite() || e.Loc != re.Loc {
				continue
			}
			if !e.Committed() {
				// A transient write can source only a transient same-thread
				// read (LSQ forwarding inside the speculation window).
				if !re.Transient || e.Thread != re.Thread || !es.TFO.Has(e.ID, r) {
					continue
				}
				if !opts.StaleForwarding {
					continue
				}
				cands = append(cands, e.ID)
				continue
			}
			if re.Transient {
				// Transient reads may observe any write not fetched after
				// them; with StaleForwarding they may additionally observe
				// stale (co-earlier) data, which enumeration naturally
				// covers by listing all candidates.
				if e.Thread == re.Thread && es.TFO.Has(r, e.ID) {
					continue
				}
				cands = append(cands, e.ID)
				continue
			}
			// Committed read: any committed write, same or other thread;
			// consistency predicates prune impossible choices.
			if e.Thread == re.Thread && es.PO.Has(r, e.ID) {
				continue // reading from a po-later same-thread write is never consistent
			}
			cands = append(cands, e.ID)
		}
		sources[r] = cands
	}

	// Enumerate co as permutations of writes per location (Top is
	// implicitly first), combined across locations, then rf choices.
	coChoices := enumerateCoChoices(locs, writesByLoc)

	assign := make([]int, len(reads))
	var rec func(i int, emit func())
	rec = func(i int, emit func()) {
		if i == len(reads) {
			emit()
			return
		}
		for _, w := range sources[reads[i]] {
			assign[i] = w
			rec(i+1, emit)
		}
	}

	for _, coPerm := range coChoices {
		rec(0, func() {
			g := es.Clone()
			for loc, order := range coPerm {
				_ = loc
				prev := top
				for _, w := range order {
					g.CO.Add(prev, w)
					prev = w
				}
			}
			g.CO = g.CO.TransitiveClosure()
			for i, r := range reads {
				g.RF.Add(assign[i], r)
			}
			if err := g.Validate(); err == nil {
				yield(g)
			}
		})
	}
}

// enumerateCoChoices returns every combination of per-location write
// orders: a slice of maps location → ordered write IDs.
func enumerateCoChoices(locs []event.Location, writesByLoc map[event.Location][]int) []map[event.Location][]int {
	out := []map[event.Location][]int{{}}
	for _, loc := range locs {
		perms := permutations(writesByLoc[loc])
		var next []map[event.Location][]int
		for _, base := range out {
			for _, p := range perms {
				m := make(map[event.Location][]int, len(base)+1)
				for k, v := range base {
					m[k] = v
				}
				m[loc] = p
				next = append(next, m)
			}
		}
		out = next
	}
	return out
}

func permutations(xs []int) [][]int {
	if len(xs) == 0 {
		return [][]int{nil}
	}
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			nr := make([]int, 0, len(rest)-1)
			nr = append(nr, rest[:i]...)
			nr = append(nr, rest[i+1:]...)
			rec(append(cur, rest[i]), nr)
		}
	}
	rec(nil, xs)
	return out
}
