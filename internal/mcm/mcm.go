// Package mcm implements axiomatic memory consistency models as consistency
// predicates over candidate executions (§2.1.3), and enumerates the
// consistent executions of an event structure — the architectural semantics
// that leakage containment models build on (§2.2).
package mcm

import (
	"lcm/internal/event"
	"lcm/internal/relation"
)

// Model is an axiomatically-specified MCM: a named consistency predicate.
type Model interface {
	Name() string
	// Consistent reports whether the committed projection of g (its
	// architectural candidate execution) satisfies the model.
	Consistent(g *event.Graph) bool
}

// committedProjection restricts the witness relations of g to committed
// events: the architectural semantics ignores transient and prefetch events
// (§3.3 — po relates committed instructions only, and com is architectural).
func committedProjection(g *event.Graph) (po, rf, co, fr, poLoc *relation.Relation) {
	committed := relation.NewSet()
	for _, e := range g.Events {
		if e.Committed() {
			committed.Add(e.ID)
		}
	}
	po = g.PO // already committed-only by construction
	rf = g.RF.Restrict(committed, committed)
	co = g.CO.Restrict(committed, committed)
	// Derive fr with the graph's same-location/irreflexivity filters (the
	// raw transpose-compose through ⊤ would fabricate cross-location
	// pairs), then restrict to committed events.
	fr = g.FR().Restrict(committed, committed)
	poLoc = g.POLoc()
	return po, rf, co, fr, poLoc
}

// FenceRelation derives the fence ordering relation of §2.1.3: (a, b) such
// that some fence event f has po(a, f) and po(f, b), unioned with any
// explicit pairs recorded in g.Fence.
func FenceRelation(g *event.Graph) *relation.Relation {
	r := g.Fence.Clone()
	for _, f := range g.Events {
		if f.Kind != event.KFence {
			continue
		}
		var before, after []int
		for _, e := range g.Events {
			if !e.IsMemory() {
				continue
			}
			if g.PO.Has(e.ID, f.ID) {
				before = append(before, e.ID)
			}
			if g.PO.Has(f.ID, e.ID) {
				after = append(after, e.ID)
			}
		}
		for _, a := range before {
			for _, b := range after {
				r.Add(a, b)
			}
		}
	}
	return r
}

// SC is sequential consistency: acyclic(po + rf + co + fr).
type SC struct{}

// Name implements Model.
func (SC) Name() string { return "SC" }

// Consistent implements Model.
func (SC) Consistent(g *event.Graph) bool {
	po, rf, co, fr, _ := committedProjection(g)
	return relation.Union(po, rf, co, fr).IsAcyclic()
}

// TSO is the Total Store Order model of Intel x86 (§2.1.3): the conjunction
// of sc_per_loc and causality. rmw_atomicity is vacuous here because the
// vocabulary has no atomic read-modify-write events.
type TSO struct{}

// Name implements Model.
func (TSO) Name() string { return "TSO" }

// Consistent implements Model.
func (TSO) Consistent(g *event.Graph) bool {
	po, rf, co, fr, poLoc := committedProjection(g)
	_ = po
	// sc_per_loc ≜ acyclic(rf + co + fr + po_loc).
	if !relation.Union(rf, co, fr, poLoc).IsAcyclic() {
		return false
	}
	// causality ≜ acyclic(rfe + co + fr + ppo + fence), where TSO's ppo is
	// po minus Write→Read pairs.
	ppo := g.PO.Filter(func(a, b int) bool {
		ea, eb := g.Events[a], g.Events[b]
		if !ea.IsMemory() && ea.Kind != event.KTop {
			return false
		}
		if !eb.IsMemory() {
			return false
		}
		return !(ea.IsWrite() && eb.IsRead())
	})
	rfe := g.RFE().Filter(func(a, b int) bool {
		return g.Events[a].Committed() && g.Events[b].Committed()
	})
	return relation.Union(rfe, co, fr, ppo, FenceRelation(g)).IsAcyclic()
}

// Relaxed is a weakly-ordered model in the style of ARM: coherence plus
// dependency-and-fence-ordered causality only.
type Relaxed struct{}

// Name implements Model.
func (Relaxed) Name() string { return "Relaxed" }

// Consistent implements Model.
func (Relaxed) Consistent(g *event.Graph) bool {
	_, rf, co, fr, poLoc := committedProjection(g)
	if !relation.Union(rf, co, fr, poLoc).IsAcyclic() {
		return false
	}
	dep := g.Dep().Filter(func(a, b int) bool {
		return g.Events[a].Committed() && g.Events[b].Committed()
	})
	rfe := g.RFE().Filter(func(a, b int) bool {
		return g.Events[a].Committed() && g.Events[b].Committed()
	})
	return relation.Union(rfe, co, fr, dep, FenceRelation(g)).IsAcyclic()
}
