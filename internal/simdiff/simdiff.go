// Package simdiff decides two-secret distinguishability on the uarch
// simulator: run the same call twice under the same configuration,
// differing only in one planted secret value, and compare the final
// cache residues. A program leaks through a microarchitectural
// transmitter exactly when some secret pair leaves distinct residue —
// the operational counterpart of the axiomatic leakage predicate, used
// to differentially test the static Clou engines.
package simdiff

import (
	"fmt"
	"slices"

	"lcm/internal/ir"
	"lcm/internal/uarch"
)

// Write plants a value into global memory before the call.
type Write struct {
	Global string
	Off    uint64
	Size   int // bytes; 0 means 1
	Val    uint64
}

// Spec describes one distinguishability experiment: the victim call,
// the public initial writes shared by both runs, and the secret
// location with its two candidate values.
type Spec struct {
	Fn     string
	Args   []uint64
	Init   []Write
	Secret Write // Val is ignored; V1 and V2 are planted instead
	V1, V2 uint64
}

// Distinguishes runs sp.Fn twice under cfg — once with sp.V1 at the
// secret location, once with sp.V2 — and reports whether the two runs
// end with different cache residue. The architectural return values of
// the two runs are not compared: committed state may legitimately
// depend on the secret; only the cache side channel is at issue.
func Distinguishes(m *ir.Module, cfg uarch.Config, sp Spec) (bool, error) {
	s1, err := run(m, cfg, sp, sp.V1)
	if err != nil {
		return false, err
	}
	s2, err := run(m, cfg, sp, sp.V2)
	if err != nil {
		return false, err
	}
	return !slices.Equal(s1, s2), nil
}

func run(m *ir.Module, cfg uarch.Config, sp Spec, secret uint64) ([]uint64, error) {
	ma := uarch.New(m, cfg)
	for _, w := range sp.Init {
		if err := plant(ma, w, w.Val); err != nil {
			return nil, err
		}
	}
	if err := plant(ma, sp.Secret, secret); err != nil {
		return nil, err
	}
	ma.Flush()
	if _, err := ma.Call(sp.Fn, sp.Args...); err != nil {
		return nil, fmt.Errorf("%s: %w", sp.Fn, err)
	}
	return ma.Cache.Snapshot(), nil
}

func plant(ma *uarch.Machine, w Write, val uint64) error {
	base, ok := ma.GlobalAddr(w.Global)
	if !ok {
		return fmt.Errorf("unknown global %q", w.Global)
	}
	size := w.Size
	if size == 0 {
		size = 1
	}
	ma.Mem.Store(base+w.Off, size, val)
	return nil
}
