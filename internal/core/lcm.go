// Package core implements leakage containment models (LCMs) — the primary
// contribution of "Axiomatic Hardware-Software Contracts for Security"
// (ISCA 2022). An LCM extends an axiomatic MCM with a microarchitectural
// semantics over extra-architectural state (xstate) and a speculative
// semantics over transient events, and defines microarchitectural leakage
// as a deviation between the two: a consistent candidate execution whose
// comx relation violates one of the non-interference predicates of §4.1.
package core

import (
	"lcm/internal/event"
	"lcm/internal/relation"
)

// Machine is an LCM confidentiality predicate (§3.2.2): it rules out
// instantiations of comx that are impossible on the modeled hardware, just
// as a consistency predicate rules out instantiations of com.
type Machine struct {
	// MachineName identifies the modeled microarchitecture.
	MachineName string
	// AllowStoreBypass permits frx + tfo_loc cycles — a load
	// microarchitecturally reading its xstate before a tfo-earlier
	// same-location store writes it (store forwarding past unresolved
	// stores; the Spectre v4 behaviour §4.2 shows Intel LCMs must permit).
	AllowStoreBypass bool
	// AllowSilentStores permits architectural writes to access xstate in
	// read-only mode (the silent-store optimization of Fig. 5a).
	AllowSilentStores bool
	// AllowAliasPrediction permits a transient read to be sourced via rfx
	// by a write to a *different* architectural location that shares its
	// xstate (predictive store forwarding, Fig. 4b).
	AllowAliasPrediction bool
}

// Baseline returns the conservative single-core machine of §4.1: write-
// allocate direct-mapped caches, no silent stores, no alias prediction, and
// no store bypass.
func Baseline() Machine {
	return Machine{MachineName: "baseline"}
}

// IntelX86 returns an LCM for Intel x86-style cores, which must permit
// store bypass (Spectre v4 is observed on Intel hardware, §4.2).
func IntelX86() Machine {
	return Machine{MachineName: "intel-x86", AllowStoreBypass: true}
}

// Permissive returns the machine Clou assumes (§5.2): comx essentially
// unconstrained apart from well-formedness, silent stores and alias
// prediction excluded.
func Permissive() Machine {
	return Machine{MachineName: "permissive", AllowStoreBypass: true}
}

// Name returns the machine's name.
func (m Machine) Name() string { return m.MachineName }

// Confidential reports whether the microarchitectural witness of g (rfx,
// cox, and the derived frx) is possible on this machine.
func (m Machine) Confidential(g *event.Graph) bool {
	// Well-formedness beyond Graph.Validate: no reading from the future.
	// An rfx source must be ⊤ or tfo-before its reader (⊥ observers probe
	// after completion and may read from anyone).
	for _, p := range g.RFX.Pairs() {
		src, dst := g.Events[p.From], g.Events[p.To]
		if src.Kind == event.KTop || dst.Kind == event.KBottom {
			continue
		}
		if !g.TFO.Has(p.From, p.To) {
			return false
		}
	}
	if !m.AllowSilentStores {
		for _, e := range g.Events {
			if e.IsWrite() && e.AccessesX() && e.XAcc != event.XRW {
				return false
			}
		}
	}
	if !m.AllowAliasPrediction {
		// rfx must relate same-location events (xstate is per-location in
		// the direct-mapped abstraction); brackets excepted.
		for _, p := range g.RFX.Pairs() {
			src, dst := g.Events[p.From], g.Events[p.To]
			if src.Kind == event.KTop || dst.Kind == event.KBottom {
				continue
			}
			if src.Loc != dst.Loc {
				return false
			}
		}
	}
	rfx, cox, frx := g.RFX, g.COX, g.FRX()
	if !relation.Union(rfx, cox).IsAcyclic() {
		return false
	}
	if m.AllowStoreBypass {
		// Permit frx + tfo_loc cycles, but still require comx itself to be
		// acyclic for committed readers: only transient reads may read
		// before a tfo-earlier store writes.
		frxCommitted := frx.Filter(func(a, b int) bool {
			return !g.Events[a].Transient
		})
		return relation.Union(rfx, cox, frxCommitted, g.POLoc()).IsAcyclic()
	}
	// sc_per_loc_x ≜ acyclic(rfx + cox + frx + tfo_loc) — the naive lifting
	// of §4.2, which forbids Spectre v4 style bypass.
	return relation.Union(rfx, cox, frx, g.TFOLoc()).IsAcyclic()
}
