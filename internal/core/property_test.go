package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lcm/internal/core"
	"lcm/internal/prog"
)

// randomSequential builds a random single-threaded straight-line program
// with no observer-visible secrets: stores and loads over a few locations.
func randomSequential(rng *rand.Rand) *prog.Program {
	locs := []string{"a", "b", "c"}
	var body []prog.Node
	n := 2 + rng.Intn(5)
	reg := 0
	for i := 0; i < n; i++ {
		loc := locs[rng.Intn(len(locs))]
		if rng.Intn(2) == 0 {
			body = append(body, prog.Store(loc, ""))
		} else {
			reg++
			body = append(body, prog.Load(prog.Reg([]string{"p", "q", "r", "s", "t", "u", "v"}[reg%7]), loc, "", false))
		}
	}
	return &prog.Program{Name: "seq", Threads: [][]prog.Node{body}}
}

// Property (soundness of the leakage definition on benign code): a
// sequential program with no observer and no speculation has no
// non-interference violations under the interference-free witness — the
// implied microarchitectural execution matches architectural expectation.
func TestQuickNoFalseLeaksSequential(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomSequential(rng)
		structures := prog.Expand(p, prog.ExpandOptions{XStateForLocation: true})
		findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{})
		return len(findings) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: adding an observer to the same programs surfaces violations
// exactly when the program touches memory at all (⊥ reads the program's
// xstate residue — §3.2's premise that any footprint is observable).
func TestQuickObserverSeesFootprint(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomSequential(rng)
		structures := prog.Expand(p, prog.ExpandOptions{XStateForLocation: true, Observer: true})
		findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{})
		touchesMemory := len(p.Threads[0]) > 0
		if touchesMemory && len(findings) == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: transmitter classification is monotone in the dependency
// structure — every violation's transmitters classify to at least AT, and
// universal transmitters always carry access and index instructions.
func TestQuickClassificationWellFormed(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := prog.SpectreV1()
		if rng.Intn(2) == 0 {
			p = prog.SpectreV1Variant()
		}
		structures := prog.Expand(p, prog.ExpandOptions{
			Depth: 1 + rng.Intn(5), XStateForLocation: true, Observer: true,
		})
		findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{})
		for _, f := range findings {
			for _, tr := range f.Transmitters {
				if tr.Class.Rank() < core.AT.Rank() {
					return false
				}
				if tr.Class == core.UDT || tr.Class == core.UCT {
					if tr.Access < 0 || tr.Index < 0 {
						return false
					}
				}
				if (tr.Class == core.DT || tr.Class == core.CT) && tr.Access < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
