package core

import (
	"sort"

	"lcm/internal/event"
)

// EnumerateOptions controls microarchitectural witness enumeration.
type EnumerateOptions struct {
	// Modes enumerates xstate access modes: reads as hit (XR) or miss
	// (XRW), and — on machines that allow it — writes as silent (XR).
	// When false, the access modes recorded in the event structure are
	// kept as-is.
	Modes bool
	// Limit bounds the number of witnesses yielded (0 = unlimited).
	Limit int
}

// EnumerateMicroarch enumerates the microarchitectural executions of the
// candidate execution g on machine m: every assignment of access modes
// (optionally), cox total orders per xstate element, and rfx sources per
// xstate reader that satisfies the machine's confidentiality predicate.
// Each witness is yielded as a fresh clone; yield returning false stops
// the enumeration early.
func EnumerateMicroarch(g *event.Graph, m Machine, opts EnumerateOptions, yield func(*event.Graph) bool) {
	count := 0
	emit := func(w *event.Graph) bool {
		if opts.Limit > 0 && count >= opts.Limit {
			return false
		}
		count++
		return yield(w)
	}
	if opts.Modes {
		enumerateModes(g, m, func(gm *event.Graph) bool {
			return enumerateWitnesses(gm, m, emit)
		})
		return
	}
	enumerateWitnesses(g, m, emit)
}

// enumerateModes yields clones of g with every feasible access-mode
// assignment: committed and transient reads may hit (XR) or miss (XRW);
// writes are XRW, or XR as well when the machine implements silent stores.
func enumerateModes(g *event.Graph, m Machine, yield func(*event.Graph) bool) bool {
	var flexible []int
	for _, e := range g.Events {
		if e.XState == event.XNone {
			continue
		}
		if e.IsRead() && !e.Prefetch {
			flexible = append(flexible, e.ID)
		} else if e.IsWrite() && m.AllowSilentStores {
			flexible = append(flexible, e.ID)
		}
	}
	sort.Ints(flexible)
	var rec func(i int, cur *event.Graph) bool
	rec = func(i int, cur *event.Graph) bool {
		if i == len(flexible) {
			return yield(cur)
		}
		id := flexible[i]
		for _, mode := range []event.XAccess{event.XR, event.XRW} {
			next := cur.Clone()
			// Events are shared across clones; copy the one we mutate.
			ev := *next.Events[id]
			ev.XAcc = mode
			next.Events[id] = &ev
			if !rec(i+1, next) {
				return false
			}
		}
		return true
	}
	return rec(0, g)
}

// xstateAccessors partitions the events of g by xstate element.
type xstateAccessors struct {
	x       event.XSID
	writers []int // XRW accessors (⊤ implicit)
	readers []int // XR and XRW accessors (each RW access reads before writing)
}

func accessorsByXstate(g *event.Graph) []xstateAccessors {
	byX := make(map[event.XSID]*xstateAccessors)
	for _, e := range g.Events {
		if !e.AccessesX() {
			continue
		}
		a, ok := byX[e.XState]
		if !ok {
			a = &xstateAccessors{x: e.XState}
			byX[e.XState] = a
		}
		a.readers = append(a.readers, e.ID)
		if e.XAcc == event.XRW {
			a.writers = append(a.writers, e.ID)
		}
	}
	var out []xstateAccessors
	for _, a := range byX {
		sort.Ints(a.writers)
		sort.Ints(a.readers)
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].x < out[j].x })
	return out
}

// enumerateWitnesses enumerates rfx/cox witnesses for fixed access modes.
func enumerateWitnesses(g *event.Graph, m Machine, yield func(*event.Graph) bool) bool {
	top := g.Tops()[0].ID
	bottoms := g.Bottoms()
	axs := accessorsByXstate(g)

	// Choice structure: per xstate, a permutation of writers (cox) and an
	// rfx source per reader; plus, per ⊥ and per xstate, an rfx source.
	type choicePoint struct {
		x       event.XSID
		reader  int   // -1 for the cox permutation pseudo-point
		sources []int // candidate rfx sources (for readers)
		perms   [][]int
	}
	var points []choicePoint
	for _, a := range axs {
		points = append(points, choicePoint{x: a.x, reader: -1, perms: permutations(a.writers)})
		for _, r := range a.readers {
			cands := []int{top}
			for _, w := range a.writers {
				if w == r {
					continue
				}
				// No reading from the future (checked again by the
				// machine, but pruning here keeps the space small).
				if g.TFO.Has(w, r) {
					cands = append(cands, w)
				}
			}
			points = append(points, choicePoint{x: a.x, reader: r, sources: cands})
		}
		for _, b := range bottoms {
			cands := []int{top}
			cands = append(cands, a.writers...)
			points = append(points, choicePoint{x: a.x, reader: b.ID, sources: cands})
		}
	}

	assign := make([]int, len(points)) // index into sources/perms
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(points) {
			w := g.Clone()
			for j, p := range points {
				if p.reader == -1 {
					prev := top
					for _, wr := range p.perms[assign[j]] {
						w.COX.Add(prev, wr)
						prev = wr
					}
				} else {
					w.RFX.Add(p.sources[assign[j]], p.reader)
				}
			}
			w.COX = w.COX.TransitiveClosure()
			if err := w.Validate(); err != nil {
				return true // skip malformed combination
			}
			if !m.Confidential(w) {
				return true
			}
			return yield(w)
		}
		n := len(points[i].sources)
		if points[i].reader == -1 {
			n = len(points[i].perms)
		}
		for k := 0; k < n; k++ {
			assign[i] = k
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

func permutations(xs []int) [][]int {
	if len(xs) == 0 {
		return [][]int{nil}
	}
	var out [][]int
	var rec func(cur []int, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			nr := make([]int, 0, len(rest)-1)
			nr = append(nr, rest[:i]...)
			nr = append(nr, rest[i+1:]...)
			rec(append(cur, rest[i]), nr)
		}
	}
	rec(nil, xs)
	return out
}

// InterferenceFree returns the microarchitectural witness implied by the
// architectural semantics of g in the absence of interference (§3.2.3):
// access modes are implied first — a read whose xstate element was already
// accessed by a tfo-earlier event hits (XR, per §3.2.1: hits read xstate,
// misses read-modify-write it; cold accesses miss), writes always
// read-modify-write (write-allocate) — then, per xstate element, cox
// follows transient fetch order and every reader is sourced by the most
// recent tfo-earlier writer (⊤ if none); observers (⊥) read the final
// writer of each xstate element. This is the execution the figures of
// §3–§4 draw (note Fig. 4a's 4S is annotated "R s1": a hit after 2 and 3
// touched s1), and the reference the non-interference predicates compare
// against.
func InterferenceFree(g *event.Graph) *event.Graph {
	w := g.Clone()
	impliedModes(w)
	top := w.Tops()[0].ID
	for _, a := range accessorsByXstate(w) {
		order := sortByTFO(w, a.writers)
		prev := top
		for _, wr := range order {
			w.COX.Add(prev, wr)
			prev = wr
		}
		for _, r := range a.readers {
			src := top
			for _, wr := range order {
				if wr != r && w.TFO.Has(wr, r) {
					src = wr
				}
			}
			w.RFX.Add(src, r)
		}
		for _, b := range w.Bottoms() {
			last := top
			if len(order) > 0 {
				last = order[len(order)-1]
			}
			w.RFX.Add(last, b.ID)
		}
	}
	w.COX = w.COX.TransitiveClosure()
	return w
}

// impliedModes rewrites read access modes to the interference-free
// implication: a read hits (XR) iff some tfo-earlier program event already
// accessed its xstate element (⊤ models uncached initial state, so cold
// reads miss). Writes keep their recorded mode (XRW under write-allocate;
// XR only when a silent-store machine marked them so).
func impliedModes(g *event.Graph) {
	for _, e := range g.Events {
		if !e.IsRead() || !e.AccessesX() {
			continue
		}
		warm := false
		for _, o := range g.Events {
			if o.ID == e.ID || o.Kind == event.KTop || o.Kind == event.KBottom {
				continue
			}
			if o.AccessesX() && o.XState == e.XState && g.TFO.Has(o.ID, e.ID) {
				warm = true
				break
			}
		}
		mode := event.XRW
		if warm {
			mode = event.XR
		}
		if e.XAcc != mode {
			ev := *e
			ev.XAcc = mode
			g.Events[e.ID] = &ev
		}
	}
}

// sortByTFO orders event IDs consistently with the (total per-thread)
// transient fetch order, falling back to ID order for cross-thread pairs.
func sortByTFO(g *event.Graph, ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if g.TFO.Has(a, b) {
			return true
		}
		if g.TFO.Has(b, a) {
			return false
		}
		return a < b
	})
	return out
}
