package core

import (
	"sort"

	"lcm/internal/event"
	"lcm/internal/mcm"
)

// Finding is one leaky candidate execution: the execution graph (with both
// witnesses populated), the non-interference violations it exhibits, and
// the classified transmitters.
type Finding struct {
	Exec         *event.Graph
	Violations   []Violation
	Transmitters []Transmitter
}

// MaxClass returns the most severe transmitter class in the finding, or
// AT-1 semantics (-1 rank) via ok=false when there are no transmitters.
func (f Finding) MaxClass() (Class, bool) {
	if len(f.Transmitters) == 0 {
		return AT, false
	}
	best := f.Transmitters[0].Class
	for _, t := range f.Transmitters[1:] {
		if t.Class.Rank() > best.Rank() {
			best = t.Class
		}
	}
	return best, true
}

// FindOptions configures end-to-end leakage detection.
type FindOptions struct {
	// Model is the consistency predicate for the architectural semantics
	// (default TSO, the paper's hard-coded choice §5.2).
	Model mcm.Model
	// Machine is the confidentiality predicate (default Permissive).
	Machine *Machine
	// Enumerate controls the microarchitectural search: when false, only
	// the interference-free witness of each consistent execution is
	// checked (sufficient for every attack of §4.2, since the deviations
	// there are between the speculative/observer comx and the architectural
	// com); when true, all machine-confidential witnesses are explored.
	Enumerate bool
	// Modes forwards to EnumerateOptions.Modes.
	Modes bool
	// WitnessLimit bounds witnesses per architectural execution.
	WitnessLimit int
	// Classify options.
	Classify ClassifyOptions
	// Stale forwards mcm.EnumerateOptions.StaleForwarding (default true:
	// the speculative semantics permits forwarding stale data, §3.3).
	NoStaleForwarding bool
}

func (o *FindOptions) defaults() {
	if o.Model == nil {
		o.Model = mcm.TSO{}
	}
	if o.Machine == nil {
		m := Permissive()
		o.Machine = &m
	}
	if o.WitnessLimit == 0 {
		o.WitnessLimit = 256
	}
}

// FindLeakage runs the full LCM pipeline on an event structure: enumerate
// consistent architectural executions (§2.2), extend each with
// microarchitectural witnesses (§3.2), evaluate the non-interference
// predicates (§4.1), and classify transmitters (Table 1). It returns one
// Finding per leaky execution.
func FindLeakage(es *event.Graph, opts FindOptions) []Finding {
	opts.defaults()
	var findings []Finding
	archs := mcm.ConsistentExecutions(es, opts.Model, mcm.EnumerateOptions{
		StaleForwarding: !opts.NoStaleForwarding,
	})
	for _, arch := range archs {
		if opts.Enumerate {
			EnumerateMicroarch(arch, *opts.Machine, EnumerateOptions{
				Modes: opts.Modes,
				Limit: opts.WitnessLimit,
			}, func(w *event.Graph) bool {
				if f, ok := analyze(w, opts); ok {
					findings = append(findings, f)
				}
				return true
			})
			continue
		}
		w := InterferenceFree(arch)
		if !opts.Machine.Confidential(w) {
			continue
		}
		if f, ok := analyze(w, opts); ok {
			findings = append(findings, f)
		}
	}
	return findings
}

// FindLeakageInProgramGraphs applies FindLeakage across a set of event
// structures (e.g. the speculative expansion of a program) and merges the
// findings.
func FindLeakageInProgramGraphs(structures []*event.Graph, opts FindOptions) []Finding {
	var out []Finding
	for _, es := range structures {
		out = append(out, FindLeakage(es, opts)...)
	}
	return out
}

func analyze(w *event.Graph, opts FindOptions) (Finding, bool) {
	vs := CheckNonInterference(w)
	if len(vs) == 0 {
		return Finding{}, false
	}
	ts := Classify(w, vs, opts.Classify)
	return Finding{Exec: w, Violations: vs, Transmitters: ts}, true
}

// Summarize aggregates transmitter counts by class across findings,
// deduplicating by (event label, class) so that the same static instruction
// reported in many executions counts once — the convention of Table 2.
func Summarize(findings []Finding) map[Class]int {
	type key struct {
		label string
		class Class
	}
	seen := make(map[key]bool)
	counts := make(map[Class]int)
	for _, f := range findings {
		for _, t := range f.Transmitters {
			ev := f.Exec.Events[t.Event]
			k := key{label: ev.Label + "|" + string(ev.Loc), class: t.Class}
			if seen[k] {
				continue
			}
			seen[k] = true
			counts[t.Class]++
		}
	}
	return counts
}

// TransmitterEvents returns the distinct transmitting event labels across
// findings, sorted, for reporting.
func TransmitterEvents(findings []Finding) []string {
	set := map[string]bool{}
	for _, f := range findings {
		for _, t := range f.Transmitters {
			ev := f.Exec.Events[t.Event]
			label := ev.Label
			if label == "" {
				label = ev.String()
			}
			set[label] = true
		}
	}
	var out []string
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
