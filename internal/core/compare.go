package core

import (
	"lcm/internal/event"
)

// This file implements the LCM-comparison capability §3.4 plans for
// subrosa: automatically comparing leakage containment models across
// microarchitectures, and evaluating mitigations, by enumerating the
// microarchitectural executions one machine permits and another forbids.

// Distinction is one execution witnessing that two machines differ.
type Distinction struct {
	// Exec is permitted by Permits and rejected by Rejects.
	Exec             *event.Graph
	Permits, Rejects string
	// Leaky reports whether the distinguishing execution violates a
	// non-interference predicate — i.e. the permissive machine admits
	// leakage the strict one forbids.
	Leaky bool
}

// CompareOptions bounds the comparison.
type CompareOptions struct {
	Enumerate EnumerateOptions
	// MaxDistinctions stops after this many witnesses (0 = 16).
	MaxDistinctions int
}

// CompareMachines enumerates microarchitectural witnesses of the candidate
// execution g (which must carry an architectural witness) and returns
// executions on which the two machines disagree. An empty result means the
// machines are indistinguishable on g up to the enumeration bounds.
func CompareMachines(g *event.Graph, a, b Machine, opts CompareOptions) []Distinction {
	if opts.MaxDistinctions == 0 {
		opts.MaxDistinctions = 16
	}
	var out []Distinction
	// Enumerate under the more permissive machine in each direction: a
	// witness confidential under a but not b distinguishes them (and vice
	// versa). EnumerateMicroarch filters by its machine argument, so run
	// it under each machine and cross-check with the other.
	collect := func(permits, rejects Machine) {
		EnumerateMicroarch(g, permits, opts.Enumerate, func(w *event.Graph) bool {
			if rejects.Confidential(w) {
				return true // both allow it: not distinguishing
			}
			out = append(out, Distinction{
				Exec:    w,
				Permits: permits.Name(),
				Rejects: rejects.Name(),
				Leaky:   len(CheckNonInterference(w)) > 0,
			})
			return len(out) < opts.MaxDistinctions
		})
	}
	collect(a, b)
	if len(out) < opts.MaxDistinctions {
		collect(b, a)
	}
	return out
}

// MitigationEffect reports how a machine change affects a program's
// leakage: the transmitter class counts under each machine's
// interference-free-and-enumerated executions.
func MitigationEffect(g *event.Graph, before, after Machine, opts CompareOptions) (pre, post map[Class]int) {
	count := func(m Machine) map[Class]int {
		agg := map[Class]int{}
		EnumerateMicroarch(g, m, opts.Enumerate, func(w *event.Graph) bool {
			vs := CheckNonInterference(w)
			for _, t := range Classify(w, vs, ClassifyOptions{}) {
				agg[t.Class]++
			}
			return true
		})
		return agg
	}
	return count(before), count(after)
}
