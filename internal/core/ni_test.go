package core

import (
	"testing"

	"lcm/internal/event"
)

// interferenceFreeCacheGraph builds w → r same-address with the implied
// microarchitectural witness (rf-NI holds).
func hitGraph() (*event.Graph, *event.Event, *event.Event) {
	b := event.NewBuilder()
	x := b.FreshX()
	w := b.Write(0, "a", x, event.XRW, "W a")
	r := b.Read(0, "a", x, event.XR, "R a")
	b.RF(w, r)
	b.CO(b.Top(), w)
	b.RFX(b.Top(), w)
	b.RFX(w, r)
	b.COX(b.Top(), w)
	return b.Finish(), w, r
}

func TestRFNIHolds(t *testing.T) {
	g, _, _ := hitGraph()
	if vs := CheckNonInterference(g); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestRFNIViolatedByEviction(t *testing.T) {
	// r architecturally reads from w but microarchitecturally from ⊤
	// (the line was evicted): rf-NI violation with receiver r.
	b := event.NewBuilder()
	x := b.FreshX()
	w := b.Write(0, "a", x, event.XRW, "W a")
	r := b.Read(0, "a", x, event.XRW, "R a")
	b.RF(w, r)
	b.CO(b.Top(), w)
	b.RFX(b.Top(), w)
	b.RFX(b.Top(), r) // miss to initial state, not w's line
	b.COX(b.Top(), w)
	g := b.Finish()

	vs := CheckNonInterference(g)
	if len(vs) != 1 {
		t.Fatalf("violations = %v, want 1", vs)
	}
	v := vs[0]
	if v.Kind != RFNI || v.Receiver != r.ID {
		t.Errorf("violation = %v", v)
	}
	// ⊤ is excluded from transmitters.
	if len(v.Transmitters) != 0 {
		t.Errorf("transmitters = %v, want none (⊤ excluded)", v.Transmitters)
	}
}

func TestObserverViolation(t *testing.T) {
	// The Fig. 2a shape: ⊥ microarchitecturally reads xstate populated by
	// a program read — an rf-NI deviation from the implicit ⊤ rf→ ⊥.
	b := event.NewBuilder()
	x := b.FreshX()
	r := b.Read(0, "y", x, event.XRW, "R y")
	bot := b.Bottom(0)
	b.RF(b.Top(), r)
	b.RFX(b.Top(), r)
	b.RFX(r, bot)
	g := b.Finish()

	vs := CheckNonInterference(g)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].Receiver != bot.ID || len(vs[0].Transmitters) != 1 || vs[0].Transmitters[0] != r.ID {
		t.Errorf("violation = %v", vs[0])
	}
}

func TestObserverReadingTopIsClean(t *testing.T) {
	b := event.NewBuilder()
	x := b.FreshX()
	r := b.Read(0, "y", x, event.XRW, "R y")
	bot := b.Bottom(0)
	b.RF(b.Top(), r)
	b.RFX(b.Top(), r)
	b.RFX(b.Top(), bot)
	g := b.Finish()
	if vs := CheckNonInterference(g); len(vs) != 0 {
		t.Fatalf("violations = %v, want none", vs)
	}
}

func TestCONIViolatedBySilentStore(t *testing.T) {
	b := event.NewBuilder()
	x := b.FreshX()
	w1 := b.Write(0, "x", x, event.XRW, "W x 1")
	w2 := b.Write(0, "x", x, event.XR, "W x 1 silent")
	bot := b.Bottom(0)
	b.CO(b.Top(), w1)
	b.CO(w1, w2)
	b.RFX(b.Top(), w1)
	b.RFX(w1, w2)
	b.COX(b.Top(), w1)
	b.RFX(w1, bot)
	g := b.Finish()

	vs := CheckNonInterference(g)
	var coni *Violation
	for i := range vs {
		if vs[i].Kind == CONI {
			coni = &vs[i]
		}
	}
	if coni == nil {
		t.Fatalf("no co-NI violation: %v", vs)
	}
	if coni.Receiver != bot.ID || len(coni.Transmitters) != 1 || coni.Transmitters[0] != w2.ID {
		t.Errorf("co-NI violation = %v", coni)
	}
}

func TestCONIHoldsWithoutSilentStore(t *testing.T) {
	b := event.NewBuilder()
	x := b.FreshX()
	w1 := b.Write(0, "x", x, event.XRW, "W x 1")
	w2 := b.Write(0, "x", x, event.XRW, "W x 2")
	bot := b.Bottom(0)
	b.CO(b.Top(), w1)
	b.CO(w1, w2)
	b.RFX(b.Top(), w1)
	b.RFX(w1, w2)
	b.COX(b.Top(), w1)
	b.COX(w1, w2)
	b.RFX(w2, bot)
	g := b.Finish()

	for _, v := range CheckNonInterference(g) {
		if v.Kind == CONI {
			t.Errorf("unexpected co-NI violation: %v", v)
		}
		if v.Kind == RFNI && v.Receiver == bot.ID {
			// w2 sourcing ⊥ is still an observer deviation (the write's
			// address leaks) — expected, not co-NI.
			continue
		}
	}
}

func TestCONIViolatedByEvictionBetweenWrites(t *testing.T) {
	// w1 co w2 with cox(w1,w2) but w2's cache read sourced by ⊤ — an
	// interfering eviction between the two accesses.
	b := event.NewBuilder()
	x := b.FreshX()
	w1 := b.Write(0, "x", x, event.XRW, "W x 1")
	w2 := b.Write(0, "x", x, event.XRW, "W x 2")
	b.CO(b.Top(), w1)
	b.CO(w1, w2)
	b.RFX(b.Top(), w1)
	b.RFX(b.Top(), w2) // not sourced by w1
	b.COX(b.Top(), w1)
	b.COX(w1, w2)
	g := b.Finish()

	found := false
	for _, v := range CheckNonInterference(g) {
		if v.Kind == CONI && v.Receiver == w2.ID {
			found = true
		}
	}
	if !found {
		t.Error("missing co-NI eviction violation")
	}
}

func TestFRNI(t *testing.T) {
	// r reads from ⊤; w immediately co-follows ⊤; r misses (XRW) so it
	// should source w's cache read: rfx(r, w). Violated when w reads ⊤.
	build := func(srcForW func(b *event.Builder, r, w *event.Event)) []Violation {
		b := event.NewBuilder()
		x := b.FreshX()
		r := b.Read(0, "a", x, event.XRW, "R a")
		w := b.Write(0, "a", x, event.XRW, "W a")
		b.RF(b.Top(), r)
		b.CO(b.Top(), w)
		b.RFX(b.Top(), r)
		b.COX(r, w) // r's RW is cox-ordered before w
		srcForW(b, r, w)
		return CheckNonInterference(b.Finish())
	}
	// Satisfied: w sourced by r.
	vs := build(func(b *event.Builder, r, w *event.Event) { b.RFX(r, w) })
	for _, v := range vs {
		if v.Kind == FRNI {
			t.Errorf("unexpected fr-NI violation: %v", v)
		}
	}
	// Violated: w sourced by ⊤.
	vs = build(func(b *event.Builder, r, w *event.Event) { b.RFX(b.Top(), w) })
	found := false
	for _, v := range vs {
		if v.Kind == FRNI {
			found = true
		}
	}
	if !found {
		t.Errorf("missing fr-NI violation: %v", vs)
	}
}

func TestFRNISkipsHits(t *testing.T) {
	// A read hit (XR) does not write xstate, so fr-NI does not apply.
	b := event.NewBuilder()
	x := b.FreshX()
	r := b.Read(0, "a", x, event.XR, "R a hit")
	w := b.Write(0, "a", x, event.XRW, "W a")
	b.RF(b.Top(), r)
	b.CO(b.Top(), w)
	b.RFX(b.Top(), r)
	b.RFX(b.Top(), w)
	b.COX(b.Top(), w)
	g := b.Finish()
	for _, v := range CheckNonInterference(g) {
		if v.Kind == FRNI {
			t.Errorf("fr-NI applied to a hit: %v", v)
		}
	}
}

func TestInterferenceFreeIsNonInterfering(t *testing.T) {
	// For a straight-line program with no observer and no speculation, the
	// interference-free witness has no violations.
	b := event.NewBuilder()
	x := b.FreshX()
	w := b.Write(0, "a", x, event.XRW, "W a")
	r := b.Read(0, "a", x, event.XRW, "R a")
	b.RF(w, r)
	b.CO(b.Top(), w)
	g := InterferenceFree(b.Finish())

	if vs := CheckNonInterference(g); len(vs) != 0 {
		t.Fatalf("interference-free witness has violations: %v", vs)
	}
	// And it is confidential on the baseline machine.
	if !Baseline().Confidential(g) {
		t.Error("interference-free witness rejected by baseline machine")
	}
}

func TestInterferenceFreeObserverSeesLastWriter(t *testing.T) {
	b := event.NewBuilder()
	x := b.FreshX()
	w1 := b.Write(0, "a", x, event.XRW, "W a 1")
	w2 := b.Write(0, "a", x, event.XRW, "W a 2")
	bot := b.Bottom(0)
	b.CO(b.Top(), w1)
	b.CO(w1, w2)
	g := InterferenceFree(b.Finish())

	if !g.RFX.Has(w2.ID, bot.ID) {
		t.Error("⊥ should read the final xstate writer")
	}
	if !g.RFX.Has(w1.ID, w2.ID) || !g.COX.Has(w1.ID, w2.ID) {
		t.Error("implied witness missing w1→w2 comx edges")
	}
	_ = w1
}

func TestNIKindString(t *testing.T) {
	if RFNI.String() != "rf-non-interference" || CONI.String() != "co-non-interference" || FRNI.String() != "fr-non-interference" {
		t.Error("NIKind strings wrong")
	}
}
