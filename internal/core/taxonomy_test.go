package core

import (
	"strings"
	"testing"

	"lcm/internal/event"
	"lcm/internal/relation"
)

// patternGraph builds index → access → transmit chains with configurable
// dependency kinds, plus an observer violation at the transmitter.
func patternGraph(dep1, dep2 string) (*event.Graph, []Violation, map[string]int) {
	b := event.NewBuilder()
	top := b.Top()
	index := b.Read(0, "Z", b.FreshX(), event.XRW, "index")
	access := b.Read(0, "Y+rz", b.FreshX(), event.XRW, "access")
	transmit := b.Read(0, "X+ry", b.FreshX(), event.XRW, "transmit")
	bot := b.Bottom(0)

	switch dep1 {
	case "addr":
		b.AddrDep(index, access, false)
	case "addr_gep":
		b.AddrDep(index, access, true)
	}
	switch dep2 {
	case "addr":
		b.AddrDep(access, transmit, false)
	case "ctrl":
		b.CtrlDep(access, transmit)
	}
	b.RF(top, index)
	b.RF(top, access)
	b.RF(top, transmit)
	b.RFX(top, index)
	b.RFX(top, access)
	b.RFX(top, transmit)
	b.RFX(transmit, bot)
	g := b.Finish()
	vs := CheckNonInterference(g)
	ids := map[string]int{"index": index.ID, "access": access.ID, "transmit": transmit.ID, "bot": bot.ID}
	return g, vs, ids
}

func classOf(ts []Transmitter, ev int) (Transmitter, bool) {
	for _, t := range ts {
		if t.Event == ev {
			return t, true
		}
	}
	return Transmitter{}, false
}

func TestTaxonomyTable1(t *testing.T) {
	cases := []struct {
		dep1, dep2 string
		want       Class
	}{
		{"", "", AT},
		{"", "addr", DT},
		{"", "ctrl", CT},
		{"addr", "addr", UDT},
		{"addr", "ctrl", UCT},
		{"addr_gep", "addr", UDT},
	}
	for _, tc := range cases {
		g, vs, ids := patternGraph(tc.dep1, tc.dep2)
		ts := Classify(g, vs, ClassifyOptions{})
		tr, ok := classOf(ts, ids["transmit"])
		if !ok {
			t.Fatalf("%s/%s: transmitter not found", tc.dep1, tc.dep2)
		}
		if tr.Class != tc.want {
			t.Errorf("%s/%s: class = %v, want %v", tc.dep1, tc.dep2, tr.Class, tc.want)
		}
		if tc.want == UDT || tc.want == UCT {
			if tr.Access != ids["access"] || tr.Index != ids["index"] {
				t.Errorf("%s/%s: access/index = %d/%d", tc.dep1, tc.dep2, tr.Access, tr.Index)
			}
		}
	}
}

func TestGEPOnlyFiltering(t *testing.T) {
	// With GEPOnly, a plain (non-GEP) index→access addr dependency does not
	// qualify a universal pattern: the transmitter is demoted to DT.
	g, vs, ids := patternGraph("addr", "addr")
	ts := Classify(g, vs, ClassifyOptions{GEPOnly: true})
	tr, _ := classOf(ts, ids["transmit"])
	if tr.Class != DT {
		t.Errorf("class = %v, want DT under GEPOnly", tr.Class)
	}
	// A GEP-typed index dependency still qualifies.
	g, vs, ids = patternGraph("addr_gep", "addr")
	ts = Classify(g, vs, ClassifyOptions{GEPOnly: true})
	tr, _ = classOf(ts, ids["transmit"])
	if tr.Class != UDT {
		t.Errorf("class = %v, want UDT under GEPOnly with addr_gep", tr.Class)
	}
}

func TestRequireTransientAccessDemotion(t *testing.T) {
	// A universal pattern whose access instruction commits is demoted to
	// DT when RequireTransientAccess is set (§6.2.1).
	g, vs, ids := patternGraph("addr", "addr")
	ts := Classify(g, vs, ClassifyOptions{RequireTransientAccess: true})
	tr, _ := classOf(ts, ids["transmit"])
	if tr.Class != DT {
		t.Errorf("class = %v, want DT demotion", tr.Class)
	}
}

func TestDataRFStarChains(t *testing.T) {
	// access → (store) → (reload) → transmit: the value is stored and
	// reloaded before use in an address, per §5.3 the chain is
	// (data.rf)*.addr and the transmitter is still a DT.
	b := event.NewBuilder()
	top := b.Top()
	access := b.Read(0, "secret", b.FreshX(), event.XRW, "access")
	spill := b.Write(0, "tmp", b.FreshX(), event.XRW, "spill")
	reload := b.Read(0, "tmp", spill.XState, event.XR, "reload")
	transmit := b.Read(0, "X+r", b.FreshX(), event.XRW, "transmit")
	bot := b.Bottom(0)

	b.DataDep(access, spill)
	b.RF(spill, reload)
	b.AddrDep(reload, transmit, true)

	b.RF(top, access)
	b.RF(top, transmit)
	b.CO(top, spill)
	b.RFX(top, access)
	b.RFX(top, spill)
	b.RFX(spill, reload)
	b.COX(top, spill)
	b.RFX(top, transmit)
	b.RFX(transmit, bot)
	g := b.Finish()

	vs := CheckNonInterference(g)
	ts := Classify(g, vs, ClassifyOptions{})
	tr, ok := classOf(ts, transmit.ID)
	if !ok {
		t.Fatal("transmitter not found")
	}
	if tr.Class != DT {
		t.Errorf("class = %v, want DT via (data.rf)*.addr", tr.Class)
	}
	if tr.Access != access.ID && tr.Access != reload.ID {
		t.Errorf("access = %d, want the chain head %d (or reload %d)", tr.Access, access.ID, reload.ID)
	}
}

func TestSeverityOrder(t *testing.T) {
	// AT < CT < {DT, UCT} < UDT (Table 1).
	if !(AT.Rank() < CT.Rank() && CT.Rank() < DT.Rank() && DT.Rank() == UCT.Rank() && DT.Rank() < UDT.Rank()) {
		t.Error("severity partial order broken")
	}
	for _, c := range []Class{AT, CT, DT, UCT, UDT} {
		if c.String() == "" || c.Rank() < 0 {
			t.Errorf("class %d malformed", int(c))
		}
	}
}

func TestClassifyDeduplicates(t *testing.T) {
	g, vs, ids := patternGraph("addr", "addr")
	// Duplicate the violations: classification must not duplicate
	// transmitters for the same (event, receiver).
	vs = append(vs, vs...)
	ts := Classify(g, vs, ClassifyOptions{})
	count := 0
	for _, tr := range ts {
		if tr.Event == ids["transmit"] {
			count++
		}
	}
	if count != 1 {
		t.Errorf("transmitter reported %d times", count)
	}
}

func TestClassifySortsBySeverity(t *testing.T) {
	g, vs, _ := patternGraph("addr", "addr")
	// Add violations for the other two reads so all three are classified.
	bot := g.Bottoms()[0].ID
	for _, e := range g.Events {
		if e.IsRead() {
			vs = append(vs, Violation{
				Kind: RFNI, Com: relation.Pair{From: 0, To: bot},
				Receiver: bot, Transmitters: []int{e.ID},
			})
		}
	}
	ts := Classify(g, vs, ClassifyOptions{})
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Class.Rank() < ts[i].Class.Rank() {
			t.Fatalf("not sorted by severity: %v", ts)
		}
	}
}

func TestTransmitterString(t *testing.T) {
	tr := Transmitter{Event: 3, Class: UDT, Access: 2, Index: 1, Receiver: 4, Transient: true}
	s := tr.String()
	for _, want := range []string{"UDT", "transmitter 3", "access 2", "index 1", "[transient]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
