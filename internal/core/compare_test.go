package core

import (
	"testing"

	"lcm/internal/event"
)

// bypassCandidate builds W y ; Rs y (transient) — the minimal store-bypass
// shape on which the baseline and Intel machines disagree.
func bypassCandidate() *event.Graph {
	b := event.NewBuilder()
	x := b.FreshX()
	w := b.Write(0, "y", x, event.XRW, "W y")
	tr := b.TransientRead(0, "y", x, event.XR, "Rs y")
	b.Bottom(0) // observer: bypass executions become observable leaks
	b.CO(b.Top(), w)
	b.RF(b.Top(), tr) // stale architectural read
	return b.Finish()
}

func TestCompareMachinesBaselineVsIntel(t *testing.T) {
	g := bypassCandidate()
	ds := CompareMachines(g, Baseline(), IntelX86(), CompareOptions{
		Enumerate: EnumerateOptions{},
	})
	if len(ds) == 0 {
		t.Fatal("baseline and intel-x86 indistinguishable on the bypass shape")
	}
	// Every distinction must be permitted by intel-x86 (the permissive
	// one) and rejected by the baseline.
	for _, d := range ds {
		if d.Permits != "intel-x86" || d.Rejects != "baseline" {
			t.Errorf("unexpected direction: %s permits, %s rejects", d.Permits, d.Rejects)
		}
		if !IntelX86().Confidential(d.Exec) {
			t.Error("witness not actually confidential under intel-x86")
		}
		if Baseline().Confidential(d.Exec) {
			t.Error("witness not actually rejected by baseline")
		}
	}
	// At least one distinguishing execution is leaky: v4-style bypass.
	leaky := false
	for _, d := range ds {
		if d.Leaky {
			leaky = true
		}
	}
	if !leaky {
		t.Error("no leaky distinguishing execution found")
	}
}

func TestCompareMachineWithItself(t *testing.T) {
	g := bypassCandidate()
	if ds := CompareMachines(g, IntelX86(), IntelX86(), CompareOptions{}); len(ds) != 0 {
		t.Errorf("machine distinguishable from itself: %d witnesses", len(ds))
	}
}

func TestCompareSilentStoreMachines(t *testing.T) {
	// Two same-address writes: the silent-store machine admits executions
	// (write as XR) that the baseline forbids.
	b := event.NewBuilder()
	x := b.FreshX()
	w1 := b.Write(0, "v", x, event.XRW, "W v 1")
	w2 := b.Write(0, "v", x, event.XRW, "W v 1 again")
	b.CO(b.Top(), w1)
	b.CO(w1, w2)
	g := b.Finish()

	silent := Baseline()
	silent.AllowSilentStores = true
	silent.MachineName = "baseline+ss"

	ds := CompareMachines(g, Baseline(), silent, CompareOptions{
		Enumerate: EnumerateOptions{Modes: true},
	})
	if len(ds) == 0 {
		t.Fatal("silent-store machine indistinguishable from baseline")
	}
	for _, d := range ds {
		if d.Permits != "baseline+ss" {
			t.Errorf("distinction permitted by %s, want baseline+ss", d.Permits)
		}
	}
}

func TestMitigationEffect(t *testing.T) {
	// The v4 bypass shape with a downstream transmitter: moving from the
	// permissive Intel machine to the strict baseline (which forbids
	// bypass) reduces the transmitter population.
	b := event.NewBuilder()
	x := b.FreshX()
	w := b.Write(0, "y", x, event.XRW, "W y")
	tr := b.TransientRead(0, "y", x, event.XR, "Rs y")
	t2 := b.TransientRead(0, "A+r", b.FreshX(), event.XRW, "Rs A+r")
	bot := b.Bottom(0)
	_ = bot
	b.AddrDep(tr, t2, true)
	b.CO(b.Top(), w)
	b.RF(b.Top(), tr)
	b.RF(b.Top(), t2)
	g := b.Finish()

	pre, post := MitigationEffect(g, IntelX86(), Baseline(), CompareOptions{})
	preTotal, postTotal := 0, 0
	for _, n := range pre {
		preTotal += n
	}
	for _, n := range post {
		postTotal += n
	}
	if preTotal <= postTotal {
		t.Errorf("mitigation did not reduce leakage: pre=%d post=%d", preTotal, postTotal)
	}
}
