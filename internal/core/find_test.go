package core_test

import (
	"testing"

	"lcm/internal/attacks"
	"lcm/internal/core"
	"lcm/internal/event"
	"lcm/internal/mcm"
	"lcm/internal/prog"
)

// TestAttackSampling validates that the leakage definition of §4.1 detects
// every attack of §4.2 with the transmitter classes the paper assigns.
func TestAttackSampling(t *testing.T) {
	for _, a := range attacks.All() {
		t.Run(a.Name, func(t *testing.T) {
			if !a.Machine.Confidential(a.Graph) {
				t.Fatalf("%s: figure execution rejected by machine %s", a.Figure, a.Machine.Name())
			}
			vs := core.CheckNonInterference(a.Graph)
			if len(vs) == 0 {
				t.Fatalf("%s: no non-interference violations detected", a.Figure)
			}
			ts := core.Classify(a.Graph, vs, core.ClassifyOptions{})
			for _, want := range a.Expect {
				found := false
				for _, tr := range ts {
					ev := a.Graph.Events[tr.Event]
					if ev.Label == want.Label && tr.Class == want.Class && tr.Transient == want.Transient {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: missing expected %v transmitter %q (transient=%v)\ngot: %v",
						a.Figure, want.Class, want.Label, want.Transient, ts)
				}
			}
		})
	}
}

// TestSpectreV4RequiresStoreBypass reproduces the §4.2 observation: the
// naive lifting sc_per_loc_x forbids the Spectre v4 execution (it has an
// frx + tfo_loc cycle), so an Intel LCM must permit store bypass.
func TestSpectreV4RequiresStoreBypass(t *testing.T) {
	a := attacks.SpectreV4()
	if core.Baseline().Confidential(a.Graph) {
		t.Error("baseline (sc_per_loc_x) machine accepts Spectre v4; it must not")
	}
	if !core.IntelX86().Confidential(a.Graph) {
		t.Error("Intel x86 machine rejects Spectre v4; it must permit it")
	}
	// The frx + tfo_loc cycle is really there.
	frx := a.Graph.FRX()
	cycle := frx.Union(a.Graph.TFOLoc()).FindCycle()
	if cycle == nil {
		t.Error("expected an frx+tfo_loc cycle in the Spectre v4 execution")
	}
}

// TestSpectrePSFRequiresAliasPrediction: the PSF execution's rfx edge
// crosses architectural locations, so machines without alias prediction
// reject it.
func TestSpectrePSFRequiresAliasPrediction(t *testing.T) {
	a := attacks.SpectrePSF()
	if core.IntelX86().Confidential(a.Graph) {
		t.Error("machine without alias prediction accepts the PSF execution")
	}
	if !a.Machine.Confidential(a.Graph) {
		t.Error("PSF machine rejects its own execution")
	}
}

// TestSilentStoreRequiresOption: the silent-store execution has a write
// with a read-only xstate access; machines without the optimization
// reject it.
func TestSilentStoreRequiresOption(t *testing.T) {
	a := attacks.SilentStores()
	if core.Baseline().Confidential(a.Graph) {
		t.Error("baseline machine accepts a silent store")
	}
	if !a.Machine.Confidential(a.Graph) {
		t.Error("silent-store machine rejects its own execution")
	}
}

// TestFindLeakageSpectreV1EndToEnd drives the full pipeline from the
// program text of Fig. 1a: expansion (speculative semantics) → consistent
// architectural executions (TSO) → interference-free microarchitectural
// witness → NI check → taxonomy. The paper's result: 6S is a true UDT with
// a transient access instruction, while committed 6 is restricted by the
// bounds check (demoted under RequireTransientAccess).
func TestFindLeakageSpectreV1EndToEnd(t *testing.T) {
	structures := prog.Expand(prog.SpectreV1(), prog.ExpandOptions{
		Depth: 4, XStateForLocation: true, Observer: true,
	})
	findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{
		Classify: core.ClassifyOptions{GEPOnly: true, RequireTransientAccess: true},
	})
	if len(findings) == 0 {
		t.Fatal("no leakage found in Spectre v1")
	}
	sawTransientUDT := false
	sawCommittedDemoted := false
	for _, f := range findings {
		for _, tr := range f.Transmitters {
			ev := f.Exec.Events[tr.Event]
			if tr.Class == core.UDT && ev.Transient && tr.TransientAccess {
				sawTransientUDT = true
			}
			if tr.Class == core.DT && !ev.Transient && ev.Loc == "B+r4" {
				sawCommittedDemoted = true
			}
		}
	}
	if !sawTransientUDT {
		t.Error("missing the transient universal data transmitter (6S)")
	}
	if !sawCommittedDemoted {
		t.Error("missing the demoted committed transmitter (6)")
	}
}

// TestFindLeakageVariantAccessCommits reproduces Fig. 3: the transient
// transmitter's access instruction commits, so under RequireTransientAccess
// even the transient transmitter is a DT, not a UDT — the STT-scope
// distinction §4.2 discusses.
func TestFindLeakageVariantAccessCommits(t *testing.T) {
	structures := prog.Expand(prog.SpectreV1Variant(), prog.ExpandOptions{
		Depth: 4, XStateForLocation: true, Observer: true,
	})
	findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{
		Classify: core.ClassifyOptions{GEPOnly: true, RequireTransientAccess: true},
	})
	for _, f := range findings {
		for _, tr := range f.Transmitters {
			if tr.Class == core.UDT {
				t.Errorf("variant should have no UDT under RequireTransientAccess, got %v", tr)
			}
		}
	}
	// Without the restriction, the universal pattern is visible.
	findings = core.FindLeakageInProgramGraphs(structures, core.FindOptions{
		Classify: core.ClassifyOptions{GEPOnly: true},
	})
	sawUDT := false
	for _, f := range findings {
		for _, tr := range f.Transmitters {
			if tr.Class == core.UDT {
				sawUDT = true
			}
		}
	}
	if !sawUDT {
		t.Error("variant UDT not found even without transient-access restriction")
	}
}

// TestNoLeakageInStraightLineNoObserver: a program with no observer, no
// speculation, and a single thread produces no violations under the
// interference-free witness.
func TestNoLeakageInStraightLine(t *testing.T) {
	p := &prog.Program{
		Name: "straight",
		Threads: [][]prog.Node{{
			prog.Store("a", ""),
			prog.Load("r1", "a", "", false),
			prog.Store("b", ""),
		}},
	}
	structures := prog.Expand(p, prog.ExpandOptions{XStateForLocation: true})
	findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{})
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %d", len(findings))
	}
}

// TestFenceBlocksSpeculation is a repair sanity check at the semantic
// level: with speculation depth 0 (e.g. after an lfence at the branch) the
// Spectre v1 program has no transient transmitters.
func TestDepthZeroHasNoTransientTransmitters(t *testing.T) {
	structures := prog.Expand(prog.SpectreV1(), prog.ExpandOptions{
		Depth: 0, XStateForLocation: true, Observer: true,
	})
	findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{})
	for _, f := range findings {
		for _, tr := range f.Transmitters {
			if f.Exec.Events[tr.Event].Transient {
				t.Errorf("transient transmitter without speculation: %v", tr)
			}
		}
	}
}

// TestEnumerateMicroarchCoversInterferenceFree: full microarchitectural
// enumeration includes the interference-free witness.
func TestEnumerateMicroarchCoversInterferenceFree(t *testing.T) {
	structures := prog.Expand(prog.SpectreV1(), prog.ExpandOptions{XStateForLocation: true})
	arch := mcm.ConsistentExecutions(structures[0], mcm.TSO{}, mcm.EnumerateOptions{})
	if len(arch) == 0 {
		t.Fatal("no consistent architectural executions")
	}
	g := arch[0]
	implied := core.InterferenceFree(g)
	found := false
	core.EnumerateMicroarch(g, core.Permissive(), core.EnumerateOptions{}, func(w *event.Graph) bool {
		if w.RFX.Equal(implied.RFX) && w.COX.Equal(implied.COX) {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("interference-free witness not in the enumeration")
	}
}

// TestSummarize aggregates by (label, class) across findings.
func TestSummarize(t *testing.T) {
	structures := prog.Expand(prog.SpectreV1(), prog.ExpandOptions{
		Depth: 4, XStateForLocation: true, Observer: true,
	})
	findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{})
	sum := core.Summarize(findings)
	total := 0
	for _, n := range sum {
		total += n
	}
	if total == 0 {
		t.Fatal("empty summary for leaky program")
	}
	if len(core.TransmitterEvents(findings)) == 0 {
		t.Fatal("no transmitter labels")
	}
}

// TestFindLeakageSpectreV4EndToEnd drives the generic pipeline on the
// Fig. 4a program text: address-speculation expansion (§3.3) + stale
// forwarding in the witness enumeration produce the bypass execution, and
// the rf-NI predicate flags the transient universal data transmitter with
// a transient access instruction.
func TestFindLeakageSpectreV4EndToEnd(t *testing.T) {
	structures := prog.Expand(prog.SpectreV4(), prog.ExpandOptions{
		Depth: 6, XStateForLocation: true, Observer: true, AddressSpeculation: true,
	})
	findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{})
	if len(findings) == 0 {
		t.Fatal("no leakage in Spectre v4")
	}
	sawTransientUDT := false
	sawBypassViolation := false
	for _, f := range findings {
		for _, tr := range f.Transmitters {
			if tr.Class == core.UDT && f.Exec.Events[tr.Event].Transient && tr.TransientAccess {
				sawTransientUDT = true
			}
		}
		for _, v := range f.Violations {
			// The bypass signature: an rf edge into a transient read of y
			// lacking its rfx counterpart.
			if v.Kind == core.RFNI && f.Exec.Events[v.Receiver].Transient &&
				f.Exec.Events[v.Receiver].Loc == "y" {
				sawBypassViolation = true
			}
		}
	}
	if !sawTransientUDT {
		t.Error("missing the transient UDT (6S of Fig. 4a)")
	}
	if !sawBypassViolation {
		t.Error("missing the stale-read rf-NI violation (4S of Fig. 4a)")
	}
}

// TestEnumerateFindsSilentStoreLeak exercises the full microarchitectural
// enumeration path of FindLeakage: on a machine with silent stores, a
// program writing the same location twice admits executions where the
// second store is elided (XR), and the co-NI predicate flags the
// inconsistency — Fig. 5a derived from program text rather than the
// hand-built figure graph.
func TestEnumerateFindsSilentStoreLeak(t *testing.T) {
	p := &prog.Program{
		Name: "silent",
		Threads: [][]prog.Node{{
			prog.Store("x", ""),
			prog.Store("x", ""),
		}},
	}
	structures := prog.Expand(p, prog.ExpandOptions{XStateForLocation: true, Observer: true})

	silent := core.Baseline()
	silent.AllowSilentStores = true
	silent.MachineName = "baseline+ss"

	findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{
		Machine:   &silent,
		Enumerate: true,
		Modes:     true,
	})
	sawCONI := false
	for _, f := range findings {
		for _, v := range f.Violations {
			if v.Kind == core.CONI {
				sawCONI = true
			}
		}
	}
	if !sawCONI {
		t.Error("silent-store co-NI violation not found by enumeration")
	}

	// On the baseline machine (no silent stores), enumeration yields no
	// co-NI violations for this program.
	base := core.Baseline()
	findings = core.FindLeakageInProgramGraphs(structures, core.FindOptions{
		Machine:   &base,
		Enumerate: true,
		Modes:     true,
	})
	for _, f := range findings {
		for _, v := range f.Violations {
			if v.Kind == core.CONI {
				t.Errorf("co-NI violation without silent stores: %v", v)
			}
		}
	}
}

// TestMultiCoreObserverLeakage exercises the multi-core side of the
// vocabulary: in the store-buffering program, both threads' memory events
// populate xstate, and the observer's violations name transmitters from
// both threads — cross-core leakage shows up in the same framework.
func TestMultiCoreObserverLeakage(t *testing.T) {
	structures := prog.Expand(prog.SB(), prog.ExpandOptions{
		XStateForLocation: true, Observer: true,
	})
	findings := core.FindLeakageInProgramGraphs(structures, core.FindOptions{})
	if len(findings) == 0 {
		t.Fatal("no observer findings for SB")
	}
	threads := map[int]bool{}
	for _, f := range findings {
		for _, tr := range f.Transmitters {
			threads[f.Exec.Events[tr.Event].Thread] = true
		}
	}
	if !threads[0] || !threads[1] {
		t.Errorf("transmitters from threads %v, want both 0 and 1", threads)
	}
}
