package core

import (
	"fmt"

	"lcm/internal/event"
	"lcm/internal/relation"
)

// NIKind identifies which non-interference predicate of §4.1 a violation
// breaks.
type NIKind int

// The three non-interference predicates.
const (
	RFNI NIKind = iota // rf ⟹ rfx
	CONI               // immediate co ⟹ cox and rfx
	FRNI               // fr (with rfx-writing read) ⟹ frx via rfx(r, w)
)

func (k NIKind) String() string {
	switch k {
	case RFNI:
		return "rf-non-interference"
	case CONI:
		return "co-non-interference"
	case FRNI:
		return "fr-non-interference"
	default:
		return fmt.Sprintf("NIKind(%d)", int(k))
	}
}

// Violation records one breach of a non-interference predicate: a culprit
// architectural edge whose implied microarchitectural edge is missing, the
// receiver that observes the deviation, and the transmitter events that
// microarchitecturally source the receiver instead (§3.2.3).
type Violation struct {
	Kind NIKind
	// Com is the culprit architectural edge (From ⟶ To). For observer
	// violations it is the implicit ⊤ ⟶ ⊥ edge.
	Com relation.Pair
	// Expected is the comx edge implied by Com under non-interference.
	Expected relation.Pair
	// Receiver is the event observing the deviation.
	Receiver int
	// Transmitters are the events whose rfx edges source the receiver in
	// place of the expected source (⊤ excluded — initialization state
	// carries no program information).
	Transmitters []int
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: com %d→%d expected comx %d→%d; receiver %d, transmitters %v",
		v.Kind, v.Com.From, v.Com.To, v.Expected.From, v.Expected.To, v.Receiver, v.Transmitters)
}

// CheckNonInterference evaluates the three non-interference predicates of
// §4.1 against the candidate execution g, which must carry both an
// architectural witness (rf, co) and a microarchitectural witness (rfx,
// cox). It returns all violations; an empty result means the execution is
// microarchitecturally non-interfering (leakage-free).
func CheckNonInterference(g *event.Graph) []Violation {
	var out []Violation
	top := g.Tops()[0].ID
	prov := provenance(g)

	rfxSources := func(r int, excluding ...int) []int {
		skip := relation.NewSet(excluding...)
		skip.Add(top)
		var srcs []int
		for _, p := range g.RFX.Pairs() {
			if p.To == r && !skip.Has(p.From) {
				srcs = append(srcs, p.From)
			}
		}
		return srcs
	}

	// sameData reports whether an actual rfx source carries the same data
	// lineage as the expected writer: a read-miss line fill holds exactly
	// the data of the write the read observed architecturally (this is why
	// the chain 2 —rfx→ 4S in Fig. 4a is consistent: 2's line holds ⊤'s
	// stale y). Address-level deviation at ⊥ is handled separately.
	sameData := func(actual, expected int) bool {
		// Only a read's line fill is forgivable: it leaves the line warm
		// with exactly the expected data. A ⊤ source means a miss where a
		// hit was implied (or vice versa) — observable, hence a violation.
		return g.Events[actual].IsRead() && prov[actual] == prov[expected]
	}

	// rf-non-interference: w rf→ r implies w rfx→ r, up to data
	// provenance, in the absence of interference (§3.2.3, §4.1).
	for _, p := range g.RF.Pairs() {
		r := g.Events[p.To]
		if !r.AccessesX() && r.Kind != event.KBottom {
			continue
		}
		if g.RFX.Has(p.From, p.To) {
			continue
		}
		ok := false
		var culprits []int
		for _, q := range g.RFX.Pairs() {
			if q.To != p.To || !g.SameX(q.From, p.To) {
				continue
			}
			if sameData(q.From, p.From) {
				ok = true
			} else if q.From != top {
				culprits = append(culprits, q.From)
			}
		}
		if ok && len(culprits) == 0 {
			continue
		}
		if len(culprits) == 0 {
			culprits = rfxSources(p.To, p.From)
		}
		out = append(out, Violation{
			Kind:         RFNI,
			Com:          p,
			Expected:     p,
			Receiver:     p.To,
			Transmitters: culprits,
		})
	}

	// Observer non-interference: ⊥ shares no memory with the program, so
	// architecturally it reads only from ⊤ (its com involvement is the
	// implicit ⊤ rf→ ⊥, §3.2). Any program event sourcing ⊥ via rfx is a
	// deviation: the program has interfered with the observer's
	// microarchitectural observations.
	for _, b := range g.Bottoms() {
		srcs := rfxSources(b.ID)
		if len(srcs) == 0 {
			continue
		}
		for _, s := range srcs {
			out = append(out, Violation{
				Kind:         RFNI,
				Com:          relation.Pair{From: top, To: b.ID},
				Expected:     relation.Pair{From: top, To: b.ID},
				Receiver:     b.ID,
				Transmitters: []int{s},
			})
		}
	}

	// co-non-interference: if w0 immediately precedes w1 in co, then
	// cox(w0, w1) — and w1's cache-line read is sourced by w0's write:
	// rfx(w0, w1) (§4.1).
	for _, p := range immediateCO(g) {
		w0, w1 := p.From, p.To
		if !g.Events[w1].AccessesX() {
			continue
		}
		if !g.COX.Has(w0, w1) && g.Events[w0].Kind != event.KTop {
			// co/cox inconsistency — the silent-store channel (Fig. 5a):
			// w1 behaved microarchitecturally as a read. Receivers are the
			// downstream rfx readers sourced by w0 (or earlier) that should
			// have observed w1.
			for _, q := range g.RFX.Pairs() {
				if q.From == w0 && q.To != w1 && (g.Events[q.To].Kind == event.KBottom || g.TFO.Has(w1, q.To)) {
					out = append(out, Violation{
						Kind:         CONI,
						Com:          p,
						Expected:     p,
						Receiver:     q.To,
						Transmitters: []int{w1},
					})
				}
			}
			continue
		}
		if g.Events[w1].XAcc == event.XRW && !g.RFX.Has(w0, w1) {
			// w1's read-modify-write was not sourced by w0 — unless the
			// actual source carries w0's data lineage (a read fill), this
			// is an interfering access between the two cache accesses.
			var culprits []int
			for _, q := range g.RFX.Pairs() {
				if q.To == w1 && q.From != w0 && !sameData(q.From, w0) && q.From != top {
					culprits = append(culprits, q.From)
				}
			}
			if len(culprits) > 0 || !anyRFXProvenance(g, prov, w1, w0) {
				out = append(out, Violation{
					Kind:         CONI,
					Com:          p,
					Expected:     p,
					Receiver:     w1,
					Transmitters: culprits,
				})
			}
		}
	}

	// fr-non-interference: for r fr→ w where w immediately co-follows r's
	// rf source w′ and r writes xstate (a miss), r should source w via
	// rfx — a cache hit for w (§4.1).
	fr := g.FR()
	imm := immediateCOSet(g)
	for _, p := range fr.Pairs() {
		r, w := p.From, p.To
		re := g.Events[r]
		if !re.AccessesX() || re.XAcc != event.XRW {
			continue
		}
		if !g.Events[w].AccessesX() {
			continue
		}
		// Find r's rf source w′ and require w to be its immediate co
		// successor.
		srcOK := false
		for _, q := range g.RF.Pairs() {
			if q.To == r && imm[[2]int{q.From, w}] {
				srcOK = true
			}
		}
		if !srcOK {
			continue
		}
		if g.RFX.Has(r, w) {
			continue
		}
		if anyRFXProvenance(g, prov, w, r) {
			continue // sourced by a fill carrying r's data lineage
		}
		out = append(out, Violation{
			Kind:         FRNI,
			Com:          p,
			Expected:     relation.Pair{From: r, To: w},
			Receiver:     w,
			Transmitters: rfxSources(w, r),
		})
	}
	return out
}

// provenance computes each event's data lineage: writes and ⊤ are their
// own provenance; a read's provenance is its architectural rf source's
// provenance (⊤ when it has none recorded). A cache line filled by a read
// holds exactly its provenance's data.
func provenance(g *event.Graph) map[int]int {
	top := g.Tops()[0].ID
	rfSrc := map[int]int{}
	for _, p := range g.RF.Pairs() {
		rfSrc[p.To] = p.From
	}
	prov := map[int]int{}
	var resolve func(id int, depth int) int
	resolve = func(id, depth int) int {
		if v, ok := prov[id]; ok {
			return v
		}
		e := g.Events[id]
		v := id
		if e.IsRead() && depth < len(g.Events)+1 {
			if src, ok := rfSrc[id]; ok {
				v = resolve(src, depth+1)
			} else {
				v = top
			}
		}
		prov[id] = v
		return v
	}
	for _, e := range g.Events {
		resolve(e.ID, 0)
	}
	return prov
}

// anyRFXProvenance reports whether receiver has some rfx source that is a
// read fill carrying expected's data lineage (the forgivable hit).
func anyRFXProvenance(g *event.Graph, prov map[int]int, receiver, expected int) bool {
	for _, q := range g.RFX.Pairs() {
		if q.To == receiver && (q.From == expected ||
			(g.Events[q.From].IsRead() && prov[q.From] == prov[expected])) {
			return true
		}
	}
	return false
}

// immediateCO returns the co pairs with no intervening write.
func immediateCO(g *event.Graph) []relation.Pair {
	var out []relation.Pair
	for _, p := range g.CO.Pairs() {
		direct := true
		for _, q := range g.CO.Pairs() {
			if q.From == p.From && q.To != p.To && g.CO.Has(q.To, p.To) {
				direct = false
				break
			}
		}
		if direct {
			out = append(out, p)
		}
	}
	return out
}

func immediateCOSet(g *event.Graph) map[[2]int]bool {
	m := make(map[[2]int]bool)
	for _, p := range immediateCO(g) {
		m[[2]int{p.From, p.To}] = true
	}
	return m
}
