package core

import (
	"fmt"
	"sort"

	"lcm/internal/event"
	"lcm/internal/relation"
)

// Class ranks transmitters by severity per Table 1. The partial order is
// AT < CT < {DT, UCT} < UDT; Rank linearizes it with DT and UCT sharing a
// rank.
type Class int

// Transmitter classes of Table 1.
const (
	AT  Class = iota // address transmitter: transmit —rfx→ receiver
	CT               // control transmitter: access —ctrl→ transmit —rfx→ receiver
	DT               // data transmitter: access —addr→ transmit —rfx→ receiver
	UCT              // universal control: index —addr→ access —ctrl→ transmit
	UDT              // universal data: index —addr→ access —addr→ transmit
)

func (c Class) String() string {
	switch c {
	case AT:
		return "AT"
	case CT:
		return "CT"
	case DT:
		return "DT"
	case UCT:
		return "UCT"
	case UDT:
		return "UDT"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Rank returns the severity rank: AT=0 < CT=1 < DT=UCT=2 < UDT=3.
func (c Class) Rank() int {
	switch c {
	case AT:
		return 0
	case CT:
		return 1
	case DT, UCT:
		return 2
	case UDT:
		return 3
	}
	return -1
}

// Transmitter is a classified leak source: an instruction that conveys
// information to a receiver through microarchitectural state.
type Transmitter struct {
	Event    int   // the transmitting instruction
	Class    Class // most severe class this transmitter attains
	Access   int   // access instruction (DT/CT and above); -1 otherwise
	Index    int   // index instruction (UDT/UCT); -1 otherwise
	Receiver int
	// Transient marks a transmitter that never commits; TransientAccess
	// marks a universal pattern whose access instruction is transient —
	// the distinction §4.2 draws between Fig. 2b and Fig. 3: a committed
	// access instruction restricts leakage scope.
	Transient       bool
	TransientAccess bool
}

func (t Transmitter) String() string {
	s := fmt.Sprintf("%s transmitter %d → receiver %d", t.Class, t.Event, t.Receiver)
	if t.Access >= 0 {
		s += fmt.Sprintf(" (access %d", t.Access)
		if t.Index >= 0 {
			s += fmt.Sprintf(", index %d", t.Index)
		}
		s += ")"
	}
	if t.Transient {
		s += " [transient]"
	}
	return s
}

// ClassifyOptions controls transmitter classification.
type ClassifyOptions struct {
	// GEPOnly requires the index → access dependency of universal patterns
	// to be an addr_gep edge, Clou's filter for benign Spectre v1 leaks
	// (§5.2–5.3): a read whose value is used as a base pointer (plain
	// addr) rather than an array index is assumed not attacker-steerable.
	GEPOnly bool
	// RequireTransientAccess demotes universal patterns whose access
	// instruction commits to DT/CT, as Clou does when analyzing large
	// codebases (§6.2.1).
	RequireTransientAccess bool
}

// Classify assigns each violation's transmitters their most severe class
// per Table 1. Chains follow (data.rf)*.addr — a read's value may be
// stored and reloaded any number of times before its use in an address
// (§5.3) — and (data.rf)*.ctrl for control patterns.
func Classify(g *event.Graph, violations []Violation, opts ClassifyOptions) []Transmitter {
	star := dataRFStar(g)
	chainAddr := star.Compose(g.Addr)
	chainAddrGEP := star.Compose(g.AddrGEP)
	chainCtrl := star.Compose(g.Ctrl)

	indexChain := chainAddrGEP
	if !opts.GEPOnly {
		indexChain = chainAddr
	}

	var out []Transmitter
	seen := make(map[[2]int]bool)
	for _, v := range violations {
		for _, tr := range v.Transmitters {
			key := [2]int{tr, v.Receiver}
			if seen[key] {
				continue
			}
			seen[key] = true
			t := classifyOne(g, tr, v.Receiver, chainAddr, chainCtrl, indexChain, opts)
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class.Rank() != out[j].Class.Rank() {
			return out[i].Class.Rank() > out[j].Class.Rank()
		}
		if out[i].Event != out[j].Event {
			return out[i].Event < out[j].Event
		}
		return out[i].Receiver < out[j].Receiver
	})
	return out
}

func classifyOne(g *event.Graph, tr, receiver int, chainAddr, chainCtrl, indexChain *relation.Relation, opts ClassifyOptions) Transmitter {
	t := Transmitter{
		Event:     tr,
		Class:     AT,
		Access:    -1,
		Index:     -1,
		Receiver:  receiver,
		Transient: g.Events[tr].Transient,
	}
	consider := func(c Class, access, index int) {
		ta := access >= 0 && g.Events[access].Transient
		if (c == UDT || c == UCT) && opts.RequireTransientAccess && !ta {
			// Demote: a committed access instruction limits leakage scope.
			if c == UDT {
				c = DT
			} else {
				c = CT
			}
			index = -1
		}
		if c.Rank() > t.Class.Rank() || (c.Rank() == t.Class.Rank() && c == UDT) {
			t.Class = c
			t.Access = access
			t.Index = index
			t.TransientAccess = ta
		}
	}
	// Data patterns: access —(data.rf)*.addr→ transmit.
	for _, p := range chainAddr.Pairs() {
		if p.To != tr {
			continue
		}
		access := p.From
		consider(DT, access, -1)
		// Universal data: index —(data.rf)*.addr(_gep)→ access.
		for _, q := range indexChain.Pairs() {
			if q.To == access && q.From != access {
				consider(UDT, access, q.From)
			}
		}
	}
	// Control patterns: access —(data.rf)*.ctrl→ transmit.
	for _, p := range chainCtrl.Pairs() {
		if p.To != tr {
			continue
		}
		access := p.From
		consider(CT, access, -1)
		for _, q := range indexChain.Pairs() {
			if q.To == access && q.From != access {
				consider(UCT, access, q.From)
			}
		}
	}
	return t
}

// dataRFStar computes the reflexive-transitive closure of data.rf — the
// store-and-reload value chains of §5.3.
func dataRFStar(g *event.Graph) *relation.Relation {
	dr := g.Data.Compose(g.RF)
	universe := relation.NewSet()
	for _, e := range g.Events {
		universe.Add(e.ID)
	}
	return dr.TransitiveClosure().ReflexiveClosure(universe)
}
