package obsv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanHierarchy(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("run")
	a := root.Start("frontend")
	time.Sleep(time.Millisecond)
	a.End()
	b := root.Start("solve")
	b.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "run" {
		t.Fatalf("roots = %v", roots)
	}
	kids := roots[0].Children()
	if len(kids) != 2 || kids[0].Name() != "frontend" || kids[1].Name() != "solve" {
		t.Fatalf("children = %v", kids)
	}
	if root.Wall() <= 0 || a.Wall() <= 0 {
		t.Fatalf("wall durations not recorded: root=%v a=%v", root.Wall(), a.Wall())
	}
	if root.Wall() < a.Wall() {
		t.Fatalf("root wall %v < child wall %v", root.Wall(), a.Wall())
	}
	if self := root.Self(); self > root.Wall() {
		t.Fatalf("self %v exceeds wall %v", self, root.Wall())
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("run")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.Start(fmt.Sprintf("job%d", i))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 32 {
		t.Fatalf("children = %d, want 32", got)
	}
}

// TestDisabledZeroAlloc pins the disabled-tracer contract: starting and
// ending spans, and bumping metrics, through nil handles allocates
// nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.Start("run")
		c := s.Start("stage")
		c.End()
		s.End()
		reg.Counter("x").Add(1)
		reg.Histogram("y").Observe(time.Second)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per op, want 0", allocs)
	}
}

func TestRegistryCountersConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				reg.Counter("hits").Add(1)
				reg.Gauge("level").Set(int64(j))
				reg.Histogram("lat").Observe(time.Duration(j))
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["hits"] != 8000 {
		t.Fatalf("snapshot hits = %d", snap.Counters["hits"])
	}
	if snap.Histograms["lat"].Count != 8000 {
		t.Fatalf("snapshot lat count = %d", snap.Histograms["lat"].Count)
	}
}

// TestSnapshotJSONStable pins that serialized snapshots are key-sorted
// regardless of insertion order.
func TestSnapshotJSONStable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.last").Add(3)
	reg.Counter("a.first").Add(1)
	reg.Counter("m.mid").Add(2)
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !(strings.Index(s, "a.first") < strings.Index(s, "m.mid") &&
		strings.Index(s, "m.mid") < strings.Index(s, "z.last")) {
		t.Fatalf("counter keys not sorted in %s", s)
	}
	if names := reg.CounterNames(); len(names) != 3 || names[0] != "a.first" {
		t.Fatalf("CounterNames = %v", names)
	}
}

func TestReportNormalize(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("run")
	root.Start("b-child").End()
	root.Start("a-child").End()
	root.End()

	reg := NewRegistry()
	reg.Histogram("detect.func_ns").Observe(5 * time.Millisecond)

	r := Report{
		Tool: "clou", Version: Version, Workers: 4,
		WallNs: 123456,
		Functions: []FuncReport{{
			Name: "f", Verdict: "leak", DurationNs: 99,
			FrontendNs: 1, EncodeNs: 2, SolveNs: 3,
		}},
		Metrics: reg.Snapshot(),
		Spans:   SpanTree(tr),
	}
	r.Normalize()
	if r.WallNs != 0 || r.Functions[0].DurationNs != 0 || r.Functions[0].SolveNs != 0 {
		t.Fatalf("timing fields survived Normalize: %+v", r)
	}
	h := r.Metrics.Histograms["detect.func_ns"]
	if h.SumNs != 0 || h.MinNs != 0 || h.MaxNs != 0 {
		t.Fatalf("histogram ns fields survived: %+v", h)
	}
	if h.Count != 1 {
		t.Fatalf("histogram count zeroed: %+v", h)
	}
	kids := r.Spans[0].Children
	if kids[0].Name != "a-child" || kids[1].Name != "b-child" {
		t.Fatalf("span children not sorted by name: %v", kids)
	}
	if kids[0].WallNs != 0 {
		t.Fatalf("span wall survived Normalize")
	}

	// Normalized reports of the same shape serialize identically.
	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("normalized report not byte-stable")
	}
}

func TestServeDebug(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("probe.hits").Add(7)
	addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/vars" && !strings.Contains(string(body), "probe.hits") {
			t.Fatalf("expvar output missing registry snapshot: %s", body)
		}
	}
}
