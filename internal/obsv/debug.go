package obsv

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"sync"
)

// publishOnce guards expvar registration: expvar.Publish panics on
// duplicate names, and tests may start several debug servers.
var publishOnce sync.Once

// ServeDebug starts an HTTP server on addr exposing the stdlib debug
// surface — expvar at /debug/vars and pprof at /debug/pprof/ — plus the
// given registry's snapshot under the "obsv" expvar. It returns the
// bound address (useful with ":0") without blocking; the server runs
// until the process exits.
func ServeDebug(addr string, reg *Registry) (string, error) {
	publishOnce.Do(func() {
		expvar.Publish("obsv", expvar.Func(func() any {
			return reg.Snapshot()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, nil)
	return ln.Addr().String(), nil
}
