package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a typed metrics registry. Metric handles are interned by
// name, so hot paths can either hold a handle or look it up per event;
// all mutation is atomic and goroutine-safe. A nil *Registry is the
// disabled registry: every lookup returns nil, and nil handles accept
// every method as a no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates duration observations: count, sum, min, max.
// Latency distributions in this pipeline are consumed as aggregates, so
// no bucketing is kept.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      time.Duration
	min, max time.Duration
}

// Observe records one duration. Nil-safe.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// Counter interns the named counter (nil on a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge interns the named gauge (nil on a nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns the named histogram (nil on a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistStat is one histogram's aggregate in a snapshot. The ns-valued
// fields are volatile (timing) and zeroed by Report.Normalize; Count is
// deterministic for a deterministic workload.
type HistStat struct {
	Count int64 `json:"count"`
	SumNs int64 `json:"sum_ns"`
	MinNs int64 `json:"min_ns"`
	MaxNs int64 `json:"max_ns"`
}

// SnapshotData is a point-in-time copy of a registry. Map keys are
// emitted sorted by encoding/json, so its serialized form is stable.
type SnapshotData struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. A nil registry yields
// the empty snapshot.
func (r *Registry) Snapshot() SnapshotData {
	var s SnapshotData
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistStat, len(r.hists))
		for name, h := range r.hists {
			h.mu.Lock()
			s.Histograms[name] = HistStat{
				Count: h.count,
				SumNs: h.sum.Nanoseconds(),
				MinNs: h.min.Nanoseconds(),
				MaxNs: h.max.Nanoseconds(),
			}
			h.mu.Unlock()
		}
	}
	return s
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
