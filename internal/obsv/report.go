package obsv

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strings"
)

// Version identifies the report schema / toolchain generation. Bump it
// when the JSON shape changes; the golden tests pin the serialized form.
const Version = "0.9.0"

// Report is the machine-readable run manifest shared by clou -report,
// lcmlint -report, and cmd/benchjson. All timing-valued fields end in
// "_ns" (or live in HistStat's ns fields) so Normalize can zero exactly
// the volatile parts, leaving a byte-stable document for goldens and
// cross--j comparison.
type Report struct {
	Tool    string `json:"tool"`
	Version string `json:"version"`
	Engine  string `json:"engine,omitempty"`
	Workers int    `json:"workers"`
	WallNs  int64  `json:"wall_ns"`

	Functions []FuncReport `json:"functions"`
	Metrics   SnapshotData `json:"metrics"`
	Spans     []SpanReport `json:"spans,omitempty"`
}

// FuncReport is one analyzed function (or lint unit) in a Report.
type FuncReport struct {
	Name    string `json:"name"`
	Verdict string `json:"verdict"` // "leak", "clean", "timeout", "unknown", or "error"
	// Rung is the degradation-ladder rung the verdict was decided at
	// ("reduced", "triage", "unknown"); empty means full precision.
	// Failure names the failure-taxonomy kind ("deadline", "budget",
	// "panic", "canceled") that forced the final downgrade, when any.
	Rung    string `json:"rung,omitempty"`
	Failure string `json:"failure,omitempty"`

	Findings []FindingReport `json:"findings,omitempty"`
	// Counts tallies findings by class name (one per static transmitter).
	Counts map[string]int `json:"counts,omitempty"`
	// Lint carries constant-time lint findings (lcmlint units only).
	Lint []string `json:"lint,omitempty"`

	Nodes      int `json:"nodes,omitempty"`
	Queries    int `json:"queries,omitempty"`
	Candidates int `json:"candidates,omitempty"`
	Pruned     int `json:"pruned,omitempty"`
	// Pre-solver accounting: candidates discharged statically, solver
	// queries skipped, audit replays run, and audit disagreements found.
	Discharged    int  `json:"discharged,omitempty"`
	Skipped       int  `json:"skipped_queries,omitempty"`
	Audited       int  `json:"audited,omitempty"`
	Disagreements int  `json:"disagreements,omitempty"`
	MemoHits      int  `json:"memo_hits,omitempty"`
	CacheHit      bool `json:"cache_hit,omitempty"`
	TimedOut      bool `json:"timed_out,omitempty"`
	// Incremental-solving accounting: summed assumption-prefix reuse
	// depth, root-level unit promotions, Tseitin gates requested, and
	// gates shared through the hash-cons table. Deterministic for a fixed
	// query sequence, hence pinned by the goldens like the other counters.
	PrefixLits    int64 `json:"prefix_lits,omitempty"`
	RootUnits     int64 `json:"root_units,omitempty"`
	TseitinGates  int64 `json:"tseitin_gates,omitempty"`
	TseitinShared int64 `json:"tseitin_shared,omitempty"`
	// Queries answered Sat by extending the previous model over newly
	// encoded gates instead of searching (the smt model cache).
	ModelHits int64 `json:"model_hits,omitempty"`
	// Solver self-check accounting (-solver check): verdicts replayed on
	// a fresh reference solver and disagreements observed (must be 0).
	SolverChecks int64 `json:"solver_checks,omitempty"`
	Mismatches   int64 `json:"solver_mismatches,omitempty"`

	DurationNs int64 `json:"duration_ns"`
	FrontendNs int64 `json:"frontend_ns,omitempty"`
	EncodeNs   int64 `json:"encode_ns,omitempty"`
	SolveNs    int64 `json:"solve_ns,omitempty"`
	// Frontend sub-stage timings (the perf-attribution breakdown of the
	// frontend_ns total): points-to analysis, value-flow graph build, and
	// the pre-solver's shared fact base. Zero on cache hits.
	AliasNs         int64 `json:"alias_ns,omitempty"`
	FlowNs          int64 `json:"flow_ns,omitempty"`
	PresolveFactsNs int64 `json:"presolve_facts_ns,omitempty"`

	Error string `json:"error,omitempty"`
}

// FindingReport is one detected transmitter in serialized form.
type FindingReport struct {
	Class             string `json:"class"`
	Transmit          int    `json:"transmit"`
	Access            int    `json:"access"`
	Index             int    `json:"index"`
	Branch            int    `json:"branch"`
	Store             int    `json:"store"`
	Load              int    `json:"load"`
	Line              int    `json:"line"`
	TransientTransmit bool   `json:"transient_transmit,omitempty"`
	TransientAccess   bool   `json:"transient_access,omitempty"`
}

// SpanReport is the serialized form of one span subtree.
type SpanReport struct {
	Name     string       `json:"name"`
	WallNs   int64        `json:"wall_ns"`
	SelfNs   int64        `json:"self_ns"`
	Children []SpanReport `json:"children,omitempty"`
}

// SpanTree serializes a tracer's root spans.
func SpanTree(t *Tracer) []SpanReport {
	roots := t.Roots()
	if len(roots) == 0 {
		return nil
	}
	out := make([]SpanReport, len(roots))
	for i, s := range roots {
		out[i] = spanReport(s)
	}
	return out
}

func spanReport(s *Span) SpanReport {
	r := SpanReport{Name: s.Name(), WallNs: s.Wall().Nanoseconds(), SelfNs: s.Self().Nanoseconds()}
	for _, c := range s.Children() {
		r.Children = append(r.Children, spanReport(c))
	}
	return r
}

// Normalize strips the volatile parts of a report in place — every
// ns-valued duration plus the worker count — and sorts span children by
// name, so two runs of the same deterministic workload (at any worker
// count) serialize to identical bytes. Counts, verdicts, findings, and
// counter values are deliberately untouched: those must already be
// deterministic, and the golden tests exist to prove it.
func (r *Report) Normalize() {
	r.WallNs = 0
	r.Workers = 0
	for i := range r.Functions {
		f := &r.Functions[i]
		f.DurationNs = 0
		f.FrontendNs = 0
		f.EncodeNs = 0
		f.SolveNs = 0
		f.AliasNs = 0
		f.FlowNs = 0
		f.PresolveFactsNs = 0
	}
	for name, h := range r.Metrics.Histograms {
		h.SumNs, h.MinNs, h.MaxNs = 0, 0, 0
		r.Metrics.Histograms[name] = h
	}
	// Campaign-store counters (store.*) measure how the run executed —
	// fsync batching, waves, compactions, crash reclaims — not what it
	// concluded, so resumed, re-sharded, and single-process campaigns
	// legitimately differ on them. Strip them with the other volatiles.
	for name := range r.Metrics.Counters {
		if strings.HasPrefix(name, "store.") {
			delete(r.Metrics.Counters, name)
		}
	}
	normalizeSpans(r.Spans)
}

func normalizeSpans(spans []SpanReport) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Name < spans[j].Name })
	for i := range spans {
		spans[i].WallNs = 0
		spans[i].SelfNs = 0
		normalizeSpans(spans[i].Children)
	}
}

// WriteJSON marshals the report with indentation and a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the report to path ("-" means stdout).
func (r *Report) WriteFile(path string) error {
	if path == "-" {
		return r.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
