// Package obsv is the stdlib-only observability layer for the analysis
// pipeline: hierarchical wall-clock spans (Tracer, Span), a typed metrics
// registry (Registry: counters, gauges, duration histograms), and the
// stable JSON run-report schema (Report) that clou -report, lcmlint
// -report, and cmd/benchjson share.
//
// Everything is nil-safe by design: a nil *Tracer, *Span, *Registry,
// *Counter, *Gauge, or *Histogram accepts every method as a no-op, so
// instrumented code calls Start/Add/Observe unconditionally and a
// disabled pipeline pays neither an allocation nor a clock read.
package obsv

import (
	"sync"
	"time"
)

// Tracer collects a forest of root spans for one run. The zero value of
// *Tracer (nil) is the disabled tracer: Start returns nil and every
// downstream span operation is free.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start opens a root span. On a nil tracer it returns nil without
// touching the clock.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, begin: time.Now()}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the root spans in start order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Span is one timed region. Children may be started concurrently from
// multiple goroutines; each child's End must be called by the goroutine
// that started it (the usual defer pairing).
type Span struct {
	name  string
	begin time.Time

	mu       sync.Mutex
	wall     time.Duration
	children []*Span
	ended    bool
}

// Start opens a child span. Nil-safe: a nil receiver returns nil.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, begin: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its wall duration. Ending twice keeps the
// first duration. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.wall = now.Sub(s.begin)
	}
	s.mu.Unlock()
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Wall returns the span's wall-clock duration: the fixed duration once
// ended, the running elapsed time before that. Nil-safe (zero).
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.wall
	}
	return time.Since(s.begin)
}

// Self returns the span's own duration: wall minus the wall time of its
// children — the "CPU-ish" share attributable to the span itself rather
// than to a named sub-stage. Concurrent children can make Self negative;
// it is clamped to zero.
func (s *Span) Self() time.Duration {
	if s == nil {
		return 0
	}
	d := s.Wall()
	for _, c := range s.Children() {
		d -= c.Wall()
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Children returns the child spans in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}
