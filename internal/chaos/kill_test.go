package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"

	"lcm/internal/campstore"
	"lcm/internal/faultinject"
	"lcm/internal/faults"
	"lcm/internal/obsv"
	"lcm/internal/progen"
)

// TestMain doubles as the kill campaign's worker entry point: spawned
// processes re-exec this test binary with CHAOS_KILL_WORKER set and run
// a store worker (or a compacting coordinator) instead of the tests.
// CAMPSTORE_KILL in the inherited environment arms the seeded SIGKILL,
// so the worker dies mid-critical-section with no cleanup — the same
// thing a power cut or OOM kill looks like to the store files.
func TestMain(m *testing.M) {
	if os.Getenv("CHAOS_KILL_WORKER") == "1" {
		killWorkerMain()
	}
	os.Exit(m.Run())
}

func killWorkerMain() {
	dir := os.Getenv("CHAOS_STORE")
	seed, _ := strconv.ParseInt(os.Getenv("CHAOS_SEED"), 10, 64)
	n, _ := strconv.Atoi(os.Getenv("CHAOS_N"))
	if os.Getenv("CHAOS_MODE") == "compact" {
		// A coordinator with a 1-byte compaction threshold: opening the
		// store immediately rewrites the snapshot, crossing the snap.*
		// kill points.
		st, err := campstore.Open(dir, campstore.Options{Seed: seed, N: n, Worker: "compactor", CompactBytes: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kill-compactor:", err)
			os.Exit(3)
		}
		st.Close()
		os.Exit(0)
	}
	st, err := campstore.Open(dir, campstore.Options{
		Seed: seed, N: n, Worker: fmt.Sprintf("k%d", os.Getpid()), Attach: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kill-worker:", err)
		os.Exit(3)
	}
	defer st.Close()
	if _, err := progen.RunStore(context.Background(), st, progen.Options{Seed: seed, N: n}, 0); err != nil {
		fmt.Fprintln(os.Stderr, "kill-worker:", err)
		os.Exit(3)
	}
	os.Exit(0)
}

const (
	killSeed = int64(5)
	killN    = 4
)

// killTempDir is t.TempDir, except when CHAOS_KILL_DIR is set (the CI
// crash-chaos job points it into the workspace): then store directories
// outlive the run, so a failure's on-disk state can be uploaded as an
// artifact for offline forensics.
func killTempDir(t *testing.T) string {
	base := os.Getenv("CHAOS_KILL_DIR")
	if base == "" {
		return t.TempDir()
	}
	if err := os.MkdirAll(base, 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(base, "store-")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// spawnKillWorker re-execs the test binary as a store worker with the
// given kill point armed. It reports whether the process died to the
// seeded SIGKILL; any other failure mode fails the test.
func spawnKillWorker(t *testing.T, dir, mode, kill string) bool {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	var stderr bytes.Buffer
	cmd.Stdout = io.Discard
	cmd.Stderr = &stderr
	cmd.Env = append(os.Environ(),
		"CHAOS_KILL_WORKER=1",
		"CHAOS_STORE="+dir,
		"CHAOS_SEED="+strconv.FormatInt(killSeed, 10),
		"CHAOS_N="+strconv.Itoa(killN),
		"CHAOS_MODE="+mode,
		campstore.KillEnv+"="+kill,
	)
	err := cmd.Run()
	if err == nil {
		return false
	}
	ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("worker (%s, kill=%s) died unexpectedly: %v\nstderr:\n%s", mode, kill, err, stderr.String())
	}
	return true
}

// renderKillStore assembles the finished campaign from the store and
// renders its normalized report bytes.
func renderKillStore(t *testing.T, dir string) []byte {
	t.Helper()
	st, err := campstore.Open(dir, campstore.Options{Seed: killSeed, N: killN, Worker: "render", Attach: true})
	if err != nil {
		t.Fatalf("open store for render: %v", err)
	}
	defer st.Close()
	reg := obsv.NewRegistry()
	tr := obsv.NewTracer()
	root := tr.Start("conform")
	out, err := progen.OutcomeFromStore(st, reg)
	root.End()
	if err != nil {
		t.Fatalf("assemble report: %v", err)
	}
	rep := out.Report(killSeed, 1, reg, tr)
	rep.Normalize()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// copyStoreDir snapshots a store directory so destructive sweeps can
// reuse one state.
func copyStoreDir(t *testing.T, src string) string {
	t.Helper()
	dst := killTempDir(t)
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestStoreKillCampaign is the crash-chaos acceptance gate: workers are
// SIGKILLed at seeded instruction boundaries inside every
// durability-critical section — claim appends, complete appends, WAL
// fsyncs, and compaction's snapshot write/rename — across at least 50
// kills, and the store must (1) never lose a committed verdict, (2)
// re-run every abandoned claim, and (3) finish to a normalized report
// byte-identical to an uninterrupted single-process run.
func TestStoreKillCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("kill campaign in -short mode")
	}

	// Reference: the same campaign, one process, zero interruptions.
	refDir := killTempDir(t)
	ref, err := campstore.Open(refDir, campstore.Options{Seed: killSeed, N: killN, Worker: "ref"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := progen.RunStore(context.Background(), ref, progen.Options{Seed: killSeed, N: killN}, 0); err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	ref.Close()
	want := renderKillStore(t, refDir)

	// The kill sweep: one shared campaign; each round spawns one worker
	// per WAL kill point with the occurrence count rising, so the kills
	// walk forward through the claim/complete/fsync sequence while the
	// campaign's committed verdicts accumulate underneath them.
	dir := killTempDir(t)
	coord, err := campstore.Open(dir, campstore.Options{
		Seed: killSeed, N: killN, Worker: "coordinator", CompactBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	walPoints := []string{
		campstore.KillWALWritePre, campstore.KillWALWritePost,
		campstore.KillWALSyncPre, campstore.KillWALSyncPost,
	}
	kills, reclaims := 0, 0
	killsAt := map[string]int{}
	for occ := 1; !coord.Done(); occ++ {
		if occ > 32 {
			t.Fatalf("campaign failed to converge: %d/%d verdicts after %d rounds", coord.CompletedCount(), killN, occ)
		}
		for _, p := range walPoints {
			if coord.Done() {
				break
			}
			if err := coord.Sync(); err != nil {
				t.Fatal(err)
			}
			before := coord.CompletedCount()
			if spawnKillWorker(t, dir, "worker", fmt.Sprintf("%s@%d", p, occ)) {
				kills++
				killsAt[p]++
			}
			if err := coord.Sync(); err != nil {
				t.Fatal(err)
			}
			// (1) Committed verdicts are monotonic: no kill, at any
			// boundary, ever loses one.
			if after := coord.CompletedCount(); after < before {
				t.Fatalf("kill at %s@%d lost verdicts: %d -> %d", p, occ, before, after)
			}
			// (2) The dead worker's claims expire and re-run.
			n, err := coord.Reclaim()
			if err != nil {
				t.Fatal(err)
			}
			reclaims += n
		}
	}
	if coord.CompletedCount() != killN {
		t.Fatalf("campaign finished with %d/%d verdicts", coord.CompletedCount(), killN)
	}
	if reclaims == 0 {
		t.Error("no lease was ever reclaimed: the kills never interrupted a claim")
	}

	// Compact-boundary kills: replay compaction on copies of the finished
	// (uncompacted) store, killing at each snapshot point, and prove the
	// full verdict set survives every crash window.
	for _, p := range []string{campstore.KillSnapWritePre, campstore.KillSnapRenamePre, campstore.KillSnapRenamePost} {
		cp := copyStoreDir(t, dir)
		if !spawnKillWorker(t, cp, "compact", p+"@1") {
			t.Fatalf("compactor survived %s@1: compaction never crossed the point", p)
		}
		kills++
		killsAt[p]++
		if got := renderKillStore(t, cp); !bytes.Equal(got, want) {
			t.Errorf("report after compaction kill at %s differs from reference", p)
		}
	}

	// Volume: top the tally up past the acceptance floor with fresh
	// campaigns killed at the very first claim append — the cheapest
	// boundary, died-before-anything workers whose stores must still
	// open clean.
	for kills < 50 {
		farm := killTempDir(t)
		if f, err := campstore.Open(farm, campstore.Options{Seed: killSeed, N: killN, Worker: "seed"}); err != nil {
			t.Fatal(err)
		} else {
			f.Close()
		}
		if !spawnKillWorker(t, farm, "worker", campstore.KillWALWritePre+"@1") {
			t.Fatal("farm worker survived its first claim append")
		}
		kills++
		killsAt["first-claim "+campstore.KillWALWritePre]++
		st, err := campstore.Open(farm, campstore.Options{Seed: killSeed, N: killN, Worker: "check"})
		if err != nil {
			t.Fatalf("store unopenable after first-claim kill: %v", err)
		}
		if st.CompletedCount() != 0 {
			t.Fatalf("phantom verdicts after first-claim kill: %d", st.CompletedCount())
		}
		st.Close()
	}
	t.Logf("kill campaign: %d SIGKILLs survived, %d leases reclaimed, 0 verdicts lost", kills, reclaims)
	for _, p := range append(append([]string{}, walPoints...),
		campstore.KillSnapWritePre, campstore.KillSnapRenamePre, campstore.KillSnapRenamePost,
		"first-claim "+campstore.KillWALWritePre) {
		t.Logf("  %-28s %d kills", p, killsAt[p])
	}

	// (3) The many-process, many-kill campaign reports byte-identically
	// to the uninterrupted run.
	if got := renderKillStore(t, dir); !bytes.Equal(got, want) {
		t.Fatalf("kill-campaign report differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- killed ---\n%s", want, got)
	}
}

// TestStoreChaosIO drives the campaign store under an armed rate-1
// injection plan: every store probe decision becomes a classified
// operational io fault, the store refuses to open rather than corrupt
// state, and — disarmed — the same directory runs to completion.
func TestStoreChaosIO(t *testing.T) {
	if testing.Short() {
		t.Skip("store io chaos in -short mode")
	}
	dir := t.TempDir()
	plan := faultinject.NewPlan(7, 1)
	faultinject.Arm(plan)
	_, err := campstore.Open(dir, campstore.Options{Seed: killSeed, N: 2, Worker: "io"})
	faultinject.Disarm()
	if err == nil {
		t.Fatal("store opened under a rate-1 io plan")
	}
	if !faults.IsOperational(err) {
		t.Errorf("injected store fault is not operational: %v", err)
	}
	if faults.Kind(err) != "io" {
		t.Errorf("injected store fault kind = %q, want io: %v", faults.Kind(err), err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("store fault not marked injected: %v", err)
	}
	// Reconciliation: every fired store probe was classified io — store
	// probes have one failure mode, whatever kind the hash drew.
	fired := plan.FiredProbes()
	var storeFired int64
	for _, probe := range faultinject.StoreProbes() {
		storeFired += fired[probe]
	}
	if storeFired == 0 {
		t.Error("no store probe fired under a rate-1 plan")
	}
	if got := plan.Counts()["io"]; got != storeFired {
		t.Errorf("plan counted %d io faults, %d store probes fired", got, storeFired)
	}
	if plan.Total() != storeFired {
		t.Errorf("plan fired %d faults total, %d at store probes: non-store probes fired during Open", plan.Total(), storeFired)
	}

	// Disarmed, the directory holds no residue: the campaign opens, runs,
	// and finishes.
	st, err := campstore.Open(dir, campstore.Options{Seed: killSeed, N: 2, Worker: "retry"})
	if err != nil {
		t.Fatalf("open after disarm: %v", err)
	}
	defer st.Close()
	if _, err := progen.RunStore(context.Background(), st, progen.Options{Seed: killSeed, N: 2}, 0); err != nil {
		t.Fatalf("campaign after disarm: %v", err)
	}
	if !st.Done() {
		t.Fatalf("campaign incomplete after disarm: %d/2", st.CompletedCount())
	}
}
