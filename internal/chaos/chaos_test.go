package chaos

import (
	"bytes"
	"context"
	"flag"
	"testing"

	"lcm/internal/faultinject"
	"lcm/internal/obsv"
)

var (
	chaosN    = flag.Int("chaos.n", 100, "programs per chaos campaign")
	chaosRate = flag.Float64("chaos.rate", 0.3, "per-(probe, key) injection probability")
	chaosSeed = flag.Int64("chaos.seed", 1, "program-generator seed")
	faultSeed = flag.Int64("chaos.fault-seed", 7, "injection-plan seed")
)

// campaign runs one full chaos campaign at the given worker count and
// returns its normalized report bytes plus the plan and registry for
// reconciliation.
func campaign(t *testing.T, jobs int) ([]byte, *faultinject.Plan, *obsv.Registry, *Outcome) {
	t.Helper()
	reg := obsv.NewRegistry()
	tr := obsv.NewTracer()
	root := tr.Start("chaos-campaign")
	opts := Options{
		Seed:      *chaosSeed,
		FaultSeed: *faultSeed,
		N:         *chaosN,
		Jobs:      jobs,
		Rate:      *chaosRate,
		Metrics:   reg,
		Span:      root,
	}
	out, err := Run(context.Background(), opts)
	root.End()
	if err != nil {
		t.Fatalf("campaign at -j %d crashed: %v", jobs, err)
	}
	rep := out.Report(opts, reg, tr)
	rep.Normalize()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return buf.Bytes(), out.Plan, reg, out
}

// TestChaosCampaign is the `make chaos` acceptance gate: a seeded fault
// plan injects panics, deadline exhaustion, and cancellations at every
// probe point while the full pipeline analyzes generated programs, and
// the run must (1) not crash, (2) lose no inputs, (3) produce the same
// normalized report bytes at -j 1 and -j 8, (4) fire at least 200 faults
// covering all probe points, and (5) account for every injected fault in
// the failure-taxonomy metrics.
func TestChaosCampaign(t *testing.T) {
	b1, p1, r1, out1 := campaign(t, 1)
	b8, p8, _, _ := campaign(t, 8)

	// (3) byte-identical normalized reports across worker counts.
	if !bytes.Equal(b1, b8) {
		t.Errorf("normalized chaos report differs between -j 1 (%d bytes) and -j 8 (%d bytes)", len(b1), len(b8))
	}

	// (2) zero lost inputs: every (program, engine) pair has a verdict.
	if got, want := len(out1.Functions), len(engines)**chaosN; got != want {
		t.Fatalf("report has %d entries, want %d", got, want)
	}
	for _, fr := range out1.Functions {
		if fr.Name == "" || fr.Verdict == "" {
			t.Fatalf("lost input: entry %+v has no verdict", fr)
		}
	}

	// Every engine — the taxonomy candidate loops included — must have
	// absorbed injected faults: per engine, at least one verdict decided
	// below full precision with a classified failure kind.
	downgraded := map[string]int{}
	for _, fr := range out1.Functions {
		if fr.Failure != "" {
			for i := len(fr.Name) - 1; i >= 0; i-- {
				if fr.Name[i] == ':' {
					downgraded[fr.Name[i+1:]]++
					break
				}
			}
		}
	}
	for _, e := range engines {
		if downgraded[e.name] == 0 {
			t.Errorf("engine %s absorbed no injected fault (candidate loop not probed?)", e.name)
		}
	}

	// (4) campaign scale: enough injected faults, all probe points hit.
	if p1.Total() < 200 {
		t.Errorf("plan fired %d faults, want >= 200 (raise -chaos.n or -chaos.rate)", p1.Total())
	}
	fired := p1.FiredProbes()
	for _, probe := range faultinject.Probes() {
		if fired[probe] == 0 {
			t.Errorf("probe %s never fired", probe)
		}
	}
	// The two campaigns must have made identical injection decisions.
	if p1.Total() != p8.Total() {
		t.Errorf("plans diverged: %d faults at -j 1, %d at -j 8", p1.Total(), p8.Total())
	}

	// (6) the solver arm specifically: the campaign pins the warm
	// incremental solver mode and disables the pre-solver, so solver.step
	// faults land mid-sweep on a solver carrying reused trail prefixes —
	// the path whose degradation the equivalence battery most cares about.
	if fired[faultinject.ProbeSolverStep] == 0 {
		t.Error("solver.step never fired on the incremental path")
	}

	// (5) exact fault accounting: the faults.injected.* counters must
	// reconcile with the plan's fired tally, kind by kind.
	snap := r1.Snapshot()
	var accounted int64
	for kind, want := range p1.Counts() {
		got := snap.Counters["faults.injected."+kind]
		if got != want {
			t.Errorf("faults.injected.%s = %d, plan fired %d", kind, got, want)
		}
		accounted += got
	}
	if accounted != p1.Total() {
		t.Errorf("accounted %d injected faults, plan fired %d", accounted, p1.Total())
	}
	// Injected counters never exceed their total-taxonomy counterparts.
	for kind := range p1.Counts() {
		if inj, tot := snap.Counters["faults.injected."+kind], snap.Counters["faults."+kind]; inj > tot {
			t.Errorf("faults.injected.%s = %d exceeds faults.%s = %d", kind, inj, kind, tot)
		}
	}

	// Under the default campaign flags the per-kind injected counts are
	// pinned exactly: the seeded plan, the generator, and the five-engine
	// key space are all deterministic, so these numbers only move when an
	// engine's probe traversal (or the hash) intentionally changes.
	if *chaosN == 100 && *chaosRate == 0.3 && *chaosSeed == 1 && *faultSeed == 7 {
		want := pinnedInjected
		for kind, w := range want {
			if got := snap.Counters["faults.injected."+kind]; got != w {
				t.Errorf("pinned faults.injected.%s = %d, want %d (default-flag campaign drifted)", kind, got, w)
			}
		}
	}
}

// pinnedInjected is the exact per-kind injected-fault tally of the
// default campaign (chaos.n=100 rate=0.3 seed=1 fault-seed=7) with all
// five engines armed. Regenerate by reading the failure message after an
// intentional probe-coverage change.
var pinnedInjected = map[string]int64{
	"panic":    145,
	"deadline": 161,
	"canceled": 147,
}
