// Package chaos drives the seeded fault-injection campaign behind `make
// chaos`: N generated programs are analyzed by all five engines through
// the fault-tolerant supervisor while an armed faultinject.Plan fires panics,
// artificial deadline exhaustion, and cancellations at every probe point.
// The campaign's contract — asserted by its test — is that the pipeline
// degrades instead of dying: zero process crashes, zero lost inputs
// (every (program, engine) pair gets a verdict), a normalized report
// byte-identical at any worker count, and every injected fault accounted
// for in the failure-taxonomy metrics.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lcm/internal/detect"
	"lcm/internal/faultinject"
	"lcm/internal/faults"
	"lcm/internal/harness"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/obsv"
	"lcm/internal/progen"
	"lcm/internal/smt"
)

// Options parameterizes a chaos campaign.
type Options struct {
	Seed      int64   // program-generator seed
	FaultSeed int64   // injection-plan seed
	N         int     // programs to generate
	Jobs      int     // worker pool width
	Rate      float64 // per-(probe, key) injection probability
	// Timeout bounds each analysis attempt. Keep it generous: organic
	// deadlines are wall-clock dependent and would break the campaign's
	// cross--j byte-identity, so only injected faults should ever fire.
	Timeout time.Duration
	Metrics *obsv.Registry
	Span    *obsv.Span
}

// Outcome is one finished campaign.
type Outcome struct {
	// Functions holds one report entry per (program, engine) pair, in
	// input order: len(engines)*N entries, none missing — the
	// zero-lost-inputs invariant.
	Functions []obsv.FuncReport
	// Plan is the armed plan after the run; its fired tallies are the
	// ground truth the taxonomy metrics must reconcile against.
	Plan *faultinject.Plan
	Wall time.Duration
}

// engines is every detection engine the campaign drives per program —
// all five, so the taxonomy engines' candidate loops (psf pair
// enumeration, imp training-window walk, ss feeder scan) take injected
// faults too, not just the pht/stl window paths.
var engines = []struct {
	name string
	mk   func() detect.Config
}{
	{"pht", detect.DefaultPHT},
	{"stl", detect.DefaultSTL},
	{"psf", detect.DefaultPSF},
	{"imp", detect.DefaultIMP},
	{"ss", detect.DefaultSS},
}

// Run executes one campaign. It arms the plan for the duration of the
// call (campaigns must not overlap; Arm panics if one is already armed).
func Run(ctx context.Context, opts Options) (*Outcome, error) {
	start := time.Now()
	if opts.N <= 0 {
		opts.N = 1
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 120 * time.Second
	}
	plan := faultinject.NewPlan(opts.FaultSeed, opts.Rate)
	faultinject.Arm(plan)
	defer faultinject.Disarm()

	out := &Outcome{Functions: make([]obsv.FuncReport, len(engines)*opts.N), Plan: plan}
	itemErrs := harness.ForEachSpanCtx(ctx, opts.Span, "chaos", opts.Jobs, opts.N, func(i int, sp *obsv.Span) error {
		psp := sp.Start(fmt.Sprintf("prog-%04d", i))
		defer psp.End()
		p, err := progen.Generate(opts.Seed, i)
		if err != nil {
			return err
		}
		f, err := minic.Parse(p.Src)
		if err != nil {
			return fmt.Errorf("parse g%04d: %w", i, err)
		}
		m, err := lower.Module(f)
		if err != nil {
			return fmt.Errorf("lower g%04d: %w", i, err)
		}
		for k, e := range engines {
			cfg := e.mk()
			cfg.Timeout = opts.Timeout
			cfg.Metrics = opts.Metrics
			// The campaign drives the solver directly: the static
			// pre-solver discharges most queries, which would starve the
			// solver.step probes the fault plan targets. Its own soundness
			// has dedicated coverage (audit-presolve CI job, `presolve`
			// conformance oracle); chaos owns the fault taxonomy.
			cfg.NoPresolve = true
			// Pin the warm incremental solver (the default, but load-bearing
			// here): solver.step faults must land mid-sweep on a solver
			// carrying reused trail prefixes and saved phases, so the
			// campaign proves the incremental path degrades soundly too.
			cfg.AEG.SolverMode = smt.ModeIncremental
			cfg.InjectKey = fmt.Sprintf("g%04d/%s", i, e.name)
			res, err := detect.AnalyzeFuncLadder(ctx, m, p.Fn, cfg)
			if err != nil {
				return fmt.Errorf("detect g%04d/%s: %w", i, e.name, err)
			}
			fr := res.Report()
			fr.Name = fmt.Sprintf("g%04d:%s", i, e.name)
			out.Functions[len(engines)*i+k] = fr
		}
		return nil
	})
	for i, err := range itemErrs {
		if err == nil {
			continue
		}
		if !faults.IsFault(err) {
			return nil, err
		}
		// The whole item died before analysis (an injected dispatch fault
		// or a panic the ladder never saw): both engine slots get a sound
		// unknown verdict, and the fault is folded into the taxonomy
		// counters here since no supervisor observed it.
		kind := faults.Kind(err)
		for k, e := range engines {
			out.Functions[len(engines)*i+k] = obsv.FuncReport{
				Name:    fmt.Sprintf("g%04d:%s", i, e.name),
				Verdict: "unknown",
				Rung:    detect.RungUnknown.String(),
				Failure: kind,
				Error:   err.Error(),
			}
		}
		opts.Metrics.Counter("faults." + kind).Add(1)
		if errors.Is(err, faultinject.ErrInjected) {
			opts.Metrics.Counter("faults.injected." + kind).Add(1)
		}
	}
	out.Wall = time.Since(start)
	return out, nil
}

// Report renders the campaign as the shared normalized run manifest.
func (o *Outcome) Report(opts Options, reg *obsv.Registry, tr *obsv.Tracer) *obsv.Report {
	rep := &obsv.Report{
		Tool:    "chaos",
		Version: obsv.Version,
		Engine:  fmt.Sprintf("seed=%d fault-seed=%d rate=%g", opts.Seed, opts.FaultSeed, opts.Rate),
		Workers: opts.Jobs,
		WallNs:  o.Wall.Nanoseconds(),
		Metrics: reg.Snapshot(),
		Spans:   obsv.SpanTree(tr),
	}
	rep.Functions = append(rep.Functions, o.Functions...)
	return rep
}
