package prog

// This file contains litmus-style renderings of the programs the paper uses
// as running examples (§3, §4.2) plus classic MCM litmus tests used to
// validate the architectural semantics.

// SpectreV1 is the classic Spectre v1 bounds-check bypass of Fig. 1:
//
//	if (y < size_A) { x = A[y]; tmp &= B[x]; }
func SpectreV1() *Program {
	return &Program{
		Name: "spectre-v1",
		Threads: [][]Node{{
			Load("r1", "size", "", false),
			Load("r2", "y", "", false),
			If{
				Cond:  []Reg{"r1", "r2"},
				Label: "y < size_A",
				Then: []Node{
					Load("r4", "A", "r2", true),
					Load("r5", "B", "r4", true),
					Store("tmp", "", "r5"),
				},
			},
		}},
	}
}

// SpectreV1Variant is the Fig. 3 variant with a non-transient access
// instruction:
//
//	x = A[y]; if (y < size_A) temp &= B[x];
func SpectreV1Variant() *Program {
	return &Program{
		Name: "spectre-v1-variant",
		Threads: [][]Node{{
			Load("r1", "y", "", false),
			Load("r2", "A", "r1", true),
			Load("r0", "size", "", false),
			If{
				Cond:  []Reg{"r0", "r1"},
				Label: "y < size_A",
				Then: []Node{
					Load("r3", "B", "r2", true),
					Store("tmp", "", "r3"),
				},
			},
		}},
	}
}

// SpectreV4 is the store-bypass program of Fig. 4a (§4.2):
//
//	y = y & (size_A - 1); x = A[y]; temp &= B[x];
//
// Under ExpandOptions.AddressSpeculation, the reload of y may open a
// bypass window in which stale y steers the A and B accesses.
func SpectreV4() *Program {
	return &Program{
		Name: "spectre-v4",
		Threads: [][]Node{{
			Load("r0", "size", "", false),
			Load("r1", "y", "", false),
			Store("y", "", "r0", "r1"),
			Load("r2", "y", "", false),
			Load("r3", "A", "r2", true),
			Load("r4", "B", "r3", true),
			Store("tmp", "", "r4"),
		}},
	}
}

// MP is the classic message-passing litmus test:
//
//	T0: x = 1; y = 1      T1: r1 = y; r2 = x
//
// Under SC and TSO, r1 = 1 ∧ r2 = 0 is forbidden.
func MP() *Program {
	return &Program{
		Name: "MP",
		Threads: [][]Node{
			{Store("x", ""), Store("y", "")},
			{Load("r1", "y", "", false), Load("r2", "x", "", false)},
		},
	}
}

// SB is the store-buffering litmus test:
//
//	T0: x = 1; r1 = y     T1: y = 1; r2 = x
//
// r1 = 0 ∧ r2 = 0 is forbidden under SC but allowed under TSO.
func SB() *Program {
	return &Program{
		Name: "SB",
		Threads: [][]Node{
			{Store("x", ""), Load("r1", "y", "", false)},
			{Store("y", ""), Load("r2", "x", "", false)},
		},
	}
}

// SBFenced is SB with a full fence between the store and the load on each
// thread; the relaxed outcome is then forbidden even under TSO.
func SBFenced() *Program {
	return &Program{
		Name: "SB+fences",
		Threads: [][]Node{
			{Store("x", ""), Fence(), Load("r1", "y", "", false)},
			{Store("y", ""), Fence(), Load("r2", "x", "", false)},
		},
	}
}

// CoRR is the coherence litmus test: two reads of the same location on one
// thread must not observe writes out of coherence order.
func CoRR() *Program {
	return &Program{
		Name: "CoRR",
		Threads: [][]Node{
			{Store("x", "")},
			{Load("r1", "x", "", false), Load("r2", "x", "", false)},
		},
	}
}
