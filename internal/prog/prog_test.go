package prog

import (
	"testing"

	"lcm/internal/event"
)

func countTransient(g *event.Graph) int {
	n := 0
	for _, e := range g.Events {
		if e.Transient {
			n++
		}
	}
	return n
}

func TestSpectreV1ArchitecturalExpansion(t *testing.T) {
	// Fig. 1: the branch yields exactly two event structures.
	gs := Expand(SpectreV1(), ExpandOptions{})
	if len(gs) != 2 {
		t.Fatalf("got %d event structures, want 2", len(gs))
	}
	var taken, notTaken *event.Graph
	for _, g := range gs {
		if g.Reads().Len() == 4 {
			taken = g
		}
		if g.Reads().Len() == 2 {
			notTaken = g
		}
	}
	if taken == nil || notTaken == nil {
		t.Fatalf("expected paths with 4 and 2 reads")
	}
	// The taken path (Fig. 1d) has addr deps 2→5 and 5→6 and a data dep to
	// the store; ctrl deps from both condition loads to all body events.
	if taken.Addr.Len() != 2 {
		t.Errorf("taken addr = %v", taken.Addr)
	}
	if taken.AddrGEP.Len() != 2 {
		t.Errorf("taken addr_gep = %v", taken.AddrGEP)
	}
	if taken.Data.Len() != 1 {
		t.Errorf("taken data = %v", taken.Data)
	}
	if got := taken.Ctrl.Len(); got != 6 { // 2 cond loads × 3 body memory events
		t.Errorf("taken ctrl = %d edges: %v", got, taken.Ctrl)
	}
	if notTaken.Ctrl.Len() != 0 || notTaken.Addr.Len() != 0 {
		t.Errorf("not-taken path has deps: %v %v", notTaken.Ctrl, notTaken.Addr)
	}
}

func TestSpectreV1SpeculativeExpansion(t *testing.T) {
	gs := Expand(SpectreV1(), ExpandOptions{Depth: 2, XStateForLocation: true, Observer: true})
	// Choice space: outcome × speculate = 4 graphs (no nested branches).
	if len(gs) != 4 {
		t.Fatalf("got %d graphs, want 4", len(gs))
	}
	// Exactly two graphs carry mis-speculation windows: the not-taken path
	// with a transient body (5S, 6S) and the taken path whose window runs
	// off the program to a speculative ⊥ (Fig. 2b's two forks).
	withWindow := 0
	sawMisspecBody := false
	for _, g := range gs {
		n := countTransient(g)
		specBottoms := 0
		for _, b := range g.Bottoms() {
			inPO := false
			for _, p := range g.PO.Pairs() {
				if p.To == b.ID {
					inPO = true
				}
			}
			if !inPO {
				specBottoms++
			}
		}
		if n > 0 || specBottoms > 0 {
			withWindow++
			if n > 2 {
				t.Errorf("window exceeded depth: %d transient events", n)
			}
		}
		// The Fig. 2b shape: committed not-taken path + transient body.
		committedReads := g.Reads().Diff(g.TransientEvents()).Len()
		if n == 2 && committedReads == 2 {
			sawMisspecBody = true
			// Transient events must not be in po but must be in tfo.
			for id := range g.TransientEvents() {
				for _, p := range g.PO.Pairs() {
					if p.From == id || p.To == id {
						t.Errorf("transient %d in po", id)
					}
				}
			}
		}
	}
	if withWindow != 2 {
		t.Errorf("graphs with windows = %d, want 2", withWindow)
	}
	if !sawMisspecBody {
		t.Error("missing the Fig. 2b mis-speculated-body graph")
	}
}

func TestXStateSharing(t *testing.T) {
	// With XStateForLocation, the transient and committed accesses to the
	// same symbolic address share one xstate element.
	gs := Expand(SpectreV1(), ExpandOptions{Depth: 4, XStateForLocation: true})
	for _, g := range gs {
		byLoc := map[event.Location]event.XSID{}
		for _, e := range g.Events {
			if !e.IsRead() && !e.IsWrite() {
				continue
			}
			if x, ok := byLoc[e.Loc]; ok {
				if x != e.XState {
					t.Fatalf("location %q has two xstate ids", e.Loc)
				}
			} else {
				byLoc[e.Loc] = e.XState
			}
		}
	}
	// Without it, all xstate ids are distinct.
	gs = Expand(SpectreV1(), ExpandOptions{})
	for _, g := range gs {
		seen := map[event.XSID]bool{}
		for _, e := range g.Events {
			if e.XState == event.XNone {
				continue
			}
			if seen[e.XState] {
				t.Fatal("duplicate xstate without XStateForLocation")
			}
			seen[e.XState] = true
		}
	}
}

func TestObserverPlacement(t *testing.T) {
	gs := Expand(SpectreV1(), ExpandOptions{Depth: 2, Observer: true})
	for _, g := range gs {
		bots := g.Bottoms()
		if len(bots) == 0 {
			t.Fatal("no observer")
		}
		// Exactly one committed ⊥ (in po); speculative ⊥ appears only in
		// graphs where the taken-path window ran off the program.
		committed := 0
		for _, b := range bots {
			inPO := false
			for _, p := range g.PO.Pairs() {
				if p.To == b.ID {
					inPO = true
				}
			}
			if inPO {
				committed++
			}
		}
		if committed != 1 {
			t.Errorf("committed observers = %d, want 1", committed)
		}
	}
}

func TestMPExpansion(t *testing.T) {
	gs := Expand(MP(), ExpandOptions{})
	if len(gs) != 1 {
		t.Fatalf("MP graphs = %d, want 1", len(gs))
	}
	g := gs[0]
	if g.Writes().Len() != 2 || g.Reads().Len() != 2 {
		t.Fatalf("MP events wrong: %v", g)
	}
	// Threads are po-independent: no po edge between thread 0 and 1 events.
	for _, p := range g.PO.Pairs() {
		a, b := g.Events[p.From], g.Events[p.To]
		if a.Kind != event.KTop && a.Thread != b.Thread {
			t.Errorf("cross-thread po %v", p)
		}
	}
}

func TestFenceEmission(t *testing.T) {
	gs := Expand(SBFenced(), ExpandOptions{})
	if len(gs) != 1 {
		t.Fatalf("graphs = %d", len(gs))
	}
	fences := 0
	for _, e := range gs[0].Events {
		if e.Kind == event.KFence {
			fences++
		}
	}
	if fences != 2 {
		t.Errorf("fences = %d, want 2", fences)
	}
}

func TestNestedIfEnumeration(t *testing.T) {
	p := &Program{
		Name: "nested",
		Threads: [][]Node{{
			Load("r1", "a", "", false),
			If{Cond: []Reg{"r1"}, Then: []Node{
				Load("r2", "b", "", false),
				If{Cond: []Reg{"r2"}, Then: []Node{Load("r3", "c", "", false)}},
			}},
		}},
	}
	gs := Expand(p, ExpandOptions{})
	// Outcomes: outer-else (1), outer-then × inner-{then,else} (2) = 3.
	if len(gs) != 3 {
		t.Fatalf("graphs = %d, want 3", len(gs))
	}
	// Ctrl nesting: in the innermost path, r3's load is controlled by both
	// r1's and r2's loads.
	found := false
	for _, g := range gs {
		if g.Reads().Len() == 3 {
			found = true
			if g.Ctrl.Len() != 3 { // r1→b, r1→c, r2→c
				t.Errorf("nested ctrl = %v", g.Ctrl)
			}
		}
	}
	if !found {
		t.Fatal("missing fully-taken path")
	}
}

func TestSpeculativeCtrlDeps(t *testing.T) {
	// Transient events under a branch still receive ctrl edges from the
	// condition loads (the dependency exists microarchitecturally).
	gs := Expand(SpectreV1(), ExpandOptions{Depth: 2})
	for _, g := range gs {
		for id := range g.TransientEvents() {
			hasCtrl := false
			for _, p := range g.Ctrl.Pairs() {
				if p.To == id {
					hasCtrl = true
				}
			}
			if !hasCtrl && g.Events[id].IsMemory() {
				t.Errorf("transient memory event %d lacks ctrl dep", id)
			}
		}
	}
}

func TestExamplePrograms(t *testing.T) {
	for _, tc := range []struct {
		p      *Program
		graphs int
	}{
		{SpectreV1(), 2},
		{SpectreV1Variant(), 2},
		{MP(), 1},
		{SB(), 1},
		{SBFenced(), 1},
		{CoRR(), 1},
	} {
		gs := Expand(tc.p, ExpandOptions{})
		if len(gs) != tc.graphs {
			t.Errorf("%s: graphs = %d, want %d", tc.p.Name, len(gs), tc.graphs)
		}
		for _, g := range gs {
			if err := g.Validate(); err != nil {
				t.Errorf("%s: invalid graph: %v", tc.p.Name, err)
			}
		}
	}
}

func TestAddressSpeculationExpansion(t *testing.T) {
	// Without address speculation, Spectre v4 yields a single straight-line
	// event structure.
	plain := Expand(SpectreV4(), ExpandOptions{XStateForLocation: true})
	if len(plain) != 1 {
		t.Fatalf("plain graphs = %d, want 1", len(plain))
	}
	if plain[0].TransientEvents().Len() != 0 {
		t.Error("transient events without speculation")
	}
	// With it, the reload of y opens a bypass window: transient copies of
	// the load and its dependents precede the architectural re-execution.
	spec := Expand(SpectreV4(), ExpandOptions{
		Depth: 4, XStateForLocation: true, AddressSpeculation: true, Observer: true,
	})
	sawWindow := false
	for _, g := range spec {
		ts := g.TransientEvents()
		if ts.Len() == 0 {
			continue
		}
		sawWindow = true
		// The transient window contains a read of y sharing xstate with
		// the committed store to y (the Fig. 4a frx shape).
		var yStore, yTransRead *event.Event
		for _, e := range g.Events {
			if e.IsWrite() && e.Loc == "y" && e.Committed() {
				yStore = e
			}
			if e.IsRead() && e.Loc == "y" && e.Transient {
				yTransRead = e
			}
		}
		if yStore == nil || yTransRead == nil {
			t.Fatal("bypass window missing the y store/transient read pair")
		}
		if yStore.XState != yTransRead.XState {
			t.Error("store and transient read do not share xstate")
		}
		// tfo orders the transient read before... the re-executed load
		// exists as a committed event after the window.
		committedReload := false
		for _, e := range g.Events {
			if e.IsRead() && e.Loc == "y" && e.Committed() && g.TFO.Has(yTransRead.ID, e.ID) {
				committedReload = true
			}
		}
		if !committedReload {
			t.Error("no committed re-execution after the window")
		}
	}
	if !sawWindow {
		t.Fatal("no bypass window enumerated")
	}
}
