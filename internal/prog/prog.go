// Package prog defines a small litmus-style assembly language with explicit
// register dataflow, and expands programs into event structures (§2.1.1):
// one event.Graph per control-flow path, and — under a speculative semantics
// (§3.3) — per mis-speculation pattern. Dependencies (addr, data, ctrl) are
// derived from register def-use chains exactly as the dep relation of §2.1.3
// prescribes.
package prog

import (
	"fmt"

	"lcm/internal/event"
)

// Reg names a register, e.g. "r1".
type Reg string

// Node is an element of a program block: an instruction or a conditional.
type Node interface{ isNode() }

// Inst is a straight-line instruction.
type Inst struct {
	Kind  InstKind
	Dst   Reg    // ILoad: destination register
	Base  string // ILoad/IStore: symbolic base location, e.g. "A"
	Index Reg    // optional index register; address is Base+Index
	GEP   bool   // Index is a getelementptr-style array offset (§5.2)
	Data  []Reg  // IStore: registers feeding the stored value
	Label string
}

func (Inst) isNode() {}

// InstKind enumerates instruction kinds.
type InstKind int

// Instruction kinds.
const (
	ILoad InstKind = iota
	IStore
	IFence
	ISkip
)

// If is a structured conditional. The architectural semantics considers
// both outcomes; the speculative semantics additionally considers a window
// of transient instructions down the wrong path.
type If struct {
	Cond  []Reg // registers the branch condition reads
	Label string
	Then  []Node
	Else  []Node
}

func (If) isNode() {}

// Load builds a load instruction Dst ← [Base+Index].
func Load(dst Reg, base string, index Reg, gep bool) Inst {
	return Inst{Kind: ILoad, Dst: dst, Base: base, Index: index, GEP: gep}
}

// Store builds a store instruction [Base+Index] ← f(Data...).
func Store(base string, index Reg, data ...Reg) Inst {
	return Inst{Kind: IStore, Base: base, Index: index, Data: data}
}

// Fence builds a fence instruction.
func Fence() Inst { return Inst{Kind: IFence, Label: "fence"} }

// Program is a multi-threaded litmus program.
type Program struct {
	Name    string
	Threads [][]Node
}

// location renders the symbolic address of an instruction. Two events
// access the same architectural location iff their rendered locations are
// equal; index registers are symbolic, so "A+r2" ≠ "A+r3" even if the
// registers could hold equal values — adequate for the paper's litmus
// corpus where distinct index registers address distinct lines.
func (in Inst) location() event.Location {
	if in.Index == "" {
		return event.Location(in.Base)
	}
	return event.Location(in.Base + "+" + string(in.Index))
}

// ExpandOptions controls event-structure expansion.
type ExpandOptions struct {
	// Depth is the control-flow speculation depth: how many transient
	// instructions are fetched down the wrong path of each branch before
	// rollback (§3.3). Depth 0 disables the speculative semantics.
	Depth int
	// XStateForLocation, when true, assigns one xstate element per distinct
	// (thread, location) pair — xstate models core-private cache lines and
	// LSQ entries (§3.2.1), so only same-core accesses to one location
	// share an element (the infinitely-sized direct-mapped cache
	// abstraction of §5.2); transient and committed accesses then share
	// xstate as in Figs. 2b–4. When false every event gets fresh xstate.
	XStateForLocation bool
	// ReadsHit, when true, models reads as cache hits (XR); otherwise reads
	// are modeled as misses (XRW), matching the RW annotations of Fig. 2.
	ReadsHit bool
	// Observer, when true, appends a ⊥ observer at the end of every
	// committed path and a speculative ⊥ at the end of fully mis-speculated
	// windows that run off the program (Fig. 2b).
	Observer bool
	// AddressSpeculation models the second §3.3 speculation type: a load
	// whose location was stored earlier on the same thread may induce a
	// window — it (and up to Depth following instructions) execute
	// transiently before re-executing architecturally, the Fig. 4a shape.
	// The stale rf placement itself comes from the witness enumeration
	// (mcm.EnumerateOptions.StaleForwarding).
	AddressSpeculation bool
}

// Expand enumerates the event structures of p: one graph per combination of
// branch outcomes (architectural semantics) and, if opts.Depth > 0, per
// mis-speculation pattern (speculative semantics). Witness relations rf/co
// and rfx/cox are left empty — they are enumerated by the mcm and core
// packages against consistency/confidentiality predicates.
func Expand(p *Program, opts ExpandOptions) []*event.Graph {
	e := &expander{opts: opts}
	return e.enumerate(p)
}

// xsKey identifies a core-private xstate element: one per (thread,
// location) pair (§3.2.1).
type xsKey struct {
	t   int
	loc event.Location
}

// expander carries per-pass emission state. Choice points (branch outcome,
// speculate-or-not, nested window direction) are resolved against a
// mixed-radix choice vector; the enumerator walks the program once per
// vector value, growing the vector lazily as new choice points appear.
type expander struct {
	opts ExpandOptions
	b    *event.Builder
	// regDef maps registers to the load event that defined them, per thread.
	regDef map[int]map[Reg]*event.Event
	xs     map[xsKey]event.XSID
	// ctrl holds, per thread, the stack of loads feeding enclosing branch
	// conditions; every memory event under a branch gets ctrl edges from each.
	ctrl map[int][]*event.Event

	choices []int // current choice vector
	radix   []int // alternatives per choice point (rebuilt each pass)
	cursor  int
	// storesSeen tracks, per thread, the locations written so far by
	// committed stores (bypass eligibility for AddressSpeculation).
	storesSeen map[int]map[event.Location]bool
}

func (e *expander) enumerate(p *Program) []*event.Graph {
	var out []*event.Graph
	for {
		e.b = event.NewBuilder()
		e.regDef = make(map[int]map[Reg]*event.Event)
		e.ctrl = make(map[int][]*event.Event)
		e.xs = make(map[xsKey]event.XSID)
		e.storesSeen = make(map[int]map[event.Location]bool)
		e.cursor = 0
		e.radix = e.radix[:0]

		for t := range p.Threads {
			e.regDef[t] = make(map[Reg]*event.Event)
			e.emitBlock(t, p.Threads[t], false, -1)
			if e.opts.Observer {
				e.b.Bottom(t)
			}
		}
		out = append(out, e.b.Finish())

		if !e.advance() {
			return out
		}
	}
}

// choose resolves the next choice point with n alternatives, returning the
// selected alternative under the current choice vector.
func (e *expander) choose(n int) int {
	idx := e.cursor
	e.cursor++
	e.radix = append(e.radix, n)
	if idx < len(e.choices) {
		return e.choices[idx]
	}
	e.choices = append(e.choices, 0)
	return 0
}

// advance increments the choice vector as a mixed-radix counter, truncating
// positions that wrap. It returns false when enumeration is complete.
func (e *expander) advance() bool {
	for i := len(e.choices) - 1; i >= 0; i-- {
		e.choices[i]++
		if e.choices[i] < e.radix[i] {
			e.choices = e.choices[:i+1]
			return true
		}
	}
	return false
}

// emitBlock emits the events of block on thread t. transient indicates a
// mis-speculation window; budget is the remaining window size (ignored when
// transient is false). It returns the remaining budget.
func (e *expander) emitBlock(t int, block []Node, transient bool, budget int) int {
	for i, n := range block {
		if transient && budget <= 0 {
			return 0
		}
		switch n := n.(type) {
		case Inst:
			// Address speculation (§3.3): a committed load of a location
			// stored earlier on this thread may open a store-bypass
			// window — transient copies of the load and its continuation
			// run ahead before the architectural re-execution.
			if !transient && e.opts.AddressSpeculation && e.opts.Depth > 0 &&
				n.Kind == ILoad && e.storesSeen[t][n.location()] {
				if e.choose(2) == 1 {
					e.emitBlock(t, block[i:], true, e.opts.Depth)
				}
			}
			if e.emitInst(t, n, transient) && transient {
				budget--
			}
		case If:
			budget = e.emitIf(t, n, transient, budget)
		default:
			panic(fmt.Sprintf("prog: unknown node %T", n))
		}
	}
	return budget
}

// emitInst emits one instruction's event; it reports whether an event was
// actually emitted (fences and skips inside squashed windows are dropped).
func (e *expander) emitInst(t int, in Inst, transient bool) bool {
	b := e.b
	loc := in.location()
	var x event.XSID
	if in.Kind == ILoad || in.Kind == IStore {
		if e.opts.XStateForLocation {
			k := xsKey{t: t, loc: loc}
			id, ok := e.xs[k]
			if !ok {
				id = b.FreshX()
				e.xs[k] = id
			}
			x = id
		} else {
			x = b.FreshX()
		}
	}
	var ev *event.Event
	switch in.Kind {
	case ILoad:
		acc := event.XRW
		if e.opts.ReadsHit {
			acc = event.XR
		}
		if transient {
			ev = b.TransientRead(t, loc, x, acc, in.Label)
		} else {
			ev = b.Read(t, loc, x, acc, in.Label)
		}
		e.regDef[t][in.Dst] = ev
	case IStore:
		if transient {
			ev = b.TransientWrite(t, loc, x, event.XRW, in.Label)
		} else {
			ev = b.Write(t, loc, x, event.XRW, in.Label)
			if e.storesSeen[t] == nil {
				e.storesSeen[t] = map[event.Location]bool{}
			}
			e.storesSeen[t][loc] = true
		}
		for _, r := range in.Data {
			if def := e.regDef[t][r]; def != nil {
				b.DataDep(def, ev)
			}
		}
	case IFence:
		if transient {
			return false // a squashed fence orders nothing here
		}
		ev = b.Fence(t, in.Label)
	case ISkip:
		if transient {
			return false
		}
		ev = b.Skip(t, in.Label)
	}
	if in.Kind == ILoad || in.Kind == IStore {
		if in.Index != "" {
			if def := e.regDef[t][in.Index]; def != nil {
				b.AddrDep(def, ev, in.GEP)
			}
		}
		for _, src := range e.ctrl[t] {
			b.CtrlDep(src, ev)
		}
	}
	return true
}

// emitIf handles a conditional. Choice points, in order: committed outcome
// (0 = then, 1 = else); when speculation is on and we are committed, whether
// a mis-speculation window is fetched first; inside a window, the direction
// taken at nested branches.
func (e *expander) emitIf(t int, n If, transient bool, budget int) int {
	// Record ctrl sources: loads feeding the condition.
	var added int
	for _, r := range n.Cond {
		if def := e.regDef[t][r]; def != nil {
			e.ctrl[t] = append(e.ctrl[t], def)
			added++
		}
	}
	defer func() { e.ctrl[t] = e.ctrl[t][:len(e.ctrl[t])-added] }()

	if transient {
		dir := e.choose(2)
		blk := n.Then
		if dir == 1 {
			blk = n.Else
		}
		return e.emitBlock(t, blk, true, budget)
	}

	outcome := e.choose(2)
	right, wrong := n.Then, n.Else
	if outcome == 1 {
		right, wrong = n.Else, n.Then
	}

	if e.opts.Depth > 0 {
		if e.choose(2) == 1 {
			// Fetch up to Depth transient instructions down the wrong path,
			// then roll back. A window that runs off the end of the wrong
			// path reaches a speculative ⊥ (Fig. 2b) when observers are on.
			rem := e.emitBlock(t, wrong, true, e.opts.Depth)
			if rem > 0 && e.opts.Observer {
				e.b.TransientBottom(t)
			}
		}
	}
	return e.emitBlock(t, right, false, budget)
}
