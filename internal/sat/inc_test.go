package sat

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lcm/internal/faults"
)

// This file is the incremental leg of the solver-equivalence battery: the
// DPLL oracle of ref_test.go is extended from single calls to *sequences*
// of assumption-set solves interleaved with clause additions, exactly the
// shape the detection engines drive (one warm solver per function, many
// candidate queries sharing assumption prefixes). Every verdict in a
// sequence must match a from-scratch reference decision of the same
// formula under the same assumptions; prefix reuse, root-unit promotion,
// and phase saving may only change effort, never answers.

// refDecide is the reference verdict for clauses under assumptions: the
// assumptions are appended as unit clauses and the whole formula is
// decided by DPLL from scratch.
func refDecide(nVars int, clauses [][]Lit, assumptions []Lit) bool {
	all := append([][]Lit{}, clauses...)
	for _, a := range assumptions {
		all = append(all, []Lit{a})
	}
	return refSolve(nVars, all)
}

// randomAssumptions draws n distinct-variable assumption literals.
func randomAssumptions(rng *rand.Rand, nVars, n int) []Lit {
	seen := map[int]bool{}
	var out []Lit
	for len(out) < n {
		v := 1 + rng.Intn(nVars)
		if seen[v] {
			continue
		}
		seen[v] = true
		l := Lit(v)
		if rng.Intn(2) == 0 {
			l = -l
		}
		out = append(out, l)
	}
	return out
}

// TestDifferentialIncrementalSequences runs seeded random *query
// sequences* on one warm solver — assumption sets that share prefixes with
// their predecessor, plus occasional clause additions mid-sequence — and
// cross-checks every verdict against the DPLL reference solving from
// scratch. This is the property the per-function candidate sweep relies
// on: a warm solver is verdict-equivalent to a fresh one at every step.
func TestDifferentialIncrementalSequences(t *testing.T) {
	const instances = 300
	rng := rand.New(rand.NewSource(20260808))
	var totalPrefix int64
	for i := 0; i < instances; i++ {
		nVars := 4 + rng.Intn(9)              // 4..12
		nClauses := nVars * (2 + rng.Intn(3)) // ratios 2..4
		clauses := randomCNF(rng, nVars, nClauses)

		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		dead := false // AddClause found top-level unsat
		for _, c := range clauses {
			if !s.AddClause(append([]Lit(nil), c...)...) {
				dead = true
				break
			}
		}
		if dead {
			if refSolve(nVars, clauses) {
				t.Fatalf("instance %d: AddClause says unsat, reference says sat", i)
			}
			continue
		}

		var prev []Lit
		for step, steps := 0, 4+rng.Intn(6); step < steps; step++ {
			// Mutate the assumption set: keep a random prefix of the
			// previous one (biasing toward long shared prefixes, the shape
			// the candidate loops produce) and append a fresh tail.
			keep := 0
			if len(prev) > 0 {
				keep = rng.Intn(len(prev) + 1)
			}
			assumptions := append([]Lit(nil), prev[:keep]...)
			assumptions = append(assumptions, randomAssumptions(rng, nVars, 1+rng.Intn(3))...)
			prev = assumptions

			want := refDecide(nVars, clauses, assumptions)
			got := s.Solve(assumptions...)
			tag := fmt.Sprintf("instance %d step %d assumptions=%v", i, step, assumptions)
			if got == Unknown {
				t.Fatalf("%s: unexpected Unknown", tag)
			}
			if (got == Sat) != want {
				t.Fatalf("%s: warm solver=%v reference=%v", tag, got, want)
			}
			if got == Sat {
				withUnits := append([][]Lit{}, clauses...)
				for _, a := range assumptions {
					withUnits = append(withUnits, []Lit{a})
				}
				checkModel(t, s, withUnits, tag)
			}

			// Occasionally grow the formula mid-sequence, as the lazy
			// window encoding does between candidate queries.
			if rng.Intn(3) == 0 {
				extra := randomCNF(rng, nVars, 1)[0]
				clauses = append(clauses, extra)
				if !s.AddClause(append([]Lit(nil), extra...)...) {
					if refSolve(nVars, clauses) {
						t.Fatalf("instance %d step %d: AddClause says unsat, reference says sat", i, step)
					}
					break
				}
			}
		}
		totalPrefix += s.IncrementalStats().PrefixLits
	}
	// The sweep must actually exercise the warm path: with prefix-biased
	// sequences over 300 instances, reuse firing zero times means the
	// incremental machinery is dead code.
	if totalPrefix == 0 {
		t.Fatal("assumption-prefix reuse never fired across the differential sweep")
	}
}

// TestAssumptionPrefixReuse pins the reuse accounting: consecutive calls
// sharing a leading prefix keep exactly that many trail levels, and the
// verdicts are unchanged from a fresh solver's.
func TestAssumptionPrefixReuse(t *testing.T) {
	s := New()
	a, b, c, d := Lit(s.NewVar()), Lit(s.NewVar()), Lit(s.NewVar()), Lit(s.NewVar())
	x := Lit(s.NewVar())
	s.AddClause(a.Neg(), x)          // a → x
	s.AddClause(b.Neg(), x.Neg(), d) // b ∧ x → d

	if st := s.Solve(a, b, c); st != Sat {
		t.Fatalf("first solve = %v, want Sat", st)
	}
	if got := s.IncrementalStats().PrefixLits; got != 0 {
		t.Fatalf("PrefixLits after first solve = %d, want 0", got)
	}
	// Shares the 2-assumption prefix [a, b].
	if st := s.Solve(a, b, d.Neg()); st != Unsat {
		t.Fatalf("second solve = %v, want Unsat (a∧b force d)", st)
	}
	if got := s.IncrementalStats().PrefixLits; got != 2 {
		t.Fatalf("PrefixLits after prefix-sharing solve = %d, want 2", got)
	}
	// Diverges at position 0: nothing reusable.
	if st := s.Solve(a.Neg(), b); st != Sat {
		t.Fatalf("third solve = %v, want Sat", st)
	}
	if got := s.IncrementalStats().PrefixLits; got != 2 {
		t.Fatalf("PrefixLits after divergent solve = %d, want 2 (unchanged)", got)
	}
	// A failed-assumption core must still be available on the warm path.
	if st := s.Solve(a, b, d.Neg()); st != Unsat {
		t.Fatalf("fourth solve = %v, want Unsat", st)
	}
	if core := s.FailedAssumptions(); len(core) == 0 {
		t.Fatal("empty failed-assumption core after warm Unsat")
	}
}

// TestRootUnitPromotion pins the clause-DB diet: once a fact reaches the
// root level, clauses it satisfies disappear from the database and
// literals it falsifies are stripped from clause tails.
func TestRootUnitPromotion(t *testing.T) {
	s := New()
	x, y, z := Lit(s.NewVar()), Lit(s.NewVar()), Lit(s.NewVar())
	s.AddClause(x, y)          // satisfied once x is a root fact
	s.AddClause(x.Neg(), y, z) // ¬x strippable once x is a root fact
	s.AddClause(y, z)          // untouched
	before := s.NumClauses()
	if before != 3 {
		t.Fatalf("NumClauses = %d, want 3", before)
	}
	s.AddClause(x) // root unit
	if st := s.Solve(); st != Sat {
		t.Fatalf("solve = %v, want Sat", st)
	}
	inc := s.IncrementalStats()
	if inc.RootUnits == 0 {
		t.Fatal("RootUnits = 0, want the promoted fact counted")
	}
	if inc.RemovedClauses != 1 {
		t.Fatalf("RemovedClauses = %d, want 1 (x ∨ y satisfied by root x)", inc.RemovedClauses)
	}
	if inc.StrippedLits != 1 {
		t.Fatalf("StrippedLits = %d, want 1 (¬x stripped from ¬x ∨ y ∨ z)", inc.StrippedLits)
	}
	if got := s.NumClauses(); got != before-1 {
		t.Fatalf("NumClauses after promotion = %d, want %d", got, before-1)
	}
	// The simplified database must still decide correctly.
	if st := s.Solve(y.Neg(), z.Neg()); st != Unsat {
		t.Fatalf("solve(¬y, ¬z) = %v, want Unsat (clause y ∨ z)", st)
	}
	if st := s.Solve(y.Neg()); st != Sat {
		t.Fatalf("solve(¬y) = %v, want Sat via z", st)
	}
}

// TestPhaseSavingAcrossCalls pins that the last assigned polarity of a
// variable survives into the next call's branching, the cheap form of
// warm-start the candidate sweep leans on.
func TestPhaseSavingAcrossCalls(t *testing.T) {
	s := New()
	v := s.NewVar()
	// Default phase is false.
	if st := s.Solve(); st != Sat || s.Value(v) {
		t.Fatalf("default-phase solve: st=%v value=%v, want Sat/false", st, s.Value(v))
	}
	// Force the variable true under an assumption; the retract must save
	// the polarity.
	if st := s.Solve(Lit(v)); st != Sat || !s.Value(v) {
		t.Fatalf("assumption solve: st=%v value=%v, want Sat/true", st, s.Value(v))
	}
	// A free solve now branches on the saved phase: true.
	if st := s.Solve(); st != Sat || !s.Value(v) {
		t.Fatalf("phase-saved solve: st=%v value=%v, want Sat/true", st, s.Value(v))
	}
}

// TestBudgetPerCallBaselineAcrossWarmSweep pins that every SolveCtx call
// of a warm assumption sweep gets its own effort budget measured from its
// own baseline — warm state must not pre-charge later calls — and that
// abort classification is unchanged on the incremental path.
func TestBudgetPerCallBaselineAcrossWarmSweep(t *testing.T) {
	s := New()
	encodePigeonhole(s, 9, 8)
	// Free selector variables: assumption prefixes without constraining
	// the pigeonhole core.
	a1, a2, a3 := Lit(s.NewVar()), Lit(s.NewVar()), Lit(s.NewVar())
	s.SetBudget(Budget{Conflicts: 50})

	sweep := [][]Lit{{a1}, {a1, a2}, {a1, a2, a3}}
	prevConflicts := int64(0)
	for i, assumptions := range sweep {
		st := s.SolveCtx(context.Background(), assumptions...)
		if st != Unknown {
			t.Fatalf("sweep call %d = %v, want Unknown under a 50-conflict budget", i, st)
		}
		if cause := s.AbortCause(); !errors.Is(cause, faults.ErrBudget) {
			t.Fatalf("sweep call %d AbortCause = %v, want faults.ErrBudget", i, cause)
		}
		_, _, conflicts := s.Stats()
		if spent := conflicts - prevConflicts; spent < 50 {
			t.Fatalf("sweep call %d spent %d conflicts, want ≥ 50 (budget must reset per call)", i, spent)
		}
		prevConflicts = conflicts
	}

	// Decisions leg: same per-call-baseline contract.
	s.SetBudget(Budget{Decisions: 10})
	prevDecisions, _, _ := s.Stats()
	for i, assumptions := range sweep {
		if st := s.SolveCtx(context.Background(), assumptions...); st != Unknown {
			t.Fatalf("decision sweep call %d = %v, want Unknown", i, st)
		}
		if cause := s.AbortCause(); !errors.Is(cause, faults.ErrBudget) {
			t.Fatalf("decision sweep call %d AbortCause = %v, want faults.ErrBudget", i, cause)
		}
		decisions, _, _ := s.Stats()
		if spent := decisions - prevDecisions; spent < 10 {
			t.Fatalf("decision sweep call %d spent %d decisions, want ≥ 10", i, spent)
		}
		prevDecisions = decisions
	}

	// Lifting the budget decides honestly from the warm state.
	s.SetBudget(Budget{})
	if st := s.SolveCtx(context.Background(), a1, a2); st != Unsat {
		t.Fatalf("unbudgeted warm solve = %v, want Unsat (PHP(9,8))", st)
	}
	if cause := s.AbortCause(); cause != nil {
		t.Fatalf("AbortCause = %v after a decided warm solve, want nil", cause)
	}
}
