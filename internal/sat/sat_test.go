package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Lit(a))
	if s.Solve() != Sat {
		t.Fatal("unsat")
	}
	if !s.Value(a) {
		t.Error("model: a should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(Lit(a))
	if ok := s.AddClause(Lit(-a)); ok {
		t.Error("AddClause should report top-level contradiction")
	}
	if s.Solve() != Unsat {
		t.Fatal("expected unsat")
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// a, a→b, b→c, c→d: all forced true.
	s := New()
	a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Lit(a))
	s.AddClause(Lit(-a), Lit(b))
	s.AddClause(Lit(-b), Lit(c))
	s.AddClause(Lit(-c), Lit(d))
	if s.Solve() != Sat {
		t.Fatal("unsat")
	}
	for _, v := range []int{a, b, c, d} {
		if !s.Value(v) {
			t.Errorf("var %d should be true", v)
		}
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Error("empty clause accepted")
	}
	if s.Solve() != Unsat {
		t.Error("expected unsat")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	if !s.AddClause(Lit(a), Lit(-a)) {
		t.Error("tautology rejected")
	}
	if s.NumClauses() != 0 {
		t.Error("tautology stored")
	}
	if s.Solve() != Sat {
		t.Error("unsat")
	}
}

func TestXorChain(t *testing.T) {
	// x1 ⊕ x2 = 1, x2 ⊕ x3 = 1, x1 = x3 forced; add x1 ≠ x3 → unsat.
	s := New()
	x1, x2, x3 := s.NewVar(), s.NewVar(), s.NewVar()
	addXor := func(a, b int, val bool) {
		if val {
			s.AddClause(Lit(a), Lit(b))
			s.AddClause(Lit(-a), Lit(-b))
		} else {
			s.AddClause(Lit(-a), Lit(b))
			s.AddClause(Lit(a), Lit(-b))
		}
	}
	addXor(x1, x2, true)
	addXor(x2, x3, true)
	addXor(x1, x3, false) // consistent: x1 == x3
	if s.Solve() != Sat {
		t.Fatal("consistent xor system unsat")
	}
	addXor(x1, x3, true) // now contradictory
	if s.Solve() != Unsat {
		t.Fatal("contradictory xor system sat")
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons in n holes — classically
// unsat and a good stress test for clause learning.
func pigeonhole(t *testing.T, pigeons, holes int) Status {
	t.Helper()
	s := New()
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = make([]int, holes)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	// Every pigeon in some hole.
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = Lit(p[i][j])
		}
		s.AddClause(lits...)
	}
	// No two pigeons share a hole.
	for j := 0; j < holes; j++ {
		for i1 := 0; i1 < pigeons; i1++ {
			for i2 := i1 + 1; i2 < pigeons; i2++ {
				s.AddClause(Lit(-p[i1][j]), Lit(-p[i2][j]))
			}
		}
	}
	return s.Solve()
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		if got := pigeonhole(t, n+1, n); got != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want unsat", n+1, n, got)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	if got := pigeonhole(t, 5, 5); got != Sat {
		t.Errorf("PHP(5,5) = %v, want sat", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Lit(-a), Lit(b)) // a → b
	if s.Solve(Lit(a), Lit(-b)) != Unsat {
		t.Fatal("a ∧ ¬b ∧ (a→b) should be unsat")
	}
	core := s.FailedAssumptions()
	if len(core) == 0 {
		t.Fatal("empty failed-assumption set")
	}
	// Solver remains usable and Sat without assumptions.
	if s.Solve() != Sat {
		t.Fatal("solver not reusable after assumption conflict")
	}
	if s.Solve(Lit(a)) != Sat {
		t.Fatal("a alone should be sat")
	}
	if !s.Value(a) || !s.Value(b) {
		t.Error("model violates a→b under assumption a")
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Lit(a), Lit(b))
	if s.Solve() != Sat {
		t.Fatal("unsat")
	}
	s.AddClause(Lit(-a))
	s.AddClause(Lit(-b), Lit(c))
	if s.Solve() != Sat {
		t.Fatal("unsat after increment")
	}
	if s.Value(a) || !s.Value(b) || !s.Value(c) {
		t.Error("model wrong after incremental additions")
	}
	s.AddClause(Lit(-c))
	if s.Solve() != Unsat {
		t.Fatal("expected unsat after closing the chain")
	}
}

// brute checks satisfiability by exhaustive enumeration (≤ 20 vars).
func brute(nVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := m&(1<<(l.Var()-1)) != 0
				if val == l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Property: CDCL agrees with brute force on random 3-SAT instances, and on
// Sat the returned model satisfies every clause.
func TestQuickRandom3SATAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 4 + rng.Intn(8)
		nClauses := 5 + rng.Intn(30)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var clauses [][]Lit
		for i := 0; i < nClauses; i++ {
			var c []Lit
			width := 1 + rng.Intn(3)
			for k := 0; k < width; k++ {
				v := 1 + rng.Intn(nVars)
				l := Lit(v)
				if rng.Intn(2) == 0 {
					l = -l
				}
				c = append(c, l)
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		got := s.Solve()
		want := brute(nVars, clauses)
		if (got == Sat) != want {
			return false
		}
		if got == Sat {
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.Value(l.Var()) == l.Sign() {
						sat = true
					}
				}
				if !sat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGraphColoring(t *testing.T) {
	// K4 is 4-colorable but not 3-colorable.
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	color := func(k int) Status {
		s := New()
		v := make([][]int, 4)
		for i := range v {
			v[i] = make([]int, k)
			for j := range v[i] {
				v[i][j] = s.NewVar()
			}
			lits := make([]Lit, k)
			for j := range v[i] {
				lits[j] = Lit(v[i][j])
			}
			s.AddClause(lits...)
		}
		for _, e := range edges {
			for j := 0; j < k; j++ {
				s.AddClause(Lit(-v[e[0]][j]), Lit(-v[e[1]][j]))
			}
		}
		return s.Solve()
	}
	if color(3) != Unsat {
		t.Error("K4 3-colored")
	}
	if color(4) != Sat {
		t.Error("K4 not 4-colorable")
	}
}

func TestStatsAndAccessors(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(Lit(a), Lit(b))
	s.AddClause(Lit(-a), Lit(b))
	if s.NumVars() != 2 || s.NumClauses() != 2 {
		t.Errorf("NumVars/NumClauses = %d/%d", s.NumVars(), s.NumClauses())
	}
	if s.Solve() != Sat {
		t.Fatal("unsat")
	}
	m := s.Model()
	if len(m) != 2 || !m[b] {
		t.Errorf("Model = %v", m)
	}
	d, p, c := s.Stats()
	if d < 0 || p < 0 || c < 0 {
		t.Error("stats negative")
	}
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("status strings")
	}
}

func TestLitHelpers(t *testing.T) {
	l := Lit(5)
	if l.Var() != 5 || !l.Sign() || l.Neg() != Lit(-5) || l.Neg().Var() != 5 || l.Neg().Sign() {
		t.Error("Lit helpers broken")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestAddClausePanicsOnBadLit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New()
	s.AddClause(Lit(1)) // var 1 not allocated
}

func TestManyAssumptionLevels(t *testing.T) {
	// Assumptions that are already implied (empty decision levels) must
	// not confuse the solver.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(Lit(a))
	s.AddClause(Lit(-a), Lit(b))
	if s.Solve(Lit(a), Lit(b), Lit(c)) != Sat {
		t.Fatal("unsat")
	}
	if !s.Value(c) {
		t.Error("assumption c not honored")
	}
}
