package sat

import (
	"context"
	"errors"
	"testing"

	"lcm/internal/faults"
)

// TestConflictBudgetClassifiedNotUnsat: PHP(9,8) is unsatisfiable but
// needs far more than 50 conflicts to refute; a conflict budget that
// small must abort with Unknown — never a misleading Unsat — and
// AbortCause must classify the abort as faults.ErrBudget.
func TestConflictBudgetClassifiedNotUnsat(t *testing.T) {
	s := New()
	encodePigeonhole(s, 9, 8)
	s.SetBudget(Budget{Conflicts: 50})
	st := s.SolveCtx(context.Background())
	if st == Unsat {
		t.Fatal("budget-aborted solve reported Unsat: an exhausted budget proved nothing")
	}
	if st != Unknown {
		t.Fatalf("status = %v, want Unknown under an exhausted conflict budget", st)
	}
	cause := s.AbortCause()
	if !errors.Is(cause, faults.ErrBudget) {
		t.Fatalf("AbortCause = %v, want faults.ErrBudget", cause)
	}
	if faults.Kind(cause) != "budget" {
		t.Fatalf("Kind(AbortCause) = %q, want budget", faults.Kind(cause))
	}
}

// TestDecisionBudgetClassified exercises the decision-count leg of the
// budget with the same must-not-conclude contract.
func TestDecisionBudgetClassified(t *testing.T) {
	s := New()
	encodePigeonhole(s, 9, 8)
	s.SetBudget(Budget{Decisions: 10})
	if st := s.SolveCtx(context.Background()); st != Unknown {
		t.Fatalf("status = %v, want Unknown under an exhausted decision budget", st)
	}
	if cause := s.AbortCause(); !errors.Is(cause, faults.ErrBudget) {
		t.Fatalf("AbortCause = %v, want faults.ErrBudget", cause)
	}
}

// TestBudgetAbortDistinctFromCancellation: the taxonomy must separate
// effort exhaustion from context cancellation — consumers retry them
// differently.
func TestBudgetAbortDistinctFromCancellation(t *testing.T) {
	s := New()
	encodePigeonhole(s, 9, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := s.SolveCtx(ctx); st != Unknown {
		t.Fatalf("status = %v, want Unknown under cancelled ctx", st)
	}
	cause := s.AbortCause()
	if !errors.Is(cause, faults.ErrCanceled) {
		t.Fatalf("AbortCause = %v, want faults.ErrCanceled", cause)
	}
	if errors.Is(cause, faults.ErrBudget) {
		t.Fatal("cancellation misclassified as budget exhaustion")
	}
}

// TestBudgetLiftedSolvesHonestly: the solver must stay reusable after a
// budget abort, and removing the budget must let the same query finish
// with a real verdict (and a nil AbortCause).
func TestBudgetLiftedSolvesHonestly(t *testing.T) {
	s := New()
	encodePigeonhole(s, 5, 4)
	s.SetBudget(Budget{Conflicts: 1})
	if st := s.SolveCtx(context.Background()); st != Unknown {
		t.Fatalf("status = %v, want Unknown under a 1-conflict budget", st)
	}
	s.SetBudget(Budget{})
	if st := s.SolveCtx(context.Background()); st != Unsat {
		t.Fatalf("status = %v, want Unsat with the budget lifted", st)
	}
	if cause := s.AbortCause(); cause != nil {
		t.Fatalf("AbortCause = %v after a completed solve, want nil", cause)
	}
}

// TestBudgetPerSolveNotCumulative: the budget bounds each SolveCtx call
// independently, so a solver that just spent conflicts on one query is
// not pre-exhausted for the next.
func TestBudgetPerSolveNotCumulative(t *testing.T) {
	s := New()
	encodePigeonhole(s, 5, 4)
	s.SetBudget(Budget{Conflicts: 5000})
	if st := s.SolveCtx(context.Background()); st != Unsat {
		t.Skip("PHP(5,4) did not finish under 5000 conflicts")
	}
	// Run it again: the second call gets its own 5000 conflicts.
	if st := s.SolveCtx(context.Background()); st != Unsat {
		t.Fatalf("second solve = %v, want Unsat (budget must reset per call)", st)
	}
}
