package sat

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file is the differential oracle for the CDCL solver: a naive DPLL
// reference solver (unit propagation + chronological backtracking, no
// learning, no heuristics — simple enough to audit by eye) is run against
// sat.Solver on ~1k seeded random CNF instances around the 3-SAT phase
// transition. Verdicts must agree exactly; Sat verdicts must additionally
// come with a model that satisfies every clause.

// refSolve decides satisfiability of the clause set by DPLL. Variables
// are 1..nVars; assignment values are 0 (unset), 1 (true), -1 (false).
func refSolve(nVars int, clauses [][]Lit) bool {
	assign := make([]int8, nVars+1)
	return refDPLL(assign, clauses)
}

func refDPLL(assign []int8, clauses [][]Lit) bool {
	// Unit propagation to fixpoint.
	trail := []int{}
	for {
		unitFound := false
		for _, c := range clauses {
			sat := false
			unassigned := 0
			var unit Lit
			for _, l := range c {
				switch val(assign, l) {
				case 1:
					sat = true
				case 0:
					unassigned++
					unit = l
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			if unassigned == 0 {
				// Conflict: undo propagation before returning.
				for _, v := range trail {
					assign[v] = 0
				}
				return false
			}
			if unassigned == 1 {
				set(assign, unit)
				trail = append(trail, unit.Var())
				unitFound = true
			}
		}
		if !unitFound {
			break
		}
	}

	// Pick the first unassigned variable and branch.
	branch := 0
	for v := 1; v < len(assign); v++ {
		if assign[v] == 0 {
			branch = v
			break
		}
	}
	if branch == 0 {
		// Complete assignment with no conflict: satisfiable.
		for _, v := range trail {
			assign[v] = 0
		}
		return true
	}
	for _, sign := range []int8{1, -1} {
		assign[branch] = sign
		if refDPLL(assign, clauses) {
			assign[branch] = 0
			for _, v := range trail {
				assign[v] = 0
			}
			return true
		}
	}
	assign[branch] = 0
	for _, v := range trail {
		assign[v] = 0
	}
	return false
}

func val(assign []int8, l Lit) int8 {
	a := assign[l.Var()]
	if a == 0 {
		return 0
	}
	if (a == 1) == l.Sign() {
		return 1
	}
	return -1
}

func set(assign []int8, l Lit) {
	if l.Sign() {
		assign[l.Var()] = 1
	} else {
		assign[l.Var()] = -1
	}
}

// randomCNF generates a random k-CNF instance. Clause lengths vary in
// [1, 3] with a bias toward 3, so unit clauses and binary clauses (the
// propagation-heavy shapes) are exercised too.
func randomCNF(rng *rand.Rand, nVars, nClauses int) [][]Lit {
	clauses := make([][]Lit, nClauses)
	for i := range clauses {
		length := 3
		switch rng.Intn(10) {
		case 0:
			length = 1
		case 1, 2:
			length = 2
		}
		c := make([]Lit, 0, length)
		for len(c) < length {
			v := 1 + rng.Intn(nVars)
			l := Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			dup := false
			for _, e := range c {
				if e.Var() == v {
					dup = true
					break
				}
			}
			if !dup {
				c = append(c, l)
			}
		}
		clauses[i] = c
	}
	return clauses
}

// checkModel verifies the solver's model satisfies every clause.
func checkModel(t *testing.T, s *Solver, clauses [][]Lit, tag string) {
	t.Helper()
	for ci, c := range clauses {
		ok := false
		for _, l := range c {
			if s.Value(l.Var()) == l.Sign() {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("%s: model violates clause %d: %v", tag, ci, c)
		}
	}
}

// TestDifferentialRandomCNF cross-checks sat.Solver against the DPLL
// reference on seeded random instances spanning the under- and
// over-constrained regimes (clause/variable ratios 2..6 around the ~4.27
// 3-SAT phase transition).
func TestDifferentialRandomCNF(t *testing.T) {
	const instances = 1000
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < instances; i++ {
		nVars := 3 + rng.Intn(10)             // 3..12
		ratio := 2 + rng.Intn(5)              // 2..6
		nClauses := nVars*ratio + rng.Intn(4) // jitter off the grid
		clauses := randomCNF(rng, nVars, nClauses)

		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		top := true // false once AddClause detected top-level unsat
		for _, c := range clauses {
			if !s.AddClause(c...) {
				top = false
				break
			}
		}
		want := refSolve(nVars, clauses)
		tag := fmt.Sprintf("instance %d (vars=%d clauses=%d)", i, nVars, nClauses)
		if !top {
			if want {
				t.Fatalf("%s: AddClause says unsat, reference says sat", tag)
			}
			continue
		}
		got := s.Solve()
		if got == Unknown {
			t.Fatalf("%s: unexpected Unknown", tag)
		}
		if (got == Sat) != want {
			t.Fatalf("%s: solver=%v reference=%v", tag, got, want)
		}
		if got == Sat {
			checkModel(t, s, clauses, tag)
		}
	}
}

// TestDifferentialAssumptions cross-checks Solve under assumption
// literals: the verdict must match the reference run on clauses plus the
// assumptions as unit clauses, and the incremental solver must stay
// reusable (a second call without assumptions matches the plain verdict).
func TestDifferentialAssumptions(t *testing.T) {
	const instances = 300
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < instances; i++ {
		nVars := 4 + rng.Intn(8)
		nClauses := nVars * (2 + rng.Intn(3))
		clauses := randomCNF(rng, nVars, nClauses)

		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		top := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				top = false
				break
			}
		}
		if !top {
			continue // covered by the plain differential test
		}

		nAssume := 1 + rng.Intn(3)
		seen := map[int]bool{}
		var assumptions []Lit
		for len(assumptions) < nAssume {
			v := 1 + rng.Intn(nVars)
			if seen[v] {
				continue
			}
			seen[v] = true
			l := Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			assumptions = append(assumptions, l)
		}

		withUnits := append([][]Lit{}, clauses...)
		for _, a := range assumptions {
			withUnits = append(withUnits, []Lit{a})
		}
		want := refSolve(nVars, withUnits)
		tag := fmt.Sprintf("instance %d assumptions=%v", i, assumptions)
		got := s.Solve(assumptions...)
		if (got == Sat) != want {
			t.Fatalf("%s: solver=%v reference=%v", tag, got, want)
		}
		if got == Sat {
			checkModel(t, s, withUnits, tag)
		}

		// The solver must remain usable after an assumption query.
		plainWant := refSolve(nVars, clauses)
		plainGot := s.Solve()
		if (plainGot == Sat) != plainWant {
			t.Fatalf("%s: post-assumption solve=%v reference=%v", tag, plainGot, plainWant)
		}
	}
}
