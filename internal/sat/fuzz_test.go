package sat

import (
	"fmt"
	"testing"
)

// FuzzIncrementalSolve feeds the warm solver random interleavings of
// clause additions and assumption-set queries decoded from the fuzz input,
// cross-checking every verdict against the DPLL reference deciding from
// scratch. It is the open-ended arm of the solver-equivalence battery:
// the seeded differential tests replay fixed distributions, the fuzzer
// explores op sequences those distributions never draw (deep shared
// prefixes after Unsat returns, clause additions between every query,
// repeated identical assumption sets, ...).
//
// Input format (byte-oriented so the mutator stays effective):
//
//	byte 0      nVars = 4 + b%9            (4..12, DPLL-tractable)
//	then ops:   opcode b%4 == 0  → add a clause
//	                               (len byte → 1..3, then len lit bytes)
//	            opcode b%4 != 0  → solve under assumptions
//	                               (count byte → 1..3, then count lit bytes)
//	lit byte:   var = 1 + b%nVars, negated when b has bit 7 set
func FuzzIncrementalSolve(f *testing.F) {
	// Seeds: the shrunk kernel of the first real soundness bug this battery
	// caught (an Unsat-under-assumptions return kept a conflicting trail
	// prefix that poisoned the next query's reuse), plus minimal shapes for
	// each opcode path.
	f.Add([]byte{
		2,       // nVars = 6
		0, 0, 5, // add {x5}  — wants a root unit early
		0, 1, 0x85, 0x81, // add {¬x6, ¬x2}
		0, 2, 4, 0x82, 5, // add {x5, ¬x3, x6}
		1, 1, 0x82, // solve {¬x3}
		1, 2, 0, 2, // solve {x1, x3}
		2, 2, 0, 2, // solve {x1, x3} again (full prefix reuse)
		0, 1, 0x80, 1, // add {¬x1, x2}
		3, 2, 0, 2, 4, // solve {x1, x3, x5}
	})
	f.Add([]byte{0, 1, 0, 1, 1, 0x80})          // add then contradict via assumption
	f.Add([]byte{8, 1, 1, 2, 0, 3, 0, 1, 2, 3}) // query-first, clause later
	f.Add([]byte{5, 0, 0, 3, 0, 0, 0x83})       // root unit then its negation: top-level unsat

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 256 {
			return
		}
		nVars := 4 + int(data[0])%9
		data = data[1:]

		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		var clauses [][]Lit

		readLits := func(n int) ([]Lit, bool) {
			if len(data) < n {
				return nil, false
			}
			seen := map[int]bool{}
			var lits []Lit
			for _, b := range data[:n] {
				v := 1 + int(b&0x7f)%nVars
				if seen[v] {
					continue
				}
				seen[v] = true
				l := Lit(v)
				if b&0x80 != 0 {
					l = -l
				}
				lits = append(lits, l)
			}
			data = data[n:]
			return lits, true
		}

		queries, adds := 0, 0
		for len(data) >= 2 && queries < 16 && adds < 48 {
			op := data[0] % 4
			n := 1 + int(data[1])%3
			data = data[2:]
			lits, ok := readLits(n)
			if !ok {
				break
			}
			if op == 0 {
				adds++
				clauses = append(clauses, lits)
				if !s.AddClause(append([]Lit(nil), lits...)...) {
					// Top-level unsat: the reference must agree, and every
					// later verdict is pinned to Unsat, so stop here.
					if refSolve(nVars, clauses) {
						t.Fatalf("AddClause reports top-level unsat, reference says sat (clauses=%v)", clauses)
					}
					return
				}
				continue
			}
			queries++
			want := refDecide(nVars, clauses, lits)
			got := s.Solve(lits...)
			tag := fmt.Sprintf("query %d assumptions=%v clauses=%v", queries, lits, clauses)
			if got == Unknown {
				t.Fatalf("%s: unexpected Unknown", tag)
			}
			if (got == Sat) != want {
				t.Fatalf("%s: warm solver=%v reference=%v", tag, got, want)
			}
			if got == Sat {
				withUnits := append([][]Lit{}, clauses...)
				for _, a := range lits {
					withUnits = append(withUnits, []Lit{a})
				}
				checkModel(t, s, withUnits, tag)
			}
		}
	})
}
