package sat

import (
	"context"
	"testing"
	"time"
)

// encodePigeonhole encodes PHP(pigeons, holes): every pigeon sits in some hole,
// no two pigeons share a hole. Unsatisfiable when pigeons > holes, and
// exponentially hard for CDCL/resolution — a single Solve call runs far
// longer than any per-function budget, which is exactly the shape the
// context plumbing must interrupt.
func encodePigeonhole(s *Solver, pigeons, holes int) {
	vars := make([][]Lit, pigeons)
	for p := 0; p < pigeons; p++ {
		vars[p] = make([]Lit, holes)
		for h := 0; h < holes; h++ {
			vars[p][h] = Lit(s.NewVar())
		}
		s.AddClause(vars[p]...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(vars[p1][h].Neg(), vars[p2][h].Neg())
			}
		}
	}
}

func TestSolveCtxInterruptsMidQuery(t *testing.T) {
	s := New()
	encodePigeonhole(s, 12, 11)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	st := s.SolveCtx(ctx)
	elapsed := time.Since(start)
	if st != Unknown {
		// A machine fast enough to refute PHP(12,11) in 50ms would be
		// remarkable; treat it as a pass if it genuinely finished.
		if st == Unsat && elapsed < 50*time.Millisecond {
			t.Skip("solver refuted PHP(12,11) inside the deadline")
		}
		t.Fatalf("status = %v, want Unknown after cancellation", st)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to bind; the poll loop is broken", elapsed)
	}
}

func TestSolverReusableAfterInterrupt(t *testing.T) {
	s := New()
	// A satisfiable formula: PHP(5,5) has models but enough structure to
	// exercise the search once resumed.
	encodePigeonhole(s, 5, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := s.SolveCtx(ctx); st != Unknown {
		t.Fatalf("pre-cancelled ctx: status = %v, want Unknown", st)
	}
	// The solver must stay usable after the interrupt.
	a, b := Lit(s.NewVar()), Lit(s.NewVar())
	s.AddClause(a, b)
	if st := s.Solve(a); st != Sat {
		t.Fatalf("post-interrupt Solve = %v, want Sat", st)
	}
	if !s.Value(a.Var()) {
		t.Fatal("assumption not honored in model")
	}
}

func TestSolveCtxBackgroundUnchanged(t *testing.T) {
	s := New()
	x, y := Lit(s.NewVar()), Lit(s.NewVar())
	s.AddClause(x, y)
	s.AddClause(x.Neg(), y)
	if st := s.SolveCtx(context.Background()); st != Sat {
		t.Fatalf("status = %v, want Sat", st)
	}
	if !s.Value(y.Var()) {
		t.Fatal("y must be true in every model")
	}
}
