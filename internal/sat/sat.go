// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-watched-literal propagation, VSIDS-style activity
// ordering, phase saving, first-UIP clause learning with recursive
// minimization, and Luby restarts. It is the decision engine underneath
// the smt package, standing in for the Z3 solver Clou uses (§5.3): the
// S-AEG queries Clou issues are propositional over edge-presence and
// aliasing variables, so a CDCL core is sufficient.
package sat

import (
	"context"
	"errors"
	"sort"

	"lcm/internal/faults"
)

// Lit is a literal: variable index (1-based) with sign. Positive values
// denote the variable, negative its negation (DIMACS convention).
type Lit int

// Var returns the literal's variable index (1-based).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the negated literal.
func (l Lit) Neg() Lit { return -l }

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

// Status is a solver verdict.
type Status int

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; construct
// with New.
type Solver struct {
	nVars   int
	clauses []*clause
	learnts []*clause
	// watches is indexed by watchIdx(lit): 2v for the positive literal of
	// variable v, 2v+1 for the negative.
	watches [][]watcher

	assigns  []lbool // 1-based by var
	level    []int
	reason   []*clause
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	polarity []bool // saved phases
	order    *varHeap

	clauseInc    float64
	conflicts    int64
	propagations int64
	decisions    int64
	restarts     int64

	// assumption handling
	assumptions []Lit
	conflictSet map[int]bool // vars of failed assumptions

	// incremental-solve state: lastAssumed mirrors the assumption list of
	// the previous SolveCtx so the next call can keep the shared leading
	// prefix of the trail enqueued instead of rewinding to the root;
	// simplifiedAt is the root-trail length at the last clause-DB
	// simplification, so simplifyDB only walks the database when new
	// level-0 facts arrived.
	lastAssumed  []Lit
	simplifiedAt int
	inc          IncStats

	modelVal    []bool // satisfying assignment captured at Sat time
	seenScratch []bool // reusable conflict-analysis buffer

	// budget bounds one SolveCtx call's search effort; abortCause records
	// why the last SolveCtx returned Unknown (see AbortCause).
	budget     Budget
	abortCause error

	ok bool // false once a top-level contradiction is found
}

// Budget bounds one solve call's search effort. Zero fields are
// unlimited. Unlike a wall-clock deadline, an effort budget is
// deterministic: the same query under the same budget always aborts at
// the same point, on any machine — which is what lets budget-degraded
// analysis stay byte-reproducible across runs and worker counts.
type Budget struct {
	Conflicts int64 // max conflicts per solve
	Decisions int64 // max decisions per solve
}

func (b Budget) unlimited() bool { return b.Conflicts <= 0 && b.Decisions <= 0 }

// SetBudget installs the per-solve effort budget; it applies to every
// subsequent SolveCtx until changed. The zero Budget removes all bounds.
func (s *Solver) SetBudget(b Budget) { s.budget = b }

// AbortCause classifies the last SolveCtx's Unknown verdict:
// faults.ErrBudget when the effort budget ran out, faults.ErrCanceled /
// faults.ErrDeadline when the context fired, nil after a decided (Sat or
// Unsat) call. Callers that see Unknown consult this instead of guessing;
// a budget abort must never be read as UNSAT, and the verdict memo layer
// (smt.CheckMemo) never caches aborted calls.
func (s *Solver) AbortCause() error { return s.abortCause }

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		watches:   make([][]watcher, 2),
		varInc:    1.0,
		clauseInc: 1.0,
		ok:        true,
	}
	s.assigns = append(s.assigns, lUndef) // index 0 unused
	s.level = append(s.level, -1)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.order = newVarHeap(&s.activity)
	return s
}

// NewVar allocates a fresh variable and returns its index (1-based).
func (s *Solver) NewVar() int {
	s.nVars++
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(s.nVars)
	return s.nVars
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses added.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Stats returns (decisions, propagations, conflicts).
func (s *Solver) Stats() (int64, int64, int64) {
	return s.decisions, s.propagations, s.conflicts
}

// Counters returns the full search-effort counter set — decisions,
// propagations, conflicts, and restarts — for metrics snapshots.
func (s *Solver) Counters() (decisions, propagations, conflicts, restarts int64) {
	return s.decisions, s.propagations, s.conflicts, s.restarts
}

// IncStats counts the work the incremental solve path avoided or
// simplified away. All counters are cumulative over the solver's life and
// deterministic for a fixed call sequence (no wall-clock input), so they
// can appear in normalized reports.
type IncStats struct {
	// PrefixLits is the total number of assumption positions whose trail
	// levels were kept enqueued across consecutive SolveCtx calls (the
	// "prefix-reuse depth" summed over calls).
	PrefixLits int64
	// RootUnits is the number of facts promoted to the root level and used
	// to permanently simplify the clause database.
	RootUnits int64
	// RemovedClauses counts clauses deleted because a root-level fact
	// satisfies them outright.
	RemovedClauses int64
	// StrippedLits counts literals removed from clause tails because a
	// root-level fact falsifies them.
	StrippedLits int64
}

// IncrementalStats returns the incremental-solving counters.
func (s *Solver) IncrementalStats() IncStats { return s.inc }

var errBadLit = errors.New("sat: literal references unallocated variable")

// AddClause adds a clause (a disjunction of literals). It returns false if
// the solver is already in an unsatisfiable state at the top level.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Adding a clause invalidates any trail prefix kept warm by the
	// incremental solve path: rewind to the root so attach sees a state
	// where the two-watched-literal invariant can be established against
	// level-0 assignments only.
	s.cancelUntil(0)
	for _, l := range lits {
		if l == 0 || l.Var() > s.nVars {
			panic(errBadLit)
		}
	}
	// Simplify: sort, drop duplicates, detect tautologies, drop literals
	// false at level 0, satisfy-check against level-0 assignments.
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	out := lits[:0]
	var prev Lit
	for _, l := range lits {
		if l == prev {
			continue
		}
		if l == -prev {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			if s.level[l.Var()] == 0 {
				return true // already satisfied at top level
			}
		case lFalse:
			if s.level[l.Var()] == 0 {
				prev = l
				continue // drop top-level-false literal
			}
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if s.value(out[0]) == lFalse {
			s.ok = false
			return false
		}
		if s.value(out[0]) == lUndef {
			s.uncheckedEnqueue(out[0], nil)
			if s.propagate() != nil {
				s.ok = false
				return false
			}
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

// seenBuf returns a zeroed scratch buffer indexed by variable; callers
// must clear the entries they set before returning.
func (s *Solver) seenBuf() []bool {
	for len(s.seenScratch) <= s.nVars {
		s.seenScratch = append(s.seenScratch, false)
	}
	return s.seenScratch
}

// watchIdx maps a literal to its watch-list slot.
func watchIdx(l Lit) int {
	if l > 0 {
		return 2 * int(l)
	}
	return 2*int(-l) + 1
}

func (s *Solver) attach(c *clause) {
	i0, i1 := watchIdx(c.lits[0].Neg()), watchIdx(c.lits[1].Neg())
	s.watches[i0] = append(s.watches[i0], watcher{c, c.lits[1]})
	s.watches[i1] = append(s.watches[i1], watcher{c, c.lits[0]})
}

func (s *Solver) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() == (v == lTrue) {
		return lTrue
	}
	return lFalse
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = lTrue
	} else {
		s.assigns[v] = lFalse
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		wi := watchIdx(p)
		ws := s.watches[wi]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if conflict != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if c.deleted {
				continue
			}
			s.propagations++
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					ni := watchIdx(c.lits[1].Neg())
					s.watches[ni] = append(s.watches[ni], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == lFalse {
				conflict = c
				s.qhead = len(s.trail)
				continue
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[wi] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.push(v)
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

// analyze performs 1UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for asserting literal
	seen := s.seenBuf()
	var touched []int
	counter := 0
	var p Lit
	idx := len(s.trail) - 1
	c := conflict

	for {
		start := 0
		if p != 0 {
			start = 1
		}
		if c.learnt {
			s.bumpClause(c)
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if !seen[v] && s.level[v] > 0 {
				seen[v] = true
				touched = append(touched, v)
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find next literal on the trail to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Recursive minimization: drop literals implied by the rest.
	s.minimize(&learnt, seen)
	for _, v := range touched {
		seen[v] = false
	}
	for _, l := range learnt {
		seen[l.Var()] = false
	}

	// Compute backtrack level: the second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	return learnt, btLevel
}

func (s *Solver) minimize(learnt *[]Lit, seen []bool) {
	// Re-mark kept literals.
	for _, l := range (*learnt)[1:] {
		seen[l.Var()] = true
	}
	out := (*learnt)[:1]
	for _, l := range (*learnt)[1:] {
		if s.reason[l.Var()] == nil || !s.redundant(l, seen, 0) {
			out = append(out, l)
		}
	}
	*learnt = out
}

// redundant reports whether l is implied by the remaining learnt literals
// (bounded recursion).
func (s *Solver) redundant(l Lit, seen []bool, depth int) bool {
	if depth > 16 {
		return false
	}
	c := s.reason[l.Var()]
	if c == nil {
		return false
	}
	for _, q := range c.lits {
		if q.Var() == l.Var() {
			continue
		}
		if s.level[q.Var()] == 0 || seen[q.Var()] {
			continue
		}
		if s.reason[q.Var()] == nil || !s.redundant(q, seen, depth+1) {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.clauseInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.clauseInc /= 0.999
}

// reduceDB removes half of the learnt clauses with lowest activity.
func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool { return s.learnts[i].act > s.learnts[j].act })
	keep := s.learnts[:len(s.learnts)/2]
	for _, c := range s.learnts[len(s.learnts)/2:] {
		if s.locked(c) {
			keep = append(keep, c)
			continue
		}
		c.deleted = true
	}
	s.learnts = append([]*clause(nil), keep...)
}

func (s *Solver) locked(c *clause) bool {
	return s.value(c.lits[0]) == lTrue && s.reason[c.lits[0].Var()] == c
}

// simplifyDB promotes root-level facts into the clause database: clauses
// satisfied at level 0 are deleted outright and literals false at level 0
// are stripped from clause tails. Watched positions (0 and 1) are never
// touched — after full root-level propagation a non-satisfied clause
// cannot watch a root-false literal — so the watcher lists stay valid
// (watchers of deleted clauses are dropped lazily by propagate). Must be
// called at decision level 0; it is a no-op unless new root facts arrived
// since the last call.
func (s *Solver) simplifyDB() {
	if !s.ok || s.decisionLevel() != 0 || len(s.trail) == s.simplifiedAt {
		return
	}
	s.inc.RootUnits += int64(len(s.trail) - s.simplifiedAt)
	s.simplifiedAt = len(s.trail)
	// Root facts are axioms from here on: conflict analysis never expands
	// a level-0 literal's reason, so drop the pointers and let satisfied
	// reason clauses be collected.
	for _, l := range s.trail {
		s.reason[l.Var()] = nil
	}
	s.clauses = s.simplifyList(s.clauses)
	s.learnts = s.simplifyList(s.learnts)
}

func (s *Solver) simplifyList(cs []*clause) []*clause {
	kept := cs[:0]
	for _, c := range cs {
		if s.rootSatisfied(c) {
			c.deleted = true
			s.inc.RemovedClauses++
			continue
		}
		for k := 2; k < len(c.lits); {
			if s.value(c.lits[k]) == lFalse && s.level[c.lits[k].Var()] == 0 {
				c.lits[k] = c.lits[len(c.lits)-1]
				c.lits = c.lits[:len(c.lits)-1]
				s.inc.StrippedLits++
			} else {
				k++
			}
		}
		kept = append(kept, c)
	}
	// Zero the freed tail so deleted clauses do not linger reachable.
	for i := len(kept); i < len(cs); i++ {
		cs[i] = nil
	}
	return kept
}

func (s *Solver) rootSatisfied(c *clause) bool {
	for _, l := range c.lits {
		if s.value(l) == lTrue && s.level[l.Var()] == 0 {
			return true
		}
	}
	return false
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumptions. On Sat, the
// model is available via Value/Model; on Unsat under assumptions, the
// failed assumption set is available via FailedAssumptions.
func (s *Solver) Solve(assumptions ...Lit) Status {
	return s.SolveCtx(context.Background(), assumptions...)
}

// pollEvery is how many conflicts or decisions pass between context
// checks in SolveCtx: frequent enough that cancellation binds within
// milliseconds even on hard instances, rare enough to stay off the
// propagation fast path.
const pollEvery = 256

// SolveCtx is Solve under a context: the search polls ctx every few
// hundred conflicts/decisions and returns Unknown once it is cancelled,
// leaving the solver reusable (all learnt clauses are kept).
//
// The solver is incremental across calls. VSIDS activities, saved phases,
// and learnt clauses always survive; additionally, when consecutive calls
// share a leading prefix of assumptions, the trail stays enqueued up to
// the divergence point instead of rewinding to the root, so propagation
// under the shared assumptions is not repeated. Any verdict is identical
// to what a fresh solve of the same formula under the same assumptions
// would return — only the search effort differs (see IncrementalStats).
func (s *Solver) SolveCtx(ctx context.Context, assumptions ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	s.abortCause = nil
	// Assumption-prefix reuse: levels 1..decisionLevel() hold, in order,
	// the assumptions of the previous call (the end-of-call retract below
	// guarantees decisionLevel() <= len(lastAssumed)). Keep every level
	// whose assumption literal matches the new sequence; rewind the rest.
	prefix := 0
	for prefix < s.decisionLevel() && prefix < len(assumptions) &&
		prefix < len(s.lastAssumed) && s.lastAssumed[prefix] == assumptions[prefix] {
		prefix++
	}
	s.cancelUntil(prefix)
	s.inc.PrefixLits += int64(prefix)
	s.assumptions = append(s.assumptions[:0], assumptions...)
	s.lastAssumed = append(s.lastAssumed[:0], assumptions...)
	s.conflictSet = nil
	if prefix == 0 {
		// At the root: fold any facts learned at level 0 into the clause
		// database before searching again.
		s.simplifyDB()
	}
	// Retract only the decision tail at the end of the call, leaving the
	// assumption levels enqueued for the next call's prefix check.
	defer func() {
		keep := len(s.assumptions)
		if s.decisionLevel() < keep {
			keep = s.decisionLevel()
		}
		s.cancelUntil(keep)
	}()

	baseConflicts, baseDecisions := s.conflicts, s.decisions
	restart := int64(1)
	conflictBudget := 100 * luby(restart)
	conflictsThisRestart := int64(0)
	sincePoll := 0
	cancelled := func() bool {
		sincePoll++
		if sincePoll < pollEvery {
			return false
		}
		sincePoll = 0
		select {
		case <-ctx.Done():
			s.abortCause = faults.FromContext(ctx.Err())
			return true
		default:
			return false
		}
	}
	// exhausted reports whether this solve's effort budget ran out; the
	// check is exact (every conflict/decision), so budget aborts land on
	// the same step in every run.
	exhausted := func() bool {
		if s.budget.unlimited() {
			return false
		}
		if s.budget.Conflicts > 0 && s.conflicts-baseConflicts >= s.budget.Conflicts {
			s.abortCause = faults.Budgetf("solver: %d conflicts", s.conflicts-baseConflicts)
			return true
		}
		if s.budget.Decisions > 0 && s.decisions-baseDecisions >= s.budget.Decisions {
			s.abortCause = faults.Budgetf("solver: %d decisions", s.decisions-baseDecisions)
			return true
		}
		return false
	}
	// A context that arrives already cancelled aborts before any search.
	select {
	case <-ctx.Done():
		s.abortCause = faults.FromContext(ctx.Err())
		return Unknown
	default:
	}

	for {
		conflict := s.propagate()
		if conflict != nil {
			s.conflicts++
			conflictsThisRestart++
			if s.decisionLevel() == 0 {
				// A root-level conflict is a decided verdict whatever the
				// budget says; returning Unknown here would leave a
				// root-conflicting database behind for later warm calls.
				s.ok = false
				return Unsat
			}
			if cancelled() || exhausted() {
				// The current level's propagations falsify a clause; drop
				// them so the trail prefix kept for the next call is
				// consistent.
				s.cancelUntil(s.decisionLevel() - 1)
				return Unknown
			}
			if s.decisionLevel() <= len(s.currentAssumed()) {
				// Conflict depends only on assumptions. Analyze it while
				// the trail still holds the conflicting propagations, then
				// unwind the falsified level before returning (the retract
				// keeps lower levels enqueued for prefix reuse).
				s.conflictSet = s.analyzeFinal(conflict)
				s.cancelUntil(s.decisionLevel() - 1)
				return Unsat
			}
			learnt, btLevel := s.analyze(conflict)
			if btLevel < len(s.currentAssumed()) {
				btLevel = len(s.currentAssumed())
			}
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.cancelUntil(0)
				if s.value(learnt[0]) == lFalse {
					s.ok = false
					return Unsat
				}
				if s.value(learnt[0]) == lUndef {
					s.uncheckedEnqueue(learnt[0], nil)
				}
				// Re-establish assumptions on the next loop iteration.
				continue
			}
			c := &clause{lits: append([]Lit(nil), learnt...), learnt: true}
			s.learnts = append(s.learnts, c)
			s.attach(c)
			s.bumpClause(c)
			if s.value(learnt[0]) == lUndef {
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayActivities()
			if int64(len(s.learnts)) > int64(100+10*len(s.clauses)) {
				s.reduceDB()
			}
			continue
		}

		if conflictsThisRestart >= conflictBudget {
			restart++
			s.restarts++
			conflictBudget = 100 * luby(restart)
			conflictsThisRestart = 0
			s.cancelUntil(0)
			continue
		}

		// Extend assumptions first.
		if s.decisionLevel() < len(s.assumptions) {
			a := s.assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied: open an empty decision level so the
				// level count still tracks assumption depth.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				s.conflictSet = s.analyzeFinalLit(a)
				return Unsat
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(a, nil)
				continue
			}
		}

		// Decide.
		v := s.pickBranchVar()
		if v == 0 {
			s.captureModel()
			return Sat
		}
		s.decisions++
		if cancelled() || exhausted() {
			return Unknown
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		if s.polarity[v] {
			s.uncheckedEnqueue(Lit(v), nil)
		} else {
			s.uncheckedEnqueue(Lit(-v), nil)
		}
	}
}

func (s *Solver) currentAssumed() []Lit {
	n := s.decisionLevel()
	if n > len(s.assumptions) {
		n = len(s.assumptions)
	}
	return s.assumptions[:n]
}

func (s *Solver) pickBranchVar() int {
	for {
		v := s.order.pop()
		if v == 0 {
			return 0
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

// analyzeFinal collects the assumption variables involved in a conflict.
func (s *Solver) analyzeFinal(conflict *clause) map[int]bool {
	out := make(map[int]bool)
	seen := make(map[int]bool)
	var expand func(c *clause)
	expand = func(c *clause) {
		for _, l := range c.lits {
			v := l.Var()
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			if s.reason[v] == nil {
				out[v] = true
			} else {
				expand(s.reason[v])
			}
		}
	}
	expand(conflict)
	return out
}

func (s *Solver) analyzeFinalLit(a Lit) map[int]bool {
	out := map[int]bool{a.Var(): true}
	seen := make(map[int]bool)
	var walk func(l Lit)
	walk = func(l Lit) {
		v := l.Var()
		if seen[v] || s.level[v] == 0 {
			return
		}
		seen[v] = true
		if s.reason[v] == nil {
			out[v] = true
			return
		}
		for _, q := range s.reason[v].lits {
			if q.Var() != v {
				walk(q)
			}
		}
	}
	walk(a)
	return out
}

// FailedAssumptions returns, after an Unsat result under assumptions, the
// subset of assumption literals involved in the conflict (an unsat core
// over assumptions).
func (s *Solver) FailedAssumptions() []Lit {
	var out []Lit
	for _, a := range s.assumptions {
		if s.conflictSet[a.Var()] {
			out = append(out, a)
		}
	}
	return out
}

func (s *Solver) captureModel() {
	s.modelVal = make([]bool, s.nVars+1)
	for v := 1; v <= s.nVars; v++ {
		switch s.assigns[v] {
		case lTrue:
			s.modelVal[v] = true
		case lFalse:
			s.modelVal[v] = false
		default:
			s.modelVal[v] = s.polarity[v]
		}
	}
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v int) bool {
	if s.modelVal == nil || v <= 0 || v >= len(s.modelVal) {
		return false
	}
	return s.modelVal[v]
}

// Model returns the satisfying assignment as a map from variable to value.
func (s *Solver) Model() map[int]bool {
	m := make(map[int]bool, s.nVars)
	for v := 1; v <= s.nVars; v++ {
		m[v] = s.modelVal[v]
	}
	return m
}

// varHeap is a max-heap over variable activity.
type varHeap struct {
	heap     []int
	indices  []int // var → heap position, -1 if absent
	activity *[]float64
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{activity: act}
}

func (h *varHeap) ensure(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) less(a, b int) bool { return (*h.activity)[a] > (*h.activity)[b] }

func (h *varHeap) push(v int) {
	h.ensure(v)
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	if len(h.heap) == 0 {
		return 0
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	h.ensure(v)
	if i := h.indices[v]; i >= 0 {
		h.up(i)
		h.down(i)
	}
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[p]) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(h.heap[l], h.heap[smallest]) {
			smallest = l
		}
		if r < len(h.heap) && h.less(h.heap[r], h.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = i
	h.indices[h.heap[j]] = j
}
