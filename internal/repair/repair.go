// Package repair implements Clou's automatic mitigation (§6.1): insert a
// minimal number of speculation fences (lfence) so that no detected
// transmitter survives. Candidate fence positions are instructions lying
// between a finding's speculation primitive and its transmitter; a minimal
// hitting set is computed with the smt package's cardinality constraints,
// applied to the IR, and validated by re-running detection — the loop
// continues until the program is clean.
package repair

import (
	"context"
	"fmt"
	"sort"

	"lcm/internal/acfg"
	"lcm/internal/detect"
	"lcm/internal/ir"
	"lcm/internal/sat"
	"lcm/internal/smt"
)

// Result reports a repair run.
type Result struct {
	Fences    int // fences inserted
	Rounds    int // detect→repair iterations
	Remaining int // findings left (0 on success)
}

// Repair analyzes fn with cfg, inserts fences into m until detection runs
// clean (or maxRounds is hit), and reports the fence count.
func Repair(m *ir.Module, fn string, cfg detect.Config, maxRounds int) (Result, error) {
	return RepairCtx(context.Background(), m, fn, cfg, maxRounds)
}

// RepairCtx is Repair under a context: cancellation aborts the current
// detection round promptly (each round still gets cfg.Timeout on top).
// Repair mutates m between rounds, so any analysis cache the caller set
// on cfg is dropped — cached front ends would describe the pre-fence IR.
func RepairCtx(ctx context.Context, m *ir.Module, fn string, cfg detect.Config, maxRounds int) (Result, error) {
	cfg.Cache = nil
	parent := cfg.Span
	repairSpan := parent.Start("repair:" + fn)
	defer repairSpan.End()
	if maxRounds == 0 {
		maxRounds = 8
	}
	total := 0
	for round := 1; round <= maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return Result{Fences: total, Rounds: round}, err
		}
		roundSpan := repairSpan.Start(fmt.Sprintf("round-%d", round))
		cfg.Span = roundSpan
		res, err := detect.AnalyzeFuncCtx(ctx, m, fn, cfg)
		if err != nil {
			roundSpan.End()
			return Result{Fences: total, Rounds: round}, err
		}
		if len(res.Findings) == 0 {
			roundSpan.End()
			cfg.Metrics.Counter("repair.rounds").Add(int64(round))
			return Result{Fences: total, Rounds: round}, nil
		}
		points, err := minimalFences(res)
		if err != nil {
			roundSpan.End()
			return Result{Fences: total, Rounds: round, Remaining: len(res.Findings)}, err
		}
		if len(points) == 0 {
			roundSpan.End()
			return Result{Fences: total, Rounds: round, Remaining: len(res.Findings)},
				fmt.Errorf("repair: no fence position can cut remaining leakage")
		}
		for _, p := range points {
			insertFenceBefore(m, p)
			total++
		}
		cfg.Metrics.Counter("repair.fences").Add(int64(len(points)))
		roundSpan.End()
	}
	cfg.Span = repairSpan
	res, err := detect.AnalyzeFuncCtx(ctx, m, fn, cfg)
	if err != nil {
		return Result{Fences: total, Rounds: maxRounds}, err
	}
	return Result{Fences: total, Rounds: maxRounds, Remaining: len(res.Findings)}, nil
}

// minimalFences computes a minimum set of instructions before which an
// lfence cuts every finding.
func minimalFences(res *detect.Result) ([]*ir.Instr, error) {
	g := res.Graph

	// For each finding, the primitive node and transmitter node.
	type span struct{ from, to int }
	var spans []span
	for _, f := range res.Findings {
		if f.Store >= 0 && f.Transmit == f.Store {
			// Silent-store finding (Clou-ss): the store itself transmits
			// when it commits, so there is no downstream transmitter to
			// fence off. The cut is a serializing drain between the store
			// and every reachable return — the fence forces a verbatim
			// commit before the elision compare could fire.
			for _, n := range g.Nodes {
				if n.Instr != nil && n.Instr.Op == ir.OpRet && reaches(g, f.Store, n.ID) {
					spans = append(spans, span{f.Store, n.ID})
				}
			}
			continue
		}
		from := f.Branch
		if from < 0 {
			from = f.Store
		}
		if from < 0 {
			// Clou-imp findings carry neither branch nor store: the
			// window opens at the first trained index load.
			from = f.Load
		}
		if from < 0 {
			continue
		}
		spans = append(spans, span{from, f.Transmit})
	}
	if len(spans) == 0 {
		return nil, nil
	}

	// Candidate cut instructions: instructions of nodes lying on some
	// primitive→transmit path (transmitter included — a fence immediately
	// before it always works; primitive excluded).
	candSet := map[*ir.Instr]bool{}
	for _, sp := range spans {
		for _, n := range g.Nodes {
			if n.Instr == nil || n.Kind == acfg.NEntry || n.Kind == acfg.NExit {
				continue
			}
			if n.ID == sp.from {
				continue
			}
			onPath := n.ID == sp.to ||
				(reaches(g, sp.from, n.ID) && reaches(g, n.ID, sp.to))
			if onPath && placeable(n.Instr) {
				candSet[n.Instr] = true
			}
		}
	}
	cands := make([]*ir.Instr, 0, len(candSet))
	for in := range candSet {
		cands = append(cands, in)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].String() < cands[j].String() })

	// kills[i][j]: fencing before cands[j] cuts spans[i] — every
	// primitive→transmit path crosses a node carrying that instruction.
	solver := smt.NewSolver()
	vars := make([]*smt.Expr, len(cands))
	for j := range cands {
		vars[j] = solver.Var(fmt.Sprintf("fence!%d", j))
	}
	for i, sp := range spans {
		var killers []*smt.Expr
		for j, in := range cands {
			if cutsAllPaths(g, sp.from, sp.to, in) {
				killers = append(killers, vars[j])
			}
		}
		if len(killers) == 0 {
			return nil, fmt.Errorf("repair: finding %d has no cutting position", i)
		}
		solver.AssertClause(killers...)
	}

	// Minimize the fence count: find the smallest k with a model.
	for k := 1; k <= len(cands); k++ {
		s2 := smt.NewSolver()
		v2 := make([]*smt.Expr, len(cands))
		for j := range cands {
			v2[j] = s2.Var(fmt.Sprintf("fence!%d", j))
		}
		for _, sp := range spans {
			var killers []*smt.Expr
			for j, in := range cands {
				if cutsAllPaths(g, sp.from, sp.to, in) {
					killers = append(killers, v2[j])
				}
			}
			s2.AssertClause(killers...)
		}
		s2.AtMostK(k, v2...)
		if s2.Check() == sat.Sat {
			var out []*ir.Instr
			for j := range cands {
				if s2.Value(v2[j]) {
					out = append(out, cands[j])
				}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("repair: hitting set infeasible")
}

// placeable reports whether a fence may be inserted before the
// instruction (terminators and allocas are poor anchors; memory and
// arithmetic instructions are fine).
func placeable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpAlloca, ir.OpBr:
		return false
	}
	return true
}

func reaches(g *acfg.Graph, from, to int) bool {
	if from == to {
		return true
	}
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs(n) {
			if s == to {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// cutsAllPaths reports whether every from→to path in the A-CFG crosses a
// node whose instruction is in (so a fence before it blocks the window).
func cutsAllPaths(g *acfg.Graph, from, to int, in *ir.Instr) bool {
	if from == to {
		return false
	}
	seen := map[int]bool{from: true}
	stack := []int{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs(n) {
			if g.Nodes[s].Instr == in {
				if s == to {
					// A fence before the transmitter itself blocks it.
					continue
				}
				continue // path blocked here
			}
			if s == to {
				return false
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return true
}

// insertFenceBefore splices an lfence immediately before the instruction
// in its containing block.
func insertFenceBefore(m *ir.Module, target *ir.Instr) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if in == target {
					fence := &ir.Instr{Op: ir.OpFence, Sub: "lfence", Line: in.Line}
					fence.Blk = b
					b.Instrs = append(b.Instrs[:i], append([]*ir.Instr{fence}, b.Instrs[i:]...)...)
					return
				}
			}
		}
	}
}

// CountFences tallies lfence instructions in a module (for reporting).
func CountFences(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpFence && in.Sub == "lfence" {
					n++
				}
			}
		}
	}
	return n
}
