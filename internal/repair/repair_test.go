package repair

import (
	"testing"

	"lcm/internal/detect"
	"lcm/internal/ir"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m
}

const spectreV1Src = `
uint8_t A[16];
uint8_t B[131072];
uint32_t size_A = 16;
uint8_t tmp;
void victim(uint32_t y) {
	if (y < size_A) {
		uint8_t x = A[y];
		tmp &= B[x * 512];
	}
}
`

func TestRepairSpectreV1WithOneFence(t *testing.T) {
	m := compile(t, spectreV1Src)
	res, err := Repair(m, "victim", detect.DefaultPHT(), 0)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if res.Remaining != 0 {
		t.Fatalf("leakage remains after repair: %d", res.Remaining)
	}
	// §6.1: one fence per vulnerable PHT program.
	if res.Fences != 1 {
		t.Errorf("fences = %d, want 1", res.Fences)
	}
	if CountFences(m) != res.Fences {
		t.Errorf("module fence count %d != reported %d", CountFences(m), res.Fences)
	}
	// Post-repair detection is clean.
	r, err := detect.AnalyzeFunc(m, "victim", detect.DefaultPHT())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Findings) != 0 {
		t.Errorf("findings after repair: %v", r.Findings)
	}
	// The program still behaves correctly.
	ip := ir.NewInterp(m)
	if _, err := ip.Call("victim", 3); err != nil {
		t.Errorf("repaired program broken: %v", err)
	}
}

func TestRepairSpectreV4(t *testing.T) {
	m := compile(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint8_t tmp;
		uint32_t idx_slot;
		void victim(uint32_t idx) {
			idx_slot = idx & 15;
			uint8_t x = A[idx_slot];
			tmp &= B[x * 512];
		}
	`)
	res, err := Repair(m, "victim", detect.DefaultSTL(), 0)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if res.Remaining != 0 {
		t.Fatalf("leakage remains: %d", res.Remaining)
	}
	// Our analysis finds the intended gadget plus the stack-spill bypass
	// (the STL01 phenomenon of §6.1: at -O0 the x spill/reload is itself a
	// bypassable store), which needs a second fence in a disjoint region.
	if res.Fences < 1 || res.Fences > 2 {
		t.Errorf("fences = %d, want 1-2", res.Fences)
	}
}

func TestRepairCleanProgramInsertsNothing(t *testing.T) {
	m := compile(t, `
		uint32_t ct_select(uint32_t mask, uint32_t a, uint32_t b) {
			return (a & mask) | (b & ~mask);
		}
	`)
	res, err := Repair(m, "ct_select", detect.DefaultPHT(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fences != 0 {
		t.Errorf("fences inserted in clean program: %d", res.Fences)
	}
}

func TestRepairTwoGadgets(t *testing.T) {
	// Two independent gadgets under two branches need two fences.
	m := compile(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint32_t size_A = 16;
		uint8_t tmp;
		void victim(uint32_t y, uint32_t z) {
			if (y < size_A) {
				uint8_t x = A[y];
				tmp &= B[x * 512];
			}
			if (z < size_A) {
				uint8_t w = A[z];
				tmp &= B[w * 512];
			}
		}
	`)
	res, err := Repair(m, "victim", detect.DefaultPHT(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 {
		t.Fatalf("leakage remains: %d", res.Remaining)
	}
	if res.Fences < 2 || res.Fences > 3 {
		t.Errorf("fences = %d, want 2 (one per gadget; +1 tolerated for spill bypass)", res.Fences)
	}
}

// removeFenceAt deletes the i-th lfence (in block/instruction order) from
// the module and returns an undo closure restoring it in place.
func removeFenceAt(m *ir.Module, i int) func() {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for k, in := range b.Instrs {
				if in.Op != ir.OpFence || in.Sub != "lfence" {
					continue
				}
				if n == i {
					b, k, in := b, k, in
					b.Instrs = append(b.Instrs[:k], b.Instrs[k+1:]...)
					return func() {
						b.Instrs = append(b.Instrs[:k], append([]*ir.Instr{in}, b.Instrs[k:]...)...)
					}
				}
				n++
			}
		}
	}
	return nil
}

// checkRepairMinimal asserts the §6.1 minimality claim on a repaired
// module: removing any single inserted fence re-introduces a violation.
func checkRepairMinimal(t *testing.T, m *ir.Module, fn string, cfg detect.Config, fences int) {
	t.Helper()
	for i := 0; i < fences; i++ {
		undo := removeFenceAt(m, i)
		if undo == nil {
			t.Fatalf("fence %d not found in repaired module", i)
		}
		res, err := detect.AnalyzeFunc(m, fn, cfg)
		undo()
		if err != nil {
			t.Fatalf("re-detect without fence %d: %v", i, err)
		}
		if len(res.Findings) == 0 {
			t.Errorf("fence %d is redundant: removing it leaves the program clean", i)
		}
	}
	// Sanity: with all fences restored the program is clean again.
	res, err := detect.AnalyzeFunc(m, fn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("restored module is not clean: %v", res.Findings)
	}
}

// TestRepairMinimalityTwoGadgetsPHT: in a two-gadget PHT program every
// inserted fence is load-bearing — no strict subset suffices.
func TestRepairMinimalityTwoGadgetsPHT(t *testing.T) {
	m := compile(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint32_t size_A = 16;
		uint8_t tmp;
		void victim(uint32_t y, uint32_t z) {
			if (y < size_A) {
				uint8_t x = A[y];
				tmp &= B[x * 512];
			}
			if (z < size_A) {
				uint8_t w = A[z];
				tmp &= B[w * 512];
			}
		}
	`)
	cfg := detect.DefaultPHT()
	res, err := Repair(m, "victim", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 {
		t.Fatalf("leakage remains: %d", res.Remaining)
	}
	if res.Fences < 2 {
		t.Fatalf("fences = %d, want >= 2 (one per gadget)", res.Fences)
	}
	checkRepairMinimal(t, m, "victim", cfg, res.Fences)
}

// TestRepairPSF: the alias-forward gadget is repaired by a draining
// fence between the secret store and the steered transmitter, and the
// fence is load-bearing.
func TestRepairPSF(t *testing.T) {
	m := compile(t, `
		uint8_t sec_ary[16];
		uint8_t pub_ary[131072];
		uint32_t sec_slot;
		uint32_t pub_idx;
		uint8_t tmp;
		void victim(uint32_t idx) {
			sec_slot = sec_ary[idx & 15];
			uint32_t j = pub_idx;
			tmp &= pub_ary[(j & 255) * 512];
		}
	`)
	cfg := detect.DefaultPSF()
	res, err := Repair(m, "victim", cfg, 0)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if res.Remaining != 0 {
		t.Fatalf("leakage remains: %d", res.Remaining)
	}
	if res.Fences < 1 {
		t.Fatalf("fences = %d, want >= 1", res.Fences)
	}
	checkRepairMinimal(t, m, "victim", cfg, res.Fences)
}

// TestRepairIMP: the trained-walk gadget is repaired by a fence inside
// the loop body, which flushes the prefetcher's training every
// iteration.
func TestRepairIMP(t *testing.T) {
	m := compile(t, `
		uint8_t idx_ary[16];
		uint8_t data_ary[131072];
		uint8_t tmp;
		void victim(uint32_t n) {
			for (uint32_t i = 0; i < n; i++) {
				tmp &= data_ary[idx_ary[i & 7]];
			}
		}
	`)
	cfg := detect.DefaultIMP()
	res, err := Repair(m, "victim", cfg, 0)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if res.Remaining != 0 {
		t.Fatalf("leakage remains: %d", res.Remaining)
	}
	if res.Fences < 1 {
		t.Fatalf("fences = %d, want >= 1", res.Fences)
	}
	checkRepairMinimal(t, m, "victim", cfg, res.Fences)
}

// TestRepairSS: a silent store has no downstream transmitter — the
// repair is a serializing drain between the store and every return, and
// one well-placed fence covers both exits of a diamond.
func TestRepairSS(t *testing.T) {
	m := compile(t, `
		uint8_t sec_ary[16];
		uint32_t slot;
		uint8_t tmp;
		void victim(uint32_t idx) {
			slot = sec_ary[idx & 15];
			if (idx & 1) {
				tmp = 1;
				return;
			}
			tmp = 2;
		}
	`)
	cfg := detect.DefaultSS()
	res, err := Repair(m, "victim", cfg, 0)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if res.Remaining != 0 {
		t.Fatalf("leakage remains: %d", res.Remaining)
	}
	if res.Fences < 1 {
		t.Fatalf("fences = %d, want >= 1", res.Fences)
	}
	checkRepairMinimal(t, m, "victim", cfg, res.Fences)
}

// TestRepairMinimalityTwoGadgetsSTL: same claim under the store-bypass
// engine, with two independent masking-store/reload pairs.
func TestRepairMinimalityTwoGadgetsSTL(t *testing.T) {
	m := compile(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint8_t tmp;
		uint32_t slot_a;
		uint32_t slot_b;
		void victim(uint32_t y, uint32_t z) {
			slot_a = y & 15;
			uint8_t x = A[slot_a];
			tmp &= B[x * 512];
			slot_b = z & 15;
			uint8_t w = A[slot_b];
			tmp &= B[w * 512];
		}
	`)
	cfg := detect.DefaultSTL()
	res, err := Repair(m, "victim", cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 {
		t.Fatalf("leakage remains: %d", res.Remaining)
	}
	if res.Fences < 2 {
		t.Fatalf("fences = %d, want >= 2 (one per masking store)", res.Fences)
	}
	checkRepairMinimal(t, m, "victim", cfg, res.Fences)
}
