package event

import "fmt"

// Builder constructs event Graphs incrementally. It allocates event IDs,
// maintains per-thread program order and transient fetch order chains, and
// closes po/tfo transitively on Finish (po and tfo are transitive relations,
// §2.1.1/§3.3).
type Builder struct {
	g       *Graph
	lastPO  map[int]int // thread → last committed event ID
	lastTFO map[int]int // thread → last fetched event ID
	top     *Event
	nextX   XSID
}

// NewBuilder returns a Builder whose graph already contains the ⊤ event
// (ID 0), the initialization bracket of §3.2.
func NewBuilder() *Builder {
	b := &Builder{
		g:       NewGraph(),
		lastPO:  make(map[int]int),
		lastTFO: make(map[int]int),
	}
	b.top = b.add(&Event{Kind: KTop, XState: XNone})
	return b
}

// Top returns the ⊤ event.
func (b *Builder) Top() *Event { return b.top }

// FreshX allocates a new xstate element ID.
func (b *Builder) FreshX() XSID {
	x := b.nextX
	b.nextX++
	return x
}

func (b *Builder) add(e *Event) *Event {
	e.ID = len(b.g.Events)
	b.g.Events = append(b.g.Events, e)
	return e
}

// chain links e into thread t's po/tfo chains. Transient and prefetch
// events join only the tfo chain. The first event of a thread is ordered
// after ⊤ in both po and tfo.
func (b *Builder) chain(t int, e *Event) *Event {
	e.Thread = t
	if last, ok := b.lastTFO[t]; ok {
		b.g.TFO.Add(last, e.ID)
	} else {
		b.g.TFO.Add(b.top.ID, e.ID)
	}
	b.lastTFO[t] = e.ID
	if e.Committed() {
		if last, ok := b.lastPO[t]; ok {
			b.g.PO.Add(last, e.ID)
		} else {
			b.g.PO.Add(b.top.ID, e.ID)
		}
		b.lastPO[t] = e.ID
	}
	return e
}

// Read appends a committed read of loc on thread t accessing xstate xs
// with mode xacc.
func (b *Builder) Read(t int, loc Location, xs XSID, xacc XAccess, label string) *Event {
	return b.chain(t, b.add(&Event{Kind: KRead, Loc: loc, XState: xs, XAcc: xacc, Label: label}))
}

// Write appends a committed write of loc on thread t.
func (b *Builder) Write(t int, loc Location, xs XSID, xacc XAccess, label string) *Event {
	return b.chain(t, b.add(&Event{Kind: KWrite, Loc: loc, XState: xs, XAcc: xacc, Label: label}))
}

// TransientRead appends a transient (squashed) read on thread t: ordered in
// tfo only (§3.3).
func (b *Builder) TransientRead(t int, loc Location, xs XSID, xacc XAccess, label string) *Event {
	return b.chain(t, b.add(&Event{Kind: KRead, Loc: loc, XState: xs, XAcc: xacc, Transient: true, Label: label}))
}

// TransientWrite appends a transient write on thread t.
func (b *Builder) TransientWrite(t int, loc Location, xs XSID, xacc XAccess, label string) *Event {
	return b.chain(t, b.add(&Event{Kind: KWrite, Loc: loc, XState: xs, XAcc: xacc, Transient: true, Label: label}))
}

// PrefetchRead appends a non-architectural prefetcher read (Fig. 5b):
// present in tfo and comx, absent from po/com.
func (b *Builder) PrefetchRead(t int, loc Location, xs XSID, label string) *Event {
	return b.chain(t, b.add(&Event{Kind: KRead, Loc: loc, XState: xs, XAcc: XRW, Prefetch: true, Label: label}))
}

// Branch appends a committed branch event on thread t.
func (b *Builder) Branch(t int, label string) *Event {
	return b.chain(t, b.add(&Event{Kind: KBranch, XState: XNone, Label: label}))
}

// Fence appends a committed fence on thread t.
func (b *Builder) Fence(t int, label string) *Event {
	return b.chain(t, b.add(&Event{Kind: KFence, XState: XNone, Label: label}))
}

// Skip appends a committed no-op event on thread t.
func (b *Builder) Skip(t int, label string) *Event {
	return b.chain(t, b.add(&Event{Kind: KSkip, XState: XNone, Label: label}))
}

// Bottom appends an observer (⊥) event at the end of thread t's committed
// path. The observer shares no memory with the program (§3.2): it joins po
// and tfo but can only communicate via comx.
func (b *Builder) Bottom(t int) *Event {
	return b.chain(t, b.add(&Event{Kind: KBottom, XState: XNone}))
}

// TransientBottom appends a ⊥ₛ marker reached along a squashed path
// (Fig. 2b). It is recorded as a Bottom-kind observer in tfo only.
func (b *Builder) TransientBottom(t int) *Event {
	e := b.add(&Event{Kind: KBottom, XState: XNone})
	// Bottom events are never "transient" per Event.Transient (they are
	// observers, not program instructions), but a speculative ⊥ must not
	// join po. Chain it manually into tfo only.
	e.Thread = t
	if last, ok := b.lastTFO[t]; ok {
		b.g.TFO.Add(last, e.ID)
	} else {
		b.g.TFO.Add(b.top.ID, e.ID)
	}
	b.lastTFO[t] = e.ID
	return e
}

// AddrDep records an address dependency from read r to memory event m; gep
// marks it as a getelementptr-style index dependency (§5.2).
func (b *Builder) AddrDep(r, m *Event, gep bool) {
	b.g.Addr.Add(r.ID, m.ID)
	if gep {
		b.g.AddrGEP.Add(r.ID, m.ID)
	}
}

// DataDep records a data dependency from read r to write w.
func (b *Builder) DataDep(r, w *Event) { b.g.Data.Add(r.ID, w.ID) }

// CtrlDep records a control dependency from read r to event m.
func (b *Builder) CtrlDep(r, m *Event) { b.g.Ctrl.Add(r.ID, m.ID) }

// FenceOrder records that a is ordered before b by an explicit fence.
func (b *Builder) FenceOrder(a, e *Event) { b.g.Fence.Add(a.ID, e.ID) }

// RF adds an architectural reads-from pair.
func (b *Builder) RF(w, r *Event) { b.g.RF.Add(w.ID, r.ID) }

// CO adds an architectural coherence pair.
func (b *Builder) CO(w0, w1 *Event) { b.g.CO.Add(w0.ID, w1.ID) }

// RFX adds a microarchitectural reads-from pair.
func (b *Builder) RFX(w, r *Event) { b.g.RFX.Add(w.ID, r.ID) }

// COX adds a microarchitectural coherence pair.
func (b *Builder) COX(w0, w1 *Event) { b.g.COX.Add(w0.ID, w1.ID) }

// Graph returns the graph under construction without finalizing it.
func (b *Builder) Graph() *Graph { return b.g }

// Finish transitively closes po, tfo, and co, validates the graph, and
// returns it. It panics on a malformed graph — builders are driven by
// static program descriptions, so malformation is a programming error.
func (b *Builder) Finish() *Graph {
	b.g.PO = b.g.PO.TransitiveClosure()
	b.g.TFO = b.g.TFO.TransitiveClosure()
	b.g.CO = b.g.CO.TransitiveClosure()
	b.g.COX = b.g.COX.TransitiveClosure()
	if err := b.g.Validate(); err != nil {
		panic(fmt.Sprintf("event.Builder.Finish: %v", err))
	}
	return b.g
}
