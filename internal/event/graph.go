package event

import (
	"fmt"
	"sort"

	"lcm/internal/relation"
)

// Graph is an event structure, optionally extended with an execution
// witness (rf, co) and a microarchitectural witness (rfx, cox) to form a
// candidate execution with a microarchitectural semantics (§2.1.2, §3.2.2).
// fr and frx are always derived: fr = ~rf.co, frx = ~rfx.cox.
type Graph struct {
	Events []*Event

	// Event-structure relations (§2.1.1, §3.3).
	PO   *relation.Relation // program order on committed events
	TFO  *relation.Relation // transient fetch order; PO ⊆ TFO
	Addr *relation.Relation // address dependencies
	Data *relation.Relation // data dependencies
	Ctrl *relation.Relation // control dependencies
	// AddrGEP marks the subset of Addr where the read's value is an index
	// added to a base pointer (getelementptr-style, §5.2). AddrGEP ⊆ Addr.
	AddrGEP *relation.Relation
	Fence   *relation.Relation // explicit fence ordering

	// Execution witness (architectural, §2.1.2).
	RF *relation.Relation // Write → Read, same Location
	CO *relation.Relation // Write → Write, same Location (transitive)

	// Microarchitectural witness (§3.2.2).
	RFX *relation.Relation // xstate writer → xstate reader, same xstate
	COX *relation.Relation // xstate writer → xstate writer, same xstate
}

// NewGraph returns an empty graph with all relations initialized.
func NewGraph() *Graph {
	return &Graph{
		PO:      relation.New(),
		TFO:     relation.New(),
		Addr:    relation.New(),
		Data:    relation.New(),
		Ctrl:    relation.New(),
		AddrGEP: relation.New(),
		Fence:   relation.New(),
		RF:      relation.New(),
		CO:      relation.New(),
		RFX:     relation.New(),
		COX:     relation.New(),
	}
}

// Event returns the event with the given ID, or nil.
func (g *Graph) Event(id int) *Event {
	if id < 0 || id >= len(g.Events) {
		return nil
	}
	return g.Events[id]
}

// Clone returns a deep copy of the graph structure (events are shared —
// they are immutable after construction — but all relations are copied).
func (g *Graph) Clone() *Graph {
	c := &Graph{Events: append([]*Event(nil), g.Events...)}
	c.PO = g.PO.Clone()
	c.TFO = g.TFO.Clone()
	c.Addr = g.Addr.Clone()
	c.Data = g.Data.Clone()
	c.Ctrl = g.Ctrl.Clone()
	c.AddrGEP = g.AddrGEP.Clone()
	c.Fence = g.Fence.Clone()
	c.RF = g.RF.Clone()
	c.CO = g.CO.Clone()
	c.RFX = g.RFX.Clone()
	c.COX = g.COX.Clone()
	return c
}

// Reads returns the IDs of all Read memory events (excluding prefetches).
func (g *Graph) Reads() relation.Set {
	s := relation.NewSet()
	for _, e := range g.Events {
		if e.Kind == KRead && !e.Prefetch {
			s.Add(e.ID)
		}
	}
	return s
}

// Writes returns the IDs of all Write memory events.
func (g *Graph) Writes() relation.Set {
	s := relation.NewSet()
	for _, e := range g.Events {
		if e.Kind == KWrite {
			s.Add(e.ID)
		}
	}
	return s
}

// MemoryEvents returns the IDs of all architectural memory events.
func (g *Graph) MemoryEvents() relation.Set {
	s := relation.NewSet()
	for _, e := range g.Events {
		if e.IsMemory() {
			s.Add(e.ID)
		}
	}
	return s
}

// Tops and Bottoms return the bracket events.
func (g *Graph) Tops() []*Event {
	var ts []*Event
	for _, e := range g.Events {
		if e.Kind == KTop {
			ts = append(ts, e)
		}
	}
	return ts
}

// Bottoms returns all observer (⊥) events.
func (g *Graph) Bottoms() []*Event {
	var bs []*Event
	for _, e := range g.Events {
		if e.Kind == KBottom {
			bs = append(bs, e)
		}
	}
	return bs
}

// SameLoc reports whether events a and b access the same architectural
// location. Top is treated as writing every location.
func (g *Graph) SameLoc(a, b int) bool {
	ea, eb := g.Events[a], g.Events[b]
	if ea.Kind == KTop || eb.Kind == KTop {
		return true
	}
	return ea.Loc != "" && ea.Loc == eb.Loc
}

// SameX reports whether events a and b access the same xstate element.
// Top initializes every xstate element; Bottom observes every element.
func (g *Graph) SameX(a, b int) bool {
	ea, eb := g.Events[a], g.Events[b]
	if ea.Kind == KTop || eb.Kind == KTop || ea.Kind == KBottom || eb.Kind == KBottom {
		return true
	}
	return ea.XState != XNone && ea.XState == eb.XState
}

// FR derives the from-reads relation fr = ~rf.co \ id (§2.1.2). Two
// filters correct for composition through the ⊤ bracket, which initializes
// every location: the identity is excluded (a read never from-reads
// itself), and the pair must relate same-location events — composing a
// read of x with a write of y through ⊤ is not a from-reads relationship.
func (g *Graph) FR() *relation.Relation {
	return g.RF.Transpose().Compose(g.CO).Filter(func(a, b int) bool {
		return a != b && g.Events[a].Loc == g.Events[b].Loc
	})
}

// FRX derives the microarchitectural from-reads relation frx = ~rfx.cox \ id,
// restricted to same-xstate pairs (⊤ writes every xstate element, so the
// raw composition would relate unrelated accesses).
func (g *Graph) FRX() *relation.Relation {
	return g.RFX.Transpose().Compose(g.COX).Filter(func(a, b int) bool {
		ea, eb := g.Events[a], g.Events[b]
		if a == b || ea.Kind == KBottom || eb.Kind == KBottom {
			return false
		}
		return ea.XState != XNone && ea.XState == eb.XState
	})
}

// Com returns the architectural communication relation com = rf + co + fr.
func (g *Graph) Com() *relation.Relation {
	return relation.Union(g.RF, g.CO, g.FR())
}

// ComX returns the microarchitectural communication relation
// comx = rfx + cox + frx (§3.2.2).
func (g *Graph) ComX() *relation.Relation {
	return relation.Union(g.RFX, g.COX, g.FRX())
}

// Dep returns the dependency relation dep = addr + data + ctrl.
func (g *Graph) Dep() *relation.Relation {
	return relation.Union(g.Addr, g.Data, g.Ctrl)
}

// POLoc returns the subset of po relating same-location memory events.
func (g *Graph) POLoc() *relation.Relation {
	return g.PO.Filter(func(a, b int) bool {
		return g.Events[a].IsMemory() && g.Events[b].IsMemory() && g.SameLoc(a, b)
	})
}

// TFOLoc returns the subset of tfo relating same-location memory events
// (used by the Spectre v4 discussion of §4.2: an x86 LCM must permit
// frx+tfo_loc cycles).
func (g *Graph) TFOLoc() *relation.Relation {
	return g.TFO.Filter(func(a, b int) bool {
		ea, eb := g.Events[a], g.Events[b]
		return (ea.Kind == KRead || ea.Kind == KWrite) &&
			(eb.Kind == KRead || eb.Kind == KWrite) && g.SameLoc(a, b)
	})
}

// RFI returns the internal (same-thread) subset of rf; RFE the external one.
func (g *Graph) RFI() *relation.Relation {
	return g.RF.Filter(func(a, b int) bool {
		return g.Events[a].Kind != KTop && g.Events[a].Thread == g.Events[b].Thread
	})
}

// RFE returns rf-external: rf pairs crossing threads (Top counts as
// external to every thread, matching the convention that initialization
// writes are on no thread).
func (g *Graph) RFE() *relation.Relation {
	return g.RF.Filter(func(a, b int) bool {
		return g.Events[a].Kind == KTop || g.Events[a].Thread != g.Events[b].Thread
	})
}

// TransientEvents returns the IDs of transient events.
func (g *Graph) TransientEvents() relation.Set {
	s := relation.NewSet()
	for _, e := range g.Events {
		if e.Transient {
			s.Add(e.ID)
		}
	}
	return s
}

// Validate checks structural well-formedness of the event structure and any
// attached witnesses. It returns the first problem found, or nil.
func (g *Graph) Validate() error {
	for i, e := range g.Events {
		if e == nil {
			return fmt.Errorf("event %d is nil", i)
		}
		if e.ID != i {
			return fmt.Errorf("event at index %d has ID %d", i, e.ID)
		}
		if (e.Kind == KRead || e.Kind == KWrite) && e.Loc == "" && !e.Prefetch {
			return fmt.Errorf("memory event %d has empty location", i)
		}
		if e.Transient && (e.Kind == KTop || e.Kind == KBottom) {
			return fmt.Errorf("bracket event %d marked transient", i)
		}
	}
	inRange := func(name string, r *relation.Relation) error {
		for _, p := range r.Pairs() {
			if g.Event(p.From) == nil || g.Event(p.To) == nil {
				return fmt.Errorf("%s pair %v references unknown event", name, p)
			}
		}
		return nil
	}
	for _, nr := range []struct {
		name string
		r    *relation.Relation
	}{
		{"po", g.PO}, {"tfo", g.TFO}, {"addr", g.Addr}, {"data", g.Data},
		{"ctrl", g.Ctrl}, {"addr_gep", g.AddrGEP}, {"fence", g.Fence},
		{"rf", g.RF}, {"co", g.CO}, {"rfx", g.RFX}, {"cox", g.COX},
	} {
		if err := inRange(nr.name, nr.r); err != nil {
			return err
		}
	}
	// po ⊆ tfo (§3.3) and po relates committed events only.
	for _, p := range g.PO.Pairs() {
		if !g.TFO.Has(p.From, p.To) {
			return fmt.Errorf("po pair %v not in tfo", p)
		}
		if !g.Events[p.From].Committed() || !g.Events[p.To].Committed() {
			return fmt.Errorf("po pair %v involves a transient or prefetch event", p)
		}
	}
	if !g.PO.IsAcyclic() {
		return fmt.Errorf("po is cyclic: %v", g.PO.FindCycle())
	}
	if !g.TFO.IsAcyclic() {
		return fmt.Errorf("tfo is cyclic: %v", g.TFO.FindCycle())
	}
	// addr_gep ⊆ addr.
	for _, p := range g.AddrGEP.Pairs() {
		if !g.Addr.Has(p.From, p.To) {
			return fmt.Errorf("addr_gep pair %v not in addr", p)
		}
	}
	// Dependencies originate at reads (§2.1.3).
	for _, rel := range []*relation.Relation{g.Addr, g.Data, g.Ctrl} {
		for _, p := range rel.Pairs() {
			if !g.Events[p.From].IsRead() {
				return fmt.Errorf("dependency %v does not originate at a read", p)
			}
		}
	}
	// rf: writers (or Top) to same-location readers; each read from at most
	// one write.
	rfInto := make(map[int]int)
	for _, p := range g.RF.Pairs() {
		w, r := g.Events[p.From], g.Events[p.To]
		if !(w.IsWrite() || w.Kind == KTop) {
			return fmt.Errorf("rf source %d is not a write", p.From)
		}
		if !r.IsRead() && r.Kind != KBottom {
			return fmt.Errorf("rf target %d is not a read", p.To)
		}
		if !g.SameLoc(p.From, p.To) && r.Kind != KBottom {
			return fmt.Errorf("rf pair %v relates different locations", p)
		}
		rfInto[p.To]++
		if rfInto[p.To] > 1 {
			return fmt.Errorf("read %d has multiple rf sources", p.To)
		}
	}
	// co: same-location writes, acyclic.
	for _, p := range g.CO.Pairs() {
		w0, w1 := g.Events[p.From], g.Events[p.To]
		if !(w0.IsWrite() || w0.Kind == KTop) || !w1.IsWrite() {
			return fmt.Errorf("co pair %v is not write→write", p)
		}
		if !g.SameLoc(p.From, p.To) {
			return fmt.Errorf("co pair %v relates different locations", p)
		}
	}
	if !g.CO.IsAcyclic() {
		return fmt.Errorf("co is cyclic")
	}
	// rfx: xstate writers to same-xstate readers, at most one source per
	// reader per xstate. We key on (reader, xstate-of-writer) to allow a
	// Bottom observer to read several xstate elements.
	type rk struct {
		reader int
		xs     XSID
	}
	rfxInto := make(map[rk]int)
	for _, p := range g.RFX.Pairs() {
		w, r := g.Events[p.From], g.Events[p.To]
		if !w.WritesX() {
			return fmt.Errorf("rfx source %d does not write xstate", p.From)
		}
		if !r.ReadsX() {
			return fmt.Errorf("rfx target %d does not read xstate", p.To)
		}
		if !g.SameX(p.From, p.To) {
			return fmt.Errorf("rfx pair %v relates different xstate", p)
		}
		key := rk{p.To, g.Events[p.From].XState}
		rfxInto[key]++
		if rfxInto[key] > 1 && r.Kind != KBottom {
			return fmt.Errorf("event %d has multiple rfx sources for one xstate", p.To)
		}
	}
	for _, p := range g.COX.Pairs() {
		if !g.Events[p.From].WritesX() || !g.Events[p.To].WritesX() {
			return fmt.Errorf("cox pair %v is not xwrite→xwrite", p)
		}
		if !g.SameX(p.From, p.To) {
			return fmt.Errorf("cox pair %v relates different xstate", p)
		}
	}
	if !g.COX.IsAcyclic() {
		return fmt.Errorf("cox is cyclic")
	}
	return nil
}

// String renders the graph as a deterministic multi-line listing.
func (g *Graph) String() string {
	var lines []string
	for _, e := range g.Events {
		lines = append(lines, e.String())
	}
	add := func(name string, r *relation.Relation) {
		if !r.IsEmpty() {
			lines = append(lines, fmt.Sprintf("%s: %s", name, r))
		}
	}
	add("po", g.PO)
	add("tfo", g.TFO)
	add("addr", g.Addr)
	add("data", g.Data)
	add("ctrl", g.Ctrl)
	add("rf", g.RF)
	add("co", g.CO)
	add("rfx", g.RFX)
	add("cox", g.COX)
	sortedJoin := ""
	for i, l := range lines {
		if i > 0 {
			sortedJoin += "\n"
		}
		sortedJoin += l
	}
	return sortedJoin
}

// EventsSorted returns events sorted by ID (they already are, by
// construction; this is a defensive accessor used by renderers).
func (g *Graph) EventsSorted() []*Event {
	es := append([]*Event(nil), g.Events...)
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	return es
}
