package event

import (
	"strings"
	"testing"
)

// buildSpectreV1Taken reconstructs the taken-path candidate execution of
// Fig. 1d extended with the microarchitectural semantics of Fig. 2a.
func buildSpectreV1Taken(t *testing.T) (*Builder, map[string]*Event) {
	t.Helper()
	b := NewBuilder()
	s0, s1, s2 := b.FreshX(), b.FreshX(), b.FreshX()
	top := b.Top()

	e2 := b.Read(0, "y", s0, XRW, "R y (RW s0) → r2")
	e5 := b.Read(0, "A+r2", s1, XRW, "R A+r2 (RW s1) → r4")
	e6 := b.Read(0, "B+r4", s2, XRW, "R B+r4 (RW s2) → r5")
	bot := b.Bottom(0)

	b.AddrDep(e2, e5, true)
	b.AddrDep(e5, e6, true)

	b.RF(top, e2)
	b.RF(top, e5)
	b.RF(top, e6)

	b.RFX(top, e2)
	b.RFX(e2, bot) // observer probes s0 populated by e2
	b.RFX(e5, bot)
	b.RFX(e6, bot)

	return b, map[string]*Event{"top": top, "2": e2, "5": e5, "6": e6, "bot": bot}
}

func TestBuilderSpectreV1Shape(t *testing.T) {
	b, ev := buildSpectreV1Taken(t)
	g := b.Finish()

	if got := len(g.Events); got != 5 {
		t.Fatalf("events = %d, want 5", got)
	}
	// po is transitive: top→2→5→6→bot plus closure pairs.
	for _, pair := range [][2]*Event{
		{ev["top"], ev["2"]}, {ev["2"], ev["5"]}, {ev["5"], ev["6"]},
		{ev["top"], ev["6"]}, {ev["2"], ev["bot"]},
	} {
		if !g.PO.Has(pair[0].ID, pair[1].ID) {
			t.Errorf("po missing %v→%v", pair[0].ID, pair[1].ID)
		}
	}
	// po ⊆ tfo.
	for _, p := range g.PO.Pairs() {
		if !g.TFO.Has(p.From, p.To) {
			t.Errorf("po pair %v missing from tfo", p)
		}
	}
	if !g.Addr.Has(ev["2"].ID, ev["5"].ID) || !g.AddrGEP.Has(ev["2"].ID, ev["5"].ID) {
		t.Error("addr/addr_gep 2→5 missing")
	}
	if g.RF.Len() != 3 {
		t.Errorf("rf size = %d, want 3", g.RF.Len())
	}
}

func TestEventPredicates(t *testing.T) {
	b := NewBuilder()
	x := b.FreshX()
	top := b.Top()
	r := b.Read(0, "x", x, XR, "")
	w := b.Write(0, "x", x, XRW, "")
	tr := b.TransientRead(0, "y", b.FreshX(), XRW, "")
	pf := b.PrefetchRead(0, "z", b.FreshX(), "")
	br := b.Branch(0, "")
	bot := b.Bottom(0)

	if !top.WritesX() || !top.Committed() {
		t.Error("Top predicates wrong")
	}
	if !r.IsMemory() || !r.IsRead() || r.WritesX() || !r.ReadsX() {
		t.Error("read-hit predicates wrong")
	}
	if !w.IsMemory() || !w.IsWrite() || !w.WritesX() {
		t.Error("write predicates wrong")
	}
	if !tr.Transient || tr.Committed() || !tr.IsMemory() {
		t.Error("transient predicates wrong")
	}
	if !pf.Prefetch || pf.IsMemory() || pf.Committed() || !pf.WritesX() {
		t.Error("prefetch predicates wrong")
	}
	if br.IsMemory() || br.AccessesX() {
		t.Error("branch predicates wrong")
	}
	if !bot.ReadsX() || bot.WritesX() {
		t.Error("bottom predicates wrong")
	}
}

func TestTransientNotInPO(t *testing.T) {
	b := NewBuilder()
	r1 := b.Read(0, "x", b.FreshX(), XRW, "")
	tr := b.TransientRead(0, "y", b.FreshX(), XRW, "")
	r2 := b.Read(0, "z", b.FreshX(), XRW, "")
	b.RF(b.Top(), r1)
	b.RF(b.Top(), tr)
	b.RF(b.Top(), r2)
	g := b.Finish()

	if g.PO.Has(r1.ID, tr.ID) || g.PO.Has(tr.ID, r2.ID) {
		t.Error("transient event appears in po")
	}
	// But tfo orders all three: r1 → tr → r2.
	if !g.TFO.Has(r1.ID, tr.ID) || !g.TFO.Has(tr.ID, r2.ID) {
		t.Error("tfo missing transient ordering")
	}
	// po still orders committed events across the transient window.
	if !g.PO.Has(r1.ID, r2.ID) {
		t.Error("po missing committed r1→r2")
	}
	ts := g.TransientEvents()
	if ts.Len() != 1 || !ts.Has(tr.ID) {
		t.Errorf("TransientEvents = %v", ts)
	}
}

func TestFRDerivation(t *testing.T) {
	// w' rf→ r, w' co→ w  ⟹  r fr→ w.
	b := NewBuilder()
	x := b.FreshX()
	top := b.Top()
	r := b.Read(0, "a", x, XRW, "")
	w := b.Write(0, "a", x, XRW, "")
	b.RF(top, r)
	b.CO(top, w)
	g := b.Finish()

	fr := g.FR()
	if !fr.Has(r.ID, w.ID) {
		t.Fatalf("fr = %v, want %d→%d", fr, r.ID, w.ID)
	}
	com := g.Com()
	if !com.Has(top.ID, r.ID) || !com.Has(top.ID, w.ID) || !com.Has(r.ID, w.ID) {
		t.Errorf("com = %v", com)
	}
}

func TestFRXDerivation(t *testing.T) {
	b := NewBuilder()
	x := b.FreshX()
	top := b.Top()
	r := b.Read(0, "a", x, XR, "")
	w := b.Write(0, "a", x, XRW, "")
	b.RF(top, r)
	b.CO(top, w)
	b.RFX(top, r)
	b.COX(top, w)
	g := b.Finish()

	frx := g.FRX()
	if !frx.Has(r.ID, w.ID) {
		t.Fatalf("frx = %v", frx)
	}
	comx := g.ComX()
	if !comx.Has(r.ID, w.ID) || !comx.Has(top.ID, w.ID) {
		t.Errorf("comx = %v", comx)
	}
}

func TestSameLocSameX(t *testing.T) {
	b := NewBuilder()
	x := b.FreshX()
	top := b.Top()
	r1 := b.Read(0, "a", x, XR, "")
	r2 := b.Read(0, "a", b.FreshX(), XR, "")
	r3 := b.Read(0, "b", x, XR, "")
	bot := b.Bottom(0)
	b.RF(top, r1)
	b.RF(top, r2)
	b.RF(top, r3)
	g := b.Finish()

	if !g.SameLoc(r1.ID, r2.ID) || g.SameLoc(r1.ID, r3.ID) {
		t.Error("SameLoc wrong")
	}
	if !g.SameLoc(top.ID, r3.ID) {
		t.Error("Top should match every location")
	}
	if !g.SameX(r1.ID, r3.ID) || g.SameX(r1.ID, r2.ID) {
		t.Error("SameX wrong")
	}
	if !g.SameX(bot.ID, r2.ID) || !g.SameX(top.ID, r1.ID) {
		t.Error("brackets should match every xstate")
	}
}

func TestRFIvsRFE(t *testing.T) {
	b := NewBuilder()
	x := b.FreshX()
	w := b.Write(0, "a", x, XRW, "")
	r0 := b.Read(0, "a", x, XR, "")
	r1 := b.Read(1, "a", b.FreshX(), XR, "")
	b.RF(w, r0)
	b.RF(w, r1)
	b.CO(b.Top(), w)
	g := b.Finish()

	rfi, rfe := g.RFI(), g.RFE()
	if rfi.Len() != 1 || !rfi.Has(w.ID, r0.ID) {
		t.Errorf("rfi = %v", rfi)
	}
	if rfe.Len() != 1 || !rfe.Has(w.ID, r1.ID) {
		t.Errorf("rfe = %v", rfe)
	}
}

func TestPOLocAndTFOLoc(t *testing.T) {
	b := NewBuilder()
	x := b.FreshX()
	w := b.Write(0, "a", x, XRW, "")
	tr := b.TransientRead(0, "a", x, XR, "")
	r := b.Read(0, "a", x, XR, "")
	r2 := b.Read(0, "b", b.FreshX(), XR, "")
	b.RF(w, r)
	b.RF(w, tr)
	b.RF(b.Top(), r2)
	b.CO(b.Top(), w)
	g := b.Finish()

	if !g.POLoc().Has(w.ID, r.ID) || g.POLoc().Has(w.ID, r2.ID) {
		t.Error("po_loc wrong")
	}
	// tfo_loc includes the transient same-address read (Spectre v4 shape).
	if !g.TFOLoc().Has(w.ID, tr.ID) {
		t.Error("tfo_loc should include transient same-address read")
	}
	if g.POLoc().Has(w.ID, tr.ID) {
		t.Error("po_loc must not include transient events")
	}
}

func TestValidateCatchesMalformation(t *testing.T) {
	mk := func(mutate func(g *Graph)) error {
		b := NewBuilder()
		x := b.FreshX()
		w := b.Write(0, "a", x, XRW, "")
		r := b.Read(0, "a", x, XR, "")
		b.RF(w, r)
		b.CO(b.Top(), w)
		g := b.Graph()
		g.PO = g.PO.TransitiveClosure()
		g.TFO = g.TFO.TransitiveClosure()
		mutate(g)
		return g.Validate()
	}
	if err := mk(func(g *Graph) {}); err != nil {
		t.Fatalf("well-formed graph rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(g *Graph)
	}{
		{"rf from read", func(g *Graph) { g.RF.Add(2, 2) }},
		{"double rf", func(g *Graph) { g.RF.Add(0, 2) }},
		{"rf cross-location", func(g *Graph) {
			g.Events = append(g.Events, &Event{ID: 3, Kind: KWrite, Loc: "zz"})
			g.RF.Remove(1, 2)
			g.RF.Add(3, 2)
		}},
		{"po cycle", func(g *Graph) { g.PO.Add(2, 1); g.TFO.Add(2, 1) }},
		{"po not in tfo", func(g *Graph) { g.PO.Add(0, 0) }},
		{"dep from write", func(g *Graph) { g.Addr.Add(1, 2) }},
		{"addr_gep not in addr", func(g *Graph) { g.AddrGEP.Add(2, 1) }},
		{"co cross-location", func(g *Graph) {
			g.Events = append(g.Events, &Event{ID: 3, Kind: KWrite, Loc: "zz"})
			g.CO.Add(1, 3)
		}},
		{"unknown event in rel", func(g *Graph) { g.PO.Add(0, 99); g.TFO.Add(0, 99) }},
	}
	for _, tc := range cases {
		if err := mk(tc.mutate); err == nil {
			t.Errorf("%s: Validate accepted malformed graph", tc.name)
		}
	}
}

func TestFinishPanicsOnMalformed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder()
	r := b.Read(0, "a", b.FreshX(), XR, "")
	b.g.RF.Add(r.ID, r.ID) // read as rf source: malformed
	b.Finish()
}

func TestStringRendering(t *testing.T) {
	b, _ := buildSpectreV1Taken(t)
	g := b.Finish()
	s := g.String()
	for _, want := range []string{"⊤", "⊥", "R y (RW s0)", "po:", "rf:", "rfx:", "addr:"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	if ks := KRead.String(); ks != "R" {
		t.Errorf("KRead.String() = %q", ks)
	}
	if as := XRW.String(); as != "RW" {
		t.Errorf("XRW.String() = %q", as)
	}
}

func TestCloneDeepCopiesRelations(t *testing.T) {
	b, ev := buildSpectreV1Taken(t)
	g := b.Finish()
	c := g.Clone()
	c.RF.Add(ev["2"].ID, ev["bot"].ID)
	if g.RF.Has(ev["2"].ID, ev["bot"].ID) {
		t.Error("Clone shares rf storage")
	}
}

func TestReadsWritesSets(t *testing.T) {
	b := NewBuilder()
	x := b.FreshX()
	w := b.Write(0, "a", x, XRW, "")
	r := b.Read(0, "a", x, XR, "")
	pf := b.PrefetchRead(0, "b", b.FreshX(), "")
	b.RF(w, r)
	b.CO(b.Top(), w)
	g := b.Finish()

	if rs := g.Reads(); rs.Len() != 1 || !rs.Has(r.ID) {
		t.Errorf("Reads = %v (prefetch %d must be excluded)", rs, pf.ID)
	}
	if ws := g.Writes(); ws.Len() != 1 || !ws.Has(w.ID) {
		t.Errorf("Writes = %v", ws)
	}
	if ms := g.MemoryEvents(); ms.Len() != 2 {
		t.Errorf("MemoryEvents = %v", ms)
	}
	if len(g.Tops()) != 1 || len(g.Bottoms()) != 0 {
		t.Error("bracket counts wrong")
	}
}
