// Package event implements the axiomatic vocabulary shared by memory
// consistency models (MCMs) and leakage containment models (LCMs): event
// structures, candidate executions, and the relations of §2.1 and §3.2 of
// "Axiomatic Hardware-Software Contracts for Security" (ISCA 2022) —
// po, tfo, addr/data/ctrl dependencies, the architectural communication
// relations rf/co/fr, and their microarchitectural liftings rfx/cox/frx
// over extra-architectural state (xstate).
package event

import "fmt"

// Kind classifies an event.
type Kind int

// Event kinds. Top (⊤) stands for the set of initialization writes of all
// architectural and microarchitectural state; Bottom (⊥) stands for an
// observer access probing final state after the program runs (§3.2). Branch
// and Fence events never access memory but participate in po/tfo/ctrl.
const (
	KRead Kind = iota
	KWrite
	KBranch
	KFence
	KSkip
	KTop
	KBottom
)

var kindNames = [...]string{"R", "W", "BR", "F", "skip", "⊤", "⊥"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Location is an architectural memory location (a symbolic address).
type Location string

// XSID identifies an xstate element — an abstract bundle of the core-private
// cache line and LSQ entry accessed on behalf of a memory instruction
// (§3.2.1). XNone marks events that touch no xstate.
type XSID int

// XNone marks events with no xstate access.
const XNone XSID = -1

// XAccess is the mode in which an event accesses its xstate element.
type XAccess int

// xstate access modes, per §3.2.1: a read hit microarchitecturally reads
// xstate (XR); a read miss and any write read-modify-write it (XRW). A
// silent store (§4.2) degrades a write's access from XRW to XR. XNoAccess
// is for events with no xstate (branches, fences).
const (
	XNoAccess XAccess = iota
	XR                // microarchitectural read (cache hit / LSQ forward)
	XRW               // microarchitectural read-modify-write (miss / write)
)

func (a XAccess) String() string {
	switch a {
	case XR:
		return "R"
	case XRW:
		return "RW"
	default:
		return "-"
	}
}

// Event is one node of an event structure or candidate execution.
type Event struct {
	ID     int
	Kind   Kind
	Thread int
	// Loc is the architectural location accessed (Read/Write only). The
	// address relation of §2.1.1 is the map Event→Loc induced by this field.
	Loc Location
	// XState is the xstate element this event accesses, and XAcc how.
	// Top events implicitly initialize every xstate element; Bottom events
	// observe every xstate element.
	XState XSID
	XAcc   XAccess
	// Transient marks events ordered by tfo but not po — instructions that
	// are fetched and squashed (§3.3). Top/Bottom are never transient.
	Transient bool
	// Prefetch marks non-architectural prefetcher events (Fig. 5b). They
	// participate in tfo and comx but not in po or com.
	Prefetch bool
	// Label is a human-readable rendering, e.g. "R A+r2 → r4".
	Label string
}

// IsMemory reports whether e is an architectural memory event (Read/Write,
// not Top/Bottom/prefetch).
func (e *Event) IsMemory() bool {
	return (e.Kind == KRead || e.Kind == KWrite) && !e.Prefetch
}

// IsRead reports whether e is a Read memory event (including prefetch reads).
func (e *Event) IsRead() bool { return e.Kind == KRead }

// IsWrite reports whether e is a Write memory event.
func (e *Event) IsWrite() bool { return e.Kind == KWrite }

// Committed reports whether e commits architecturally: not transient and
// not a prefetch. Top and Bottom count as committed brackets.
func (e *Event) Committed() bool { return !e.Transient && !e.Prefetch }

// AccessesX reports whether e accesses any xstate element.
func (e *Event) AccessesX() bool { return e.XState != XNone && e.XAcc != XNoAccess }

// WritesX reports whether e microarchitecturally writes its xstate element
// (a read-modify-write access). Top writes all xstate.
func (e *Event) WritesX() bool { return e.Kind == KTop || (e.AccessesX() && e.XAcc == XRW) }

// ReadsX reports whether e microarchitecturally reads xstate. Bottom reads
// all xstate.
func (e *Event) ReadsX() bool { return e.Kind == KBottom || e.AccessesX() }

func (e *Event) String() string {
	if e.Label != "" {
		return fmt.Sprintf("%d: %s", e.ID, e.Label)
	}
	tag := ""
	if e.Transient {
		tag = "ₛ"
	}
	if e.Prefetch {
		tag = "ₚ"
	}
	switch e.Kind {
	case KRead, KWrite:
		if e.XState != XNone {
			return fmt.Sprintf("%d: %s%s %s (%s s%d)", e.ID, e.Kind, tag, e.Loc, e.XAcc, e.XState)
		}
		return fmt.Sprintf("%d: %s%s %s", e.ID, e.Kind, tag, e.Loc)
	case KTop, KBottom:
		return fmt.Sprintf("%d: %s", e.ID, e.Kind)
	default:
		return fmt.Sprintf("%d: %s%s", e.ID, e.Kind, tag)
	}
}
