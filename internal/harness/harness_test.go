package harness

import (
	"os"
	"testing"
	"time"
)

func TestLitmusRows(t *testing.T) {
	for _, suite := range []string{"pht", "stl", "fwd", "new"} {
		rows, err := RunLitmusSuite(suite, Options{FuncTimeout: 10 * time.Second})
		if err != nil {
			t.Fatalf("%s: %v", suite, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s: rows = %d", suite, len(rows))
		}
		for _, r := range rows {
			t.Log(r.Format())
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 in -short mode")
	}
	pts, err := RunFig8(Options{FuncTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !MonotoneTrend(pts) {
		t.Error("runtime does not grow with S-AEG size")
	}
	WriteFig8(os.Stderr, pts[:5])
}
