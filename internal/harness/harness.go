// Package harness regenerates the paper's evaluation artifacts: the
// Table 2 rows (runtimes and classified transmitter counts for Clou-pht /
// Clou-stl versus the BH-style baseline, over the litmus suites and the
// crypto-library corpus) and the Fig. 8 runtime-versus-size series.
//
// Sweeps fan out over a bounded worker pool (Options.Parallelism, the -j
// of the command-line tools): every per-function detect.AnalyzeFunc call
// is an independent job, results are written into index-addressed slots,
// and rows are reassembled in input order — so the output is byte-for-byte
// identical at any worker count. Library sources are parsed and lowered
// once per process, and the engine-independent front end (A-CFG, alias,
// taint, reachability, value flow) is shared between the PHT and STL
// engines through a process-wide detect.Cache.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"lcm/internal/baseline"
	"lcm/internal/core"
	"lcm/internal/cryptolib"
	"lcm/internal/detect"
	"lcm/internal/ir"
	"lcm/internal/litmus"
	"lcm/internal/lower"
	"lcm/internal/minic"
	"lcm/internal/obsv"
	"lcm/internal/smt"
)

// Row is one Table 2 row for one tool on one workload.
type Row struct {
	App      string
	Tool     string
	Time     time.Duration
	Counts   map[core.Class]int
	Leaks    int // baseline's flat count
	Funcs    int
	TimedOut int
	// Queries totals solver queries across the row's functions (Clou
	// rows only).
	Queries int
	// Pre-solver totals across the row's functions: statically discharged
	// candidates, solver queries skipped, audit replays, and audit
	// disagreements (which must be zero — the conformance harness and the
	// audit-presolve CI job assert it).
	Discharged     int
	SkippedQueries int
	Audited        int
	Disagreements  int
	// Solver self-check totals (Options.SolverMode == smt.ModeCheck):
	// query verdicts replayed on a fresh reference solver, and verdicts
	// that disagreed — any nonzero SolverMismatches is an incremental-
	// soundness bug, and the equivalence battery asserts it stays zero.
	SolverChecks     int64
	SolverMismatches int64
	// Workers records the parallelism the row was produced with; it is
	// not part of Format, so output stays comparable across -j values.
	Workers int
	// Findings concatenates the per-function findings in input order
	// (Clou rows only). Not printed by Format; the determinism guard
	// compares these across worker counts.
	Findings []detect.Finding
}

// Format renders the row like Table 2: time then DT/CT/UDT/UCT counts.
func (r Row) Format() string {
	if r.Tool == "bh-pht" || r.Tool == "bh-stl" {
		return fmt.Sprintf("%-14s %-9s %10.2fs  leaks=%d", r.App, r.Tool, r.Time.Seconds(), r.Leaks)
	}
	return fmt.Sprintf("%-14s %-9s %10.2fs  DT=%d CT=%d UDT=%d UCT=%d",
		r.App, r.Tool, r.Time.Seconds(),
		r.Counts[core.DT], r.Counts[core.CT], r.Counts[core.UDT], r.Counts[core.UCT])
}

// Options bound harness runs so benchmarks terminate predictably.
type Options struct {
	FuncTimeout time.Duration // per-function budget (Table 2 uses 1h/6h)
	MaxQueries  int
	// CryptoUniversalOnly restricts crypto-library searches to UDT/UCT
	// (§6.2: "For crypto-libraries, Clou looks for UDTs and UCTs only").
	CryptoUniversalOnly bool
	// Parallelism bounds concurrent per-function analyses; 0 means
	// runtime.GOMAXPROCS(0). 1 reproduces the serial pipeline exactly.
	Parallelism int
	// Tracer, when non-nil, records one root span per sweep, with
	// per-stage ("clou", "baseline") and per-function children. Nil (the
	// default) disables tracing at zero cost.
	Tracer *obsv.Tracer
	// Metrics, when non-nil, receives the detect.* and sat.* counters of
	// every analyzed function.
	Metrics *obsv.Registry
	// NoPresolve disables the static pre-solver (ablation baseline);
	// AuditPresolve replays every statically refuted query through the
	// solver and counts disagreements instead of skipping it.
	NoPresolve    bool
	AuditPresolve bool
	// SolverMode selects how residual queries are discharged: warm
	// incremental CDCL (default), a fresh replayed reference instance per
	// query, or both with verdict self-checking (smt.ModeCheck).
	SolverMode smt.Mode
}

func (o *Options) defaults() {
	if o.FuncTimeout == 0 {
		o.FuncTimeout = 20 * time.Second
	}
	if o.MaxQueries == 0 {
		o.MaxQueries = 4000
	}
	if o.Parallelism == 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// modEntry is one slot of the process-wide compile cache; once makes
// concurrent first compilations of the same source collapse into one.
type modEntry struct {
	once sync.Once
	m    *ir.Module
	err  error
}

// modCache maps source text to its lowered module, so each litmus case or
// corpus library is parsed and lowered once per process rather than once
// per engine per benchmark iteration. Compiled modules are never mutated
// by the harness (repair clones its own), so sharing is safe.
var modCache sync.Map // string → *modEntry

func compileSrc(src string) (*ir.Module, error) {
	e, _ := modCache.LoadOrStore(src, &modEntry{})
	ent := e.(*modEntry)
	ent.once.Do(func() {
		f, err := minic.Parse(src)
		if err != nil {
			ent.err = err
			return
		}
		ent.m, ent.err = lower.Module(f)
	})
	return ent.m, ent.err
}

// analysisCache is the process-wide front-end cache shared by every
// harness run; it is keyed by module pointer, and modCache guarantees
// those pointers are stable per source for the life of the process.
var analysisCache = detect.NewCache()

// CacheStats reports the process-wide analysis-cache hit/miss counters
// (clou -v and the bench tooling surface these).
func CacheStats() (hits, misses int64) { return analysisCache.Stats() }

// ResetFrontendCache discards the process-wide front-end cache, forcing the
// next analysis to rebuild every frontend from scratch. Benchmarks use it
// to measure cold frontends; concurrent analyses simply miss into the fresh
// cache, so calling it mid-run costs recomputation, never correctness.
func ResetFrontendCache() { analysisCache = detect.NewCache() }

func clouConfig(engine detect.Engine, opts Options, universalOnly bool, span *obsv.Span) detect.Config {
	cfg := detect.DefaultConfig(engine)
	cfg.Timeout = opts.FuncTimeout
	cfg.MaxQueries = opts.MaxQueries
	cfg.ShardWorkers = opts.Parallelism
	cfg.Cache = analysisCache
	cfg.Span = span
	cfg.Metrics = opts.Metrics
	cfg.NoPresolve = opts.NoPresolve
	cfg.AuditPresolve = opts.AuditPresolve
	cfg.AEG.SolverMode = opts.SolverMode
	if universalOnly {
		cfg.Transmitters = []core.Class{core.UDT, core.UCT}
	}
	return cfg
}

// addResult folds one function's analysis into a row.
func (r *Row) addResult(res *detect.Result) {
	r.Time += res.Duration
	for cl, n := range res.Counts() {
		r.Counts[cl] += n
	}
	r.Funcs++
	r.Queries += res.Queries
	r.Discharged += res.Discharged
	r.SkippedQueries += res.SkippedQueries
	r.Audited += res.PresolveAudited
	r.Disagreements += res.PresolveDisagreements
	r.SolverChecks += res.SolverChecks
	r.SolverMismatches += res.SolverMismatches
	r.Findings = append(r.Findings, res.Findings...)
	if res.TimedOut {
		r.TimedOut++
	}
}

// RunLitmusSuite produces the Clou and baseline rows for one suite
// ("pht", "stl", "fwd", "new", "psf", "imp", "ss").
func RunLitmusSuite(suite string, opts Options) ([]Row, error) {
	opts.defaults()
	root := opts.Tracer.Start("litmus-" + suite)
	defer root.End()
	cases := litmus.Suites()[suite]
	engines := []detect.Engine{detect.PHT}
	switch suite {
	case "stl":
		engines = []detect.Engine{detect.STL}
	case "fwd", "new":
		engines = []detect.Engine{detect.PHT, detect.STL}
	case "psf":
		engines = []detect.Engine{detect.PSF}
	case "imp":
		engines = []detect.Engine{detect.IMP}
	case "ss":
		engines = []detect.Engine{detect.SS}
	}

	// Clou jobs: engine-major over the suite's cases.
	results := make([]*detect.Result, len(engines)*len(cases))
	err := ForEachSpan(root, "clou", opts.Parallelism, len(results), func(i int, sp *obsv.Span) error {
		e, c := engines[i/len(cases)], cases[i%len(cases)]
		m, err := compileSrc(c.Source)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		r, err := detect.AnalyzeFunc(m, c.Fn, clouConfig(e, opts, false, sp))
		if err != nil {
			return fmt.Errorf("%s: %w", c.Name, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Row
	for ei, e := range engines {
		row := Row{App: "litmus-" + suite, Tool: e.String(), Counts: map[core.Class]int{}, Workers: opts.Parallelism}
		for ci := range cases {
			row.addResult(results[ei*len(cases)+ci])
		}
		rows = append(rows, row)
	}

	// Baseline rows. The Blade/oo7-style baseline only models branch and
	// store-bypass speculation, so the taxonomy suites get no baseline —
	// there is nothing meaningful for it to measure there.
	switch suite {
	case "psf", "imp", "ss":
		return rows, nil
	}
	bres := make([]*baseline.Result, len(engines)*len(cases))
	err = ForEachSpan(root, "baseline", opts.Parallelism, len(bres), func(i int, _ *obsv.Span) error {
		e, c := engines[i/len(cases)], cases[i%len(cases)]
		cfg := baseline.Config{PHT: e != detect.STL, Timeout: opts.FuncTimeout}
		m, err := compileSrc(c.Source)
		if err != nil {
			return err
		}
		r, err := baseline.AnalyzeFunc(m, c.Fn, cfg)
		if err != nil {
			return err
		}
		bres[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ei, e := range engines {
		tool := "bh-pht"
		if e == detect.STL {
			tool = "bh-stl"
		}
		row := Row{App: "litmus-" + suite, Tool: tool, Workers: opts.Parallelism}
		for ci := range cases {
			r := bres[ei*len(cases)+ci]
			row.Time += r.Duration
			row.Leaks += r.Leaks
			row.Funcs++
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunLibrary produces Clou rows (both engines) for one corpus library,
// analyzing each public function individually like §6.2.
func RunLibrary(lib cryptolib.Library, opts Options) ([]Row, error) {
	opts.defaults()
	root := opts.Tracer.Start("library-" + lib.Name)
	defer root.End()
	m, err := compileSrc(lib.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", lib.Name, err)
	}
	engines := []detect.Engine{detect.PHT, detect.STL}
	results := make([]*detect.Result, len(engines)*len(lib.PublicFuncs))
	err = ForEachSpan(root, "clou", opts.Parallelism, len(results), func(i int, sp *obsv.Span) error {
		e, fn := engines[i/len(lib.PublicFuncs)], lib.PublicFuncs[i%len(lib.PublicFuncs)]
		r, err := detect.AnalyzeFunc(m, fn, clouConfig(e, opts, opts.CryptoUniversalOnly, sp))
		if err != nil {
			return fmt.Errorf("%s/%s: %w", lib.Name, fn, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Row
	for ei, e := range engines {
		row := Row{App: lib.Name, Tool: e.String(), Counts: map[core.Class]int{}, Workers: opts.Parallelism}
		for fi := range lib.PublicFuncs {
			row.addResult(results[ei*len(lib.PublicFuncs)+fi])
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8Point is one scatter point of Fig. 8: serial runtime versus S-AEG
// node count for one public function.
type Fig8Point struct {
	Fn      string
	Engine  string
	Nodes   int
	Runtime time.Duration
}

// RunFig8 produces the runtime-versus-size series over the libsodium-like
// corpus, for both engines.
func RunFig8(opts Options) ([]Fig8Point, error) {
	opts.defaults()
	root := opts.Tracer.Start("fig8")
	defer root.End()
	lib := cryptolib.Libsodium()
	m, err := compileSrc(lib.Source)
	if err != nil {
		return nil, err
	}
	engines := []detect.Engine{detect.PHT, detect.STL}
	pts := make([]Fig8Point, len(engines)*len(lib.PublicFuncs))
	err = ForEachSpan(root, "clou", opts.Parallelism, len(pts), func(i int, sp *obsv.Span) error {
		e, fn := engines[i/len(lib.PublicFuncs)], lib.PublicFuncs[i%len(lib.PublicFuncs)]
		r, err := detect.AnalyzeFunc(m, fn, clouConfig(e, opts, true, sp))
		if err != nil {
			return fmt.Errorf("%s: %w", fn, err)
		}
		pts[i] = Fig8Point{Fn: fn, Engine: e.String(), Nodes: r.NodeCount, Runtime: r.Duration}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].Nodes < pts[j].Nodes })
	return pts, nil
}

// WriteFig8 renders the series as a text table (the regenerable form of
// the figure).
func WriteFig8(w io.Writer, pts []Fig8Point) {
	fmt.Fprintf(w, "%-34s %-9s %8s %12s\n", "function", "engine", "nodes", "runtime")
	for _, p := range pts {
		fmt.Fprintf(w, "%-34s %-9s %8d %12v\n", p.Fn, p.Engine, p.Nodes, p.Runtime)
	}
}

// MonotoneTrend reports whether runtimes broadly grow with node count:
// the Fig. 8 shape check. It compares mean runtime of the smallest and
// largest thirds.
func MonotoneTrend(pts []Fig8Point) bool {
	if len(pts) < 6 {
		return true
	}
	third := len(pts) / 3
	var lo, hi time.Duration
	for _, p := range pts[:third] {
		lo += p.Runtime
	}
	for _, p := range pts[len(pts)-third:] {
		hi += p.Runtime
	}
	return hi > lo
}
