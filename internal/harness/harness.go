// Package harness regenerates the paper's evaluation artifacts: the
// Table 2 rows (runtimes and classified transmitter counts for Clou-pht /
// Clou-stl versus the BH-style baseline, over the litmus suites and the
// crypto-library corpus) and the Fig. 8 runtime-versus-size series.
package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"lcm/internal/baseline"
	"lcm/internal/core"
	"lcm/internal/cryptolib"
	"lcm/internal/detect"
	"lcm/internal/ir"
	"lcm/internal/litmus"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

// Row is one Table 2 row for one tool on one workload.
type Row struct {
	App      string
	Tool     string
	Time     time.Duration
	Counts   map[core.Class]int
	Leaks    int // baseline's flat count
	Funcs    int
	TimedOut int
}

// Format renders the row like Table 2: time then DT/CT/UDT/UCT counts.
func (r Row) Format() string {
	if r.Tool == "bh-pht" || r.Tool == "bh-stl" {
		return fmt.Sprintf("%-14s %-9s %10.2fs  leaks=%d", r.App, r.Tool, r.Time.Seconds(), r.Leaks)
	}
	return fmt.Sprintf("%-14s %-9s %10.2fs  DT=%d CT=%d UDT=%d UCT=%d",
		r.App, r.Tool, r.Time.Seconds(),
		r.Counts[core.DT], r.Counts[core.CT], r.Counts[core.UDT], r.Counts[core.UCT])
}

// Options bound harness runs so benchmarks terminate predictably.
type Options struct {
	FuncTimeout time.Duration // per-function budget (Table 2 uses 1h/6h)
	MaxQueries  int
	// CryptoUniversalOnly restricts crypto-library searches to UDT/UCT
	// (§6.2: "For crypto-libraries, Clou looks for UDTs and UCTs only").
	CryptoUniversalOnly bool
}

func (o *Options) defaults() {
	if o.FuncTimeout == 0 {
		o.FuncTimeout = 20 * time.Second
	}
	if o.MaxQueries == 0 {
		o.MaxQueries = 4000
	}
}

func compileSrc(src string) (*ir.Module, error) {
	f, err := minic.Parse(src)
	if err != nil {
		return nil, err
	}
	return lower.Module(f)
}

func clouConfig(engine detect.Engine, opts Options, universalOnly bool) detect.Config {
	var cfg detect.Config
	if engine == detect.PHT {
		cfg = detect.DefaultPHT()
	} else {
		cfg = detect.DefaultSTL()
	}
	cfg.Timeout = opts.FuncTimeout
	cfg.MaxQueries = opts.MaxQueries
	if universalOnly {
		cfg.Transmitters = []core.Class{core.UDT, core.UCT}
	}
	return cfg
}

// RunLitmusSuite produces the Clou and baseline rows for one suite
// ("pht", "stl", "fwd", "new").
func RunLitmusSuite(suite string, opts Options) ([]Row, error) {
	opts.defaults()
	cases := litmus.Suites()[suite]
	engines := []detect.Engine{detect.PHT}
	if suite == "stl" {
		engines = []detect.Engine{detect.STL}
	}
	if suite == "fwd" || suite == "new" {
		engines = []detect.Engine{detect.PHT, detect.STL}
	}

	var rows []Row
	for _, e := range engines {
		row := Row{App: "litmus-" + suite, Tool: e.String(), Counts: map[core.Class]int{}}
		for _, c := range cases {
			m, err := compileSrc(c.Source)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", c.Name, err)
			}
			r, err := detect.AnalyzeFunc(m, c.Fn, clouConfig(e, opts, false))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", c.Name, err)
			}
			row.Time += r.Duration
			for cl, n := range r.Counts() {
				row.Counts[cl] += n
			}
			row.Funcs++
			if r.TimedOut {
				row.TimedOut++
			}
		}
		rows = append(rows, row)
	}
	// Baseline rows.
	for _, e := range engines {
		tool := "bh-pht"
		cfg := baseline.Config{PHT: true, Timeout: opts.FuncTimeout}
		if e == detect.STL {
			tool = "bh-stl"
			cfg = baseline.Config{PHT: false, Timeout: opts.FuncTimeout}
		}
		row := Row{App: "litmus-" + suite, Tool: tool}
		for _, c := range cases {
			m, err := compileSrc(c.Source)
			if err != nil {
				return nil, err
			}
			r, err := baseline.AnalyzeFunc(m, c.Fn, cfg)
			if err != nil {
				return nil, err
			}
			row.Time += r.Duration
			row.Leaks += r.Leaks
			row.Funcs++
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunLibrary produces Clou rows (both engines) for one corpus library,
// analyzing each public function individually like §6.2.
func RunLibrary(lib cryptolib.Library, opts Options) ([]Row, error) {
	opts.defaults()
	m, err := compileSrc(lib.Source)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", lib.Name, err)
	}
	var rows []Row
	for _, e := range []detect.Engine{detect.PHT, detect.STL} {
		row := Row{App: lib.Name, Tool: e.String(), Counts: map[core.Class]int{}}
		for _, fn := range lib.PublicFuncs {
			r, err := detect.AnalyzeFunc(m, fn, clouConfig(e, opts, opts.CryptoUniversalOnly))
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", lib.Name, fn, err)
			}
			row.Time += r.Duration
			for cl, n := range r.Counts() {
				row.Counts[cl] += n
			}
			row.Funcs++
			if r.TimedOut {
				row.TimedOut++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8Point is one scatter point of Fig. 8: serial runtime versus S-AEG
// node count for one public function.
type Fig8Point struct {
	Fn      string
	Engine  string
	Nodes   int
	Runtime time.Duration
}

// RunFig8 produces the runtime-versus-size series over the libsodium-like
// corpus, for both engines.
func RunFig8(opts Options) ([]Fig8Point, error) {
	opts.defaults()
	lib := cryptolib.Libsodium()
	m, err := compileSrc(lib.Source)
	if err != nil {
		return nil, err
	}
	var pts []Fig8Point
	for _, e := range []detect.Engine{detect.PHT, detect.STL} {
		for _, fn := range lib.PublicFuncs {
			r, err := detect.AnalyzeFunc(m, fn, clouConfig(e, opts, true))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fn, err)
			}
			pts = append(pts, Fig8Point{Fn: fn, Engine: e.String(), Nodes: r.NodeCount, Runtime: r.Duration})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Nodes < pts[j].Nodes })
	return pts, nil
}

// WriteFig8 renders the series as a text table (the regenerable form of
// the figure).
func WriteFig8(w io.Writer, pts []Fig8Point) {
	fmt.Fprintf(w, "%-34s %-9s %8s %12s\n", "function", "engine", "nodes", "runtime")
	for _, p := range pts {
		fmt.Fprintf(w, "%-34s %-9s %8d %12v\n", p.Fn, p.Engine, p.Nodes, p.Runtime)
	}
}

// MonotoneTrend reports whether runtimes broadly grow with node count:
// the Fig. 8 shape check. It compares mean runtime of the smallest and
// largest thirds.
func MonotoneTrend(pts []Fig8Point) bool {
	if len(pts) < 6 {
		return true
	}
	third := len(pts) / 3
	var lo, hi time.Duration
	for _, p := range pts[:third] {
		lo += p.Runtime
	}
	for _, p := range pts[len(pts)-third:] {
		hi += p.Runtime
	}
	return hi > lo
}
