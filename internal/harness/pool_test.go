package harness

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"lcm/internal/faults"
)

// TestForEachCtxCancelKeepsCompletedItems pins the early-cancellation
// contract on the serial path, where the cut point is deterministic:
// items finished before the cancel keep their nil result, items never
// started get a classified faults.ErrCanceled entry.
func TestForEachCtxCancelKeepsCompletedItems(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := make([]bool, 10)
	errs := ForEachCtx(ctx, 1, 10, func(i int) error {
		ran[i] = true
		if i == 3 {
			cancel()
		}
		return nil
	})
	for i := 0; i <= 3; i++ {
		if !ran[i] || errs[i] != nil {
			t.Errorf("item %d: ran=%v err=%v, want completed with nil error", i, ran[i], errs[i])
		}
	}
	for i := 4; i < 10; i++ {
		if ran[i] {
			t.Errorf("item %d ran after cancellation", i)
		}
		if !errors.Is(errs[i], faults.ErrCanceled) {
			t.Errorf("item %d: err = %v, want faults.ErrCanceled", i, errs[i])
		}
		if faults.Kind(errs[i]) != "canceled" {
			t.Errorf("item %d: kind = %q, want canceled", i, faults.Kind(errs[i]))
		}
	}
}

// TestForEachCtxParallelCancelJoinsWorkers cancels a parallel pool
// mid-run: in-flight items must run to completion and keep their real
// (nil) results, undisputed items must be marked canceled, and every
// entry must be one or the other — nothing lost, nothing invented.
func TestForEachCtxParallelCancelJoinsWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int32
	errs := ForEachCtx(ctx, 4, 64, func(i int) error {
		if started.Add(1) == 8 {
			cancel()
		}
		return nil
	})
	completed, canceled := 0, 0
	for i, err := range errs {
		switch {
		case err == nil:
			completed++
		case errors.Is(err, faults.ErrCanceled):
			canceled++
		default:
			t.Fatalf("item %d: unexpected error %v", i, err)
		}
	}
	if completed == 0 || canceled == 0 {
		t.Fatalf("completed=%d canceled=%d, want both nonzero", completed, canceled)
	}
	if completed+canceled != 64 {
		t.Fatalf("accounted for %d of 64 items", completed+canceled)
	}
	if int(started.Load()) != completed {
		t.Errorf("%d jobs started but %d reported complete", started.Load(), completed)
	}
}

// TestForEachCtxNoGoroutineLeakOnCancel repeatedly cancels pools mid-run
// and checks the process goroutine count settles back to its baseline:
// ForEachCtx must join every worker before returning, even when the
// dispatch loop is cut short.
func TestForEachCtxNoGoroutineLeakOnCancel(t *testing.T) {
	runtime.GC()
	before := runtime.NumGoroutine()
	for iter := 0; iter < 25; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		ForEachCtx(ctx, 8, 200, func(i int) error {
			if i == 5 {
				cancel()
			}
			return nil
		})
		cancel()
	}
	// The pool joins synchronously, so the count should already be back;
	// poll briefly anyway to absorb unrelated runtime goroutines winding
	// down.
	deadline := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before+2 {
		t.Fatalf("goroutines grew from %d to %d after 25 canceled pools — workers leaked", before, after)
	}
}

// TestForEachPanicBecomesItemError: a panicking job must cost that item,
// not the process. The error is classified faults.ErrPanic and ForEach
// surfaces it like any other item error.
func TestForEachPanicBecomesItemError(t *testing.T) {
	errs := ForEachCtx(context.Background(), 4, 10, func(i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	for i, err := range errs {
		if i == 5 {
			if !errors.Is(err, faults.ErrPanic) {
				t.Fatalf("item 5: err = %v, want faults.ErrPanic", err)
			}
			if faults.Kind(err) != "panic" {
				t.Fatalf("item 5: kind = %q, want panic", faults.Kind(err))
			}
			continue
		}
		if err != nil {
			t.Errorf("item %d: unexpected error %v", i, err)
		}
	}
	if err := ForEach(4, 10, func(i int) error {
		if i == 2 {
			panic("kaboom")
		}
		return nil
	}); !errors.Is(err, faults.ErrPanic) {
		t.Fatalf("ForEach = %v, want faults.ErrPanic", err)
	}
}
