package harness

import (
	"sync"

	"lcm/internal/obsv"
)

// ForEach runs job(0), …, job(n-1) over at most workers goroutines. It is
// the bounded worker pool behind every parallel sweep in this repo (the
// paper ran Clou "in parallel on many cores, one process per analyzed
// function", §6.2); cmd/clou and cmd/lcmlint reuse it for their -j flags.
//
// Determinism contract: jobs receive their index, so callers write
// results into index-addressed slots and reassemble them in input order —
// scheduling never changes the output. Errors are collected per index and
// the lowest-index error is returned, so the error surfaced is the same
// one a serial run would have hit first.
func ForEach(workers, n int, job func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEachSpan is ForEach under an observability span: the pool's wall
// time is recorded as one child span of parent named name, and every job
// receives that span to parent its own per-function spans under. With a
// nil parent (tracing disabled) it degenerates to ForEach at no cost.
func ForEachSpan(parent *obsv.Span, name string, workers, n int, job func(i int, sp *obsv.Span) error) error {
	sp := parent.Start(name)
	defer sp.End()
	return ForEach(workers, n, func(i int) error { return job(i, sp) })
}
