package harness

import (
	"context"

	"lcm/internal/obsv"
	"lcm/internal/workpool"
)

// ForEach runs job(0), …, job(n-1) over at most workers goroutines. It
// delegates to workpool.ForEach — the shared bounded pool that also backs
// the detector's intra-function sharding — and keeps its determinism and
// fault-tolerance contract: index-addressed results reassembled in input
// order, recovered panics classified faults.ErrPanic, lowest-index error
// returned.
func ForEach(workers, n int, job func(i int) error) error {
	return workpool.ForEach(workers, n, job)
}

// ForEachCtx is ForEach under a context, returning per-item errors (nil
// entries are successes) instead of only the first one. See
// workpool.ForEachCtx for the cancellation semantics.
func ForEachCtx(ctx context.Context, workers, n int, job func(i int) error) []error {
	return workpool.ForEachCtx(ctx, workers, n, job)
}

// ForEachSpan is ForEach under an observability span: the pool's wall
// time is recorded as one child span of parent named name, and every job
// receives that span to parent its own per-function spans under. With a
// nil parent (tracing disabled) it degenerates to ForEach at no cost.
func ForEachSpan(parent *obsv.Span, name string, workers, n int, job func(i int, sp *obsv.Span) error) error {
	sp := parent.Start(name)
	defer sp.End()
	return ForEach(workers, n, func(i int) error { return job(i, sp) })
}

// ForEachSpanCtx is ForEachCtx under an observability span, with per-item
// errors. Campaign drivers (conform, chaos) use it so one canceled or
// panicking item degrades that item's verdict instead of the whole run.
func ForEachSpanCtx(ctx context.Context, parent *obsv.Span, name string, workers, n int, job func(i int, sp *obsv.Span) error) []error {
	sp := parent.Start(name)
	defer sp.End()
	return ForEachCtx(ctx, workers, n, func(i int) error { return job(i, sp) })
}
