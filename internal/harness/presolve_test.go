package harness

import (
	"reflect"
	"testing"
	"time"

	"lcm/internal/cryptolib"
	"lcm/internal/detect"
)

// bigBudget removes the per-function truncation budgets. Findings
// equality between pre-solver-on and pre-solver-off runs only holds when
// neither run is cut short: statically skipped queries do not count
// against MaxQueries, so under a tight budget the pre-solver legitimately
// lets the same search go further (that is the point of it). With the
// budgets effectively unbounded, both runs enumerate the same candidate
// space and must agree exactly.
func bigBudget(noPresolve bool) Options {
	return Options{
		Parallelism: 1,
		FuncTimeout: 10 * time.Minute,
		MaxQueries:  1_000_000,
		NoPresolve:  noPresolve,
	}
}

// TestPresolveVerdictInvariantOnSecretbox compares full secretbox sweeps
// (both engines) with the pre-solver on and off.
func TestPresolveVerdictInvariantOnSecretbox(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes a full library without budgets")
	}
	if raceDetectorEnabled {
		t.Skip("single-threaded invariance check; race slowdown makes bigBudget bind")
	}
	lib, ok := cryptolib.Lookup("secretbox")
	if !ok {
		t.Fatal("secretbox missing from corpus")
	}
	with, err := RunLibrary(lib, bigBudget(false))
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunLibrary(lib, bigBudget(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(with) != len(without) {
		t.Fatalf("row count differs: %d with pre-solver, %d without", len(with), len(without))
	}
	// The findings contract only holds on budget-unconstrained runs
	// (EXPERIMENTS.md): if the environment is slow enough that bigBudget
	// still binds — e.g. under -race on a loaded machine — the comparison
	// is void, not failed.
	for i := range with {
		w, wo := with[i], without[i]
		if w.TimedOut != 0 || wo.TimedOut != 0 {
			t.Skipf("row %d (%s/%s): budget hit despite bigBudget (with=%d without=%d); comparison void",
				i, w.App, w.Tool, w.TimedOut, wo.TimedOut)
		}
	}
	for i := range with {
		w, wo := with[i], without[i]
		if !reflect.DeepEqual(w.Counts, wo.Counts) {
			t.Errorf("row %d (%s/%s): counts differ: with=%v without=%v",
				i, w.App, w.Tool, w.Counts, wo.Counts)
		}
		if !reflect.DeepEqual(w.Findings, wo.Findings) {
			t.Errorf("row %d (%s/%s): findings differ with pre-solver on/off",
				i, w.App, w.Tool)
		}
	}
}

// TestPresolveVerdictInvariantOnDonnaSTL compares donna under the STL
// engine — the workload where the arch-witness rule discharges every one
// of the baseline's 3314 solver queries — function by function. (The PHT
// sweep is excluded: uncapped it takes minutes on one core, and its
// findings contract is already covered by secretbox above, the litmus
// corpus, and the conformance campaign's presolve oracle.)
func TestPresolveVerdictInvariantOnDonnaSTL(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes a full library without budgets")
	}
	if raceDetectorEnabled {
		t.Skip("single-threaded invariance check; race slowdown makes bigBudget bind")
	}
	lib, ok := cryptolib.Lookup("donna")
	if !ok {
		t.Fatal("donna missing from corpus")
	}
	m, err := compileSrc(lib.Source)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range lib.PublicFuncs {
		cfgOn := clouConfig(detect.STL, bigBudget(false), true, nil)
		cfgOff := clouConfig(detect.STL, bigBudget(true), true, nil)
		with, err := detect.AnalyzeFunc(m, fn, cfgOn)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		without, err := detect.AnalyzeFunc(m, fn, cfgOff)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if with.TimedOut || without.TimedOut {
			// Same void-comparison rule as the secretbox test above.
			t.Skipf("%s: budget hit despite bigBudget; comparison void", fn)
		}
		if !reflect.DeepEqual(with.Findings, without.Findings) {
			t.Errorf("%s: findings differ with pre-solver on/off (with=%d without=%d)",
				fn, len(with.Findings), len(without.Findings))
		}
		if without.SkippedQueries != 0 {
			t.Errorf("%s: baseline run skipped %d queries with the pre-solver disabled",
				fn, without.SkippedQueries)
		}
	}
}
