package harness

import (
	"reflect"
	"testing"

	"lcm/internal/cryptolib"
	"lcm/internal/smt"
)

// allSuites spans all five detection engines (pht, stl, fwd/new variants,
// psf, imp, ss) — the full litmus corpus.
var allSuites = []string{"pht", "stl", "fwd", "new", "psf", "imp", "ss"}

// compareRows asserts two normalized row slices agree on printed output
// and findings.
func compareRows(t *testing.T, label string, want, got []Row) {
	t.Helper()
	wn, gn := normalize(want), normalize(got)
	if w, g := formats(wn), formats(gn); !reflect.DeepEqual(g, w) {
		t.Errorf("%s: rows differ:\nwant: %v\ngot:  %v", label, w, g)
	}
	if len(wn) != len(gn) {
		return
	}
	for i := range wn {
		if !reflect.DeepEqual(wn[i].Findings, gn[i].Findings) {
			t.Errorf("%s: row %d (%s/%s): findings differ", label, i, wn[i].App, wn[i].Tool)
		}
	}
}

// TestNoPresolveDeterministicAcrossWorkers is the ablation leg of the
// determinism guard: with the static pre-solver off, every residual query
// reaches the incremental solver, so this pins that warm-solver state
// (prefix reuse, phase saving, root-unit promotion) never leaks
// nondeterminism across the parallel pipeline. All five engines, -j1 vs
// -j8, byte-identical rows and findings.
func TestNoPresolveDeterministicAcrossWorkers(t *testing.T) {
	for _, suite := range allSuites {
		t.Run(suite, func(t *testing.T) {
			serial, err := RunLitmusSuite(suite, Options{Parallelism: 1, NoPresolve: true})
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunLitmusSuite(suite, Options{Parallelism: 8, NoPresolve: true})
			if err != nil {
				t.Fatal(err)
			}
			compareRows(t, "j1 vs j8", serial, par)
		})
	}
}

// TestSolverCheckModeLitmus replays the full litmus corpus in
// smt.ModeCheck: every residual query is decided by the warm incremental
// solver AND a fresh reference instance replaying the clause log, and the
// verdicts must agree. The pre-solver is disabled so nothing is discharged
// before reaching the solver pair.
func TestSolverCheckModeLitmus(t *testing.T) {
	var checks, mismatches int64
	for _, suite := range allSuites {
		rows, err := RunLitmusSuite(suite, Options{NoPresolve: true, SolverMode: smt.ModeCheck})
		if err != nil {
			t.Fatalf("suite %s: %v", suite, err)
		}
		for _, r := range rows {
			checks += r.SolverChecks
			mismatches += r.SolverMismatches
		}
	}
	if checks == 0 {
		t.Fatal("check mode replayed zero queries across the litmus corpus")
	}
	if mismatches != 0 {
		t.Fatalf("incremental/fresh verdict mismatches = %d, want 0 (checks = %d)", mismatches, checks)
	}
}

// TestSolverCheckModeCryptolib runs the same incremental/fresh self-check
// over a crypto-library sweep — deeper functions, longer assumption
// sweeps, more clause growth between queries than litmus cases exhibit.
// secretbox is the pick because its candidates reach the solver (tea's are
// all refuted statically or trivially absent under universal-only classes);
// MaxQueries bounds the quadratic clause-log replay cost of check mode.
func TestSolverCheckModeCryptolib(t *testing.T) {
	lib, ok := cryptolib.Lookup("secretbox")
	if !ok {
		t.Fatal("secretbox library missing from corpus")
	}
	rows, err := RunLibrary(lib, Options{
		CryptoUniversalOnly: true,
		NoPresolve:          true,
		SolverMode:          smt.ModeCheck,
		MaxQueries:          80,
	})
	if err != nil {
		t.Fatal(err)
	}
	var checks, mismatches int64
	for _, r := range rows {
		checks += r.SolverChecks
		mismatches += r.SolverMismatches
	}
	if checks == 0 {
		t.Fatal("check mode replayed zero queries across the library sweep")
	}
	if mismatches != 0 {
		t.Fatalf("incremental/fresh verdict mismatches = %d, want 0 (checks = %d)", mismatches, checks)
	}
}

// TestIncrementalMatchesFreshReference is the report-identity acceptance
// check: the default configuration (warm incremental solver, pre-solver
// on) and the maximally-suspicious configuration (fresh reference solver
// per query, pre-solver off) must print identical rows and produce
// identical findings on the whole litmus corpus. Neither warm-solver
// reuse nor static discharge may shift a single verdict.
func TestIncrementalMatchesFreshReference(t *testing.T) {
	for _, suite := range allSuites {
		t.Run(suite, func(t *testing.T) {
			warm, err := RunLitmusSuite(suite, Options{})
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := RunLitmusSuite(suite, Options{NoPresolve: true, SolverMode: smt.ModeFresh})
			if err != nil {
				t.Fatal(err)
			}
			compareRows(t, "incremental+presolve vs fresh+nopresolve", warm, fresh)
		})
	}
}
