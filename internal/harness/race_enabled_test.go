//go:build race

package harness

// raceDetectorEnabled reports whether this test binary was built with
// -race. The budget-unconstrained presolve-invariance tests skip under
// it: they are single-threaded (Parallelism 1), so the detector adds no
// coverage, while its ~15× slowdown makes their precondition — bigBudget
// never binding — unattainable and the comparison void.
const raceDetectorEnabled = true
