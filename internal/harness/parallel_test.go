package harness

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"lcm/internal/cryptolib"
)

// normalize strips the fields that legitimately vary run-to-run (wall
// time, worker count) so rows can be compared across parallelism levels.
func normalize(rows []Row) []Row {
	out := make([]Row, len(rows))
	copy(out, rows)
	for i := range out {
		out[i].Time = 0
		out[i].Workers = 0
	}
	return out
}

func formats(rows []Row) []string {
	var out []string
	for _, r := range rows {
		out = append(out, r.Format())
	}
	return out
}

// TestLitmusDeterministicAcrossWorkers is the determinism guard for the
// parallel pipeline: every litmus suite must produce byte-identical rows
// and identical findings at Parallelism=1 and Parallelism=8.
func TestLitmusDeterministicAcrossWorkers(t *testing.T) {
	for _, suite := range []string{"pht", "stl", "fwd", "new"} {
		t.Run(suite, func(t *testing.T) {
			serial, err := RunLitmusSuite(suite, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunLitmusSuite(suite, Options{Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			sn, pn := normalize(serial), normalize(par)
			if got, want := formats(pn), formats(sn); !reflect.DeepEqual(got, want) {
				t.Errorf("rows differ across worker counts:\nserial: %v\nparallel: %v", want, got)
			}
			for i := range sn {
				if !reflect.DeepEqual(sn[i].Findings, pn[i].Findings) {
					t.Errorf("row %d (%s/%s): findings differ across worker counts", i, sn[i].App, sn[i].Tool)
				}
			}
		})
	}
}

// TestLibraryDeterministicAcrossWorkers checks the same property on a
// crypto-library sweep (both engines, many functions, shared frontends).
func TestLibraryDeterministicAcrossWorkers(t *testing.T) {
	lib, ok := cryptolib.Lookup("tea")
	if !ok {
		t.Fatal("tea library missing from corpus")
	}
	opts := Options{CryptoUniversalOnly: true}
	opts.Parallelism = 1
	serial, err := RunLibrary(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 8
	par, err := RunLibrary(lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	sn, pn := normalize(serial), normalize(par)
	if got, want := formats(pn), formats(sn); !reflect.DeepEqual(got, want) {
		t.Errorf("rows differ across worker counts:\nserial: %v\nparallel: %v", want, got)
	}
	for i := range sn {
		if !reflect.DeepEqual(sn[i].Findings, pn[i].Findings) {
			t.Errorf("row %d (%s/%s): findings differ across worker counts", i, sn[i].App, sn[i].Tool)
		}
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 50
		var counts [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	want := errors.New("boom-3")
	err := ForEach(4, 10, func(i int) error {
		if i == 3 {
			return want
		}
		if i == 7 {
			return fmt.Errorf("boom-7")
		}
		return nil
	})
	if err != want {
		t.Fatalf("got %v, want the lowest-index error %v", err, want)
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
