//go:build !race

package harness

// raceDetectorEnabled is false in non-race builds; see race_enabled_test.go.
const raceDetectorEnabled = false
