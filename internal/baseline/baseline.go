// Package baseline implements a Binsec/Haunted-style comparator for the
// Table 2 experiments: a relational-symbolic-execution-flavored detector
// that explicitly enumerates architectural paths and, per path, transient
// continuations — the eager exploration that makes such tools scale
// super-linearly with function size (§6, §7). It reports a single
// undifferentiated leak count (BH does not classify transmitters, §6) and
// honors the paper's BH configuration (ROB/LSQ 200/20).
package baseline

import (
	"time"

	"lcm/internal/acfg"
	"lcm/internal/alias"
	"lcm/internal/ir"
	"lcm/internal/taint"
)

// Config bounds the exploration.
type Config struct {
	// PHT explores control-flow mis-speculation; otherwise store bypass.
	PHT bool
	// ROB and LSQ mirror the BH paper's 200/20 configuration.
	ROB int
	LSQ int
	// MaxPaths caps architectural path enumeration (the exploration is
	// exponential by design; the cap models BH's timeout behaviour).
	MaxPaths int
	// Timeout bounds wall time.
	Timeout time.Duration
}

func (c *Config) defaults() {
	if c.ROB == 0 {
		c.ROB = 200
	}
	if c.LSQ == 0 {
		c.LSQ = 20
	}
	if c.MaxPaths == 0 {
		c.MaxPaths = 1 << 18
	}
}

// Result is the baseline's report: one flat count, no classification.
type Result struct {
	Fn       string
	Leaks    int
	Paths    int // architectural paths explored
	Duration time.Duration
	TimedOut bool
}

// AnalyzeFunc runs the baseline detector over one function.
func AnalyzeFunc(m *ir.Module, fn string, cfg Config) (*Result, error) {
	cfg.defaults()
	start := time.Now()
	g, err := acfg.Build(m, fn, acfg.Options{})
	if err != nil {
		return nil, err
	}
	al := alias.Analyze(g)
	ta := taint.Analyze(g, al)

	e := &explorer{cfg: cfg, g: g, al: al, ta: ta, start: start,
		res:   &Result{Fn: fn},
		leaks: map[int]bool{},
	}
	e.explore(g.Entry, nil)
	e.res.Paths = e.paths
	e.res.Leaks = len(e.leaks)
	e.res.Duration = time.Since(start)
	return e.res, nil
}

type explorer struct {
	cfg   Config
	g     *acfg.Graph
	al    *alias.Analysis
	ta    *taint.Analysis
	start time.Time
	res   *Result
	paths int
	leaks map[int]bool // leaky instruction nodes (deduplicated)
}

func (e *explorer) budget() bool {
	if e.paths >= e.cfg.MaxPaths {
		e.res.TimedOut = true
		return false
	}
	if e.cfg.Timeout > 0 && time.Since(e.start) > e.cfg.Timeout {
		e.res.TimedOut = true
		return false
	}
	return true
}

// explore walks every architectural path explicitly (the relational-SE
// exploration); path is the node sequence so far.
func (e *explorer) explore(n int, path []int) {
	if !e.budget() {
		return
	}
	path = append(path, n)
	node := e.g.Nodes[n]
	succs := e.g.Succs(n)

	if node.IsBranch() && len(succs) >= 2 {
		// At each branch: check the transient continuation down each arm
		// (per path — no memoization, like eager relational SE), then fork
		// architecturally.
		if e.cfg.PHT {
			e.checkTransient(succs[0], path)
			e.checkTransient(succs[1], path)
		}
		e.explore(succs[0], path)
		e.explore(succs[1], path)
		return
	}
	if len(succs) == 0 {
		e.paths++
		if !e.cfg.PHT {
			e.checkBypass(path)
		}
		return
	}
	for _, s := range succs {
		e.explore(s, path)
	}
}

// checkTransient scans the wrong-arm window for tainted-address accesses —
// the leak condition, without transmitter classification.
func (e *explorer) checkTransient(arm int, path []int) {
	window := e.g.Reachable(arm, e.cfg.ROB)
	for n := range window {
		node := e.g.Nodes[n]
		if node.IsFence() && node.Instr.Sub == "lfence" {
			// A fence in the window truncates it; conservatively skip
			// nodes only reachable through it.
			continue
		}
		if !(node.IsLoad() || node.IsStore()) {
			continue
		}
		if e.ta.AddressControlled(node) || e.secretDependentAddress(node) {
			e.leaks[n] = true
		}
	}
	_ = path
}

// checkBypass scans one architectural path for store→load bypass leaks.
func (e *explorer) checkBypass(path []int) {
	pos := map[int]int{}
	for i, n := range path {
		pos[n] = i
	}
	for i, sID := range path {
		s := e.g.Nodes[sID]
		if !s.IsStore() {
			continue
		}
		limit := i + e.cfg.LSQ
		for j := i + 1; j < len(path) && j <= limit; j++ {
			l := e.g.Nodes[path[j]]
			if !l.IsLoad() {
				continue
			}
			if !e.al.MayAliasTransient(s, l) {
				continue
			}
			// The stale load's value reaching any later access address
			// counts as one leak.
			for k := j + 1; k < len(path); k++ {
				t := e.g.Nodes[path[k]]
				if !(t.IsLoad() || t.IsStore()) {
					continue
				}
				if e.dependsOn(t, path[j]) {
					e.leaks[t.ID] = true
				}
			}
		}
	}
}

// secretDependentAddress reports whether a memory node's address depends
// on another load's value (the access→transmit shape, unclassified).
func (e *explorer) secretDependentAddress(n *acfg.Node) bool {
	var defs []int
	switch {
	case n.IsLoad():
		if len(n.ArgDefs) > 0 {
			defs = n.ArgDefs[0]
		}
	case n.IsStore():
		if len(n.ArgDefs) > 1 {
			defs = n.ArgDefs[1]
		}
	}
	return e.anyLoadIn(defs, 0)
}

func (e *explorer) anyLoadIn(defs []int, depth int) bool {
	if depth > 12 {
		return false
	}
	for _, d := range defs {
		dn := e.g.Nodes[d]
		if dn.IsLoad() {
			return true
		}
		if dn.Instr != nil {
			for _, dd := range dn.ArgDefs {
				if e.anyLoadIn(dd, depth+1) {
					return true
				}
			}
		}
	}
	return false
}

// dependsOn reports whether node t's address depends on the value of load
// src (through value chains and spills — approximated by def reachability).
func (e *explorer) dependsOn(t *acfg.Node, src int) bool {
	var defs []int
	switch {
	case t.IsLoad():
		if len(t.ArgDefs) > 0 {
			defs = t.ArgDefs[0]
		}
	case t.IsStore():
		if len(t.ArgDefs) > 1 {
			defs = t.ArgDefs[1]
		}
	}
	seen := map[int]bool{}
	stack := append([]int(nil), defs...)
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[d] {
			continue
		}
		seen[d] = true
		if d == src {
			return true
		}
		dn := e.g.Nodes[d]
		if dn.Instr == nil {
			continue
		}
		if dn.IsLoad() {
			// approximate spill chains: a load depends on stores to its
			// slot; walk the store's value operand.
			for _, st := range e.g.Nodes {
				if st.IsStore() && e.al.MayAlias(st, dn) {
					if len(st.ArgDefs) > 0 {
						stack = append(stack, st.ArgDefs[0]...)
					}
				}
			}
			continue
		}
		for _, dd := range dn.ArgDefs {
			stack = append(stack, dd...)
		}
	}
	return false
}
