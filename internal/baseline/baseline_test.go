package baseline

import (
	"testing"
	"time"

	"lcm/internal/ir"
	"lcm/internal/litmus"
	"lcm/internal/lower"
	"lcm/internal/minic"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBaselineFindsSpectreV1(t *testing.T) {
	m := compile(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint32_t size_A = 16;
		uint8_t tmp;
		void victim(uint32_t y) {
			if (y < size_A) {
				uint8_t x = A[y];
				tmp &= B[x * 512];
			}
		}
	`)
	r, err := AnalyzeFunc(m, "victim", Config{PHT: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Leaks == 0 {
		t.Error("baseline missed Spectre v1")
	}
	if r.Paths == 0 {
		t.Error("no paths explored")
	}
}

func TestBaselineFindsSpectreV4(t *testing.T) {
	m := compile(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint8_t tmp;
		uint32_t slot;
		void victim(uint32_t idx) {
			slot = idx & 15;
			uint8_t x = A[slot];
			tmp &= B[x * 512];
		}
	`)
	r, err := AnalyzeFunc(m, "victim", Config{PHT: false})
	if err != nil {
		t.Fatal(err)
	}
	if r.Leaks == 0 {
		t.Error("baseline missed Spectre v4")
	}
}

func TestBaselineOnLitmusSuite(t *testing.T) {
	// The baseline finds leaks in the clearly-vulnerable cases; it reports
	// flat counts (no classes), matching BH's output shape.
	missed := 0
	for _, c := range litmus.PHT() {
		if c.Secure {
			continue
		}
		f, err := minic.Parse(c.Source)
		if err != nil {
			t.Fatal(err)
		}
		m, err := lower.Module(f)
		if err != nil {
			t.Fatal(err)
		}
		r, err := AnalyzeFunc(m, c.Fn, Config{PHT: true, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if r.Leaks == 0 {
			missed++
		}
	}
	if missed > 3 {
		t.Errorf("baseline missed %d of the vulnerable PHT cases", missed)
	}
}

func TestBaselinePathExplosion(t *testing.T) {
	// The defining scaling behaviour (§6): path counts grow exponentially
	// with sequential branches, unlike Clou's symbolic encoding.
	mk := func(branches int) string {
		src := "uint8_t A[16];\nuint8_t t;\n"
		src += "void f(uint32_t x) {\n"
		for i := 0; i < branches; i++ {
			src += "\tif (x >> " + string(rune('0'+i)) + " & 1) { t += A[1]; }\n"
		}
		src += "}\n"
		return src
	}
	paths := func(branches int) int {
		m := compile(t, mk(branches))
		r, err := AnalyzeFunc(m, "f", Config{PHT: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.Paths
	}
	p4, p8 := paths(4), paths(8)
	if p8 < p4*8 {
		t.Errorf("expected exponential path growth: %d vs %d", p4, p8)
	}
}

func TestBaselineBudget(t *testing.T) {
	m := compile(t, `
		uint8_t A[16];
		uint8_t t;
		void f(uint32_t x) {
			if (x & 1) { t += A[1]; }
			if (x & 2) { t += A[2]; }
			if (x & 4) { t += A[3]; }
		}
	`)
	r, err := AnalyzeFunc(m, "f", Config{PHT: true, MaxPaths: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r.TimedOut {
		t.Error("path cap not reported")
	}
}
