package lower

import (
	"fmt"

	"lcm/internal/ir"
	"lcm/internal/minic"
)

// condValue lowers an expression used as a branch condition.
func (c *fctx) condValue(e minic.Expr) (ir.Value, error) {
	return c.rvalue(e)
}

// discard lowers an expression whose value is dropped (expression
// statements, for-loop post). Unlike rvalue it permits calls to void
// functions, whose results are typeless and must not reach a use site.
func (c *fctx) discard(e minic.Expr) error {
	if call, ok := e.(*minic.Call); ok {
		_, err := c.call(call)
		return err
	}
	_, err := c.rvalue(e)
	return err
}

// decay converts a pointer-to-array value into a pointer to its first
// element (C array decay).
func (c *fctx) decay(v ir.Value) ir.Value {
	pt, ok := v.Type().(ir.PtrType)
	if !ok {
		return v
	}
	at, ok := pt.Elem.(ir.ArrayType)
	if !ok {
		return v
	}
	return c.emit(&ir.Instr{Op: ir.OpCast, Sub: "bitcast", Ty: ir.Ptr(at.Elem), Args: []ir.Value{v}})
}

// coerce converts v to type to, inserting casts as needed.
func (c *fctx) coerce(v ir.Value, to ir.Type) ir.Value {
	from := v.Type()
	if from.String() == to.String() {
		return v
	}
	fi, fIsInt := from.(ir.IntType)
	ti, tIsInt := to.(ir.IntType)
	switch {
	case fIsInt && tIsInt:
		if fi.Bits == ti.Bits {
			return c.emit(&ir.Instr{Op: ir.OpCast, Sub: "bitcast", Ty: to, Args: []ir.Value{v}})
		}
		if fi.Bits > ti.Bits {
			return c.emit(&ir.Instr{Op: ir.OpCast, Sub: "trunc", Ty: to, Args: []ir.Value{v}})
		}
		sub := "sext"
		if fi.Unsigned {
			sub = "zext"
		}
		return c.emit(&ir.Instr{Op: ir.OpCast, Sub: sub, Ty: to, Args: []ir.Value{v}})
	case ir.IsPtr(from) && ir.IsPtr(to):
		return c.emit(&ir.Instr{Op: ir.OpCast, Sub: "bitcast", Ty: to, Args: []ir.Value{v}})
	case ir.IsPtr(from) && tIsInt:
		x := c.emit(&ir.Instr{Op: ir.OpCast, Sub: "ptrtoint", Ty: ir.U64, Args: []ir.Value{v}})
		return c.coerce(x, to)
	case fIsInt && ir.IsPtr(to):
		x := c.coerce(v, ir.U64)
		return c.emit(&ir.Instr{Op: ir.OpCast, Sub: "inttoptr", Ty: to, Args: []ir.Value{x}})
	}
	// Arrays and structs should not reach coerce.
	return v
}

// unify picks the common arithmetic type of two operands (simplified C
// usual-arithmetic-conversions: widest width wins; unsignedness is sticky).
func unify(a, b ir.Type) ir.IntType {
	ai, aok := a.(ir.IntType)
	bi, bok := b.(ir.IntType)
	if !aok && !bok {
		return ir.U64
	}
	if !aok {
		return ir.U64 // pointer op int handled separately
	}
	if !bok {
		return ir.U64
	}
	bits := ai.Bits
	if bi.Bits > bits {
		bits = bi.Bits
	}
	if bits < 32 {
		bits = 32 // integer promotion
	}
	return ir.IntType{Bits: bits, Unsigned: ai.Unsigned || bi.Unsigned}
}

// lvalue lowers an expression to the address holding its value.
func (c *fctx) lvalue(e minic.Expr) (ir.Value, error) {
	switch e := e.(type) {
	case *minic.Ident:
		if slot := c.lookup(e.Name); slot != nil {
			return slot, nil
		}
		if g, ok := c.lw.globals[e.Name]; ok {
			return g, nil
		}
		return nil, errf(e.Line, "undefined variable %q", e.Name)
	case *minic.Unary:
		if e.Op == "*" {
			p, err := c.rvalue(e.X)
			if err != nil {
				return nil, err
			}
			if !ir.IsPtr(p.Type()) {
				return nil, errf(e.Line, "dereference of non-pointer")
			}
			return p, nil
		}
		return nil, errf(e.Line, "expression is not an lvalue")
	case *minic.Index:
		base, err := c.indexBase(e)
		if err != nil {
			return nil, err
		}
		idx, err := c.rvalue(e.R)
		if err != nil {
			return nil, err
		}
		idx = c.coerce(idx, ir.I64)
		elem := ir.Elem(base.Type())
		return c.emit(&ir.Instr{Op: ir.OpGEP, Ty: ir.Ptr(elem), Args: []ir.Value{base, idx}, Line: e.Line}), nil
	case *minic.Member:
		var base ir.Value
		var err error
		if e.Arrow {
			base, err = c.rvalue(e.X) // pointer value
		} else {
			base, err = c.lvalue(e.X) // address of the struct
		}
		if err != nil {
			return nil, err
		}
		pt, ok := base.Type().(ir.PtrType)
		if !ok {
			return nil, errf(e.Line, "member access on non-pointer base")
		}
		st, ok := pt.Elem.(*ir.StructType)
		if !ok {
			return nil, errf(e.Line, "member access on non-struct")
		}
		fld, ok := st.Field(e.Field)
		if !ok {
			return nil, errf(e.Line, "no field %q in struct %s", e.Field, st.Name)
		}
		return c.emit(&ir.Instr{Op: ir.OpFieldGEP, Ty: ir.Ptr(fld.Ty), Field: e.Field,
			Args: []ir.Value{base}, Line: e.Line}), nil
	case *minic.Cast:
		// (T*)x as lvalue target: lower x's lvalue and bitcast.
		ty, err := c.lw.typeOf(e.Type)
		if err != nil {
			return nil, errf(e.Line, "%v", err)
		}
		lv, err := c.lvalue(e.X)
		if err != nil {
			return nil, err
		}
		return c.coerce(lv, ir.Ptr(ty)), nil
	}
	return nil, fmt.Errorf("expression %T is not an lvalue", e)
}

// indexBase lowers the base of an indexing expression to an element
// pointer, decaying arrays and loading pointer variables.
func (c *fctx) indexBase(e *minic.Index) (ir.Value, error) {
	// If the base is an array lvalue, decay; if it is a pointer rvalue,
	// load it.
	if lv, err := c.lvalue(e.L); err == nil {
		if pt, ok := lv.Type().(ir.PtrType); ok {
			if _, isArr := pt.Elem.(ir.ArrayType); isArr {
				return c.decay(lv), nil
			}
			if ir.IsPtr(pt.Elem) {
				// pointer variable: load the pointer value
				return c.emit(&ir.Instr{Op: ir.OpLoad, Ty: pt.Elem, Args: []ir.Value{lv}, Line: e.Line}), nil
			}
		}
	}
	v, err := c.rvalue(e.L)
	if err != nil {
		return nil, err
	}
	if !ir.IsPtr(v.Type()) {
		return nil, errf(e.Line, "indexing non-pointer")
	}
	return v, nil
}

// rvalue lowers an expression to its value.
func (c *fctx) rvalue(e minic.Expr) (ir.Value, error) {
	switch e := e.(type) {
	case *minic.NumLit:
		ty := ir.I32
		if e.Val > 0x7FFFFFFF {
			ty = ir.I64
		}
		return ir.ConstInt(ty, e.Val), nil
	case *minic.Ident:
		lv, err := c.lvalue(e)
		if err != nil {
			return nil, err
		}
		pt := lv.Type().(ir.PtrType)
		if _, isArr := pt.Elem.(ir.ArrayType); isArr {
			return c.decay(lv), nil // arrays decay to pointers
		}
		if _, isStruct := pt.Elem.(*ir.StructType); isStruct {
			return lv, nil // struct rvalues are used by address
		}
		return c.emit(&ir.Instr{Op: ir.OpLoad, Ty: pt.Elem, Args: []ir.Value{lv}, Line: e.Line}), nil
	case *minic.Unary:
		return c.unary(e)
	case *minic.Binary:
		return c.binary(e)
	case *minic.Assign:
		return c.assign(e)
	case *minic.Index:
		lv, err := c.lvalue(e)
		if err != nil {
			return nil, err
		}
		pt := lv.Type().(ir.PtrType)
		if _, isArr := pt.Elem.(ir.ArrayType); isArr {
			return c.decay(lv), nil
		}
		return c.emit(&ir.Instr{Op: ir.OpLoad, Ty: pt.Elem, Args: []ir.Value{lv}, Line: e.Line}), nil
	case *minic.Member:
		lv, err := c.lvalue(e)
		if err != nil {
			return nil, err
		}
		pt := lv.Type().(ir.PtrType)
		return c.emit(&ir.Instr{Op: ir.OpLoad, Ty: pt.Elem, Args: []ir.Value{lv}, Line: e.Line}), nil
	case *minic.Call:
		v, err := c.call(e)
		if err != nil {
			return nil, err
		}
		if v.Type() == nil {
			return nil, errf(e.Line, "void value of call to %q used in expression", e.Fun)
		}
		return v, nil
	case *minic.Cast:
		ty, err := c.lw.typeOf(e.Type)
		if err != nil {
			return nil, errf(e.Line, "%v", err)
		}
		v, err := c.rvalue(e.X)
		if err != nil {
			return nil, err
		}
		return c.coerce(v, ty), nil
	case *minic.SizeofExpr:
		ty, err := c.lw.typeOf(e.Type)
		if err != nil {
			return nil, fmt.Errorf("%v", err)
		}
		return ir.ConstInt(ir.U64, uint64(ty.Size())), nil
	case *minic.Cond:
		return c.ternary(e)
	}
	return nil, fmt.Errorf("cannot lower expression %T", e)
}

func (c *fctx) unary(e *minic.Unary) (ir.Value, error) {
	switch e.Op {
	case "*":
		p, err := c.rvalue(e.X)
		if err != nil {
			return nil, err
		}
		pt, ok := p.Type().(ir.PtrType)
		if !ok {
			return nil, errf(e.Line, "dereference of non-pointer")
		}
		if _, isStruct := pt.Elem.(*ir.StructType); isStruct {
			return p, nil
		}
		return c.emit(&ir.Instr{Op: ir.OpLoad, Ty: pt.Elem, Args: []ir.Value{p}, Line: e.Line}), nil
	case "&":
		return c.lvalue(e.X)
	case "-":
		v, err := c.rvalue(e.X)
		if err != nil {
			return nil, err
		}
		ty := unify(v.Type(), v.Type())
		v = c.coerce(v, ty)
		return c.emit(&ir.Instr{Op: ir.OpBin, Sub: "sub", Ty: ty,
			Args: []ir.Value{ir.ConstInt(ty, 0), v}, Line: e.Line}), nil
	case "~":
		v, err := c.rvalue(e.X)
		if err != nil {
			return nil, err
		}
		ty := unify(v.Type(), v.Type())
		v = c.coerce(v, ty)
		return c.emit(&ir.Instr{Op: ir.OpBin, Sub: "xor", Ty: ty,
			Args: []ir.Value{v, ir.ConstInt(ty, ^uint64(0))}, Line: e.Line}), nil
	case "!":
		v, err := c.rvalue(e.X)
		if err != nil {
			return nil, err
		}
		return c.emit(&ir.Instr{Op: ir.OpCmp, Sub: "eq", Ty: ir.U8,
			Args: []ir.Value{v, ir.ConstInt(v.Type(), 0)}, Line: e.Line}), nil
	case "++", "--":
		lv, err := c.lvalue(e.X)
		if err != nil {
			return nil, err
		}
		elem := ir.Elem(lv.Type())
		old := c.emit(&ir.Instr{Op: ir.OpLoad, Ty: elem, Args: []ir.Value{lv}, Line: e.Line})
		var updated ir.Value
		if ir.IsPtr(elem) {
			delta := int64(1)
			if e.Op == "--" {
				delta = -1
			}
			updated = c.emit(&ir.Instr{Op: ir.OpGEP, Ty: elem,
				Args: []ir.Value{old, ir.ConstInt(ir.I64, uint64(delta))}, Line: e.Line})
		} else {
			sub := "add"
			if e.Op == "--" {
				sub = "sub"
			}
			updated = c.emit(&ir.Instr{Op: ir.OpBin, Sub: sub, Ty: elem,
				Args: []ir.Value{old, ir.ConstInt(elem, 1)}, Line: e.Line})
		}
		c.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{updated, lv}, Line: e.Line})
		if e.Post {
			return old, nil
		}
		return updated, nil
	case "sizeof":
		// sizeof(expr): size of the expression's static type.
		v, err := c.rvalue(e.X)
		if err != nil {
			return nil, err
		}
		return ir.ConstInt(ir.U64, uint64(v.Type().Size())), nil
	}
	return nil, errf(e.Line, "unknown unary %q", e.Op)
}

func (c *fctx) binary(e *minic.Binary) (ir.Value, error) {
	switch e.Op {
	case "&&", "||":
		return c.shortCircuit(e)
	}
	l, err := c.rvalue(e.L)
	if err != nil {
		return nil, err
	}
	r, err := c.rvalue(e.R)
	if err != nil {
		return nil, err
	}
	// Pointer arithmetic.
	if ir.IsPtr(l.Type()) || ir.IsPtr(r.Type()) {
		return c.pointerArith(e, l, r)
	}
	switch e.Op {
	case "==", "!=", "<", ">", "<=", ">=":
		ty := unify(l.Type(), r.Type())
		l, r = c.coerce(l, ty), c.coerce(r, ty)
		return c.emit(&ir.Instr{Op: ir.OpCmp, Sub: cmpPred(e.Op, ty.Unsigned), Ty: ir.U8,
			Args: []ir.Value{l, r}, Line: e.Line}), nil
	}
	ty := unify(l.Type(), r.Type())
	l, r = c.coerce(l, ty), c.coerce(r, ty)
	sub, ok := binSub(e.Op, ty.Unsigned)
	if !ok {
		return nil, errf(e.Line, "unknown binary %q", e.Op)
	}
	return c.emit(&ir.Instr{Op: ir.OpBin, Sub: sub, Ty: ty, Args: []ir.Value{l, r}, Line: e.Line}), nil
}

func binSub(op string, unsigned bool) (string, bool) {
	switch op {
	case "+":
		return "add", true
	case "-":
		return "sub", true
	case "*":
		return "mul", true
	case "/":
		if unsigned {
			return "udiv", true
		}
		return "sdiv", true
	case "%":
		if unsigned {
			return "urem", true
		}
		return "srem", true
	case "&":
		return "and", true
	case "|":
		return "or", true
	case "^":
		return "xor", true
	case "<<":
		return "shl", true
	case ">>":
		if unsigned {
			return "lshr", true
		}
		return "ashr", true
	}
	return "", false
}

func cmpPred(op string, unsigned bool) string {
	switch op {
	case "==":
		return "eq"
	case "!=":
		return "ne"
	}
	base := map[string]string{"<": "lt", "<=": "le", ">": "gt", ">=": "ge"}[op]
	if unsigned {
		return "u" + base
	}
	return "s" + base
}

func (c *fctx) pointerArith(e *minic.Binary, l, r ir.Value) (ir.Value, error) {
	lp, rp := ir.IsPtr(l.Type()), ir.IsPtr(r.Type())
	switch {
	case e.Op == "+" && lp && !rp:
		idx := c.coerce(r, ir.I64)
		return c.emit(&ir.Instr{Op: ir.OpGEP, Ty: l.Type(), Args: []ir.Value{l, idx}, Line: e.Line}), nil
	case e.Op == "+" && rp && !lp:
		idx := c.coerce(l, ir.I64)
		return c.emit(&ir.Instr{Op: ir.OpGEP, Ty: r.Type(), Args: []ir.Value{r, idx}, Line: e.Line}), nil
	case e.Op == "-" && lp && !rp:
		idx := c.coerce(r, ir.I64)
		neg := c.emit(&ir.Instr{Op: ir.OpBin, Sub: "sub", Ty: ir.I64,
			Args: []ir.Value{ir.ConstInt(ir.I64, 0), idx}, Line: e.Line})
		return c.emit(&ir.Instr{Op: ir.OpGEP, Ty: l.Type(), Args: []ir.Value{l, neg}, Line: e.Line}), nil
	case e.Op == "-" && lp && rp:
		li := c.emit(&ir.Instr{Op: ir.OpCast, Sub: "ptrtoint", Ty: ir.I64, Args: []ir.Value{l}})
		ri := c.emit(&ir.Instr{Op: ir.OpCast, Sub: "ptrtoint", Ty: ir.I64, Args: []ir.Value{r}})
		diff := c.emit(&ir.Instr{Op: ir.OpBin, Sub: "sub", Ty: ir.I64, Args: []ir.Value{li, ri}})
		size := ir.Elem(l.Type()).Size()
		if size <= 1 {
			return diff, nil
		}
		return c.emit(&ir.Instr{Op: ir.OpBin, Sub: "sdiv", Ty: ir.I64,
			Args: []ir.Value{diff, ir.ConstInt(ir.I64, uint64(size))}}), nil
	case e.Op == "==" || e.Op == "!=" || e.Op == "<" || e.Op == ">" || e.Op == "<=" || e.Op == ">=":
		li := c.coerce(l, ir.U64)
		ri := c.coerce(r, ir.U64)
		return c.emit(&ir.Instr{Op: ir.OpCmp, Sub: cmpPred(e.Op, true), Ty: ir.U8,
			Args: []ir.Value{li, ri}, Line: e.Line}), nil
	}
	return nil, errf(e.Line, "unsupported pointer arithmetic %q", e.Op)
}

// shortCircuit lowers && and || with control flow and a result slot, the
// -O0 way.
func (c *fctx) shortCircuit(e *minic.Binary) (ir.Value, error) {
	slot := c.emit(&ir.Instr{Op: ir.OpAlloca, Ty: ir.Ptr(ir.U8), AllocaElem: ir.U8, Nm: "sc.addr", Line: e.Line})
	l, err := c.rvalue(e.L)
	if err != nil {
		return nil, err
	}
	lBool := c.emit(&ir.Instr{Op: ir.OpCmp, Sub: "ne", Ty: ir.U8,
		Args: []ir.Value{l, ir.ConstInt(l.Type(), 0)}, Line: e.Line})
	c.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{lBool, slot}, Line: e.Line})

	evalR := c.f.NewBlock("sc.rhs")
	join := c.f.NewBlock("sc.end")
	if e.Op == "&&" {
		c.emit(&ir.Instr{Op: ir.OpCondBr, Args: []ir.Value{lBool}, Then: evalR, Else: join, Line: e.Line})
	} else {
		c.emit(&ir.Instr{Op: ir.OpCondBr, Args: []ir.Value{lBool}, Then: join, Else: evalR, Line: e.Line})
	}
	c.setBlock(evalR)
	r, err := c.rvalue(e.R)
	if err != nil {
		return nil, err
	}
	rBool := c.emit(&ir.Instr{Op: ir.OpCmp, Sub: "ne", Ty: ir.U8,
		Args: []ir.Value{r, ir.ConstInt(r.Type(), 0)}, Line: e.Line})
	c.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{rBool, slot}, Line: e.Line})
	c.emit(&ir.Instr{Op: ir.OpBr, Then: join})
	c.setBlock(join)
	return c.emit(&ir.Instr{Op: ir.OpLoad, Ty: ir.U8, Args: []ir.Value{slot}, Line: e.Line}), nil
}

func (c *fctx) ternary(e *minic.Cond) (ir.Value, error) {
	// Result type: lower both arms speculatively is wrong; instead use the
	// unified static width u64 and truncate at use sites via coerce.
	slot := c.emit(&ir.Instr{Op: ir.OpAlloca, Ty: ir.Ptr(ir.I64), AllocaElem: ir.I64, Nm: "cond.addr", Line: e.Line})
	cond, err := c.condValue(e.C)
	if err != nil {
		return nil, err
	}
	thenB := c.f.NewBlock("cond.then")
	elseB := c.f.NewBlock("cond.else")
	join := c.f.NewBlock("cond.end")
	c.emit(&ir.Instr{Op: ir.OpCondBr, Args: []ir.Value{cond}, Then: thenB, Else: elseB, Line: e.Line})
	c.setBlock(thenB)
	a, err := c.rvalue(e.A)
	if err != nil {
		return nil, err
	}
	c.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{c.coerce(a, ir.I64), slot}})
	c.emit(&ir.Instr{Op: ir.OpBr, Then: join})
	c.setBlock(elseB)
	b, err := c.rvalue(e.B)
	if err != nil {
		return nil, err
	}
	c.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{c.coerce(b, ir.I64), slot}})
	c.emit(&ir.Instr{Op: ir.OpBr, Then: join})
	c.setBlock(join)
	return c.emit(&ir.Instr{Op: ir.OpLoad, Ty: ir.I64, Args: []ir.Value{slot}, Line: e.Line}), nil
}

func (c *fctx) assign(e *minic.Assign) (ir.Value, error) {
	lv, err := c.lvalue(e.L)
	if err != nil {
		return nil, err
	}
	elem := ir.Elem(lv.Type())
	var v ir.Value
	if e.Op == "" {
		v, err = c.rvalue(e.R)
		if err != nil {
			return nil, err
		}
	} else {
		old := c.emit(&ir.Instr{Op: ir.OpLoad, Ty: elem, Args: []ir.Value{lv}, Line: e.Line})
		r, err := c.rvalue(e.R)
		if err != nil {
			return nil, err
		}
		if ir.IsPtr(elem) && (e.Op == "+" || e.Op == "-") {
			idx := c.coerce(r, ir.I64)
			if e.Op == "-" {
				idx = c.emit(&ir.Instr{Op: ir.OpBin, Sub: "sub", Ty: ir.I64,
					Args: []ir.Value{ir.ConstInt(ir.I64, 0), idx}})
			}
			v = c.emit(&ir.Instr{Op: ir.OpGEP, Ty: elem, Args: []ir.Value{old, idx}, Line: e.Line})
		} else {
			ty := unify(old.Type(), r.Type())
			ol, rr := c.coerce(old, ty), c.coerce(r, ty)
			sub, ok := binSub(e.Op, ty.Unsigned)
			if !ok {
				return nil, errf(e.Line, "unknown compound op %q", e.Op)
			}
			v = c.emit(&ir.Instr{Op: ir.OpBin, Sub: sub, Ty: ty, Args: []ir.Value{ol, rr}, Line: e.Line})
		}
	}
	v = c.coerce(v, elem)
	c.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{v, lv}, Line: e.Line})
	return v, nil
}

func (c *fctx) call(e *minic.Call) (ir.Value, error) {
	// Speculation-barrier intrinsics lower to fence instructions.
	if e.Fun == "lfence" || e.Fun == "__builtin_ia32_lfence" {
		return c.emit(&ir.Instr{Op: ir.OpFence, Sub: "lfence", Line: e.Line}), nil
	}
	callee := c.lw.funcs[e.Fun]
	var args []ir.Value
	for i, a := range e.Args {
		v, err := c.rvalue(a)
		if err != nil {
			return nil, err
		}
		if callee != nil && i < len(callee.Params) {
			want := callee.Params[i].Ty
			if _, isArr := v.Type().(ir.PtrType); isArr || ir.IsInt(v.Type()) {
				v = c.coerce(v, want)
			}
		}
		args = append(args, v)
	}
	ret := ir.Type(ir.I64)
	if callee != nil {
		ret = callee.Ret
	}
	in := &ir.Instr{Op: ir.OpCall, Callee: e.Fun, Args: args, Line: e.Line}
	if ret.Size() > 0 {
		in.Ty = ret
	}
	return c.emit(in), nil
}
