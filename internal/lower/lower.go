// Package lower translates minic ASTs into ir modules in Clang -O0 style:
// every local variable (including register-qualified ones, which -O0
// ignores — the behaviour §6.1 calls out) lives in a stack slot; every
// expression read loads from memory; values never cross basic blocks
// except through memory. This reproduces the IR shape of the artifacts
// Clou analyzes.
package lower

import (
	"fmt"

	"lcm/internal/dataflow"
	"lcm/internal/ir"
	"lcm/internal/minic"
)

// Module lowers a parsed file to an IR module.
func Module(f *minic.File) (*ir.Module, error) {
	lw := &lowerer{
		m:       ir.NewModule(),
		file:    f,
		globals: make(map[string]*ir.Global),
		consts:  make(map[string]uint64),
		funcs:   make(map[string]*ir.Func),
	}
	if err := lw.structs(); err != nil {
		return nil, err
	}
	if err := lw.globalDecls(); err != nil {
		return nil, err
	}
	// Two passes over functions: declare first (so calls resolve types),
	// then lower bodies.
	for _, fd := range f.Funcs {
		if lw.funcs[fd.Name] != nil {
			continue
		}
		irf, err := lw.declareFunc(fd)
		if err != nil {
			return nil, err
		}
		lw.funcs[fd.Name] = irf
		lw.m.Funcs = append(lw.m.Funcs, irf)
	}
	for _, fd := range f.Funcs {
		if fd.Body == nil {
			continue
		}
		if err := lw.lowerFunc(lw.funcs[fd.Name], fd); err != nil {
			return nil, fmt.Errorf("func %s: %w", fd.Name, err)
		}
	}
	if err := ir.Verify(lw.m); err != nil {
		return nil, err
	}
	// The SSA verifier catches what the quick structural pass cannot:
	// dominance violations, foreign branch targets, and per-opcode type
	// inconsistencies. Running it here means every minic round-trip test
	// exercises it on the lowered module for free.
	if err := dataflow.VerifyModule(lw.m); err != nil {
		return nil, err
	}
	return lw.m, nil
}

type lowerer struct {
	m       *ir.Module
	file    *minic.File
	globals map[string]*ir.Global
	consts  map[string]uint64 // enumerators and const-init scalars
	funcs   map[string]*ir.Func
}

// Error is a lowering failure.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// typeOf resolves a syntactic type.
func (lw *lowerer) typeOf(te minic.TypeExpr) (ir.Type, error) {
	var base ir.Type
	switch te.Base {
	case "void":
		if te.Ptr > 0 {
			base = ir.U8 // void* models as u8*
		} else {
			base = ir.Void
		}
	case "char":
		base = ir.IntType{Bits: 8, Unsigned: te.Unsigned}
	case "short":
		base = ir.IntType{Bits: 16, Unsigned: te.Unsigned}
	case "int":
		base = ir.IntType{Bits: 32, Unsigned: te.Unsigned}
	case "long":
		base = ir.IntType{Bits: 64, Unsigned: te.Unsigned}
	case "struct":
		st, ok := lw.m.Structs[te.StructName]
		if !ok {
			return nil, fmt.Errorf("unknown struct %q", te.StructName)
		}
		base = st
	default:
		return nil, fmt.Errorf("unknown type %q", te.Base)
	}
	for i := 0; i < te.Ptr; i++ {
		base = ir.Ptr(base)
	}
	// Array dims outermost-first: int a[2][3] is Array(2, Array(3, int)).
	for i := len(te.ArrayDims) - 1; i >= 0; i-- {
		n := int(te.ArrayDims[i])
		if n == 0 {
			base = ir.Ptr(base) // unsized arrays decay
			continue
		}
		base = ir.ArrayType{Elem: base, N: n}
	}
	return base, nil
}

func (lw *lowerer) structs() error {
	for _, sd := range lw.file.Structs {
		var fields []ir.StructField
		for _, f := range sd.Fields {
			// Self-referential pointer fields resolve lazily to u8*.
			ty, err := lw.typeOf(f.Type)
			if err != nil {
				if f.Type.Ptr > 0 {
					ty = ir.Ptr(ir.U8)
				} else {
					return err
				}
			}
			fields = append(fields, ir.StructField{Name: f.Name, Ty: ty})
		}
		name := sd.Name
		if name == "" {
			name = fmt.Sprintf("anon%d", len(lw.m.Structs))
		}
		lw.m.Structs[name] = ir.NewStruct(name, fields)
	}
	return nil
}

func (lw *lowerer) globalDecls() error {
	for _, g := range lw.file.Globals {
		ty, err := lw.typeOf(g.Type)
		if err != nil {
			return errf(g.Line, "%v", err)
		}
		init := make([]byte, 0, ty.Size())
		writeN := func(v uint64, size int) {
			for i := 0; i < size; i++ {
				init = append(init, byte(v>>(8*uint(i))))
			}
		}
		switch {
		case g.Init != nil:
			v, ok := minic.EvalConst(g.Init)
			if !ok {
				return errf(g.Line, "global %s: non-constant initializer", g.Name)
			}
			writeN(v, ty.Size())
			lw.consts[g.Name] = v
		case g.InitList != nil:
			at, ok := ty.(ir.ArrayType)
			if !ok {
				return errf(g.Line, "global %s: list initializer on non-array", g.Name)
			}
			for _, e := range g.InitList {
				v, ok := minic.EvalConst(e)
				if !ok {
					return errf(g.Line, "global %s: non-constant element", g.Name)
				}
				writeN(v, at.Elem.Size())
			}
		}
		gl := &ir.Global{Nm: g.Name, Elem: ty, Init: init}
		lw.globals[g.Name] = gl
		lw.m.Globals = append(lw.m.Globals, gl)
	}
	return nil
}

func (lw *lowerer) declareFunc(fd *minic.FuncDecl) (*ir.Func, error) {
	ret, err := lw.typeOf(fd.Ret)
	if err != nil {
		return nil, errf(fd.Line, "%v", err)
	}
	irf := &ir.Func{Nm: fd.Name, Ret: ret}
	for i, p := range fd.Params {
		pty, err := lw.typeOf(p.Type)
		if err != nil {
			return nil, errf(fd.Line, "param %s: %v", p.Name, err)
		}
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("arg%d", i)
		}
		irf.Params = append(irf.Params, &ir.Param{Nm: name, Ty: pty, Idx: i})
	}
	return irf, nil
}

// fctx is per-function lowering state.
type fctx struct {
	lw     *lowerer
	f      *ir.Func
	blk    *ir.Block
	scopes []map[string]*ir.Instr // name → alloca
	// loop targets for break/continue
	breaks    []*ir.Block
	continues []*ir.Block
}

func (lw *lowerer) lowerFunc(irf *ir.Func, fd *minic.FuncDecl) error {
	c := &fctx{lw: lw, f: irf}
	entry := irf.NewBlock("entry")
	c.blk = entry
	c.push()
	defer c.pop()
	// Spill parameters to stack slots (-O0 style).
	for _, p := range irf.Params {
		slot := c.emit(&ir.Instr{Op: ir.OpAlloca, Ty: ir.Ptr(p.Ty), AllocaElem: p.Ty, Nm: p.Nm + ".addr"})
		c.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{p, slot}})
		c.bind(p.Nm, slot)
	}
	if err := c.block(fd.Body); err != nil {
		return err
	}
	// Terminate the final block if the function falls off the end.
	if c.blk.Terminator() == nil {
		if irf.Ret.Size() == 0 {
			c.emit(&ir.Instr{Op: ir.OpRet})
		} else {
			c.emit(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{ir.ConstInt(irf.Ret, 0)}})
		}
	}
	return nil
}

func (c *fctx) push() { c.scopes = append(c.scopes, map[string]*ir.Instr{}) }
func (c *fctx) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *fctx) bind(name string, slot *ir.Instr) {
	c.scopes[len(c.scopes)-1][name] = slot
}

func (c *fctx) lookup(name string) *ir.Instr {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *fctx) emit(in *ir.Instr) *ir.Instr { return c.f.Append(c.blk, in) }

// newBlockAfter starts emitting into a fresh block.
func (c *fctx) setBlock(b *ir.Block) { c.blk = b }

func (c *fctx) block(b *minic.Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *fctx) stmt(s minic.Stmt) error {
	// Statements after a terminator are unreachable; Clang emits them into
	// dead blocks — do the same so the IR stays verifiable.
	if c.blk.Terminator() != nil {
		c.setBlock(c.f.NewBlock("dead"))
	}
	switch s := s.(type) {
	case *minic.Block:
		return c.block(s)
	case *minic.DeclStmt:
		for _, d := range s.Decls {
			if err := c.localDecl(d); err != nil {
				return err
			}
		}
		return nil
	case *minic.ExprStmt:
		return c.discard(s.X)
	case *minic.IfStmt:
		return c.ifStmt(s)
	case *minic.WhileStmt:
		return c.whileStmt(s)
	case *minic.ForStmt:
		return c.forStmt(s)
	case *minic.ReturnStmt:
		if s.X == nil {
			c.emit(&ir.Instr{Op: ir.OpRet, Line: s.Line})
			return nil
		}
		v, err := c.rvalue(s.X)
		if err != nil {
			return err
		}
		if c.f.Ret.Size() > 0 {
			v = c.coerce(v, c.f.Ret)
			c.emit(&ir.Instr{Op: ir.OpRet, Args: []ir.Value{v}, Line: s.Line})
		} else {
			c.emit(&ir.Instr{Op: ir.OpRet, Line: s.Line})
		}
		return nil
	case *minic.BreakStmt:
		if len(c.breaks) == 0 {
			return errf(s.Line, "break outside loop")
		}
		c.emit(&ir.Instr{Op: ir.OpBr, Then: c.breaks[len(c.breaks)-1], Line: s.Line})
		return nil
	case *minic.ContinueStmt:
		if len(c.continues) == 0 {
			return errf(s.Line, "continue outside loop")
		}
		c.emit(&ir.Instr{Op: ir.OpBr, Then: c.continues[len(c.continues)-1], Line: s.Line})
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (c *fctx) localDecl(d *minic.VarDecl) error {
	ty, err := c.lw.typeOf(d.Type)
	if err != nil {
		return errf(d.Line, "%v", err)
	}
	slot := c.emit(&ir.Instr{Op: ir.OpAlloca, Ty: ir.Ptr(ty), AllocaElem: ty, Nm: d.Name + ".addr", Line: d.Line})
	c.bind(d.Name, slot)
	switch {
	case d.Init != nil:
		v, err := c.rvalue(d.Init)
		if err != nil {
			return err
		}
		c.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{c.coerce(v, ty), slot}, Line: d.Line})
	case d.InitList != nil:
		at, ok := ty.(ir.ArrayType)
		if !ok {
			return errf(d.Line, "list initializer on non-array")
		}
		base := c.decay(slot)
		for i, e := range d.InitList {
			v, err := c.rvalue(e)
			if err != nil {
				return err
			}
			ep := c.emit(&ir.Instr{Op: ir.OpGEP, Ty: ir.Ptr(at.Elem),
				Args: []ir.Value{base, ir.ConstInt(ir.I64, uint64(i))}, Line: d.Line})
			c.emit(&ir.Instr{Op: ir.OpStore, Args: []ir.Value{c.coerce(v, at.Elem), ep}, Line: d.Line})
		}
	}
	return nil
}

func (c *fctx) ifStmt(s *minic.IfStmt) error {
	cond, err := c.condValue(s.Cond)
	if err != nil {
		return err
	}
	thenB := c.f.NewBlock("if.then")
	joinB := c.f.NewBlock("if.end")
	elseB := joinB
	if s.Else != nil {
		elseB = c.f.NewBlock("if.else")
	}
	c.emit(&ir.Instr{Op: ir.OpCondBr, Args: []ir.Value{cond}, Then: thenB, Else: elseB, Line: s.Line})
	c.setBlock(thenB)
	if err := c.block(s.Then); err != nil {
		return err
	}
	if c.blk.Terminator() == nil {
		c.emit(&ir.Instr{Op: ir.OpBr, Then: joinB})
	}
	if s.Else != nil {
		c.setBlock(elseB)
		if err := c.block(s.Else); err != nil {
			return err
		}
		if c.blk.Terminator() == nil {
			c.emit(&ir.Instr{Op: ir.OpBr, Then: joinB})
		}
	}
	c.setBlock(joinB)
	return nil
}

func (c *fctx) whileStmt(s *minic.WhileStmt) error {
	condB := c.f.NewBlock("while.cond")
	bodyB := c.f.NewBlock("while.body")
	endB := c.f.NewBlock("while.end")
	if s.PostCheck {
		c.emit(&ir.Instr{Op: ir.OpBr, Then: bodyB, Line: s.Line})
	} else {
		c.emit(&ir.Instr{Op: ir.OpBr, Then: condB, Line: s.Line})
	}
	c.setBlock(condB)
	cond, err := c.condValue(s.Cond)
	if err != nil {
		return err
	}
	c.emit(&ir.Instr{Op: ir.OpCondBr, Args: []ir.Value{cond}, Then: bodyB, Else: endB, Line: s.Line})
	c.setBlock(bodyB)
	c.breaks = append(c.breaks, endB)
	c.continues = append(c.continues, condB)
	err = c.block(s.Body)
	c.breaks = c.breaks[:len(c.breaks)-1]
	c.continues = c.continues[:len(c.continues)-1]
	if err != nil {
		return err
	}
	if c.blk.Terminator() == nil {
		c.emit(&ir.Instr{Op: ir.OpBr, Then: condB})
	}
	c.setBlock(endB)
	return nil
}

func (c *fctx) forStmt(s *minic.ForStmt) error {
	c.push()
	defer c.pop()
	if s.Init != nil {
		if err := c.stmt(s.Init); err != nil {
			return err
		}
	}
	condB := c.f.NewBlock("for.cond")
	bodyB := c.f.NewBlock("for.body")
	postB := c.f.NewBlock("for.post")
	endB := c.f.NewBlock("for.end")
	c.emit(&ir.Instr{Op: ir.OpBr, Then: condB, Line: s.Line})
	c.setBlock(condB)
	if s.Cond != nil {
		cond, err := c.condValue(s.Cond)
		if err != nil {
			return err
		}
		c.emit(&ir.Instr{Op: ir.OpCondBr, Args: []ir.Value{cond}, Then: bodyB, Else: endB, Line: s.Line})
	} else {
		c.emit(&ir.Instr{Op: ir.OpBr, Then: bodyB, Line: s.Line})
	}
	c.setBlock(bodyB)
	c.breaks = append(c.breaks, endB)
	c.continues = append(c.continues, postB)
	err := c.block(s.Body)
	c.breaks = c.breaks[:len(c.breaks)-1]
	c.continues = c.continues[:len(c.continues)-1]
	if err != nil {
		return err
	}
	if c.blk.Terminator() == nil {
		c.emit(&ir.Instr{Op: ir.OpBr, Then: postB})
	}
	c.setBlock(postB)
	if s.Post != nil {
		if err := c.discard(s.Post); err != nil {
			return err
		}
	}
	c.emit(&ir.Instr{Op: ir.OpBr, Then: condB})
	c.setBlock(endB)
	return nil
}
