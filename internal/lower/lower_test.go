package lower

import (
	"strings"
	"testing"

	"lcm/internal/ir"
	"lcm/internal/minic"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m
}

func run(t *testing.T, m *ir.Module, fn string, args ...uint64) uint64 {
	t.Helper()
	ip := ir.NewInterp(m)
	v, err := ip.Call(fn, args...)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	m := compile(t, `
		int add(int a, int b) { return a + b; }
		int mix(int a, int b) { return (a * 3 - b / 2) % 7; }
		unsigned int ushift(unsigned int x) { return (x << 3) >> 1; }
		int sshift(int x) { return x >> 2; }
	`)
	if got := run(t, m, "add", 2, 40); got != 42 {
		t.Errorf("add = %d", got)
	}
	if got := int32(run(t, m, "mix", 10, 4)); got != 0 {
		t.Errorf("mix = %d", got)
	}
	if got := run(t, m, "ushift", 1); got != 4 {
		t.Errorf("ushift = %d", got)
	}
	if got := int32(run(t, m, "sshift", uint64(0xFFFFFFF0))); got != -4 {
		t.Errorf("sshift = %d", got)
	}
}

func TestControlFlow(t *testing.T) {
	m := compile(t, `
		int sum_to(int n) {
			int s = 0;
			for (int i = 1; i <= n; i++) s += i;
			return s;
		}
		int collatz(int n) {
			int steps = 0;
			while (n != 1) {
				if (n % 2 == 0) n = n / 2;
				else n = 3 * n + 1;
				steps++;
			}
			return steps;
		}
		int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
		int loop_break(int n) {
			int i = 0;
			while (1) { i++; if (i >= n) break; }
			return i;
		}
		int loop_continue(int n) {
			int s = 0;
			for (int i = 0; i < n; i++) { if (i % 2) continue; s += i; }
			return s;
		}
		int dowhile(int n) { int c = 0; do { c++; n--; } while (n > 0); return c; }
	`)
	if got := run(t, m, "sum_to", 10); got != 55 {
		t.Errorf("sum_to = %d", got)
	}
	if got := run(t, m, "collatz", 27); got != 111 {
		t.Errorf("collatz = %d", got)
	}
	if got := run(t, m, "fact", 6); got != 720 {
		t.Errorf("fact = %d", got)
	}
	if got := run(t, m, "loop_break", 5); got != 5 {
		t.Errorf("loop_break = %d", got)
	}
	if got := run(t, m, "loop_continue", 10); got != 20 {
		t.Errorf("loop_continue = %d", got)
	}
	if got := run(t, m, "dowhile", 0); got != 1 {
		t.Errorf("dowhile = %d (body must run once)", got)
	}
}

func TestShortCircuitAndTernary(t *testing.T) {
	m := compile(t, `
		int g = 0;
		int bump(void) { g = g + 1; return 1; }
		int and_sc(int a) { return a && bump(); }
		int or_sc(int a) { return a || bump(); }
		int get_g(void) { return g; }
		int pick(int c, int a, int b) { return c ? a : b; }
	`)
	ip := ir.NewInterp(m)
	v, _ := ip.Call("and_sc", 0)
	if v != 0 {
		t.Error("and_sc(0) != 0")
	}
	g, _ := ip.Call("get_g")
	if g != 0 {
		t.Error("&& did not short-circuit")
	}
	v, _ = ip.Call("or_sc", 1)
	if v != 1 {
		t.Error("or_sc(1) != 1")
	}
	g, _ = ip.Call("get_g")
	if g != 0 {
		t.Error("|| did not short-circuit")
	}
	v, _ = ip.Call("and_sc", 1)
	if v != 1 {
		t.Error("and_sc(1) != 1")
	}
	g, _ = ip.Call("get_g")
	if g != 1 {
		t.Error("&& rhs did not run")
	}
	if got := run(t, m, "pick", 1, 11, 22); got != 11 {
		t.Errorf("pick = %d", got)
	}
	if got := run(t, m, "pick", 0, 11, 22); got != 22 {
		t.Errorf("pick = %d", got)
	}
}

func TestArraysAndPointers(t *testing.T) {
	m := compile(t, `
		int A[8];
		void fill(int n) { for (int i = 0; i < n; i++) A[i] = i * i; }
		int get(int i) { return A[i]; }
		int via_ptr(int i) { int *p = A; p += i; return *p; }
		int swap_test(void) {
			int x = 3, y = 4;
			int *px = &x, *py = &y;
			int t = *px; *px = *py; *py = t;
			return x * 10 + y;
		}
		int two_d(void) {
			int grid[3][4];
			for (int i = 0; i < 3; i++)
				for (int j = 0; j < 4; j++)
					grid[i][j] = i * 4 + j;
			return grid[2][3];
		}
	`)
	ip := ir.NewInterp(m)
	ip.Call("fill", 8)
	for i := uint64(0); i < 8; i++ {
		v, _ := ip.Call("get", i)
		if v != i*i {
			t.Errorf("A[%d] = %d", i, v)
		}
		v, _ = ip.Call("via_ptr", i)
		if v != i*i {
			t.Errorf("via_ptr(%d) = %d", i, v)
		}
	}
	if got := run(t, m, "swap_test"); got != 43 {
		t.Errorf("swap_test = %d", got)
	}
	if got := run(t, m, "two_d"); got != 11 {
		t.Errorf("two_d = %d", got)
	}
}

func TestStructs(t *testing.T) {
	m := compile(t, `
		struct Point { int x; int y; long tag; };
		struct Point P;
		void set(int x, int y) { P.x = x; P.y = y; P.tag = 7; }
		int getx(void) { return P.x; }
		long via_arrow(void) { struct Point *p = &P; return p->tag + p->y; }
	`)
	ip := ir.NewInterp(m)
	ip.Call("set", 5, 9)
	if v, _ := ip.Call("getx"); v != 5 {
		t.Errorf("getx = %d", v)
	}
	if v, _ := ip.Call("via_arrow"); v != 16 {
		t.Errorf("via_arrow = %d", v)
	}
}

func TestTypeConversions(t *testing.T) {
	m := compile(t, `
		uint8_t narrow(uint32_t x) { return (uint8_t)x; }
		int widen_signed(char c) { return c; }
		unsigned int widen_unsigned(uint8_t c) { return c; }
	`)
	if got := run(t, m, "narrow", 0x1FF); got != 0xFF {
		t.Errorf("narrow = %#x", got)
	}
	if got := int32(run(t, m, "widen_signed", 0x80)); got != -128 {
		t.Errorf("widen_signed = %d", got)
	}
	if got := run(t, m, "widen_unsigned", 0x80); got != 128 {
		t.Errorf("widen_unsigned = %d", got)
	}
}

func TestGlobalsInitialization(t *testing.T) {
	m := compile(t, `
		uint32_t magic = 0xDEADBEEF;
		uint8_t table[4] = {10, 20, 30, 40};
		uint32_t get_magic(void) { return magic; }
		int get_table(int i) { return table[i]; }
	`)
	if got := run(t, m, "get_magic"); got != 0xDEADBEEF {
		t.Errorf("magic = %#x", got)
	}
	ip := ir.NewInterp(m)
	for i, want := range []uint64{10, 20, 30, 40} {
		if got, _ := ip.Call("get_table", uint64(i)); got != want {
			t.Errorf("table[%d] = %d", i, got)
		}
	}
}

// teaEncryptGo is the reference TEA implementation (Wheeler & Needham).
func teaEncryptGo(v [2]uint32, k [4]uint32) [2]uint32 {
	v0, v1 := v[0], v[1]
	var sum uint32
	const delta = 0x9E3779B9
	for i := 0; i < 32; i++ {
		sum += delta
		v0 += ((v1 << 4) + k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + k[1])
		v1 += ((v0 << 4) + k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + k[3])
	}
	return [2]uint32{v0, v1}
}

const teaSrc = `
uint32_t V[2];
uint32_t K[4];
void tea_encrypt(void) {
	uint32_t v0 = V[0];
	uint32_t v1 = V[1];
	uint32_t sum = 0;
	uint32_t delta = 0x9E3779B9;
	for (int i = 0; i < 32; i++) {
		sum += delta;
		v0 += ((v1 << 4) + K[0]) ^ (v1 + sum) ^ ((v1 >> 5) + K[1]);
		v1 += ((v0 << 4) + K[2]) ^ (v0 + sum) ^ ((v0 >> 5) + K[3]);
	}
	V[0] = v0;
	V[1] = v1;
}
`

// TestTEADifferential compiles the mini-C TEA cipher and checks it against
// the native Go implementation on many inputs — an end-to-end test of the
// lexer, parser, lowering, and interpreter.
func TestTEADifferential(t *testing.T) {
	m := compile(t, teaSrc)
	ip := ir.NewInterp(m)
	vAddr, _ := ip.GlobalAddr("V")
	kAddr, _ := ip.GlobalAddr("K")

	seed := uint32(0x12345678)
	next := func() uint32 {
		seed = seed*1664525 + 1013904223
		return seed
	}
	for trial := 0; trial < 50; trial++ {
		var v [2]uint32
		var k [4]uint32
		for i := range v {
			v[i] = next()
		}
		for i := range k {
			k[i] = next()
		}
		for i, x := range v {
			ip.Mem.Store(vAddr+uint64(4*i), 4, uint64(x))
		}
		for i, x := range k {
			ip.Mem.Store(kAddr+uint64(4*i), 4, uint64(x))
		}
		ip.Budget = 5_000_000
		if _, err := ip.Call("tea_encrypt"); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := teaEncryptGo(v, k)
		got := [2]uint32{
			uint32(ip.Mem.Load(vAddr, 4)),
			uint32(ip.Mem.Load(vAddr+4, 4)),
		}
		if got != want {
			t.Fatalf("trial %d: got %#x, want %#x", trial, got, want)
		}
	}
}

func TestSpectreV1LoweringShape(t *testing.T) {
	m := compile(t, `
		uint8_t A[16];
		uint8_t B[131072];
		uint32_t size_A = 16;
		uint8_t tmp;
		void victim(uint32_t y) {
			if (y < size_A) {
				uint8_t x = A[y];
				tmp &= B[x * 512];
			}
		}
	`)
	f := m.Func("victim")
	if f == nil {
		t.Fatal("victim missing")
	}
	text := f.String()
	// The -O0 shape: y spilled to a stack slot, gep-based indexing, a
	// conditional branch.
	for _, want := range []string{"alloca", "gep", "condbr", "load"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Interpreting in-bounds works.
	ip := ir.NewInterp(m)
	if _, err := ip.Call("victim", 3); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterKeywordIgnored(t *testing.T) {
	// §6.1: Clang -O0 disregards register and stores the index to memory
	// anyway; our lowering must do the same (the STL bypass depends on it).
	m := compile(t, `int f(int x) { register int idx = x; return idx + 1; }`)
	text := m.Func("f").String()
	if !strings.Contains(text, "idx.addr") {
		t.Errorf("register variable not spilled to stack:\n%s", text)
	}
}

func TestBuiltins(t *testing.T) {
	m := compile(t, `
		uint8_t a[4] = {1, 2, 3, 4};
		uint8_t b[4] = {1, 2, 3, 5};
		int memcmp(const void *x, const void *y, size_t n);
		void *memset(void *p, int c, size_t n);
		int cmp(void) { return memcmp(a, b, 4); }
		int cmp3(void) { return memcmp(a, b, 3); }
		int set_and_read(void) { memset(a, 9, 4); return a[2]; }
	`)
	ip := ir.NewInterp(m)
	if v, _ := ip.Call("cmp"); int32(v) >= 0 {
		t.Errorf("cmp = %d, want negative", int32(v))
	}
	if v, _ := ip.Call("cmp3"); v != 0 {
		t.Errorf("cmp3 = %d", v)
	}
	if v, _ := ip.Call("set_and_read"); v != 9 {
		t.Errorf("set_and_read = %d", v)
	}
}

func TestVerifierCatchesMalformedIR(t *testing.T) {
	m := compile(t, `int f(int x) { return x; }`)
	f := m.Func("f")
	// Chop the terminator off the entry block.
	entry := f.Entry()
	entry.Instrs = entry.Instrs[:len(entry.Instrs)-1]
	if err := ir.Verify(m); err == nil {
		t.Error("verifier accepted unterminated block")
	}
}

func TestInterpBudget(t *testing.T) {
	m := compile(t, `void spin(void) { while (1) {} }`)
	ip := ir.NewInterp(m)
	ip.Budget = 10_000
	if _, err := ip.Call("spin"); err == nil {
		t.Fatal("infinite loop not caught by budget")
	}
}

func TestUnknownExternReturnsZero(t *testing.T) {
	m := compile(t, `int mystery(int x); int f(void) { return mystery(3) + 7; }`)
	if got := run(t, m, "f"); got != 7 {
		t.Errorf("f = %d", got)
	}
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	m := compile(t, `
		int f(int x) {
			x += 5; x -= 2; x *= 3; x <<= 1; x ^= 1; x |= 4; x &= 0xFF; x %= 100;
			return x;
		}
		int incs(int x) { int a = x++; int b = ++x; return a * 100 + b + x; }
	`)
	// ((((3+5-2)*3)<<1)^1) = 37, |4 = 37|4=37? 37 = 0b100101, |4 → 0b100101 already has 4. ^1: 36^... compute in test directly:
	x := int32(3)
	x += 5
	x -= 2
	x *= 3
	x <<= 1
	x ^= 1
	x |= 4
	x &= 0xFF
	x %= 100
	if got := int32(run(t, m, "f", 3)); got != x {
		t.Errorf("f = %d, want %d", got, x)
	}
	// incs(5): a=5 (post), x=6; ++x → x=7, b=7; return 5*100+7+7 = 514.
	if got := run(t, m, "incs", 5); got != 514 {
		t.Errorf("incs = %d", got)
	}
}

func TestModulePrinting(t *testing.T) {
	m := compile(t, `
		struct S { int a; long b; };
		int g = 5;
		int f(int x) { return x + g; }
	`)
	s := m.String()
	for _, want := range []string{"%S = type", "@g = global", "func @f(", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("module print missing %q", want)
		}
	}
}

func TestStructLayout(t *testing.T) {
	st := ir.NewStruct("T", []ir.StructField{
		{Name: "a", Ty: ir.I8},
		{Name: "b", Ty: ir.I32},
		{Name: "c", Ty: ir.I8},
		{Name: "d", Ty: ir.I64},
	})
	fa, _ := st.Field("a")
	fb, _ := st.Field("b")
	fc, _ := st.Field("c")
	fd, _ := st.Field("d")
	if fa.Offset != 0 || fb.Offset != 4 || fc.Offset != 8 || fd.Offset != 16 {
		t.Errorf("offsets = %d %d %d %d", fa.Offset, fb.Offset, fc.Offset, fd.Offset)
	}
	if st.Size() != 24 {
		t.Errorf("size = %d", st.Size())
	}
}
