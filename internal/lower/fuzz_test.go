package lower

import (
	"testing"

	"lcm/internal/minic"
)

// FuzzLower is the native fuzz target for the lowering pass: any file the
// frontend accepts must lower without panicking. Returning an error is
// fine — the lowerer rejects plenty of parsable-but-unsupported shapes —
// but an index-out-of-range or nil deref on parser-approved input is a
// bug. Run with `make fuzz` or `go test -fuzz=FuzzLower ./internal/lower`.
func FuzzLower(f *testing.F) {
	for _, seed := range []string{
		"int f(void) { return 0; }",
		"uint8_t t[256];\nint v1(long i, long n) { if (i < n) { return t[i] * 2; } return 0; }",
		"struct P { int x; int y; };\nint dot(struct P *a, struct P *b) { return a->x * b->x + a->y * b->y; }",
		"int sum(int *a, int n) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } return s; }",
		"int g;\nvoid w(int x) { g = x ? sizeof(long) : -x; }",
		"static long mix(long a, long b) { return (a << 7) ^ (b >> 3) ^ (a & b); }",
		"char buf[8];\nvoid cpy(char *src) { int i = 0; do { buf[i] = src[i]; i++; } while (src[i]); }",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := minic.Parse(src)
		if err != nil {
			return
		}
		// Must not panic; errors are expected for unsupported constructs.
		_, _ = Module(file)
	})
}
