package dataflow_test

import (
	"strings"
	"testing"

	"lcm/internal/cryptolib"
	"lcm/internal/dataflow"
)

func libsodiumModule(t *testing.T) *cryptolib.Library {
	t.Helper()
	for _, lib := range cryptolib.All() {
		if lib.Name == "libsodium" {
			return &lib
		}
	}
	t.Fatal("libsodium corpus entry not found")
	return nil
}

func byFunc(fs []dataflow.LintFinding, fn string) []dataflow.LintFinding {
	var out []dataflow.LintFinding
	for _, f := range fs {
		if f.Fn == fn {
			out = append(out, f)
		}
	}
	return out
}

func TestLintFlagsBin2hex(t *testing.T) {
	lib := libsodiumModule(t)
	m := compile(t, lib.Source)
	fs := dataflow.LintModule(m, dataflow.NamedSpec("bin"))
	got := byFunc(fs, "sodium_bin2hex")
	if len(got) == 0 {
		t.Fatalf("bin2hex indexes ls_hexmap with secret nibbles; want findings, got none (all: %v)", fs)
	}
	var access bool
	for _, f := range got {
		if f.Kind == dataflow.LintAccess {
			access = true
			if f.Line == 0 {
				t.Errorf("finding lacks a source line: %v", f)
			}
			if !strings.Contains(f.String(), "secret-indexed access") {
				t.Errorf("String() = %q, want the kind spelled out", f.String())
			}
		}
	}
	if !access {
		t.Fatalf("want a secret-indexed access finding in sodium_bin2hex, got %v", got)
	}
}

func TestLintQuietOnConstantTime(t *testing.T) {
	lib := libsodiumModule(t)
	m := compile(t, lib.Source)
	fs := dataflow.LintModule(m, dataflow.NamedSpec("b1", "b2"))
	if got := byFunc(fs, "sodium_memcmp"); len(got) != 0 {
		t.Fatalf("sodium_memcmp is constant time; want no findings, got %v", got)
	}
}

func TestLintSecretBranchInterprocedural(t *testing.T) {
	m := compile(t, `
uint8_t out;
uint8_t helper(uint8_t v) {
	if (v > 10) {
		return 1;
	}
	return 0;
}
void outer(uint8_t *data) {
	out = helper(data[0]);
}
`)
	fs := dataflow.LintModule(m, dataflow.NamedSpec("data"))
	got := byFunc(fs, "helper")
	if len(got) == 0 {
		t.Fatalf("secret flows through the call into helper's branch; want a finding, got %v", fs)
	}
	if got[0].Kind != dataflow.LintBranch {
		t.Fatalf("want a secret-dependent branch, got %v", got[0])
	}
	// The public-index store through `out` must not be flagged.
	if extra := byFunc(fs, "outer"); len(extra) != 0 {
		t.Fatalf("outer only moves secret data to public locations; got %v", extra)
	}
}

// TestLintCorpusAnnotations drives lint with each library's own
// SecretParams annotation — the configuration cmd/lcmlint uses for a
// corpus sweep. libsodium must yield the two known constant-time
// violations; donna and openssl annotate secrets that are handled
// branch-free and must stay quiet.
func TestLintCorpusAnnotations(t *testing.T) {
	wantDirty := map[string][]string{
		"libsodium": {"sodium_bin2hex", "sodium_unpad"},
	}
	for _, lib := range cryptolib.All() {
		if len(lib.SecretParams) == 0 {
			continue
		}
		m := compile(t, lib.Source)
		fs := dataflow.LintModule(m, dataflow.NamedSpec(lib.SecretParams...))
		dirty := map[string]bool{}
		for _, f := range fs {
			dirty[f.Fn] = true
		}
		for _, fn := range wantDirty[lib.Name] {
			if !dirty[fn] {
				t.Errorf("%s: want a finding in %s, got %v", lib.Name, fn, fs)
			}
			delete(dirty, fn)
		}
		if len(dirty) != 0 {
			t.Errorf("%s: unexpected findings outside the known violations: %v", lib.Name, fs)
		}
	}
}

func TestLintHeuristicSpec(t *testing.T) {
	m := compile(t, `
uint8_t sbox[256];
uint8_t out;
void expand(uint8_t *key) {
	out = sbox[key[0]];
}
void copy(uint8_t *src) {
	out = src[0];
}
`)
	fs := dataflow.LintModule(m, dataflow.HeuristicSpec())
	if len(byFunc(fs, "expand")) == 0 {
		t.Fatal("heuristic spec must treat the key parameter as secret and flag the sbox lookup")
	}
	if got := byFunc(fs, "copy"); len(got) != 0 {
		t.Fatalf("src is not a heuristic secret name; got %v", got)
	}
}
