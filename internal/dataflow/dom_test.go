package dataflow_test

import (
	"testing"

	"lcm/internal/dataflow"
)

func TestDominatorsDiamond(t *testing.T) {
	// 0 → {1,2} → 3.
	g := mk([][]int{{1, 2}, {3}, {3}, nil})
	d := dataflow.Dominators(g, 0)
	if d.Root() != 0 {
		t.Fatalf("root = %d, want 0", d.Root())
	}
	for n, want := range map[int]int{0: -1, 1: 0, 2: 0, 3: 0} {
		if got := d.Idom(n); got != want {
			t.Errorf("idom(%d) = %d, want %d", n, got, want)
		}
	}
	for _, c := range []struct {
		a, b   int
		dom    bool
		strict bool
	}{
		{0, 0, true, false},
		{0, 3, true, true},
		{1, 3, false, false}, // path 0→2→3 avoids 1
		{2, 3, false, false},
		{3, 1, false, false},
	} {
		if got := d.Dominates(c.a, c.b); got != c.dom {
			t.Errorf("Dominates(%d,%d) = %v, want %v", c.a, c.b, got, c.dom)
		}
		if got := d.StrictlyDominates(c.a, c.b); got != c.strict {
			t.Errorf("StrictlyDominates(%d,%d) = %v, want %v", c.a, c.b, got, c.strict)
		}
	}
	kids := d.Children(0)
	if len(kids) != 3 {
		t.Errorf("children(0) = %v, want all of 1,2,3", kids)
	}

	df := d.Frontier(g)
	if len(df[1]) != 1 || df[1][0] != 3 {
		t.Errorf("DF(1) = %v, want [3]", df[1])
	}
	if len(df[2]) != 1 || df[2][0] != 3 {
		t.Errorf("DF(2) = %v, want [3]", df[2])
	}
	if len(df[0]) != 0 || len(df[3]) != 0 {
		t.Errorf("DF(0)=%v DF(3)=%v, want both empty", df[0], df[3])
	}
}

func TestDominatorsLoopAndUnreachable(t *testing.T) {
	// 0 → 1, 1 → {2,3}, 2 → 1 (back edge); 4 → 1 is unreachable from 0.
	g := mk([][]int{{1}, {2, 3}, {1}, nil, {1}})
	d := dataflow.Dominators(g, 0)
	if d.Idom(2) != 1 || d.Idom(3) != 1 {
		t.Fatalf("idom(2)=%d idom(3)=%d, want 1,1", d.Idom(2), d.Idom(3))
	}
	if !d.Dominates(1, 2) || d.Dominates(2, 3) {
		t.Fatalf("loop dominance wrong: 1 must dominate 2; 2 must not dominate 3")
	}
	if d.Reachable(4) {
		t.Fatalf("node 4 must be unreachable")
	}
	if d.Idom(4) != -1 || d.Dominates(0, 4) || d.Dominates(4, 1) {
		t.Fatalf("unreachable node must dominate nothing and be dominated by nothing")
	}

	be := dataflow.BackEdges(g, d)
	if len(be) != 1 || be[0] != [2]int{2, 1} {
		t.Fatalf("back edges = %v, want [[2 1]]", be)
	}
	heads := dataflow.LoopHeads(g, d)
	if len(heads) != 1 || !heads[1] {
		t.Fatalf("loop heads = %v, want {1}", heads)
	}
	// The frontier of a loop body node includes the head it re-enters.
	df := d.Frontier(g)
	found := false
	for _, j := range df[2] {
		if j == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("DF(2) = %v, want to contain loop head 1", df[2])
	}
}

func TestDominatorsOnLoweredLoop(t *testing.T) {
	m := compile(t, `
uint32_t acc;
void tally(uint32_t n) {
	uint32_t i = 0;
	while (i < n) {
		acc += i;
		i += 1;
	}
}
`)
	f := fn(t, m, "tally")
	g := dataflow.NewFuncGraph(f)
	d := dataflow.Dominators(g, 0)
	for n := 0; n < g.Len(); n++ {
		if !d.Reachable(n) {
			t.Errorf("block %d (%s) unreachable after lowering", n, f.Blocks[n].Nm)
		}
		if !d.Dominates(0, n) {
			t.Errorf("entry must dominate block %d (%s)", n, f.Blocks[n].Nm)
		}
	}
	heads := dataflow.LoopHeads(g, d)
	if len(heads) != 1 {
		t.Fatalf("lowered while loop must have exactly one loop head, got %v", heads)
	}
}
