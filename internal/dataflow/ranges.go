package dataflow

import (
	"sync"

	"lcm/internal/ir"
)

// env maps each tracked integer stack slot (alloca) to a bound on its
// current contents. Absent keys mean "any value of the slot's type"; a nil
// env is the unreachable bottom element.
type env map[*ir.Instr]Interval

func cloneEnv(e env) env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

func envEq(a, b env) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		o, ok := b[k]
		if !ok || !v.Eq(o) {
			return false
		}
	}
	return true
}

// RangeAnalysis bounds every integer value in one function with the
// interval domain: a forward fixpoint over tracked stack slots (Clou's
// -O0 IR keeps all locals in slots, so flow-sensitivity over slots is
// where the precision lives), widened at loop heads, then a final pass
// that derives per-instruction intervals from the converged block-entry
// facts.
type RangeAnalysis struct {
	F       *ir.Func
	g       *FuncGraph
	dom     *DomTree
	heads   map[int]bool
	tracked map[*ir.Instr]bool
	val     map[*ir.Instr]Interval
	sol     *Solution[env]
}

type rangeProblem struct{ r *RangeAnalysis }

func (p rangeProblem) Direction() Direction { return Forward }
func (p rangeProblem) Bottom(int) env       { return nil }
func (p rangeProblem) Boundary(int) env     { return make(env) }

func (p rangeProblem) Merge(n int, acc, src env) (env, bool) {
	if src == nil {
		return acc, false
	}
	if acc == nil {
		return cloneEnv(src), true
	}
	joined := make(env)
	for k, a := range acc {
		s, ok := src[k]
		if !ok {
			continue // top in src → top in join
		}
		j := a.Join(s)
		if p.r.heads[n] {
			j = j.Widen(a)
		}
		if isTypedTopOf(j, k) {
			continue // degenerated to top: drop the key
		}
		joined[k] = j
	}
	if envEq(acc, joined) {
		return acc, false
	}
	return joined, true
}

// isTypedTopOf reports that iv carries no information beyond the slot's
// type range (loads force LoadFree off, so the flag adds nothing here).
func isTypedTopOf(iv Interval, slot *ir.Instr) bool {
	return iv.Contains(TypedTop(slotElem(slot)))
}

func slotElem(slot *ir.Instr) ir.Type { return slot.AllocaElem }

func (p rangeProblem) Transfer(n int, in env) env {
	if in == nil {
		return nil
	}
	e := cloneEnv(in)
	vals := map[*ir.Instr]Interval{}
	for _, instr := range p.r.g.Blocks[n].Instrs {
		p.r.step(e, vals, instr)
	}
	return e
}

// NewRangeAnalysis analyzes f (which must have a body).
func NewRangeAnalysis(f *ir.Func) *RangeAnalysis {
	r := &RangeAnalysis{
		F:       f,
		g:       NewFuncGraph(f),
		tracked: map[*ir.Instr]bool{},
		val:     map[*ir.Instr]Interval{},
	}
	r.dom = Dominators(r.g, 0)
	r.heads = LoopHeads(r.g, r.dom)
	for slot := range TrackedSlots(f) {
		if ir.IsInt(slot.AllocaElem) {
			r.tracked[slot] = true
		}
	}
	r.sol = Solve[env](r.g, rangeProblem{r})

	// Final pass: derive per-instruction intervals from the converged
	// block-entry facts. RPO guarantees dominators are processed before
	// dominatees, so cross-block operand lookups in r.val are filled.
	order := ReversePostorder(r.g, 0)
	seen := make([]bool, r.g.Len())
	for _, n := range order {
		seen[n] = true
	}
	for n := 0; n < r.g.Len(); n++ {
		if !seen[n] {
			order = append(order, n)
		}
	}
	for _, n := range order {
		e := r.sol.In[n]
		if e == nil {
			e = make(env)
		} else {
			e = cloneEnv(e)
		}
		for _, instr := range r.g.Blocks[n].Instrs {
			r.step(e, r.val, instr)
		}
	}
	return r
}

// step applies one instruction: slot stores update the env, value-producing
// instructions record their interval in vals.
func (r *RangeAnalysis) step(e env, vals map[*ir.Instr]Interval, in *ir.Instr) {
	switch in.Op {
	case ir.OpStore:
		slot, ok := in.Args[1].(*ir.Instr)
		if !ok || !r.tracked[slot] {
			return // cannot touch tracked slots: their addresses never escape
		}
		v := r.valueIn(in.Args[0], vals)
		v = clampToType(v, slotElem(slot))
		if isTypedTopOf(v, slot) {
			delete(e, slot)
		} else {
			e[slot] = v
		}
	case ir.OpLoad:
		v := TypedTop(in.Ty)
		if slot, ok := in.Args[0].(*ir.Instr); ok && r.tracked[slot] {
			if sv, ok := e[slot]; ok {
				v = sv
			}
		}
		// A load result is never LoadFree: under store bypass it may
		// return stale data, so only the PHT model may trust its bound.
		v.LoadFree = false
		vals[in] = v
	case ir.OpBin:
		vals[in] = binInterval(in.Sub, in.Ty, r.valueIn(in.Args[0], vals), r.valueIn(in.Args[1], vals))
	case ir.OpCmp:
		v := Rng(0, 1)
		v.LoadFree = r.valueIn(in.Args[0], vals).LoadFree && r.valueIn(in.Args[1], vals).LoadFree
		vals[in] = v
	case ir.OpCast:
		vals[in] = castInterval(in.Sub, in.Args[0].Type(), in.Ty, r.valueIn(in.Args[0], vals))
	case ir.OpCall:
		if ir.IsInt(in.Ty) {
			vals[in] = TypedTop(in.Ty)
		}
	}
}

// valueIn bounds operand v given the block-local instruction values
// computed so far.
func (r *RangeAnalysis) valueIn(v ir.Value, vals map[*ir.Instr]Interval) Interval {
	switch v := v.(type) {
	case *ir.Const:
		return constInterval(v)
	case *ir.Param:
		iv := TypedTop(v.Ty)
		iv.LoadFree = true // a register argument, fixed for the activation
		return iv
	case *ir.Instr:
		if iv, ok := vals[v]; ok {
			return iv
		}
		if iv, ok := r.val[v]; ok {
			return iv
		}
		return TypedTop(v.Type())
	case *ir.Global:
		iv := Top()
		iv.LoadFree = true
		return iv
	}
	return Top()
}

// ValueRange returns the converged bound for an instruction's result.
func (r *RangeAnalysis) ValueRange(in *ir.Instr) Interval {
	if iv, ok := r.val[in]; ok {
		return iv
	}
	return TypedTop(in.Ty)
}

// AddrInfo is a resolved memory address: a base object plus a byte-offset
// bound. Exactly one of Global/Slot is set when Known.
type AddrInfo struct {
	Global *ir.Global
	Slot   *ir.Instr // an alloca
	Off    Interval
	Known  bool
}

// Addr resolves a pointer value through direct GEP/fieldgep/bitcast chains
// to a base object with a byte-offset interval. Pointers that pass through
// memory or integer arithmetic are not resolved.
func (r *RangeAnalysis) Addr(v ir.Value) AddrInfo {
	switch v := v.(type) {
	case *ir.Global:
		return AddrInfo{Global: v, Off: Point(0), Known: true}
	case *ir.Instr:
		switch v.Op {
		case ir.OpAlloca:
			return AddrInfo{Slot: v, Off: Point(0), Known: true}
		case ir.OpGEP:
			base := r.Addr(v.Args[0])
			if !base.Known {
				return AddrInfo{}
			}
			elem := ir.Elem(v.Args[0].Type())
			if elem == nil {
				return AddrInfo{}
			}
			idx := r.valueIn(v.Args[1], nil)
			idx = gepIndexRange(v.Args[1].Type(), idx)
			base.Off = base.Off.AddIv(idx.ScaleConst(int64(elem.Size())))
			return base
		case ir.OpFieldGEP:
			base := r.Addr(v.Args[0])
			if !base.Known {
				return AddrInfo{}
			}
			st, ok := ir.Elem(v.Args[0].Type()).(*ir.StructType)
			if !ok {
				return AddrInfo{}
			}
			fld, ok := st.Field(v.Field)
			if !ok {
				return AddrInfo{}
			}
			base.Off = base.Off.AddConst(int64(fld.Offset))
			return base
		case ir.OpCast:
			if v.Sub == "bitcast" && ir.IsPtr(v.Ty) {
				return r.Addr(v.Args[0])
			}
		}
	}
	return AddrInfo{}
}

// gepIndexRange adjusts an index interval for the interpreter's signed
// reinterpretation: a 64-bit value ≥ 2^63 indexes negatively, so an
// unsigned-64 bound that may exceed MaxInt64 loses its floor too.
func gepIndexRange(ty ir.Type, iv Interval) Interval {
	if it, ok := ty.(ir.IntType); ok && it.Bits == 64 && it.Unsigned && iv.HiUnb {
		iv.LoUnb = true
	}
	return iv
}

// accessAddrAndSize extracts the address operand and access width of a
// load or store.
func accessAddrAndSize(in *ir.Instr) (ir.Value, int, bool) {
	switch in.Op {
	case ir.OpLoad:
		return in.Args[0], in.Ty.Size(), true
	case ir.OpStore:
		return in.Args[1], in.Args[0].Type().Size(), true
	}
	return nil, 0, false
}

// InBounds reports whether the access provably stays inside its base
// object for every value the analysis admits — in which case even a
// mispredicted execution of this access cannot read outside the object.
func (r *RangeAnalysis) InBounds(in *ir.Instr) bool {
	addr, size, ok := accessAddrAndSize(in)
	if !ok {
		return false
	}
	ai := r.Addr(addr)
	if !ai.Known || !ai.Off.Bounded() || ai.Off.Lo < 0 {
		return false
	}
	var objSize int
	switch {
	case ai.Global != nil:
		objSize = ai.Global.Elem.Size()
	case ai.Slot != nil:
		objSize = ai.Slot.AllocaElem.Size()
	default:
		return false
	}
	end, ok := addOv(ai.Off.Hi, int64(size))
	return ok && end <= int64(objSize)
}

// DisjointRanges reports whether the store and load provably touch
// disjoint byte ranges of the same base object, using only LoadFree
// offset bounds — bounds that hold even when earlier stores are bypassed,
// which is what Clou-stl's transient reordering requires.
func (r *RangeAnalysis) DisjointRanges(store, load *ir.Instr) bool {
	if store.Op != ir.OpStore || load.Op != ir.OpLoad {
		return false
	}
	as := r.Addr(store.Args[1])
	al := r.Addr(load.Args[0])
	if !as.Known || !al.Known {
		return false
	}
	sameBase := (as.Global != nil && as.Global == al.Global) ||
		(as.Slot != nil && as.Slot == al.Slot)
	if !sameBase {
		return false // alias facts across objects are untrusted transiently (§5.2)
	}
	if !as.Off.LoadFree || !al.Off.LoadFree || !as.Off.Bounded() || !al.Off.Bounded() {
		return false
	}
	sEnd, ok1 := addOv(as.Off.Hi, int64(store.Args[0].Type().Size()))
	lEnd, ok2 := addOv(al.Off.Hi, int64(load.Ty.Size()))
	if !ok1 || !ok2 {
		return false
	}
	return sEnd <= al.Off.Lo || lEnd <= as.Off.Lo
}

// ModuleRanges lazily computes per-function range analyses for a module.
type ModuleRanges struct {
	M *ir.Module
	// mu guards the lazily filled byFn memo: one ModuleRanges (via the
	// detect analysis cache's shared Pruner) may serve many concurrent
	// per-function analyses. RangeAnalysis itself is immutable once built
	// and its query methods are read-only, so only the memo needs a lock.
	mu   sync.Mutex
	byFn map[*ir.Func]*RangeAnalysis
}

// NewModuleRanges wraps m.
func NewModuleRanges(m *ir.Module) *ModuleRanges {
	return &ModuleRanges{M: m, byFn: map[*ir.Func]*RangeAnalysis{}}
}

// ForFunc returns (computing on first use) the analysis for f. Safe for
// concurrent use.
func (mr *ModuleRanges) ForFunc(f *ir.Func) *RangeAnalysis {
	if f == nil || f.IsDecl() {
		return nil
	}
	mr.mu.Lock()
	defer mr.mu.Unlock()
	if r, ok := mr.byFn[f]; ok {
		return r
	}
	r := NewRangeAnalysis(f)
	mr.byFn[f] = r
	return r
}

// ForInstr returns the analysis of the function containing in (instrs keep
// a parent-block link, and blocks their parent function — this also works
// for A-CFG nodes of inlined callees, which share instruction pointers).
func (mr *ModuleRanges) ForInstr(in *ir.Instr) *RangeAnalysis {
	if in == nil || in.Blk == nil {
		return nil
	}
	return mr.ForFunc(in.Blk.Fn)
}
